/**
 * @file
 * Unit tests for src/fault: fault-spec parse/format round-trips, the
 * per-endpoint health state machine, the fault runtime end-to-end
 * (evacuation, spill, retry/backoff), the bounded-queue auto-enable,
 * chaos-mode determinism, and the invariant watchdog.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "fault/fault_spec.h"
#include "fault/health.h"
#include "fault/watchdog.h"
#include "mem/tiered_memory.h"
#include "obs/attribution.h"
#include "workloads/factory.h"

namespace hybridtier {

/** Injects accounting corruption so the watchdog tests can prove the
 *  invariant checks catch a desynchronized mirror. */
class TieredMemoryTestPeer {
 public:
  static void CorruptUsed(TieredMemory* memory, Tier tier,
                          int64_t delta) {
    memory->used_[static_cast<size_t>(tier)] +=
        static_cast<uint64_t>(delta);
  }
  static void CorruptEndpointResident(TieredMemory* memory,
                                      uint32_t endpoint, int64_t delta) {
    memory->endpoint_resident_[endpoint] += static_cast<uint64_t>(delta);
  }
  static void CorruptEndpointFastResident(TieredMemory* memory,
                                          uint32_t endpoint,
                                          int64_t delta) {
    memory->endpoint_fast_resident_[endpoint] +=
        static_cast<uint64_t>(delta);
  }
};

namespace {

// ---------------------------------------------------------- FaultSpec --

TEST(FaultSpec, ParsesEventsSortedByStart) {
  const FaultSchedule schedule =
      ParseFaultSpec("faults:ep2@5s=down,ep1@2s-8s=degrade3x");
  ASSERT_EQ(schedule.events.size(), 2u);
  // Canonical order is by start time: the degrade comes first.
  EXPECT_EQ(schedule.events[0].endpoint, 1u);
  EXPECT_EQ(schedule.events[0].start_ns, 2 * kSecond);
  EXPECT_EQ(schedule.events[0].end_ns, 8 * kSecond);
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(schedule.events[0].factor, 3.0);
  EXPECT_EQ(schedule.events[1].endpoint, 2u);
  EXPECT_EQ(schedule.events[1].start_ns, 5 * kSecond);
  EXPECT_EQ(schedule.events[1].end_ns, 0u);  // Never clears.
  EXPECT_EQ(schedule.events[1].kind, FaultKind::kDown);
}

TEST(FaultSpec, ParsesFlapParameters) {
  const FaultSchedule schedule =
      ParseFaultSpec("faults:ep0@1ms-3ms=flap(p=0.25,period=50us)");
  ASSERT_EQ(schedule.events.size(), 1u);
  const FaultEvent& event = schedule.events[0];
  EXPECT_EQ(event.kind, FaultKind::kFlap);
  EXPECT_EQ(event.start_ns, 1 * kMillisecond);
  EXPECT_EQ(event.end_ns, 3 * kMillisecond);
  EXPECT_DOUBLE_EQ(event.flap_p, 0.25);
  EXPECT_EQ(event.flap_period_ns, 50 * kMicrosecond);
}

TEST(FaultSpec, FormatParseRoundTrips) {
  const char* specs[] = {
      "faults:ep2@5s=down",
      "faults:ep1@2s-8s=degrade3x,ep0@500ms=down",
      "faults:ep0@1ms-3ms=flap(p=0.25,period=50us),ep1@0-2.5ms=down",
  };
  for (const char* spec : specs) {
    const std::string canonical = FormatFaultSpec(ParseFaultSpec(spec));
    // Parsing the canonical form reproduces it exactly.
    EXPECT_EQ(FormatFaultSpec(ParseFaultSpec(canonical)), canonical)
        << spec;
  }
}

TEST(FaultSpec, ChaosExpansionIsSeeded) {
  const char* spec = "faults:chaos(seed=7,endpoints=3,horizon=200ms,events=6)";
  const FaultSchedule first = ParseFaultSpec(spec);
  EXPECT_EQ(first.events.size(), 6u);
  EXPECT_LT(first.MaxEndpoint(), 3u);
  // Same spec, same concrete schedule — chaos runs replay bit-identically.
  EXPECT_EQ(FormatFaultSpec(ParseFaultSpec(spec)), FormatFaultSpec(first));
  // A different seed draws a different schedule.
  const FaultSchedule other = ParseFaultSpec(
      "faults:chaos(seed=8,endpoints=3,horizon=200ms,events=6)");
  EXPECT_NE(FormatFaultSpec(other), FormatFaultSpec(first));
  // Expanded chaos schedules round-trip like hand-written ones.
  const std::string canonical = FormatFaultSpec(first);
  EXPECT_EQ(FormatFaultSpec(ParseFaultSpec(canonical)), canonical);
}

TEST(FaultSpec, FlapCoinIsPureAndBiased) {
  // Pure function of (endpoint, slot, p): repeated calls agree.
  for (uint64_t slot = 0; slot < 64; ++slot) {
    EXPECT_EQ(FlapSlotDown(1, slot, 0.3), FlapSlotDown(1, slot, 0.3));
  }
  // Degenerate probabilities pin the coin.
  int down_p1 = 0;
  for (uint64_t slot = 0; slot < 256; ++slot) {
    EXPECT_FALSE(FlapSlotDown(0, slot, 0.0));
    if (FlapSlotDown(0, slot, 1.0)) ++down_p1;
  }
  EXPECT_EQ(down_p1, 256);
  // A middling p lands strictly between the extremes.
  int down_half = 0;
  for (uint64_t slot = 0; slot < 256; ++slot) {
    if (FlapSlotDown(2, slot, 0.5)) ++down_half;
  }
  EXPECT_GT(down_half, 0);
  EXPECT_LT(down_half, 256);
}

TEST(FaultSpecDeathTest, RejectsMalformedSpecs) {
  EXPECT_DEATH(ParseFaultSpec("faults:"), "empty fault schedule");
  EXPECT_DEATH(ParseFaultSpec("nope:ep0@1s=down"),
               "must start with 'faults:'");
  EXPECT_DEATH(ParseFaultSpec("faults:ep@1s=down"),
               "bad token '@1s=down' at byte 9 .*expected endpoint index");
  EXPECT_DEATH(ParseFaultSpec("faults:ep0@1s=frazzle"),
               "bad token .*at byte 7 .*unknown fault kind");
  EXPECT_DEATH(ParseFaultSpec("faults:ep0@1s=degrade0.5x"),
               "degrade factor must be > 1");
  EXPECT_DEATH(ParseFaultSpec("faults:ep0@5s-2s=down"),
               "end time must be after start time");
  EXPECT_DEATH(ParseFaultSpec("faults:ep0@1s=flap(p=0.1,period=50ms)"),
               "flap events require an end time");
  EXPECT_DEATH(ParseFaultSpec("faults:ep0@1s=down,"),
               "trailing ','");
  EXPECT_DEATH(
      ParseFaultSpec("faults:chaos(seed=7,endpoints=0,horizon=1s,events=2)"),
      "chaos endpoints must be an integer");
}

// ------------------------------------------------------ HealthTracker --

struct EdgeLog {
  uint32_t endpoint;
  EndpointHealth from;
  EndpointHealth to;
  double factor;
};

std::vector<EdgeLog> AdvanceTo(HealthTracker& tracker, TimeNs now) {
  std::vector<EdgeLog> log;
  tracker.Advance(now, [&](uint32_t endpoint, EndpointHealth from,
                           EndpointHealth to, double factor) {
    log.push_back({endpoint, from, to, factor});
  });
  return log;
}

TEST(HealthTracker, DownThenRecoveringThenHealthy) {
  const FaultSchedule schedule =
      ParseFaultSpec("faults:ep0@100us-200us=down");
  HealthTracker tracker(schedule, 1, /*recovery_ns=*/50 * kMicrosecond,
                        /*recovery_factor=*/2.0);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kHealthy);

  EXPECT_TRUE(AdvanceTo(tracker, 99 * kMicrosecond).empty());

  auto log = AdvanceTo(tracker, 100 * kMicrosecond);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, EndpointHealth::kHealthy);
  EXPECT_EQ(log[0].to, EndpointHealth::kDown);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kDown);

  log = AdvanceTo(tracker, 200 * kMicrosecond);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].to, EndpointHealth::kRecovering);
  EXPECT_DOUBLE_EQ(log[0].factor, 2.0);
  EXPECT_DOUBLE_EQ(tracker.factor(0), 2.0);

  log = AdvanceTo(tracker, 250 * kMicrosecond);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].to, EndpointHealth::kHealthy);
  EXPECT_DOUBLE_EQ(tracker.factor(0), 1.0);
  EXPECT_TRUE(tracker.Settled());
}

TEST(HealthTracker, OpenEndedDownNeverClears) {
  HealthTracker tracker(ParseFaultSpec("faults:ep1@1ms=down"), 2,
                        10 * kMicrosecond, 2.0);
  AdvanceTo(tracker, 1 * kSecond);
  EXPECT_EQ(tracker.state(1), EndpointHealth::kDown);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kHealthy);
  EXPECT_TRUE(tracker.Settled());
}

TEST(HealthTracker, DownOutranksOverlappingDegrade) {
  // Degrade spans the down interval on both sides.
  const FaultSchedule schedule = ParseFaultSpec(
      "faults:ep0@0-10ms=degrade4x,ep0@2ms-4ms=down");
  HealthTracker tracker(schedule, 1, /*recovery_ns=*/1 * kMillisecond,
                        2.0);
  AdvanceTo(tracker, 1 * kMillisecond);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kDegraded);
  EXPECT_DOUBLE_EQ(tracker.factor(0), 4.0);
  AdvanceTo(tracker, 3 * kMillisecond);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kDown);
  // Back inside the degrade window (degraded outranks recovering).
  AdvanceTo(tracker, 5 * kMillisecond);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kDegraded);
  AdvanceTo(tracker, 20 * kMillisecond);
  EXPECT_EQ(tracker.state(0), EndpointHealth::kHealthy);
}

TEST(HealthTracker, FlapExpansionIsDeterministic) {
  const FaultSchedule schedule = ParseFaultSpec(
      "faults:ep0@0-5ms=flap(p=0.4,period=100us)");
  HealthTracker a(schedule, 1, 50 * kMicrosecond, 2.0);
  HealthTracker b(schedule, 1, 50 * kMicrosecond, 2.0);
  int down_samples = 0;
  for (TimeNs t = 0; t <= 6 * kMillisecond; t += 25 * kMicrosecond) {
    AdvanceTo(a, t);
    AdvanceTo(b, t);
    ASSERT_EQ(a.state(0), b.state(0)) << "diverged at t=" << t;
    if (a.state(0) == EndpointHealth::kDown) ++down_samples;
  }
  // p=0.4 over 50 slots: some slots flap down, not all of them.
  EXPECT_GT(down_samples, 0);
  EXPECT_LT(down_samples, 240);
}

// ------------------------------------------- Fault runtime end-to-end --

SimulationConfig FaultTestConfig() {
  SimulationConfig config;
  config.max_accesses = 2000000;
  config.max_time_ns = 20 * kMillisecond;
  config.stats_interval_ns = 1 * kMillisecond;
  config.seed = 13;
  config.topology = "cxl:(1,2,3),lat=124:180:180,bw=34:17:17";
  config.perf.bounded_queue = true;
  config.fault_runtime.evac_batch = 4096;
  config.fault_runtime.spill_batch = 4096;
  return config;
}

TEST(FaultRuntime, NoFaultSpecLeavesCountersZero) {
  auto workload = MakeWorkload("zipf", 0.1, 13);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = FaultTestConfig();
  Simulation simulation(config, workload.get(), policy.get());
  const SimulationResult result = simulation.Run();
  EXPECT_EQ(result.fault.transitions, 0u);
  EXPECT_EQ(result.fault.stalled_accesses, 0u);
  EXPECT_EQ(result.fault.evacuated_pages, 0u);
  EXPECT_EQ(result.fault.spilled_pages, 0u);
}

TEST(FaultRuntime, DownEndpointDrainsAndAttributionStillSums) {
  LatencyAttribution attr;
  auto workload = MakeWorkload("zipf", 0.1, 13);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = FaultTestConfig();
  // Room for the full drain: ep2's homed footprint (~1/3) must fit in
  // fast (HDM decode pins slow homes — see fault_runtime.h).
  config.fast_tier_fraction = 0.4;
  config.faults = "faults:ep2@2ms=down";
  config.watchdog = true;
  config.telemetry.attribution = &attr;

  Simulation simulation(config, workload.get(), policy.get());
  const SimulationResult result = simulation.Run();

  // The outage was seen and handled.
  EXPECT_EQ(result.fault.endpoints_downed, 1u);
  EXPECT_GT(result.fault.evacuated_pages, 0u);
  // Every resident page left the dead endpoint.
  EXPECT_EQ(simulation.memory().EndpointResident(2), 0u);

  // The decomposition still sums exactly, with the outage visible as
  // the fault-stall component (one constant stall per rejected access).
  ASSERT_GT(attr.ops(), 0u);
  EXPECT_EQ(attr.ComponentSumNs(), attr.op_latency_ns());
  EXPECT_EQ(attr.component_ns(LatencyComponent::kFaultStall),
            result.fault.stalled_accesses * config.perf.fault_stall_ns);
}

TEST(FaultRuntime, EvacuationParksInBackoffWhenFastCannotHoldDrain) {
  auto workload = MakeWorkload("zipf", 0.1, 13);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = FaultTestConfig();
  // 1:8 with 3 endpoints: ep2's homed share (~1/3) cannot fit in fast
  // (1/8), so after spill runs dry the evacuation must back off instead
  // of spinning, leaving stragglers that pay the fault stall.
  config.fast_tier_fraction = 1.0 / 8;
  config.faults = "faults:ep2@2ms=down";

  Simulation simulation(config, workload.get(), policy.get());
  const SimulationResult result = simulation.Run();

  EXPECT_GT(result.fault.evacuated_pages, 0u);
  EXPECT_GT(result.fault.evac_retries, 0u);
  EXPECT_GT(simulation.memory().EndpointResident(2), 0u);
  EXPECT_GT(result.fault.stalled_accesses, 0u);
}

// Satellite: a down/degrade schedule force-enables the bounded queue
// model (an unbounded backlog integrates forever across an outage).
TEST(FaultRuntime, DownScheduleForceEnablesBoundedQueue) {
  auto workload = MakeWorkload("zipf", 0.1, 13);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = FaultTestConfig();
  config.perf.bounded_queue = false;
  config.faults = "faults:ep1@5ms=down";
  Simulation simulation(config, workload.get(), policy.get());
  EXPECT_TRUE(simulation.perf_model().config().bounded_queue);
  const SimulationResult result = simulation.Run();
  EXPECT_EQ(result.fault.endpoints_downed, 1u);
}

TEST(FaultRuntime, ChaosScheduleIsDeterministicAcrossReruns) {
  const char* chaos =
      "faults:chaos(seed=7,endpoints=3,horizon=15ms,events=4)";
  SimulationResult results[2];
  uint64_t resident[2][3];
  for (int run = 0; run < 2; ++run) {
    auto workload = MakeWorkload("zipf", 0.1, 13);
    auto policy = MakePolicy("HybridTier");
    SimulationConfig config = FaultTestConfig();
    config.faults = chaos;
    config.watchdog = true;
    Simulation simulation(config, workload.get(), policy.get());
    results[run] = simulation.Run();
    for (uint32_t e = 0; e < 3; ++e) {
      resident[run][e] = simulation.memory().EndpointResident(e);
    }
  }
  EXPECT_EQ(results[0].accesses, results[1].accesses);
  EXPECT_EQ(results[0].duration_ns, results[1].duration_ns);
  EXPECT_EQ(results[0].median_latency_ns, results[1].median_latency_ns);
  EXPECT_EQ(results[0].p99_latency_ns, results[1].p99_latency_ns);
  EXPECT_EQ(results[0].fault.transitions, results[1].fault.transitions);
  EXPECT_EQ(results[0].fault.evacuated_pages,
            results[1].fault.evacuated_pages);
  EXPECT_EQ(results[0].fault.stalled_accesses,
            results[1].fault.stalled_accesses);
  EXPECT_EQ(results[0].migration.promoted_pages,
            results[1].migration.promoted_pages);
  for (uint32_t e = 0; e < 3; ++e) {
    EXPECT_EQ(resident[0][e], resident[1][e]) << "endpoint " << e;
  }
  // And the chaos run actually injected something.
  EXPECT_GT(results[0].fault.transitions, 0u);
}

// -------------------------------------------------- InvariantWatchdog --

TEST(Watchdog, CleanMemoryPasses) {
  TieredMemory memory(/*total_pages=*/1024, /*fast_capacity=*/128,
                      /*slow_capacity=*/1024, AllocationPolicy::kFastFirst,
                      /*endpoint_count=*/2, /*interleave_units=*/4);
  for (PageId page = 0; page < 512; ++page) memory.Touch(page, 0);
  InvariantWatchdog watchdog(&memory);
  EXPECT_TRUE(watchdog.RunChecks(0));
  EXPECT_EQ(watchdog.violations(), 0u);
  EXPECT_EQ(watchdog.last_error(), "");
}

TEST(Watchdog, CatchesUsedCounterCorruption) {
  TieredMemory memory(1024, 128, 1024, AllocationPolicy::kFastFirst, 2, 4);
  for (PageId page = 0; page < 512; ++page) memory.Touch(page, 0);
  InvariantWatchdog watchdog(&memory);
  ASSERT_TRUE(watchdog.RunChecks(0));
  TieredMemoryTestPeer::CorruptUsed(&memory, Tier::kSlow, +3);
  EXPECT_FALSE(watchdog.RunChecks(1000));
  EXPECT_GT(watchdog.violations(), 0u);
  EXPECT_NE(watchdog.last_error().find("memory_accounting"),
            std::string::npos)
      << watchdog.last_error();
}

TEST(Watchdog, CatchesEndpointMirrorCorruption) {
  TieredMemory memory(1024, 128, 1024, AllocationPolicy::kFastFirst, 2, 4);
  for (PageId page = 0; page < 512; ++page) memory.Touch(page, 0);
  InvariantWatchdog watchdog(&memory);
  ASSERT_TRUE(watchdog.RunChecks(0));
  TieredMemoryTestPeer::CorruptEndpointResident(&memory, 1, -1);
  EXPECT_FALSE(watchdog.RunChecks(1000));

  // The fast-resident-by-home mirror is checked independently.
  TieredMemory memory2(1024, 128, 1024, AllocationPolicy::kFastFirst, 2, 4);
  for (PageId page = 0; page < 512; ++page) memory2.Touch(page, 0);
  InvariantWatchdog watchdog2(&memory2);
  ASSERT_TRUE(watchdog2.RunChecks(0));
  TieredMemoryTestPeer::CorruptEndpointFastResident(&memory2, 0, +2);
  EXPECT_FALSE(watchdog2.RunChecks(1000));
}

TEST(Watchdog, CatchesAttributionIdentityViolation) {
  TieredMemory memory(64, 16, 64);
  LatencyAttribution attr;
  attr.Configure(/*endpoint_count=*/1, /*tenant_count=*/1);
  InvariantWatchdog watchdog(&memory, &attr);
  // Balanced books pass.
  attr.AddOpOverhead(0, 100);
  attr.CloseOp(0, 100);
  EXPECT_TRUE(watchdog.RunChecks(0));
  // An op closed with latency nothing was attributed to trips the
  // identity check.
  attr.CloseOp(0, 40);
  EXPECT_FALSE(watchdog.RunChecks(1000));
  EXPECT_NE(watchdog.last_error().find("attribution_identity"),
            std::string::npos)
      << watchdog.last_error();
}

TEST(Watchdog, RegisteredSourceIsConsulted) {
  struct FailingSource : InvariantSource {
    bool CheckInvariants(std::string* error) const override {
      *error = "synthetic failure";
      return false;
    }
  };
  TieredMemory memory(64, 16, 64);
  InvariantWatchdog watchdog(&memory);
  EXPECT_TRUE(watchdog.RunChecks(0));
  FailingSource source;
  watchdog.RegisterSource("synthetic", &source);
  EXPECT_FALSE(watchdog.RunChecks(1));
  EXPECT_NE(watchdog.last_error().find("synthetic failure"),
            std::string::npos);
}

}  // namespace
}  // namespace hybridtier
