/**
 * @file
 * Unit tests for src/sampling: ring buffer and the PEBS-analogue
 * access sampler.
 */

#include <gtest/gtest.h>

#include "sampling/budgeted_sampler.h"
#include "sampling/ring_buffer.h"
#include "sampling/sampler.h"

namespace hybridtier {
namespace {

// --------------------------------------------------------- RingBuffer --

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.Push(1));
  EXPECT_TRUE(ring.Push(2));
  EXPECT_TRUE(ring.Push(3));
  int out = 0;
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(RingBuffer, DropsWhenFull) {
  RingBuffer<int> ring(2);
  EXPECT_TRUE(ring.Push(1));
  EXPECT_TRUE(ring.Push(2));
  EXPECT_FALSE(ring.Push(3));
  EXPECT_EQ(ring.dropped(), 1u);
  int out;
  ring.Pop(&out);
  EXPECT_TRUE(ring.Push(4));
  EXPECT_EQ(ring.size(), 2u);
}

TEST(RingBuffer, PopEmptyFails) {
  RingBuffer<int> ring(2);
  int out;
  EXPECT_FALSE(ring.Pop(&out));
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WrapsAround) {
  RingBuffer<int> ring(3);
  int out;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.Push(round));
    EXPECT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, round);
  }
}

TEST(RingBuffer, DrainBatch) {
  RingBuffer<int> ring(8);
  for (int i = 0; i < 6; ++i) ring.Push(i);
  std::vector<int> out;
  EXPECT_EQ(ring.Drain(&out, 4), 4u);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front(), 0);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.Drain(&out, 100), 2u);
  EXPECT_EQ(out.size(), 6u);
}

// ------------------------------------------------------ AccessSampler --

TEST(Sampler, SamplingRateNearPeriod) {
  AccessSampler sampler(61, 1u << 20, 5);
  std::vector<SampleRecord> drained;
  constexpr uint64_t kAccesses = 500000;
  for (uint64_t i = 0; i < kAccesses; ++i) {
    sampler.OnAccess(i % 1000, Tier::kFast, i);
    if (sampler.pending() > 1000) sampler.Drain(&drained, 1u << 20);
  }
  sampler.Drain(&drained, 1u << 20);
  const double rate =
      static_cast<double>(sampler.samples_taken()) / kAccesses;
  EXPECT_NEAR(rate, 1.0 / 61, 0.002);
  EXPECT_EQ(sampler.samples_dropped(), 0u);
  EXPECT_EQ(drained.size(), sampler.samples_taken());
}

TEST(Sampler, PeriodOneSamplesEverything) {
  AccessSampler sampler(1, 1024, 5);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.OnAccess(i, Tier::kSlow, i));
  }
  EXPECT_EQ(sampler.samples_taken(), 100u);
}

TEST(Sampler, RecordsCarryPageTierTime) {
  AccessSampler sampler(1, 16, 5);
  sampler.OnAccess(42, Tier::kSlow, 777);
  std::vector<SampleRecord> out;
  sampler.Drain(&out, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].page, 42u);
  EXPECT_EQ(out[0].tier, Tier::kSlow);
  EXPECT_EQ(out[0].time_ns, 777u);
}

TEST(Sampler, DropsWhenNotDrained) {
  AccessSampler sampler(1, 8, 5);
  for (uint64_t i = 0; i < 100; ++i) sampler.OnAccess(i, Tier::kFast, i);
  EXPECT_EQ(sampler.pending(), 8u);
  EXPECT_EQ(sampler.samples_dropped(), 92u);
}

TEST(Sampler, JitterBreaksStridedAliasing) {
  // A strided loop with stride == period must not sample only one page.
  AccessSampler sampler(64, 1u << 16, 5);
  std::vector<SampleRecord> out;
  for (uint64_t i = 0; i < 64000; ++i) {
    sampler.OnAccess(i % 64, Tier::kFast, i);
  }
  sampler.Drain(&out, 1u << 16);
  std::set<PageId> pages;
  for (const auto& record : out) pages.insert(record.page);
  EXPECT_GT(pages.size(), 16u);
}

TEST(Sampler, DeterministicForSeed) {
  AccessSampler a(61, 1024, 9), b(61, 1024, 9);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(a.OnAccess(i, Tier::kFast, i),
              b.OnAccess(i, Tier::kFast, i));
    if (a.pending() > 512) {
      std::vector<SampleRecord> da, db;
      a.Drain(&da, 1024);
      b.Drain(&db, 1024);
    }
  }
}

// ---------------------------------------------------- BudgetedSampler --

BudgetedSamplerConfig SmallBudgetConfig() {
  BudgetedSamplerConfig config;
  config.base_period = 64;
  config.buffer_capacity = 1u << 16;
  config.adapt_window_accesses = 8192;
  return config;
}

/**
 * Interleaves accesses at `ratio`:1 between tenant 0 and tenant 1 and
 * drives them through `sampler` for `rounds` rounds.
 */
void DriveTwoTenants(BudgetedSampler* sampler, uint64_t ratio,
                     uint64_t rounds) {
  std::vector<SampleRecord> sink;
  for (uint64_t i = 0; i < rounds; ++i) {
    for (uint64_t k = 0; k < ratio; ++k) {
      sampler->OnAccess(0, i % 1024, Tier::kFast, i);
    }
    sampler->OnAccess(1, 2048 + i % 64, Tier::kSlow, i);
    if (sampler->pending() > 8192) sampler->Drain(&sink, 1u << 16);
  }
}

TEST(BudgetedSampler, EqualizesSamplesAcrossUnequalRates) {
  // Tenant 0 issues 15x tenant 1's accesses. With one global period the
  // sample stream would split 15:1; the budget adaptation must bring
  // the split close to 1:1 after the warm-up window.
  BudgetedSampler sampler(SmallBudgetConfig(), 2);
  DriveTwoTenants(&sampler, 15, 200000);

  ASSERT_GT(sampler.adaptations(), 0u);
  EXPECT_GT(sampler.period(0), sampler.period(1));
  const double s0 = static_cast<double>(sampler.tenant_samples(0));
  const double s1 = static_cast<double>(sampler.tenant_samples(1));
  ASSERT_GT(s1, 0.0);
  // Within 2x of each other (vs 15x without budgets), including the
  // pre-adaptation warm-up rounds.
  EXPECT_LT(s0 / s1, 2.0);
  EXPECT_GT(s0 / s1, 0.5);
}

TEST(BudgetedSampler, SmallTenantPeriodFloorsAtOne) {
  // A tenant with fewer accesses than its sample share samples every
  // access (period 1), never less.
  BudgetedSampler sampler(SmallBudgetConfig(), 2);
  DriveTwoTenants(&sampler, 200, 20000);
  EXPECT_EQ(sampler.period(1), 1u);
  EXPECT_GE(sampler.period(0), 1u);
}

TEST(BudgetedSampler, PeriodCeilingCapsHighRateTenants) {
  BudgetedSamplerConfig config = SmallBudgetConfig();
  config.max_period_scale = 2;
  BudgetedSampler sampler(config, 2);
  DriveTwoTenants(&sampler, 500, 20000);
  EXPECT_LE(sampler.period(0), config.base_period * 2);
}

TEST(BudgetedSampler, DeterministicForSeed) {
  BudgetedSampler a(SmallBudgetConfig(), 3), b(SmallBudgetConfig(), 3);
  for (uint64_t i = 0; i < 30000; ++i) {
    const uint32_t tenant = i % 3;
    EXPECT_EQ(a.OnAccess(tenant, i % 512, Tier::kFast, i),
              b.OnAccess(tenant, i % 512, Tier::kFast, i));
    if (a.pending() > 512) {
      std::vector<SampleRecord> da, db;
      a.Drain(&da, 1024);
      b.Drain(&db, 1024);
      ASSERT_EQ(da.size(), db.size());
    }
  }
  EXPECT_EQ(a.samples_taken(), b.samples_taken());
  for (uint32_t t = 0; t < 3; ++t) {
    EXPECT_EQ(a.period(t), b.period(t));
    EXPECT_EQ(a.tenant_samples(t), b.tenant_samples(t));
  }
}

TEST(BudgetedSampler, AccountsAccessesAndDrops) {
  BudgetedSamplerConfig config = SmallBudgetConfig();
  config.buffer_capacity = 8;
  BudgetedSampler sampler(config, 1);
  for (uint64_t i = 0; i < 10000; ++i) {
    sampler.OnAccess(0, i, Tier::kSlow, i);
  }
  EXPECT_EQ(sampler.accesses_seen(), 10000u);
  EXPECT_EQ(sampler.tenant_accesses(0), 10000u);
  EXPECT_GT(sampler.samples_taken(), 0u);
  EXPECT_GT(sampler.samples_dropped(), 0u);  // Tiny buffer, no drains.
  EXPECT_EQ(sampler.pending(), 8u);
}

}  // namespace
}  // namespace hybridtier
