/**
 * @file
 * Unit tests for src/common: RNG, units, histogram, percentiles, EMA,
 * table output.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/ema.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace hybridtier {
namespace {

// ---------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoundedRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedCoversDomain) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int heads = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(stats.variance()), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> data = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = data;
  rng.Shuffle(data.data(), data.size());
  std::sort(data.begin(), data.end());
  EXPECT_EQ(data, sorted);
}

TEST(Rng, SplitMixAdvancesState) {
  uint64_t s = 42;
  const uint64_t a = SplitMix64Next(s);
  const uint64_t b = SplitMix64Next(s);
  EXPECT_NE(a, b);
}

// -------------------------------------------------------------- Units --

TEST(Units, PageConstantsConsistent) {
  EXPECT_EQ(kPagesPerHugePage, 512u);
  EXPECT_EQ(kHugePageSize, kPageSize * kPagesPerHugePage);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(4 * kKiB), "4KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3MiB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2GiB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(FormatTime(124), "124ns");
  EXPECT_EQ(FormatTime(1500), "1.50us");
  EXPECT_EQ(FormatTime(2 * kSecond), "2s");
  EXPECT_EQ(FormatTime(3 * kMinute), "3min");
}

// ---------------------------------------------------------- Histogram --

TEST(Histogram, AddAndCount) {
  Histogram hist(15);
  hist.Add(3);
  hist.Add(3);
  hist.Add(7, 5);
  EXPECT_EQ(hist.Count(3), 2u);
  EXPECT_EQ(hist.Count(7), 5u);
  EXPECT_EQ(hist.total(), 7u);
}

TEST(Histogram, ClampsToMax) {
  Histogram hist(15);
  hist.Add(100);
  EXPECT_EQ(hist.Count(15), 1u);
}

TEST(Histogram, RemoveSaturatesAtZero) {
  Histogram hist(15);
  hist.Add(4);
  hist.Remove(4, 10);
  EXPECT_EQ(hist.Count(4), 0u);
  EXPECT_EQ(hist.total(), 0u);
}

TEST(Histogram, ThresholdForBudgetPicksHottest) {
  Histogram hist(15);
  // 10 pages at count 15, 100 at count 8, 1000 at count 1.
  hist.Add(15, 10);
  hist.Add(8, 100);
  hist.Add(1, 1000);
  // Budget 10: only the 10 count-15 pages fit; the smallest threshold
  // admitting at most 10 pages is 9 (buckets 9..14 are empty).
  EXPECT_EQ(hist.ThresholdForBudget(10), 9u);
  // Budget 110: count-15 and count-8 pages fit; smallest threshold is 2.
  EXPECT_EQ(hist.ThresholdForBudget(110), 2u);
  // Budget covers everything: threshold 0.
  EXPECT_EQ(hist.ThresholdForBudget(2000), 0u);
  // Budget smaller than the hottest bucket: threshold above max.
  EXPECT_EQ(hist.ThresholdForBudget(5), 16u);
}

TEST(Histogram, CountAtOrAbove) {
  Histogram hist(15);
  hist.Add(15, 10);
  hist.Add(8, 100);
  EXPECT_EQ(hist.CountAtOrAbove(9), 10u);
  EXPECT_EQ(hist.CountAtOrAbove(8), 110u);
  EXPECT_EQ(hist.CountAtOrAbove(16), 0u);
}

TEST(Histogram, CoolByHalvingMovesObservations) {
  Histogram hist(15);
  hist.Add(8, 4);
  hist.Add(1, 2);
  hist.CoolByHalving();
  EXPECT_EQ(hist.Count(4), 4u);
  EXPECT_EQ(hist.Count(0), 2u);
  EXPECT_EQ(hist.total(), 6u);
}

TEST(Histogram, ResetClears) {
  Histogram hist(7);
  hist.Add(3, 9);
  hist.Reset();
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_EQ(hist.Count(3), 0u);
}

// ------------------------------------------------------- RunningStats --

TEST(RunningStats, Moments) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 1.25, 1e-9);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

// -------------------------------------------------------- Percentiles --

TEST(WindowedPercentile, MedianOfKnownData) {
  WindowedPercentile window(128);
  for (int i = 1; i <= 101; ++i) window.Add(i);
  EXPECT_NEAR(window.Median(), 51.0, 1.0);
}

TEST(WindowedPercentile, SlidesWindow) {
  WindowedPercentile window(10);
  for (int i = 0; i < 100; ++i) window.Add(1.0);
  for (int i = 0; i < 10; ++i) window.Add(9.0);
  EXPECT_DOUBLE_EQ(window.Median(), 9.0);
}

TEST(WindowedPercentile, EmptyReturnsZero) {
  WindowedPercentile window(8);
  EXPECT_DOUBLE_EQ(window.Median(), 0.0);
}

TEST(ReservoirSampler, ExactWhenUnderCapacity) {
  ReservoirSampler reservoir(1000);
  for (int i = 1; i <= 100; ++i) reservoir.Add(i);
  EXPECT_NEAR(reservoir.Quantile(0.5), 50.0, 2.0);
  EXPECT_DOUBLE_EQ(reservoir.Mean(), 50.5);
}

TEST(ReservoirSampler, ApproximatesWholeRun) {
  ReservoirSampler reservoir(4096, 5);
  // First half 100s, second half 200s: overall median must see both.
  for (int i = 0; i < 50000; ++i) reservoir.Add(100.0);
  for (int i = 0; i < 50000; ++i) reservoir.Add(200.0);
  const double p25 = reservoir.Quantile(0.25);
  const double p75 = reservoir.Quantile(0.75);
  EXPECT_DOUBLE_EQ(p25, 100.0);
  EXPECT_DOUBLE_EQ(p75, 200.0);
}

TEST(SettleTime, FindsSettlePoint) {
  TimeSeries series;
  series.Add(0, 100.0);
  series.Add(10, 100.0);
  series.Add(20, 50.0);   // disturbance
  series.Add(30, 10.5);
  series.Add(40, 10.0);
  series.Add(50, 10.1);
  const uint64_t t = SettleTimeNs(series, 10.0, 0.10);
  EXPECT_EQ(t, 30u);
}

TEST(SettleTime, NeverSettlesReturnsMax) {
  TimeSeries series;
  series.Add(0, 100.0);
  series.Add(10, 200.0);
  EXPECT_EQ(SettleTimeNs(series, 10.0, 0.01), UINT64_MAX);
}

TEST(SettleTime, RespectsNotBefore) {
  TimeSeries series;
  series.Add(0, 10.0);
  series.Add(10, 10.0);
  series.Add(20, 10.0);
  EXPECT_EQ(SettleTimeNs(series, 10.0, 0.01, 15), 20u);
}

// ------------------------------------------------------------ fairness --

TEST(Fairness, JainIndexBounds) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5.0, 5.0, 5.0}), 1.0);
  // One tenant holds everything: 1/n.
  EXPECT_NEAR(JainFairnessIndex({9.0, 0.0, 0.0}), 1.0 / 3, 1e-12);
}

TEST(Fairness, WeightedIndexScoresWeightTrackingSplitsAsFair) {
  // A 4:1 occupancy split under 4:1 weights is perfectly fair...
  EXPECT_DOUBLE_EQ(WeightedJainFairnessIndex({400.0, 100.0}, {4.0, 1.0}),
                   1.0);
  // ...while the unweighted index penalizes it.
  EXPECT_LT(JainFairnessIndex({400.0, 100.0}), 1.0);
  // And an even split under 4:1 weights is *not* weighted-fair.
  EXPECT_LT(WeightedJainFairnessIndex({250.0, 250.0}, {4.0, 1.0}), 1.0);
}

TEST(Fairness, WeightedIndexWithUnitWeightsMatchesPlain) {
  const std::vector<double> values = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(WeightedJainFairnessIndex(values, {1.0, 1.0, 1.0}),
                   JainFairnessIndex(values));
}

// ---------------------------------------------------------------- EMA --

TEST(EmaCounter, AccumulatesWithoutCooling) {
  EmaCounter counter(0);
  counter.Add(0, 5);
  counter.Add(kSecond, 5);
  EXPECT_EQ(counter.Value(2 * kSecond), 10u);
}

TEST(EmaCounter, HalvesEveryPeriod) {
  EmaCounter counter(kSecond);
  counter.Add(0, 64);
  EXPECT_EQ(counter.Value(kSecond), 32u);
  EXPECT_EQ(counter.Value(3 * kSecond), 8u);
}

TEST(EmaCounter, LagReproducesFig3a) {
  // A page accessed 50 times/min for 10 minutes, cooling every 2 min:
  // the EMA score lags and drops below 10 only ~9 minutes after the
  // accesses stop (paper Fig 3a).
  EmaCounter counter(2 * kMinute);
  for (int minute = 0; minute < 10; ++minute) {
    counter.Add(static_cast<TimeNs>(minute) * kMinute, 50);
  }
  TimeNs below_10 = 0;
  for (int minute = 10; minute < 40; ++minute) {
    const TimeNs t = static_cast<TimeNs>(minute) * kMinute;
    if (counter.Value(t) < 10) {
      below_10 = t;
      break;
    }
  }
  EXPECT_GE(below_10, 16 * kMinute);
  EXPECT_LE(below_10, 22 * kMinute);
}

// -------------------------------------------------------------- Table --

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(TablePrinter, CsvEscaping) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ------------------------------------------------------------ Logging --

TEST(Logging, LevelsFilter) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kSilent);
  HT_WARN("this warning must not crash");
  HT_INFORM("nor this inform");
  SetLogLevel(old_level);
  SUCCEED();
}

TEST(Logging, AssertPassesOnTrue) {
  HT_ASSERT(1 + 1 == 2, "math works");
  SUCCEED();
}

TEST(Logging, FilteredMessagesDoNotEvaluateArguments) {
  // The macros must check the level *before* StrCat runs: a debug line
  // on a hot path may format expensive arguments, and filtering it out
  // has to cost one branch, not a string build plus side effects.
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  HT_DEBUG("dropped: ", expensive());
  HT_INFORM("also dropped: ", expensive());
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kSilent);
  HT_WARN("dropped too: ", expensive());
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(old_level);
}

TEST(Logging, ParseLogLevelRoundTrips) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInform);
  EXPECT_EQ(ParseLogLevel("inform"), LogLevel::kInform);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("silent"), LogLevel::kSilent);
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInform, LogLevel::kWarn,
        LogLevel::kError}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
}

TEST(LoggingDeathTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_DEATH(ParseLogLevel("loud"), "log level");
}

TEST(LoggingDeathTest, AssertAbortsOnFalse) {
  EXPECT_DEATH(HT_ASSERT(false, "boom"), "assertion failed");
}

}  // namespace
}  // namespace hybridtier
