/**
 * @file
 * Telemetry subsystem tests (src/obs/): metric registry semantics,
 * trace-event JSON structure, stage-profiler accounting, and — the part
 * CI actually leans on — the determinism contract: telemetry keyed to
 * simulated time must serialize byte-identically across dispatch
 * engines (batched vs legacy), generation modes (live vs replay), and
 * sweep thread counts, and enabling it must not perturb the simulation
 * itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/hybridtier_policy.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "exec/sweep.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "obs/attribution.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "workloads/factory.h"
#include "workloads/trace.h"

namespace hybridtier {
namespace {

// ------------------------------------------------------------ Metrics --

TEST(Metrics, CounterGaugeProbeSeries) {
  MetricRegistry registry;
  Counter* counter = registry.AddCounter("a/count");
  Gauge* gauge = registry.AddGauge("a/level");
  double probed = 1.5;
  registry.AddProbe("a/probe", [&probed] { return probed; });
  EXPECT_EQ(registry.series_count(), 3u);

  counter->Inc();
  counter->Inc(2);
  gauge->Set(7.0);
  registry.Snapshot(1000);
  probed = 2.5;
  gauge->Set(-1.0);
  registry.Snapshot(2000);
  registry.Snapshot(2000);  // Duplicate timestamp is ignored.
  EXPECT_EQ(registry.snapshot_count(), 2u);

  std::ostringstream csv;
  registry.WriteCsv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("time_ns,a/count,a/level,a/probe"),
            std::string::npos);
  EXPECT_NE(text.find("1000,3,7,1.5"), std::string::npos);
  EXPECT_NE(text.find("2000,3,-1,2.5"), std::string::npos);
}

TEST(Metrics, ReRegistrationReturnsTheSameHandle) {
  MetricRegistry registry;
  Counter* first = registry.AddCounter("dup");
  Counter* second = registry.AddCounter("dup");
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.series_count(), 1u);
  HistogramMetric* h1 = registry.AddHistogram("hist");
  HistogramMetric* h2 = registry.AddHistogram("hist");
  EXPECT_EQ(h1, h2);
}

TEST(Metrics, FinalSectionUsesLastSnapshotNotLiveProbes) {
  // Probes may capture objects destroyed before serialization; the
  // writer must read the recorded series, never call the probe again.
  MetricRegistry registry;
  int live_reads = 0;
  registry.AddProbe("p", [&live_reads] {
    ++live_reads;
    return 42.0;
  });
  registry.Snapshot(10);
  const int reads_at_snapshot = live_reads;
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_EQ(live_reads, reads_at_snapshot);
  EXPECT_NE(out.str().find("\"p\": 42"), std::string::npos);
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  EXPECT_EQ(HistogramMetric::BucketOf(0), 0u);
  EXPECT_EQ(HistogramMetric::BucketOf(1), 0u);
  EXPECT_EQ(HistogramMetric::BucketOf(2), 1u);
  EXPECT_EQ(HistogramMetric::BucketOf(3), 2u);
  EXPECT_EQ(HistogramMetric::BucketOf(4), 2u);
  EXPECT_EQ(HistogramMetric::BucketOf(5), 3u);
  EXPECT_EQ(HistogramMetric::BucketOf(1024), 10u);
  EXPECT_EQ(HistogramMetric::BucketOf(1025), 11u);
  // BucketFloor(i) is the smallest value BucketOf maps to bucket i.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(HistogramMetric::BucketOf(HistogramMetric::BucketFloor(i)),
              i)
        << "bucket " << i;
  }

  HistogramMetric hist;
  hist.Observe(1);
  hist.Observe(100);
  hist.Observe(100);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 201u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(HistogramMetric::BucketOf(100)), 2u);
  EXPECT_EQ(hist.MaxBucket(), HistogramMetric::BucketOf(100));
}

// -------------------------------------------------------------- Trace --

TEST(Trace, JsonStructureAndTimestampFormatting) {
  TraceEmitter emitter(3, "cell");
  const TraceEmitter::TrackId track = emitter.Track("tenant-a");
  EXPECT_EQ(emitter.Track("tenant-a"), track);  // Idempotent lookup.
  emitter.Instant(track, "arrival", 1, {{"w", 2.0}});
  emitter.Span(track, "drain", 1000, 4500, {{"released", 12.0}});
  emitter.Span(track, "empty", 500, 400);  // end < start clamps to 0.

  std::ostringstream out;
  emitter.WriteJson(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // Process/track metadata records.
  EXPECT_NE(text.find("\"process_name\",\"args\":{\"name\":\"cell\"}"),
            std::string::npos);
  EXPECT_NE(text.find("\"thread_name\",\"args\":{\"name\":\"tenant-a\"}"),
            std::string::npos);
  // ts is micros with fixed 3-digit ns remainder: 1 ns -> 0.001.
  EXPECT_NE(text.find("\"ts\":0.001"), std::string::npos);
  // Span: 1000 ns -> ts 1.000, 3500 ns duration -> dur 3.500.
  EXPECT_NE(text.find("\"ts\":1.000,\"dur\":3.500"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":0.000"), std::string::npos);
  EXPECT_NE(text.find("\"released\":12"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":3"), std::string::npos);
}

TEST(Trace, MaxEventsCapDropsDeterministically) {
  TraceEmitter emitter;
  const TraceEmitter::TrackId track = emitter.Track("t");
  emitter.set_max_events(2);
  emitter.Instant(track, "one", 1);
  emitter.Instant(track, "two", 2);
  emitter.Instant(track, "three", 3);
  EXPECT_EQ(emitter.event_count(), 2u);
  EXPECT_EQ(emitter.dropped_events(), 1u);
  std::ostringstream out;
  emitter.WriteJson(out);
  EXPECT_EQ(out.str().find("three"), std::string::npos);
}

TEST(Trace, InternedNamesAreStable) {
  TraceEmitter emitter;
  const char* first = emitter.Intern("tenant/alpha");
  const std::string copy = first;
  // Interning more strings must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) emitter.Intern("x" + std::to_string(i));
  EXPECT_EQ(copy, first);
}

TEST(Trace, MergedEmittersKeepCellOrder) {
  TraceEmitter a(1, "cell-0");
  TraceEmitter b(2, "cell-1");
  a.Instant(a.Track("t"), "ev_a", 5);
  b.Instant(b.Track("t"), "ev_b", 5);
  const TraceEmitter* emitters[] = {&a, &b};
  std::ostringstream out;
  WriteTraceJson(out, emitters);
  const std::string text = out.str();
  const size_t pos_a = text.find("ev_a");
  const size_t pos_b = text.find("ev_b");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

// ------------------------------------------------------ StageProfiler --

TEST(StageProfilerTest, SamplesFirstOpThenEveryNth) {
  StageProfiler profiler(/*sample_every=*/4);
  std::vector<bool> sampled;
  for (int i = 0; i < 9; ++i) sampled.push_back(profiler.BeginOp());
  const std::vector<bool> expected = {true,  false, false, false, true,
                                      false, false, false, true};
  EXPECT_EQ(sampled, expected);
}

TEST(StageProfilerTest, RecordsAndMerges) {
  StageProfiler a;
  a.Record(Stage::kCache, 100);
  a.Record(Stage::kPolicy, 50);
  a.RecordOp(200, 10);
  StageProfiler b;
  b.Record(Stage::kCache, 300);
  b.RecordOp(400, 30);
  a.Merge(b);
  EXPECT_EQ(a.totals(Stage::kCache).wall_ns, 400u);
  EXPECT_EQ(a.totals(Stage::kCache).events, 2u);
  EXPECT_EQ(a.sampled_ops(), 2u);
  EXPECT_EQ(a.sampled_accesses(), 40u);
  EXPECT_DOUBLE_EQ(a.NsPerAccess(Stage::kCache), 10.0);
  // Unattributed remainder: 600 total - 450 attributed.
  EXPECT_EQ(a.OtherNs(), 150u);
  const std::string report = a.Report();
  EXPECT_NE(report.find("cache"), std::string::npos);
  EXPECT_NE(report.find("other"), std::string::npos);
}

// ---------------------------------------------- Simulation integration --

struct TelemetryCapture {
  std::string trace_json;
  std::string metrics_json;
  SimulationResult result;
};

/** Runs a multi-tenant churn cell with full telemetry attached. */
TelemetryCapture RunTelemetryChurnCell(bool batch_execution) {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,cdn:2@0-5e7,zipf@3e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 11);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  MetricRegistry metrics;
  TraceEmitter trace(1, "test-cell");
  SimulationConfig config;
  config.max_accesses = 30000000;
  config.max_time_ns = 90 * kMillisecond;
  config.seed = 11;
  config.batch_execution = batch_execution;
  config.telemetry.metrics = &metrics;
  config.telemetry.trace = &trace;

  TelemetryCapture capture;
  capture.result = RunSimulation(config, mux.get(), fair.get());

  std::ostringstream trace_out;
  trace.WriteJson(trace_out);
  capture.trace_json = trace_out.str();
  std::ostringstream metrics_out;
  metrics.WriteJson(metrics_out);
  capture.metrics_json = metrics_out.str();
  return capture;
}

TEST(ObsDeterminism, TraceAndMetricsIdenticalAcrossEngines) {
  const TelemetryCapture batched = RunTelemetryChurnCell(true);
  const TelemetryCapture legacy = RunTelemetryChurnCell(false);
  EXPECT_EQ(batched.trace_json, legacy.trace_json);
  EXPECT_EQ(batched.metrics_json, legacy.metrics_json);
  EXPECT_EQ(batched.result.accesses, legacy.result.accesses);
  // The churn cell actually exercises the interesting tracks.
  EXPECT_NE(batched.trace_json.find("promote_batch"), std::string::npos);
  EXPECT_NE(batched.trace_json.find("arrival"), std::string::npos);
  EXPECT_NE(batched.trace_json.find("quota/controller"),
            std::string::npos);
}

TEST(ObsDeterminism, TraceAndMetricsIdenticalLiveVsReplay) {
  SimulationConfig config;
  config.max_accesses = 300000;
  config.seed = 29;

  const auto run = [&config](Workload* workload) {
    MetricRegistry metrics;
    TraceEmitter trace(1, "cell");
    auto policy = MakePolicy("HybridTier");
    SimulationConfig cell_config = config;
    cell_config.telemetry.metrics = &metrics;
    cell_config.telemetry.trace = &trace;
    RunSimulation(cell_config, workload, policy.get());
    std::ostringstream trace_out;
    trace.WriteJson(trace_out);
    std::ostringstream metrics_out;
    metrics.WriteJson(metrics_out);
    return std::pair<std::string, std::string>(trace_out.str(),
                                               metrics_out.str());
  };

  auto live_workload = MakeWorkload("zipf", 0.25, 29);
  const auto live = run(live_workload.get());

  auto recorded_workload = MakeWorkload("zipf", 0.25, 29);
  auto trace = std::make_shared<const RecordedTrace>(
      RecordTrace(*recorded_workload, config.max_accesses));
  ReplayWorkload replay(trace);
  const auto replayed = run(&replay);

  EXPECT_EQ(live.first, replayed.first);
  EXPECT_EQ(live.second, replayed.second);
}

TEST(ObsDeterminism, TelemetryDoesNotPerturbTheSimulation) {
  const auto run = [](bool with_telemetry) {
    MetricRegistry metrics;
    TraceEmitter trace;
    StageProfiler stages;
    auto workload = MakeWorkload("zipf", 0.25, 17);
    auto policy = MakePolicy("HybridTier");
    SimulationConfig config;
    config.max_accesses = 300000;
    config.seed = 17;
    if (with_telemetry) {
      config.telemetry.metrics = &metrics;
      config.telemetry.trace = &trace;
      config.telemetry.stages = &stages;
    }
    return RunSimulation(config, workload.get(), policy.get());
  };
  const SimulationResult plain = run(false);
  const SimulationResult instrumented = run(true);
  EXPECT_EQ(plain.ops, instrumented.ops);
  EXPECT_EQ(plain.accesses, instrumented.accesses);
  EXPECT_EQ(plain.duration_ns, instrumented.duration_ns);
  EXPECT_EQ(plain.fast_mem_accesses, instrumented.fast_mem_accesses);
  EXPECT_EQ(plain.migration.promoted_pages,
            instrumented.migration.promoted_pages);
  EXPECT_EQ(plain.migration.demoted_pages,
            instrumented.migration.demoted_pages);
  EXPECT_EQ(plain.median_latency_ns, instrumented.median_latency_ns);
  EXPECT_EQ(plain.p99_latency_ns, instrumented.p99_latency_ns);
}

TEST(ObsDeterminism, SweepMergedTelemetryIsJobsInvariant) {
  // The ht_run --ratio pattern: preallocated per-cell emitters indexed
  // by flat cell index, merged in index order after the run.
  const auto run_sweep = [](unsigned jobs) {
    SweepGrid grid;
    grid.AddAxis("seed", {"3", "5", "7", "9"});
    std::vector<std::unique_ptr<TraceEmitter>> traces(grid.cell_count());
    std::vector<std::unique_ptr<MetricRegistry>> metrics(
        grid.cell_count());
    SweepOptions options;
    options.jobs = jobs;
    options.report_wall_time = false;
    SweepRunner runner(options);
    runner.Run(grid, [&](const SweepCell& cell) -> int {
      traces[cell.index()] = std::make_unique<TraceEmitter>(
          static_cast<uint32_t>(cell.index() + 1),
          "seed=" + cell.Get("seed"));
      metrics[cell.index()] = std::make_unique<MetricRegistry>();
      auto workload = MakeWorkload(
          "zipf", 0.1, std::stoull(cell.Get("seed")));
      auto policy = MakePolicy("HybridTier");
      SimulationConfig config;
      config.max_accesses = 100000;
      config.seed = std::stoull(cell.Get("seed"));
      config.telemetry.trace = traces[cell.index()].get();
      config.telemetry.metrics = metrics[cell.index()].get();
      RunSimulation(config, workload.get(), policy.get());
      return 0;
    });
    std::vector<const TraceEmitter*> emitters;
    for (const auto& trace : traces) emitters.push_back(trace.get());
    std::ostringstream trace_out;
    WriteTraceJson(trace_out, emitters);
    std::ostringstream metrics_out;
    for (const auto& registry : metrics) {
      registry->WriteJson(metrics_out);
    }
    return std::pair<std::string, std::string>(trace_out.str(),
                                               metrics_out.str());
  };
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(ObsIntegration, SimulationRegistersTheMetricCatalog) {
  MetricRegistry metrics;
  auto workload = MakeWorkload("zipf", 0.1, 7);
  auto policy = MakePolicy("Memtis");
  SimulationConfig config;
  config.max_accesses = 300000;  // Long enough for interval snapshots.
  config.seed = 7;
  config.telemetry.metrics = &metrics;
  const SimulationResult result =
      RunSimulation(config, workload.get(), policy.get());

  std::ostringstream out;
  metrics.WriteJson(out);
  const std::string text = out.str();
  for (const char* name :
       {"sim/ops", "sim/accesses", "mem/fast_used_units",
        "migration/promoted_pages", "migration/demoted_pages",
        "cache/llc_app_misses", "cache/llc_tiering_misses",
        "sampler/samples_taken", "policy/metadata_bytes",
        "sim/op_latency_ns", "mem/endpoint0/bytes",
        "mem/endpoint0/accesses", "mem/endpoint0/resident_units",
        "mem/endpoint0/queue_delay_ns"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // The final section mirrors the result struct for pushed counters.
  std::ostringstream expected;
  expected << "\"sim/accesses\": " << result.accesses;
  EXPECT_NE(text.find(expected.str()), std::string::npos);
  EXPECT_GE(metrics.snapshot_count(), 2u);
}

// -------------------------------------------------------- Attribution --

/** Asymmetric 3-endpoint slow tier used by the diagnosis tests. */
constexpr const char* kAsymTopology =
    "cxl:(1,(2,3)),lat=124:250:250,bw=34:8:8,link=10,gran=64";

TEST(Attribution, ComponentNamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (uint32_t c = 0; c < static_cast<uint32_t>(LatencyComponent::kCount);
       ++c) {
    names.push_back(LatencyComponentName(static_cast<LatencyComponent>(c)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
  EXPECT_EQ(std::string(LatencyComponentName(LatencyComponent::kSlowQueue)),
            "slow_queue");
}

// The tentpole contract: Σ components == Σ op latency, to the
// nanosecond, with EXPECT_EQ — globally, per endpoint, and at every
// metric snapshot (cumulative identity at each snapshot implies the
// per-interval identity, since an interval is a difference of
// cumulative sums; all values stay far below 2^53, so the double-typed
// metric series are exact).
TEST(Attribution, DecompositionIdentityExactOnAsymmetricTopology) {
  LatencyAttribution attr;
  MetricRegistry metrics;
  auto workload = MakeWorkload("zipf", 0.1, 13);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config;
  config.max_accesses = 400000;
  config.seed = 13;
  config.topology = kAsymTopology;
  config.telemetry.attribution = &attr;
  config.telemetry.metrics = &metrics;
  RunSimulation(config, workload.get(), policy.get());

  ASSERT_GT(attr.ops(), 0u);
  ASSERT_GT(attr.op_latency_ns(), 0u);
  EXPECT_EQ(attr.ComponentSumNs(), attr.op_latency_ns());
  EXPECT_EQ(attr.TenantComponentSumNs(0), attr.tenant_op_latency_ns(0));

  // Per-endpoint slow-tier splits partition the slow components.
  ASSERT_EQ(attr.endpoint_count(), 3u);
  uint64_t idle_sum = 0;
  uint64_t queue_sum = 0;
  for (uint32_t e = 0; e < attr.endpoint_count(); ++e) {
    idle_sum += attr.endpoint_slow_idle_ns(e);
    queue_sum += attr.endpoint_slow_queue_ns(e);
  }
  EXPECT_EQ(idle_sum, attr.component_ns(LatencyComponent::kSlowIdle));
  EXPECT_EQ(queue_sum, attr.component_ns(LatencyComponent::kSlowQueue));
  // The asymmetric cell actually exercises the slow path.
  EXPECT_GT(attr.component_ns(LatencyComponent::kSlowIdle), 0u);

  // Snapshot-level identity on the registered metric series.
  const std::vector<double>* total =
      metrics.Series("attr/total_op_latency_ns");
  ASSERT_NE(total, nullptr);
  ASSERT_GE(metrics.snapshot_count(), 2u);
  for (size_t i = 0; i < metrics.snapshot_count(); ++i) {
    double component_sum = 0.0;
    for (uint32_t c = 0;
         c < static_cast<uint32_t>(LatencyComponent::kCount); ++c) {
      const std::string name =
          std::string("attr/") +
          LatencyComponentName(static_cast<LatencyComponent>(c)) + "_ns";
      const std::vector<double>* series = metrics.Series(name);
      ASSERT_NE(series, nullptr) << name;
      component_sum += (*series)[i];
    }
    EXPECT_EQ(component_sum, (*total)[i]) << "snapshot " << i;
  }
  // The cumulative identity holding at consecutive snapshots implies
  // the per-interval identity; spell one interval out anyway.
  const size_t last = metrics.snapshot_count() - 1;
  double interval_components = 0.0;
  for (uint32_t c = 0; c < static_cast<uint32_t>(LatencyComponent::kCount);
       ++c) {
    const std::string name =
        std::string("attr/") +
        LatencyComponentName(static_cast<LatencyComponent>(c)) + "_ns";
    const std::vector<double>& series = *metrics.Series(name);
    interval_components += series[last] - series[0];
  }
  EXPECT_EQ(interval_components, (*total)[last] - (*total)[0]);
}

TEST(Attribution, PerTenantIdentityExactUnderFairShare) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,zipf:3");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 19);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  LatencyAttribution attr;
  SimulationConfig config;
  config.max_accesses = 400000;
  config.seed = 19;
  config.telemetry.attribution = &attr;
  RunSimulation(config, mux.get(), fair.get());

  ASSERT_EQ(attr.tenant_count(), 3u);
  uint64_t tenant_latency_sum = 0;
  for (uint32_t t = 0; t < attr.tenant_count(); ++t) {
    EXPECT_EQ(attr.TenantComponentSumNs(t), attr.tenant_op_latency_ns(t))
        << "tenant " << t;
    EXPECT_GT(attr.tenant_op_latency_ns(t), 0u) << "tenant " << t;
    tenant_latency_sum += attr.tenant_op_latency_ns(t);
  }
  EXPECT_EQ(tenant_latency_sum, attr.op_latency_ns());
  EXPECT_EQ(attr.ComponentSumNs(), attr.op_latency_ns());
}

// ------------------------------------------------------ DecisionAudit --

TEST(DecisionAuditTest, PrematureDemotionCountedOncePerEpisode) {
  DecisionAuditConfig config;
  config.premature_window_ns = 1000;
  DecisionAudit audit(config);
  audit.Configure(16);

  audit.OnDemoted(5, 100);
  audit.OnSlowFill(5, 1099);  // Inside the window: premature.
  EXPECT_EQ(audit.premature_demotions(), 1u);
  audit.OnSlowFill(5, 1100);  // Stamp cleared: no double count.
  EXPECT_EQ(audit.premature_demotions(), 1u);

  audit.OnDemoted(5, 2000);
  audit.OnSlowFill(5, 3000);  // Exactly at the window edge: not premature.
  EXPECT_EQ(audit.premature_demotions(), 1u);

  audit.OnDemoted(7, 5000);
  audit.OnPromoted(7, 5500);  // Promotion clears the stamp.
  audit.OnSlowFill(7, 5600);
  EXPECT_EQ(audit.premature_demotions(), 1u);
}

TEST(DecisionAuditTest, LatePromotionLatchesUntilPromoted) {
  DecisionAuditConfig config;
  config.late_promotion_intervals = 2;
  config.hot_touch_min = 2;
  DecisionAudit audit(config);
  audit.Configure(8);

  // Interval 1: unit 3 hot (2 touches), unit 4 cold (1 touch).
  audit.OnSlowFill(3, 10);
  audit.OnSlowFill(3, 20);
  audit.OnSlowFill(4, 30);
  audit.AdvanceInterval(1000);
  EXPECT_EQ(audit.late_promotions(), 0u);

  // Interval 2: unit 3 hot again -> streak 2 -> late.
  audit.OnSlowFill(3, 1010);
  audit.OnSlowFill(3, 1020);
  audit.AdvanceInterval(2000);
  EXPECT_EQ(audit.late_promotions(), 1u);

  // Interval 3: still hot, but latched — no re-count.
  audit.OnSlowFill(3, 2010);
  audit.OnSlowFill(3, 2020);
  audit.AdvanceInterval(3000);
  EXPECT_EQ(audit.late_promotions(), 1u);

  // Promotion clears the latch; a fresh 2-interval streak counts again.
  audit.OnPromoted(3, 3500);
  audit.OnDemoted(3, 3600);
  audit.OnSlowFill(3, 20000);
  audit.OnSlowFill(3, 20010);
  audit.AdvanceInterval(21000);
  audit.OnSlowFill(3, 21010);
  audit.OnSlowFill(3, 21020);
  audit.AdvanceInterval(22000);
  EXPECT_EQ(audit.late_promotions(), 2u);
}

TEST(DecisionAuditTest, ColdIntervalResetsTheHotStreak) {
  DecisionAuditConfig config;
  config.late_promotion_intervals = 2;
  config.hot_touch_min = 1;
  DecisionAudit audit(config);
  audit.Configure(4);

  audit.OnSlowFill(0, 10);
  audit.AdvanceInterval(1000);   // Hot interval 1.
  audit.AdvanceInterval(2000);   // Untouched interval: streak broken.
  audit.OnSlowFill(0, 2010);
  audit.AdvanceInterval(3000);   // Hot again, but streak restarts at 1.
  EXPECT_EQ(audit.late_promotions(), 0u);
  audit.OnSlowFill(0, 3010);
  audit.AdvanceInterval(4000);   // Back-to-back hot: streak 2 -> late.
  EXPECT_EQ(audit.late_promotions(), 1u);
}

TEST(DecisionAuditTest, RingIsBoundedOldestFirstAndCountsDrops) {
  DecisionAuditConfig config;
  config.ring_capacity = 4;
  DecisionAudit audit(config);
  audit.Configure(1);

  for (uint32_t i = 0; i < 6; ++i) {
    audit.RecordBatch(/*promotion=*/i % 2 == 0,
                      MigrationReason::kHotnessRank,
                      /*now=*/100 * (i + 1), /*pages_moved=*/i + 1,
                      /*pages_requested=*/i + 2);
  }
  EXPECT_EQ(audit.total_batches(), 6u);
  EXPECT_EQ(audit.dropped_records(), 2u);
  const std::vector<AuditRecord> ring = audit.RingSnapshot();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest surviving record first; the first two were overwritten.
  EXPECT_EQ(ring.front().time_ns, 300u);
  EXPECT_EQ(ring.back().time_ns, 600u);
  for (size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LT(ring[i - 1].time_ns, ring[i].time_ns);
  }
  EXPECT_EQ(ring.back().pages_moved, 6u);
  EXPECT_EQ(ring.back().pages_requested, 7u);
}

TEST(DecisionAuditTest, PerReasonCountersSplitPromotionsAndDemotions) {
  DecisionAudit audit;
  audit.Configure(1);
  audit.RecordBatch(true, MigrationReason::kHotnessRank, 10, 32, 32);
  audit.RecordBatch(true, MigrationReason::kQuotaFill, 20, 8, 16);
  audit.RecordBatch(false, MigrationReason::kCapacityDemand, 30, 32, 32);
  audit.RecordBatch(false, MigrationReason::kWatermark, 40, 5, 5);
  audit.RecordQuotaTruncation(9);
  audit.RecordCooling();
  audit.RecordEndpointReorder();

  EXPECT_EQ(audit.batches(MigrationReason::kHotnessRank), 1u);
  EXPECT_EQ(audit.promoted_pages(MigrationReason::kHotnessRank), 32u);
  EXPECT_EQ(audit.demoted_pages(MigrationReason::kHotnessRank), 0u);
  EXPECT_EQ(audit.promoted_pages(MigrationReason::kQuotaFill), 8u);
  EXPECT_EQ(audit.demoted_pages(MigrationReason::kCapacityDemand), 32u);
  EXPECT_EQ(audit.demoted_pages(MigrationReason::kWatermark), 5u);
  EXPECT_EQ(audit.quota_truncated_pages(), 9u);
  EXPECT_EQ(audit.cooling_epochs(), 1u);
  EXPECT_EQ(audit.endpoint_reorders(), 1u);
  EXPECT_EQ(audit.batches(MigrationReason::kUnspecified), 0u);
  const std::string report = audit.Report();
  EXPECT_NE(report.find("hotness_rank"), std::string::npos);
  EXPECT_NE(report.find("quota_fill"), std::string::npos);
}

TEST(DecisionAuditIntegration, EveryEngineBatchCarriesAReason) {
  DecisionAudit audit;
  auto workload = MakeWorkload("zipf", 0.1, 23);
  // Default cooling (600k samples at a 61-access PEBS period) never fires
  // inside a unit-test-sized run; shrink the period so the cooling reason
  // code is exercised too.
  HybridTierConfig policy_config;
  policy_config.freq_cooling_samples = 2000;
  HybridTierPolicy policy(policy_config);
  SimulationConfig config;
  config.max_accesses = 400000;
  config.seed = 23;
  config.telemetry.audit = &audit;
  const SimulationResult result =
      RunSimulation(config, workload.get(), &policy);

  ASSERT_GT(audit.total_batches(), 0u);
  // No call site falls through to the legacy no-reason path.
  EXPECT_EQ(audit.batches(MigrationReason::kUnspecified), 0u);
  EXPECT_GT(audit.batches(MigrationReason::kHotnessRank), 0u);
  // Per-reason page counters partition the engine's own statistics.
  uint64_t promoted = 0;
  uint64_t demoted = 0;
  for (uint32_t r = 0; r < static_cast<uint32_t>(MigrationReason::kCount);
       ++r) {
    promoted += audit.promoted_pages(static_cast<MigrationReason>(r));
    demoted += audit.demoted_pages(static_cast<MigrationReason>(r));
  }
  EXPECT_EQ(promoted, result.migration.promoted_pages);
  EXPECT_EQ(demoted, result.migration.demoted_pages);
  EXPECT_GT(audit.cooling_epochs(), 0u);
}

TEST(ObsDeterminism, DiagnosisSinksDoNotPerturbTheSimulation) {
  const auto run = [](bool with_diagnosis) {
    LatencyAttribution attr;
    DecisionAudit audit;
    StageProfiler stages(/*sample_every=*/1, /*virtual_time=*/true);
    auto workload = MakeWorkload("zipf", 0.25, 31);
    auto policy = MakePolicy("HybridTier");
    SimulationConfig config;
    config.max_accesses = 300000;
    config.seed = 31;
    if (with_diagnosis) {
      config.telemetry.attribution = &attr;
      config.telemetry.audit = &audit;
      config.telemetry.stages = &stages;
    }
    return RunSimulation(config, workload.get(), policy.get());
  };
  const SimulationResult plain = run(false);
  const SimulationResult diagnosed = run(true);
  EXPECT_EQ(plain.ops, diagnosed.ops);
  EXPECT_EQ(plain.duration_ns, diagnosed.duration_ns);
  EXPECT_EQ(plain.median_latency_ns, diagnosed.median_latency_ns);
  EXPECT_EQ(plain.p99_latency_ns, diagnosed.p99_latency_ns);
  EXPECT_EQ(plain.migration.promoted_pages,
            diagnosed.migration.promoted_pages);
  EXPECT_EQ(plain.migration.demoted_pages,
            diagnosed.migration.demoted_pages);
}

// ------------------------------------------- Virtual-time StageProfiler --

TEST(StageProfilerVirtual, BucketsPartitionTheSimulatedDuration) {
  // With sample_every == 1 every op is profiled; in virtual-time mode
  // the buckets hold simulated ns, so they must reconstruct the modeled
  // duration exactly: no clock reads, no sampling noise, no remainder.
  StageProfiler stages(/*sample_every=*/1, /*virtual_time=*/true);
  auto workload = MakeWorkload("zipf", 0.1, 37);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config;
  config.max_accesses = 200000;
  config.seed = 37;
  config.telemetry.stages = &stages;
  const SimulationResult result =
      RunSimulation(config, workload.get(), policy.get());

  ASSERT_GT(stages.sampled_ops(), 0u);
  EXPECT_EQ(stages.sampled_ops(), result.ops);
  EXPECT_EQ(stages.sampled_op_wall_ns(), result.duration_ns);
  EXPECT_EQ(stages.OtherNs(), 0u);
  EXPECT_GT(stages.totals(Stage::kCache).wall_ns, 0u);
}

TEST(StageProfilerVirtual, DeterministicAcrossEnginesAndRuns) {
  const auto run = [](bool batch_execution) {
    StageProfiler stages(/*sample_every=*/4, /*virtual_time=*/true);
    auto workload = MakeWorkload("zipf", 0.1, 41);
    auto policy = MakePolicy("HybridTier");
    SimulationConfig config;
    config.max_accesses = 200000;
    config.seed = 41;
    config.batch_execution = batch_execution;
    config.telemetry.stages = &stages;
    RunSimulation(config, workload.get(), policy.get());
    return stages.Report();
  };
  const std::string batched = run(true);
  const std::string legacy = run(false);
  const std::string batched_again = run(true);
  EXPECT_EQ(batched, legacy);
  EXPECT_EQ(batched, batched_again);
}

// ------------------------------------- Fleet x topology metric catalog --

TEST(ObsIntegration, TraceDropCounterSurfacesInTheRegistry) {
  MetricRegistry metrics;
  TraceEmitter trace(1, "cell");
  trace.set_max_events(4);  // Force capped drops early in the run.
  auto workload = MakeWorkload("zipf", 0.1, 43);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config;
  config.max_accesses = 300000;
  config.seed = 43;
  config.telemetry.metrics = &metrics;
  config.telemetry.trace = &trace;
  RunSimulation(config, workload.get(), policy.get());

  ASSERT_GT(trace.dropped_events(), 0u);
  const std::vector<double>* series =
      metrics.Series("obs/trace/dropped_events");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->empty());
  EXPECT_EQ(series->back(),
            static_cast<double>(trace.dropped_events()));
}

/** Runs a small fleet cell on the asymmetric topology with the full
 *  diagnosis stack attached. */
struct FleetDiagnosisCell {
  MetricRegistry metrics;
  LatencyAttribution attr;
  DecisionAudit audit;
  SimulationResult result;
  uint32_t tenant_count = 0;
};

std::unique_ptr<FleetDiagnosisCell> RunFleetDiagnosisCell(
    uint32_t top_k) {
  auto cell = std::make_unique<FleetDiagnosisCell>();
  std::vector<TenantSpec> specs = ParseTenantList(
      "fleet:8,zipf=0.9,fp=256,fpskew=0.3,churn=poisson,duty=0.5,"
      "period=2e7,horizon=1e8,seed=7");
  auto mux = MakeMuxWorkload(specs, 7);
  cell->tenant_count = static_cast<uint32_t>(specs.size());
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config;
  config.max_accesses = 400000;
  config.seed = 7;
  config.topology = kAsymTopology;
  config.tenant_metrics_top_k = top_k;
  config.telemetry.metrics = &cell->metrics;
  config.telemetry.attribution = &cell->attr;
  config.telemetry.audit = &cell->audit;
  cell->result = RunSimulation(config, mux.get(), fair.get());
  return cell;
}

TEST(ObsIntegration, FleetTopologyCellRegistersTheDiagnosisCatalog) {
  const auto cell = RunFleetDiagnosisCell(/*top_k=*/4);
  const std::vector<std::string> names = cell->metrics.ScalarNames();
  const auto has = [&names](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };

  // Attribution catalog: one series per component, totals, and
  // per-endpoint slow splits for all three topology endpoints.
  for (uint32_t c = 0; c < static_cast<uint32_t>(LatencyComponent::kCount);
       ++c) {
    const std::string name =
        std::string("attr/") +
        LatencyComponentName(static_cast<LatencyComponent>(c)) + "_ns";
    EXPECT_TRUE(has(name)) << name;
  }
  EXPECT_TRUE(has("attr/total_op_latency_ns"));
  for (const char* name :
       {"attr/endpoint0/slow_idle_ns", "attr/endpoint0/slow_queue_ns",
        "attr/endpoint1/slow_idle_ns", "attr/endpoint1/slow_queue_ns",
        "attr/endpoint2/slow_idle_ns", "attr/endpoint2/slow_queue_ns"}) {
    EXPECT_TRUE(has(name)) << name;
  }

  // Audit catalog: scalar counters plus one triple per real reason.
  for (const char* name :
       {"audit/total_batches", "audit/premature_demotions",
        "audit/late_promotions", "audit/quota_truncated_pages",
        "audit/cooling_epochs", "audit/endpoint_reorders",
        "audit/dropped_records"}) {
    EXPECT_TRUE(has(name)) << name;
  }
  for (uint32_t r = 1; r < static_cast<uint32_t>(MigrationReason::kCount);
       ++r) {
    const std::string prefix =
        std::string("audit/reason/") +
        MigrationReasonName(static_cast<MigrationReason>(r)) + "/";
    EXPECT_TRUE(has(prefix + "batches")) << prefix;
    EXPECT_TRUE(has(prefix + "promoted_pages")) << prefix;
    EXPECT_TRUE(has(prefix + "demoted_pages")) << prefix;
  }

  // Per-endpoint device telemetry for every endpoint of the topology,
  // including the queue-delay histograms.
  for (int e = 0; e < 3; ++e) {
    const std::string prefix = "mem/endpoint" + std::to_string(e) + "/";
    EXPECT_TRUE(has(prefix + "bytes")) << prefix;
    EXPECT_TRUE(has(prefix + "accesses")) << prefix;
    EXPECT_TRUE(has(prefix + "resident_units")) << prefix;
    EXPECT_NE(cell->metrics.FindHistogram(prefix + "queue_delay_ns"),
              nullptr)
        << prefix;
  }
  // The run actually drove the slow tier through the fair-share stack.
  EXPECT_GT(cell->attr.component_ns(LatencyComponent::kSlowIdle), 0u);
  EXPECT_EQ(cell->attr.ComponentSumNs(), cell->attr.op_latency_ns());
  EXPECT_GT(cell->audit.total_batches(), 0u);
}

TEST(ObsIntegration, TenantMetricsAreCappedToTopKWithRollup) {
  const auto capped = RunFleetDiagnosisCell(/*top_k=*/4);
  const std::vector<std::string> names = capped->metrics.ScalarNames();
  size_t tenant_access_series = 0;
  bool has_other_rollup = false;
  for (const std::string& name : names) {
    if (name.rfind("tenant/", 0) == 0 &&
        name.size() > std::string("/accesses").size() &&
        name.compare(name.size() - 9, 9, "/accesses") == 0) {
      ++tenant_access_series;
    }
    if (name == "tenant/other/count") has_other_rollup = true;
  }
  // 4 named tenants + the "other" aggregate.
  EXPECT_EQ(tenant_access_series, 5u);
  EXPECT_TRUE(has_other_rollup);

  // top_k = 0 means "no cap": every tenant gets its own series and the
  // rollup disappears.
  const auto uncapped = RunFleetDiagnosisCell(/*top_k=*/0);
  size_t uncapped_series = 0;
  for (const std::string& name : uncapped->metrics.ScalarNames()) {
    if (name.rfind("tenant/", 0) == 0 &&
        name.size() > std::string("/accesses").size() &&
        name.compare(name.size() - 9, 9, "/accesses") == 0) {
      ++uncapped_series;
    }
  }
  EXPECT_EQ(uncapped_series, uncapped->tenant_count);

  // The cap changes only the metric surface, never the simulation.
  EXPECT_EQ(capped->result.duration_ns, uncapped->result.duration_ns);
  EXPECT_EQ(capped->result.ops, uncapped->result.ops);
}

}  // namespace
}  // namespace hybridtier
