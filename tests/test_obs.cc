/**
 * @file
 * Telemetry subsystem tests (src/obs/): metric registry semantics,
 * trace-event JSON structure, stage-profiler accounting, and — the part
 * CI actually leans on — the determinism contract: telemetry keyed to
 * simulated time must serialize byte-identically across dispatch
 * engines (batched vs legacy), generation modes (live vs replay), and
 * sweep thread counts, and enabling it must not perturb the simulation
 * itself.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "exec/sweep.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "workloads/factory.h"
#include "workloads/trace.h"

namespace hybridtier {
namespace {

// ------------------------------------------------------------ Metrics --

TEST(Metrics, CounterGaugeProbeSeries) {
  MetricRegistry registry;
  Counter* counter = registry.AddCounter("a/count");
  Gauge* gauge = registry.AddGauge("a/level");
  double probed = 1.5;
  registry.AddProbe("a/probe", [&probed] { return probed; });
  EXPECT_EQ(registry.series_count(), 3u);

  counter->Inc();
  counter->Inc(2);
  gauge->Set(7.0);
  registry.Snapshot(1000);
  probed = 2.5;
  gauge->Set(-1.0);
  registry.Snapshot(2000);
  registry.Snapshot(2000);  // Duplicate timestamp is ignored.
  EXPECT_EQ(registry.snapshot_count(), 2u);

  std::ostringstream csv;
  registry.WriteCsv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("time_ns,a/count,a/level,a/probe"),
            std::string::npos);
  EXPECT_NE(text.find("1000,3,7,1.5"), std::string::npos);
  EXPECT_NE(text.find("2000,3,-1,2.5"), std::string::npos);
}

TEST(Metrics, ReRegistrationReturnsTheSameHandle) {
  MetricRegistry registry;
  Counter* first = registry.AddCounter("dup");
  Counter* second = registry.AddCounter("dup");
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.series_count(), 1u);
  HistogramMetric* h1 = registry.AddHistogram("hist");
  HistogramMetric* h2 = registry.AddHistogram("hist");
  EXPECT_EQ(h1, h2);
}

TEST(Metrics, FinalSectionUsesLastSnapshotNotLiveProbes) {
  // Probes may capture objects destroyed before serialization; the
  // writer must read the recorded series, never call the probe again.
  MetricRegistry registry;
  int live_reads = 0;
  registry.AddProbe("p", [&live_reads] {
    ++live_reads;
    return 42.0;
  });
  registry.Snapshot(10);
  const int reads_at_snapshot = live_reads;
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_EQ(live_reads, reads_at_snapshot);
  EXPECT_NE(out.str().find("\"p\": 42"), std::string::npos);
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  EXPECT_EQ(HistogramMetric::BucketOf(0), 0u);
  EXPECT_EQ(HistogramMetric::BucketOf(1), 0u);
  EXPECT_EQ(HistogramMetric::BucketOf(2), 1u);
  EXPECT_EQ(HistogramMetric::BucketOf(3), 2u);
  EXPECT_EQ(HistogramMetric::BucketOf(4), 2u);
  EXPECT_EQ(HistogramMetric::BucketOf(5), 3u);
  EXPECT_EQ(HistogramMetric::BucketOf(1024), 10u);
  EXPECT_EQ(HistogramMetric::BucketOf(1025), 11u);
  // BucketFloor(i) is the smallest value BucketOf maps to bucket i.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(HistogramMetric::BucketOf(HistogramMetric::BucketFloor(i)),
              i)
        << "bucket " << i;
  }

  HistogramMetric hist;
  hist.Observe(1);
  hist.Observe(100);
  hist.Observe(100);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 201u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(HistogramMetric::BucketOf(100)), 2u);
  EXPECT_EQ(hist.MaxBucket(), HistogramMetric::BucketOf(100));
}

// -------------------------------------------------------------- Trace --

TEST(Trace, JsonStructureAndTimestampFormatting) {
  TraceEmitter emitter(3, "cell");
  const TraceEmitter::TrackId track = emitter.Track("tenant-a");
  EXPECT_EQ(emitter.Track("tenant-a"), track);  // Idempotent lookup.
  emitter.Instant(track, "arrival", 1, {{"w", 2.0}});
  emitter.Span(track, "drain", 1000, 4500, {{"released", 12.0}});
  emitter.Span(track, "empty", 500, 400);  // end < start clamps to 0.

  std::ostringstream out;
  emitter.WriteJson(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // Process/track metadata records.
  EXPECT_NE(text.find("\"process_name\",\"args\":{\"name\":\"cell\"}"),
            std::string::npos);
  EXPECT_NE(text.find("\"thread_name\",\"args\":{\"name\":\"tenant-a\"}"),
            std::string::npos);
  // ts is micros with fixed 3-digit ns remainder: 1 ns -> 0.001.
  EXPECT_NE(text.find("\"ts\":0.001"), std::string::npos);
  // Span: 1000 ns -> ts 1.000, 3500 ns duration -> dur 3.500.
  EXPECT_NE(text.find("\"ts\":1.000,\"dur\":3.500"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":0.000"), std::string::npos);
  EXPECT_NE(text.find("\"released\":12"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":3"), std::string::npos);
}

TEST(Trace, MaxEventsCapDropsDeterministically) {
  TraceEmitter emitter;
  const TraceEmitter::TrackId track = emitter.Track("t");
  emitter.set_max_events(2);
  emitter.Instant(track, "one", 1);
  emitter.Instant(track, "two", 2);
  emitter.Instant(track, "three", 3);
  EXPECT_EQ(emitter.event_count(), 2u);
  EXPECT_EQ(emitter.dropped_events(), 1u);
  std::ostringstream out;
  emitter.WriteJson(out);
  EXPECT_EQ(out.str().find("three"), std::string::npos);
}

TEST(Trace, InternedNamesAreStable) {
  TraceEmitter emitter;
  const char* first = emitter.Intern("tenant/alpha");
  const std::string copy = first;
  // Interning more strings must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) emitter.Intern("x" + std::to_string(i));
  EXPECT_EQ(copy, first);
}

TEST(Trace, MergedEmittersKeepCellOrder) {
  TraceEmitter a(1, "cell-0");
  TraceEmitter b(2, "cell-1");
  a.Instant(a.Track("t"), "ev_a", 5);
  b.Instant(b.Track("t"), "ev_b", 5);
  const TraceEmitter* emitters[] = {&a, &b};
  std::ostringstream out;
  WriteTraceJson(out, emitters);
  const std::string text = out.str();
  const size_t pos_a = text.find("ev_a");
  const size_t pos_b = text.find("ev_b");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

// ------------------------------------------------------ StageProfiler --

TEST(StageProfilerTest, SamplesFirstOpThenEveryNth) {
  StageProfiler profiler(/*sample_every=*/4);
  std::vector<bool> sampled;
  for (int i = 0; i < 9; ++i) sampled.push_back(profiler.BeginOp());
  const std::vector<bool> expected = {true,  false, false, false, true,
                                      false, false, false, true};
  EXPECT_EQ(sampled, expected);
}

TEST(StageProfilerTest, RecordsAndMerges) {
  StageProfiler a;
  a.Record(Stage::kCache, 100);
  a.Record(Stage::kPolicy, 50);
  a.RecordOp(200, 10);
  StageProfiler b;
  b.Record(Stage::kCache, 300);
  b.RecordOp(400, 30);
  a.Merge(b);
  EXPECT_EQ(a.totals(Stage::kCache).wall_ns, 400u);
  EXPECT_EQ(a.totals(Stage::kCache).events, 2u);
  EXPECT_EQ(a.sampled_ops(), 2u);
  EXPECT_EQ(a.sampled_accesses(), 40u);
  EXPECT_DOUBLE_EQ(a.NsPerAccess(Stage::kCache), 10.0);
  // Unattributed remainder: 600 total - 450 attributed.
  EXPECT_EQ(a.OtherNs(), 150u);
  const std::string report = a.Report();
  EXPECT_NE(report.find("cache"), std::string::npos);
  EXPECT_NE(report.find("other"), std::string::npos);
}

// ---------------------------------------------- Simulation integration --

struct TelemetryCapture {
  std::string trace_json;
  std::string metrics_json;
  SimulationResult result;
};

/** Runs a multi-tenant churn cell with full telemetry attached. */
TelemetryCapture RunTelemetryChurnCell(bool batch_execution) {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,cdn:2@0-5e7,zipf@3e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 11);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  MetricRegistry metrics;
  TraceEmitter trace(1, "test-cell");
  SimulationConfig config;
  config.max_accesses = 30000000;
  config.max_time_ns = 90 * kMillisecond;
  config.seed = 11;
  config.batch_execution = batch_execution;
  config.telemetry.metrics = &metrics;
  config.telemetry.trace = &trace;

  TelemetryCapture capture;
  capture.result = RunSimulation(config, mux.get(), fair.get());

  std::ostringstream trace_out;
  trace.WriteJson(trace_out);
  capture.trace_json = trace_out.str();
  std::ostringstream metrics_out;
  metrics.WriteJson(metrics_out);
  capture.metrics_json = metrics_out.str();
  return capture;
}

TEST(ObsDeterminism, TraceAndMetricsIdenticalAcrossEngines) {
  const TelemetryCapture batched = RunTelemetryChurnCell(true);
  const TelemetryCapture legacy = RunTelemetryChurnCell(false);
  EXPECT_EQ(batched.trace_json, legacy.trace_json);
  EXPECT_EQ(batched.metrics_json, legacy.metrics_json);
  EXPECT_EQ(batched.result.accesses, legacy.result.accesses);
  // The churn cell actually exercises the interesting tracks.
  EXPECT_NE(batched.trace_json.find("promote_batch"), std::string::npos);
  EXPECT_NE(batched.trace_json.find("arrival"), std::string::npos);
  EXPECT_NE(batched.trace_json.find("quota/controller"),
            std::string::npos);
}

TEST(ObsDeterminism, TraceAndMetricsIdenticalLiveVsReplay) {
  SimulationConfig config;
  config.max_accesses = 300000;
  config.seed = 29;

  const auto run = [&config](Workload* workload) {
    MetricRegistry metrics;
    TraceEmitter trace(1, "cell");
    auto policy = MakePolicy("HybridTier");
    SimulationConfig cell_config = config;
    cell_config.telemetry.metrics = &metrics;
    cell_config.telemetry.trace = &trace;
    RunSimulation(cell_config, workload, policy.get());
    std::ostringstream trace_out;
    trace.WriteJson(trace_out);
    std::ostringstream metrics_out;
    metrics.WriteJson(metrics_out);
    return std::pair<std::string, std::string>(trace_out.str(),
                                               metrics_out.str());
  };

  auto live_workload = MakeWorkload("zipf", 0.25, 29);
  const auto live = run(live_workload.get());

  auto recorded_workload = MakeWorkload("zipf", 0.25, 29);
  auto trace = std::make_shared<const RecordedTrace>(
      RecordTrace(*recorded_workload, config.max_accesses));
  ReplayWorkload replay(trace);
  const auto replayed = run(&replay);

  EXPECT_EQ(live.first, replayed.first);
  EXPECT_EQ(live.second, replayed.second);
}

TEST(ObsDeterminism, TelemetryDoesNotPerturbTheSimulation) {
  const auto run = [](bool with_telemetry) {
    MetricRegistry metrics;
    TraceEmitter trace;
    StageProfiler stages;
    auto workload = MakeWorkload("zipf", 0.25, 17);
    auto policy = MakePolicy("HybridTier");
    SimulationConfig config;
    config.max_accesses = 300000;
    config.seed = 17;
    if (with_telemetry) {
      config.telemetry.metrics = &metrics;
      config.telemetry.trace = &trace;
      config.telemetry.stages = &stages;
    }
    return RunSimulation(config, workload.get(), policy.get());
  };
  const SimulationResult plain = run(false);
  const SimulationResult instrumented = run(true);
  EXPECT_EQ(plain.ops, instrumented.ops);
  EXPECT_EQ(plain.accesses, instrumented.accesses);
  EXPECT_EQ(plain.duration_ns, instrumented.duration_ns);
  EXPECT_EQ(plain.fast_mem_accesses, instrumented.fast_mem_accesses);
  EXPECT_EQ(plain.migration.promoted_pages,
            instrumented.migration.promoted_pages);
  EXPECT_EQ(plain.migration.demoted_pages,
            instrumented.migration.demoted_pages);
  EXPECT_EQ(plain.median_latency_ns, instrumented.median_latency_ns);
  EXPECT_EQ(plain.p99_latency_ns, instrumented.p99_latency_ns);
}

TEST(ObsDeterminism, SweepMergedTelemetryIsJobsInvariant) {
  // The ht_run --ratio pattern: preallocated per-cell emitters indexed
  // by flat cell index, merged in index order after the run.
  const auto run_sweep = [](unsigned jobs) {
    SweepGrid grid;
    grid.AddAxis("seed", {"3", "5", "7", "9"});
    std::vector<std::unique_ptr<TraceEmitter>> traces(grid.cell_count());
    std::vector<std::unique_ptr<MetricRegistry>> metrics(
        grid.cell_count());
    SweepOptions options;
    options.jobs = jobs;
    options.report_wall_time = false;
    SweepRunner runner(options);
    runner.Run(grid, [&](const SweepCell& cell) -> int {
      traces[cell.index()] = std::make_unique<TraceEmitter>(
          static_cast<uint32_t>(cell.index() + 1),
          "seed=" + cell.Get("seed"));
      metrics[cell.index()] = std::make_unique<MetricRegistry>();
      auto workload = MakeWorkload(
          "zipf", 0.1, std::stoull(cell.Get("seed")));
      auto policy = MakePolicy("HybridTier");
      SimulationConfig config;
      config.max_accesses = 100000;
      config.seed = std::stoull(cell.Get("seed"));
      config.telemetry.trace = traces[cell.index()].get();
      config.telemetry.metrics = metrics[cell.index()].get();
      RunSimulation(config, workload.get(), policy.get());
      return 0;
    });
    std::vector<const TraceEmitter*> emitters;
    for (const auto& trace : traces) emitters.push_back(trace.get());
    std::ostringstream trace_out;
    WriteTraceJson(trace_out, emitters);
    std::ostringstream metrics_out;
    for (const auto& registry : metrics) {
      registry->WriteJson(metrics_out);
    }
    return std::pair<std::string, std::string>(trace_out.str(),
                                               metrics_out.str());
  };
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(ObsIntegration, SimulationRegistersTheMetricCatalog) {
  MetricRegistry metrics;
  auto workload = MakeWorkload("zipf", 0.1, 7);
  auto policy = MakePolicy("Memtis");
  SimulationConfig config;
  config.max_accesses = 300000;  // Long enough for interval snapshots.
  config.seed = 7;
  config.telemetry.metrics = &metrics;
  const SimulationResult result =
      RunSimulation(config, workload.get(), policy.get());

  std::ostringstream out;
  metrics.WriteJson(out);
  const std::string text = out.str();
  for (const char* name :
       {"sim/ops", "sim/accesses", "mem/fast_used_units",
        "migration/promoted_pages", "migration/demoted_pages",
        "cache/llc_app_misses", "cache/llc_tiering_misses",
        "sampler/samples_taken", "policy/metadata_bytes",
        "sim/op_latency_ns", "mem/endpoint0/bytes",
        "mem/endpoint0/accesses", "mem/endpoint0/resident_units",
        "mem/endpoint0/queue_delay_ns"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // The final section mirrors the result struct for pushed counters.
  std::ostringstream expected;
  expected << "\"sim/accesses\": " << result.accesses;
  EXPECT_NE(text.find(expected.str()), std::string::npos);
  EXPECT_GE(metrics.snapshot_count(), 2u);
}

}  // namespace
}  // namespace hybridtier
