/**
 * @file
 * Unit tests for src/policies: aging, LRU list, Memtis, AutoNUMA, TPP,
 * ARC, TwoQ, static policies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "mem/migration.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "policies/aging.h"
#include "policies/arc.h"
#include "policies/autonuma.h"
#include "policies/lru_list.h"
#include "policies/memtis.h"
#include "policies/policy.h"
#include "policies/static_policy.h"
#include "policies/tpp.h"
#include "policies/twoq.h"

namespace hybridtier {
namespace {

/** Minimal substrate for driving a policy by hand. */
class PolicyHarness {
 public:
  PolicyHarness(uint64_t footprint, uint64_t fast_capacity,
                AllocationPolicy allocation = AllocationPolicy::kFastFirst)
      : memory_(footprint, fast_capacity, footprint, allocation),
        perf_(PerfModelConfig{}, DefaultFastTier(fast_capacity),
              DefaultSlowTier(footprint)),
        engine_(&memory_, &perf_) {
    // The harness never replays metadata traffic; count without
    // buffering (the drop-in equivalent of the old null sink).
    sink_.SetRecording(false);
    context_.memory = &memory_;
    context_.migration = &engine_;
    context_.metadata_sink = &sink_;
    context_.footprint_units = footprint;
    context_.fast_capacity_units = fast_capacity;
  }

  void Bind(TieringPolicy* policy) { policy->Bind(context_); }

  /** Touches pages [0, n) to make them resident. */
  void TouchAll(uint64_t n, TimeNs now = 0) {
    for (PageId page = 0; page < n; ++page) memory_.Touch(page, now);
  }

  SampleRecord Sample(PageId page, TimeNs now) {
    return SampleRecord{.page = page,
                        .tier = memory_.TierOf(page),
                        .time_ns = now};
  }

  TieredMemory& memory() { return memory_; }
  MigrationEngine& engine() { return engine_; }

 private:
  TieredMemory memory_;
  PerfModel perf_;
  MigrationEngine engine_;
  MetadataTrafficCounter sink_;
  PolicyContext context_;
};

// -------------------------------------------------------------- Aging --

TEST(ClockAger, AgesUnaccessedPages) {
  ClockAger ager(10);
  ager.MarkAccessed(3);
  ager.Scan(0, 10);
  EXPECT_EQ(ager.AgeOf(3), 0u);
  EXPECT_EQ(ager.AgeOf(4), 1u);
  ager.Scan(0, 10);
  EXPECT_EQ(ager.AgeOf(3), 1u);  // No access since harvest.
  EXPECT_EQ(ager.AgeOf(4), 2u);
}

TEST(ClockAger, AccessResetsAge) {
  ClockAger ager(4);
  ager.Scan(0, 4);
  ager.Scan(0, 4);
  EXPECT_EQ(ager.AgeOf(1), 2u);
  ager.MarkAccessed(1);
  ager.Scan(0, 4);
  EXPECT_EQ(ager.AgeOf(1), 0u);
}

TEST(ClockAger, ScanClipsAtEnd) {
  ClockAger ager(4);
  EXPECT_EQ(ager.Scan(2, 100), 2u);
}

TEST(ClockAger, AgeSaturates) {
  ClockAger ager(1);
  for (int i = 0; i < 300; ++i) ager.Scan(0, 1);
  EXPECT_EQ(ager.AgeOf(0), 255u);
}

// ------------------------------------------------------------ LruList --

TEST(LruList, OrderAndMembership) {
  LruList list;
  list.PushMru(1);
  list.PushMru(2);
  list.PushMru(3);
  EXPECT_TRUE(list.Contains(2));
  EXPECT_EQ(list.PeekLru(), 1u);
  EXPECT_EQ(list.PopLru(), 1u);
  EXPECT_FALSE(list.Contains(1));
  EXPECT_EQ(list.size(), 2u);
}

TEST(LruList, MoveToMruChangesEvictionOrder) {
  LruList list;
  list.PushMru(1);
  list.PushMru(2);
  list.PushMru(3);
  EXPECT_TRUE(list.MoveToMru(1));
  EXPECT_EQ(list.PopLru(), 2u);
}

TEST(LruList, RemoveMiddle) {
  LruList list;
  list.PushMru(1);
  list.PushMru(2);
  list.PushMru(3);
  EXPECT_TRUE(list.Remove(2));
  EXPECT_FALSE(list.Remove(2));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopLru(), 1u);
  EXPECT_EQ(list.PopLru(), 3u);
}

TEST(LruList, MoveMissingReturnsFalse) {
  LruList list;
  EXPECT_FALSE(list.MoveToMru(9));
}

// ------------------------------------------------------------- Memtis --

TEST(Memtis, PromotesHotSlowPages) {
  PolicyHarness harness(1000, 100);
  MemtisConfig config;
  config.promo_batch_samples = 8;
  MemtisPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(1000);  // Pages 100.. are in slow; fast is full.

  // Background watermark demotion must free headroom first (fast is
  // 100% full after first-touch allocation), as kswapd-style reclaim
  // does in the real system.
  policy.Tick(kMillisecond);
  ASSERT_GT(harness.memory().FreePages(Tier::kFast), 0u);

  // Hammer slow page 500 with samples.
  for (int i = 0; i < 64; ++i) {
    policy.OnSample(harness.Sample(500, i * 100));
  }
  EXPECT_EQ(harness.memory().TierOf(500), Tier::kFast);
  EXPECT_GT(harness.engine().stats().promoted_pages, 0u);
}

TEST(Memtis, ThresholdTracksBudget) {
  PolicyHarness harness(1000, 10);
  MemtisConfig config;
  config.promo_batch_samples = 1000000;  // No flushes during the test.
  MemtisPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(1000);
  // 100 distinct warm pages, 5 very hot pages.
  for (PageId page = 0; page < 100; ++page) {
    policy.OnSample(harness.Sample(page, 0));
  }
  for (int round = 0; round < 50; ++round) {
    for (PageId page = 0; page < 5; ++page) {
      policy.OnSample(harness.Sample(900 + page, 0));
    }
  }
  policy.Tick(kMillisecond);
  // Budget 10 < 100 warm pages: the threshold must exceed 1.
  EXPECT_GT(policy.hot_threshold(), 1u);
}

TEST(Memtis, CoolingHalvesCounters) {
  PolicyHarness harness(100, 10);
  MemtisConfig config;
  config.cooling_period_samples = 50;
  config.promo_batch_samples = 1000000;
  MemtisPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);
  for (int i = 0; i < 120; ++i) policy.OnSample(harness.Sample(5, i));
  EXPECT_GE(policy.coolings(), 2u);
}

TEST(Memtis, WatermarkDemotionFreesSpace) {
  PolicyHarness harness(200, 50);
  MemtisConfig config;
  config.demote_trigger_frac = 0.1;
  config.demote_target_frac = 0.2;
  MemtisPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(200);  // Fast completely full.
  EXPECT_EQ(harness.memory().FreePages(Tier::kFast), 0u);
  policy.Tick(kMillisecond);
  EXPECT_GE(harness.memory().FreePages(Tier::kFast), 10u);
}

TEST(Memtis, MetadataIs16BytesPerPage) {
  PolicyHarness harness(1 << 16, 1 << 10);
  MemtisPolicy policy;
  harness.Bind(&policy);
  // 16 B per page over all pages (+ histogram): the 0.39% figure.
  EXPECT_GE(policy.MetadataBytes(), (1u << 16) * 16u);
  EXPECT_LT(policy.MetadataBytes(), (1u << 16) * 16u + 4096u);
}

// ----------------------------------------------------------- AutoNUMA --

TEST(AutoNuma, PromotesOnFastHintFault) {
  PolicyHarness harness(100, 10);
  AutoNumaConfig config;
  config.promotion_latency_ns = kMillisecond;
  AutoNumaPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);
  // Make room in the fast tier (it filled up at first touch).
  ASSERT_TRUE(harness.memory().Migrate(0, Tier::kSlow));

  // Protect slow page 50, then fault it quickly.
  harness.memory().Protect(PageRange{50, 51}, 1000);
  const TouchResult touch = harness.memory().Touch(50, 2000);
  ASSERT_TRUE(touch.hint_fault);
  policy.OnAccess(50, touch, 2000);
  EXPECT_EQ(policy.hint_faults(), 1u);
  EXPECT_EQ(policy.fault_promotions(), 1u);
  EXPECT_EQ(harness.memory().TierOf(50), Tier::kFast);
}

TEST(AutoNuma, IgnoresSlowFaults) {
  PolicyHarness harness(100, 10);
  AutoNumaConfig config;
  config.promotion_latency_ns = kMillisecond;
  AutoNumaPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);

  harness.memory().Protect(PageRange{60, 61}, 0);
  const TouchResult touch = harness.memory().Touch(60, 10 * kMillisecond);
  ASSERT_TRUE(touch.hint_fault);
  policy.OnAccess(60, touch, 10 * kMillisecond);
  EXPECT_EQ(policy.fault_promotions(), 0u);
  EXPECT_EQ(harness.memory().TierOf(60), Tier::kSlow);
}

TEST(AutoNuma, TickProtectsChunks) {
  PolicyHarness harness(100, 100);
  AutoNumaConfig config;
  config.scan_chunk_units = 10;
  AutoNumaPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);
  policy.Tick(0);
  uint64_t protected_count = 0;
  for (PageId page = 0; page < 100; ++page) {
    protected_count += harness.memory().IsProtected(page);
  }
  EXPECT_EQ(protected_count, 10u);
}

TEST(AutoNuma, DemotesAgedPagesUnderPressure) {
  PolicyHarness harness(100, 50);
  AutoNumaConfig config;
  config.demote_trigger_frac = 0.1;
  config.demote_target_frac = 0.2;
  AutoNumaPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);  // Fast full (50 pages).
  // Two ticks age every page (no accesses in between).
  policy.Tick(kMillisecond);
  policy.Tick(2 * kMillisecond);
  EXPECT_GE(harness.memory().FreePages(Tier::kFast), 5u);
}

// ---------------------------------------------------------------- TPP --

TEST(Tpp, SecondFaultWithinWindowPromotes) {
  PolicyHarness harness(100, 10);
  TppConfig config;
  config.active_window_ns = kSecond;
  TppPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);
  // Make room in the fast tier (it filled up at first touch).
  ASSERT_TRUE(harness.memory().Migrate(0, Tier::kSlow));

  // First fault: remembered, not promoted.
  harness.memory().Protect(PageRange{50, 51}, 0);
  TouchResult touch = harness.memory().Touch(50, 1000);
  policy.OnAccess(50, touch, 1000);
  EXPECT_EQ(harness.memory().TierOf(50), Tier::kSlow);

  // Second fault within the window: promoted.
  harness.memory().Protect(PageRange{50, 51}, 2000);
  touch = harness.memory().Touch(50, 3000);
  policy.OnAccess(50, touch, 3000);
  EXPECT_EQ(policy.fault_promotions(), 1u);
  EXPECT_EQ(harness.memory().TierOf(50), Tier::kFast);
}

TEST(Tpp, SecondFaultOutsideWindowDoesNot) {
  PolicyHarness harness(100, 10);
  TppConfig config;
  config.active_window_ns = kMillisecond;
  TppPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(100);

  harness.memory().Protect(PageRange{50, 51}, 0);
  TouchResult touch = harness.memory().Touch(50, 1000);
  policy.OnAccess(50, touch, 1000);
  harness.memory().Protect(PageRange{50, 51}, 2000);
  touch = harness.memory().Touch(50, 10 * kMillisecond);
  policy.OnAccess(50, touch, 10 * kMillisecond);
  EXPECT_EQ(policy.fault_promotions(), 0u);
  EXPECT_EQ(harness.memory().TierOf(50), Tier::kSlow);
}

// ---------------------------------------------------------------- ARC --

TEST(Arc, AdmitsOnMissAndCachesInFast) {
  PolicyHarness harness(100, 10, AllocationPolicy::kSlowOnly);
  ArcPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);  // All pages in slow.

  policy.OnSample(harness.Sample(7, 0));
  EXPECT_EQ(harness.memory().TierOf(7), Tier::kFast);
  EXPECT_EQ(policy.t1_size(), 1u);
}

TEST(Arc, SecondAccessMovesToT2) {
  PolicyHarness harness(100, 10, AllocationPolicy::kSlowOnly);
  ArcPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);
  policy.OnSample(harness.Sample(7, 0));
  policy.OnSample(harness.Sample(7, 1));
  EXPECT_EQ(policy.t1_size(), 0u);
  EXPECT_EQ(policy.t2_size(), 1u);
}

TEST(Arc, EvictsWhenFull) {
  PolicyHarness harness(100, 4, AllocationPolicy::kSlowOnly);
  ArcPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);
  // Pages 0..3 fill T1; re-referencing page 0 moves it to T2, so later
  // misses evict through REPLACE (which records ghosts in B1).
  for (PageId page = 0; page < 4; ++page) {
    policy.OnSample(harness.Sample(page, page));
  }
  policy.OnSample(harness.Sample(0, 10));
  for (PageId page = 10; page < 20; ++page) {
    policy.OnSample(harness.Sample(page, page));
  }
  // The fast tier never exceeds its capacity.
  EXPECT_LE(harness.memory().UsedPages(Tier::kFast), 4u);
  EXPECT_GT(harness.engine().stats().demoted_pages, 0u);
  // Ghost lists remember evicted pages.
  EXPECT_GT(policy.b1_size(), 0u);
}

TEST(Arc, GhostHitAdaptsTarget) {
  PolicyHarness harness(100, 4, AllocationPolicy::kSlowOnly);
  ArcPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);
  // Build up T2 traffic so REPLACE pushes T1 victims into the B1 ghost
  // list (a pure cold-miss stream never populates ghosts in ARC).
  for (PageId page = 0; page < 4; ++page) {
    policy.OnSample(harness.Sample(page, page));
  }
  policy.OnSample(harness.Sample(0, 10));
  // One miss: REPLACE pops T1's LRU (page 1) into the B1 ghost list.
  policy.OnSample(harness.Sample(10, 20));
  ASSERT_GT(policy.b1_size(), 0u);
  // Re-reference the ghost: p must grow (recency favored).
  const uint64_t p_before = policy.target_p();
  policy.OnSample(harness.Sample(1, 100));
  EXPECT_GT(policy.target_p(), p_before);
}

TEST(Arc, CachedListsBounded) {
  PolicyHarness harness(200, 8, AllocationPolicy::kSlowOnly);
  ArcPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(200);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    policy.OnSample(harness.Sample(rng.NextBounded(200), i));
  }
  EXPECT_LE(policy.t1_size() + policy.t2_size(), 8u);
  EXPECT_LE(policy.b1_size() + policy.b2_size(), 2 * 8u + 1u);
}

// --------------------------------------------------------------- TwoQ --

TEST(TwoQ, AdmitsToA1inFirst) {
  PolicyHarness harness(100, 8, AllocationPolicy::kSlowOnly);
  TwoQPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);
  policy.OnSample(harness.Sample(3, 0));
  EXPECT_EQ(policy.a1in_size(), 1u);
  EXPECT_EQ(policy.am_size(), 0u);
  EXPECT_EQ(harness.memory().TierOf(3), Tier::kFast);
}

TEST(TwoQ, GhostHitEntersAm) {
  PolicyHarness harness(100, 8, AllocationPolicy::kSlowOnly);
  TwoQPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);
  // Overflow the cache (capacity 8): evictions go through A1in's FIFO
  // tail into the A1out ghost queue.
  for (PageId page = 0; page < 12; ++page) {
    policy.OnSample(harness.Sample(page, page));
  }
  ASSERT_GT(policy.a1out_size(), 0u);
  // Page 0 fell out of A1in into A1out; re-access promotes it to Am.
  policy.OnSample(harness.Sample(0, 100));
  EXPECT_EQ(policy.am_size(), 1u);
  EXPECT_EQ(harness.memory().TierOf(0), Tier::kFast);
}

TEST(TwoQ, CapacityRespected) {
  PolicyHarness harness(200, 8, AllocationPolicy::kSlowOnly);
  TwoQPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(200);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    policy.OnSample(harness.Sample(rng.NextBounded(200), i));
  }
  EXPECT_LE(harness.memory().UsedPages(Tier::kFast), 8u);
  EXPECT_LE(policy.a1out_size(), 4u);  // Kout = c/2.
}

TEST(TwoQ, A1inHitLeavesOrderUnchanged) {
  PolicyHarness harness(100, 8, AllocationPolicy::kSlowOnly);
  TwoQPolicy policy;
  harness.Bind(&policy);
  harness.TouchAll(100);
  policy.OnSample(harness.Sample(1, 0));
  policy.OnSample(harness.Sample(1, 1));  // Correlated re-reference.
  EXPECT_EQ(policy.a1in_size(), 1u);
  EXPECT_EQ(policy.am_size(), 0u);
}

// ------------------------------------------------------------- Static --

TEST(Static, NamesAndNoMigration) {
  StaticPolicy all_fast(StaticKind::kAllFast);
  StaticPolicy first_touch(StaticKind::kFirstTouch);
  EXPECT_STREQ(all_fast.name(), "AllFast");
  EXPECT_STREQ(first_touch.name(), "FirstTouch");
  EXPECT_EQ(all_fast.MetadataBytes(), 0u);

  PolicyHarness harness(100, 100);
  harness.Bind(&all_fast);
  harness.TouchAll(100);
  all_fast.OnSample(harness.Sample(5, 0));
  all_fast.Tick(kMillisecond);
  EXPECT_EQ(harness.engine().stats().promoted_pages, 0u);
  EXPECT_EQ(harness.engine().stats().demoted_pages, 0u);
}

}  // namespace
}  // namespace hybridtier
