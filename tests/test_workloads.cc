/**
 * @file
 * Unit tests for src/workloads: address space, Zipf sampling, CacheLib,
 * graph generation, GAP kernels, streams, Silo, XGBoost, and the
 * factory.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "common/units.h"
#include "mem/page.h"
#include "workloads/address_space.h"
#include "workloads/cachelib.h"
#include "workloads/factory.h"
#include "workloads/gap_kernels.h"
#include "workloads/graph.h"
#include "workloads/silo_ycsb.h"
#include "workloads/spec_stream.h"
#include "workloads/xgboost.h"
#include "workloads/zipf.h"

namespace hybridtier {
namespace {

// ------------------------------------------------------- AddressSpace --

TEST(AddressSpace, PageAlignedRegions) {
  AddressSpace space;
  const VirtualArray a = space.Allocate(8, 100, "a");   // 800 B.
  const VirtualArray b = space.Allocate(4, 10, "b");
  EXPECT_EQ(a.base(), 0u);
  EXPECT_EQ(b.base(), kPageSize);  // Rounded up to page boundary.
  EXPECT_EQ(space.total_pages(), 2u);
  EXPECT_EQ(space.regions().size(), 2u);
}

TEST(AddressSpace, ElementAddressing) {
  AddressSpace space;
  const VirtualArray a = space.Allocate(8, 100, "a");
  EXPECT_EQ(a.AddrOf(0), a.base());
  EXPECT_EQ(a.AddrOf(5), a.base() + 40);
  EXPECT_EQ(a.bytes(), 800u);
}

// --------------------------------------------------------------- Zipf --

TEST(Zipf, RanksInDomain) {
  Rng rng(3);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(zipf.Next(rng), 1000u);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Rng rng(5);
  ZipfGenerator zipf(100000, 0.99);
  uint64_t top_decile = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) top_decile += zipf.Next(rng) < 10000;
  // YCSB-style zipf 0.99: the top 10% of ranks draw the large majority.
  EXPECT_GT(static_cast<double>(top_decile) / kDraws, 0.70);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(7);
  ZipfGenerator zipf(1000, 0.9);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[999]);
}

TEST(Zipf, FrequenciesMatchTheory) {
  Rng rng(9);
  const double theta = 0.99;
  ZipfGenerator zipf(1000, theta);
  std::vector<int> counts(1000, 0);
  constexpr int kDraws = 500000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next(rng)]++;
  // P(rank 0) / P(rank 9) should be (10/1)^theta.
  const double measured =
      static_cast<double>(counts[0]) / std::max(counts[9], 1);
  const double expected = std::pow(10.0, theta);
  EXPECT_NEAR(measured / expected, 1.0, 0.25);
}

TEST(Zipf, SingleElementDomain) {
  Rng rng(11);
  ZipfGenerator zipf(1, 0.99);
  EXPECT_EQ(zipf.Next(rng), 0u);
}

// ----------------------------------------------------------- CacheLib --

TEST(CacheLib, OpsAccessIndexAndPayload) {
  CacheLibConfig config = CacheLibWorkload::CdnConfig(2000, 1);
  CacheLibWorkload workload(config);
  OpTrace op;
  ASSERT_TRUE(workload.NextOp(0, &op));
  ASSERT_GE(op.size(), 2u);  // Index entry + at least one payload page.
  // All addresses inside the footprint.
  for (const MemoryAccess& access : op.accesses) {
    EXPECT_LT(PageOfAddr(access.addr), workload.footprint_pages());
  }
}

TEST(CacheLib, PayloadSpansObjectPages) {
  CacheLibConfig config = CacheLibWorkload::CdnConfig(2000, 1);
  CacheLibWorkload workload(config);
  OpTrace op;
  // Across many ops, op size tracks the object page count + 1 (index).
  for (int i = 0; i < 200; ++i) {
    workload.NextOp(0, &op);
    EXPECT_GE(op.size(), 2u);
    EXPECT_LE(op.size(), 128u / 4 + 2);  // <= max object pages + index.
  }
}

TEST(CacheLib, SocialObjectsSmallerThanCdn) {
  CacheLibWorkload cdn(CacheLibWorkload::CdnConfig(2000, 1));
  CacheLibWorkload social(CacheLibWorkload::SocialGraphConfig(2000, 1));
  // Same object count: social footprint must be much smaller.
  EXPECT_LT(social.footprint_pages() * 4, cdn.footprint_pages());
}

TEST(CacheLib, GetRatioControlsWrites) {
  CacheLibConfig config = CacheLibWorkload::CdnConfig(500, 1);
  config.get_ratio = 0.0;  // All SETs.
  CacheLibWorkload workload(config);
  OpTrace op;
  workload.NextOp(0, &op);
  // Payload accesses of a SET are writes (index lookup is a read).
  EXPECT_TRUE(op.accesses.back().is_write);
}

TEST(CacheLib, ChurnRemapsHotRanks) {
  CacheLibConfig config = CacheLibWorkload::CdnConfig(5000, 1);
  config.churn = {{.time_ns = 1000, .hot_fraction = 1.0}};
  CacheLibWorkload workload(config);

  std::vector<uint64_t> hot_before;
  for (uint64_t rank = 0; rank < 100; ++rank) {
    hot_before.push_back(workload.ObjectOfRank(rank));
  }
  OpTrace op;
  workload.NextOp(0, &op);  // Before the event.
  EXPECT_EQ(workload.churn_events_applied(), 0u);
  workload.NextOp(2000, &op);  // Triggers the event.
  EXPECT_EQ(workload.churn_events_applied(), 1u);

  size_t changed = 0;
  for (uint64_t rank = 0; rank < 100; ++rank) {
    changed += workload.ObjectOfRank(rank) != hot_before[rank];
  }
  // Remapping the full hot set: most of the top-100 ranks now map to
  // different objects.
  EXPECT_GT(changed, 50u);
}

TEST(CacheLib, ChurnEventsFireOnce) {
  CacheLibConfig config = CacheLibWorkload::CdnConfig(1000, 1);
  config.churn = {{.time_ns = 10, .hot_fraction = 0.5},
                  {.time_ns = 20, .hot_fraction = 0.5}};
  CacheLibWorkload workload(config);
  OpTrace op;
  workload.NextOp(15, &op);
  EXPECT_EQ(workload.churn_events_applied(), 1u);
  workload.NextOp(25, &op);
  EXPECT_EQ(workload.churn_events_applied(), 2u);
  workload.NextOp(1000000, &op);
  EXPECT_EQ(workload.churn_events_applied(), 2u);
}

// -------------------------------------------------------------- Graph --

TEST(Graph, KroneckerStructureValid) {
  const Graph graph = GenerateKronecker(10, 8, 1);
  graph.Validate();
  EXPECT_EQ(graph.num_nodes, 1024u);
  EXPECT_EQ(graph.num_edges(), 8192u);
}

TEST(Graph, UniformStructureValid) {
  const Graph graph = GenerateUniformRandom(10, 8, 1);
  graph.Validate();
  EXPECT_EQ(graph.num_nodes, 1024u);
  EXPECT_EQ(graph.num_edges(), 8192u);
}

TEST(Graph, KroneckerIsSkewedUniformIsNot) {
  const Graph kron = GenerateKronecker(12, 8, 1);
  const Graph urand = GenerateUniformRandom(12, 8, 1);
  auto max_degree = [](const Graph& g) {
    uint64_t max_deg = 0;
    for (uint64_t u = 0; u < g.num_nodes; ++u) {
      max_deg = std::max(max_deg, g.Degree(u));
    }
    return max_deg;
  };
  // Power-law hubs vs. Poisson-ish degrees.
  EXPECT_GT(max_degree(kron), 4 * max_degree(urand));
}

TEST(Graph, DeterministicForSeed) {
  const Graph a = GenerateKronecker(8, 4, 7);
  const Graph b = GenerateKronecker(8, 4, 7);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.row_offsets, b.row_offsets);
}

// -------------------------------------------------------- GAP kernels --

class GapKernelTest : public ::testing::TestWithParam<GapKernel> {};

TEST_P(GapKernelTest, EmitsInBoundsAccesses) {
  auto graph = std::make_shared<Graph>(GenerateKronecker(10, 8, 3));
  GapConfig config;
  config.kernel = GetParam();
  GapWorkload workload(graph, config, "gap-test");
  OpTrace op;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(workload.NextOp(0, &op));
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_LT(PageOfAddr(access.addr), workload.footprint_pages());
    }
  }
}

TEST_P(GapKernelTest, CompletesTrials) {
  auto graph = std::make_shared<Graph>(GenerateKronecker(8, 4, 3));
  GapConfig config;
  config.kernel = GetParam();
  config.pr_iterations = 2;
  GapWorkload workload(graph, config, "gap-test");
  OpTrace op;
  for (int i = 0; i < 400000 && workload.trials_completed() < 2; ++i) {
    workload.NextOp(0, &op);
  }
  EXPECT_GE(workload.trials_completed(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GapKernelTest,
                         ::testing::Values(GapKernel::kBfs, GapKernel::kCc,
                                           GapKernel::kPr));

TEST(GapKernels, BfsVisitsReachableNodes) {
  // Build a tiny known graph: a path 0 -> 1 -> 2 -> 3.
  Graph graph;
  graph.num_nodes = 4;
  graph.row_offsets = {0, 1, 2, 3, 3};
  graph.cols = {1, 2, 3};
  graph.Validate();
  GapConfig config;
  config.kernel = GapKernel::kBfs;
  GapWorkload workload(std::make_shared<Graph>(graph), config, "bfs");
  OpTrace op;
  for (int i = 0; i < 1000 && workload.trials_completed() < 1; ++i) {
    workload.NextOp(0, &op);
  }
  EXPECT_GE(workload.trials_completed(), 1u);
}

TEST(GapKernels, NamesExposed) {
  EXPECT_STREQ(GapKernelName(GapKernel::kBfs), "bfs");
  EXPECT_STREQ(GapKernelName(GapKernel::kCc), "cc");
  EXPECT_STREQ(GapKernelName(GapKernel::kPr), "pr");
}

// ------------------------------------------------------------ Streams --

TEST(Stream, SequentialSweepsWholeFootprint) {
  StreamConfig config = StreamWorkload::BwavesConfig(1 << 14);
  StreamWorkload workload(config, "bwaves-test");
  OpTrace op;
  std::set<PageId> pages;
  while (workload.sweeps_completed() < 1) {
    workload.NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      pages.insert(PageOfAddr(access.addr));
    }
  }
  // One full sweep touches nearly every page of every array.
  EXPECT_GT(pages.size(), workload.footprint_pages() * 9 / 10);
}

TEST(Stream, StencilStaysInBounds) {
  StreamConfig config = StreamWorkload::RomsConfig(1 << 14);
  StreamWorkload workload(config, "roms-test");
  OpTrace op;
  for (int i = 0; i < 20000; ++i) {
    workload.NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_LT(PageOfAddr(access.addr), workload.footprint_pages());
    }
  }
}

TEST(Stream, WritesPresent) {
  StreamConfig config = StreamWorkload::BwavesConfig(1 << 14);
  StreamWorkload workload(config, "bwaves-test");
  OpTrace op;
  workload.NextOp(0, &op);
  bool any_write = false;
  for (const MemoryAccess& access : op.accesses) {
    any_write |= access.is_write;
  }
  EXPECT_TRUE(any_write);
}

// --------------------------------------------------------------- Silo --

TEST(Silo, IndexWalkThenRecord) {
  SiloConfig config;
  config.num_records = 1 << 14;
  SiloWorkload workload(config);
  OpTrace op;
  workload.NextOp(0, &op);
  // One access per index level plus two record lines.
  EXPECT_EQ(op.size(), workload.index_levels() + 2);
}

TEST(Silo, RootIsHottestPage) {
  SiloConfig config;
  config.num_records = 1 << 14;
  SiloWorkload workload(config);
  OpTrace op;
  std::map<PageId, int> page_counts;
  for (int i = 0; i < 5000; ++i) {
    workload.NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      page_counts[PageOfAddr(access.addr)]++;
    }
  }
  // The root index node page is touched by every op.
  const PageId root_page = 0;  // First allocation = root level.
  EXPECT_EQ(page_counts[root_page], 5000);
}

TEST(Silo, YcsbCIsReadOnly) {
  SiloConfig config;
  config.num_records = 4096;
  SiloWorkload workload(config);
  OpTrace op;
  for (int i = 0; i < 1000; ++i) {
    workload.NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_FALSE(access.is_write);
    }
  }
}

// ------------------------------------------------------------ XGBoost --

TEST(Xgboost, RoundsRotateHotColumns) {
  XgboostConfig config;
  config.num_features = 64;
  config.num_rows = 2000;
  XgboostWorkload workload(config);
  const std::vector<uint32_t> first_round = workload.current_columns();
  OpTrace op;
  while (workload.rounds_completed() < 1) workload.NextOp(0, &op);
  const std::vector<uint32_t>& second_round = workload.current_columns();
  EXPECT_EQ(first_round.size(), second_round.size());
  EXPECT_NE(first_round, second_round);
}

TEST(Xgboost, ColumnSubsetSizeMatchesColsample) {
  XgboostConfig config;
  config.num_features = 100;
  config.colsample = 0.25;
  config.num_rows = 1000;
  XgboostWorkload workload(config);
  EXPECT_EQ(workload.current_columns().size(), 25u);
}

TEST(Xgboost, AccessesInBounds) {
  XgboostConfig config;
  config.num_features = 32;
  config.num_rows = 4000;
  XgboostWorkload workload(config);
  OpTrace op;
  for (int i = 0; i < 10000; ++i) {
    workload.NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_LT(PageOfAddr(access.addr), workload.footprint_pages());
    }
  }
}

// ------------------------------------------------------------ Factory --

TEST(Factory, AllIdsConstruct) {
  for (const std::string& id : AllWorkloadIds()) {
    SCOPED_TRACE(id);
    auto workload = MakeWorkload(id, /*scale=*/0.05, /*seed=*/1);
    ASSERT_NE(workload, nullptr);
    EXPECT_GT(workload->footprint_pages(), 0u);
    OpTrace op;
    EXPECT_TRUE(workload->NextOp(0, &op));
    EXPECT_FALSE(op.accesses.empty());
  }
}

TEST(Factory, TwelveWorkloadsInPaperOrder) {
  EXPECT_EQ(AllWorkloadIds().size(), 12u);
  EXPECT_EQ(AllWorkloadIds().front(), "cdn");
  EXPECT_TRUE(IsWorkloadId("pr-u"));
  EXPECT_FALSE(IsWorkloadId("nonsense"));
}

TEST(Factory, ScaleChangesFootprint) {
  auto small = MakeWorkload("silo", 0.05, 1);
  auto large = MakeWorkload("silo", 0.2, 1);
  EXPECT_LT(small->footprint_pages(), large->footprint_pages());
}

}  // namespace
}  // namespace hybridtier
