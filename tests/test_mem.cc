/**
 * @file
 * Unit tests for src/mem: page math, tiered memory placement/protection,
 * the performance model, and the migration engine.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/migration.h"
#include "mem/page.h"
#include "mem/perf_model.h"
#include "mem/tier.h"
#include "mem/tiered_memory.h"

namespace hybridtier {
namespace {

// --------------------------------------------------------------- Page --

TEST(Page, AddressMath) {
  EXPECT_EQ(PageOfAddr(0), 0u);
  EXPECT_EQ(PageOfAddr(kPageSize - 1), 0u);
  EXPECT_EQ(PageOfAddr(kPageSize), 1u);
  EXPECT_EQ(AddrOfPage(3), 3 * kPageSize);
  EXPECT_EQ(HugePageOf(511), 0u);
  EXPECT_EQ(HugePageOf(512), 1u);
  EXPECT_EQ(FirstPageOfHuge(2), 1024u);
}

TEST(Page, TrackingUnits) {
  EXPECT_EQ(TrackingUnitOfAddr(kPageSize + 5, PageMode::kRegular), 1u);
  EXPECT_EQ(TrackingUnitOfAddr(kHugePageSize + 5, PageMode::kHuge), 1u);
  EXPECT_EQ(PageBytes(PageMode::kRegular), kPageSize);
  EXPECT_EQ(PageBytes(PageMode::kHuge), kHugePageSize);
}

TEST(Page, RangeContains) {
  const PageRange range{10, 20};
  EXPECT_EQ(range.size(), 10u);
  EXPECT_TRUE(range.Contains(10));
  EXPECT_TRUE(range.Contains(19));
  EXPECT_FALSE(range.Contains(20));
}

// ------------------------------------------------------- TieredMemory --

TEST(TieredMemory, FastFirstAllocation) {
  TieredMemory mem(100, 10, 100);
  for (PageId page = 0; page < 10; ++page) {
    const TouchResult touch = mem.Touch(page, 0);
    EXPECT_TRUE(touch.first_touch);
    EXPECT_EQ(touch.tier, Tier::kFast);
  }
  // Fast is full: the next allocation overflows to slow.
  EXPECT_EQ(mem.Touch(10, 0).tier, Tier::kSlow);
  EXPECT_EQ(mem.UsedPages(Tier::kFast), 10u);
  EXPECT_EQ(mem.UsedPages(Tier::kSlow), 1u);
  EXPECT_EQ(mem.FreePages(Tier::kFast), 0u);
}

TEST(TieredMemory, SlowOnlyAllocation) {
  TieredMemory mem(100, 10, 100, AllocationPolicy::kSlowOnly);
  EXPECT_EQ(mem.Touch(0, 0).tier, Tier::kSlow);
  EXPECT_EQ(mem.UsedPages(Tier::kFast), 0u);
}

TEST(TieredMemory, SecondTouchIsNotFirstTouch) {
  TieredMemory mem(10, 5, 10);
  mem.Touch(3, 0);
  const TouchResult touch = mem.Touch(3, 10);
  EXPECT_FALSE(touch.first_touch);
  EXPECT_FALSE(touch.hint_fault);
}

TEST(TieredMemory, MigrateMovesBetweenTiers) {
  TieredMemory mem(10, 5, 10);
  mem.Touch(0, 0);
  EXPECT_EQ(mem.TierOf(0), Tier::kFast);
  EXPECT_TRUE(mem.Migrate(0, Tier::kSlow));
  EXPECT_EQ(mem.TierOf(0), Tier::kSlow);
  EXPECT_EQ(mem.UsedPages(Tier::kFast), 0u);
  EXPECT_EQ(mem.UsedPages(Tier::kSlow), 1u);
  EXPECT_TRUE(mem.Migrate(0, Tier::kFast));
  EXPECT_EQ(mem.TierOf(0), Tier::kFast);
}

TEST(TieredMemory, MigrateRejectsNoopAndFull) {
  TieredMemory mem(10, 2, 10);
  mem.Touch(0, 0);
  EXPECT_FALSE(mem.Migrate(0, Tier::kFast));  // Already there.
  mem.Touch(1, 0);                            // Fast now full.
  mem.Touch(2, 0);                            // Goes to slow.
  EXPECT_FALSE(mem.Migrate(2, Tier::kFast));  // No free fast page.
  EXPECT_FALSE(mem.Migrate(5, Tier::kFast));  // Not resident.
}

TEST(TieredMemory, ProtectionAndHintFaults) {
  TieredMemory mem(10, 10, 10);
  mem.Touch(4, 0);
  EXPECT_EQ(mem.Protect(PageRange{0, 10}, 100), 1u);  // Only resident.
  EXPECT_TRUE(mem.IsProtected(4));
  const TouchResult touch = mem.Touch(4, 250);
  EXPECT_TRUE(touch.hint_fault);
  EXPECT_EQ(touch.fault_latency_ns, 150u);
  // Fault cleared the protection: next touch is normal.
  EXPECT_FALSE(mem.Touch(4, 300).hint_fault);
}

TEST(TieredMemory, ProtectNonResidentDoesNothing) {
  TieredMemory mem(10, 10, 10);
  EXPECT_EQ(mem.Protect(PageRange{0, 10}, 0), 0u);
  const TouchResult touch = mem.Touch(0, 10);
  EXPECT_TRUE(touch.first_touch);
  EXPECT_FALSE(touch.hint_fault);
}

TEST(TieredMemory, ReleaseFreesResidentRange) {
  TieredMemory mem(20, 5, 20);
  for (PageId page = 0; page < 10; ++page) mem.Touch(page, 0);
  ASSERT_EQ(mem.UsedPages(Tier::kFast), 5u);
  ASSERT_EQ(mem.UsedPages(Tier::kSlow), 5u);

  // Release a range straddling fast residents {3,4}, slow residents
  // {5..9}, and a never-touched tail; only the resident pages count.
  EXPECT_EQ(mem.Release(PageRange{3, 15}), 7u);
  EXPECT_EQ(mem.UsedPages(Tier::kFast), 3u);
  EXPECT_EQ(mem.UsedPages(Tier::kSlow), 0u);
  EXPECT_FALSE(mem.IsResident(3));
  EXPECT_FALSE(mem.IsResident(9));
  EXPECT_TRUE(mem.IsResident(2));

  // A released page re-allocates like a fresh one (fast-first).
  const TouchResult touch = mem.Touch(3, 10);
  EXPECT_TRUE(touch.first_touch);
  EXPECT_EQ(touch.tier, Tier::kFast);
}

TEST(TieredMemory, ReleaseClearsProtection) {
  TieredMemory mem(10, 10, 10);
  mem.Touch(0, 0);
  mem.Protect(PageRange{0, 1}, 5);
  ASSERT_TRUE(mem.IsProtected(0));
  EXPECT_EQ(mem.Release(PageRange{0, 1}), 1u);
  EXPECT_FALSE(mem.IsProtected(0));
  EXPECT_FALSE(mem.Touch(0, 10).hint_fault);
}

TEST(TieredMemory, ScanResidentFiltersTier) {
  TieredMemory mem(20, 5, 20);
  for (PageId page = 0; page < 10; ++page) mem.Touch(page, 0);
  std::vector<PageId> fast_pages, slow_pages;
  mem.ScanResident(0, 20, Tier::kFast,
                   [&](PageId p) { fast_pages.push_back(p); });
  mem.ScanResident(0, 20, Tier::kSlow,
                   [&](PageId p) { slow_pages.push_back(p); });
  EXPECT_EQ(fast_pages.size(), 5u);
  EXPECT_EQ(slow_pages.size(), 5u);
  EXPECT_EQ(fast_pages.front(), 0u);
  EXPECT_EQ(slow_pages.front(), 5u);
}

TEST(TieredMemory, ScanChunkBounds) {
  TieredMemory mem(20, 20, 20);
  for (PageId page = 0; page < 20; ++page) mem.Touch(page, 0);
  std::vector<PageId> seen;
  const uint64_t visited =
      mem.ScanResident(15, 100, Tier::kFast,
                       [&](PageId p) { seen.push_back(p); });
  EXPECT_EQ(visited, 5u);  // Clipped at the footprint end.
  EXPECT_EQ(seen.size(), 5u);
}

// ---------------------------------------------------------- PerfModel --

PerfModel MakePerf(uint32_t threads = 1) {
  PerfModelConfig config;
  config.threads = threads;
  return PerfModel(config, DefaultFastTier(1000), DefaultSlowTier(10000));
}

TEST(PerfModel, IdleLatenciesMatchPaper) {
  PerfModel perf = MakePerf();
  // Paper §5.1: emulated CXL idle latency 124 ns; local DRAM ~80 ns.
  EXPECT_EQ(perf.IdleLatency(Tier::kSlow), 124u);
  EXPECT_EQ(perf.IdleLatency(Tier::kFast), 80u);
  EXPECT_EQ(perf.MemoryAccess(Tier::kSlow, 1000000), 124u);
}

TEST(PerfModel, SlowTierSlowerThanFast) {
  PerfModel perf = MakePerf();
  EXPECT_GT(perf.MemoryAccess(Tier::kSlow, 0),
            perf.MemoryAccess(Tier::kFast, kSecond));
}

TEST(PerfModel, QueueingDelayUnderBurst) {
  PerfModel perf = MakePerf(/*threads=*/16);
  // Back-to-back accesses at the same instant queue behind each other.
  const TimeNs first = perf.MemoryAccess(Tier::kSlow, 0);
  const TimeNs second = perf.MemoryAccess(Tier::kSlow, 0);
  EXPECT_GT(second, first);
}

TEST(PerfModel, QueueDelayCapped) {
  PerfModelConfig config;
  config.threads = 16;
  config.max_queue_delay_ns = 500;
  PerfModel perf(config, DefaultFastTier(1000), DefaultSlowTier(10000));
  for (int i = 0; i < 1000; ++i) perf.MemoryAccess(Tier::kSlow, 0);
  EXPECT_LE(perf.MemoryAccess(Tier::kSlow, 0), 124u + 500u);
}

TEST(PerfModel, MigrationCostScalesWithPages) {
  PerfModel perf = MakePerf();
  const TimeNs one = perf.MigrationCost(1, kPageSize, 0);
  const TimeNs hundred = perf.MigrationCost(100, kPageSize, kSecond);
  EXPECT_GT(hundred, one * 20);
  EXPECT_EQ(perf.MigrationCost(0, kPageSize, 0), 0u);
}

TEST(PerfModel, HugePageMigrationCostlier) {
  PerfModel perf = MakePerf();
  const TimeNs regular = perf.MigrationCost(1, kPageSize, 0);
  const TimeNs huge = perf.MigrationCost(1, kHugePageSize, kSecond);
  EXPECT_GT(huge, regular);
}

TEST(PerfModel, MigrationOccupiesChannels) {
  PerfModel perf = MakePerf();
  perf.MigrationCost(10000, kPageSize, 0);  // ~39 MiB copy.
  // A demand access right after the copy sees queueing delay.
  EXPECT_GT(perf.MemoryAccess(Tier::kSlow, 1), 124u);
  EXPECT_GE(perf.BytesTransferred(Tier::kFast), 10000u * kPageSize);
}

// ---------------------------------------------------- MigrationEngine --

TEST(MigrationEngine, PromoteAndDemoteBatches) {
  TieredMemory mem(100, 10, 100, AllocationPolicy::kSlowOnly);
  PerfModel perf = MakePerf();
  MigrationEngine engine(&mem, &perf);
  for (PageId page = 0; page < 20; ++page) mem.Touch(page, 0);

  const std::vector<PageId> batch = {0, 1, 2, 3, 4};
  const TimeNs cost = engine.Promote(batch, 0);
  EXPECT_GT(cost, 0u);
  EXPECT_EQ(engine.stats().promoted_pages, 5u);
  EXPECT_EQ(engine.stats().promotion_batches, 1u);
  EXPECT_EQ(mem.UsedPages(Tier::kFast), 5u);

  const std::vector<PageId> down = {0, 1};
  engine.Demote(down, 100);
  EXPECT_EQ(engine.stats().demoted_pages, 2u);
  EXPECT_EQ(mem.UsedPages(Tier::kFast), 3u);
}

TEST(MigrationEngine, FailedPromotionsCounted) {
  TieredMemory mem(100, 2, 100, AllocationPolicy::kSlowOnly);
  PerfModel perf = MakePerf();
  MigrationEngine engine(&mem, &perf);
  for (PageId page = 0; page < 5; ++page) mem.Touch(page, 0);
  const std::vector<PageId> batch = {0, 1, 2, 3};
  engine.Promote(batch, 0);
  EXPECT_EQ(engine.stats().promoted_pages, 2u);
  EXPECT_EQ(engine.stats().failed_promotions, 2u);
}

TEST(MigrationEngine, NonResidentPagesSkipped) {
  TieredMemory mem(100, 10, 100);
  PerfModel perf = MakePerf();
  MigrationEngine engine(&mem, &perf);
  const std::vector<PageId> batch = {50};
  EXPECT_EQ(engine.Promote(batch, 0), 0u);
  EXPECT_EQ(engine.stats().promoted_pages, 0u);
}

TEST(MigrationEngine, EmptyBatchFree) {
  TieredMemory mem(10, 5, 10);
  PerfModel perf = MakePerf();
  MigrationEngine engine(&mem, &perf);
  EXPECT_EQ(engine.Promote({}, 0), 0u);
  EXPECT_EQ(engine.stats().promotion_batches, 0u);
}

TEST(MigrationEngine, TracksMigrationTime) {
  TieredMemory mem(100, 50, 100, AllocationPolicy::kSlowOnly);
  PerfModel perf = MakePerf();
  MigrationEngine engine(&mem, &perf);
  for (PageId page = 0; page < 20; ++page) mem.Touch(page, 0);
  std::vector<PageId> batch;
  for (PageId page = 0; page < 20; ++page) batch.push_back(page);
  engine.Promote(batch, 0);
  EXPECT_EQ(engine.stats().migration_time_ns,
            engine.stats().migration_time_ns);
  EXPECT_GT(engine.stats().migration_time_ns, 20u * 1200u);
}

// ---------------------------------------------- per-region accounting --

/** Ground truth: rescan `mem` for resident pages of `tier` in range. */
uint64_t RescanResident(const TieredMemory& mem, PageRange range,
                        Tier tier) {
  uint64_t count = 0;
  mem.ScanResident(range.begin, range.size(), tier,
                   [&count](PageId) { ++count; });
  return count;
}

TEST(TieredMemory, RegionCountersMatchRescanThroughLifecycle) {
  TieredMemory mem(256, 64, 256, AllocationPolicy::kFastFirst);
  const std::vector<PageRange> regions = {PageRange{0, 128},
                                          PageRange{128, 256}};
  mem.DefineRegions(regions);
  ASSERT_TRUE(mem.has_regions());

  const auto expect_match = [&](const char* stage) {
    for (uint32_t r = 0; r < regions.size(); ++r) {
      for (const Tier tier : {Tier::kFast, Tier::kSlow}) {
        EXPECT_EQ(mem.RegionResident(r, tier),
                  RescanResident(mem, regions[r], tier))
            << stage << ": region " << r << " tier "
            << static_cast<int>(tier);
      }
    }
  };

  expect_match("empty");

  // First touches: region 0 soaks up the fast tier, region 1 overflows
  // to slow.
  for (PageId page = 0; page < 200; ++page) mem.Touch(page, 0);
  expect_match("after touch");
  EXPECT_EQ(mem.RegionResident(0, Tier::kFast), 64u);

  // Migrations in both directions.
  for (PageId page = 0; page < 32; ++page) {
    ASSERT_TRUE(mem.Migrate(page, Tier::kSlow));
  }
  for (PageId page = 128; page < 144; ++page) {
    ASSERT_TRUE(mem.Migrate(page, Tier::kFast));
  }
  expect_match("after migrate");

  // Release one region entirely (tenant departure).
  EXPECT_EQ(mem.Release(regions[1]), 72u);
  expect_match("after release");
  EXPECT_EQ(mem.RegionResident(1, Tier::kFast), 0u);
  EXPECT_EQ(mem.RegionResident(1, Tier::kSlow), 0u);

  // Re-touch after release re-allocates and re-counts.
  for (PageId page = 128; page < 140; ++page) mem.Touch(page, 1);
  expect_match("after re-touch");
}

TEST(TieredMemory, DefineRegionsSeedsCountersFromExistingState) {
  TieredMemory mem(100, 30, 100, AllocationPolicy::kFastFirst);
  for (PageId page = 0; page < 80; ++page) mem.Touch(page, 0);
  // Layout installed *after* pages were placed: counters must be seeded
  // from the current state, not start at zero.
  mem.DefineRegions({PageRange{0, 50}, PageRange{50, 100}});
  EXPECT_EQ(mem.RegionResident(0, Tier::kFast), 30u);
  EXPECT_EQ(mem.RegionResident(0, Tier::kSlow), 20u);
  EXPECT_EQ(mem.RegionResident(1, Tier::kFast), 0u);
  EXPECT_EQ(mem.RegionResident(1, Tier::kSlow), 30u);
}

}  // namespace
}  // namespace hybridtier
