/**
 * @file
 * Unit tests for the multi-endpoint slow-tier topology: spec
 * parse/format round-trips and rejections, HDM endpoint decode,
 * per-endpoint channel queueing in the perf model, the bounded-queue
 * backlog clamp, endpoint accounting through TieredMemory, and the
 * single-endpoint layout's equivalence with the legacy default path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/units.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "mem/perf_model.h"
#include "mem/tier.h"
#include "mem/tiered_memory.h"
#include "mem/topology.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

// ------------------------------------------------------- spec parsing --

TEST(TopologySpec, DefaultIsTheSingleLegacyDevice) {
  const Topology topology = DefaultTopology();
  ASSERT_EQ(topology.endpoint_count(), 1u);
  EXPECT_EQ(topology.endpoints[0].idle_latency_ns, 124u);
  EXPECT_EQ(topology.endpoints[0].bandwidth_gbps, 34.0);
  EXPECT_TRUE(topology.switches.empty());
  EXPECT_EQ(topology.interleave_units, 1u);
  // `cxl:(1)` with default knobs parses to exactly this device.
  EXPECT_EQ(ParseTopologySpec("cxl:(1)"), topology);
}

TEST(TopologySpec, IsTopologySpecChecksThePrefix) {
  EXPECT_TRUE(IsTopologySpec("cxl:(1,2)"));
  EXPECT_FALSE(IsTopologySpec("fleet:10"));
  EXPECT_FALSE(IsTopologySpec("zipf,cdn:2"));
  EXPECT_FALSE(IsTopologySpec(""));
}

TEST(TopologySpec, ParsesTreeKnobsAndDefaults) {
  const Topology topology = ParseTopologySpec(
      "cxl:(1,(2,3)),lat=124:180:180,bw=34:17:17,link=20,gran=64");
  ASSERT_EQ(topology.endpoint_count(), 3u);
  EXPECT_EQ(topology.endpoints[0].idle_latency_ns, 124u);
  EXPECT_EQ(topology.endpoints[1].idle_latency_ns, 180u);
  EXPECT_EQ(topology.endpoints[2].bandwidth_gbps, 17.0);
  EXPECT_EQ(topology.endpoints[0].switch_id, -1);
  EXPECT_EQ(topology.endpoints[1].switch_id, 0);
  EXPECT_EQ(topology.endpoints[2].switch_id, 0);
  ASSERT_EQ(topology.switches.size(), 1u);
  EXPECT_EQ(topology.switches[0].link_gbps, 20.0);
  EXPECT_EQ(topology.interleave_units, 64u);

  // Omitted knobs take the documented defaults: paper-device lat/bw,
  // a non-saturating uplink (sum of member bandwidth), gran=1.
  const Topology defaults = ParseTopologySpec("cxl:((1,2),3)");
  ASSERT_EQ(defaults.endpoint_count(), 3u);
  EXPECT_EQ(defaults.endpoints[2].idle_latency_ns, 124u);
  EXPECT_EQ(defaults.endpoints[2].bandwidth_gbps, 34.0);
  ASSERT_EQ(defaults.switches.size(), 1u);
  EXPECT_EQ(defaults.switches[0].link_gbps, 68.0);
  EXPECT_EQ(defaults.interleave_units, 1u);
}

TEST(TopologySpec, FormatParseRoundTripsExactly) {
  for (const char* spec : {
           "cxl:(1)",
           "cxl:(1,2,3)",
           "cxl:(1,(2,3)),lat=124:180:180,bw=34:17:17,link=20",
           "cxl:((1,2),(3,4)),link=40:12,gran=512",
           "cxl:(2,1),lat=200:100",         // ids out of order.
           "cxl:((3,2),1),bw=34:17:8.5",    // switch listed first.
       }) {
    const Topology topology = ParseTopologySpec(spec);
    const std::string canonical = FormatTopologySpec(topology);
    EXPECT_TRUE(IsTopologySpec(canonical)) << canonical;
    EXPECT_EQ(ParseTopologySpec(canonical), topology) << canonical;
    // Format is a fixed point: canonical specs reformat to themselves.
    EXPECT_EQ(FormatTopologySpec(ParseTopologySpec(canonical)), canonical);
  }
}

TEST(TopologySpecDeathTest, RejectsMalformedSpecs) {
  // Parse errors quote the offending token and its byte offset within
  // the spec (see common/spec_error.h); the patterns pin both.
  // Endpoint ids must be exactly 1..N, each once.
  EXPECT_DEATH(ParseTopologySpec("cxl:(1,1)"),
               "bad token '1' at byte 7 .*endpoint id repeats");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1,3)"), "missing id 2");
  EXPECT_DEATH(ParseTopologySpec("cxl:(0,1)"),
               "bad token '0' at byte 5 .*endpoint id must be an integer");
  EXPECT_DEATH(ParseTopologySpec("cxl:()"),
               "at byte 4 .*parenthesized child list");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1,(2,(3,4)))"),  // Nested switch.
               "at byte 10 .*nests inside a switch");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1,(2,3)"),       // Unbalanced.
               "at byte 4 .*unbalanced parentheses");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1,2),lat=124"),  // Count.
               "bad token '124' at byte 14 .*1 latencies for 2 endpoints");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),bw=0"), "");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),lat=-5"),
               "bad token '-5' at byte 12 .*latency must be >= 0");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),gran=0"),
               "at byte 13 .*gran must be a positive integer");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),gran=1.5"),
               "bad token '1.5' at byte 13 ");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),color=red"),  // Unknown key.
               "bad token 'color' at byte 8 .*unknown topology key");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1,2),link=10"), "");  // No switch.
  EXPECT_DEATH(ParseTopologySpec("cxl:1,2"),            // No tree.
               "bad token '1' at byte 4 .*must start with a device tree");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),lat"),
               "bad token 'lat' at byte 8 .*expected key=value");
  EXPECT_DEATH(ParseTopologySpec("cxl:(1),lat=abc"),
               "bad token 'abc' at byte 12 .*not a number");
}

// --------------------------------------------------------- HDM decode --

TEST(Topology, EndpointOfInterleavesByGranularity) {
  Topology topology = ParseTopologySpec("cxl:(1,2,3),gran=4");
  EXPECT_EQ(topology.EndpointOf(0), 0u);
  EXPECT_EQ(topology.EndpointOf(3), 0u);
  EXPECT_EQ(topology.EndpointOf(4), 1u);
  EXPECT_EQ(topology.EndpointOf(11), 2u);
  EXPECT_EQ(topology.EndpointOf(12), 0u);  // Wraps around.
  // Single-endpoint layouts decode everything to endpoint 0.
  EXPECT_EQ(DefaultTopology().EndpointOf(12345), 0u);
}

// -------------------------------------------- per-endpoint perf model --

PerfModel MakeTopoPerf(const std::string& spec,
                       PerfModelConfig config = PerfModelConfig{}) {
  return PerfModel(config, DefaultFastTier(1000), DefaultSlowTier(10000),
                   ParseTopologySpec(spec));
}

TEST(PerfModelTopology, EndpointsHaveIndependentQueues) {
  PerfModel perf = MakeTopoPerf("cxl:(1,2)");
  // Saturate endpoint 0's port channel with back-to-back accesses.
  for (int i = 0; i < 200; ++i) perf.MemoryAccess(Tier::kSlow, 0, 0);
  EXPECT_GT(perf.MemoryAccess(Tier::kSlow, 0, 1), 124u);
  // Endpoint 1 is untouched: same instant, zero queueing delay.
  EXPECT_EQ(perf.MemoryAccess(Tier::kSlow, 1, 1), 124u);
  EXPECT_GT(perf.EndpointBacklog(0, 1), 0u);
  EXPECT_EQ(perf.EndpointAccesses(0), 201u);
  EXPECT_EQ(perf.EndpointAccesses(1), 1u);
}

TEST(PerfModelTopology, BusyUntilAdvancesPerAccess) {
  PerfModel perf = MakeTopoPerf("cxl:(1,2)");
  // Each arrival at the same instant queues behind the previous one,
  // monotonically, until the delay cap.
  TimeNs previous = perf.MemoryAccess(Tier::kSlow, 0, 0);
  for (int i = 0; i < 5; ++i) {
    const TimeNs latency = perf.MemoryAccess(Tier::kSlow, 0, 0);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
  // Once the channel drains past the arrival time, latency is idle again.
  EXPECT_EQ(perf.MemoryAccess(Tier::kSlow, 0, kSecond), 124u);
}

TEST(PerfModelTopology, SharedSwitchLinkCouplesItsMembers) {
  // Two far endpoints behind a 1 GB/s uplink: traffic to endpoint 0
  // delays endpoint 1 through the shared link, but a direct-attached
  // third endpoint is unaffected.
  PerfModel perf = MakeTopoPerf("cxl:((1,2),3),link=1");
  for (int i = 0; i < 200; ++i) perf.MemoryAccess(Tier::kSlow, 0, 0);
  EXPECT_GT(perf.MemoryAccess(Tier::kSlow, 1, 1), 124u);
  EXPECT_EQ(perf.MemoryAccess(Tier::kSlow, 2, 1), 124u);
}

TEST(PerfModelTopology, MigrationTrafficDelaysDemandAccesses) {
  PerfModel perf = MakeTopoPerf("cxl:(1,2)");
  // A large copy onto endpoint 0 queues demand accesses behind it;
  // endpoint 1 stays idle.
  perf.OccupyEndpoint(0, 64 * kMiB, 0);
  EXPECT_GT(perf.MemoryAccess(Tier::kSlow, 0, 1), 124u);
  EXPECT_EQ(perf.MemoryAccess(Tier::kSlow, 1, 1), 124u);
}

TEST(PerfModelTopology, MigrationCostSplitMatchesLegacySingleEndpoint) {
  PerfModelConfig config;
  PerfModel legacy(config, DefaultFastTier(1000), DefaultSlowTier(10000));
  PerfModel split = MakeTopoPerf("cxl:(1)");
  const uint64_t pages[] = {64};
  EXPECT_EQ(split.MigrationCostSplit(pages, kPageSize, 0),
            legacy.MigrationCost(64, kPageSize, 0));
}

TEST(PerfModelTopology, MigrationCostSplitEndsAtSlowestLeg) {
  // Endpoint 2 has 1/8 the bandwidth: a batch split evenly across both
  // finishes when the slow leg does, so it costs more than the same
  // total traffic on the fast endpoint alone.
  PerfModel perf = MakeTopoPerf("cxl:(1,2),bw=34:4.25");
  PerfModel balanced = MakeTopoPerf("cxl:(1,2),bw=34:34");
  const uint64_t both[] = {32, 32};
  EXPECT_GT(perf.MigrationCostSplit(both, kPageSize, 0),
            balanced.MigrationCostSplit(both, kPageSize, 0));
}

// ------------------------------------------------- bounded-queue clamp --

/**
 * Regression for the unbounded busy-horizon bug: the queue-delay cap
 * historically truncated only what each access *pays*, while the
 * channel's busy_until kept growing without bound under saturation —
 * backlog no access would ever observe, and which never drained. With
 * `bounded_queue` the horizon is clamped at the cap before each new
 * transfer, so once the clock moves past cap + one service time the
 * channel must be idle again. (The fix is opt-in: the goldens pin the
 * legacy accounting bit-exactly, and this test documents both sides.)
 */
TEST(PerfModelTopology, BoundedQueueShedsRunawayBacklog) {
  PerfModelConfig config;
  config.max_queue_delay_ns = 500;

  // Legacy behavior: 100k same-instant accesses push the horizon far
  // beyond the cap, so an access arriving well after cap+service still
  // queues — the saturation never ends.
  PerfModel unbounded(config, DefaultFastTier(1000),
                      DefaultSlowTier(10000));
  for (int i = 0; i < 100000; ++i) unbounded.MemoryAccess(Tier::kSlow, 0);
  EXPECT_GT(unbounded.MemoryAccess(Tier::kSlow, 1000000), 124u);

  // Bounded queue: the same burst's horizon is clamped at the cap, so
  // by now + cap + one service time the channel has fully drained.
  config.bounded_queue = true;
  PerfModel bounded(config, DefaultFastTier(1000), DefaultSlowTier(10000));
  for (int i = 0; i < 100000; ++i) bounded.MemoryAccess(Tier::kSlow, 0);
  EXPECT_EQ(bounded.MemoryAccess(Tier::kSlow, 1000000), 124u);
  // And the cap still applies while saturated.
  PerfModel saturated(config, DefaultFastTier(1000),
                      DefaultSlowTier(10000));
  for (int i = 0; i < 1000; ++i) saturated.MemoryAccess(Tier::kSlow, 0);
  EXPECT_LE(saturated.MemoryAccess(Tier::kSlow, 0), 124u + 500u);
}

// ------------------------------------------ endpoint residency tracking --

TEST(TieredMemoryTopology, TracksPerEndpointResidency) {
  // 2 endpoints, gran=1: even units home on endpoint 0, odd on 1.
  TieredMemory mem(100, 4, 100, AllocationPolicy::kSlowOnly,
                   /*endpoint_count=*/2, /*interleave_units=*/1);
  for (PageId page = 0; page < 10; ++page) mem.Touch(page, 0);
  EXPECT_EQ(mem.EndpointResident(0), 5u);
  EXPECT_EQ(mem.EndpointResident(1), 5u);
  EXPECT_EQ(mem.EndpointOf(6), 0u);
  EXPECT_EQ(mem.EndpointOf(7), 1u);

  // Promotion leaves the endpoint; demotion returns to the static home.
  ASSERT_TRUE(mem.Migrate(6, Tier::kFast));
  EXPECT_EQ(mem.EndpointResident(0), 4u);
  ASSERT_TRUE(mem.Migrate(6, Tier::kSlow));
  EXPECT_EQ(mem.EndpointResident(0), 5u);

  // Release frees the endpoint's count too.
  mem.Release(PageRange{7, 8});
  EXPECT_EQ(mem.EndpointResident(1), 4u);

  // Touch results carry the home endpoint for slow hits.
  EXPECT_EQ(mem.Touch(9, 0).endpoint, 1u);
  ASSERT_TRUE(mem.Migrate(9, Tier::kFast));
  EXPECT_EQ(mem.Touch(9, 0).endpoint, 0u);  // Fast hits report 0.
}

// --------------------------------------- end-to-end single-endpoint ==
// legacy default --

TEST(SimulationTopology, ExplicitSingleEndpointMatchesLegacyDefault) {
  // `cxl:(1)` with the paper-default knobs must reproduce the legacy
  // no-topology path bit-for-bit: same durations, same counters.
  SimulationConfig legacy;
  legacy.max_accesses = 150000;
  legacy.seed = 11;
  SimulationConfig topo = legacy;
  topo.topology = "cxl:(1),lat=124,bw=34,gran=1";

  for (const char* policy_name : {"HybridTier", "Memtis"}) {
    auto workload_a = MakeWorkload("zipf", 0.05, 11);
    auto policy_a = MakePolicy(policy_name);
    const SimulationResult a =
        RunSimulation(legacy, workload_a.get(), policy_a.get());
    auto workload_b = MakeWorkload("zipf", 0.05, 11);
    auto policy_b = MakePolicy(policy_name);
    const SimulationResult b =
        RunSimulation(topo, workload_b.get(), policy_b.get());
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.duration_ns, b.duration_ns);
    EXPECT_EQ(a.fast_mem_accesses, b.fast_mem_accesses);
    EXPECT_EQ(a.slow_mem_accesses, b.slow_mem_accesses);
    EXPECT_EQ(a.migration.promoted_pages, b.migration.promoted_pages);
    EXPECT_EQ(a.migration.demoted_pages, b.migration.demoted_pages);
    EXPECT_EQ(a.median_latency_ns, b.median_latency_ns);
    EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
    EXPECT_EQ(a.throughput_mops, b.throughput_mops);
  }
}

TEST(SimulationTopology, MultiEndpointRunsAreDeterministic) {
  SimulationConfig config;
  config.max_accesses = 150000;
  config.seed = 11;
  config.topology = "cxl:(1,(2,3)),lat=124:180:180,bw=34:17:17,link=20";
  auto run = [&] {
    auto workload = MakeWorkload("zipf", 0.05, 11);
    auto policy = MakePolicy("HybridTier");
    return RunSimulation(config, workload.get(), policy.get());
  };
  const SimulationResult a = run();
  const SimulationResult b = run();
  EXPECT_EQ(a.duration_ns, b.duration_ns);
  EXPECT_EQ(a.slow_mem_accesses, b.slow_mem_accesses);
  EXPECT_EQ(a.median_latency_ns, b.median_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
}

// ----------------------------------------- endpoint-aware fair share --

TEST(SimulationTopology, EndpointAwareSteersHotUnitsOffCostlyEndpoint) {
  // One endpoint degraded to a fraction of the others' bandwidth with
  // 4x the latency: the aware policy must serve fewer slow accesses
  // from it than the blind policy under the same stream.
  auto run = [&](bool aware) {
    auto mux = MakeMuxWorkload(ParseTenantList("zipf,zipf:2"), 11);
    FairShareConfig fair_config;
    fair_config.endpoint_aware = aware;
    auto policy = std::make_unique<FairSharePolicy>(
        MakePolicy("HybridTier"), mux->directory(), fair_config);
    SimulationConfig config;
    config.fast_tier_fraction = 1.0 / 8;
    config.max_accesses = 1000000;
    config.seed = 11;
    config.topology = "cxl:(1,2,3),lat=124:124:420,bw=34:34:4";
    Simulation simulation(config, mux.get(), policy.get());
    const SimulationResult result = simulation.Run();
    const PerfModel& perf = simulation.perf_model();
    uint64_t total = 0;
    for (uint32_t e = 0; e < perf.EndpointCount(); ++e) {
      total += perf.EndpointAccesses(e);
    }
    EXPECT_GT(total, 0u);
    (void)result;
    return static_cast<double>(perf.EndpointAccesses(2)) /
           static_cast<double>(total);
  };
  const double blind_share = run(false);
  const double aware_share = run(true);
  EXPECT_LT(aware_share, blind_share);
}

}  // namespace
}  // namespace hybridtier
