/**
 * @file
 * Unit and property tests for src/probstruct: hashes, packed counters,
 * standard and blocked counting bloom filters, sizing formulas, exact
 * table.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/units.h"
#include "probstruct/blocked_cbf.h"
#include "probstruct/cbf.h"
#include "probstruct/exact_table.h"
#include "probstruct/ghost_mrc.h"
#include "probstruct/hash.h"
#include "probstruct/packed_counters.h"
#include "probstruct/sizing.h"

namespace hybridtier {
namespace {

// --------------------------------------------------------------- Hash --

TEST(Hash, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hash, HashPairDependsOnSeed) {
  const HashPair a = HashKey(7, 1);
  const HashPair b = HashKey(7, 2);
  EXPECT_NE(a.h1, b.h1);
}

TEST(Hash, H2IsOdd) {
  for (uint64_t key = 0; key < 256; ++key) {
    EXPECT_EQ(HashKey(key).h2 & 1, 1u);
  }
}

TEST(Hash, DerivedHashesDiffer) {
  const HashPair hp = HashKey(123);
  std::set<uint64_t> derived;
  for (uint32_t i = 0; i < 8; ++i) derived.insert(DerivedHash(hp, i));
  EXPECT_EQ(derived.size(), 8u);
}

TEST(Hash, ReduceRangeInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(ReduceRange(rng.NextU64(), 97), 97u);
  }
}

TEST(Hash, ReduceRangeRoughlyUniform) {
  std::map<uint64_t, int> counts;
  for (uint64_t i = 0; i < 64000; ++i) counts[ReduceRange(Mix64(i), 8)]++;
  for (const auto& [bucket, count] : counts) {
    EXPECT_NEAR(count, 8000, 400) << "bucket " << bucket;
  }
}

// ----------------------------------------------------- PackedCounters --

class PackedCountersWidths : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedCountersWidths, GetSetRoundTrip) {
  const uint32_t bits = GetParam();
  PackedCounterArray counters(100, bits);
  const uint32_t max = counters.max_value();
  for (size_t i = 0; i < 100; ++i) {
    counters.Set(i, static_cast<uint32_t>(i) % (max + 1));
  }
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(counters.Get(i), static_cast<uint32_t>(i) % (max + 1));
  }
}

TEST_P(PackedCountersWidths, SaturatingIncrementCapsAtMax) {
  const uint32_t bits = GetParam();
  PackedCounterArray counters(4, bits);
  const uint32_t max = counters.max_value();
  for (uint32_t i = 0; i < max + 10; ++i) counters.SaturatingIncrement(0);
  EXPECT_EQ(counters.Get(0), max);
  EXPECT_EQ(counters.Get(1), 0u);  // Neighbors untouched.
}

TEST_P(PackedCountersWidths, HalveAllMatchesScalarHalving) {
  const uint32_t bits = GetParam();
  PackedCounterArray counters(257, bits);
  Rng rng(bits);
  std::vector<uint32_t> reference(257);
  for (size_t i = 0; i < 257; ++i) {
    reference[i] = static_cast<uint32_t>(
        rng.NextBounded(counters.max_value() + 1));
    counters.Set(i, reference[i]);
  }
  counters.HalveAll();
  for (size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(counters.Get(i), reference[i] / 2) << "index " << i;
  }
}

TEST_P(PackedCountersWidths, SetClampsOverflow) {
  const uint32_t bits = GetParam();
  PackedCounterArray counters(4, bits);
  counters.Set(2, UINT32_MAX);
  EXPECT_EQ(counters.Get(2), counters.max_value());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedCountersWidths,
                         ::testing::Values(4u, 8u, 16u));

TEST(PackedCounters, MaxValues) {
  EXPECT_EQ(PackedCounterArray(8, 4).max_value(), 15u);
  EXPECT_EQ(PackedCounterArray(8, 8).max_value(), 255u);
  EXPECT_EQ(PackedCounterArray(8, 16).max_value(), 65535u);
}

TEST(PackedCounters, MemoryIsPacked) {
  // 128 4-bit counters = 64 bytes.
  EXPECT_EQ(PackedCounterArray(128, 4).memory_bytes(), 64u);
  // A 64 B cache line holds 128 4-bit counters (paper §4.2).
  PackedCounterArray counters(256, 4);
  EXPECT_EQ(counters.CacheLineOf(0), 0u);
  EXPECT_EQ(counters.CacheLineOf(127), 0u);
  EXPECT_EQ(counters.CacheLineOf(128), 1u);
}

TEST(PackedCounters, CountNonZero) {
  PackedCounterArray counters(64, 4);
  EXPECT_EQ(counters.CountNonZero(), 0u);
  counters.Set(3, 1);
  counters.Set(60, 15);
  EXPECT_EQ(counters.CountNonZero(), 2u);
  counters.Reset();
  EXPECT_EQ(counters.CountNonZero(), 0u);
}

// ------------------------------------------------------------- Sizing --

TEST(Sizing, MatchesPaperFormula) {
  // r = -k / ln(1 - exp(ln(p)/k)) with k=4, p=0.001: ~20.4 counters per
  // element (k=4 is below the FPR-optimal hash count, so it costs more
  // than the 14.4-bit optimum).
  const double r = BloomCountersPerElement(4, 0.001);
  EXPECT_NEAR(r, 20.43, 0.5);
  EXPECT_EQ(BloomCounterCount(1000, 4, 0.001),
            static_cast<size_t>(std::ceil(1000 * r)));
}

TEST(Sizing, MoreHashesFewerCountersAtOptimum) {
  // At p=0.001 the optimal k is ~10; k=4 needs more counters than k=8.
  EXPECT_GT(BloomCountersPerElement(2, 0.001),
            BloomCountersPerElement(8, 0.001));
}

TEST(Sizing, FalsePositiveRateSanity) {
  const size_t m = BloomCounterCount(10000, 4, 0.001);
  const double fpr = BloomFalsePositiveRate(m, 10000, 4);
  EXPECT_LT(fpr, 0.002);
  EXPECT_GT(fpr, 0.00001);
}

TEST(Sizing, MomentumIs128xSmaller) {
  const CbfSizing freq = FrequencyCbfSizing(1 << 20);
  const CbfSizing momentum = MomentumCbfSizing(1 << 20);
  const double ratio = static_cast<double>(freq.num_counters) /
                       static_cast<double>(momentum.num_counters);
  EXPECT_NEAR(ratio, 128.0, 4.0);
}

TEST(Sizing, MinimumCounterFloor) {
  EXPECT_GE(BloomCounterCount(1, 4, 0.5), 64u);
}

// ------------------------------------------------ CountingBloomFilter --

/** Param: 0 = standard CBF, 1 = blocked CBF. */
class CbfBothKinds : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<FrequencyEstimator> Make(size_t counters,
                                           uint32_t bits = 4,
                                           uint64_t seed = 1) {
    const CbfSizing sizing{.num_counters = counters,
                           .num_hashes = 4,
                           .counter_bits = bits};
    if (GetParam() == 0) {
      return std::make_unique<CountingBloomFilter>(sizing, seed);
    }
    return std::make_unique<BlockedCountingBloomFilter>(sizing, seed);
  }
};

TEST_P(CbfBothKinds, EmptyReturnsZero) {
  auto cbf = Make(4096);
  for (uint64_t key = 0; key < 100; ++key) EXPECT_EQ(cbf->Get(key), 0u);
}

TEST_P(CbfBothKinds, NeverUndercounts) {
  // A CBF (min-read with conservative update) can overcount due to
  // collisions but can never undercount — the defining invariant.
  auto cbf = Make(8192);
  std::map<uint64_t, uint32_t> truth;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t key = rng.NextBounded(500);
    cbf->Increment(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    const uint32_t capped = std::min(count, cbf->max_count());
    EXPECT_GE(cbf->Get(key), capped) << "key " << key;
  }
}

TEST_P(CbfBothKinds, MostlyExactWhenUncrowded) {
  auto cbf = Make(64 * 1024);
  Rng rng(11);
  std::map<uint64_t, uint32_t> truth;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = rng.NextBounded(1000);
    cbf->Increment(key);
    ++truth[key];
  }
  int exact = 0, total = 0;
  for (const auto& [key, count] : truth) {
    ++total;
    exact += cbf->Get(key) == std::min(count, cbf->max_count());
  }
  EXPECT_GT(static_cast<double>(exact) / total, 0.95);
}

TEST_P(CbfBothKinds, SaturatesAtCounterMax) {
  auto cbf = Make(4096);
  for (int i = 0; i < 100; ++i) cbf->Increment(42);
  EXPECT_EQ(cbf->Get(42), cbf->max_count());
  EXPECT_EQ(cbf->max_count(), 15u);
}

TEST_P(CbfBothKinds, CoolingHalvesEstimates) {
  auto cbf = Make(4096);
  for (int i = 0; i < 12; ++i) cbf->Increment(7);
  const uint32_t before = cbf->Get(7);
  cbf->CoolByHalving();
  EXPECT_EQ(cbf->Get(7), before / 2);
}

TEST_P(CbfBothKinds, ResetClears) {
  auto cbf = Make(4096);
  for (int i = 0; i < 5; ++i) cbf->Increment(9);
  cbf->Reset();
  EXPECT_EQ(cbf->Get(9), 0u);
}

TEST_P(CbfBothKinds, SixteenBitCountersForHugePages) {
  auto cbf = Make(4096, /*bits=*/16);
  EXPECT_EQ(cbf->max_count(), 65535u);
  for (int i = 0; i < 100; ++i) cbf->Increment(3);
  EXPECT_GE(cbf->Get(3), 100u);
}

TEST_P(CbfBothKinds, DeterministicAcrossInstances) {
  auto a = Make(4096, 4, 99);
  auto b = Make(4096, 4, 99);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t key = rng.NextBounded(300);
    EXPECT_EQ(a->Increment(key), b->Increment(key));
  }
}

INSTANTIATE_TEST_SUITE_P(StandardAndBlocked, CbfBothKinds,
                         ::testing::Values(0, 1));

// -------------------------------------------- Cache-line touch counts --

TEST(Cbf, StandardTouchesUpToKLines) {
  const CbfSizing sizing{.num_counters = 1u << 16,
                         .num_hashes = 4,
                         .counter_bits = 4};
  CountingBloomFilter cbf(sizing);
  size_t multi_line_keys = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    std::vector<uint64_t> lines;
    cbf.AppendTouchedLines(key, &lines);
    EXPECT_GE(lines.size(), 1u);
    EXPECT_LE(lines.size(), 4u);
    multi_line_keys += lines.size() > 1;
  }
  // With 64Ki counters over 512 lines, hashes almost surely span lines.
  EXPECT_GT(multi_line_keys, 150u);
}

TEST(BlockedCbf, AlwaysTouchesExactlyOneLine) {
  const CbfSizing sizing{.num_counters = 1u << 16,
                         .num_hashes = 4,
                         .counter_bits = 4};
  BlockedCountingBloomFilter cbf(sizing);
  for (uint64_t key = 0; key < 500; ++key) {
    std::vector<uint64_t> lines;
    cbf.AppendTouchedLines(key, &lines);
    EXPECT_EQ(lines.size(), 1u) << "key " << key;
    EXPECT_LT(lines[0], cbf.num_blocks());
  }
}

TEST(BlockedCbf, GeometryMatchesPaper) {
  const CbfSizing sizing{.num_counters = 12800,
                         .num_hashes = 4,
                         .counter_bits = 4};
  BlockedCountingBloomFilter cbf(sizing);
  // 128 4-bit slots per 64 B line (paper §4.2).
  EXPECT_EQ(cbf.slots_per_block(), 128u);
  EXPECT_GE(cbf.num_blocks() * cbf.slots_per_block(), 12800u);
  // 16-bit counters: 32 slots per line.
  const CbfSizing huge{.num_counters = 1024,
                       .num_hashes = 4,
                       .counter_bits = 16};
  EXPECT_EQ(BlockedCountingBloomFilter(huge).slots_per_block(), 32u);
}

TEST(BlockedCbf, HigherErrorThanStandardButBounded) {
  // Blocked CBF has a slightly higher false-positive rate (paper §4.2);
  // verify the tracking error is still small at the paper's sizing.
  const size_t n = 4000;
  const CbfSizing sizing = FrequencyCbfSizing(n);
  BlockedCountingBloomFilter blocked(sizing, 21);
  CountingBloomFilter standard(sizing, 21);
  Rng rng(31);
  std::map<uint64_t, uint32_t> truth;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = rng.NextBounded(n);
    blocked.Increment(key);
    standard.Increment(key);
    ++truth[key];
  }
  size_t blocked_errors = 0, standard_errors = 0;
  for (const auto& [key, count] : truth) {
    const uint32_t capped = std::min(count, 15u);
    blocked_errors += blocked.Get(key) != capped;
    standard_errors += standard.Get(key) != capped;
  }
  EXPECT_LE(standard_errors, blocked_errors + 5);
  EXPECT_LT(static_cast<double>(blocked_errors) / truth.size(), 0.02);
}

// --------------------------------------------------------- ExactTable --

TEST(ExactTable, ExactCounts) {
  ExactCounterTable table(1000);
  for (int i = 0; i < 37; ++i) table.Increment(5);
  EXPECT_EQ(table.Get(5), 37u);
  EXPECT_EQ(table.RawCount(5), 37u);
  EXPECT_EQ(table.Get(6), 0u);
}

TEST(ExactTable, SaturationCap) {
  ExactCounterTable table(100, /*max_count=*/15);
  for (int i = 0; i < 40; ++i) table.Increment(1);
  EXPECT_EQ(table.Get(1), 15u);    // Capped like a 4-bit CBF.
  EXPECT_EQ(table.RawCount(1), 40u);  // Raw count still exact.
}

TEST(ExactTable, CoolingHalvesRawCounts) {
  ExactCounterTable table(10);
  for (int i = 0; i < 9; ++i) table.Increment(2);
  table.CoolByHalving();
  EXPECT_EQ(table.RawCount(2), 4u);
}

TEST(ExactTable, SixteenBytesPerPage) {
  // The Memtis overhead model: 16 B per 4 KiB page = 0.39% of memory.
  ExactCounterTable table(1 << 20);
  EXPECT_EQ(table.memory_bytes(), (1u << 20) * 16u);
  const double overhead = static_cast<double>(table.memory_bytes()) /
                          (static_cast<double>(1 << 20) * kPageSize);
  EXPECT_NEAR(overhead, 0.0039, 0.0002);
}

TEST(ExactTable, TouchedLinesAreDense) {
  ExactCounterTable table(100);
  std::vector<uint64_t> lines;
  table.AppendTouchedLines(0, &lines);
  table.AppendTouchedLines(3, &lines);
  table.AppendTouchedLines(4, &lines);
  // Entries 0-3 share line 0; entry 4 starts line 1.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], 0u);
  EXPECT_EQ(lines[1], 0u);
  EXPECT_EQ(lines[2], 1u);
}

TEST(ExactTable, MetaForAllowsPolicyState) {
  ExactCounterTable table(10);
  table.MetaFor(7).last_access_ns = 12345;
  EXPECT_EQ(table.MetaFor(7).last_access_ns, 12345u);
}

// -------------------------------------- CBF vs exact (Table 5 spirit) --

/** Feeds both estimators the same skewed access stream. */
void ZipfLikeInsertions(FrequencyEstimator* cbf, FrequencyEstimator* exact,
                        Rng& rng) {
  for (int i = 0; i < 60000; ++i) {
    // Crude skew: small keys dominate, like a Zipf popularity curve.
    uint64_t key = rng.NextBounded(1u << 17);
    key = std::min(key, rng.NextBounded(1u << 17));
    key = std::min(key, rng.NextBounded(1u << 17));
    cbf->Increment(key);
    exact->Increment(key);
  }
}

TEST(CbfAccuracy, AgreementRateHighAtPaperSizing) {
  // Measure how often CBF-based hot/cold classification agrees with the
  // exact table (paper Table 5 reports >99% at the shipped sizing).
  const size_t fast_pages = 8192;
  const CbfSizing sizing = FrequencyCbfSizing(fast_pages);
  BlockedCountingBloomFilter cbf(sizing, 77);
  ExactCounterTable exact(fast_pages * 16, 15);

  Rng rng(41);
  ZipfLikeInsertions(&cbf, &exact, rng);

  const uint32_t threshold = 4;
  size_t agree = 0, total = 0;
  for (uint64_t key = 0; key < fast_pages * 16; key += 7) {
    ++total;
    agree += (cbf.Get(key) >= threshold) == (exact.Get(key) >= threshold);
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.99);
}

// ----------------------------------------------------------- GhostMrc --

TEST(GhostMrc, ShadowSampleBookkeeping) {
  GhostMrc ghost(64);
  EXPECT_EQ(ghost.demand_units(), 0u);
  EXPECT_EQ(ghost.total_hits(), 0u);
  EXPECT_EQ(ghost.RankValue(0), 0u);

  // Unit 3 sampled five times, unit 7 twice, unit 9 once.
  for (int i = 0; i < 5; ++i) ghost.Increment(3);
  ghost.Increment(7);
  ghost.Increment(7);
  ghost.Increment(9);

  EXPECT_EQ(ghost.demand_units(), 3u);
  EXPECT_EQ(ghost.total_hits(), 8u);
  EXPECT_EQ(ghost.RankValue(0), 5u);  // Hottest: unit 3.
  EXPECT_EQ(ghost.RankValue(1), 2u);
  EXPECT_EQ(ghost.RankValue(2), 1u);
  EXPECT_EQ(ghost.RankValue(3), 0u);  // Beyond the sampled set.
  EXPECT_EQ(ghost.CumulativeHits(0), 0u);
  EXPECT_EQ(ghost.CumulativeHits(1), 5u);
  EXPECT_EQ(ghost.CumulativeHits(2), 7u);
  EXPECT_EQ(ghost.CumulativeHits(64), 8u);

  std::vector<GhostDemandStep> steps;
  ghost.AppendDemandSteps(&steps);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].value, 5u);
  EXPECT_EQ(steps[0].units, 1u);
  EXPECT_EQ(steps[1].value, 2u);
  EXPECT_EQ(steps[2].value, 1u);
}

TEST(GhostMrc, CoolingHalvesAndFoldsHistogram) {
  GhostMrc ghost(16);
  for (int i = 0; i < 5; ++i) ghost.Increment(0);
  for (int i = 0; i < 2; ++i) ghost.Increment(1);
  ghost.Increment(2);

  ghost.CoolByHalving();
  // 5 -> 2, 2 -> 1, 1 -> 0.
  EXPECT_EQ(ghost.RankValue(0), 2u);
  EXPECT_EQ(ghost.RankValue(1), 1u);
  EXPECT_EQ(ghost.RankValue(2), 0u);
  EXPECT_EQ(ghost.demand_units(), 2u);
  EXPECT_EQ(ghost.total_hits(), 3u);

  ghost.Reset();
  EXPECT_EQ(ghost.demand_units(), 0u);
  EXPECT_EQ(ghost.total_hits(), 0u);
  EXPECT_EQ(ghost.RankValue(0), 0u);
}

TEST(GhostMrc, SaturatesAtCounterMax) {
  GhostMrc ghost(4);
  for (int i = 0; i < 100; ++i) ghost.Increment(1);
  EXPECT_EQ(ghost.RankValue(0), ghost.max_value());
  EXPECT_EQ(ghost.total_hits(), ghost.max_value());
  EXPECT_EQ(ghost.demand_units(), 1u);
}

// ---------------------------------------------------- GhostMrc/SHARDS --

TEST(GhostMrc, ShardsSampleShiftMatchesBudget) {
  // Small tenants stay exact; past the budget the shift is the smallest
  // power of two that brings the expected sampled count back under it.
  EXPECT_EQ(GhostMrc::SampleShiftFor(512, 1024), 0u);
  EXPECT_EQ(GhostMrc::SampleShiftFor(1024, 1024), 0u);
  EXPECT_EQ(GhostMrc::SampleShiftFor(1025, 1024), 1u);
  EXPECT_EQ(GhostMrc::SampleShiftFor(4096, 1024), 2u);
  EXPECT_EQ(GhostMrc::SampleShiftFor(uint64_t{1} << 20, 1024), 10u);
  EXPECT_EQ(GhostMrc::SampleShiftFor(uint64_t{1} << 20, 0), 0u);
}

TEST(GhostMrc, ShardsMemoryFiftyTimesSmallerAtMillionUnits) {
  // The fleet acceptance bar: a million-unit tenant's sampled curve
  // costs at most 1/50 of the exact dense counters.
  const uint64_t units = uint64_t{1} << 20;
  GhostMrc exact(units);
  GhostMrc sampled(units, GhostMrc::SampleShiftFor(units, 1024));
  EXPECT_EQ(sampled.sample_shift(), 10u);
  EXPECT_LE(sampled.memory_bytes() * 50, exact.memory_bytes());
}

TEST(GhostMrc, ShardsAdmissionIsPureAndMatchesIncrement) {
  GhostMrc sampled(1 << 12, 3);
  uint64_t admitted = 0;
  for (uint64_t u = 0; u < (1 << 12); ++u) {
    const bool admits = sampled.Admits(u);
    EXPECT_EQ(admits, sampled.Admits(u));  // Pure function of the id.
    EXPECT_EQ(admits, sampled.Increment(u) >= 0);
    admitted += admits ? 1 : 0;
  }
  // The fixed-threshold hash admits ~2^-3 of the ids.
  EXPECT_GT(admitted, (1u << 12) / 8 / 2);
  EXPECT_LT(admitted, (1u << 12) / 8 * 2);
  // Every accepted access was counted, scaled by the sampling rate.
  EXPECT_EQ(sampled.total_hits(), admitted << 3);
  EXPECT_EQ(sampled.demand_units(), admitted << 3);
}

TEST(GhostMrc, ShardsCurveIsOrderIndependent) {
  // The sampled curve is a function of the access multiset, not its
  // order: forward and reverse feeds of the same stream agree exactly.
  const uint64_t units = 1 << 12;
  GhostMrc forward(units, 3);
  GhostMrc reverse(units, 3);
  const auto hits_for = [](uint64_t u) -> uint64_t {
    return u % 7 == 0 ? 4 : 1;
  };
  for (uint64_t u = 0; u < units; ++u) {
    for (uint64_t h = 0; h < hits_for(u); ++h) forward.Increment(u);
  }
  for (uint64_t u = units; u-- > 0;) {
    for (uint64_t h = 0; h < hits_for(u); ++h) reverse.Increment(u);
  }
  EXPECT_EQ(forward.demand_units(), reverse.demand_units());
  EXPECT_EQ(forward.total_hits(), reverse.total_hits());
  for (uint64_t rank : {0u, 1u, 100u, 1000u}) {
    EXPECT_EQ(forward.RankValue(rank), reverse.RankValue(rank));
  }
  for (uint64_t q : {64u, 512u, 4096u}) {
    EXPECT_EQ(forward.CumulativeHits(q), reverse.CumulativeHits(q));
  }
}

TEST(GhostMrc, ShardsCurveTracksExactCurveWithinBoundedError) {
  // A two-level demand curve — a reused hot set over a streaming tail —
  // estimated at 1/16 sampling must stay within 15% of the exact curve
  // at the reads the water-filler makes.
  const uint64_t units = 1 << 16;
  const uint64_t hot = 1 << 12;
  GhostMrc exact(units);
  GhostMrc sampled(units, 4);
  for (uint64_t u = 0; u < units; ++u) {
    const int hits = u < hot ? 4 : 1;
    for (int h = 0; h < hits; ++h) {
      exact.Increment(u);
      sampled.Increment(u);
    }
  }
  const auto close = [](uint64_t estimate, uint64_t truth) {
    const double rel =
        std::abs(static_cast<double>(estimate) - static_cast<double>(truth)) /
        static_cast<double>(truth);
    EXPECT_LE(rel, 0.15) << "estimate " << estimate << " vs " << truth;
  };
  close(sampled.demand_units(), exact.demand_units());
  close(sampled.total_hits(), exact.total_hits());
  close(sampled.CumulativeHits(hot), exact.CumulativeHits(hot));
  close(sampled.CumulativeHits(units), exact.CumulativeHits(units));
  // Both curves agree on the shape: the hot plateau then the tail.
  EXPECT_EQ(sampled.RankValue(0), exact.RankValue(0));
  EXPECT_EQ(sampled.RankValue(hot + hot / 2), exact.RankValue(hot + hot / 2));

  // Cooling preserves the estimate relationship (4 -> 2, 1 -> 0).
  exact.CoolByHalving();
  sampled.CoolByHalving();
  close(sampled.demand_units(), exact.demand_units());
  close(sampled.total_hits(), exact.total_hits());
}

}  // namespace
}  // namespace hybridtier
