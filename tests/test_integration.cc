/**
 * @file
 * Integration and property tests across the full stack: every policy
 * against real workloads, checking system invariants and the paper's
 * qualitative claims at small scale.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/units.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

SimulationConfig TestConfig(uint64_t accesses = 400000) {
  SimulationConfig config;
  config.max_accesses = accesses;
  config.fast_tier_fraction = 1.0 / 8;
  return config;
}

// ------------------------------------ Invariants across all policies --

class EveryPolicy : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryPolicy, SystemInvariantsHold) {
  const std::string policy_name = GetParam();
  auto workload = MakeWorkload("cdn", 0.05, 11);
  auto policy = MakePolicy(policy_name);

  SimulationConfig config = TestConfig();
  config.fast_tier_fraction = FastFractionFor(policy_name, 0.125);
  config.allocation = AllocationPolicyFor(policy_name);

  Simulation simulation(config, workload.get(), policy.get());
  const SimulationResult result = simulation.Run();
  const TieredMemory& memory = simulation.memory();

  // Capacity invariant: the fast tier never over-commits.
  EXPECT_LE(memory.UsedPages(Tier::kFast),
            simulation.fast_capacity_units());
  // Residency conservation: every resident page is in exactly one tier.
  EXPECT_LE(memory.UsedPages(Tier::kFast) + memory.UsedPages(Tier::kSlow),
            simulation.footprint_units());
  // Time moved forward and ops completed.
  EXPECT_GT(result.duration_ns, 0u);
  EXPECT_GT(result.ops, 0u);
  // Sampling bookkeeping is consistent.
  EXPECT_LE(result.samples_dropped, result.samples_taken);
  // Latency numbers are sane.
  EXPECT_GT(result.median_latency_ns, 0.0);
  EXPECT_GE(result.p99_latency_ns, result.median_latency_ns);
}

TEST_P(EveryPolicy, DeterministicEndToEnd) {
  const std::string policy_name = GetParam();
  SimulationConfig config = TestConfig(150000);
  config.fast_tier_fraction = FastFractionFor(policy_name, 0.125);
  config.allocation = AllocationPolicyFor(policy_name);

  auto w1 = MakeWorkload("silo", 0.05, 13);
  auto w2 = MakeWorkload("silo", 0.05, 13);
  auto p1 = MakePolicy(policy_name);
  auto p2 = MakePolicy(policy_name);
  const SimulationResult r1 = RunSimulation(config, w1.get(), p1.get());
  const SimulationResult r2 = RunSimulation(config, w2.get(), p2.get());
  EXPECT_EQ(r1.duration_ns, r2.duration_ns);
  EXPECT_EQ(r1.migration.promoted_pages, r2.migration.promoted_pages);
  EXPECT_EQ(r1.migration.demoted_pages, r2.migration.demoted_pages);
  EXPECT_EQ(r1.llc_app_misses, r2.llc_app_misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, EveryPolicy,
    ::testing::Values("TPP", "AutoNUMA", "Memtis", "ARC", "TwoQ",
                      "HybridTier", "HybridTier-onlyFreq", "AllFast",
                      "FirstTouch"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --------------------------------- Invariants across all workloads --

class EveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkload, RunsUnderHybridTier) {
  auto workload = MakeWorkload(GetParam(), 0.05, 17);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(TestConfig(250000), workload.get(), policy.get());
  EXPECT_GE(result.accesses, 250000u);
  EXPECT_GT(result.fast_mem_accesses + result.slow_mem_accesses, 0u);
}

TEST_P(EveryWorkload, RunsUnderHugePages) {
  auto workload = MakeWorkload(GetParam(), 0.05, 17);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = TestConfig(150000);
  config.mode = PageMode::kHuge;
  const SimulationResult result =
      RunSimulation(config, workload.get(), policy.get());
  EXPECT_GE(result.accesses, 150000u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EveryWorkload,
                         ::testing::ValuesIn(AllWorkloadIds()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// -------------------------------------------- Paper-shape assertions --

TEST(PaperShape, TieringBeatsNoTieringOnSkewedWorkload) {
  auto w1 = MakeWorkload("cdn", 0.05, 19);
  auto w2 = MakeWorkload("cdn", 0.05, 19);
  auto hybrid = MakePolicy("HybridTier");
  auto first_touch = MakePolicy("FirstTouch");
  const SimulationConfig config = TestConfig(800000);
  const SimulationResult r_hybrid =
      RunSimulation(config, w1.get(), hybrid.get());
  const SimulationResult r_static =
      RunSimulation(config, w2.get(), first_touch.get());
  // Same access count, so lower duration == higher performance.
  EXPECT_LT(r_hybrid.duration_ns, r_static.duration_ns);
  // And the win comes from serving more fills from the fast tier.
  EXPECT_GT(r_hybrid.FastAccessFraction(),
            r_static.FastAccessFraction());
}

TEST(PaperShape, AllFastIsUpperBound) {
  const SimulationConfig base = TestConfig(400000);
  auto fast_workload = MakeWorkload("silo", 0.05, 23);
  auto all_fast = MakePolicy("AllFast");
  SimulationConfig fast_config = base;
  fast_config.fast_tier_fraction = 1.0;
  const SimulationResult r_oracle =
      RunSimulation(fast_config, fast_workload.get(), all_fast.get());

  for (const char* name : {"HybridTier", "Memtis"}) {
    auto workload = MakeWorkload("silo", 0.05, 23);
    auto policy = MakePolicy(name);
    const SimulationResult result =
        RunSimulation(base, workload.get(), policy.get());
    EXPECT_LE(r_oracle.duration_ns, result.duration_ns)
        << name << " beat the all-fast oracle";
  }
}

TEST(PaperShape, HybridTierLessMetadataThanMemtis) {
  // Paper Table 4: 2.0-7.8x less metadata, growing as the fast tier
  // shrinks relative to total memory.
  for (const double fraction : {1.0 / 16, 1.0 / 8, 1.0 / 4}) {
    auto w1 = MakeWorkload("silo", 0.05, 29);
    auto w2 = MakeWorkload("silo", 0.05, 29);
    auto hybrid = MakePolicy("HybridTier");
    auto memtis = MakePolicy("Memtis");
    SimulationConfig config = TestConfig(100000);
    config.fast_tier_fraction = fraction;
    const SimulationResult r_hybrid =
        RunSimulation(config, w1.get(), hybrid.get());
    const SimulationResult r_memtis =
        RunSimulation(config, w2.get(), memtis.get());
    EXPECT_LT(r_hybrid.metadata_bytes, r_memtis.metadata_bytes)
        << "at fraction " << fraction;
  }
}

TEST(PaperShape, HybridTierFewerTieringCacheMissesThanMemtis) {
  // Paper Fig 13 vs Fig 5: HybridTier's metadata traffic causes a much
  // smaller share of cache misses than Memtis's page-table walks.
  auto w1 = MakeWorkload("cdn", 0.05, 31);
  auto w2 = MakeWorkload("cdn", 0.05, 31);
  auto hybrid = MakePolicy("HybridTier");
  auto memtis = MakePolicy("Memtis");
  const SimulationConfig config = TestConfig(800000);
  const SimulationResult r_hybrid =
      RunSimulation(config, w1.get(), hybrid.get());
  const SimulationResult r_memtis =
      RunSimulation(config, w2.get(), memtis.get());
  EXPECT_LT(r_hybrid.TieringLlcMissShare(),
            r_memtis.TieringLlcMissShare());
  EXPECT_LT(r_hybrid.llc_tiering_misses, r_memtis.llc_tiering_misses);
}

TEST(PaperShape, BlockedCbfFewerMissesThanStandardCbf) {
  // Paper Fig 14: blocked CBF < standard CBF in tiering cache misses.
  auto w1 = MakeWorkload("cdn", 0.05, 37);
  auto w2 = MakeWorkload("cdn", 0.05, 37);
  auto blocked = MakePolicy("HybridTier");
  auto standard = MakePolicy("HybridTier-CBF");
  const SimulationConfig config = TestConfig(800000);
  const SimulationResult r_blocked =
      RunSimulation(config, w1.get(), blocked.get());
  const SimulationResult r_standard =
      RunSimulation(config, w2.get(), standard.get());
  EXPECT_LT(r_blocked.l1_tiering_misses, r_standard.l1_tiering_misses);
}

TEST(PaperShape, HugePageMetadataMuchSmaller) {
  // Paper §4.4: huge-page mode cuts metadata ~128x (512x fewer tracked
  // units, 4x wider counters). At simulation scale the momentum filter's
  // anti-degeneracy floor binds, so assert the end-to-end direction at
  // small scale and the exact 128x analytically at paper scale.
  auto w1 = MakeWorkload("cdn", 0.1, 41);
  auto w2 = MakeWorkload("cdn", 0.1, 41);
  auto p1 = MakePolicy("HybridTier");
  auto p2 = MakePolicy("HybridTier");
  SimulationConfig regular = TestConfig(100000);
  SimulationConfig huge = regular;
  huge.mode = PageMode::kHuge;
  const SimulationResult r_regular =
      RunSimulation(regular, w1.get(), p1.get());
  const SimulationResult r_huge = RunSimulation(huge, w2.get(), p2.get());
  EXPECT_LT(r_huge.metadata_bytes, r_regular.metadata_bytes);

  // Paper scale: 128 GiB fast tier = 2^25 4 KiB pages = 2^16 huge pages.
  const CbfSizing regular_sizing = FrequencyCbfSizing(1ull << 25, 4);
  const CbfSizing huge_sizing = FrequencyCbfSizing(1ull << 16, 16);
  const double regular_bytes =
      static_cast<double>(regular_sizing.num_counters) * 4 / 8;
  const double huge_bytes =
      static_cast<double>(huge_sizing.num_counters) * 16 / 8;
  EXPECT_NEAR(regular_bytes / huge_bytes, 128.0, 2.0);
}

TEST(PaperShape, RecencySystemsTakeHintFaults) {
  auto workload = MakeWorkload("cdn", 0.05, 43);
  auto autonuma = MakePolicy("AutoNUMA");
  const SimulationResult result =
      RunSimulation(TestConfig(400000), workload.get(), autonuma.get());
  // The hint-fault machinery must actually fire under AutoNUMA.
  EXPECT_GT(result.hint_faults, 0u);
}

TEST(PaperShape, SampleBasedSystemsTakeNoHintFaults) {
  auto workload = MakeWorkload("cdn", 0.05, 43);
  auto hybrid = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(TestConfig(400000), workload.get(), hybrid.get());
  EXPECT_EQ(result.hint_faults, 0u);
}

}  // namespace
}  // namespace hybridtier
