/**
 * @file
 * Steady-state allocation gates for the op-generation hot path.
 *
 * The workload generators reuse the caller's OpTrace buffer (Clear
 * keeps capacity, Reserve grows it once to the worst-case op shape), so
 * after a warmup phase has sized every internal buffer, NextOp must not
 * allocate at all. This file replaces global operator new/delete with
 * counting forwarders to assert exactly that; each gtest case runs in
 * its own process (ctest per-test discovery), so the counter never
 * observes unrelated tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/factory.h"
#include "workloads/trace.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// The replacements pair new->malloc with delete->free consistently;
// GCC's conservative analyzer cannot see across the replacement
// boundary and warns anyway.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The nothrow variants must be replaced too: a buffer obtained from
// nothrow new (e.g. std::stable_sort's temporary buffer) is released
// through plain operator delete, so leaving the default nothrow new in
// place pairs an ASan-tracked allocation with our free().
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hybridtier {
namespace {

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

/** Generates `ops` operations into one reused OpTrace. */
void Generate(Workload& workload, OpTrace& op, uint64_t ops) {
  for (uint64_t i = 0; i < ops; ++i) {
    if (!workload.NextOp(0, &op)) break;
  }
}

TEST(SteadyStateAllocation, GeneratorsAreAllocationFreeAfterWarmup) {
  // (id, scale, warmup ops): warmup must cover every internal buffer's
  // high-water mark — for the graph kernels that means several full
  // trials so frontier/state vectors have peaked.
  struct Case {
    const char* id;
    double scale;
    uint64_t warmup_ops;
  };
  const Case cases[] = {
      {"zipf", 0.25, 1024},   {"cc-k", 0.25, 30000},
      {"pr-k", 0.25, 30000},  {"bfs-k", 0.25, 30000},
      {"silo", 0.05, 1024},   {"cdn", 0.05, 4096},
      {"bwaves", 0.05, 1024}, {"xgboost", 0.05, 4096},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.id);
    auto workload = MakeWorkload(c.id, c.scale, 42);
    OpTrace op;
    Generate(*workload, op, c.warmup_ops);
    const uint64_t before = AllocationCount();
    Generate(*workload, op, 2048);
    EXPECT_EQ(AllocationCount() - before, 0u)
        << c.id << " allocated during steady-state op generation";
  }
}

TEST(SteadyStateAllocation, TraceReplayIsAllocationFree) {
  auto workload = MakeWorkload("zipf", 0.25, 42);
  auto trace =
      std::make_shared<const RecordedTrace>(RecordTrace(*workload, 65536));
  ReplayWorkload replay(trace);
  OpTrace op;
  Generate(replay, op, 64);  // Size the reused buffer.
  replay.Rewind();
  const uint64_t before = AllocationCount();
  Generate(replay, op, 8192);
  EXPECT_EQ(AllocationCount() - before, 0u);
}

TEST(SteadyStateAllocation, MetricHandlesAreAllocationFree) {
  // Registration allocates; pushing values through the resolved handles
  // afterwards must not — that is the whole point of handle resolution.
  MetricRegistry registry;
  Counter* counter = registry.AddCounter("c");
  Gauge* gauge = registry.AddGauge("g");
  HistogramMetric* hist = registry.AddHistogram("h");
  const uint64_t before = AllocationCount();
  for (uint64_t i = 0; i < 100000; ++i) {
    counter->Inc();
    gauge->Set(static_cast<double>(i));
    hist->Observe(i);
  }
  EXPECT_EQ(AllocationCount() - before, 0u);
}

TEST(SteadyStateAllocation, TraceEmissionIsAllocationFreeAfterReserve) {
  TraceEmitter emitter(1, "cell");
  const TraceEmitter::TrackId track = emitter.Track("t");
  const char* name = emitter.Intern("steady-event");
  emitter.Reserve(4096);
  emitter.set_max_events(2048);  // The drop path must not allocate either.
  const uint64_t before = AllocationCount();
  for (uint64_t i = 0; i < 4096; ++i) {
    emitter.Instant(track, name, i, {{"v", 1.0}});
    emitter.Span(track, name, i, i + 10, {{"v", 2.0}});
  }
  EXPECT_EQ(AllocationCount() - before, 0u);
  EXPECT_EQ(emitter.event_count(), 2048u);
  EXPECT_EQ(emitter.dropped_events(), 8192u - 2048u);
}

TEST(SteadyStateAllocation, DisabledTelemetryRunAllocatesDeterministically) {
  // With telemetry disabled (the default null pointers), the engine's
  // telemetry branches are dead `if (ptr)` checks. Two identical runs
  // must allocate the identical amount — a nondeterministic or growing
  // count here would mean a hidden per-access telemetry allocation.
  const auto measure = [] {
    auto workload = MakeWorkload("zipf", 0.1, 42);
    auto policy = MakePolicy("HybridTier");
    SimulationConfig config;
    config.max_accesses = 100000;
    config.seed = 42;
    const uint64_t before = AllocationCount();
    RunSimulation(config, workload.get(), policy.get());
    return AllocationCount() - before;
  };
  const uint64_t first = measure();
  const uint64_t second = measure();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hybridtier
