/**
 * @file
 * Unit tests for src/multitenant: tenant-list parsing, MuxWorkload
 * layout/tagging, FairSharePolicy quota enforcement, and per-tenant
 * stat attribution through the simulation harness.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "mem/migration.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "policies/policy.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

// ---------------------------------------------------- ParseTenantList --

TEST(ParseTenantList, ParsesIdsAndWeights) {
  const std::vector<TenantSpec> specs =
      ParseTenantList("cdn,bfs-k:2,silo:0.5,zipf");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].workload_id, "cdn");
  EXPECT_DOUBLE_EQ(specs[0].weight, 1.0);
  EXPECT_EQ(specs[1].workload_id, "bfs-k");
  EXPECT_DOUBLE_EQ(specs[1].weight, 2.0);
  EXPECT_EQ(specs[2].workload_id, "silo");
  EXPECT_DOUBLE_EQ(specs[2].weight, 0.5);
  EXPECT_EQ(specs[3].workload_id, "zipf");
}

TEST(ParseTenantList, SingleTenant) {
  const std::vector<TenantSpec> specs = ParseTenantList("zipf:3");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].workload_id, "zipf");
  EXPECT_DOUBLE_EQ(specs[0].weight, 3.0);
}

TEST(ParseTenantList, ParsesResidencyWindows) {
  const std::vector<TenantSpec> specs =
      ParseTenantList("cdn@0-2e9,bfs-k:2@5e8,zipf");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].workload_id, "cdn");
  EXPECT_EQ(specs[0].arrival_ns, 0u);
  EXPECT_EQ(specs[0].departure_ns, 2000000000u);
  EXPECT_EQ(specs[1].workload_id, "bfs-k");
  EXPECT_DOUBLE_EQ(specs[1].weight, 2.0);
  EXPECT_EQ(specs[1].arrival_ns, 500000000u);
  EXPECT_EQ(specs[1].departure_ns, 0u);  // Stays until the end.
  EXPECT_EQ(specs[2].arrival_ns, 0u);
  EXPECT_EQ(specs[2].departure_ns, 0u);
}

TEST(ParseTenantList, WindowAcceptsExponentSigns) {
  const std::vector<TenantSpec> specs = ParseTenantList("zipf@1e-3-2e9");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].arrival_ns, 0u);  // 1e-3 ns truncates to 0.
  EXPECT_EQ(specs[0].departure_ns, 2000000000u);
}

// -------------------------------------------------------- MuxWorkload --

std::vector<TenantSpec> SmallSpecs() {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,zipf");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  return specs;
}

TEST(MuxWorkload, RegionsAreDisjointAlignedAndCoverFootprint) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  const TenantDirectory& directory = mux->directory();
  ASSERT_EQ(directory.size(), 3u);

  uint64_t expected_base = 0;
  for (const TenantRegion& region : directory.regions) {
    EXPECT_EQ(region.base_page % kPagesPerHugePage, 0u);
    EXPECT_EQ(region.span_pages % kPagesPerHugePage, 0u);
    EXPECT_EQ(region.base_page, expected_base);
    EXPECT_GE(region.span_pages, region.footprint_pages);
    expected_base += region.span_pages;
  }
  EXPECT_EQ(mux->footprint_pages(), expected_base);

  // Unit ranges tile the footprint exactly in both page modes.
  for (const PageMode mode : {PageMode::kRegular, PageMode::kHuge}) {
    const uint64_t per_unit =
        mode == PageMode::kHuge ? kPagesPerHugePage : 1;
    uint64_t next = 0;
    for (uint32_t t = 0; t < directory.size(); ++t) {
      const PageRange range = mux->tenant_units(t, mode);
      EXPECT_EQ(range.begin, next);
      EXPECT_GT(range.end, range.begin);
      next = range.end;
    }
    EXPECT_EQ(next, mux->footprint_pages() / per_unit);
  }
}

TEST(MuxWorkload, DuplicateWorkloadsGetDistinctNames) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  std::set<std::string> names;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    names.insert(mux->tenant_name(t));
  }
  EXPECT_EQ(names.size(), 3u);
}

TEST(MuxWorkload, TagsOpsAndRemapsIntoOwnRegion) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  OpTrace op;
  std::set<uint32_t> seen;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(mux->NextOp(0, &op));
    const uint32_t tenant = mux->last_tenant();
    seen.insert(tenant);
    const TenantRegion& region = mux->directory().regions[tenant];
    const uint64_t base = region.base_page * kPageSize;
    const uint64_t end = base + region.span_pages * kPageSize;
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_GE(access.addr, base);
      ASSERT_LT(access.addr, end);
    }
  }
  // Round-robin serves every (endless) tenant.
  EXPECT_EQ(seen.size(), mux->tenant_count());
}

TEST(MuxWorkload, WindowsGateTheRotation) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,zipf@1e6-2e6");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 42);
  EXPECT_TRUE(mux->tenant_active_at(0, 0));
  EXPECT_FALSE(mux->tenant_active_at(1, 0));
  EXPECT_TRUE(mux->tenant_active_at(1, 1500000));
  EXPECT_FALSE(mux->tenant_active_at(1, 2000000));

  OpTrace op;
  // Before the arrival only tenant 0 is served.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mux->NextOp(0, &op));
    EXPECT_EQ(mux->last_tenant(), 0u);
  }
  EXPECT_TRUE(mux->churn_events().empty());

  // Inside the window both run; the arrival is surfaced as an event.
  std::set<uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mux->NextOp(1500000, &op));
    seen.insert(mux->last_tenant());
  }
  EXPECT_EQ(seen.size(), 2u);
  ASSERT_EQ(mux->churn_events().size(), 1u);
  EXPECT_TRUE(mux->churn_events()[0].arrival);
  EXPECT_EQ(mux->churn_events()[0].tenant, 1u);
  EXPECT_EQ(mux->churn_events()[0].time_ns, 1000000u);

  // Past the departure tenant 1 is gone again.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mux->NextOp(3000000, &op));
    EXPECT_EQ(mux->last_tenant(), 0u);
  }
  ASSERT_EQ(mux->churn_events().size(), 2u);
  EXPECT_FALSE(mux->churn_events()[1].arrival);
  EXPECT_EQ(mux->churn_events()[1].time_ns, 2000000u);
}

TEST(MuxWorkload, IdleGapBridgesToFirstArrival) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf@5e6");
  specs[0].scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 42);
  OpTrace op;
  // Nobody is runnable at t=0: the mux emits a pure idle gap reaching
  // the arrival instead of ending the run.
  ASSERT_TRUE(mux->NextOp(0, &op));
  EXPECT_TRUE(op.accesses.empty());
  EXPECT_EQ(op.think_time_ns, 5000000u);
  // At the arrival real ops flow.
  ASSERT_TRUE(mux->NextOp(5000000, &op));
  EXPECT_FALSE(op.accesses.empty());
  EXPECT_EQ(op.think_time_ns, 0u);
}

TEST(TenantDirectory, TenantOfUnitMatchesRanges) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  const TenantDirectory& directory = mux->directory();
  for (const PageMode mode : {PageMode::kRegular, PageMode::kHuge}) {
    for (uint32_t t = 0; t < directory.size(); ++t) {
      const PageRange range = directory.regions[t].UnitRange(mode);
      EXPECT_EQ(directory.TenantOfUnit(range.begin, mode), t);
      EXPECT_EQ(directory.TenantOfUnit(range.end - 1, mode), t);
    }
  }
}

// ---------------------------------------------------- FairSharePolicy --

/** Test policy that tries to promote every slow page each tick. */
class PromoteAllPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    std::vector<PageId> pages;
    for (PageId unit = 0; unit < context().footprint_units; ++unit) {
      if (memory().IsResident(unit) &&
          memory().TierOf(unit) == Tier::kSlow) {
        pages.push_back(unit);
      }
    }
    if (!pages.empty()) migration().Promote(pages, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "PromoteAll"; }
};

/** Two synthetic tenants (1024 pages each) with the given weights. */
TenantDirectory TwoTenantDirectoryWeighted(double weight_a,
                                           double weight_b) {
  TenantDirectory directory;
  directory.regions.push_back(TenantRegion{
      .name = "a", .weight = weight_a, .base_page = 0,
      .footprint_pages = 1024, .span_pages = 1024});
  directory.regions.push_back(TenantRegion{
      .name = "b", .weight = weight_b, .base_page = 1024,
      .footprint_pages = 1024, .span_pages = 1024});
  return directory;
}

/** Two synthetic tenants (1024 pages each) with a 3:1 weight split. */
TenantDirectory TwoTenantDirectory() {
  return TwoTenantDirectoryWeighted(3.0, 1.0);
}

/** Minimal bound context around a FairSharePolicy for unit tests. */
class FairShareHarness {
 public:
  explicit FairShareHarness(AllocationPolicy allocation,
                            FairShareConfig config = FairShareConfig{},
                            std::unique_ptr<TieringPolicy> base =
                                std::make_unique<PromoteAllPolicy>(),
                            TenantDirectory directory = TwoTenantDirectory())
      : memory_(2048, 512, 2048, allocation),
        perf_(PerfModelConfig{}, DefaultFastTier(512),
              DefaultSlowTier(2048)),
        engine_(&memory_, &perf_),
        policy_(std::move(base), std::move(directory), config) {
    PolicyContext context;
    context.memory = &memory_;
    context.migration = &engine_;
    context.metadata_sink = &sink_;
    context.footprint_units = 2048;
    context.fast_capacity_units = 512;
    policy_.Bind(context);
  }

  void TouchAll() {
    for (PageId unit = 0; unit < 2048; ++unit) memory_.Touch(unit, 0);
  }

  uint64_t FastResident(uint32_t tenant) {
    uint64_t count = 0;
    memory_.ScanResident(tenant * 1024, 1024, Tier::kFast,
                         [&count](PageId) { ++count; });
    return count;
  }

  TieredMemory& memory() { return memory_; }
  FairSharePolicy& policy() { return policy_; }

 private:
  TieredMemory memory_;
  PerfModel perf_;
  MigrationEngine engine_;
  NullTrafficSink sink_;
  FairSharePolicy policy_;
};

TEST(FairSharePolicy, StaticQuotasFollowWeights) {
  FairShareHarness harness(AllocationPolicy::kSlowOnly);
  // 3:1 weights over 512 fast units.
  EXPECT_EQ(harness.policy().quota_units(0), 384u);
  EXPECT_EQ(harness.policy().quota_units(1), 128u);
}

TEST(FairSharePolicy, GateCapsPromotionsAtQuota) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config);
  harness.TouchAll();  // Everything allocates in the slow tier.

  // The base policy tries to promote all 2048 pages; the gate admits
  // only each tenant's quota.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.FastResident(0), 384u);
  EXPECT_EQ(harness.FastResident(1), 128u);
  EXPECT_EQ(harness.policy().fast_units(0), 384u);
  EXPECT_EQ(harness.policy().fast_units(1), 128u);
  EXPECT_GT(harness.policy().gated_promotions(0), 0u);
  EXPECT_GT(harness.policy().gated_promotions(1), 0u);
}

TEST(FairSharePolicy, EnforcementDemotesOverQuotaTenant) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kFastFirst, config);
  // Fast-first allocation: tenant a's first 512 pages take the whole
  // fast tier (the prefault picture).
  harness.TouchAll();
  ASSERT_EQ(harness.FastResident(0), 512u);
  ASSERT_EQ(harness.FastResident(1), 0u);

  // One tick: enforcement demotes a to quota, then the base policy
  // promotes b into the freed capacity (through the gate, up to quota).
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.FastResident(0), 384u);
  EXPECT_EQ(harness.FastResident(1), 128u);
  EXPECT_GT(harness.policy().enforced_demotions(0), 0u);
}

/** Test policy that issues batches containing duplicate page ids. */
class DupBatchPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    if (done_) return;
    done_ = true;
    const std::vector<PageId> promote = {0, 0, 0, 5, 5, 1030, 1030};
    migration().Promote(promote, now);
    const std::vector<PageId> demote = {0, 0};
    migration().Demote(demote, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "DupBatch"; }

 private:
  bool done_ = false;
};

TEST(FairSharePolicy, DuplicatePagesInBatchesDoNotCorruptAccounting) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config,
                           std::make_unique<DupBatchPolicy>());
  harness.TouchAll();

  // Promote {0,0,0,5,5,1030,1030} then demote {0,0}: the tracked
  // occupancy must match the memory system exactly, not drift by the
  // duplicate entries.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
  EXPECT_EQ(harness.policy().fast_units(1), harness.FastResident(1));
  EXPECT_EQ(harness.FastResident(0), 1u);  // Page 5 stayed fast.
  EXPECT_EQ(harness.FastResident(1), 1u);  // Page 1030.
}

/**
 * Test policy that promotes one batch mixing non-resident pages (an
 * arriving tenant's region) with slow-resident ones.
 */
class MixedBatchPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    if (done_) return;
    done_ = true;
    std::vector<PageId> batch;
    // 12 non-resident pages first, then 200 slow-resident ones — all
    // belonging to tenant a.
    for (PageId page = 500; page < 512; ++page) batch.push_back(page);
    for (PageId page = 0; page < 200; ++page) batch.push_back(page);
    migration().Promote(batch, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "MixedBatch"; }

 private:
  bool done_ = false;
};

TEST(FairSharePolicy, GateChargesNonResidentPagesAgainstQuota) {
  FairShareConfig config;
  config.rebalance = false;
  // Weights 1:3 give tenant a a 128-unit quota over the 512 fast units.
  FairShareHarness harness(AllocationPolicy::kFastFirst, config,
                           std::make_unique<MixedBatchPolicy>(),
                           TwoTenantDirectoryWeighted(1.0, 3.0));
  ASSERT_EQ(harness.policy().quota_units(0), 128u);

  TieredMemory& mem = harness.memory();
  // Tenant b fills the fast tier, tenant a lands slow, and then 312 of
  // b's pages are demoted so the tier has free capacity — the state an
  // arrival meets: free fast pages, a's region partly non-resident.
  for (PageId page = 1024; page < 1536; ++page) mem.Touch(page, 0);
  for (PageId page = 0; page < 500; ++page) mem.Touch(page, 0);
  for (PageId page = 1224; page < 1536; ++page) {
    ASSERT_TRUE(mem.Migrate(page, Tier::kSlow));
  }
  ASSERT_EQ(mem.FreePages(Tier::kFast), 312u);

  // The base policy promotes a batch mixing 12 non-resident pages with
  // 200 slow-resident ones; every page the engine could land fast must
  // consume gate headroom.
  harness.policy().Tick(1 * kMillisecond);

  // The 12 admitted non-resident pages now get their first touch (the
  // arriving tenant starts running) and allocate fast-first.
  for (PageId page = 500; page < 512; ++page) {
    const TouchResult touch = mem.Touch(page, 2 * kMillisecond);
    ASSERT_TRUE(touch.first_touch);
    ASSERT_EQ(touch.tier, Tier::kFast);
    harness.policy().OnAccess(page, touch, 2 * kMillisecond);
  }

  // Without charging non-resident admissions, tenant a ends at
  // quota + 12. With the fix the batch reserved their headroom.
  EXPECT_LE(harness.policy().fast_units(0),
            harness.policy().quota_units(0));
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
  EXPECT_EQ(harness.FastResident(0), 128u);
}

// --------------------------------------- simulation-level attribution --

SimulationConfig SmallSimConfig() {
  SimulationConfig config;
  config.max_accesses = 150000;
  config.seed = 7;
  return config;
}

TEST(MultiTenantSimulation, PerTenantStatsSumToGlobalTotals) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), mux.get(), policy.get());

  ASSERT_EQ(result.tenants.size(), 3u);
  uint64_t ops = 0;
  uint64_t accesses = 0;
  uint64_t fast = 0;
  uint64_t slow = 0;
  for (const TenantResult& tenant : result.tenants) {
    ops += tenant.ops;
    accesses += tenant.accesses;
    fast += tenant.fast_mem_accesses;
    slow += tenant.slow_mem_accesses;
    EXPECT_GT(tenant.ops, 0u);
  }
  EXPECT_EQ(ops, result.ops);
  EXPECT_EQ(accesses, result.accesses);
  EXPECT_EQ(fast, result.fast_mem_accesses);
  EXPECT_EQ(slow, result.slow_mem_accesses);
  EXPECT_GT(result.jain_fairness, 0.0);
  EXPECT_LE(result.jain_fairness, 1.0);
}

TEST(MultiTenantSimulation, SingleTenantRunsHaveNoTenantResults) {
  auto workload = MakeWorkload("zipf", 0.05, 7);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), workload.get(), policy.get());
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_DOUBLE_EQ(result.jain_fairness, 1.0);
}

TEST(MultiTenantSimulation, FairShareKeepsEveryTenantWithinQuota) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 400000;
  const SimulationResult result =
      RunSimulation(config, mux.get(), fair.get());

  const FairShareConfig defaults;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    EXPECT_LE(result.tenants[t].fast_resident_units,
              fair->quota_units(t) + defaults.max_enforce_batch)
        << "tenant " << result.tenants[t].name << " exceeds its quota";
    // The wrapper's incremental occupancy tracking matches the memory
    // system's ground truth at end of run.
    EXPECT_EQ(result.tenants[t].fast_resident_units, fair->fast_units(t));
  }
}

// ------------------------------------------------------- tenant churn --

TEST(MultiTenantSimulation, DepartureReleasesFastShareWithinOneRebalance) {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,zipf@0-6e7,cdn:2");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 7);
  const FairShareConfig fair_config;
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory(),
                                                fair_config);
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 120 * kMillisecond;
  Simulation simulation(config, mux.get(), fair.get());
  const SimulationResult result = simulation.Run();

  constexpr TimeNs kDeparture = 60000000;  // 6e7 ns.
  ASSERT_GT(result.duration_ns, kDeparture);

  // The mux surfaced the departure and stopped serving the tenant.
  bool saw_departure = false;
  for (const TenantChurnEvent& event : mux->churn_events()) {
    if (!event.arrival && event.tenant == 1) {
      saw_departure = true;
      EXPECT_EQ(event.time_ns, kDeparture);
    }
  }
  EXPECT_TRUE(saw_departure);

  // The departed tenant's fast share was fully released and its quota
  // re-divided over the survivors.
  EXPECT_FALSE(fair->tenant_active(1));
  EXPECT_GT(fair->released_units(1), 0u);
  EXPECT_EQ(fair->quota_units(1), 0u);
  EXPECT_EQ(result.tenants[1].fast_resident_units, 0u);
  EXPECT_EQ(fair->quota_units(0) + fair->quota_units(2),
            simulation.fast_capacity_units());

  // Timeline view: the tenant held fast capacity before departing, and
  // its occupancy is zero from one rebalance interval after departure.
  const TimeSeries& occupancy = result.tenants[1].occupancy_timeline;
  ASSERT_GT(occupancy.size(), 0u);
  bool held_capacity_before = false;
  const TimeNs deadline =
      kDeparture + fair_config.rebalance_interval_ns;
  for (size_t i = 0; i < occupancy.size(); ++i) {
    if (occupancy.times_ns[i] < kDeparture && occupancy.values[i] > 0.0) {
      held_capacity_before = true;
    }
    if (occupancy.times_ns[i] >= deadline) {
      EXPECT_EQ(occupancy.values[i], 0.0)
          << "departed tenant still resident at t="
          << occupancy.times_ns[i];
    }
  }
  EXPECT_TRUE(held_capacity_before);
}

TEST(MultiTenantSimulation, ArrivalJoinsRotationAndEarnsQuota) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,zipf@4e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 100 * kMillisecond;
  Simulation simulation(config, mux.get(), fair.get());
  const SimulationResult result = simulation.Run();

  constexpr TimeNs kArrival = 40000000;  // 4e7 ns.
  ASSERT_GT(result.duration_ns, kArrival);
  EXPECT_GT(result.tenants[1].ops, 0u);
  EXPECT_TRUE(fair->tenant_active(1));
  EXPECT_GT(fair->quota_units(1), 0u);

  // Before the arrival the tenant's region does not exist: it was not
  // prefaulted and holds no fast capacity.
  const TimeSeries& occupancy = result.tenants[1].occupancy_timeline;
  ASSERT_GT(occupancy.size(), 0u);
  for (size_t i = 0; i < occupancy.size(); ++i) {
    if (occupancy.times_ns[i] < kArrival) {
      EXPECT_EQ(occupancy.values[i], 0.0);
    }
  }
  // After it, the tenant owns part of the tier.
  EXPECT_GT(result.tenants[1].fast_resident_units, 0u);
}

TEST(MultiTenantSimulation, HugePageModeAttributesCleanly) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = SmallSimConfig();
  config.mode = PageMode::kHuge;
  const SimulationResult result =
      RunSimulation(config, mux.get(), policy.get());
  uint64_t ops = 0;
  for (const TenantResult& tenant : result.tenants) ops += tenant.ops;
  EXPECT_EQ(ops, result.ops);
}

}  // namespace
}  // namespace hybridtier
