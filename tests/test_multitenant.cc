/**
 * @file
 * Unit tests for src/multitenant: tenant-list parsing, MuxWorkload
 * layout/tagging, FairSharePolicy quota enforcement, and per-tenant
 * stat attribution through the simulation harness.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "mem/migration.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/fleet.h"
#include "multitenant/mux_workload.h"
#include "multitenant/quota_controller.h"
#include "policies/policy.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

// ---------------------------------------------------- ParseTenantList --

TEST(ParseTenantList, ParsesIdsAndWeights) {
  const std::vector<TenantSpec> specs =
      ParseTenantList("cdn,bfs-k:2,silo:0.5,zipf");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].workload_id, "cdn");
  EXPECT_DOUBLE_EQ(specs[0].weight, 1.0);
  EXPECT_EQ(specs[1].workload_id, "bfs-k");
  EXPECT_DOUBLE_EQ(specs[1].weight, 2.0);
  EXPECT_EQ(specs[2].workload_id, "silo");
  EXPECT_DOUBLE_EQ(specs[2].weight, 0.5);
  EXPECT_EQ(specs[3].workload_id, "zipf");
}

TEST(ParseTenantList, SingleTenant) {
  const std::vector<TenantSpec> specs = ParseTenantList("zipf:3");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].workload_id, "zipf");
  EXPECT_DOUBLE_EQ(specs[0].weight, 3.0);
}

TEST(ParseTenantList, ParsesResidencyWindows) {
  const std::vector<TenantSpec> specs =
      ParseTenantList("cdn@0-2e9,bfs-k:2@5e8,zipf");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].workload_id, "cdn");
  ASSERT_EQ(specs[0].windows.size(), 1u);
  EXPECT_EQ(specs[0].windows[0].arrival_ns, 0u);
  EXPECT_EQ(specs[0].windows[0].departure_ns, 2000000000u);
  EXPECT_EQ(specs[1].workload_id, "bfs-k");
  EXPECT_DOUBLE_EQ(specs[1].weight, 2.0);
  ASSERT_EQ(specs[1].windows.size(), 1u);
  EXPECT_EQ(specs[1].windows[0].arrival_ns, 500000000u);
  EXPECT_EQ(specs[1].windows[0].departure_ns, 0u);  // Stays to the end.
  EXPECT_TRUE(specs[2].windows.empty());  // Resident for the whole run.
}

TEST(ParseTenantList, WindowAcceptsExponentSigns) {
  const std::vector<TenantSpec> specs = ParseTenantList("zipf@1e-3-2e9");
  ASSERT_EQ(specs.size(), 1u);
  ASSERT_EQ(specs[0].windows.size(), 1u);
  EXPECT_EQ(specs[0].windows[0].arrival_ns, 0u);  // 1e-3 truncates to 0.
  EXPECT_EQ(specs[0].windows[0].departure_ns, 2000000000u);
}

TEST(ParseTenantList, ParsesRecurringWindows) {
  // Two residency windows model diurnal co-location; '+' after an
  // exponent ("1e+8") must still read as a sign, not a separator.
  const std::vector<TenantSpec> specs =
      ParseTenantList("zipf@1e+8-2e8+5e8-6e8,cdn");
  ASSERT_EQ(specs.size(), 2u);
  ASSERT_EQ(specs[0].windows.size(), 2u);
  EXPECT_EQ(specs[0].windows[0].arrival_ns, 100000000u);
  EXPECT_EQ(specs[0].windows[0].departure_ns, 200000000u);
  EXPECT_EQ(specs[0].windows[1].arrival_ns, 500000000u);
  EXPECT_EQ(specs[0].windows[1].departure_ns, 600000000u);
  EXPECT_TRUE(specs[1].windows.empty());

  // The last of several windows may stay open.
  const std::vector<TenantSpec> open =
      ParseTenantList("zipf@0-1e8+3e8");
  ASSERT_EQ(open[0].windows.size(), 2u);
  EXPECT_EQ(open[0].windows[1].arrival_ns, 300000000u);
  EXPECT_EQ(open[0].windows[1].departure_ns, 0u);
}

// -------------------------------------------------------- MuxWorkload --

std::vector<TenantSpec> SmallSpecs() {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,zipf");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  return specs;
}

TEST(MuxWorkload, RegionsAreDisjointAlignedAndCoverFootprint) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  const TenantDirectory& directory = mux->directory();
  ASSERT_EQ(directory.size(), 3u);

  uint64_t expected_base = 0;
  for (const TenantRegion& region : directory.regions) {
    EXPECT_EQ(region.base_page % kPagesPerHugePage, 0u);
    EXPECT_EQ(region.span_pages % kPagesPerHugePage, 0u);
    EXPECT_EQ(region.base_page, expected_base);
    EXPECT_GE(region.span_pages, region.footprint_pages);
    expected_base += region.span_pages;
  }
  EXPECT_EQ(mux->footprint_pages(), expected_base);

  // Unit ranges tile the footprint exactly in both page modes.
  for (const PageMode mode : {PageMode::kRegular, PageMode::kHuge}) {
    const uint64_t per_unit =
        mode == PageMode::kHuge ? kPagesPerHugePage : 1;
    uint64_t next = 0;
    for (uint32_t t = 0; t < directory.size(); ++t) {
      const PageRange range = mux->tenant_units(t, mode);
      EXPECT_EQ(range.begin, next);
      EXPECT_GT(range.end, range.begin);
      next = range.end;
    }
    EXPECT_EQ(next, mux->footprint_pages() / per_unit);
  }
}

TEST(MuxWorkload, DuplicateWorkloadsGetDistinctNames) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  std::set<std::string> names;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    names.insert(mux->tenant_name(t));
  }
  EXPECT_EQ(names.size(), 3u);
}

TEST(MuxWorkload, TagsOpsAndRemapsIntoOwnRegion) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  OpTrace op;
  std::set<uint32_t> seen;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(mux->NextOp(0, &op));
    const uint32_t tenant = mux->last_tenant();
    seen.insert(tenant);
    const TenantRegion& region = mux->directory().regions[tenant];
    const uint64_t base = region.base_page * kPageSize;
    const uint64_t end = base + region.span_pages * kPageSize;
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_GE(access.addr, base);
      ASSERT_LT(access.addr, end);
    }
  }
  // Round-robin serves every (endless) tenant.
  EXPECT_EQ(seen.size(), mux->tenant_count());
}

TEST(MuxWorkload, WindowsGateTheRotation) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,zipf@1e6-2e6");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 42);
  EXPECT_TRUE(mux->tenant_active_at(0, 0));
  EXPECT_FALSE(mux->tenant_active_at(1, 0));
  EXPECT_TRUE(mux->tenant_active_at(1, 1500000));
  EXPECT_FALSE(mux->tenant_active_at(1, 2000000));

  OpTrace op;
  // Before the arrival only tenant 0 is served.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mux->NextOp(0, &op));
    EXPECT_EQ(mux->last_tenant(), 0u);
  }
  EXPECT_TRUE(mux->churn_events().empty());

  // Inside the window both run; the arrival is surfaced as an event.
  std::set<uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mux->NextOp(1500000, &op));
    seen.insert(mux->last_tenant());
  }
  EXPECT_EQ(seen.size(), 2u);
  ASSERT_EQ(mux->churn_events().size(), 1u);
  EXPECT_TRUE(mux->churn_events()[0].arrival);
  EXPECT_EQ(mux->churn_events()[0].tenant, 1u);
  EXPECT_EQ(mux->churn_events()[0].time_ns, 1000000u);

  // Past the departure tenant 1 is gone again.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mux->NextOp(3000000, &op));
    EXPECT_EQ(mux->last_tenant(), 0u);
  }
  ASSERT_EQ(mux->churn_events().size(), 2u);
  EXPECT_FALSE(mux->churn_events()[1].arrival);
  EXPECT_EQ(mux->churn_events()[1].time_ns, 2000000u);
}

TEST(MuxWorkload, RecurringWindowsReactivateTheTenant) {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,zipf@1e6-2e6+4e6-5e6");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 42);

  // The windows gate activity: out, in, out, in again, out for good.
  EXPECT_FALSE(mux->tenant_active_at(1, 0));
  EXPECT_TRUE(mux->tenant_active_at(1, 1500000));
  EXPECT_FALSE(mux->tenant_active_at(1, 3000000));
  EXPECT_TRUE(mux->tenant_active_at(1, 4500000));
  EXPECT_FALSE(mux->tenant_active_at(1, 6000000));

  const auto serve = [&](TimeNs now, int ops) {
    OpTrace op;
    std::set<uint32_t> seen;
    for (int i = 0; i < ops; ++i) {
      EXPECT_TRUE(mux->NextOp(now, &op));
      seen.insert(mux->last_tenant());
    }
    return seen;
  };

  // First window: both tenants run. Between windows: only tenant 0.
  EXPECT_EQ(serve(1500000, 100).size(), 2u);
  EXPECT_EQ(serve(3000000, 100).size(), 1u);
  // Second window: the tenant re-enters the rotation, resuming its
  // suspended stream; afterwards it is gone for good.
  EXPECT_EQ(serve(4500000, 100).size(), 2u);
  EXPECT_EQ(serve(6000000, 100).size(), 1u);

  // Four edges, chronological: arrive, depart, re-arrive, depart.
  ASSERT_EQ(mux->churn_events().size(), 4u);
  const TimeNs times[] = {1000000, 2000000, 4000000, 5000000};
  const bool arrivals[] = {true, false, true, false};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mux->churn_events()[i].tenant, 1u);
    EXPECT_EQ(mux->churn_events()[i].time_ns, times[i]);
    EXPECT_EQ(mux->churn_events()[i].arrival, arrivals[i]);
  }
}

TEST(MuxWorkload, IdleGapBridgesToNextRecurringWindow) {
  // A single tenant with two windows: between them the mux emits a pure
  // idle gap carrying the clock to the re-arrival, not end-of-stream.
  std::vector<TenantSpec> specs = ParseTenantList("zipf@0-1e6+5e6");
  specs[0].scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 42);
  OpTrace op;
  ASSERT_TRUE(mux->NextOp(0, &op));
  EXPECT_FALSE(op.accesses.empty());
  // Past the first departure, nobody is runnable until 5e6.
  ASSERT_TRUE(mux->NextOp(2000000, &op));
  EXPECT_TRUE(op.accesses.empty());
  EXPECT_EQ(op.think_time_ns, 3000000u);
  // At the second window real ops flow again.
  ASSERT_TRUE(mux->NextOp(5000000, &op));
  EXPECT_FALSE(op.accesses.empty());
}

TEST(MuxWorkload, IdleGapBridgesToFirstArrival) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf@5e6");
  specs[0].scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 42);
  OpTrace op;
  // Nobody is runnable at t=0: the mux emits a pure idle gap reaching
  // the arrival instead of ending the run.
  ASSERT_TRUE(mux->NextOp(0, &op));
  EXPECT_TRUE(op.accesses.empty());
  EXPECT_EQ(op.think_time_ns, 5000000u);
  // At the arrival real ops flow.
  ASSERT_TRUE(mux->NextOp(5000000, &op));
  EXPECT_FALSE(op.accesses.empty());
  EXPECT_EQ(op.think_time_ns, 0u);
}

TEST(TenantDirectory, TenantOfUnitMatchesRanges) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  const TenantDirectory& directory = mux->directory();
  for (const PageMode mode : {PageMode::kRegular, PageMode::kHuge}) {
    for (uint32_t t = 0; t < directory.size(); ++t) {
      const PageRange range = directory.regions[t].UnitRange(mode);
      EXPECT_EQ(directory.TenantOfUnit(range.begin, mode), t);
      EXPECT_EQ(directory.TenantOfUnit(range.end - 1, mode), t);
    }
  }
}

// ---------------------------------------------------- QuotaController --

/** A demand curve of `hot` units at value `hot_value` + a 1-value tail. */
std::vector<GhostDemandStep> Curve(uint64_t hot, uint32_t hot_value,
                                   uint64_t tail) {
  std::vector<GhostDemandStep> curve;
  if (hot > 0) curve.push_back({.value = hot_value, .units = hot});
  if (tail > 0) curve.push_back({.value = 1, .units = tail});
  return curve;
}

TEST(QuotaController, MarginalWaterFillRespectsFloorsCapsAndTotal) {
  const std::vector<std::vector<GhostDemandStep>> curves = {
      Curve(100, 10, 0), Curve(0, 0, 900)};
  const std::vector<double> weights = {1.0, 1.0};
  const std::vector<uint64_t> floors = {64, 64};
  const std::vector<uint64_t> caps = {1024, 1024};

  const std::vector<uint64_t> quotas =
      MarginalUtilityQuotas(curves, weights, floors, caps, 512);
  ASSERT_EQ(quotas.size(), 2u);
  EXPECT_EQ(quotas[0] + quotas[1], 512u);
  EXPECT_GE(quotas[0], 64u);
  EXPECT_GE(quotas[1], 64u);
  // The hot set (100 units at value 10) is fully funded before the
  // streaming tail (900 units at value 1) takes the rest.
  EXPECT_GE(quotas[0], 100u);
  EXPECT_LE(quotas[0], 1024u);
}

TEST(QuotaController, MarginalWaterFillStreamingCannotCrowdOutHotSet) {
  // The streamer offers 10x the demand *volume* (units touched once),
  // the hot tenant a compact reuse set. Density-style division by
  // volume would hand the streamer most of the tier; water-filling
  // funds the hot set first.
  const std::vector<std::vector<GhostDemandStep>> curves = {
      Curve(200, 8, 0), Curve(0, 0, 2000)};
  const std::vector<uint64_t> quotas = MarginalUtilityQuotas(
      curves, {1.0, 1.0}, {32, 32}, {4096, 4096}, 256);
  EXPECT_GE(quotas[0], 200u);  // Whole reuse set, floors included.
  EXPECT_EQ(quotas[0] + quotas[1], 256u);
}

TEST(QuotaController, MarginalWaterFillMonotoneInCapacity) {
  // More capacity never lowers any tenant's quota.
  const std::vector<std::vector<GhostDemandStep>> curves = {
      Curve(100, 12, 50), Curve(30, 3, 800), Curve(0, 0, 0)};
  const std::vector<double> weights = {1.0, 2.0, 0.5};
  const std::vector<uint64_t> floors = {16, 40, 8};
  const std::vector<uint64_t> caps = {512, 1024, 96};

  std::vector<uint64_t> previous(3, 0);
  for (uint64_t total = 0; total <= 1700; total += 7) {
    const std::vector<uint64_t> quotas =
        MarginalUtilityQuotas(curves, weights, floors, caps, total);
    uint64_t sum = 0;
    for (size_t i = 0; i < quotas.size(); ++i) {
      EXPECT_GE(quotas[i], previous[i])
          << "tenant " << i << " shrank when total grew to " << total;
      EXPECT_LE(quotas[i], caps[i]);
      sum += quotas[i];
    }
    EXPECT_EQ(sum, std::min<uint64_t>(total, 512 + 1024 + 96));
    previous = quotas;
  }
}

TEST(QuotaController, MarginalWaterFillDeterministic) {
  const std::vector<std::vector<GhostDemandStep>> curves = {
      Curve(64, 7, 128), Curve(64, 7, 128), Curve(10, 15, 0)};
  const std::vector<double> weights = {1.5, 1.5, 1.0};
  const std::vector<uint64_t> floors = {10, 10, 10};
  const std::vector<uint64_t> caps = {600, 600, 600};
  const std::vector<uint64_t> a =
      MarginalUtilityQuotas(curves, weights, floors, caps, 333);
  const std::vector<uint64_t> b =
      MarginalUtilityQuotas(curves, weights, floors, caps, 333);
  EXPECT_EQ(a, b);
  // Identical tenants tie-break by index, not arbitrarily.
  EXPECT_GE(a[0], a[1]);
}

TEST(QuotaController, MarginalWaterFillSkipsAbsentTenants) {
  const std::vector<std::vector<GhostDemandStep>> curves = {
      Curve(100, 10, 0), Curve(100, 10, 0)};
  const std::vector<uint64_t> quotas = MarginalUtilityQuotas(
      curves, {1.0, 0.0}, {64, 64}, {1024, 1024}, 512);
  EXPECT_EQ(quotas[1], 0u);  // Weight 0 marks an absent tenant.
  EXPECT_EQ(quotas[0], 512u);
}

// ---------------------------------------------------- FairSharePolicy --

/** Test policy that tries to promote every slow page each tick. */
class PromoteAllPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    std::vector<PageId> pages;
    for (PageId unit = 0; unit < context().footprint_units; ++unit) {
      if (memory().IsResident(unit) &&
          memory().TierOf(unit) == Tier::kSlow) {
        pages.push_back(unit);
      }
    }
    if (!pages.empty()) migration().Promote(pages, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "PromoteAll"; }
};

/** Two synthetic tenants (1024 pages each) with the given weights. */
TenantDirectory TwoTenantDirectoryWeighted(double weight_a,
                                           double weight_b) {
  TenantDirectory directory;
  directory.regions.push_back(TenantRegion{
      .name = "a", .weight = weight_a, .base_page = 0,
      .footprint_pages = 1024, .span_pages = 1024});
  directory.regions.push_back(TenantRegion{
      .name = "b", .weight = weight_b, .base_page = 1024,
      .footprint_pages = 1024, .span_pages = 1024});
  return directory;
}

/** Two synthetic tenants (1024 pages each) with a 3:1 weight split. */
TenantDirectory TwoTenantDirectory() {
  return TwoTenantDirectoryWeighted(3.0, 1.0);
}

/** Minimal bound context around a FairSharePolicy for unit tests. */
class FairShareHarness {
 public:
  explicit FairShareHarness(AllocationPolicy allocation,
                            FairShareConfig config = FairShareConfig{},
                            std::unique_ptr<TieringPolicy> base =
                                std::make_unique<PromoteAllPolicy>(),
                            TenantDirectory directory = TwoTenantDirectory())
      : memory_(2048, 512, 2048, allocation),
        perf_(PerfModelConfig{}, DefaultFastTier(512),
              DefaultSlowTier(2048)),
        engine_(&memory_, &perf_),
        policy_(std::move(base), std::move(directory), config) {
    // Count metadata touches without buffering lines for replay (the
    // drop-in equivalent of the old null sink).
    sink_.SetRecording(false);
    PolicyContext context;
    context.memory = &memory_;
    context.migration = &engine_;
    context.metadata_sink = &sink_;
    context.footprint_units = 2048;
    context.fast_capacity_units = 512;
    policy_.Bind(context);
  }

  void TouchAll() {
    for (PageId unit = 0; unit < 2048; ++unit) memory_.Touch(unit, 0);
  }

  uint64_t FastResident(uint32_t tenant) {
    uint64_t count = 0;
    memory_.ScanResident(tenant * 1024, 1024, Tier::kFast,
                         [&count](PageId) { ++count; });
    return count;
  }

  TieredMemory& memory() { return memory_; }
  FairSharePolicy& policy() { return policy_; }

 private:
  TieredMemory memory_;
  PerfModel perf_;
  MigrationEngine engine_;
  MetadataTrafficCounter sink_;
  FairSharePolicy policy_;
};

TEST(FairSharePolicy, StaticQuotasFollowWeights) {
  FairShareHarness harness(AllocationPolicy::kSlowOnly);
  // 3:1 weights over 512 fast units.
  EXPECT_EQ(harness.policy().quota_units(0), 384u);
  EXPECT_EQ(harness.policy().quota_units(1), 128u);
}

TEST(FairSharePolicy, GateCapsPromotionsAtQuota) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config);
  harness.TouchAll();  // Everything allocates in the slow tier.

  // The base policy tries to promote all 2048 pages; the gate admits
  // only each tenant's quota.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.FastResident(0), 384u);
  EXPECT_EQ(harness.FastResident(1), 128u);
  EXPECT_EQ(harness.policy().fast_units(0), 384u);
  EXPECT_EQ(harness.policy().fast_units(1), 128u);
  EXPECT_GT(harness.policy().gated_promotions(0), 0u);
  EXPECT_GT(harness.policy().gated_promotions(1), 0u);
}

TEST(FairSharePolicy, EnforcementDemotesOverQuotaTenant) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kFastFirst, config);
  // Fast-first allocation: tenant a's first 512 pages take the whole
  // fast tier (the prefault picture).
  harness.TouchAll();
  ASSERT_EQ(harness.FastResident(0), 512u);
  ASSERT_EQ(harness.FastResident(1), 0u);

  // One tick: enforcement demotes a to quota, then the base policy
  // promotes b into the freed capacity (through the gate, up to quota).
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.FastResident(0), 384u);
  EXPECT_EQ(harness.FastResident(1), 128u);
  EXPECT_GT(harness.policy().enforced_demotions(0), 0u);
}

/** Test policy that issues batches containing duplicate page ids. */
class DupBatchPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    if (done_) return;
    done_ = true;
    const std::vector<PageId> promote = {0, 0, 0, 5, 5, 1030, 1030};
    migration().Promote(promote, now);
    const std::vector<PageId> demote = {0, 0};
    migration().Demote(demote, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "DupBatch"; }

 private:
  bool done_ = false;
};

TEST(FairSharePolicy, DuplicatePagesInBatchesDoNotCorruptAccounting) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config,
                           std::make_unique<DupBatchPolicy>());
  harness.TouchAll();

  // Promote {0,0,0,5,5,1030,1030} then demote {0,0}: the tracked
  // occupancy must match the memory system exactly, not drift by the
  // duplicate entries.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
  EXPECT_EQ(harness.policy().fast_units(1), harness.FastResident(1));
  EXPECT_EQ(harness.FastResident(0), 1u);  // Page 5 stayed fast.
  EXPECT_EQ(harness.FastResident(1), 1u);  // Page 1030.
}

/**
 * Test policy that promotes one batch mixing non-resident pages (an
 * arriving tenant's region) with slow-resident ones.
 */
class MixedBatchPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    if (done_) return;
    done_ = true;
    std::vector<PageId> batch;
    // 12 non-resident pages first, then 200 slow-resident ones — all
    // belonging to tenant a.
    for (PageId page = 500; page < 512; ++page) batch.push_back(page);
    for (PageId page = 0; page < 200; ++page) batch.push_back(page);
    migration().Promote(batch, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "MixedBatch"; }

 private:
  bool done_ = false;
};

TEST(FairSharePolicy, GateChargesNonResidentPagesAgainstQuota) {
  FairShareConfig config;
  config.rebalance = false;
  // Weights 1:3 give tenant a a 128-unit quota over the 512 fast units.
  FairShareHarness harness(AllocationPolicy::kFastFirst, config,
                           std::make_unique<MixedBatchPolicy>(),
                           TwoTenantDirectoryWeighted(1.0, 3.0));
  ASSERT_EQ(harness.policy().quota_units(0), 128u);

  TieredMemory& mem = harness.memory();
  // Tenant b fills the fast tier, tenant a lands slow, and then 312 of
  // b's pages are demoted so the tier has free capacity — the state an
  // arrival meets: free fast pages, a's region partly non-resident.
  for (PageId page = 1024; page < 1536; ++page) mem.Touch(page, 0);
  for (PageId page = 0; page < 500; ++page) mem.Touch(page, 0);
  for (PageId page = 1224; page < 1536; ++page) {
    ASSERT_TRUE(mem.Migrate(page, Tier::kSlow));
  }
  ASSERT_EQ(mem.FreePages(Tier::kFast), 312u);

  // The base policy promotes a batch mixing 12 non-resident pages with
  // 200 slow-resident ones; every page the engine could land fast must
  // consume gate headroom.
  harness.policy().Tick(1 * kMillisecond);

  // The 12 admitted non-resident pages now get their first touch (the
  // arriving tenant starts running) and allocate fast-first.
  for (PageId page = 500; page < 512; ++page) {
    const TouchResult touch = mem.Touch(page, 2 * kMillisecond);
    ASSERT_TRUE(touch.first_touch);
    ASSERT_EQ(touch.tier, Tier::kFast);
    harness.policy().OnAccess(page, touch, 2 * kMillisecond);
  }

  // Without charging non-resident admissions, tenant a ends at
  // quota + 12. With the fix the batch reserved their headroom.
  EXPECT_LE(harness.policy().fast_units(0),
            harness.policy().quota_units(0));
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
  EXPECT_EQ(harness.FastResident(0), 128u);
}

/**
 * Test policy that stages non-resident admissions in one batch and
 * fills the quota with slow-resident promotions in a *later* batch —
 * the cross-batch pattern a per-batch-only gate charge misses.
 */
class StagedBatchPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    ++ticks_;
    std::vector<PageId> batch;
    if (ticks_ == 1 || ticks_ == 2) {
      // 12 non-resident pages of tenant a (an arriving region) —
      // promoted twice: the second batch must not double-charge the
      // still-untouched pages.
      for (PageId page = 500; page < 512; ++page) batch.push_back(page);
    } else if (ticks_ == 3) {
      // Then enough slow-resident pages to fill the whole quota.
      for (PageId page = 0; page < 200; ++page) batch.push_back(page);
    } else {
      return;
    }
    migration().Promote(batch, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "StagedBatch"; }

 private:
  int ticks_ = 0;
};

TEST(FairSharePolicy, GateChargesNonResidentAdmissionsDurably) {
  FairShareConfig config;
  config.rebalance = false;
  // Weights 1:3 give tenant a a 128-unit quota over the 512 fast units.
  FairShareHarness harness(AllocationPolicy::kFastFirst, config,
                           std::make_unique<StagedBatchPolicy>(),
                           TwoTenantDirectoryWeighted(1.0, 3.0));
  ASSERT_EQ(harness.policy().quota_units(0), 128u);

  TieredMemory& mem = harness.memory();
  // Same arrival picture as the per-batch test: b fills the fast tier,
  // a lands slow, 312 fast units are freed, pages 500..511 untouched.
  for (PageId page = 1024; page < 1536; ++page) mem.Touch(page, 0);
  for (PageId page = 0; page < 500; ++page) mem.Touch(page, 0);
  for (PageId page = 1224; page < 1536; ++page) {
    ASSERT_TRUE(mem.Migrate(page, Tier::kSlow));
  }
  ASSERT_EQ(mem.FreePages(Tier::kFast), 312u);

  // Batch 1 (tick 1) stages the 12 non-resident admissions. A charge
  // that evaporates at the end of the batch lets a later batch fill
  // the entire quota, so the 12 landings push tenant a to quota + 12.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.policy().pending_first_touch(0), 12u);

  // An unrelated first touch of tenant a (page 600 was never admitted)
  // must not release any staged charge.
  const TouchResult unrelated = mem.Touch(600, 1 * kMillisecond + 1);
  ASSERT_TRUE(unrelated.first_touch);
  harness.policy().OnAccess(600, unrelated, 1 * kMillisecond + 1);
  EXPECT_EQ(harness.policy().pending_first_touch(0), 12u);

  // Batch 2 re-promotes the same still-untouched pages: no
  // double-charge. Batch 3 promotes 200 slow-resident pages into the
  // remaining headroom.
  harness.policy().Tick(2 * kMillisecond);
  EXPECT_EQ(harness.policy().pending_first_touch(0), 12u);
  harness.policy().Tick(3 * kMillisecond);
  // 128 quota - 12 pending - 1 unrelated landing = 115 admitted.
  EXPECT_EQ(harness.policy().fast_units(0), 116u);

  // The staged first touches land (the arriving tenant starts running).
  for (PageId page = 500; page < 512; ++page) {
    const TouchResult touch = mem.Touch(page, 4 * kMillisecond);
    ASSERT_TRUE(touch.first_touch);
    ASSERT_EQ(touch.tier, Tier::kFast);
    harness.policy().OnAccess(page, touch, 4 * kMillisecond);
  }

  EXPECT_EQ(harness.policy().pending_first_touch(0), 0u);
  EXPECT_LE(harness.policy().fast_units(0),
            harness.policy().quota_units(0));
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
  EXPECT_EQ(harness.FastResident(0), 128u);
}

// ------------------------------------------- coldest-first enforcement --

/**
 * Test policy whose hotness metadata marks tenant a's units 384..511
 * hot and re-promotes exactly that hot set every tick.
 */
class RepromoteHotSetPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    std::vector<PageId> batch;
    for (PageId page = 384; page < 512; ++page) batch.push_back(page);
    migration().Promote(batch, now);
  }
  uint32_t HotnessOf(PageId unit) const override {
    return unit >= 384 && unit < 512 ? 5 : 0;
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "RepromoteHotSet"; }
};

TEST(FairSharePolicy, EnforcementDemotesColdestUnitsFirst) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kFastFirst, config,
                           std::make_unique<RepromoteHotSetPolicy>());
  // Fast-first prefault: tenant a's units 0..511 hold the fast tier,
  // 128 over its 384-unit quota. The base policy says 384..511 are the
  // hot ones.
  harness.TouchAll();
  ASSERT_EQ(harness.FastResident(0), 512u);

  for (int tick = 1; tick <= 5; ++tick) {
    harness.policy().Tick(tick * kMillisecond);
  }

  // Enforcement demoted the *coldest* 128 units (0..127), not the top
  // of the region in address order — which is exactly the hot set here.
  // Demoting in address order evicts 384..511, the base policy tries to
  // bring them back every tick, and the tenant's hot set lives in the
  // slow tier while gated promotions pile up.
  for (PageId page = 384; page < 512; ++page) {
    EXPECT_EQ(harness.memory().TierOf(page), Tier::kFast)
        << "hot unit " << page << " was demoted";
  }
  for (PageId page = 0; page < 128; ++page) {
    EXPECT_EQ(harness.memory().TierOf(page), Tier::kSlow)
        << "cold unit " << page << " survived enforcement";
  }
  // One enforcement pass settles the placement: no repeat churn, no
  // gated re-promotions of an evicted hot set.
  EXPECT_EQ(harness.policy().enforced_demotions(0), 128u);
  EXPECT_EQ(harness.policy().gated_promotions(0), 0u);
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
}

// ----------------------------------------------- marginal-utility mode --

/** Feeds one OnSample record per unit in [begin, end), `rounds` times. */
void FeedSamples(FairSharePolicy* policy, PageId begin, PageId end,
                 int rounds, Tier tier = Tier::kSlow) {
  for (int round = 0; round < rounds; ++round) {
    for (PageId unit = begin; unit < end; ++unit) {
      policy->OnSample(
          SampleRecord{.page = unit, .tier = tier, .time_ns = 0});
    }
  }
}

TEST(FairSharePolicy, MarginalModeFundsReuseSetOverStreamingVolume) {
  FairShareConfig config;  // Marginal mode is the default.
  ASSERT_EQ(config.quota_mode, QuotaMode::kMarginal);
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config,
                           std::make_unique<PromoteAllPolicy>(),
                           TwoTenantDirectoryWeighted(1.0, 1.0));
  harness.TouchAll();

  // Tenant a: a compact reuse set — 100 units sampled 8x each. Tenant
  // b: streaming — 960 distinct units sampled once, more total volume.
  FeedSamples(&harness.policy(), 0, 100, 8);
  FeedSamples(&harness.policy(), 1024, 1984, 1);
  EXPECT_EQ(harness.policy().shadow_samples(0), 800u);
  EXPECT_EQ(harness.policy().shadow_samples(1), 960u);

  harness.policy().Tick(25 * kMillisecond);  // First rebalance.

  // The whole reuse set is funded above the floor before the streaming
  // tail sees a unit; the streamer absorbs the remainder (better there
  // than stranded) but cannot push the hot set below its demand.
  EXPECT_EQ(harness.policy().quota_units(0) +
                harness.policy().quota_units(1),
            512u);
  EXPECT_GE(harness.policy().quota_units(0), 100u);
  EXPECT_LE(harness.policy().quota_units(0), 160u);
}

TEST(FairSharePolicy, MarginalModeQuotasDeterministicAcrossReruns) {
  std::vector<uint64_t> quotas[2];
  for (int run = 0; run < 2; ++run) {
    FairShareConfig config;
    FairShareHarness harness(AllocationPolicy::kSlowOnly, config,
                             std::make_unique<PromoteAllPolicy>(),
                             TwoTenantDirectoryWeighted(2.0, 1.0));
    harness.TouchAll();
    FeedSamples(&harness.policy(), 0, 300, 3);
    FeedSamples(&harness.policy(), 1024, 1400, 2);
    harness.policy().Tick(25 * kMillisecond);
    FeedSamples(&harness.policy(), 0, 200, 5);
    harness.policy().Tick(50 * kMillisecond);
    quotas[run] = {harness.policy().quota_units(0),
                   harness.policy().quota_units(1)};
  }
  EXPECT_EQ(quotas[0], quotas[1]);
}

// ------------------------------------------------ paced release drain --

/** Base policy that never migrates: drains are the wrapper's alone. */
class IdlePolicy : public TieringPolicy {
 public:
  void Tick(TimeNs) override {}
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "Idle"; }
};

/** Tenant b: resident [0, depart), then again from `rearrive`. */
TenantDirectory RecurringDirectory(TimeNs depart, TimeNs rearrive) {
  TenantDirectory directory;
  directory.regions.push_back(TenantRegion{
      .name = "a", .weight = 1.0, .base_page = 0,
      .footprint_pages = 1024, .span_pages = 1024});
  directory.regions.push_back(TenantRegion{
      .name = "b", .weight = 1.0, .base_page = 1024,
      .footprint_pages = 1024, .span_pages = 1024,
      .windows = {{0, depart}, {rearrive, 0}}});
  return directory;
}

TEST(FairSharePolicy, DepartureDrainIsPacedAndReleasesWhenDrained) {
  FairShareConfig config;
  config.rebalance = false;
  config.fill_to_quota = false;
  config.release_batch = 64;
  FairShareHarness harness(
      AllocationPolicy::kSlowOnly, config, std::make_unique<IdlePolicy>(),
      RecurringDirectory(5 * kMillisecond, 20 * kMillisecond));
  harness.TouchAll();
  // 256 of b's pages sit in the fast tier when it departs.
  for (PageId page = 1024; page < 1280; ++page) {
    ASSERT_TRUE(harness.memory().Migrate(page, Tier::kFast));
  }

  harness.policy().Tick(1 * kMillisecond);
  ASSERT_EQ(harness.policy().fast_units(1), 256u);
  ASSERT_TRUE(harness.policy().tenant_active(1));

  // The departure tick zeroes b's quota immediately but demotes only
  // release_batch units; the drain continues across later ticks and the
  // region is released only once the share hits zero.
  harness.policy().Tick(5 * kMillisecond);
  EXPECT_TRUE(harness.policy().tenant_draining(1));
  EXPECT_EQ(harness.policy().quota_units(1), 0u);
  EXPECT_EQ(harness.policy().quota_units(0), 512u);
  EXPECT_EQ(harness.policy().fast_units(1), 192u);
  EXPECT_EQ(harness.policy().released_units(1), 0u);

  harness.policy().Tick(6 * kMillisecond);
  EXPECT_EQ(harness.policy().fast_units(1), 128u);
  harness.policy().Tick(7 * kMillisecond);
  EXPECT_EQ(harness.policy().fast_units(1), 64u);
  harness.policy().Tick(8 * kMillisecond);

  // Drained: the whole region (fast and slow residents) was freed.
  EXPECT_FALSE(harness.policy().tenant_draining(1));
  EXPECT_FALSE(harness.policy().tenant_active(1));
  EXPECT_EQ(harness.policy().fast_units(1), 0u);
  EXPECT_EQ(harness.policy().released_units(1), 1024u);
  EXPECT_EQ(harness.FastResident(1), 0u);
  EXPECT_FALSE(harness.memory().IsResident(1024));
  // The drain is reclaim, not quota enforcement.
  EXPECT_EQ(harness.policy().enforced_demotions(1), 0u);

  // Re-arrival at the second window: quota returns, the region is
  // reusable, and a first touch re-allocates from scratch.
  harness.policy().Tick(20 * kMillisecond);
  EXPECT_TRUE(harness.policy().tenant_active(1));
  EXPECT_EQ(harness.policy().quota_units(1), 256u);
  EXPECT_EQ(harness.policy().quota_units(0), 256u);
  const TouchResult touch =
      harness.memory().Touch(1024, 20 * kMillisecond + 1);
  EXPECT_TRUE(touch.first_touch);
  harness.policy().OnAccess(1024, touch, 20 * kMillisecond + 1);
}

TEST(FairSharePolicy, ReArrivalDuringDrainForcesTheFlushToFinishFirst) {
  // The inter-window gap (5ms -> 6ms) is shorter than the paced drain
  // (256 units at 64/tick): the re-arrival must force-finish the flush
  // and release the region before re-admitting the tenant, never run
  // it against a half-released region.
  FairShareConfig config;
  config.rebalance = false;
  config.fill_to_quota = false;
  config.release_batch = 64;
  FairShareHarness harness(
      AllocationPolicy::kSlowOnly, config, std::make_unique<IdlePolicy>(),
      RecurringDirectory(5 * kMillisecond, 6 * kMillisecond));
  harness.TouchAll();
  for (PageId page = 1024; page < 1280; ++page) {
    ASSERT_TRUE(harness.memory().Migrate(page, Tier::kFast));
  }
  harness.policy().Tick(1 * kMillisecond);

  harness.policy().Tick(5 * kMillisecond);
  ASSERT_TRUE(harness.policy().tenant_draining(1));
  ASSERT_EQ(harness.policy().fast_units(1), 192u);

  // The next window opens mid-drain: one tick finishes the flush,
  // releases the whole region, and re-admits the tenant with quota.
  harness.policy().Tick(6 * kMillisecond);
  EXPECT_FALSE(harness.policy().tenant_draining(1));
  EXPECT_TRUE(harness.policy().tenant_active(1));
  EXPECT_EQ(harness.policy().fast_units(1), 0u);
  EXPECT_EQ(harness.policy().released_units(1), 1024u);
  EXPECT_EQ(harness.policy().quota_units(1), 256u);
  EXPECT_FALSE(harness.memory().IsResident(1024));
}

TEST(FairSharePolicy, UncappedReleaseBatchDrainsInOneTick) {
  FairShareConfig config;
  config.rebalance = false;
  config.fill_to_quota = false;
  config.release_batch = 0;  // Legacy whole-share flush.
  FairShareHarness harness(
      AllocationPolicy::kSlowOnly, config, std::make_unique<IdlePolicy>(),
      RecurringDirectory(5 * kMillisecond, 20 * kMillisecond));
  harness.TouchAll();
  for (PageId page = 1024; page < 1280; ++page) {
    ASSERT_TRUE(harness.memory().Migrate(page, Tier::kFast));
  }
  harness.policy().Tick(1 * kMillisecond);
  harness.policy().Tick(5 * kMillisecond);
  EXPECT_FALSE(harness.policy().tenant_draining(1));
  EXPECT_EQ(harness.policy().fast_units(1), 0u);
  EXPECT_EQ(harness.policy().released_units(1), 1024u);
}

TEST(MultiTenantSimulation, RecurringTenantReacquiresCapacity) {
  // End-to-end diurnal residency: a zipf tenant departs mid-run and
  // re-arrives at a later window under the fair-share wrapper.
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,zipf@0-3e7+6e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 7);
  const FairShareConfig fair_config;
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory(),
                                                fair_config);
  SimulationConfig config;
  config.seed = 7;
  config.max_accesses = 40000000;
  config.max_time_ns = 100 * kMillisecond;
  config.stats_interval_ns = 5 * kMillisecond;  // Points inside the gap.
  Simulation simulation(config, mux.get(), fair.get());
  const SimulationResult result = simulation.Run();

  constexpr TimeNs kDeparture = 30000000;  // 3e7.
  constexpr TimeNs kReturn = 60000000;     // 6e7.
  ASSERT_GT(result.duration_ns, kReturn);

  // Two mid-run edges (the t=0 arrival is not an event): the departure
  // and the second-window return, in order.
  ASSERT_EQ(mux->churn_events().size(), 2u);
  EXPECT_FALSE(mux->churn_events()[0].arrival);
  EXPECT_EQ(mux->churn_events()[0].time_ns, kDeparture);
  EXPECT_TRUE(mux->churn_events()[1].arrival);
  EXPECT_EQ(mux->churn_events()[1].time_ns, kReturn);

  // The tenant's first-window share was released, and it ended the run
  // present again, holding capacity under a fresh quota.
  EXPECT_GT(fair->released_units(1), 0u);
  EXPECT_TRUE(fair->tenant_active(1));
  EXPECT_GT(fair->quota_units(1), 0u);
  EXPECT_GT(result.tenants[1].fast_resident_units, 0u);

  // Occupancy timeline: the tenant drained to an explicit zero point
  // after departing, and nothing stayed resident between the drain
  // deadline and the return. The series is sparse — once drained the
  // tenant leaves the accounting walk until its next arrival, so
  // absence of points in the gap also means nothing resident.
  const TimeSeries& occupancy = result.tenants[1].occupancy_timeline;
  const FairShareConfig defaults;
  const TimeNs drain_deadline =
      kDeparture + defaults.rebalance_interval_ns;
  bool drained_to_zero = false;
  for (size_t i = 0; i < occupancy.size(); ++i) {
    const TimeNs at = occupancy.times_ns[i];
    if (at < kDeparture || at >= kReturn) continue;
    if (at >= drain_deadline) {
      EXPECT_EQ(occupancy.values[i], 0.0)
          << "departed tenant resident at t=" << at;
    }
    if (occupancy.values[i] == 0.0) drained_to_zero = true;
  }
  EXPECT_TRUE(drained_to_zero);
}

// ------------------------------------------------- arrival warm-up dip --

/** Tenant a from t=0; tenant b arrives at `arrival_ns`. Equal weights. */
TenantDirectory ArrivalDirectory(TimeNs arrival_ns) {
  TenantDirectory directory;
  directory.regions.push_back(TenantRegion{
      .name = "a", .weight = 1.0, .base_page = 0,
      .footprint_pages = 1024, .span_pages = 1024});
  directory.regions.push_back(TenantRegion{
      .name = "b", .weight = 1.0, .base_page = 1024,
      .footprint_pages = 1024, .span_pages = 1024,
      .windows = {{arrival_ns, 0}}});
  return directory;
}

/** Drives the arrival schedule and returns tenant b's quota right
 *  after the rebalance that coincides with its arrival. */
uint64_t ArrivalQuota(const FairShareConfig& config) {
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config,
                           std::make_unique<PromoteAllPolicy>(),
                           ArrivalDirectory(50 * kMillisecond));
  harness.TouchAll();
  // Incumbent demand: tenant a's samples cover 600 units, refreshed
  // each window so cooling never zeroes the estimate.
  FeedSamples(&harness.policy(), 0, 600, 2);
  harness.policy().Tick(25 * kMillisecond);
  FeedSamples(&harness.policy(), 0, 600, 2);
  harness.policy().Tick(50 * kMillisecond);  // b arrives + rebalance.
  return harness.policy().quota_units(1);
}

TEST(FairSharePolicy, ArrivalGraceSeedsQuotaFromStaticShare) {
  // With the grace (default config) the newcomer's first rebalance
  // guarantees its static share — no history required.
  const uint64_t with_grace = ArrivalQuota(FairShareConfig{});
  EXPECT_GE(with_grace, 230u);  // Static share is 256.

  // Without it (the pre-fix behavior) the incumbent's demand squeezes
  // the newcomer to the min_share floor: the post-arrival fairness dip.
  FairShareConfig no_grace;
  no_grace.arrival_grace = 0.0;
  const uint64_t without_grace = ArrivalQuota(no_grace);
  EXPECT_LE(without_grace, 70u);  // min_share floor is 64.
}

// --------------------------------------- simulation-level attribution --

SimulationConfig SmallSimConfig() {
  SimulationConfig config;
  config.max_accesses = 150000;
  config.seed = 7;
  return config;
}

TEST(MultiTenantSimulation, PerTenantStatsSumToGlobalTotals) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), mux.get(), policy.get());

  ASSERT_EQ(result.tenants.size(), 3u);
  uint64_t ops = 0;
  uint64_t accesses = 0;
  uint64_t fast = 0;
  uint64_t slow = 0;
  for (const TenantResult& tenant : result.tenants) {
    ops += tenant.ops;
    accesses += tenant.accesses;
    fast += tenant.fast_mem_accesses;
    slow += tenant.slow_mem_accesses;
    EXPECT_GT(tenant.ops, 0u);
  }
  EXPECT_EQ(ops, result.ops);
  EXPECT_EQ(accesses, result.accesses);
  EXPECT_EQ(fast, result.fast_mem_accesses);
  EXPECT_EQ(slow, result.slow_mem_accesses);
  EXPECT_GT(result.jain_fairness, 0.0);
  EXPECT_LE(result.jain_fairness, 1.0);
}

TEST(MultiTenantSimulation, SingleTenantRunsHaveNoTenantResults) {
  auto workload = MakeWorkload("zipf", 0.05, 7);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), workload.get(), policy.get());
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_DOUBLE_EQ(result.jain_fairness, 1.0);
}

TEST(MultiTenantSimulation, FairShareKeepsEveryTenantWithinQuota) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 400000;
  const SimulationResult result =
      RunSimulation(config, mux.get(), fair.get());

  const FairShareConfig defaults;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    EXPECT_LE(result.tenants[t].fast_resident_units,
              fair->quota_units(t) + defaults.max_enforce_batch)
        << "tenant " << result.tenants[t].name << " exceeds its quota";
    // The wrapper's incremental occupancy tracking matches the memory
    // system's ground truth at end of run.
    EXPECT_EQ(result.tenants[t].fast_resident_units, fair->fast_units(t));
  }
}

// ------------------------------------------------------- tenant churn --

TEST(MultiTenantSimulation, DepartureReleasesFastShareWithinOneRebalance) {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,zipf@0-6e7,cdn:2");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 7);
  const FairShareConfig fair_config;
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory(),
                                                fair_config);
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 120 * kMillisecond;
  Simulation simulation(config, mux.get(), fair.get());
  const SimulationResult result = simulation.Run();

  constexpr TimeNs kDeparture = 60000000;  // 6e7 ns.
  ASSERT_GT(result.duration_ns, kDeparture);

  // The mux surfaced the departure and stopped serving the tenant.
  bool saw_departure = false;
  for (const TenantChurnEvent& event : mux->churn_events()) {
    if (!event.arrival && event.tenant == 1) {
      saw_departure = true;
      EXPECT_EQ(event.time_ns, kDeparture);
    }
  }
  EXPECT_TRUE(saw_departure);

  // The departed tenant's fast share was fully released and its quota
  // re-divided over the survivors.
  EXPECT_FALSE(fair->tenant_active(1));
  EXPECT_GT(fair->released_units(1), 0u);
  EXPECT_EQ(fair->quota_units(1), 0u);
  EXPECT_EQ(result.tenants[1].fast_resident_units, 0u);
  EXPECT_EQ(fair->quota_units(0) + fair->quota_units(2),
            simulation.fast_capacity_units());

  // Timeline view: the tenant held fast capacity before departing, and
  // its occupancy is zero from one rebalance interval after departure.
  const TimeSeries& occupancy = result.tenants[1].occupancy_timeline;
  ASSERT_GT(occupancy.size(), 0u);
  bool held_capacity_before = false;
  const TimeNs deadline =
      kDeparture + fair_config.rebalance_interval_ns;
  for (size_t i = 0; i < occupancy.size(); ++i) {
    if (occupancy.times_ns[i] < kDeparture && occupancy.values[i] > 0.0) {
      held_capacity_before = true;
    }
    if (occupancy.times_ns[i] >= deadline) {
      EXPECT_EQ(occupancy.values[i], 0.0)
          << "departed tenant still resident at t="
          << occupancy.times_ns[i];
    }
  }
  EXPECT_TRUE(held_capacity_before);
}

TEST(MultiTenantSimulation, ArrivalJoinsRotationAndEarnsQuota) {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,zipf@4e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 100 * kMillisecond;
  Simulation simulation(config, mux.get(), fair.get());
  const SimulationResult result = simulation.Run();

  constexpr TimeNs kArrival = 40000000;  // 4e7 ns.
  ASSERT_GT(result.duration_ns, kArrival);
  EXPECT_GT(result.tenants[1].ops, 0u);
  EXPECT_TRUE(fair->tenant_active(1));
  EXPECT_GT(fair->quota_units(1), 0u);

  // Before the arrival the tenant's region does not exist: it was not
  // prefaulted and holds no fast capacity.
  const TimeSeries& occupancy = result.tenants[1].occupancy_timeline;
  ASSERT_GT(occupancy.size(), 0u);
  for (size_t i = 0; i < occupancy.size(); ++i) {
    if (occupancy.times_ns[i] < kArrival) {
      EXPECT_EQ(occupancy.values[i], 0.0);
    }
  }
  // After it, the tenant owns part of the tier.
  EXPECT_GT(result.tenants[1].fast_resident_units, 0u);
}

TEST(MultiTenantSimulation, TenantResultsCarryControllerAndSamplerStats) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 400000;
  config.tenant_sample_budget = true;
  const SimulationResult result =
      RunSimulation(config, mux.get(), fair.get());

  uint64_t shadow_total = 0;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    const TenantResult& tenant = result.tenants[t];
    EXPECT_EQ(tenant.quota_units, fair->quota_units(t));
    EXPECT_GT(tenant.quota_units, 0u);
    EXPECT_GE(tenant.sample_period, 1u);
    shadow_total += tenant.shadow_samples;
  }
  EXPECT_GT(shadow_total, 0u);  // The ghost estimate was actually fed.
}

TEST(MultiTenantSimulation, RegionOccupancyCountersMatchRescan) {
  // The incremental per-tenant resident counters must agree with a
  // ground-truth pagemap rescan even across churn (arrival, departure,
  // release) — the invariant that lets timeline points read occupancy
  // in O(tenants).
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,zipf@0-6e7,cdn:2@3e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 120 * kMillisecond;
  Simulation simulation(config, mux.get(), fair.get());
  simulation.Run();

  const TieredMemory& memory = simulation.memory();
  ASSERT_TRUE(memory.has_regions());
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    const PageRange range = mux->tenant_units(t, config.mode);
    for (const Tier tier : {Tier::kFast, Tier::kSlow}) {
      uint64_t rescan = 0;
      memory.ScanResident(range.begin, range.size(), tier,
                          [&rescan](PageId) { ++rescan; });
      EXPECT_EQ(memory.RegionResident(t, tier), rescan)
          << "tenant " << t << " tier " << static_cast<int>(tier);
    }
  }
}

TEST(MultiTenantSimulation, MarginalRunsAreDeterministicAcrossReruns) {
  std::vector<uint64_t> quotas[2];
  double fairness[2] = {0.0, 0.0};
  uint64_t ops[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    auto mux = MakeMuxWorkload(SmallSpecs(), 7);
    auto fair = std::make_unique<FairSharePolicy>(
        MakePolicy("HybridTier"), mux->directory());
    SimulationConfig config = SmallSimConfig();
    config.max_accesses = 400000;
    config.tenant_sample_budget = true;
    const SimulationResult result =
        RunSimulation(config, mux.get(), fair.get());
    for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
      quotas[run].push_back(fair->quota_units(t));
    }
    fairness[run] = result.weighted_jain_fairness;
    ops[run] = result.ops;
  }
  EXPECT_EQ(quotas[0], quotas[1]);
  EXPECT_EQ(fairness[0], fairness[1]);
  EXPECT_EQ(ops[0], ops[1]);
}

TEST(MultiTenantSimulation, ArrivalGraceLiftsPostArrivalFairness) {
  // Churn regression on the fairness timeline: with the arrival grace
  // the weighted fairness right after a mid-run arrival must not dip
  // below what the graceless (pre-fix) controller produces.
  constexpr TimeNs kArrival = 40000000;  // 4e7 ns.
  const auto run_mean_after_arrival = [&](double grace) {
    std::vector<TenantSpec> specs = ParseTenantList("zipf,zipf@4e7");
    for (TenantSpec& spec : specs) spec.scale = 0.05;
    auto mux = MakeMuxWorkload(specs, 7);
    FairShareConfig fair_config;
    fair_config.arrival_grace = grace;
    auto fair = std::make_unique<FairSharePolicy>(
        MakePolicy("HybridTier"), mux->directory(), fair_config);
    SimulationConfig config = SmallSimConfig();
    config.max_accesses = 30000000;
    config.max_time_ns = 100 * kMillisecond;
    const SimulationResult result =
        RunSimulation(config, mux.get(), fair.get());
    const TimeSeries& fairness = result.weighted_fairness_timeline;
    double sum = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < fairness.size(); ++i) {
      if (fairness.times_ns[i] >= kArrival &&
          fairness.times_ns[i] < kArrival + 3 * fair_config.rebalance_interval_ns) {
        sum += fairness.values[i];
        ++count;
      }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  };

  const double with_grace = run_mean_after_arrival(1.0);
  const double without_grace = run_mean_after_arrival(0.0);
  EXPECT_GE(with_grace, without_grace);
  EXPECT_GT(with_grace, 0.0);
}

// ---------------------------------------------------------- FleetSpec --

TEST(FleetSpec, FormatParseRoundTrips) {
  FleetSpec spec;
  spec.tenants = 137;
  spec.workload_id = "cdn";
  spec.weight_skew = 1.25;
  spec.footprint_pages = 4096;
  spec.footprint_skew = 0.5;
  spec.churn = "poisson";
  spec.duty = 0.125;
  spec.period_ns = 250000000;
  spec.horizon_ns = 2000000000;
  spec.seed = 99;
  EXPECT_TRUE(IsFleetSpec(FormatFleetSpec(spec)));
  EXPECT_EQ(ParseFleetSpec(FormatFleetSpec(spec)), spec);

  // A count-only spec round-trips through its defaults.
  const FleetSpec defaults = ParseFleetSpec("fleet:10");
  EXPECT_EQ(defaults.tenants, 10u);
  EXPECT_EQ(ParseFleetSpec(FormatFleetSpec(defaults)), defaults);

  // Ordinary tenant lists never look like fleet specs.
  EXPECT_FALSE(IsFleetSpec("zipf,cdn:2,silo@0-1e8"));
  EXPECT_FALSE(IsFleetSpec(""));
}

TEST(ParseTenantList, FleetSpecExpandsToPopulation) {
  const std::string spec =
      "fleet:40,zipf=0.9,fp=1024,fpskew=0.3,churn=poisson,duty=0.25,"
      "period=1e8,horizon=1e9,seed=7";
  const std::vector<TenantSpec> specs = ParseTenantList(spec);
  ASSERT_EQ(specs.size(), 40u);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].workload_id, "zipf");
    EXPECT_EQ(specs[i].seed, 0u);  // Stream seeds come from the run seed.
    if (i > 0) {
      EXPECT_LT(specs[i].weight, specs[i - 1].weight);  // Zipf ranks.
      EXPECT_LE(specs[i].scale, specs[i - 1].scale);    // fpskew.
    }
    // Poisson windows are chronological, disjoint, and only the last
    // may be open-ended.
    ASSERT_FALSE(specs[i].windows.empty());
    for (size_t w = 0; w < specs[i].windows.size(); ++w) {
      const ResidencyWindow& window = specs[i].windows[w];
      if (window.departure_ns != 0) {
        EXPECT_GT(window.departure_ns, window.arrival_ns);
      } else {
        EXPECT_EQ(w + 1, specs[i].windows.size());
      }
      if (w > 0) {
        EXPECT_GT(window.arrival_ns, specs[i].windows[w - 1].departure_ns);
      }
    }
  }

  // Expansion is a pure function of the spec: a second parse yields the
  // identical fleet, churn schedule included.
  const std::vector<TenantSpec> again = ParseTenantList(spec);
  ASSERT_EQ(again.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(again[i].weight, specs[i].weight);
    EXPECT_EQ(again[i].scale, specs[i].scale);
    ASSERT_EQ(again[i].windows.size(), specs[i].windows.size());
    for (size_t w = 0; w < specs[i].windows.size(); ++w) {
      EXPECT_EQ(again[i].windows[w].arrival_ns,
                specs[i].windows[w].arrival_ns);
      EXPECT_EQ(again[i].windows[w].departure_ns,
                specs[i].windows[w].departure_ns);
    }
  }
}

TEST(ParseTenantList, FleetDiurnalPhasesTileThePeriod) {
  const std::vector<TenantSpec> specs = ParseTenantList(
      "fleet:10,churn=diurnal,duty=0.3,period=1e8,horizon=3e8");
  ASSERT_EQ(specs.size(), 10u);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_FALSE(specs[i].windows.empty());
    // Rank r starts at phase (r-1)/N of the period and recurs exactly.
    EXPECT_EQ(specs[i].windows[0].arrival_ns, i * 10000000u);
    for (size_t w = 1; w < specs[i].windows.size(); ++w) {
      EXPECT_EQ(specs[i].windows[w].arrival_ns,
                specs[i].windows[w - 1].arrival_ns + 100000000u);
    }
  }
}

// The O(active) complexity guard: a 1000-tenant fleet at 10% duty must
// be book-kept in time proportional to the ~100 tenants actually
// present, not the fleet size. The work counters count tenant *visits*
// (not wall time), so the bound is robust to machine speed.
TEST(MultiTenantSimulation, FleetBookkeepingScalesWithActiveTenants) {
  constexpr uint32_t kFleet = 1000;
  // ~100 expected present; several sigmas of headroom, still far under
  // the fleet size a naive full-scan would visit.
  constexpr uint64_t kActiveCeiling = 400;
  auto mux = MakeMuxWorkload(
      ParseTenantList("fleet:1000,zipf=0.9,fp=64,churn=poisson,duty=0.1,"
                      "period=2e8,horizon=1e9,seed=3"),
      7);
  ASSERT_EQ(mux->tenant_count(), kFleet);
  FairShareConfig fair_config;
  auto fair = std::make_unique<FairSharePolicy>(
      MakePolicy("HybridTier"), mux->directory(), fair_config);
  SimulationConfig config;
  config.seed = 7;
  config.max_accesses = 1000000;
  config.max_time_ns = 200 * kMillisecond;
  config.tenant_reservoir = 256;
  const SimulationResult result =
      RunSimulation(config, mux.get(), fair.get());
  ASSERT_GT(result.accesses, 0u);
  EXPECT_GT(result.weighted_jain_fairness, 0.0);
  EXPECT_LE(result.weighted_jain_fairness, 1.0);

  EXPECT_LT(fair->active_tenants(), kActiveCeiling);

  // Timeline accounting: visits = present + (departed tenants still
  // draining their fast pages) per interval — both O(active).
  const uint64_t intervals = result.weighted_fairness_timeline.size();
  ASSERT_GT(intervals, 0u);
  EXPECT_LE(result.stats_tenant_visits, intervals * kActiveCeiling);

  // Policy maintenance walks only the active set. Rebalance runs every
  // rebalance interval; enforcement and quota fill run every policy
  // tick, so each gets its own pass count.
  const uint64_t rebalances =
      result.duration_ns / fair_config.rebalance_interval_ns + 2;
  const uint64_t ticks = result.duration_ns / config.tick_interval_ns + 2;
  EXPECT_LE(fair->rebalance_tenant_visits(), rebalances * kActiveCeiling);
  EXPECT_LE(fair->fill_tenant_visits(), ticks * kActiveCeiling);
  EXPECT_LE(fair->enforce_tenant_visits(), ticks * kActiveCeiling);

  // Churn is edge-driven: the policy crosses each arrival/departure
  // edge at most once, so edge visits are bounded by the schedule size.
  uint64_t total_edges = 0;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    for (const auto& window : mux->tenant_windows(t)) {
      total_edges += window.second == 0 ? 1 : 2;
    }
  }
  EXPECT_LE(fair->churn_edge_visits(), total_edges);
}

TEST(MultiTenantSimulation, FleetRunsAreDeterministicAcrossReruns) {
  std::vector<uint64_t> quotas[2];
  std::vector<double> fairness_timeline[2];
  uint64_t ops[2] = {0, 0};
  uint64_t visits[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    auto mux = MakeMuxWorkload(
        ParseTenantList("fleet:1000,zipf=0.9,fp=64,churn=poisson,"
                        "duty=0.1,period=5e7,horizon=1e9,seed=3"),
        7);
    auto fair = std::make_unique<FairSharePolicy>(
        MakePolicy("HybridTier"), mux->directory());
    SimulationConfig config;
    config.seed = 7;
    config.max_accesses = 300000;
    config.max_time_ns = 150 * kMillisecond;
    config.tenant_reservoir = 256;
    const SimulationResult result =
        RunSimulation(config, mux.get(), fair.get());
    for (uint32_t t = 0; t < 32; ++t) {
      quotas[run].push_back(fair->quota_units(t));
    }
    fairness_timeline[run] = result.weighted_fairness_timeline.values;
    ops[run] = result.ops;
    visits[run] = result.stats_tenant_visits;
  }
  EXPECT_EQ(quotas[0], quotas[1]);
  EXPECT_EQ(fairness_timeline[0], fairness_timeline[1]);
  EXPECT_EQ(ops[0], ops[1]);
  EXPECT_EQ(visits[0], visits[1]);
}

TEST(MultiTenantSimulation, HugePageModeAttributesCleanly) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = SmallSimConfig();
  config.mode = PageMode::kHuge;
  const SimulationResult result =
      RunSimulation(config, mux.get(), policy.get());
  uint64_t ops = 0;
  for (const TenantResult& tenant : result.tenants) ops += tenant.ops;
  EXPECT_EQ(ops, result.ops);
}

}  // namespace
}  // namespace hybridtier
