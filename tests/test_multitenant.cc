/**
 * @file
 * Unit tests for src/multitenant: tenant-list parsing, MuxWorkload
 * layout/tagging, FairSharePolicy quota enforcement, and per-tenant
 * stat attribution through the simulation harness.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "mem/migration.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "policies/policy.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

// ---------------------------------------------------- ParseTenantList --

TEST(ParseTenantList, ParsesIdsAndWeights) {
  const std::vector<TenantSpec> specs =
      ParseTenantList("cdn,bfs-k:2,silo:0.5,zipf");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].workload_id, "cdn");
  EXPECT_DOUBLE_EQ(specs[0].weight, 1.0);
  EXPECT_EQ(specs[1].workload_id, "bfs-k");
  EXPECT_DOUBLE_EQ(specs[1].weight, 2.0);
  EXPECT_EQ(specs[2].workload_id, "silo");
  EXPECT_DOUBLE_EQ(specs[2].weight, 0.5);
  EXPECT_EQ(specs[3].workload_id, "zipf");
}

TEST(ParseTenantList, SingleTenant) {
  const std::vector<TenantSpec> specs = ParseTenantList("zipf:3");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].workload_id, "zipf");
  EXPECT_DOUBLE_EQ(specs[0].weight, 3.0);
}

// -------------------------------------------------------- MuxWorkload --

std::vector<TenantSpec> SmallSpecs() {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,zipf");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  return specs;
}

TEST(MuxWorkload, RegionsAreDisjointAlignedAndCoverFootprint) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  const TenantDirectory& directory = mux->directory();
  ASSERT_EQ(directory.size(), 3u);

  uint64_t expected_base = 0;
  for (const TenantRegion& region : directory.regions) {
    EXPECT_EQ(region.base_page % kPagesPerHugePage, 0u);
    EXPECT_EQ(region.span_pages % kPagesPerHugePage, 0u);
    EXPECT_EQ(region.base_page, expected_base);
    EXPECT_GE(region.span_pages, region.footprint_pages);
    expected_base += region.span_pages;
  }
  EXPECT_EQ(mux->footprint_pages(), expected_base);

  // Unit ranges tile the footprint exactly in both page modes.
  for (const PageMode mode : {PageMode::kRegular, PageMode::kHuge}) {
    const uint64_t per_unit =
        mode == PageMode::kHuge ? kPagesPerHugePage : 1;
    uint64_t next = 0;
    for (uint32_t t = 0; t < directory.size(); ++t) {
      const PageRange range = mux->tenant_units(t, mode);
      EXPECT_EQ(range.begin, next);
      EXPECT_GT(range.end, range.begin);
      next = range.end;
    }
    EXPECT_EQ(next, mux->footprint_pages() / per_unit);
  }
}

TEST(MuxWorkload, DuplicateWorkloadsGetDistinctNames) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  std::set<std::string> names;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    names.insert(mux->tenant_name(t));
  }
  EXPECT_EQ(names.size(), 3u);
}

TEST(MuxWorkload, TagsOpsAndRemapsIntoOwnRegion) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  OpTrace op;
  std::set<uint32_t> seen;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(mux->NextOp(0, &op));
    const uint32_t tenant = mux->last_tenant();
    seen.insert(tenant);
    const TenantRegion& region = mux->directory().regions[tenant];
    const uint64_t base = region.base_page * kPageSize;
    const uint64_t end = base + region.span_pages * kPageSize;
    for (const MemoryAccess& access : op.accesses) {
      ASSERT_GE(access.addr, base);
      ASSERT_LT(access.addr, end);
    }
  }
  // Round-robin serves every (endless) tenant.
  EXPECT_EQ(seen.size(), mux->tenant_count());
}

TEST(TenantDirectory, TenantOfUnitMatchesRanges) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 42);
  const TenantDirectory& directory = mux->directory();
  for (const PageMode mode : {PageMode::kRegular, PageMode::kHuge}) {
    for (uint32_t t = 0; t < directory.size(); ++t) {
      const PageRange range = directory.regions[t].UnitRange(mode);
      EXPECT_EQ(directory.TenantOfUnit(range.begin, mode), t);
      EXPECT_EQ(directory.TenantOfUnit(range.end - 1, mode), t);
    }
  }
}

// ---------------------------------------------------- FairSharePolicy --

/** Test policy that tries to promote every slow page each tick. */
class PromoteAllPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    std::vector<PageId> pages;
    for (PageId unit = 0; unit < context().footprint_units; ++unit) {
      if (memory().IsResident(unit) &&
          memory().TierOf(unit) == Tier::kSlow) {
        pages.push_back(unit);
      }
    }
    if (!pages.empty()) migration().Promote(pages, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "PromoteAll"; }
};

/** Two synthetic tenants (1024 pages each) with a 3:1 weight split. */
TenantDirectory TwoTenantDirectory() {
  TenantDirectory directory;
  directory.regions.push_back(TenantRegion{
      .name = "a", .weight = 3.0, .base_page = 0, .footprint_pages = 1024,
      .span_pages = 1024});
  directory.regions.push_back(TenantRegion{
      .name = "b", .weight = 1.0, .base_page = 1024,
      .footprint_pages = 1024, .span_pages = 1024});
  return directory;
}

/** Minimal bound context around a FairSharePolicy for unit tests. */
class FairShareHarness {
 public:
  explicit FairShareHarness(AllocationPolicy allocation,
                            FairShareConfig config = FairShareConfig{},
                            std::unique_ptr<TieringPolicy> base =
                                std::make_unique<PromoteAllPolicy>())
      : memory_(2048, 512, 2048, allocation),
        perf_(PerfModelConfig{}, DefaultFastTier(512),
              DefaultSlowTier(2048)),
        engine_(&memory_, &perf_),
        policy_(std::move(base), TwoTenantDirectory(), config) {
    PolicyContext context;
    context.memory = &memory_;
    context.migration = &engine_;
    context.metadata_sink = &sink_;
    context.footprint_units = 2048;
    context.fast_capacity_units = 512;
    policy_.Bind(context);
  }

  void TouchAll() {
    for (PageId unit = 0; unit < 2048; ++unit) memory_.Touch(unit, 0);
  }

  uint64_t FastResident(uint32_t tenant) {
    uint64_t count = 0;
    memory_.ScanResident(tenant * 1024, 1024, Tier::kFast,
                         [&count](PageId) { ++count; });
    return count;
  }

  TieredMemory& memory() { return memory_; }
  FairSharePolicy& policy() { return policy_; }

 private:
  TieredMemory memory_;
  PerfModel perf_;
  MigrationEngine engine_;
  NullTrafficSink sink_;
  FairSharePolicy policy_;
};

TEST(FairSharePolicy, StaticQuotasFollowWeights) {
  FairShareHarness harness(AllocationPolicy::kSlowOnly);
  // 3:1 weights over 512 fast units.
  EXPECT_EQ(harness.policy().quota_units(0), 384u);
  EXPECT_EQ(harness.policy().quota_units(1), 128u);
}

TEST(FairSharePolicy, GateCapsPromotionsAtQuota) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config);
  harness.TouchAll();  // Everything allocates in the slow tier.

  // The base policy tries to promote all 2048 pages; the gate admits
  // only each tenant's quota.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.FastResident(0), 384u);
  EXPECT_EQ(harness.FastResident(1), 128u);
  EXPECT_EQ(harness.policy().fast_units(0), 384u);
  EXPECT_EQ(harness.policy().fast_units(1), 128u);
  EXPECT_GT(harness.policy().gated_promotions(0), 0u);
  EXPECT_GT(harness.policy().gated_promotions(1), 0u);
}

TEST(FairSharePolicy, EnforcementDemotesOverQuotaTenant) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kFastFirst, config);
  // Fast-first allocation: tenant a's first 512 pages take the whole
  // fast tier (the prefault picture).
  harness.TouchAll();
  ASSERT_EQ(harness.FastResident(0), 512u);
  ASSERT_EQ(harness.FastResident(1), 0u);

  // One tick: enforcement demotes a to quota, then the base policy
  // promotes b into the freed capacity (through the gate, up to quota).
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.FastResident(0), 384u);
  EXPECT_EQ(harness.FastResident(1), 128u);
  EXPECT_GT(harness.policy().enforced_demotions(0), 0u);
}

/** Test policy that issues batches containing duplicate page ids. */
class DupBatchPolicy : public TieringPolicy {
 public:
  void Tick(TimeNs now) override {
    if (done_) return;
    done_ = true;
    const std::vector<PageId> promote = {0, 0, 0, 5, 5, 1030, 1030};
    migration().Promote(promote, now);
    const std::vector<PageId> demote = {0, 0};
    migration().Demote(demote, now);
  }
  size_t MetadataBytes() const override { return 0; }
  const char* name() const override { return "DupBatch"; }

 private:
  bool done_ = false;
};

TEST(FairSharePolicy, DuplicatePagesInBatchesDoNotCorruptAccounting) {
  FairShareConfig config;
  config.rebalance = false;
  FairShareHarness harness(AllocationPolicy::kSlowOnly, config,
                           std::make_unique<DupBatchPolicy>());
  harness.TouchAll();

  // Promote {0,0,0,5,5,1030,1030} then demote {0,0}: the tracked
  // occupancy must match the memory system exactly, not drift by the
  // duplicate entries.
  harness.policy().Tick(1 * kMillisecond);
  EXPECT_EQ(harness.policy().fast_units(0), harness.FastResident(0));
  EXPECT_EQ(harness.policy().fast_units(1), harness.FastResident(1));
  EXPECT_EQ(harness.FastResident(0), 1u);  // Page 5 stayed fast.
  EXPECT_EQ(harness.FastResident(1), 1u);  // Page 1030.
}

// --------------------------------------- simulation-level attribution --

SimulationConfig SmallSimConfig() {
  SimulationConfig config;
  config.max_accesses = 150000;
  config.seed = 7;
  return config;
}

TEST(MultiTenantSimulation, PerTenantStatsSumToGlobalTotals) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), mux.get(), policy.get());

  ASSERT_EQ(result.tenants.size(), 3u);
  uint64_t ops = 0;
  uint64_t accesses = 0;
  uint64_t fast = 0;
  uint64_t slow = 0;
  for (const TenantResult& tenant : result.tenants) {
    ops += tenant.ops;
    accesses += tenant.accesses;
    fast += tenant.fast_mem_accesses;
    slow += tenant.slow_mem_accesses;
    EXPECT_GT(tenant.ops, 0u);
  }
  EXPECT_EQ(ops, result.ops);
  EXPECT_EQ(accesses, result.accesses);
  EXPECT_EQ(fast, result.fast_mem_accesses);
  EXPECT_EQ(slow, result.slow_mem_accesses);
  EXPECT_GT(result.jain_fairness, 0.0);
  EXPECT_LE(result.jain_fairness, 1.0);
}

TEST(MultiTenantSimulation, SingleTenantRunsHaveNoTenantResults) {
  auto workload = MakeWorkload("zipf", 0.05, 7);
  auto policy = MakePolicy("HybridTier");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), workload.get(), policy.get());
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_DOUBLE_EQ(result.jain_fairness, 1.0);
}

TEST(MultiTenantSimulation, FairShareKeepsEveryTenantWithinQuota) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 400000;
  const SimulationResult result =
      RunSimulation(config, mux.get(), fair.get());

  const FairShareConfig defaults;
  for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
    EXPECT_LE(result.tenants[t].fast_resident_units,
              fair->quota_units(t) + defaults.max_enforce_batch)
        << "tenant " << result.tenants[t].name << " exceeds its quota";
    // The wrapper's incremental occupancy tracking matches the memory
    // system's ground truth at end of run.
    EXPECT_EQ(result.tenants[t].fast_resident_units, fair->fast_units(t));
  }
}

TEST(MultiTenantSimulation, HugePageModeAttributesCleanly) {
  auto mux = MakeMuxWorkload(SmallSpecs(), 7);
  auto policy = MakePolicy("HybridTier");
  SimulationConfig config = SmallSimConfig();
  config.mode = PageMode::kHuge;
  const SimulationResult result =
      RunSimulation(config, mux.get(), policy.get());
  uint64_t ops = 0;
  for (const TenantResult& tenant : result.tenants) ops += tenant.ops;
  EXPECT_EQ(ops, result.ops);
}

}  // namespace
}  // namespace hybridtier
