/**
 * @file
 * Unit tests for src/core: access trackers, the HybridTier policy
 * (Table 1 migration matrix, second chance, thresholds), the policy
 * factory, and the simulation harness.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "core/hybridtier_policy.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "core/trackers.h"
#include "mem/migration.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "workloads/cachelib.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

// Metadata traffic is counted (and line-buffered) by the concrete
// MetadataTrafficCounter directly; no test-local sink subclass needed.
using CountingSink = MetadataTrafficCounter;

/** Policy harness mirroring the one in test_policies.cc. */
class CoreHarness {
 public:
  CoreHarness(uint64_t footprint, uint64_t fast_capacity,
              AllocationPolicy allocation = AllocationPolicy::kFastFirst)
      : memory_(footprint, fast_capacity, footprint, allocation),
        perf_(PerfModelConfig{}, DefaultFastTier(fast_capacity),
              DefaultSlowTier(footprint)),
        engine_(&memory_, &perf_) {
    context_.memory = &memory_;
    context_.migration = &engine_;
    context_.metadata_sink = &sink_;
    context_.footprint_units = footprint;
    context_.fast_capacity_units = fast_capacity;
  }

  void Bind(TieringPolicy* policy) { policy->Bind(context_); }
  void TouchAll(uint64_t n) {
    for (PageId page = 0; page < n; ++page) memory_.Touch(page, 0);
  }
  SampleRecord Sample(PageId page, TimeNs now) {
    return SampleRecord{.page = page,
                        .tier = memory_.TierOf(page),
                        .time_ns = now};
  }

  TieredMemory& memory() { return memory_; }
  MigrationEngine& engine() { return engine_; }
  MetadataTrafficCounter& sink() { return sink_; }

 private:
  TieredMemory memory_;
  PerfModel perf_;
  MigrationEngine engine_;
  MetadataTrafficCounter sink_;
  PolicyContext context_;
};

// ----------------------------------------------------- AccessTracker --

TEST(AccessTracker, CountsAndCools) {
  TrackerConfig config;
  config.sizing = FrequencyCbfSizing(1024);
  config.cooling_period_samples = 100;
  AccessTracker tracker(config);
  CountingSink sink;
  for (int i = 0; i < 50; ++i) tracker.RecordAccess(7, sink);
  EXPECT_EQ(tracker.Get(7), 15u);  // Saturated 4-bit counter.
  for (int i = 0; i < 50; ++i) tracker.RecordAccess(8, sink);
  // The 100th sample triggered cooling.
  EXPECT_EQ(tracker.coolings(), 1u);
  EXPECT_LE(tracker.Get(7), 8u);
}

TEST(AccessTracker, RecordAccessReturnsPostCoolingCount) {
  TrackerConfig config;
  config.sizing = FrequencyCbfSizing(1024);
  config.cooling_period_samples = 10;
  AccessTracker tracker(config);
  CountingSink sink;
  uint32_t returned = 0;
  for (int i = 0; i < 10; ++i) returned = tracker.RecordAccess(7, sink);
  ASSERT_TRUE(tracker.cooled_on_last_record());
  // The 10th record raised the count to 10 and then cooling halved the
  // filter. The caller thresholds on the returned value, so it must be
  // the post-cooling estimate — not the ~2x-stale pre-cooling one.
  EXPECT_EQ(returned, tracker.Get(7));
  EXPECT_EQ(returned, 5u);
}

TEST(AccessTracker, BlockedCbfTouchesOneLinePerUpdate) {
  TrackerConfig config;
  config.kind = EstimatorKind::kBlockedCbf;
  config.sizing = FrequencyCbfSizing(4096);
  AccessTracker tracker(config);
  CountingSink sink;
  tracker.RecordAccess(42, sink);
  EXPECT_EQ(sink.touches(), 1u);
  EXPECT_GE(sink.lines().back(), config.metadata_base);
}

TEST(AccessTracker, StandardCbfTouchesMoreLines) {
  TrackerConfig blocked_config;
  blocked_config.kind = EstimatorKind::kBlockedCbf;
  blocked_config.sizing = FrequencyCbfSizing(1 << 16);
  TrackerConfig standard_config = blocked_config;
  standard_config.kind = EstimatorKind::kStandardCbf;

  AccessTracker blocked(blocked_config);
  AccessTracker standard(standard_config);
  CountingSink blocked_sink, standard_sink;
  for (PageId page = 0; page < 500; ++page) {
    blocked.RecordAccess(page, blocked_sink);
    standard.RecordAccess(page, standard_sink);
  }
  // The locality claim behind Fig 14: standard CBF touches ~k lines per
  // update, blocked CBF exactly one.
  EXPECT_EQ(blocked_sink.touches(), 500u);
  EXPECT_GT(standard_sink.touches(), 1500u);
}

TEST(AccessTracker, CoolingTouchesWholeFilter) {
  TrackerConfig config;
  config.sizing = FrequencyCbfSizing(4096);
  config.cooling_period_samples = 10;
  AccessTracker tracker(config);
  CountingSink sink;
  for (int i = 0; i < 10; ++i) tracker.RecordAccess(i, sink);
  EXPECT_TRUE(tracker.cooled_on_last_record());
  const uint64_t filter_lines = tracker.memory_bytes() / kCacheLineSize;
  EXPECT_GE(sink.touches(), filter_lines);
}

TEST(AccessTracker, ExactKindUsesTable) {
  TrackerConfig config;
  config.kind = EstimatorKind::kExact;
  config.exact_units = 1000;
  config.sizing.counter_bits = 4;
  AccessTracker tracker(config);
  CountingSink sink;
  for (int i = 0; i < 7; ++i) tracker.RecordAccess(3, sink);
  EXPECT_EQ(tracker.Get(3), 7u);
  EXPECT_EQ(tracker.memory_bytes(), 1000u * 16u);
}

TEST(AccessTracker, EstimatorKindNames) {
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kBlockedCbf),
               "blocked-cbf");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kStandardCbf),
               "standard-cbf");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kExact), "exact");
}

// ------------------------------------------------- HybridTier policy --

HybridTierConfig FastTestConfig() {
  HybridTierConfig config;
  config.promo_batch_samples = 8;
  config.momentum_cooling_samples = 1000;
  config.freq_cooling_samples = 100000;
  config.second_chance_revisit_ns = 10 * kMillisecond;
  return config;
}

TEST(HybridTier, MomentumPromotesNewHotPages) {
  HybridTierConfig config = FastTestConfig();
  config.demote_trigger_frac = 0.1;
  config.demote_target_frac = 0.3;
  CoreHarness harness(1000, 100);
  HybridTierPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(1000);

  // Warm phase: 250 distinct pages sampled 5x each push the histogram-
  // derived frequency threshold well above the momentum threshold
  // (budget is only 100 fast pages).
  for (int round = 0; round < 5; ++round) {
    for (PageId page = 100; page < 350; ++page) {
      policy.OnSample(harness.Sample(page, page));
    }
  }
  // Let the warm pages' momentum cool (two cooling periods of samples
  // aimed at one fast-resident page), so they become demotable.
  for (int i = 0; i < 2100; ++i) {
    policy.OnSample(harness.Sample(50, kMillisecond + i));
  }
  policy.Tick(2 * kMillisecond);  // Watermark demotion frees headroom.
  ASSERT_GT(policy.freq_threshold(), 4u);
  ASSERT_GT(harness.memory().FreePages(Tier::kFast), 0u);

  // A cold page suddenly becomes hot: momentum (threshold 3) catches it
  // before its frequency earns the histogram threshold.
  for (int i = 0; i < 16; ++i) {
    policy.OnSample(harness.Sample(500, 2 * kMillisecond + i * 1000));
  }
  EXPECT_EQ(harness.memory().TierOf(500), Tier::kFast);
  EXPECT_GT(policy.momentum_promotions(), 0u);
}

TEST(HybridTier, OnlyFreqVariantLacksMomentum) {
  HybridTierConfig config = FastTestConfig();
  config.use_momentum = false;
  CoreHarness harness(1000, 100);
  HybridTierPolicy policy(config);
  harness.Bind(&policy);
  EXPECT_EQ(policy.momentum_tracker(), nullptr);
  EXPECT_STREQ(policy.name(), "HybridTier-onlyFreq");
}

TEST(HybridTier, SecondChanceDefersThenDemotes) {
  HybridTierConfig config = FastTestConfig();
  config.demote_trigger_frac = 1.0;  // Demotion pressure always on.
  config.demote_target_frac = 1.0;
  CoreHarness harness(200, 100);
  HybridTierPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(200);

  // Make page 5 frequency-hot, then let its momentum go cold.
  for (int i = 0; i < 40; ++i) {
    policy.OnSample(harness.Sample(5, i));
  }
  // Cool momentum to zero with unrelated samples (the momentum counter
  // saturates at 15, so it takes >= 4 cooling periods to reach 0).
  for (int i = 0; i < 8000; ++i) {
    policy.OnSample(harness.Sample(150 + (i % 50), 1000 + i));
  }

  // First demotion scan: page 5 is high-freq/low-momentum -> marked.
  policy.Tick(kMillisecond);
  EXPECT_GT(policy.second_chance_pending(), 0u);

  // Revisit after the delay with no further accesses: demoted.
  for (int tick = 2; tick < 30; ++tick) {
    policy.Tick(tick * kMillisecond);
  }
  EXPECT_GT(policy.second_chance_demotions(), 0u);
}

TEST(HybridTier, LowLowDemotedImmediately) {
  HybridTierConfig config = FastTestConfig();
  config.demote_trigger_frac = 0.5;
  config.demote_target_frac = 0.6;
  CoreHarness harness(200, 100);
  HybridTierPolicy policy(config);
  harness.Bind(&policy);
  harness.TouchAll(200);  // Fast full of never-sampled (low/low) pages.
  policy.Tick(kMillisecond);
  EXPECT_GT(harness.engine().stats().demoted_pages, 0u);
  EXPECT_GE(harness.memory().FreePages(Tier::kFast), 50u);
}

TEST(HybridTier, DemotionScanChargesOnlyVisitedUnitsAtWrap) {
  HybridTierConfig config;
  config.scan_units_per_tick = 1024;
  config.demote_trigger_frac = 0.5;
  config.demote_target_frac = 0.5;
  HybridTierPolicy policy(config);
  CoreHarness harness(1500, 16);
  harness.Bind(&policy);
  harness.TouchAll(16);  // Fast tier full: the watermark demoter runs.

  // Make every fast page momentum-hot so the scan classifies but never
  // finds a victim — each phase must then burn its full scan budget.
  for (PageId page = 0; page < 16; ++page) {
    for (int i = 0; i < 3; ++i) {
      policy.OnSample(harness.Sample(page, 0));
    }
  }

  ASSERT_EQ(policy.scan_cursor(), 0u);
  policy.Tick(1 * kMillisecond);
  // Two phases x 1024 units over a 1500-unit footprint must advance the
  // cursor to 2048 mod 1500. Charging the clipped tail chunk at its
  // nominal 1024 would end the wrapped phase 548 units early instead.
  EXPECT_EQ(policy.scan_cursor(), (2u * 1024u) % 1500u);
  policy.Tick(2 * kMillisecond);
  EXPECT_EQ(policy.scan_cursor(), (4u * 1024u) % 1500u);
}

TEST(HybridTier, MetadataScalesWithFastTierNotFootprint) {
  CoreHarness small_fast(1u << 16, 1u << 10);
  CoreHarness large_fast(1u << 16, 1u << 14);
  HybridTierPolicy policy_small{HybridTierConfig{}};
  HybridTierPolicy policy_large{HybridTierConfig{}};
  small_fast.Bind(&policy_small);
  large_fast.Bind(&policy_large);
  // Same footprint, 16x fast tier => ~16x metadata (paper Table 4:
  // "HybridTier's metadata size scales with the size of fast-tier").
  const double ratio =
      static_cast<double>(policy_large.MetadataBytes()) /
      static_cast<double>(policy_small.MetadataBytes());
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 24.0);
}

TEST(HybridTier, MetadataFarSmallerThanMemtis) {
  const uint64_t footprint = 1u << 18;
  CoreHarness harness(footprint, footprint / 16);
  HybridTierPolicy hybrid{HybridTierConfig{}};
  harness.Bind(&hybrid);
  CoreHarness harness2(footprint, footprint / 16);
  auto memtis = MakePolicy("Memtis");
  harness2.Bind(memtis.get());
  // Paper Table 4 at 1:16: 7.8x less metadata; allow a broad band.
  const double reduction =
      static_cast<double>(memtis->MetadataBytes()) /
      static_cast<double>(hybrid.MetadataBytes());
  EXPECT_GT(reduction, 4.0);
}

TEST(HybridTier, HugePageModeUses16BitCounters) {
  CoreHarness harness(1 << 12, 1 << 8);
  HybridTierConfig config;
  HybridTierPolicy policy(config);
  PolicyContext context;
  TieredMemory memory(1 << 12, 1 << 8, 1 << 12);
  PerfModel perf(PerfModelConfig{}, DefaultFastTier(1 << 8),
                 DefaultSlowTier(1 << 12));
  MigrationEngine engine(&memory, &perf, PageMode::kHuge);
  MetadataTrafficCounter sink;
  sink.SetRecording(false);
  context.memory = &memory;
  context.migration = &engine;
  context.metadata_sink = &sink;
  context.mode = PageMode::kHuge;
  context.footprint_units = 1 << 12;
  context.fast_capacity_units = 1 << 8;
  policy.Bind(context);
  EXPECT_EQ(policy.frequency_tracker().max_count(), 65535u);
}

TEST(HybridTier, VariantNames) {
  HybridTierConfig config;
  EXPECT_STREQ(HybridTierPolicy(config).name(), "HybridTier");
  config.estimator = EstimatorKind::kStandardCbf;
  EXPECT_STREQ(HybridTierPolicy(config).name(), "HybridTier-CBF");
  config.estimator = EstimatorKind::kExact;
  EXPECT_STREQ(HybridTierPolicy(config).name(), "HybridTier-exact");
}

// ------------------------------------------------------ PolicyFactory --

TEST(PolicyFactory, AllNamesConstruct) {
  for (const char* name :
       {"TPP", "AutoNUMA", "Memtis", "ARC", "TwoQ", "HybridTier",
        "HybridTier-onlyFreq", "HybridTier-CBF", "HybridTier-exact",
        "AllFast", "FirstTouch"}) {
    SCOPED_TRACE(name);
    auto policy = MakePolicy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_TRUE(IsPolicyName(name));
  }
  EXPECT_FALSE(IsPolicyName("LRU-3000"));
}

TEST(PolicyFactory, StandardSixInPaperOrder) {
  const auto& names = StandardPolicyNames();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "TPP");
  EXPECT_EQ(names.back(), "HybridTier");
}

TEST(PolicyFactory, AllocationRules) {
  EXPECT_EQ(AllocationPolicyFor("ARC"), AllocationPolicy::kSlowOnly);
  EXPECT_EQ(AllocationPolicyFor("TwoQ"), AllocationPolicy::kSlowOnly);
  EXPECT_EQ(AllocationPolicyFor("Memtis"), AllocationPolicy::kFastFirst);
  EXPECT_DOUBLE_EQ(FastFractionFor("AllFast", 0.125), 1.0);
  EXPECT_DOUBLE_EQ(FastFractionFor("Memtis", 0.125), 0.125);
}

// --------------------------------------------------------- Simulation --

SimulationConfig SmallSimConfig() {
  SimulationConfig config;
  config.max_accesses = 300000;
  config.fast_tier_fraction = 1.0 / 8;
  return config;
}

TEST(Simulation, RunsToAccessBudget) {
  auto workload = MakeWorkload("silo", 0.05, 1);
  HybridTierPolicy policy;
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), workload.get(), &policy);
  EXPECT_GE(result.accesses, 300000u);
  EXPECT_GT(result.ops, 0u);
  EXPECT_GT(result.duration_ns, 0u);
  EXPECT_GT(result.median_latency_ns, 0.0);
  EXPECT_GT(result.samples_taken, result.accesses / 100);
}

TEST(Simulation, DeterministicAcrossRuns) {
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 100000;
  auto w1 = MakeWorkload("silo", 0.05, 7);
  auto w2 = MakeWorkload("silo", 0.05, 7);
  HybridTierPolicy p1, p2;
  const SimulationResult r1 = RunSimulation(config, w1.get(), &p1);
  const SimulationResult r2 = RunSimulation(config, w2.get(), &p2);
  EXPECT_EQ(r1.duration_ns, r2.duration_ns);
  EXPECT_EQ(r1.ops, r2.ops);
  EXPECT_DOUBLE_EQ(r1.median_latency_ns, r2.median_latency_ns);
  EXPECT_EQ(r1.migration.promoted_pages, r2.migration.promoted_pages);
}

TEST(Simulation, AllFastIsFasterThanFirstTouch) {
  SimulationConfig config = SmallSimConfig();
  auto w1 = MakeWorkload("cdn", 0.05, 3);
  auto w2 = MakeWorkload("cdn", 0.05, 3);
  auto all_fast = MakePolicy("AllFast");
  auto first_touch = MakePolicy("FirstTouch");

  SimulationConfig fast_config = config;
  fast_config.fast_tier_fraction = FastFractionFor("AllFast", 0.125);
  const SimulationResult r_fast =
      RunSimulation(fast_config, w1.get(), all_fast.get());
  const SimulationResult r_static =
      RunSimulation(config, w2.get(), first_touch.get());
  // The all-fast upper bound must beat no-migration first touch.
  EXPECT_LT(r_fast.duration_ns, r_static.duration_ns);
  EXPECT_EQ(r_fast.slow_mem_accesses, 0u);
}

TEST(Simulation, HugePageModeShrinksUnits) {
  auto workload = MakeWorkload("cdn", 0.05, 3);
  HybridTierPolicy policy;
  SimulationConfig config = SmallSimConfig();
  config.mode = PageMode::kHuge;
  config.max_accesses = 50000;
  Simulation simulation(config, workload.get(), &policy);
  EXPECT_LT(simulation.footprint_units(),
            workload->footprint_pages() / 100);
  simulation.Run();
}

TEST(Simulation, TimelinesRecorded) {
  auto workload = MakeWorkload("silo", 0.05, 1);
  HybridTierPolicy policy;
  SimulationConfig config = SmallSimConfig();
  config.stats_interval_ns = 1 * kMillisecond;
  const SimulationResult result =
      RunSimulation(config, workload.get(), &policy);
  EXPECT_GT(result.latency_timeline.size(), 3u);
  EXPECT_EQ(result.latency_timeline.size(),
            result.tiering_llc_share_timeline.size());
}

TEST(Simulation, MetadataTrafficAttributed) {
  auto workload = MakeWorkload("silo", 0.05, 1);
  auto memtis = MakePolicy("Memtis");
  const SimulationResult result =
      RunSimulation(SmallSimConfig(), workload.get(), memtis.get());
  // Memtis metadata updates must show up as tiering-owned misses.
  EXPECT_GT(result.l1_tiering_misses, 0u);
  EXPECT_GT(result.llc_tiering_misses, 0u);
  EXPECT_GT(result.TieringLlcMissShare(), 0.0);
}

TEST(Simulation, WarmupResetsStats) {
  auto w1 = MakeWorkload("silo", 0.05, 1);
  auto w2 = MakeWorkload("silo", 0.05, 1);
  HybridTierPolicy p1, p2;
  SimulationConfig config = SmallSimConfig();
  config.max_accesses = 200000;
  const SimulationResult without =
      RunSimulation(config, w1.get(), &p1);
  config.warmup_accesses = 100000;
  const SimulationResult with_warmup =
      RunSimulation(config, w2.get(), &p2);
  EXPECT_LT(with_warmup.l1_app_misses, without.l1_app_misses);
}

}  // namespace
}  // namespace hybridtier
