/**
 * @file
 * Determinism regression tests: the harness documents that same config +
 * seed produces identical results. These tests run the same cell twice
 * and require bit-identical headline metrics — single-tenant, huge-page,
 * and multi-tenant (per-tenant results included).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

SimulationConfig TestConfig() {
  SimulationConfig config;
  config.max_accesses = 200000;
  config.seed = 11;
  return config;
}

/** Runs one (workload, policy) cell from scratch. */
SimulationResult RunCell(const std::string& workload_id,
                         const std::string& policy_name,
                         const SimulationConfig& config, uint64_t seed) {
  auto workload = MakeWorkload(workload_id, 0.05, seed);
  auto policy = MakePolicy(policy_name);
  return RunSimulation(config, workload.get(), policy.get());
}

void ExpectIdenticalHeadlines(const SimulationResult& a,
                              const SimulationResult& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.duration_ns, b.duration_ns);
  EXPECT_EQ(a.fast_mem_accesses, b.fast_mem_accesses);
  EXPECT_EQ(a.slow_mem_accesses, b.slow_mem_accesses);
  EXPECT_EQ(a.hint_faults, b.hint_faults);
  EXPECT_EQ(a.migration.promoted_pages, b.migration.promoted_pages);
  EXPECT_EQ(a.migration.demoted_pages, b.migration.demoted_pages);
  EXPECT_EQ(a.samples_taken, b.samples_taken);
  // Doubles must match bit-for-bit, not approximately.
  EXPECT_EQ(a.throughput_mops, b.throughput_mops);
  EXPECT_EQ(a.median_latency_ns, b.median_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns);
}

TEST(Determinism, SameSeedSameSingleTenantResults) {
  for (const char* policy : {"HybridTier", "Memtis", "TPP"}) {
    const SimulationResult a = RunCell("zipf", policy, TestConfig(), 11);
    const SimulationResult b = RunCell("zipf", policy, TestConfig(), 11);
    ExpectIdenticalHeadlines(a, b);
  }
}

TEST(Determinism, SameSeedSameResultsInHugePageMode) {
  SimulationConfig config = TestConfig();
  config.mode = PageMode::kHuge;
  const SimulationResult a = RunCell("cdn", "HybridTier", config, 11);
  const SimulationResult b = RunCell("cdn", "HybridTier", config, 11);
  ExpectIdenticalHeadlines(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentRuns) {
  const SimulationResult a = RunCell("zipf", "HybridTier", TestConfig(), 11);
  const SimulationResult b = RunCell("zipf", "HybridTier", TestConfig(), 12);
  // The access stream itself depends on the seed, so at least the
  // virtual duration or the latency distribution must move.
  EXPECT_TRUE(a.duration_ns != b.duration_ns ||
              a.median_latency_ns != b.median_latency_ns ||
              a.migration.promoted_pages != b.migration.promoted_pages);
}

SimulationResult RunMultiTenantCell() {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,silo");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 11);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = TestConfig();
  config.max_accesses = 300000;
  return RunSimulation(config, mux.get(), fair.get());
}

TEST(Determinism, MultiTenantPerTenantResultsAreBitIdentical) {
  const SimulationResult a = RunMultiTenantCell();
  const SimulationResult b = RunMultiTenantCell();
  ExpectIdenticalHeadlines(a, b);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    const TenantResult& ta = a.tenants[t];
    const TenantResult& tb = b.tenants[t];
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.ops, tb.ops);
    EXPECT_EQ(ta.accesses, tb.accesses);
    EXPECT_EQ(ta.fast_mem_accesses, tb.fast_mem_accesses);
    EXPECT_EQ(ta.slow_mem_accesses, tb.slow_mem_accesses);
    EXPECT_EQ(ta.fast_resident_units, tb.fast_resident_units);
    EXPECT_EQ(ta.footprint_units, tb.footprint_units);
    EXPECT_EQ(ta.throughput_mops, tb.throughput_mops);
    EXPECT_EQ(ta.median_latency_ns, tb.median_latency_ns);
    EXPECT_EQ(ta.p99_latency_ns, tb.p99_latency_ns);
    EXPECT_EQ(ta.mean_latency_ns, tb.mean_latency_ns);
  }
}

/** Runs a cell with mid-run tenant churn (an arrival and a departure). */
SimulationResult RunChurnCell() {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,cdn:2@0-5e7,zipf@3e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 11);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = TestConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 90 * kMillisecond;
  return RunSimulation(config, mux.get(), fair.get());
}

void ExpectIdenticalTimelines(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.times_ns[i], b.times_ns[i]);
    EXPECT_EQ(a.values[i], b.values[i]);  // Bit-for-bit.
  }
}

TEST(Determinism, ChurnTimelinesAreBitIdentical) {
  const SimulationResult a = RunChurnCell();
  const SimulationResult b = RunChurnCell();
  ExpectIdenticalHeadlines(a, b);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.weighted_jain_fairness, b.weighted_jain_fairness);
  ExpectIdenticalTimelines(a.weighted_fairness_timeline,
                           b.weighted_fairness_timeline);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].ops, b.tenants[t].ops);
    EXPECT_EQ(a.tenants[t].fast_resident_units,
              b.tenants[t].fast_resident_units);
    ExpectIdenticalTimelines(a.tenants[t].occupancy_timeline,
                             b.tenants[t].occupancy_timeline);
    ExpectIdenticalTimelines(a.tenants[t].latency_timeline,
                             b.tenants[t].latency_timeline);
  }
}

}  // namespace
}  // namespace hybridtier
