/**
 * @file
 * Determinism regression tests: the harness documents that same config +
 * seed produces identical results. These tests run the same cell twice
 * and require bit-identical headline metrics — single-tenant, huge-page,
 * and multi-tenant (per-tenant results included).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "workloads/factory.h"
#include "workloads/trace.h"

namespace hybridtier {
namespace {

SimulationConfig TestConfig() {
  SimulationConfig config;
  config.max_accesses = 200000;
  config.seed = 11;
  return config;
}

/** Runs one (workload, policy) cell from scratch. */
SimulationResult RunCell(const std::string& workload_id,
                         const std::string& policy_name,
                         const SimulationConfig& config, uint64_t seed) {
  auto workload = MakeWorkload(workload_id, 0.05, seed);
  auto policy = MakePolicy(policy_name);
  return RunSimulation(config, workload.get(), policy.get());
}

void ExpectIdenticalHeadlines(const SimulationResult& a,
                              const SimulationResult& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.duration_ns, b.duration_ns);
  EXPECT_EQ(a.fast_mem_accesses, b.fast_mem_accesses);
  EXPECT_EQ(a.slow_mem_accesses, b.slow_mem_accesses);
  EXPECT_EQ(a.hint_faults, b.hint_faults);
  EXPECT_EQ(a.migration.promoted_pages, b.migration.promoted_pages);
  EXPECT_EQ(a.migration.demoted_pages, b.migration.demoted_pages);
  EXPECT_EQ(a.samples_taken, b.samples_taken);
  // Doubles must match bit-for-bit, not approximately.
  EXPECT_EQ(a.throughput_mops, b.throughput_mops);
  EXPECT_EQ(a.median_latency_ns, b.median_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns);
}

TEST(Determinism, SameSeedSameSingleTenantResults) {
  for (const char* policy : {"HybridTier", "Memtis", "TPP"}) {
    const SimulationResult a = RunCell("zipf", policy, TestConfig(), 11);
    const SimulationResult b = RunCell("zipf", policy, TestConfig(), 11);
    ExpectIdenticalHeadlines(a, b);
  }
}

TEST(Determinism, SameSeedSameResultsInHugePageMode) {
  SimulationConfig config = TestConfig();
  config.mode = PageMode::kHuge;
  const SimulationResult a = RunCell("cdn", "HybridTier", config, 11);
  const SimulationResult b = RunCell("cdn", "HybridTier", config, 11);
  ExpectIdenticalHeadlines(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentRuns) {
  const SimulationResult a = RunCell("zipf", "HybridTier", TestConfig(), 11);
  const SimulationResult b = RunCell("zipf", "HybridTier", TestConfig(), 12);
  // The access stream itself depends on the seed, so at least the
  // virtual duration or the latency distribution must move.
  EXPECT_TRUE(a.duration_ns != b.duration_ns ||
              a.median_latency_ns != b.median_latency_ns ||
              a.migration.promoted_pages != b.migration.promoted_pages);
}

SimulationResult RunMultiTenantCell() {
  std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,silo");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 11);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = TestConfig();
  config.max_accesses = 300000;
  return RunSimulation(config, mux.get(), fair.get());
}

TEST(Determinism, MultiTenantPerTenantResultsAreBitIdentical) {
  const SimulationResult a = RunMultiTenantCell();
  const SimulationResult b = RunMultiTenantCell();
  ExpectIdenticalHeadlines(a, b);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    const TenantResult& ta = a.tenants[t];
    const TenantResult& tb = b.tenants[t];
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.ops, tb.ops);
    EXPECT_EQ(ta.accesses, tb.accesses);
    EXPECT_EQ(ta.fast_mem_accesses, tb.fast_mem_accesses);
    EXPECT_EQ(ta.slow_mem_accesses, tb.slow_mem_accesses);
    EXPECT_EQ(ta.fast_resident_units, tb.fast_resident_units);
    EXPECT_EQ(ta.footprint_units, tb.footprint_units);
    EXPECT_EQ(ta.throughput_mops, tb.throughput_mops);
    EXPECT_EQ(ta.median_latency_ns, tb.median_latency_ns);
    EXPECT_EQ(ta.p99_latency_ns, tb.p99_latency_ns);
    EXPECT_EQ(ta.mean_latency_ns, tb.mean_latency_ns);
  }
}

/** Runs a cell with mid-run tenant churn (an arrival and a departure). */
SimulationResult RunChurnCell() {
  std::vector<TenantSpec> specs =
      ParseTenantList("zipf,cdn:2@0-5e7,zipf@3e7");
  for (TenantSpec& spec : specs) spec.scale = 0.05;
  auto mux = MakeMuxWorkload(specs, 11);
  auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                mux->directory());
  SimulationConfig config = TestConfig();
  config.max_accesses = 30000000;
  config.max_time_ns = 90 * kMillisecond;
  return RunSimulation(config, mux.get(), fair.get());
}

void ExpectIdenticalTimelines(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.times_ns[i], b.times_ns[i]);
    EXPECT_EQ(a.values[i], b.values[i]);  // Bit-for-bit.
  }
}

TEST(Determinism, ChurnTimelinesAreBitIdentical) {
  const SimulationResult a = RunChurnCell();
  const SimulationResult b = RunChurnCell();
  ExpectIdenticalHeadlines(a, b);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.weighted_jain_fairness, b.weighted_jain_fairness);
  ExpectIdenticalTimelines(a.weighted_fairness_timeline,
                           b.weighted_fairness_timeline);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].ops, b.tenants[t].ops);
    EXPECT_EQ(a.tenants[t].fast_resident_units,
              b.tenants[t].fast_resident_units);
    ExpectIdenticalTimelines(a.tenants[t].occupancy_timeline,
                             b.tenants[t].occupancy_timeline);
    ExpectIdenticalTimelines(a.tenants[t].latency_timeline,
                             b.tenants[t].latency_timeline);
  }
}

// ----------------------------------------------------------------------
// Hot-path refactor gates: the batched execution engine must be
// observably indistinguishable from the legacy per-access path, and
// both must still reproduce the stats the pre-refactor simulator
// produced.

void ExpectFullyIdentical(const SimulationResult& a,
                          const SimulationResult& b) {
  ExpectIdenticalHeadlines(a, b);
  EXPECT_EQ(a.l1_app_misses, b.l1_app_misses);
  EXPECT_EQ(a.l1_tiering_misses, b.l1_tiering_misses);
  EXPECT_EQ(a.llc_app_misses, b.llc_app_misses);
  EXPECT_EQ(a.llc_tiering_misses, b.llc_tiering_misses);
  EXPECT_EQ(a.metadata_bytes, b.metadata_bytes);
  EXPECT_EQ(a.samples_dropped, b.samples_dropped);
  EXPECT_EQ(a.migration.promotion_batches, b.migration.promotion_batches);
  EXPECT_EQ(a.migration.demotion_batches, b.migration.demotion_batches);
  ExpectIdenticalTimelines(a.latency_timeline, b.latency_timeline);
  ExpectIdenticalTimelines(a.tiering_llc_share_timeline,
                           b.tiering_llc_share_timeline);
  ExpectIdenticalTimelines(a.fast_used_timeline, b.fast_used_timeline);
}

/** One cell under either dispatch engine. */
SimulationResult RunEngineCell(const std::string& workload_id,
                               const std::string& policy_name,
                               bool batch_execution) {
  auto workload =
      MakeWorkload(workload_id, workload_id == "zipf" ? 0.25 : 1.0, 17);
  auto policy = MakePolicy(policy_name);
  SimulationConfig config;
  config.max_accesses = 300000;
  config.seed = 17;
  config.batch_execution = batch_execution;
  return RunSimulation(config, workload.get(), policy.get());
}

TEST(Determinism, BatchedAndLegacyDispatchAreBitIdentical) {
  for (const char* workload : {"zipf", "bfs-k"}) {
    for (const char* policy :
         {"HybridTier", "Memtis", "TPP", "AutoNUMA", "ARC", "FirstTouch"}) {
      SCOPED_TRACE(std::string(workload) + "/" + policy);
      const SimulationResult batched =
          RunEngineCell(workload, policy, /*batch_execution=*/true);
      const SimulationResult legacy =
          RunEngineCell(workload, policy, /*batch_execution=*/false);
      ExpectFullyIdentical(batched, legacy);
    }
  }
}

TEST(Determinism, BatchedAndLegacyDispatchMatchForFairShare) {
  const auto run = [](bool batch_execution) {
    std::vector<TenantSpec> specs = ParseTenantList("zipf,cdn:2,silo");
    for (TenantSpec& spec : specs) spec.scale = 0.05;
    auto mux = MakeMuxWorkload(specs, 11);
    auto fair = std::make_unique<FairSharePolicy>(MakePolicy("HybridTier"),
                                                  mux->directory());
    SimulationConfig config = TestConfig();
    config.max_accesses = 300000;
    config.batch_execution = batch_execution;
    return RunSimulation(config, mux.get(), fair.get());
  };
  const SimulationResult batched = run(true);
  const SimulationResult legacy = run(false);
  ExpectFullyIdentical(batched, legacy);
  ASSERT_EQ(batched.tenants.size(), legacy.tenants.size());
  for (size_t t = 0; t < batched.tenants.size(); ++t) {
    EXPECT_EQ(batched.tenants[t].fast_resident_units,
              legacy.tenants[t].fast_resident_units);
    EXPECT_EQ(batched.tenants[t].ops, legacy.tenants[t].ops);
  }
}

TEST(Determinism, TraceReplayMatchesLiveGeneration) {
  for (const char* workload_id : {"zipf", "bfs-k"}) {
    SCOPED_TRACE(workload_id);
    const double scale = std::string(workload_id) == "zipf" ? 0.25 : 1.0;
    SimulationConfig config;
    config.max_accesses = 300000;
    config.seed = 29;

    auto live_workload = MakeWorkload(workload_id, scale, 29);
    auto live_policy = MakePolicy("HybridTier");
    const SimulationResult live =
        RunSimulation(config, live_workload.get(), live_policy.get());

    auto recorded_workload = MakeWorkload(workload_id, scale, 29);
    auto trace = std::make_shared<const RecordedTrace>(
        RecordTrace(*recorded_workload, config.max_accesses));
    ReplayWorkload replay(trace);
    auto replay_policy = MakePolicy("HybridTier");
    const SimulationResult replayed =
        RunSimulation(config, &replay, replay_policy.get());

    ExpectFullyIdentical(live, replayed);
  }
}

// Pre-refactor goldens: integer stats captured from the seed simulator
// (before the batched-execution / devirtualized-metadata / flat-state
// refactor) on this matrix. The refactored engine must reproduce every
// one bit-for-bit — the hot-path overhaul is a pure implementation
// change. If a *deliberate* semantic change ever lands, recapture these
// with the previous release.
struct GoldenCell {
  const char* workload;
  const char* policy;
  uint64_t ops, accesses, duration_ns;
  uint64_t fast_mem, slow_mem, hint_faults;
  uint64_t promoted, demoted, samples_taken;
  uint64_t l1_app, llc_app, l1_tier, llc_tier;
};

constexpr GoldenCell kPreRefactorGoldens[] = {
    {"zipf", "HybridTier", 100000ull, 400000ull, 39930826ull, 113233ull,
     186277ull, 0ull, 2461ull, 2461ull, 6564ull, 382878ull, 299510ull,
     13709ull, 11136ull},
    {"zipf", "Memtis", 100000ull, 400000ull, 39955106ull, 113427ull,
     186376ull, 0ull, 2461ull, 2461ull, 6564ull, 382878ull, 299803ull,
     14903ull, 14777ull},
    {"zipf", "TPP", 100000ull, 400000ull, 127787828ull, 70518ull,
     239508ull, 51721ull, 2783ull, 3034ull, 6564ull, 382878ull, 310026ull,
     136176ull, 125246ull},
    {"zipf", "AutoNUMA", 100000ull, 400000ull, 137888926ull, 86695ull,
     223784ull, 55001ull, 3309ull, 3309ull, 6564ull, 382878ull, 310479ull,
     147721ull, 126569ull},
    {"bfs-k", "HybridTier", 2359ull, 400080ull, 23945877ull, 142121ull,
     89749ull, 0ull, 717ull, 745ull, 6565ull, 313531ull, 231870ull,
     4366ull, 3088ull},
    {"bfs-k", "Memtis", 2359ull, 400080ull, 23944297ull, 142134ull,
     89727ull, 0ull, 717ull, 745ull, 6565ull, 313531ull, 231861ull,
     3752ull, 3186ull},
    {"bfs-k", "TPP", 2359ull, 400080ull, 35484585ull, 34831ull, 198793ull,
     3710ull, 246ull, 286ull, 6565ull, 313531ull, 233624ull, 11280ull,
     10921ull},
    {"bfs-k", "AutoNUMA", 2359ull, 400080ull, 37495645ull, 37484ull,
     196256ull, 4231ull, 417ull, 417ull, 6565ull, 313531ull, 233740ull,
     11820ull, 11308ull},
    {"pr-k", "HybridTier", 32783ull, 400001ull, 30019142ull, 115676ull,
     141433ull, 0ull, 1270ull, 1270ull, 6564ull, 322427ull, 257109ull,
     11250ull, 4562ull},
    {"pr-k", "Memtis", 32783ull, 400001ull, 29998574ull, 117010ull,
     140368ull, 0ull, 1271ull, 1309ull, 6564ull, 322427ull, 257378ull,
     8519ull, 5694ull},
    {"pr-k", "TPP", 32783ull, 400001ull, 43597824ull, 26997ull, 231325ull,
     5496ull, 309ull, 384ull, 6564ull, 322427ull, 258322ull, 13637ull,
     12384ull},
    {"pr-k", "AutoNUMA", 32783ull, 400001ull, 44182212ull, 29508ull,
     228795ull, 5496ull, 318ull, 355ull, 6564ull, 322427ull, 258303ull,
     13159ull, 12183ull},
};

TEST(Determinism, RefactoredEngineReproducesPreRefactorGoldens) {
  for (const GoldenCell& golden : kPreRefactorGoldens) {
    SCOPED_TRACE(std::string(golden.workload) + "/" + golden.policy);
    auto workload = MakeWorkload(
        golden.workload,
        std::string(golden.workload) == "zipf" ? 1.0 : 2.0, 11);
    auto policy = MakePolicy(golden.policy);
    SimulationConfig config;
    config.max_accesses = 400000;
    config.seed = 11;
    const SimulationResult r =
        RunSimulation(config, workload.get(), policy.get());
    EXPECT_EQ(r.ops, golden.ops);
    EXPECT_EQ(r.accesses, golden.accesses);
    EXPECT_EQ(r.duration_ns, golden.duration_ns);
    EXPECT_EQ(r.fast_mem_accesses, golden.fast_mem);
    EXPECT_EQ(r.slow_mem_accesses, golden.slow_mem);
    EXPECT_EQ(r.hint_faults, golden.hint_faults);
    EXPECT_EQ(r.migration.promoted_pages, golden.promoted);
    EXPECT_EQ(r.migration.demoted_pages, golden.demoted);
    EXPECT_EQ(r.samples_taken, golden.samples_taken);
    EXPECT_EQ(r.l1_app_misses, golden.l1_app);
    EXPECT_EQ(r.llc_app_misses, golden.llc_app);
    EXPECT_EQ(r.l1_tiering_misses, golden.l1_tier);
    EXPECT_EQ(r.llc_tiering_misses, golden.llc_tier);
  }
}

}  // namespace
}  // namespace hybridtier
