/**
 * @file
 * Unit tests for the sweep-execution subsystem (src/exec/): thread-pool
 * basics, grid expansion order, per-cell seed derivation stability, and
 * the subsystem's headline contract — a sweep's aggregated results and
 * CSV bytes are identical for every worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "workloads/factory.h"

namespace hybridtier {
namespace {

// --------------------------------------------------------- ThreadPool --

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::DefaultWorkers(), 1u);
}

// ---------------------------------------------------------- SweepGrid --

TEST(SweepGrid, ExpandsRowMajorFirstAxisSlowest) {
  SweepGrid grid;
  grid.AddAxis("a", {"x", "y"});
  grid.AddAxis("b", {"1", "2", "3"});
  EXPECT_EQ(grid.cell_count(), 6u);

  // Cell 4 = a[1], b[1] in row-major order.
  const SweepCell cell(&grid, 4, 0);
  EXPECT_EQ(cell.Get("a"), "y");
  EXPECT_EQ(cell.Get("b"), "2");
  EXPECT_EQ(cell.ValueIndex("a"), 1u);
  EXPECT_EQ(cell.ValueIndex("b"), 1u);

  // FlatIndex is the inverse of per-axis value decoding.
  for (size_t i = 0; i < grid.cell_count(); ++i) {
    EXPECT_EQ(grid.FlatIndex({grid.ValueIndexAt(i, 0),
                              grid.ValueIndexAt(i, 1)}),
              i);
  }
}

TEST(SweepGrid, EmptyGridHasNoCells) {
  EXPECT_EQ(SweepGrid().cell_count(), 0u);
}

// ----------------------------------------------------- seed derivation --

TEST(DeriveCellSeed, IsStableAcrossReleases) {
  // These constants pin the derivation for good: a change would silently
  // re-seed every sweep cell and invalidate recorded experiment CSVs.
  EXPECT_EQ(DeriveCellSeed(42, 0), 0x28efe333b266f103ULL);
  EXPECT_EQ(DeriveCellSeed(42, 1), 0x5fd30d2fcbef75e3ULL);
  EXPECT_EQ(DeriveCellSeed(42, 2), 0x6545d3b48b05c974ULL);
  EXPECT_EQ(DeriveCellSeed(42, 3), 0x09bc585a244823f2ULL);
  EXPECT_EQ(DeriveCellSeed(7, 0), 0xec779c3693f88501ULL);
}

TEST(DeriveCellSeed, DistinctAcrossCellsAndBases) {
  std::vector<uint64_t> seen;
  for (uint64_t base : {1ULL, 42ULL, 1234567ULL}) {
    for (uint64_t i = 0; i < 64; ++i) {
      seen.push_back(DeriveCellSeed(base, i));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// -------------------------------------------------------- SweepRunner --

TEST(SweepRunner, ResultsComeBackInCellOrder) {
  SweepGrid grid;
  grid.AddAxis("i", {"0", "1", "2", "3", "4", "5", "6", "7"});
  SweepOptions options;
  options.jobs = 4;
  options.report_wall_time = false;
  SweepRunner runner(options);
  const std::vector<size_t> results =
      runner.Run(grid, [](const SweepCell& cell) { return cell.index(); });
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

/** Headline metrics of one tiny simulation cell. */
struct CellDigest {
  uint64_t ops = 0;
  uint64_t accesses = 0;
  uint64_t duration_ns = 0;
  uint64_t promoted = 0;
  uint64_t demoted = 0;
  double median_latency_ns = 0.0;
  double throughput_mops = 0.0;

  bool operator==(const CellDigest&) const = default;
};

/** Runs the grid at the given worker count; cells use derived seeds. */
std::vector<CellDigest> RunSmallSweep(unsigned jobs) {
  SweepGrid grid;
  grid.AddAxis("policy", {"HybridTier", "Memtis"});
  grid.AddAxis("replicate", {"r0", "r1", "r2"});
  SweepOptions options;
  options.jobs = jobs;
  options.base_seed = 42;
  options.report_wall_time = false;
  SweepRunner runner(options);
  return runner.Run(grid, [](const SweepCell& cell) {
    // Each replicate runs its own derived seed: the sweep exercises
    // both the cell function's thread safety and seed derivation.
    auto workload = MakeWorkload("zipf", 0.05, cell.seed());
    auto policy = MakePolicy(cell.Get("policy"));
    SimulationConfig config;
    config.max_accesses = 60000;
    config.seed = cell.seed();
    const SimulationResult result =
        RunSimulation(config, workload.get(), policy.get());
    CellDigest digest;
    digest.ops = result.ops;
    digest.accesses = result.accesses;
    digest.duration_ns = result.duration_ns;
    digest.promoted = result.migration.promoted_pages;
    digest.demoted = result.migration.demoted_pages;
    digest.median_latency_ns = result.median_latency_ns;
    digest.throughput_mops = result.throughput_mops;
    return digest;
  });
}

/** Emits the digests the way a bench driver would write its CSV. */
std::string DigestCsvBytes(const std::vector<CellDigest>& digests,
                           const std::string& path) {
  TablePrinter table({"cell", "ops", "accesses", "duration_ns", "promoted",
                      "demoted", "p50", "mops"});
  for (size_t i = 0; i < digests.size(); ++i) {
    const CellDigest& digest = digests[i];
    table.AddRow({std::to_string(i), std::to_string(digest.ops),
                  std::to_string(digest.accesses),
                  std::to_string(digest.duration_ns),
                  std::to_string(digest.promoted),
                  std::to_string(digest.demoted),
                  FormatDouble(digest.median_latency_ns, 3),
                  FormatDouble(digest.throughput_mops, 6)});
  }
  table.WriteCsv(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

TEST(SweepRunner, AggregatedResultsAndCsvBytesAreJobsInvariant) {
  const std::vector<CellDigest> serial = RunSmallSweep(1);
  const std::vector<CellDigest> parallel = RunSmallSweep(8);

  // Bit-identical aggregated results, cell by cell.
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
  }

  // Byte-identical CSV emission.
  const std::string dir = ::testing::TempDir();
  const std::string serial_bytes =
      DigestCsvBytes(serial, dir + "/sweep_jobs1.csv");
  const std::string parallel_bytes =
      DigestCsvBytes(parallel, dir + "/sweep_jobs8.csv");
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST(SweepRunner, CellSeedsDeriveFromBaseSeedAndIndex) {
  SweepGrid grid;
  grid.AddAxis("i", {"0", "1", "2"});
  SweepOptions options;
  options.jobs = 2;
  options.base_seed = 42;
  options.report_wall_time = false;
  SweepRunner runner(options);
  const std::vector<uint64_t> seeds =
      runner.Run(grid, [](const SweepCell& cell) { return cell.seed(); });
  ASSERT_EQ(seeds.size(), 3u);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], DeriveCellSeed(42, i));
  }
}

}  // namespace
}  // namespace hybridtier
