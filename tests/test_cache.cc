/**
 * @file
 * Unit tests for src/cache: set-associative cache model and the
 * two-level hierarchy with per-owner attribution.
 */

#include <gtest/gtest.h>

#include "cache/cache_sim.h"
#include "cache/hierarchy.h"
#include "common/rng.h"
#include "common/units.h"

namespace hybridtier {
namespace {

CacheConfig SmallCache(uint64_t size_bytes = 4096, uint32_t ways = 4) {
  return CacheConfig{.size_bytes = size_bytes,
                     .ways = ways,
                     .line_size = 64};
}

// -------------------------------------------------------------- Cache --

TEST(Cache, GeometryComputed) {
  Cache cache(SmallCache(4096, 4));
  // 4096 B / 64 B lines = 64 lines / 4 ways = 16 sets.
  EXPECT_EQ(cache.num_sets(), 16u);
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(SmallCache());
  EXPECT_FALSE(cache.AccessLine(100, AccessOwner::kApp));
  EXPECT_TRUE(cache.AccessLine(100, AccessOwner::kApp));
  EXPECT_EQ(cache.stats().misses[0], 1u);
  EXPECT_EQ(cache.stats().hits[0], 1u);
}

TEST(Cache, LruEviction) {
  Cache cache(SmallCache(4096, 4));  // 16 sets, 4 ways.
  // Five lines mapping to set 0: addresses differing by num_sets.
  const uint64_t set0[] = {0, 16, 32, 48, 64};
  for (const uint64_t line : set0) {
    EXPECT_FALSE(cache.AccessLine(line, AccessOwner::kApp));
  }
  // Line 0 was LRU and must have been evicted by line 64.
  EXPECT_FALSE(cache.AccessLine(0, AccessOwner::kApp));
  // Line 64 is still resident (it was just inserted, then 0 evicted 16).
  EXPECT_TRUE(cache.AccessLine(64, AccessOwner::kApp));
}

TEST(Cache, LruRefreshOnHit) {
  Cache cache(SmallCache(4096, 4));
  const uint64_t set0[] = {0, 16, 32, 48};
  for (const uint64_t line : set0) cache.AccessLine(line, AccessOwner::kApp);
  // Touch line 0 so it becomes MRU, then insert a new conflicting line.
  cache.AccessLine(0, AccessOwner::kApp);
  cache.AccessLine(64, AccessOwner::kApp);
  // Line 16 (the LRU) was evicted; line 0 survived.
  EXPECT_TRUE(cache.AccessLine(0, AccessOwner::kApp));
  EXPECT_FALSE(cache.AccessLine(16, AccessOwner::kApp));
}

TEST(Cache, OwnerAttributionSeparated) {
  Cache cache(SmallCache());
  cache.AccessLine(1, AccessOwner::kApp);
  cache.AccessLine(2, AccessOwner::kTiering);
  cache.AccessLine(2, AccessOwner::kTiering);
  EXPECT_EQ(cache.stats().misses[0], 1u);
  EXPECT_EQ(cache.stats().misses[1], 1u);
  EXPECT_EQ(cache.stats().hits[1], 1u);
  EXPECT_NEAR(cache.stats().MissShare(AccessOwner::kTiering), 0.5, 1e-9);
}

TEST(Cache, FlushInvalidatesKeepsStats) {
  Cache cache(SmallCache());
  cache.AccessLine(5, AccessOwner::kApp);
  cache.Flush();
  EXPECT_FALSE(cache.AccessLine(5, AccessOwner::kApp));
  EXPECT_EQ(cache.stats().misses[0], 2u);
}

TEST(Cache, ResetStatsKeepsContents) {
  Cache cache(SmallCache());
  cache.AccessLine(5, AccessOwner::kApp);
  cache.ResetStats();
  EXPECT_TRUE(cache.AccessLine(5, AccessOwner::kApp));
  EXPECT_EQ(cache.stats().hits[0], 1u);
  EXPECT_EQ(cache.stats().misses[0], 0u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache cache(SmallCache(4096, 4));  // 64 lines.
  // Cycle through 256 lines twice: second pass still misses everywhere.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t line = 0; line < 256; ++line) {
      cache.AccessLine(line, AccessOwner::kApp);
    }
  }
  EXPECT_EQ(cache.stats().total_misses(), 512u);
}

TEST(Cache, WorkingSetFittingCacheAllHitsSecondPass) {
  Cache cache(SmallCache(4096, 4));
  for (uint64_t line = 0; line < 32; ++line) {
    cache.AccessLine(line, AccessOwner::kApp);
  }
  for (uint64_t line = 0; line < 32; ++line) {
    EXPECT_TRUE(cache.AccessLine(line, AccessOwner::kApp));
  }
}

// ---------------------------------------------------------- Hierarchy --

HierarchyConfig SmallHierarchy() {
  HierarchyConfig config;
  config.l1 = CacheConfig{.size_bytes = 1024, .ways = 4, .line_size = 64};
  config.llc = CacheConfig{.size_bytes = 16384, .ways = 8, .line_size = 64};
  return config;
}

TEST(Hierarchy, LevelsReportedInOrder) {
  CacheHierarchy hierarchy(SmallHierarchy());
  // Cold: miss everywhere.
  EXPECT_EQ(hierarchy.Access(0, AccessOwner::kApp), HitLevel::kMemory);
  // Hot in L1.
  EXPECT_EQ(hierarchy.Access(0, AccessOwner::kApp), HitLevel::kL1);
}

TEST(Hierarchy, LlcCatchesL1Evictions) {
  CacheHierarchy hierarchy(SmallHierarchy());
  // Fill far beyond L1 (16 lines) but within LLC (256 lines).
  for (uint64_t addr = 0; addr < 64 * kCacheLineSize;
       addr += kCacheLineSize) {
    hierarchy.Access(addr, AccessOwner::kApp);
  }
  // Address 0 fell out of L1 but not out of the LLC.
  EXPECT_EQ(hierarchy.Access(0, AccessOwner::kApp), HitLevel::kLlc);
}

TEST(Hierarchy, SeparateL1sSharedLlc) {
  CacheHierarchy hierarchy(SmallHierarchy());
  hierarchy.Access(0, AccessOwner::kApp);
  // Tiering core's L1 does not contain the line, but the LLC does.
  EXPECT_EQ(hierarchy.Access(0, AccessOwner::kTiering), HitLevel::kLlc);
  // Now it is in the tiering L1 too.
  EXPECT_EQ(hierarchy.Access(0, AccessOwner::kTiering), HitLevel::kL1);
}

TEST(Hierarchy, TieringTrafficEvictsAppLines) {
  // The interference mechanism behind paper Fig 5: metadata updates
  // evict application lines from the shared LLC.
  CacheHierarchy hierarchy(SmallHierarchy());
  hierarchy.Access(0, AccessOwner::kApp);
  // Tiering floods the LLC (16 KiB = 256 lines).
  for (uint64_t i = 1; i <= 2048; ++i) {
    hierarchy.Access(i * kCacheLineSize, AccessOwner::kTiering);
  }
  // Evict line 0 from the app's private L1 (4 sets x 4 ways) by touching
  // four other lines of its set; the tiering flood cannot do that.
  for (uint64_t conflict = 4; conflict <= 16; conflict += 4) {
    hierarchy.Access(conflict * kCacheLineSize, AccessOwner::kApp);
  }
  // The app line is gone from both its L1 and the shared LLC.
  EXPECT_EQ(hierarchy.Access(0, AccessOwner::kApp), HitLevel::kMemory);
}

TEST(Hierarchy, MissShareAttribution) {
  CacheHierarchy hierarchy(SmallHierarchy());
  for (uint64_t i = 0; i < 100; ++i) {
    hierarchy.Access(i * kCacheLineSize, AccessOwner::kApp);
  }
  for (uint64_t i = 1000; i < 1100; ++i) {
    hierarchy.Access(i * kCacheLineSize, AccessOwner::kTiering);
  }
  EXPECT_NEAR(hierarchy.TieringLlcMissShare(), 0.5, 0.05);
  EXPECT_NEAR(hierarchy.TieringL1MissShare(), 0.5, 0.05);
  EXPECT_EQ(hierarchy.L1Misses(AccessOwner::kApp), 100u);
  EXPECT_EQ(hierarchy.LlcMisses(AccessOwner::kTiering), 100u);
}

TEST(Hierarchy, ResetStats) {
  CacheHierarchy hierarchy(SmallHierarchy());
  hierarchy.Access(0, AccessOwner::kApp);
  hierarchy.ResetStats();
  EXPECT_EQ(hierarchy.L1Misses(AccessOwner::kApp), 0u);
  EXPECT_EQ(hierarchy.llc_stats().total_misses(), 0u);
}

TEST(Hierarchy, ByteAddressesMapToLines) {
  CacheHierarchy hierarchy(SmallHierarchy());
  hierarchy.Access(100, AccessOwner::kApp);  // Line 1 (64..127).
  EXPECT_EQ(hierarchy.Access(127, AccessOwner::kApp), HitLevel::kL1);
  EXPECT_EQ(hierarchy.Access(128, AccessOwner::kApp), HitLevel::kMemory);
}

}  // namespace
}  // namespace hybridtier
