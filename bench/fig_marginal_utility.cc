/**
 * @file
 * Marginal-utility vs hit-density quota allocation (beyond the paper,
 * Equilibria-style): a mixed tenant matrix — two Zipf hot sets, a CDN
 * cache, and a streaming bwaves sweep — shares a 1:8 fast tier under
 * the fair-share wrapper, once with the density heuristic and once with
 * the ghost-MRC marginal-utility water-filler. The per-tenant budgeted
 * sampler is on in both runs so the comparison is purely about the
 * allocator.
 *
 * Shape targets: hit density misprices a streaming tenant — its pages
 * are touched once per sweep, so samples/resident-unit says nothing
 * about what capacity would *gain* it, and the division drifts away
 * from the weighted shares (here it pins the streamer at the floor
 * while handing a hot set capacity it cannot convert). The marginal
 * controller allocates by measured gain: every hot set gets exactly its
 * reuse set, the remainder is spread by weight, and both weighted Jain
 * fairness and the aggregate fast-hit ratio end at least as good as
 * under density. The bench exits nonzero when the marginal controller
 * loses on either metric, so CI catches allocator regressions.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3000000;
constexpr uint64_t kWarmup = 500000;
constexpr uint64_t kSeed = 42;
constexpr double kRatio = 1.0 / 8;

// Two hot sets a cache and a streamer: the matrix where density and
// marginal utility disagree the most.
const char* kTenantList = "zipf,bwaves,zipf:2,cdn";

struct ModeResult {
  SimulationResult result;
  uint64_t fast_capacity_units = 0;
};

ModeResult RunMode(QuotaMode mode) {
  auto mux = MakeMuxWorkload(ParseTenantList(kTenantList), kSeed);
  FairShareConfig fair_config;
  fair_config.quota_mode = mode;
  auto policy = std::make_unique<FairSharePolicy>(
      MakePolicy("HybridTier"), mux->directory(), fair_config);

  SimulationConfig config;
  config.fast_tier_fraction = kRatio;
  config.max_accesses = kAccessBudget;
  config.warmup_accesses = kWarmup;
  config.seed = kSeed;
  config.tenant_sample_budget = true;

  Simulation simulation(config, mux.get(), policy.get());
  ModeResult mode_result;
  mode_result.result = simulation.Run();
  mode_result.fast_capacity_units = simulation.fast_capacity_units();
  return mode_result;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig_marginal_utility",
         "density vs marginal-utility quota allocation, mixed "
         "zipf+streaming tenants at 1:8");

  // Both mode cells pin kSeed: the gate below is a paired comparison,
  // so the two allocators must divide the same access stream.
  SweepGrid grid;
  grid.AddAxis("mode", {"density", "marginal"});
  SweepRunner runner = MakeSweepRunner(options, "fig_marginal_utility");
  const std::vector<ModeResult> runs =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunMode(ParseQuotaMode(cell.Get("mode")));
      });

  TablePrinter table({"mode", "tenant", "weight", "quota", "fast units",
                      "share %", "fast-fill %", "MU", "period"});
  table.SetTitle("per-tenant allocation");

  double jain[2] = {0.0, 0.0};
  double hit_ratio[2] = {0.0, 0.0};
  for (const QuotaMode mode : {QuotaMode::kDensity, QuotaMode::kMarginal}) {
    const size_t m = static_cast<size_t>(mode);
    const ModeResult& run = runs[m];
    jain[m] = run.result.weighted_jain_fairness;
    hit_ratio[m] = run.result.FastAccessFraction();
    for (const TenantResult& tenant : run.result.tenants) {
      table.AddRow(
          {QuotaModeName(mode), tenant.name, FormatDouble(tenant.weight, 1),
           std::to_string(tenant.quota_units),
           std::to_string(tenant.fast_resident_units),
           FormatDouble(static_cast<double>(tenant.fast_resident_units) *
                            100.0 /
                            static_cast<double>(run.fast_capacity_units),
                        1),
           FormatDouble(tenant.FastAccessFraction() * 100, 1),
           FormatDouble(tenant.marginal_utility, 1),
           std::to_string(tenant.sample_period)});
    }
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig_marginal_utility"));

  const size_t density = static_cast<size_t>(QuotaMode::kDensity);
  const size_t marginal = static_cast<size_t>(QuotaMode::kMarginal);
  std::cout << "weighted Jain:   density " << FormatDouble(jain[density], 3)
            << "  marginal " << FormatDouble(jain[marginal], 3) << "\n"
            << "fast-hit ratio:  density "
            << FormatDouble(hit_ratio[density], 3) << "  marginal "
            << FormatDouble(hit_ratio[marginal], 3) << "\n";

  // Allocator-regression gate (CI smoke): marginal must not lose to
  // density on either headline metric (tiny epsilon for run noise).
  constexpr double kEpsilon = 0.005;
  const bool ok = jain[marginal] >= jain[density] - kEpsilon &&
                  hit_ratio[marginal] >= hit_ratio[density] - kEpsilon;
  if (!ok) {
    std::cout << "ALLOCATOR REGRESSION: marginal mode lost to density\n";
  }
  return ok ? 0 : 1;
}
