/**
 * @file
 * Simulator throughput harness — the perf trajectory of the hot path
 * itself (host accesses/second), not a paper figure.
 *
 * Measures wall-clock simulated-accesses-per-second for each (workload x
 * policy) cell of a fixed zipf+GAP matrix and writes
 * `BENCH_throughput.json` next to the CSV. Two knobs select the engine
 * configuration under test:
 *
 *   --live     generate ops live in the loop (default: record the op
 *              stream once per workload and replay it — bit-identical
 *              results, generator off the hot path; see
 *              workloads/trace.h)
 *   --legacy   force per-access policy dispatch (default: batched
 *              execution; results are bit-identical either way)
 *
 * Methodology: each cell runs `--reps N` times (default 3) and reports
 * the best run (minimum wall time) — the standard way to strip scheduler
 * and frequency noise from a throughput measurement. Workload
 * construction and trace recording are untimed; the timer wraps
 * `Simulation::Run()` only.
 *
 * Unlike the figure benches, this binary's outputs are *measurements*:
 * wall times vary run to run and across `--jobs`, so
 * `BENCH_throughput.json` and the CSV are exempt from the sweep
 * jobs-invariance contract (keep them out of CSV-diff gates; for stable
 * numbers run `--jobs 1`).
 *
 * Regression gate (CI): `--check FILE [--min-ratio R]` compares this
 * run's per-policy geomean against the `"current"` section of a
 * committed BENCH_throughput.json and exits nonzero if any policy falls
 * below R x the committed value (default R = 0.9, i.e. fail on a >10%
 * regression). The committed numbers come from a slow 1-core container,
 * so CI hardware regressing below them signals a real engine
 * regression, not machine variance.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "obs/stage_profiler.h"
#include "workloads/trace.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 6000000;
constexpr uint64_t kSeed = 42;

const std::vector<std::string>& Workloads() {
  static const std::vector<std::string> ids = {"zipf", "bfs-k", "pr-k"};
  return ids;
}

const std::vector<std::string>& Policies() {
  static const std::vector<std::string> names = {"HybridTier", "Memtis",
                                                 "TPP", "AutoNUMA"};
  return names;
}

double WorkloadScale(const std::string& id) {
  return id == "zipf" ? 1.0 : 2.0;
}

struct Options {
  unsigned jobs = 0;
  unsigned reps = 3;
  bool live = false;     //!< Generate ops in the loop (no replay).
  bool legacy = false;   //!< Per-access policy dispatch.
  std::string check_file;
  double min_ratio = 0.9;
  /**
   * >0 enables the load-immune engine gate: measure the legacy-dispatch
   * live-generation configuration in the same invocation and require
   * the primary configuration's per-policy geomean to stay at least
   * this factor above it. Both sides slow down together under host
   * load or on weaker hardware, so the ratio detects genuine engine
   * regressions where an absolute accesses/sec floor cannot.
   */
  double check_relative = 0.0;
  /**
   * Sample every Nth op through a StageProfiler and print the
   * per-stage ns/access breakdown (generation / cache / policy /
   * sampler / migration / accounting) after the table. The sampled
   * clock reads inflate wall times slightly, so don't combine with
   * --check runs whose numbers you intend to commit.
   */
  bool profile_stages = false;
};

[[noreturn]] void Usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [--jobs N] [--reps N] [--live] [--legacy]\n"
      "          [--check FILE] [--min-ratio R]\n"
      "  --jobs N      sweep worker threads (timings are only stable\n"
      "                with --jobs 1)\n"
      "  --reps N      runs per cell; the best is reported (default 3)\n"
      "  --live        generate ops live instead of trace replay\n"
      "  --legacy      per-access policy dispatch instead of batched\n"
      "  --check FILE  fail if any per-policy geomean falls below\n"
      "                min-ratio x FILE's \"current\" geomean\n"
      "  --min-ratio R regression tolerance for --check (default 0.9)\n"
      "  --check-relative R  also measure the legacy+live engine in\n"
      "                this invocation and fail if the primary engine's\n"
      "                geomean advantage falls below R (load-immune)\n"
      "  --profile-stages  sample engine stages (generation, cache,\n"
      "                policy, sampler, migration, accounting) and\n"
      "                print the per-policy ns/access breakdown\n",
      argv0);
  std::exit(code);
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") Usage(argv[0], 0);
    if (arg == "--jobs") {
      options.jobs = static_cast<unsigned>(
          std::strtoul(next_value("--jobs"), nullptr, 10));
      continue;
    }
    if (arg == "--reps") {
      options.reps = static_cast<unsigned>(
          std::strtoul(next_value("--reps"), nullptr, 10));
      if (options.reps == 0) options.reps = 1;
      continue;
    }
    if (arg == "--live") {
      options.live = true;
      continue;
    }
    if (arg == "--legacy") {
      options.legacy = true;
      continue;
    }
    if (arg == "--check") {
      options.check_file = next_value("--check");
      continue;
    }
    if (arg == "--min-ratio") {
      options.min_ratio = std::strtod(next_value("--min-ratio"), nullptr);
      continue;
    }
    if (arg == "--check-relative") {
      options.check_relative =
          std::strtod(next_value("--check-relative"), nullptr);
      continue;
    }
    if (arg == "--profile-stages") {
      options.profile_stages = true;
      continue;
    }
    std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
    std::exit(1);
  }
  return options;
}

struct CellResult {
  std::string workload;
  std::string policy;
  uint64_t accesses = 0;
  double best_wall_s = 0.0;
  double maccs = 0.0;  //!< Million simulated accesses per wall second.
};

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SimulationConfig CellConfig(bool legacy) {
  SimulationConfig config;
  config.max_accesses = kAccessBudget;
  config.seed = kSeed;
  config.batch_execution = !legacy;
  return config;
}

/** Runs one cell `reps` times; returns the best (min-wall) run. */
CellResult MeasureCell(const std::string& workload_id,
                       const std::string& policy_name,
                       const std::shared_ptr<const RecordedTrace>& trace,
                       unsigned reps, bool legacy,
                       StageProfiler* profiler) {
  CellResult cell;
  cell.workload = workload_id;
  cell.policy = policy_name;
  cell.best_wall_s = 1e30;
  for (unsigned rep = 0; rep < reps; ++rep) {
    std::unique_ptr<Workload> live_workload;
    std::unique_ptr<ReplayWorkload> replay;
    Workload* workload = nullptr;
    if (trace != nullptr) {
      replay = std::make_unique<ReplayWorkload>(trace);
      workload = replay.get();
    } else {
      live_workload =
          MakeWorkload(workload_id, WorkloadScale(workload_id), kSeed);
      workload = live_workload.get();
    }
    auto policy = MakePolicy(policy_name);
    SimulationConfig config = CellConfig(legacy);
    // The profiler accumulates across all reps of this cell.
    config.telemetry.stages = profiler;
    Simulation simulation(config, workload, policy.get());
    const uint64_t start = NowNs();
    const SimulationResult result = simulation.Run();
    const double wall_s =
        static_cast<double>(NowNs() - start) / 1e9;
    cell.accesses = result.accesses;
    cell.best_wall_s = std::min(cell.best_wall_s, wall_s);
  }
  cell.maccs = static_cast<double>(cell.accesses) / cell.best_wall_s / 1e6;
  return cell;
}

/**
 * Measures the whole matrix in one configuration. When `profilers` is
 * non-null it must hold one StageProfiler per grid cell; each cell
 * writes only its own slot (safe under --jobs).
 */
std::vector<CellResult> MeasureMatrix(
    const Options& options, bool live, bool legacy,
    const std::map<std::string, std::shared_ptr<const RecordedTrace>>&
        traces,
    std::vector<StageProfiler>* profilers = nullptr) {
  SweepGrid grid;
  grid.AddAxis("workload", Workloads());
  grid.AddAxis("policy", Policies());
  BenchOptions bench_options;
  bench_options.jobs = options.jobs == 0 ? 1 : options.jobs;
  SweepRunner runner = MakeSweepRunner(bench_options, "bench_throughput");
  return runner.Run(grid, [&](const SweepCell& cell) {
    const std::string& workload_id = cell.Get("workload");
    auto it = traces.find(workload_id);
    return MeasureCell(workload_id, cell.Get("policy"),
                       live || it == traces.end() ? nullptr : it->second,
                       options.reps, legacy,
                       profilers == nullptr ? nullptr
                                            : &(*profilers)[cell.index()]);
  });
}

std::map<std::string, double> GeomeansByPolicy(
    const std::vector<CellResult>& cells) {
  std::map<std::string, double> result;
  for (const std::string& policy : Policies()) {
    std::vector<double> values;
    for (const CellResult& cell : cells) {
      if (cell.policy == policy) values.push_back(cell.maccs);
    }
    result[policy] = GeoMean(values);
  }
  return result;
}

void WriteJson(const std::string& path, const Options& options,
               const std::vector<CellResult>& cells,
               const std::map<std::string, double>& geomeans) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"bench_throughput\",\n"
      << "  \"generation\": \""
      << (options.live ? "live" : "replay") << "\",\n"
      << "  \"engine\": \"" << (options.legacy ? "legacy" : "batch")
      << "\",\n"
      << "  \"access_budget\": " << kAccessBudget << ",\n"
      << "  \"reps\": " << options.reps << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"workload\": \"%s\", \"policy\": \"%s\", "
                  "\"accesses\": %llu, \"best_wall_s\": %.4f, "
                  "\"maccs\": %.3f}%s\n",
                  cell.workload.c_str(), cell.policy.c_str(),
                  static_cast<unsigned long long>(cell.accesses),
                  cell.best_wall_s, cell.maccs,
                  i + 1 == cells.size() ? "" : ",");
    out << line;
  }
  out << "  ],\n  \"geomean_maccs\": {";
  bool first = true;
  for (const auto& [policy, value] : geomeans) {
    char entry[128];
    std::snprintf(entry, sizeof(entry), "%s\"%s\": %.3f",
                  first ? "" : ", ", policy.c_str(), value);
    out << entry;
    first = false;
  }
  out << "}\n}\n";
}

/**
 * Extracts the per-policy geomeans from the `"current"` section of a
 * committed BENCH_throughput.json (falling back to a top-level
 * `"geomean_maccs"` for files this binary wrote itself). Minimal
 * scanning parser for the file formats we emit.
 */
std::map<std::string, double> ReadCommittedGeomeans(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open check file '%s'\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  // Prefer the "current" section when present (committed trajectory
  // files hold both a pre-PR baseline and the current engine's numbers).
  const size_t current = text.find("\"current\"");
  size_t start = text.find("\"geomean_maccs\"",
                           current == std::string::npos ? 0 : current);
  if (start == std::string::npos) {
    std::fprintf(stderr, "no geomean_maccs in '%s'\n", path.c_str());
    std::exit(1);
  }
  const size_t open = text.find('{', start);
  const size_t close = text.find('}', open);
  std::map<std::string, double> result;
  size_t pos = open;
  while (pos < close) {
    const size_t key_begin = text.find('"', pos);
    if (key_begin == std::string::npos || key_begin >= close) break;
    const size_t key_end = text.find('"', key_begin + 1);
    const size_t colon = text.find(':', key_end);
    result[text.substr(key_begin + 1, key_end - key_begin - 1)] =
        std::strtod(text.c_str() + colon + 1, nullptr);
    pos = text.find(',', colon);
    if (pos == std::string::npos) break;
  }
  return result;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const Options options = ParseArgs(argc, argv);
  Banner("bench_throughput",
         std::string("simulator accesses/sec, ") +
             (options.live ? "live generation" : "trace replay") + ", " +
             (options.legacy ? "legacy dispatch" : "batched execution"));

  // Record each workload's op stream once, outside the timed region;
  // every policy cell replays the same immutable trace.
  std::map<std::string, std::shared_ptr<const RecordedTrace>> traces;
  if (!options.live) {
    for (const std::string& id : Workloads()) {
      auto workload = MakeWorkload(id, WorkloadScale(id), kSeed);
      traces[id] = std::make_shared<const RecordedTrace>(
          RecordTrace(*workload, kAccessBudget));
    }
  } else {
    // Live mode still pre-builds one workload per id so shared graph
    // construction (CachedGraph) happens before any timer starts.
    for (const std::string& id : Workloads()) {
      MakeWorkload(id, WorkloadScale(id), kSeed);
    }
  }

  std::vector<StageProfiler> profilers;
  if (options.profile_stages) {
    profilers.resize(Workloads().size() * Policies().size());
  }
  const std::vector<CellResult> cells = MeasureMatrix(
      options, options.live, options.legacy, traces,
      options.profile_stages ? &profilers : nullptr);

  TablePrinter table({"workload", "policy", "accesses", "best wall (s)",
                      "Macc/s"});
  table.SetTitle("Simulator throughput (best of " +
                 std::to_string(options.reps) + ")");
  for (const CellResult& cell : cells) {
    char wall[32], maccs[32];
    std::snprintf(wall, sizeof(wall), "%.3f", cell.best_wall_s);
    std::snprintf(maccs, sizeof(maccs), "%.2f", cell.maccs);
    table.AddRow({cell.workload, cell.policy,
                  std::to_string(cell.accesses), wall, maccs});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("bench_throughput"));

  const std::map<std::string, double> geomeans = GeomeansByPolicy(cells);
  for (const auto& [policy, value] : geomeans) {
    std::printf("[bench_throughput] %s geomean: %.2f Macc/s\n",
                policy.c_str(), value);
  }

  if (options.profile_stages) {
    // One merged breakdown per policy (across its workloads), then the
    // whole-matrix aggregate — the measured version of the ROADMAP's
    // ns/access floor attribution.
    for (const std::string& policy : Policies()) {
      StageProfiler merged;
      for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].policy == policy) merged.Merge(profilers[i]);
      }
      std::printf("[bench_throughput] stage profile: %s\n%s",
                  policy.c_str(), merged.Report().c_str());
    }
    StageProfiler all;
    for (const StageProfiler& profiler : profilers) all.Merge(profiler);
    std::printf("[bench_throughput] stage profile: all policies\n%s",
                all.Report().c_str());
  }
  // Never clobber a committed trajectory file: the repo-root
  // BENCH_throughput.json carries the curated baseline_pre_pr /
  // current sections the regression gate reads, and this binary run
  // from the repo root would otherwise silently replace it with
  // whatever this host measures.
  std::string out_path = "BENCH_throughput.json";
  {
    std::ifstream existing(out_path);
    std::stringstream buffer;
    if (existing) buffer << existing.rdbuf();
    if (buffer.str().find("\"baseline_pre_pr\"") != std::string::npos) {
      out_path = "BENCH_throughput.new.json";
      std::printf(
          "[bench_throughput] BENCH_throughput.json holds a committed "
          "trajectory; writing %s instead\n",
          out_path.c_str());
    }
  }
  WriteJson(out_path, options, cells, geomeans);
  std::printf("[bench_throughput] wrote %s\n", out_path.c_str());

  if (!options.check_file.empty()) {
    const std::map<std::string, double> committed =
        ReadCommittedGeomeans(options.check_file);
    bool failed = false;
    for (const auto& [policy, reference] : committed) {
      const auto it = geomeans.find(policy);
      if (it == geomeans.end()) continue;
      const double floor = options.min_ratio * reference;
      const bool below = it->second < floor;
      std::printf("[bench_throughput] check %s: %.2f vs committed %.2f "
                  "(floor %.2f) %s\n",
                  policy.c_str(), it->second, reference, floor,
                  below ? "FAIL" : "ok");
      failed |= below;
    }
    if (failed) {
      std::fprintf(stderr,
                   "[bench_throughput] throughput regressed more than "
                   "%.0f%% against %s\n",
                   (1.0 - options.min_ratio) * 100.0,
                   options.check_file.c_str());
      return 1;
    }
  }

  if (options.check_relative > 0.0) {
    // Load-immune engine gate: the reference (legacy dispatch, live
    // generation) runs on the same machine in the same minute, so host
    // speed and neighbor load cancel out of the ratio.
    std::printf("[bench_throughput] measuring legacy+live reference for "
                "the relative gate\n");
    const std::vector<CellResult> reference = MeasureMatrix(
        options, /*live=*/true, /*legacy=*/true, traces);
    const std::map<std::string, double> reference_geomeans =
        GeomeansByPolicy(reference);
    bool failed = false;
    for (const auto& [policy, value] : geomeans) {
      const double ref = reference_geomeans.at(policy);
      const double ratio = ref > 0.0 ? value / ref : 0.0;
      const bool below = ratio < options.check_relative;
      std::printf("[bench_throughput] relative %s: %.2f vs legacy+live "
                  "%.2f = %.2fx (floor %.2fx) %s\n",
                  policy.c_str(), value, ref, ratio,
                  options.check_relative, below ? "FAIL" : "ok");
      failed |= below;
    }
    if (failed) {
      std::fprintf(stderr,
                   "[bench_throughput] engine advantage fell below "
                   "%.2fx of the legacy path\n",
                   options.check_relative);
      return 1;
    }
  }
  return 0;
}
