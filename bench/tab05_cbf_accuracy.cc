/**
 * @file
 * Table 5 — accuracy of migration decisions made by the counting bloom
 * filter, as a function of CBF size.
 *
 * Ground truth is an exact per-page counter table fed the identical
 * CacheLib sample stream. A migration decision "agrees" when the CBF
 * and the exact table classify a page on the same side of the hotness
 * threshold. Each filter size is an independent sweep cell over the
 * same seeded stream. The paper reports >= 99.4% agreement until the
 * filter is severely undersized (its 8 MB point drops to 96.9%); our
 * sizes are the x1000-scaled equivalents of the paper's
 * {256,128,64,32,8} MB.
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "mem/page.h"
#include "probstruct/blocked_cbf.h"
#include "probstruct/exact_table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kSampleBudget = 1000000;
constexpr uint64_t kCoolingPeriod = 100000;  // As in the live tracker.
constexpr uint32_t kThreshold = 4;

double MeasureAgreement(size_t cbf_bytes) {
  auto workload = MakeWorkload("cdn", DefaultScaleFor("cdn"), 42);
  const CbfSizing sizing{.num_counters = cbf_bytes * 2,  // 4-bit counters.
                         .num_hashes = 4,
                         .counter_bits = 4};
  BlockedCountingBloomFilter cbf(sizing, 7);
  ExactCounterTable exact(workload->footprint_pages(), /*max=*/15);

  OpTrace op;
  uint64_t samples = 0;
  uint64_t since_cooling = 0;
  uint64_t countdown = 8;
  uint64_t agree = 0;
  uint64_t decisions = 0;
  while (samples < kSampleBudget) {
    workload->NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      if (--countdown > 0) continue;
      countdown = 8;
      const PageId page = PageOfAddr(access.addr);
      const uint32_t cbf_count = cbf.Increment(page);
      const uint32_t exact_count = exact.Increment(page);
      ++samples;
      // A migration decision is taken per sample: does the CBF put the
      // page on the same side of the hotness threshold as the exact
      // counter would?
      ++decisions;
      agree += (cbf_count >= kThreshold) == (exact_count >= kThreshold);
      // Both sides cool exactly as the frequency tracker does, which
      // keeps filter occupancy bounded in the live system too.
      if (++since_cooling >= kCoolingPeriod) {
        since_cooling = 0;
        cbf.CoolByHalving();
        exact.CoolByHalving();
      }
    }
  }
  return static_cast<double>(agree) / static_cast<double>(decisions);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("tab05", "CBF migration-decision accuracy vs filter size");

  // Scaled analogues of the paper's 256/128/64/32/8 MB sweep.
  const std::vector<size_t> sizes_kib = {256, 128, 64, 32, 8};
  std::vector<std::string> labels;
  for (const size_t size : sizes_kib) {
    labels.push_back(std::to_string(size));
  }
  SweepGrid grid;
  grid.AddAxis("size_kib", labels);
  SweepRunner runner = MakeSweepRunner(options, "tab05");
  const std::vector<double> agreements =
      runner.Run(grid, [&sizes_kib](const SweepCell& cell) {
        return MeasureAgreement(sizes_kib[cell.ValueIndex("size_kib")] *
                                1024);
      });

  TablePrinter table({"CBF size (KiB)", "decision agreement"});
  table.SetTitle("Table 5: CBF vs exact-table migration agreement");
  double first = 0.0, last = 0.0;
  for (size_t i = 0; i < sizes_kib.size(); ++i) {
    const double agreement = agreements[i];
    if (first == 0.0) first = agreement;
    last = agreement;
    table.AddRow({labels[i], FormatDouble(agreement * 100, 2) + "%"});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("tab05_cbf_accuracy"));
  std::cout << "paper: 99.72% / 99.65% / 99.62% / 99.42% / 96.92% — "
               "accuracy stays high until the filter is severely "
               "undersized (largest here: "
            << FormatDouble(first * 100, 2) << "%, smallest: "
            << FormatDouble(last * 100, 2) << "%)\n";
  return 0;
}
