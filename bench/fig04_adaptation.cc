/**
 * @file
 * Figure 4 — adapting to a hotness-distribution change (CacheLib).
 *
 * A CacheLib workload runs to steady state; at the churn point 2/3 of
 * the hot set turns cold at once (the paper reproduces Meta's reported
 * churn this way, at t=1800 s). The bench prints the median-latency
 * timeline for AutoNUMA, Memtis, and HybridTier and the time each takes
 * to return within 5% of its steady-state latency.
 *
 * Shape targets: HybridTier re-converges several times faster than
 * Memtis (paper: 250 s vs ~1400 s); AutoNUMA stays high and noisy.
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/bench_util.h"
#include "common/percentile.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 45000000;
constexpr TimeNs kChurnTime = 1500 * kMillisecond;
constexpr TimeNs kStatsInterval = 10 * kMillisecond;
/** Memtis cooling period for this experiment: large enough to capture
 *  the distribution accurately (Fig 3b) — which is exactly what makes
 *  its EMA scores lag after the churn. */
constexpr uint64_t kMemtisCooling = 150000;

struct AdaptResult {
  SimulationResult sim;
  double steady_latency = 0.0;
  TimeNs adapt_ns = UINT64_MAX;
};

AdaptResult RunPolicy(const std::string& policy_name) {
  RunSpec spec;
  spec.workload_id = "cdn";
  spec.workload_scale = DefaultScaleFor("cdn");
  spec.policy_name = policy_name;
  spec.fast_fraction = 1.0 / 8;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = 0;
  spec.churn = {{.time_ns = kChurnTime, .hot_fraction = 2.0 / 3}};
  spec.base_config.stats_interval_ns = kStatsInterval;
  spec.policy_options.memtis_cooling_samples = kMemtisCooling;

  AdaptResult result;
  result.sim = RunCell(spec);

  // Steady state = median of the timeline points well past the churn
  // (the last quarter of the run).
  const TimeSeries& series = result.sim.latency_timeline;
  WindowedPercentile tail(256);
  const size_t start = series.size() * 3 / 4;
  for (size_t i = start; i < series.size(); ++i) tail.Add(series.values[i]);
  result.steady_latency = tail.Median();
  const uint64_t settle = FirstSustainedEntryNs(
      series, result.steady_latency, 0.05, /*sustain_points=*/8,
      kChurnTime);
  if (settle != UINT64_MAX && settle > kChurnTime) {
    result.adapt_ns = settle - kChurnTime;
  }
  return result;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig04", "median-latency timeline across a distribution change");

  const std::vector<std::string> policies = {"AutoNUMA", "Memtis",
                                             "HybridTier"};
  SweepGrid grid;
  grid.AddAxis("policy", policies);
  SweepRunner runner = MakeSweepRunner(options, "fig04");
  const std::vector<AdaptResult> cells = runner.Run(
      grid,
      [](const SweepCell& cell) { return RunPolicy(cell.Get("policy")); });
  std::map<std::string, AdaptResult> results;
  for (size_t p = 0; p < policies.size(); ++p) {
    results[policies[p]] = cells[p];
  }

  // Timeline table (common time axis from HybridTier's run).
  TablePrinter table(
      {"t (ms)", "AutoNUMA p50 (ns)", "Memtis p50 (ns)",
       "HybridTier p50 (ns)"});
  table.SetTitle(
      "Figure 4: windowed median latency; distribution change at t=" +
      std::to_string(kChurnTime / kMillisecond) + "ms");
  const TimeSeries& axis = results["HybridTier"].sim.latency_timeline;
  for (size_t i = 0; i < axis.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(axis.times_ns[i] / kMillisecond)};
    for (const std::string& name : policies) {
      const TimeSeries& series = results[name].sim.latency_timeline;
      row.push_back(i < series.size()
                        ? FormatDouble(series.values[i], 0)
                        : "-");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig04_adaptation"));

  for (const std::string& name : policies) {
    const AdaptResult& result = results[name];
    std::cout << name << ": steady-state p50 "
              << FormatDouble(result.steady_latency, 0)
              << " ns, re-adaptation time ";
    if (result.adapt_ns == UINT64_MAX) {
      std::cout << "> run length";
    } else {
      std::cout << FormatTime(result.adapt_ns);
    }
    std::cout << "\n";
  }
  std::cout << "paper shape: HybridTier adapts several times faster than "
               "Memtis; AutoNUMA stays high even at steady state\n";
  return 0;
}
