/**
 * @file
 * Fleet-scale gate (beyond the paper): one simulation cell multiplexing
 * O(10^3) tenants under Poisson churn, the regime Equilibria-style
 * fleet tiering targets. Each cell expands a `fleet:` generator spec
 * (Zipf weights and footprints, duty-cycled residency) into the
 * marginal-utility fair-share stack and reports weighted Jain fairness,
 * adaptation time, and wall-clock simulation rate at 100 / 300 / 1000
 * tenants.
 *
 * Outputs:
 *  - `fig_fleet_scale.csv`: virtual-time metrics only — byte-identical
 *    across `--jobs` values (the CI jobs-invariance gate byte-diffs it).
 *  - `BENCH_fleet.json`: adds the wall-clock Macc/s trajectory, exempt
 *    from the invariance contract (wall clock is a measurement).
 *
 * Exit status gates completion, not speed: every cell must finish its
 * budget with sane fairness, and per-interval accounting must have
 * stayed O(active) (visits well under tenants x intervals — the precise
 * complexity guard lives in tests/test_multitenant.cc).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/percentile.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/fleet.h"
#include "multitenant/mux_workload.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3000000;
constexpr uint64_t kSeed = 42;
constexpr double kRatio = 1.0 / 8;
constexpr TimeNs kMaxTime = 400 * kMillisecond;
constexpr TimeNs kSteadyWindow = 100 * kMillisecond;

/** The fleet every cell runs, sized by tenant count. */
std::string FleetList(uint32_t tenants) {
  return "fleet:" + std::to_string(tenants) +
         ",zipf=0.9,fp=1024,fpskew=0.3,churn=poisson,duty=0.2,"
         "period=1e8,horizon=1e9,seed=7";
}

struct FleetCell {
  uint32_t tenants = 0;
  SimulationResult result;
  uint64_t fast_capacity_units = 0;
  uint64_t footprint_units = 0;
  double wall_s = 0.0;     //!< Wall clock of the Run() call.
  double maccs = 0.0;      //!< result.accesses / wall_s / 1e6.
  double adaptation_ms = -1.0;  //!< Fairness ramp-up time (-1 = never).
  double steady_fairness = 0.0;
};

/** Mean of the series values inside [begin, end); 0 when empty. */
double WindowMean(const TimeSeries& series, TimeNs begin, TimeNs end) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] >= begin && series.times_ns[i] < end) {
      sum += series.values[i];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/** First time the series reaches `target` and holds for 3 points. */
uint64_t RecoveryTimeNs(const TimeSeries& series, double target,
                        TimeNs from, size_t sustain = 3) {
  size_t run_start = 0;
  size_t run_length = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] < from || series.values[i] < target) {
      run_length = 0;
      continue;
    }
    if (run_length == 0) run_start = i;
    if (++run_length >= sustain) return series.times_ns[run_start];
  }
  return run_length > 0 ? series.times_ns[run_start] : UINT64_MAX;
}

FleetCell RunFleet(uint32_t tenants) {
  FleetCell cell;
  cell.tenants = tenants;
  auto mux = MakeMuxWorkload(ParseTenantList(FleetList(tenants)), kSeed);
  FairShareConfig fair_config;  // Marginal mode + SHARDS defaults.
  auto policy = std::make_unique<FairSharePolicy>(
      MakePolicy("HybridTier"), mux->directory(), fair_config);

  SimulationConfig config;
  config.fast_tier_fraction = kRatio;
  config.max_accesses = kAccessBudget;
  config.max_time_ns = kMaxTime;
  config.seed = kSeed;
  // Fleet-sized per-tenant state: a small latency reservoir per tenant
  // keeps 1000 tenants at a few KB each without touching the timelines.
  config.tenant_reservoir = 1024;
  config.latency_window = 512;

  Simulation simulation(config, mux.get(), policy.get());
  const auto wall_start = std::chrono::steady_clock::now();
  cell.result = simulation.Run();
  const auto wall_end = std::chrono::steady_clock::now();
  cell.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  cell.maccs = cell.wall_s == 0.0
                   ? 0.0
                   : static_cast<double>(cell.result.accesses) /
                         cell.wall_s / 1e6;
  cell.fast_capacity_units = simulation.fast_capacity_units();
  cell.footprint_units = simulation.footprint_units();

  // Adaptation: how long until the weighted fairness index first
  // sustains 90% of its own steady level (the fleet starts cold — the
  // controller has to discover every arrival's demand curve).
  const TimeSeries& fairness = cell.result.weighted_fairness_timeline;
  const TimeNs duration = cell.result.duration_ns;
  cell.steady_fairness = WindowMean(
      fairness, duration > kSteadyWindow ? duration - kSteadyWindow : 0,
      duration + 1);
  const uint64_t recovered =
      RecoveryTimeNs(fairness, 0.9 * cell.steady_fairness, 0);
  if (recovered != UINT64_MAX) {
    cell.adaptation_ms =
        static_cast<double>(recovered) / kMillisecond;
  }
  return cell;
}

void WriteJson(const std::string& path,
               const std::vector<FleetCell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig_fleet_scale\",\n"
      << "  \"access_budget\": " << kAccessBudget << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const FleetCell& cell = cells[i];
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "    {\"tenants\": %u, \"accesses\": %llu, "
        "\"weighted_jain\": %.4f, \"adaptation_ms\": %.1f, "
        "\"stats_tenant_visits\": %llu, \"wall_s\": %.4f, "
        "\"maccs\": %.3f}%s\n",
        cell.tenants,
        static_cast<unsigned long long>(cell.result.accesses),
        cell.result.weighted_jain_fairness, cell.adaptation_ms,
        static_cast<unsigned long long>(cell.result.stats_tenant_visits),
        cell.wall_s, cell.maccs, i + 1 == cells.size() ? "" : ",");
    out << line;
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;

  // --max-tenants caps the sweep (CI smoke runs 300, ASan 100); the
  // remaining args are the standard sweep options.
  uint32_t max_tenants = 1000;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--max-tenants" && i + 1 < argc) {
      max_tenants = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchOptions options =
      ParseBenchArgs(static_cast<int>(rest.size()), rest.data());
  Banner("fig_fleet_scale",
         "fairness, adaptation, and Macc/s at fleet tenant counts");

  std::vector<std::string> counts;
  for (const uint32_t n : {100u, 300u, 1000u}) {
    if (n <= max_tenants) counts.push_back(std::to_string(n));
  }
  SweepGrid grid;
  grid.AddAxis("tenants", counts);
  SweepRunner runner = MakeSweepRunner(options, "fig_fleet_scale");
  const std::vector<FleetCell> cells =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunFleet(
            static_cast<uint32_t>(std::stoul(cell.Get("tenants"))));
      });

  TablePrinter table({"tenants", "accesses", "weighted Jain",
                      "adaptation", "stats visits", "Macc/s (wall)"});
  table.SetTitle("fleet scale (Poisson churn, marginal-utility quotas)");
  // CSV mirror without the wall-clock column: the jobs-invariance gate
  // byte-diffs it, and wall clock is the one legitimate nondeterminism.
  TablePrinter csv({"tenants", "accesses", "weighted_jain",
                    "adaptation_ms", "stats_tenant_visits"});
  csv.SetTitle("fleet");
  bool ok = true;
  for (const FleetCell& cell : cells) {
    const std::string adaptation =
        cell.adaptation_ms < 0
            ? "never"
            : FormatDouble(cell.adaptation_ms, 1) + " ms";
    table.AddRow({std::to_string(cell.tenants),
                  std::to_string(cell.result.accesses),
                  FormatDouble(cell.result.weighted_jain_fairness, 3),
                  adaptation,
                  std::to_string(cell.result.stats_tenant_visits),
                  FormatDouble(cell.maccs, 2)});
    csv.AddRow({std::to_string(cell.tenants),
                std::to_string(cell.result.accesses),
                FormatDouble(cell.result.weighted_jain_fairness, 4),
                FormatDouble(cell.adaptation_ms, 1),
                std::to_string(cell.result.stats_tenant_visits)});

    // Completion gates: the cell ran its budget, produced a sane
    // fairness index, and interval accounting stayed O(active): with
    // duty 0.2 the visit count must sit far below tenants x intervals.
    const uint64_t intervals =
        cell.result.weighted_fairness_timeline.size();
    const uint64_t visit_ceiling =
        intervals * (cell.tenants / 2 + 16);
    if (cell.result.accesses == 0 ||
        !(cell.result.weighted_jain_fairness > 0.0 &&
          cell.result.weighted_jain_fairness <= 1.0) ||
        cell.result.stats_tenant_visits > visit_ceiling) {
      std::cout << "FLEET CELL FAILURE: tenants="
                << cell.tenants << " accesses="
                << cell.result.accesses << " jain="
                << cell.result.weighted_jain_fairness
                << " visits=" << cell.result.stats_tenant_visits
                << " ceiling=" << visit_ceiling << "\n";
      ok = false;
    }
  }
  table.Print(std::cout);
  csv.WriteCsv(CsvPath("fig_fleet_scale"));
  WriteJson("BENCH_fleet.json", cells);
  std::cout << "wrote BENCH_fleet.json ("
            << cells.size() << " cells)\n";
  return ok ? 0 : 1;
}
