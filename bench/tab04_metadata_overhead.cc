/**
 * @file
 * Table 4 — tiering metadata size relative to total memory capacity.
 *
 * Memtis allocates 16 B per 4 KiB page of *total* memory (0.39%,
 * constant across ratios). HybridTier's CBFs scale with the *fast tier*
 * (plus a 128x smaller momentum filter), so its relative overhead
 * shrinks as the fast tier does. Reported two ways:
 *  - analytic, at the paper's machine scale (512 GB slow tier), where
 *    the exact 2.0-7.8x reductions should reproduce; and
 *  - measured, from policies bound in the simulator at bench scale
 *    (the (ratio x policy) cells run as one parallel sweep).
 */

#include <iostream>

#include "common/bench_util.h"
#include "common/table.h"
#include "probstruct/sizing.h"

namespace hybridtier::bench {
namespace {

/** Analytic HybridTier metadata bytes for a given fast-tier page count. */
double HybridTierAnalyticBytes(uint64_t fast_pages) {
  const CbfSizing freq = FrequencyCbfSizing(fast_pages, 4);
  const CbfSizing momentum = MomentumCbfSizing(fast_pages, 4);
  return (static_cast<double>(freq.num_counters) +
          static_cast<double>(momentum.num_counters)) *
         4.0 / 8.0;
}

/** Measured metadata bytes of one (ratio, policy) simulator cell. */
uint64_t MeasuredMetadataBytes(double fraction,
                               const std::string& policy_name) {
  RunSpec spec;
  spec.workload_id = "cdn";
  spec.workload_scale = DefaultScaleFor("cdn");
  spec.fast_fraction = fraction;
  spec.max_accesses = 400000;
  spec.warmup_accesses = 0;
  spec.policy_name = policy_name;
  return RunCell(spec).metadata_bytes;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("tab04", "metadata size relative to total memory capacity");

  SweepGrid grid;
  grid.AddAxis("ratio", PaperRatioLabels());
  grid.AddAxis("policy", {"HybridTier", "Memtis"});
  SweepRunner runner = MakeSweepRunner(options, "tab04");
  const std::vector<uint64_t> measured =
      runner.Run(grid, [](const SweepCell& cell) {
        return MeasuredMetadataBytes(RatioFraction(cell.Get("ratio")),
                                     cell.Get("policy"));
      });

  // Paper configuration: slow tier fixed at 512 GB; fast = slow / N.
  const double slow_bytes = 512.0 * static_cast<double>(kGiB);

  TablePrinter table({"ratio", "Memtis", "HybridTier (analytic)",
                      "reduction", "HybridTier (measured, sim scale)"});
  table.SetTitle("Table 4: metadata size / total memory capacity");

  for (size_t r = 0; r < PaperRatios().size(); ++r) {
    const RatioPoint& ratio = PaperRatios()[r];
    const double fast_bytes = slow_bytes * ratio.fraction;
    const double total_bytes = slow_bytes + fast_bytes;
    const uint64_t fast_pages =
        static_cast<uint64_t>(fast_bytes / kPageSize);

    // Memtis: 16 B per 4 KiB page of total memory.
    const double memtis_bytes = total_bytes / kPageSize * 16.0;
    const double memtis_pct = memtis_bytes / total_bytes * 100.0;

    const double hybrid_bytes = HybridTierAnalyticBytes(fast_pages);
    const double hybrid_pct = hybrid_bytes / total_bytes * 100.0;

    // Measured at simulator scale, as a sanity cross-check.
    const uint64_t hybrid_measured = measured[grid.FlatIndex({r, 0})];
    const uint64_t memtis_measured = measured[grid.FlatIndex({r, 1})];
    const double measured_reduction =
        static_cast<double>(memtis_measured) /
        static_cast<double>(hybrid_measured);

    table.AddRow({ratio.label, FormatDouble(memtis_pct, 3) + "%",
                  FormatDouble(hybrid_pct, 3) + "%",
                  FormatSpeedup(memtis_pct / hybrid_pct),
                  FormatSpeedup(measured_reduction)});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("tab04_metadata_overhead"));
  std::cout << "paper: Memtis 0.39% flat; HybridTier 0.050% / 0.097% / "
               "0.192%; reductions 7.8x / 4.0x / 2.0x\n";
  return 0;
}
