/**
 * @file
 * Failover figure: the quota-pressured multi-tenant mix runs over three
 * interleaved slow-tier endpoints and loses one permanently at
 * mid-run. Two stacks face the same outage:
 *
 *  - `naive`: endpoint-blind FairShare(HybridTier) with evacuation
 *    disabled — pages strand on the dead device and every demand touch
 *    pays the constant fault stall for the rest of the run.
 *  - `graceful`: endpoint-aware placement plus the fault runtime's
 *    paced evacuation (spill-to-slow when the fast tier is full, then
 *    exponential backoff) — the dead endpoint drains and the tail
 *    recovers.
 *
 * Shape targets: graceful posts a lower post-fault p99 than naive, the
 * down endpoint ends the run with zero resident units, and the p99
 * timeline returns to within 10% of its pre-fault level within a
 * bounded recovery time (naive never recovers — the stalls are
 * permanent). The recovery time and the post-fault weighted Jain index
 * land in `BENCH_failover.json`.
 *
 * Outputs:
 *  - `fig_failover.csv`: virtual-time metrics only — byte-identical
 *    across `--jobs` values (the CI jobs-invariance gate byte-diffs it).
 *  - `BENCH_failover.json`: the same cells plus the gate verdicts.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/percentile.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kSeed = 42;
// A full drain needs the dead endpoint's homed footprint (~1/3 of all
// pages under 3-way interleave) to fit in the fast tier — HDM decode
// pins each page's slow home, so pages homed on a dead device can live
// nowhere else. 2:5 leaves headroom; at the paper's 1:8 the evacuation
// would park in backoff with stragglers paying the fault stall.
constexpr double kRatio = 0.4;
constexpr uint64_t kWarmup = 200000;

// Same Zipf mix as fig_topology (one double-weighted tenant) so the
// weighted Jain index through the outage is comparable across figures.
const char kTenants[] = "zipf,zipf:2,zipf";

// Three symmetric-latency expanders; endpoint 0 is the near device.
const char kTopology[] = "cxl:(1,2,3),lat=124:180:180,bw=34:17:17";

// Endpoint 2 dies at 20 ms and never comes back; the run continues to
// 60 ms so the recovery window is twice the pre-fault window.
constexpr TimeNs kFaultNs = 20 * kMillisecond;
constexpr TimeNs kRunNs = 60 * kMillisecond;
constexpr TimeNs kIntervalNs = 500 * kMicrosecond;
const char kFaultSpec[] = "faults:ep2@20ms=down";

// Pre-fault p99 baseline window: skip the first half of the pre-fault
// run so warmup fill transients don't skew the recovery target.
constexpr TimeNs kBaselineFromNs = 10 * kMillisecond;

// Recovery = p99 back at or below 1.1x the pre-fault level, sustained.
constexpr double kRecoveryTolerance = 0.10;
constexpr size_t kSustainPoints = 5;

struct FailoverCell {
  std::string mode;  // "naive" | "graceful".
  SimulationResult result;
  uint64_t ep2_resident = 0;   //!< Dead-endpoint residents at run end.
  double pre_p99 = 0.0;        //!< Mean windowed p99 before the fault.
  double post_p99 = 0.0;       //!< Mean windowed p99 after the fault.
  double post_jain = 0.0;      //!< Mean weighted Jain after the fault.
  /** Virtual ns from the fault until p99 stays at or below
   *  (1 + tolerance) * pre_p99; UINT64_MAX = never recovers. */
  uint64_t recovery_ns = UINT64_MAX;

  bool Recovered() const { return recovery_ns != UINT64_MAX; }
  double RecoveryMs() const {
    return Recovered() ? static_cast<double>(recovery_ns) / kMillisecond
                       : -1.0;
  }
};

/** Mean of `series` values over [from_ns, to_ns), skipping idle zeros. */
double WindowMean(const TimeSeries& series, TimeNs from_ns, TimeNs to_ns) {
  double sum = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] < from_ns || series.times_ns[i] >= to_ns) {
      continue;
    }
    if (series.values[i] <= 0.0) continue;
    sum += series.values[i];
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

/**
 * First time at or after `not_before_ns` from which `sustain` consecutive
 * points all sit at or below `ceiling`. One-sided on purpose: after the
 * drain the p99 can settle *below* its pre-fault level (a third of the
 * footprint now lives in fast), which the symmetric
 * `FirstSustainedEntryNs` band would score as "never recovered".
 */
uint64_t FirstSustainedBelowNs(const TimeSeries& series, double ceiling,
                               size_t sustain, TimeNs not_before_ns) {
  size_t run_start = SIZE_MAX;
  size_t run_length = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    const bool eligible =
        series.times_ns[i] >= not_before_ns && series.values[i] > 0.0;
    if (eligible && series.values[i] <= ceiling) {
      if (run_length == 0) run_start = i;
      ++run_length;
      if (run_length >= sustain) return series.times_ns[run_start];
    } else {
      run_length = 0;
    }
  }
  return UINT64_MAX;
}

FailoverCell RunFailover(bool graceful) {
  FailoverCell cell;
  cell.mode = graceful ? "graceful" : "naive";

  auto mux = MakeMuxWorkload(ParseTenantList(kTenants), kSeed);
  FairShareConfig fair_config;
  fair_config.endpoint_aware = graceful;
  auto policy = std::make_unique<FairSharePolicy>(
      MakePolicy("HybridTier"), mux->directory(), fair_config);

  SimulationConfig config;
  config.fast_tier_fraction = kRatio;
  config.max_accesses = UINT64_MAX;  // Time-bounded run.
  config.max_time_ns = kRunNs;
  config.warmup_accesses = kWarmup;
  config.stats_interval_ns = kIntervalNs;
  config.seed = kSeed;
  config.topology = kTopology;
  config.perf.bounded_queue = true;  // Required by the down schedule.
  config.faults = kFaultSpec;
  config.fault_runtime.evacuate = graceful;
  // Drain fast enough that recovery lands well inside the run.
  config.fault_runtime.evac_batch = 4096;
  config.fault_runtime.spill_batch = 4096;
  config.watchdog = true;  // Books are recounted through the outage.

  Simulation simulation(config, mux.get(), policy.get());
  cell.result = simulation.Run();
  cell.ep2_resident = simulation.memory().EndpointResident(2);

  // The timeline point stamped exactly at the fault time covers the
  // *preceding* (pre-fault) window; post-fault windows start after it.
  const TimeSeries& p99 = cell.result.p99_timeline;
  cell.pre_p99 = WindowMean(p99, kBaselineFromNs, kFaultNs + 1);
  cell.post_p99 = WindowMean(p99, kFaultNs + 1, kRunNs + 1);
  cell.post_jain = WindowMean(cell.result.weighted_fairness_timeline,
                              kFaultNs + 1, kRunNs + 1);
  const uint64_t entered = FirstSustainedBelowNs(
      p99, cell.pre_p99 * (1.0 + kRecoveryTolerance), kSustainPoints,
      kFaultNs + 1);
  if (entered != UINT64_MAX) cell.recovery_ns = entered - kFaultNs;
  return cell;
}

void WriteJson(const std::string& path,
               const std::vector<FailoverCell>& cells,
               bool graceful_beats_naive, bool drained, bool recovers) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig_failover\",\n"
      << "  \"tenants\": \"" << kTenants << "\",\n"
      << "  \"topology\": \"" << kTopology << "\",\n"
      << "  \"faults\": \"" << kFaultSpec << "\",\n"
      << "  \"fast_tier_fraction\": " << kRatio << ",\n"
      << "  \"run_ms\": " << kRunNs / kMillisecond << ",\n"
      << "  \"fault_ms\": " << kFaultNs / kMillisecond << ",\n"
      << "  \"recovery_tolerance\": " << kRecoveryTolerance << ",\n"
      << "  \"gates\": {\"graceful_beats_naive_p99\": "
      << (graceful_beats_naive ? "true" : "false")
      << ", \"down_endpoint_drained\": " << (drained ? "true" : "false")
      << ", \"graceful_recovers\": " << (recovers ? "true" : "false")
      << "},\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const FailoverCell& cell = cells[i];
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "    {\"mode\": \"%s\", \"pre_fault_p99_ns\": %.0f, "
        "\"post_fault_p99_ns\": %.0f, \"recovery_ms\": %.2f, "
        "\"post_fault_weighted_jain\": %.4f, \"ep2_resident_units\": "
        "%llu, \"evacuated_pages\": %llu, \"spilled_pages\": %llu, "
        "\"evac_retries\": %llu, \"stalled_accesses\": %llu, "
        "\"run_p99_ns\": %.0f, \"mops\": %.3f}",
        cell.mode.c_str(), cell.pre_p99, cell.post_p99,
        cell.RecoveryMs(), cell.post_jain,
        static_cast<unsigned long long>(cell.ep2_resident),
        static_cast<unsigned long long>(cell.result.fault.evacuated_pages),
        static_cast<unsigned long long>(cell.result.fault.spilled_pages),
        static_cast<unsigned long long>(cell.result.fault.evac_retries),
        static_cast<unsigned long long>(
            cell.result.fault.stalled_accesses),
        cell.result.p99_latency_ns, cell.result.throughput_mops);
    out << line << (i + 1 == cells.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig_failover",
         "endpoint loss mid-run: graceful evacuation vs stranded pages");
  if (!options.topology.empty()) {
    std::cout << "note: --topology ignored — the fault schedule is tied "
                 "to the 3-endpoint layout\n";
  }

  SweepGrid grid;
  grid.AddAxis("mode", {"naive", "graceful"});
  SweepRunner runner = MakeSweepRunner(options, "fig_failover");
  const std::vector<FailoverCell> cells =
      runner.Run(grid, [&](const SweepCell& cell) {
        return RunFailover(cell.Get("mode") == "graceful");
      });

  TablePrinter table({"mode", "pre p99 ns", "post p99 ns", "recovery ms",
                      "ep2 resident", "evacuated", "spilled", "retries",
                      "stalls", "post Jain(w)"});
  table.SetTitle("endpoint 2 down at 20ms (FairShare(HybridTier), 2:5)");
  for (const FailoverCell& cell : cells) {
    table.AddRow({cell.mode, FormatDouble(cell.pre_p99, 0),
                  FormatDouble(cell.post_p99, 0),
                  cell.Recovered() ? FormatDouble(cell.RecoveryMs(), 2)
                                   : "never",
                  std::to_string(cell.ep2_resident),
                  std::to_string(cell.result.fault.evacuated_pages),
                  std::to_string(cell.result.fault.spilled_pages),
                  std::to_string(cell.result.fault.evac_retries),
                  std::to_string(cell.result.fault.stalled_accesses),
                  FormatDouble(cell.post_jain, 4)});
  }
  table.Print(std::cout);

  // CSV mirror (virtual-time only; byte-diffed across --jobs by CI).
  TablePrinter csv({"mode", "pre_fault_p99_ns", "post_fault_p99_ns",
                    "recovery_ms", "post_fault_weighted_jain",
                    "ep2_resident", "evacuated_pages", "spilled_pages",
                    "evac_retries", "stalled_accesses"});
  csv.SetTitle("fig_failover");
  for (const FailoverCell& cell : cells) {
    csv.AddRow({cell.mode, FormatDouble(cell.pre_p99, 0),
                FormatDouble(cell.post_p99, 0),
                FormatDouble(cell.RecoveryMs(), 2),
                FormatDouble(cell.post_jain, 4),
                std::to_string(cell.ep2_resident),
                std::to_string(cell.result.fault.evacuated_pages),
                std::to_string(cell.result.fault.spilled_pages),
                std::to_string(cell.result.fault.evac_retries),
                std::to_string(cell.result.fault.stalled_accesses)});
  }
  csv.WriteCsv(CsvPath("fig_failover"));

  const auto find = [&](const std::string& mode) -> const FailoverCell& {
    for (const FailoverCell& cell : cells) {
      if (cell.mode == mode) return cell;
    }
    HT_FATAL("missing cell ", mode);
  };
  const FailoverCell& naive = find("naive");
  const FailoverCell& graceful = find("graceful");
  const bool graceful_beats_naive = graceful.post_p99 < naive.post_p99;
  const bool drained = graceful.ep2_resident == 0;
  const bool recovers = graceful.Recovered();

  WriteJson("BENCH_failover.json", cells, graceful_beats_naive, drained,
            recovers);
  std::cout << "wrote BENCH_failover.json\n"
            << "graceful beats naive post-fault p99: "
            << (graceful_beats_naive ? "yes" : "NO") << "\n"
            << "down endpoint fully drained:         "
            << (drained ? "yes" : "NO") << "\n"
            << "graceful p99 recovers (<=1.1x pre):  "
            << (recovers ? FormatDouble(graceful.RecoveryMs(), 2) + " ms"
                         : "NO") << "\n";

  const bool ok = graceful_beats_naive && drained && recovers;
  if (!ok) std::cout << "FAILOVER GATE FAILURE: see table above\n";
  return ok ? 0 : 1;
}
