/**
 * @file
 * Figure 14 — HybridTier cache-miss reduction breakdown.
 *
 * Compares tiering-attributed L1 and LLC misses of Memtis, HybridTier
 * with a *standard* CBF, and HybridTier with the *blocked* CBF, on
 * CacheLib at 1:4, normalized to Memtis. The three systems are
 * independent sweep cells over the same seeded stream.
 *
 * Shape target: standard CBF already beats Memtis (compactness, fewer
 * dereferences); blocked CBF provides the larger additional reduction
 * (one line per update).
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 12000000;

SimulationResult RunPolicy(const std::string& policy_name) {
  RunSpec spec;
  spec.workload_id = "cdn";
  spec.workload_scale = DefaultScaleFor("cdn");
  spec.policy_name = policy_name;
  spec.fast_fraction = 1.0 / 4;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = 0;
  return RunCell(spec);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig14", "tiering cache misses: Memtis vs CBF vs blocked CBF");

  SweepGrid grid;
  grid.AddAxis("system", {"Memtis", "HybridTier-CBF", "HybridTier"});
  SweepRunner runner = MakeSweepRunner(options, "fig14");
  const std::vector<SimulationResult> results =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunPolicy(cell.Get("system"));
      });
  const SimulationResult& memtis = results[0];
  const SimulationResult& standard = results[1];
  const SimulationResult& blocked = results[2];

  auto rel = [](uint64_t value, uint64_t base) {
    return base == 0 ? 0.0
                     : static_cast<double>(value) /
                           static_cast<double>(base);
  };

  TablePrinter table({"system", "L1 misses (rel.)", "LLC misses (rel.)"});
  table.SetTitle(
      "Figure 14: tiering-attributed cache misses, normalized to Memtis");
  table.AddRow({"Memtis", "1.00", "1.00"});
  table.AddRow({"HybridTier-CBF",
                FormatDouble(rel(standard.l1_tiering_misses,
                                 memtis.l1_tiering_misses),
                             2),
                FormatDouble(rel(standard.llc_tiering_misses,
                                 memtis.llc_tiering_misses),
                             2)});
  table.AddRow({"HybridTier-bCBF",
                FormatDouble(rel(blocked.l1_tiering_misses,
                                 memtis.l1_tiering_misses),
                             2),
                FormatDouble(rel(blocked.llc_tiering_misses,
                                 memtis.llc_tiering_misses),
                             2)});
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig14_cbf_breakdown"));
  std::cout << "paper shape: standard CBF cuts misses 12-36% vs Memtis; "
               "blocked CBF another 31-72%\n";
  return 0;
}
