#ifndef HYBRIDTIER_BENCH_COMMON_BENCH_UTIL_H_
#define HYBRIDTIER_BENCH_COMMON_BENCH_UTIL_H_

/**
 * @file
 * Shared driver for the per-figure/per-table benchmark binaries.
 *
 * Each bench binary reproduces one paper artifact: it sweeps the
 * relevant (workload x policy x ratio) cells, prints the same rows or
 * series the paper reports, and writes a CSV next to the binary.
 *
 * The scaled defaults here (access budget, cooling periods, churn
 * timing) are the time-compressed equivalents of the paper's setup; the
 * mapping is documented in EXPERIMENTS.md.
 */

#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "core/simulation.h"
#include "exec/sweep.h"
#include "workloads/factory.h"

namespace hybridtier::bench {

/** The paper's fast:slow ratios, as fast-tier fractions. */
struct RatioPoint {
  const char* label;  //!< e.g. "1:16".
  double fraction;    //!< e.g. 1.0/16.
};

/** {1:16, 1:8, 1:4} in paper order. */
const std::vector<RatioPoint>& PaperRatios();

/** PaperRatios labels, as a sweep axis value list. */
std::vector<std::string> PaperRatioLabels();

/** Fast-tier fraction of a PaperRatios label; fatal on unknown labels. */
double RatioFraction(const std::string& label);

/** Flags shared by every bench binary. */
struct BenchOptions {
  /** Sweep worker threads; 0 = hardware_concurrency. */
  unsigned jobs = 0;
  /** Sweep-level wall-clock Perfetto trace path ("" = off). */
  std::string trace_out;
  /** Sweep-level wall-time JSON summary path ("" = off). */
  std::string metrics_out;
  /**
   * Slow-tier topology spec override ("" = each bench's own default,
   * usually the single-endpoint legacy layout). Validated eagerly at
   * parse time so a typo fails before any cell runs; see
   * mem/topology.h for the `cxl:(...)` grammar.
   */
  std::string topology;
};

/**
 * Parses the shared bench flags: `--jobs N` (sweep worker threads,
 * default hardware_concurrency), `--log-level LEVEL` (debug | info |
 * warn | error | silent; applied immediately via SetLogLevel),
 * `--trace-out FILE` / `--metrics-out FILE` (sweep-level wall-clock
 * telemetry), `--topology SPEC` (slow-tier device layout, see
 * mem/topology.h), and `--help`. Exits with usage on unknown flags, so
 * every matrix driver rejects typos the same way.
 */
BenchOptions ParseBenchArgs(int argc, char** argv);

/**
 * SweepRunner for this bench: worker count and telemetry sinks from
 * the parsed flags, progress + per-sweep wall-time reporting under the
 * bench's name. Cell outputs stay jobs-invariant (see exec/sweep.h);
 * wall time is logged only, never written into a CSV.
 */
SweepRunner MakeSweepRunner(const BenchOptions& options, std::string name);

/** One simulation cell: workload id + policy name + ratio + budgets. */
struct RunSpec {
  std::string workload_id;
  std::string policy_name = "HybridTier";
  double fast_fraction = 1.0 / 8;
  double workload_scale = 0.25;       //!< Factory footprint scale.
  uint64_t max_accesses = 6000000;    //!< Access budget per run.
  uint64_t warmup_accesses = 1000000; //!< Stats reset after warmup.
  PageMode mode = PageMode::kRegular;
  uint64_t seed = 42;
  std::vector<ChurnEvent> churn;      //!< CacheLib-only.
  PolicyOptions policy_options;       //!< Scaled policy knobs.
  SimulationConfig base_config;       //!< Further overrides.
};

/** Executes one cell and returns its results. */
SimulationResult RunCell(const RunSpec& spec);

/**
 * Bench-default footprint scale per workload id, chosen so every
 * workload's footprint is far larger than the modeled LLC while full
 * sweeps stay within the access budget.
 */
double DefaultScaleFor(const std::string& workload_id);

/**
 * Post-warmup runtime in ns — the figure-of-merit for equal-access-count
 * runs (lower is better).
 */
uint64_t SteadyDurationNs(const SimulationResult& result);

/** Geometric mean of a vector (ignores non-positive entries). */
double GeoMean(const std::vector<double>& values);

/** Formats a ratio like "1.23x". */
std::string FormatSpeedup(double value);

/** Standard "[bench] ..." banner line to stdout. */
void Banner(const std::string& name, const std::string& what);

/** Output directory for CSVs (current directory). */
std::string CsvPath(const std::string& bench_name);

}  // namespace hybridtier::bench

#endif  // HYBRIDTIER_BENCH_COMMON_BENCH_UTIL_H_
