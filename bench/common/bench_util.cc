#include "common/bench_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "mem/topology.h"

namespace hybridtier::bench {

const std::vector<RatioPoint>& PaperRatios() {
  static const std::vector<RatioPoint> ratios = {
      {"1:16", 1.0 / 16}, {"1:8", 1.0 / 8}, {"1:4", 1.0 / 4}};
  return ratios;
}

std::vector<std::string> PaperRatioLabels() {
  std::vector<std::string> labels;
  for (const RatioPoint& ratio : PaperRatios()) {
    labels.push_back(ratio.label);
  }
  return labels;
}

double RatioFraction(const std::string& label) {
  for (const RatioPoint& ratio : PaperRatios()) {
    if (label == ratio.label) return ratio.fraction;
  }
  HT_FATAL("unknown ratio label '", label, "'");
}

BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  const auto flag_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(1);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: %s [--jobs N] [--log-level LEVEL] [--trace-out FILE]\n"
          "          [--metrics-out FILE] [--topology SPEC]\n"
          "  --jobs N           sweep worker threads (default: all\n"
          "                     hardware threads); CSV output is\n"
          "                     identical for every N\n"
          "  --log-level LEVEL  debug | info | warn | error | silent\n"
          "                     (default: info)\n"
          "  --trace-out FILE   write a sweep-level wall-clock Perfetto\n"
          "                     trace (one span per cell)\n"
          "  --metrics-out FILE write a sweep-level wall-time JSON\n"
          "                     summary\n"
          "  --topology SPEC    slow-tier device layout, e.g.\n"
          "                     'cxl:(1,(2,3)),lat=124:180:180' (see\n"
          "                     mem/topology.h; default: the bench's\n"
          "                     own layout)\n",
          argv[0]);
      std::exit(0);
    }
    if (std::strcmp(arg, "--log-level") == 0) {
      SetLogLevel(ParseLogLevel(flag_value(&i)));
      continue;
    }
    if (std::strcmp(arg, "--trace-out") == 0) {
      options.trace_out = flag_value(&i);
      continue;
    }
    if (std::strcmp(arg, "--metrics-out") == 0) {
      options.metrics_out = flag_value(&i);
      continue;
    }
    if (std::strcmp(arg, "--topology") == 0) {
      options.topology = flag_value(&i);
      // Fail malformed specs here, before any cell runs.
      (void)ParseTopologySpec(options.topology);
      continue;
    }
    if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --jobs\n");
        std::exit(1);
      }
      const char* text = argv[++i];
      char* end = nullptr;
      // strtoul would silently wrap "-2" and truncate >32-bit values;
      // require plain digits and a sane range instead.
      const unsigned long jobs =
          std::isdigit(static_cast<unsigned char>(text[0]))
              ? std::strtoul(text, &end, 10)
              : 0;
      if (end == nullptr || *end != '\0' || jobs == 0 || jobs > 65536) {
        std::fprintf(stderr,
                     "--jobs wants a positive integer (max 65536), got "
                     "'%s'\n",
                     text);
        std::exit(1);
      }
      options.jobs = static_cast<unsigned>(jobs);
      continue;
    }
    std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg);
    std::exit(1);
  }
  return options;
}

SweepRunner MakeSweepRunner(const BenchOptions& options, std::string name) {
  SweepOptions sweep_options;
  sweep_options.jobs = options.jobs;
  sweep_options.name = std::move(name);
  sweep_options.trace_out = options.trace_out;
  sweep_options.metrics_out = options.metrics_out;
  return SweepRunner(sweep_options);
}

SimulationResult RunCell(const RunSpec& spec) {
  auto workload = MakeWorkload(spec.workload_id, spec.workload_scale,
                               spec.seed, spec.churn);
  auto policy = MakePolicy(spec.policy_name, spec.policy_options);

  SimulationConfig config = spec.base_config;
  config.fast_tier_fraction =
      FastFractionFor(spec.policy_name, spec.fast_fraction);
  config.allocation = AllocationPolicyFor(spec.policy_name);
  config.max_accesses = spec.max_accesses;
  config.warmup_accesses = spec.warmup_accesses;
  config.mode = spec.mode;
  config.seed = spec.seed;

  return RunSimulation(config, workload.get(), policy.get());
}

double DefaultScaleFor(const std::string& workload_id) {
  if (workload_id == "cdn" || workload_id == "social") return 0.1;
  if (workload_id == "bwaves" || workload_id == "roms") return 0.25;
  if (workload_id == "silo") return 0.25;
  if (workload_id == "xgboost") return 0.5;
  // GAP kernels: scale 2.0 selects a 2^19-node, 4M-edge graph.
  return 2.0;
}

uint64_t SteadyDurationNs(const SimulationResult& result) {
  return result.SteadyDurationNs();
}

double GeoMean(const std::vector<double>& values) {
  double log_sum = 0.0;
  size_t counted = 0;
  for (const double v : values) {
    if (v <= 0.0) continue;
    log_sum += std::log(v);
    ++counted;
  }
  return counted == 0 ? 0.0
                      : std::exp(log_sum / static_cast<double>(counted));
}

std::string FormatSpeedup(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

void Banner(const std::string& name, const std::string& what) {
  std::printf("== %s: %s ==\n", name.c_str(), what.c_str());
  std::fflush(stdout);
}

std::string CsvPath(const std::string& bench_name) {
  return bench_name + ".csv";
}

}  // namespace hybridtier::bench
