#include "common/bench_util.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace hybridtier::bench {

const std::vector<RatioPoint>& PaperRatios() {
  static const std::vector<RatioPoint> ratios = {
      {"1:16", 1.0 / 16}, {"1:8", 1.0 / 8}, {"1:4", 1.0 / 4}};
  return ratios;
}

SimulationResult RunCell(const RunSpec& spec) {
  auto workload = MakeWorkload(spec.workload_id, spec.workload_scale,
                               spec.seed, spec.churn);
  auto policy = MakePolicy(spec.policy_name, spec.policy_options);

  SimulationConfig config = spec.base_config;
  config.fast_tier_fraction =
      FastFractionFor(spec.policy_name, spec.fast_fraction);
  config.allocation = AllocationPolicyFor(spec.policy_name);
  config.max_accesses = spec.max_accesses;
  config.warmup_accesses = spec.warmup_accesses;
  config.mode = spec.mode;
  config.seed = spec.seed;

  return RunSimulation(config, workload.get(), policy.get());
}

double DefaultScaleFor(const std::string& workload_id) {
  if (workload_id == "cdn" || workload_id == "social") return 0.1;
  if (workload_id == "bwaves" || workload_id == "roms") return 0.25;
  if (workload_id == "silo") return 0.25;
  if (workload_id == "xgboost") return 0.5;
  // GAP kernels: scale 2.0 selects a 2^19-node, 4M-edge graph.
  return 2.0;
}

uint64_t SteadyDurationNs(const SimulationResult& result) {
  return result.SteadyDurationNs();
}

double GeoMean(const std::vector<double>& values) {
  double log_sum = 0.0;
  size_t counted = 0;
  for (const double v : values) {
    if (v <= 0.0) continue;
    log_sum += std::log(v);
    ++counted;
  }
  return counted == 0 ? 0.0
                      : std::exp(log_sum / static_cast<double>(counted));
}

std::string FormatSpeedup(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

void Banner(const std::string& name, const std::string& what) {
  std::printf("== %s: %s ==\n", name.c_str(), what.c_str());
  std::fflush(stdout);
}

std::string CsvPath(const std::string& bench_name) {
  return bench_name + ".csv";
}

}  // namespace hybridtier::bench
