/**
 * @file
 * Figure 16 — access hotness distributions of the 12 workloads.
 *
 * Cumulative distribution of per-page 4-bit-capped access-frequency
 * counts over a fixed sampled window, for every workload/input pair.
 * Each workload's measurement is an independent sweep cell (the twelve
 * streams share nothing), so the table fills in parallel under --jobs.
 * Paper shape targets: GAP-on-Kronecker has >=94% zero-access pages;
 * CacheLib social-graph has the largest fraction of pages at the
 * counter cap (15).
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "mem/page.h"
#include "probstruct/exact_table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 12000000;
/** The runtime's PEBS period and frequency-tracker cooling period, so
 *  counter magnitudes match what the tiering system actually sees. */
constexpr uint64_t kSamplePeriod = 61;
constexpr uint64_t kCoolingPeriod = 50000;

/** Cumulative shares at the Fig 16 bucket edges. */
std::vector<double> MeasureCdf(const std::string& workload_id) {
  // The array-sweep workloads revisit each page once per sweep; keep the
  // sweep period large relative to the cooling window (as it is at the
  // paper's 150 GB footprints) by running them at a larger scale.
  const bool is_stream = workload_id == "bwaves" || workload_id == "roms";
  const double scale =
      DefaultScaleFor(workload_id) * (is_stream ? 4.0 : 1.0);
  auto workload = MakeWorkload(workload_id, scale, 42);
  ExactCounterTable counters(workload->footprint_pages(), /*max=*/15);
  OpTrace op;
  uint64_t accesses = 0;
  uint64_t samples = 0;
  uint64_t countdown = kSamplePeriod;
  while (accesses < kAccessBudget) {
    workload->NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      ++accesses;
      if (--countdown > 0) continue;
      countdown = kSamplePeriod;
      counters.Increment(PageOfAddr(access.addr));
      if (++samples % kCoolingPeriod == 0) counters.CoolByHalving();
    }
  }

  // Bucket edges as in the paper: 0, 1-3, 4-6, 7-9, 10-12, 13-14, 15.
  std::vector<uint64_t> buckets(7, 0);
  for (PageId page = 0; page < counters.size(); ++page) {
    const uint32_t count = counters.Get(page);
    size_t bucket;
    if (count == 0) {
      bucket = 0;
    } else if (count <= 3) {
      bucket = 1;
    } else if (count <= 6) {
      bucket = 2;
    } else if (count <= 9) {
      bucket = 3;
    } else if (count <= 12) {
      bucket = 4;
    } else if (count <= 14) {
      bucket = 5;
    } else {
      bucket = 6;
    }
    ++buckets[bucket];
  }
  std::vector<double> cdf(7, 0.0);
  double cumulative = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += static_cast<double>(buckets[b]) /
                  static_cast<double>(counters.size());
    cdf[b] = cumulative;
  }
  return cdf;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig16", "per-page access-frequency CDF of all 12 workloads");

  SweepGrid grid;
  grid.AddAxis("workload", AllWorkloadIds());

  SweepRunner runner = MakeSweepRunner(options, "fig16");
  const std::vector<std::vector<double>> cdfs =
      runner.Run(grid, [](const SweepCell& cell) {
        return MeasureCdf(cell.Get("workload"));
      });

  TablePrinter table({"workload", "0", "1-3", "4-6", "7-9", "10-12",
                      "13-14", "15"});
  table.SetTitle(
      "Figure 16: cumulative distribution of page access-frequency "
      "counts");
  double kron_zero_share = 1.0;
  double social_cap_share = 0.0;
  double max_other_cap_share = 0.0;
  for (size_t w = 0; w < AllWorkloadIds().size(); ++w) {
    const std::string& id = AllWorkloadIds()[w];
    const std::vector<double>& cdf = cdfs[w];
    std::vector<std::string> row = {id};
    for (const double value : cdf) row.push_back(FormatDouble(value, 3));
    table.AddRow(row);
    const double cap_share = 1.0 - cdf[5];
    if (id == "pr-k") kron_zero_share = cdf[0];
    if (id == "social") {
      social_cap_share = cap_share;
    } else {
      max_other_cap_share = std::max(max_other_cap_share, cap_share);
    }
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig16_hotness_cdf"));

  std::cout << "shape check: pr-kron zero-access page share "
            << FormatDouble(kron_zero_share * 100, 1)
            << "% (paper: ~94% for GAP/Kronecker); social-graph share at "
               "count 15 "
            << FormatDouble(social_cap_share * 100, 2)
            << "% vs max of others "
            << FormatDouble(max_other_cap_share * 100, 2)
            << "% (paper: social-graph largest)\n";
  return 0;
}
