/**
 * @file
 * Multi-tenant fairness figure (beyond the paper): four tenants — a
 * skewed Zipf hot set, CacheLib CDN, BFS, and Silo — share one fast
 * tier at 1:8. Each base policy runs unmanaged and wrapped in the
 * fair-share quota enforcer; rows report per-tenant fast-tier occupancy
 * shares and the Jain fairness index over them.
 *
 * Shape targets: unmanaged, the hottest tenant soaks up most of the
 * tier and the index sags; with FairShare occupancies converge toward
 * the weighted shares and the index rises, at a small throughput cost
 * to the formerly dominant tenant.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 2500000;
constexpr uint64_t kWarmup = 500000;
constexpr uint64_t kSeed = 42;
constexpr double kRatio = 1.0 / 8;

const char* kTenantList = "zipf,cdn,bfs-k,silo";

struct MixResult {
  SimulationResult result;
  uint64_t fast_capacity_units = 0;
};

MixResult RunMix(const std::string& policy_name, bool fair) {
  auto mux = MakeMuxWorkload(ParseTenantList(kTenantList), kSeed);
  std::unique_ptr<TieringPolicy> policy = MakePolicy(policy_name);
  if (fair) {
    policy = std::make_unique<FairSharePolicy>(std::move(policy),
                                               mux->directory());
  }

  SimulationConfig config;
  config.fast_tier_fraction = FastFractionFor(policy_name, kRatio);
  config.allocation = AllocationPolicyFor(policy_name);
  config.max_accesses = kAccessBudget;
  config.warmup_accesses = kWarmup;
  config.seed = kSeed;

  Simulation simulation(config, mux.get(), policy.get());
  MixResult mix;
  mix.result = simulation.Run();
  mix.fast_capacity_units = simulation.fast_capacity_units();
  return mix;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig_multitenant_fairness",
         "4 tenants sharing a 1:8 fast tier, unmanaged vs fair-share");

  const std::vector<std::string> policies = {"TPP", "Memtis", "HybridTier"};

  SweepGrid grid;
  grid.AddAxis("policy", policies);
  grid.AddAxis("mode", {"unmanaged", "fair"});
  SweepRunner runner = MakeSweepRunner(options, "fig_multitenant_fairness");
  const std::vector<MixResult> mixes =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunMix(cell.Get("policy"), cell.Get("mode") == "fair");
      });

  TablePrinter table({"policy", "zipf share%", "cdn share%", "bfs share%",
                      "silo share%", "Jain", "Mop/s"});
  table.SetTitle("per-tenant fast-tier occupancy share");
  for (size_t p = 0; p < policies.size(); ++p) {
    const std::string& policy = policies[p];
    for (const bool fair : {false, true}) {
      const MixResult& mix = mixes[grid.FlatIndex({p, fair ? 1u : 0u})];
      std::vector<std::string> row;
      row.push_back(fair ? "FairShare(" + policy + ")" : policy);
      for (const TenantResult& tenant : mix.result.tenants) {
        row.push_back(FormatDouble(
            static_cast<double>(tenant.fast_resident_units) * 100.0 /
                static_cast<double>(mix.fast_capacity_units),
            1));
      }
      row.push_back(FormatDouble(mix.result.jain_fairness, 3));
      row.push_back(FormatDouble(mix.result.throughput_mops, 3));
      table.AddRow(row);
    }
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig_multitenant_fairness"));
  return 0;
}
