/**
 * @file
 * Figure 10 — overall performance comparison: GAP (BFS/CC/PR on
 * Kronecker + uniform-random), SPEC (bwaves, roms), Silo, and XGBoost,
 * for all six systems at 1:16 / 1:8 / 1:4, normalized to TPP (higher is
 * better), plus the cross-workload geomean.
 *
 * Shape targets: HybridTier wins the geomean; its largest edge is on
 * BFS (single-source hotness shifts); ARC/TwoQ trail; gaps narrow as
 * the fast tier grows (except Memtis).
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

const std::vector<std::string>& Fig10Workloads() {
  static const std::vector<std::string> ids = {
      "bfs-k", "bfs-u", "cc-k",   "cc-u", "pr-k",
      "pr-u",  "bwaves", "roms",  "silo", "xgboost"};
  return ids;
}

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name,
                     double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main() {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  Banner("fig10", "relative performance vs TPP, 10 workloads x 3 ratios");

  // rel_perf[ratio][policy] aggregated over workloads for the geomean.
  std::map<std::string, std::map<std::string, std::vector<double>>> rel;

  for (const RatioPoint& ratio : PaperRatios()) {
    TablePrinter table({"workload", "TPP", "AutoNUMA", "Memtis", "ARC",
                        "TwoQ", "HybridTier"});
    table.SetTitle(std::string("Figure 10 @ ") + ratio.label +
                   " — runtime relative to TPP (higher is better)");
    for (const std::string& workload : Fig10Workloads()) {
      const uint64_t tpp_ns = RunDuration(workload, "TPP", ratio.fraction);
      std::vector<std::string> row = {workload};
      for (const std::string& policy : StandardPolicyNames()) {
        const uint64_t ns =
            policy == "TPP" ? tpp_ns
                            : RunDuration(workload, policy, ratio.fraction);
        const double relative =
            ns == 0 ? 0.0
                    : static_cast<double>(tpp_ns) / static_cast<double>(ns);
        rel[ratio.label][policy].push_back(relative);
        row.push_back(FormatDouble(relative, 2));
      }
      table.AddRow(row);
    }
    // Geomean row.
    std::vector<std::string> geo_row = {"geomean"};
    for (const std::string& policy : StandardPolicyNames()) {
      geo_row.push_back(FormatDouble(GeoMean(rel[ratio.label][policy]), 2));
    }
    table.AddRow(geo_row);
    table.Print(std::cout);
    table.WriteCsv(CsvPath(std::string("fig10_overall_") +
                           (ratio.label + 2)));  // skip "1:".
  }

  // Cross-ratio geomean summary (the paper's headline numbers).
  std::cout << "cross-ratio geomean relative to TPP:\n";
  for (const std::string& policy : StandardPolicyNames()) {
    std::vector<double> all;
    for (const RatioPoint& ratio : PaperRatios()) {
      const auto& values = rel[ratio.label][policy];
      all.insert(all.end(), values.begin(), values.end());
    }
    std::cout << "  " << policy << ": " << FormatDouble(GeoMean(all), 3)
              << "\n";
  }
  std::cout << "paper shape: HybridTier geomean-best (beats TPP/AutoNUMA/"
               "Memtis/ARC/TwoQ by 51/16/29/88/88% on GAP); BFS shows the "
               "largest HybridTier edge; ARC/TwoQ trail\n";
  return 0;
}
