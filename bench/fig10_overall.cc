/**
 * @file
 * Figure 10 — overall performance comparison: GAP (BFS/CC/PR on
 * Kronecker + uniform-random), SPEC (bwaves, roms), Silo, and XGBoost,
 * for all six systems at 1:16 / 1:8 / 1:4, normalized to TPP (higher is
 * better), plus the cross-workload geomean.
 *
 * The full (ratio x workload x policy) matrix is submitted as one
 * sweep: cells run in parallel under --jobs, and the tables/CSVs are
 * byte-identical for every thread count. Every cell pins the shared
 * bench seed because the figure is a *paired* comparison — each policy
 * must see the same access stream as the TPP baseline it is normalized
 * against.
 *
 * Shape targets: HybridTier wins the geomean; its largest edge is on
 * BFS (single-source hotness shifts); ARC/TwoQ trail; gaps narrow as
 * the fast tier grows (except Memtis).
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

const std::vector<std::string>& Fig10Workloads() {
  static const std::vector<std::string> ids = {
      "bfs-k", "bfs-u", "cc-k",   "cc-u", "pr-k",
      "pr-u",  "bwaves", "roms",  "silo", "xgboost"};
  return ids;
}

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name,
                     double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig10", "relative performance vs TPP, 10 workloads x 3 ratios");

  SweepGrid grid;
  grid.AddAxis("ratio", PaperRatioLabels());
  grid.AddAxis("workload", Fig10Workloads());
  grid.AddAxis("policy", StandardPolicyNames());

  SweepRunner runner = MakeSweepRunner(options, "fig10");
  const std::vector<uint64_t> durations =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunDuration(cell.Get("workload"), cell.Get("policy"),
                           RatioFraction(cell.Get("ratio")));
      });

  const auto duration_of = [&](size_t r, size_t w, size_t p) {
    return durations[grid.FlatIndex({r, w, p})];
  };
  size_t tpp_policy = 0;
  for (size_t p = 0; p < StandardPolicyNames().size(); ++p) {
    if (StandardPolicyNames()[p] == "TPP") tpp_policy = p;
  }

  // rel_perf[ratio][policy] aggregated over workloads for the geomean.
  std::map<std::string, std::map<std::string, std::vector<double>>> rel;

  for (size_t r = 0; r < PaperRatios().size(); ++r) {
    const RatioPoint& ratio = PaperRatios()[r];
    TablePrinter table({"workload", "TPP", "AutoNUMA", "Memtis", "ARC",
                        "TwoQ", "HybridTier"});
    table.SetTitle(std::string("Figure 10 @ ") + ratio.label +
                   " — runtime relative to TPP (higher is better)");
    for (size_t w = 0; w < Fig10Workloads().size(); ++w) {
      const std::string& workload = Fig10Workloads()[w];
      const uint64_t tpp_ns = duration_of(r, w, tpp_policy);
      std::vector<std::string> row = {workload};
      for (size_t p = 0; p < StandardPolicyNames().size(); ++p) {
        const std::string& policy = StandardPolicyNames()[p];
        const uint64_t ns = duration_of(r, w, p);
        const double relative =
            ns == 0 ? 0.0
                    : static_cast<double>(tpp_ns) / static_cast<double>(ns);
        rel[ratio.label][policy].push_back(relative);
        row.push_back(FormatDouble(relative, 2));
      }
      table.AddRow(row);
    }
    // Geomean row.
    std::vector<std::string> geo_row = {"geomean"};
    for (const std::string& policy : StandardPolicyNames()) {
      geo_row.push_back(FormatDouble(GeoMean(rel[ratio.label][policy]), 2));
    }
    table.AddRow(geo_row);
    table.Print(std::cout);
    table.WriteCsv(CsvPath(std::string("fig10_overall_") +
                           (ratio.label + 2)));  // skip "1:".
  }

  // Cross-ratio geomean summary (the paper's headline numbers).
  std::cout << "cross-ratio geomean relative to TPP:\n";
  for (const std::string& policy : StandardPolicyNames()) {
    std::vector<double> all;
    for (const RatioPoint& ratio : PaperRatios()) {
      const auto& values = rel[ratio.label][policy];
      all.insert(all.end(), values.begin(), values.end());
    }
    std::cout << "  " << policy << ": " << FormatDouble(GeoMean(all), 3)
              << "\n";
  }
  std::cout << "paper shape: HybridTier geomean-best (beats TPP/AutoNUMA/"
               "Memtis/ARC/TwoQ by 51/16/29/88/88% on GAP); BFS shows the "
               "largest HybridTier edge; ARC/TwoQ trail\n";
  return 0;
}
