/**
 * @file
 * Figure 11 — HybridTier performance normalized against an all-fast-tier
 * baseline (the upper bound of any tiering system), for all 12
 * workloads at 1:16 / 1:8 / 1:4.
 *
 * The (workload x config) matrix — config being the all-fast oracle or
 * one of the three ratios — runs as one parallel sweep; cells pin the
 * shared bench seed because every ratio is normalized against the
 * oracle run of the same access stream.
 *
 * Shape target: HybridTier lands within ~14% / 9% / 6% of all-fast on
 * average at 1:16 / 1:8 / 1:4 — closer as the fast tier grows.
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name,
                     double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig11", "HybridTier normalized to the all-fast-tier oracle");

  // The oracle is ratio-independent (everything is fast): one extra
  // config value next to the three ratios.
  std::vector<std::string> configs = {"all-fast"};
  for (const std::string& label : PaperRatioLabels()) {
    configs.push_back(label);
  }
  SweepGrid grid;
  grid.AddAxis("workload", AllWorkloadIds());
  grid.AddAxis("config", configs);

  SweepRunner runner = MakeSweepRunner(options, "fig11");
  const std::vector<uint64_t> durations =
      runner.Run(grid, [](const SweepCell& cell) {
        const std::string& config = cell.Get("config");
        if (config == "all-fast") {
          return RunDuration(cell.Get("workload"), "AllFast", 1.0);
        }
        return RunDuration(cell.Get("workload"), "HybridTier",
                           RatioFraction(config));
      });

  TablePrinter table({"workload", "1:16", "1:8", "1:4"});
  table.SetTitle(
      "Figure 11: HybridTier performance relative to all-fast-tier "
      "(1.0 = matches the upper bound)");
  std::vector<std::vector<double>> per_ratio(PaperRatios().size());

  for (size_t w = 0; w < AllWorkloadIds().size(); ++w) {
    const uint64_t oracle_ns = durations[grid.FlatIndex({w, 0})];
    std::vector<std::string> row = {AllWorkloadIds()[w]};
    for (size_t r = 0; r < PaperRatios().size(); ++r) {
      const uint64_t ns = durations[grid.FlatIndex({w, r + 1})];
      const double relative =
          ns == 0 ? 0.0
                  : static_cast<double>(oracle_ns) /
                        static_cast<double>(ns);
      per_ratio[r].push_back(relative);
      row.push_back(FormatDouble(relative, 3));
    }
    table.AddRow(row);
  }
  std::vector<std::string> geo = {"geomean"};
  for (auto& values : per_ratio) {
    geo.push_back(FormatDouble(GeoMean(values), 3));
  }
  table.AddRow(geo);
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig11_upper_bound"));
  std::cout << "paper: HybridTier is on average 14% / 9% / 6% slower than "
               "all-fast at 1:16 / 1:8 / 1:4\n";
  return 0;
}
