/**
 * @file
 * Figure 11 — HybridTier performance normalized against an all-fast-tier
 * baseline (the upper bound of any tiering system), for all 12
 * workloads at 1:16 / 1:8 / 1:4.
 *
 * Shape target: HybridTier lands within ~14% / 9% / 6% of all-fast on
 * average at 1:16 / 1:8 / 1:4 — closer as the fast tier grows.
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name,
                     double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main() {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  Banner("fig11", "HybridTier normalized to the all-fast-tier oracle");

  TablePrinter table({"workload", "1:16", "1:8", "1:4"});
  table.SetTitle(
      "Figure 11: HybridTier performance relative to all-fast-tier "
      "(1.0 = matches the upper bound)");
  std::vector<std::vector<double>> per_ratio(PaperRatios().size());

  for (const std::string& workload : AllWorkloadIds()) {
    // The oracle is ratio-independent (everything is fast).
    const uint64_t oracle_ns = RunDuration(workload, "AllFast", 1.0);
    std::vector<std::string> row = {workload};
    for (size_t r = 0; r < PaperRatios().size(); ++r) {
      const uint64_t ns =
          RunDuration(workload, "HybridTier", PaperRatios()[r].fraction);
      const double relative =
          ns == 0 ? 0.0
                  : static_cast<double>(oracle_ns) /
                        static_cast<double>(ns);
      per_ratio[r].push_back(relative);
      row.push_back(FormatDouble(relative, 3));
    }
    table.AddRow(row);
  }
  std::vector<std::string> geo = {"geomean"};
  for (auto& values : per_ratio) {
    geo.push_back(FormatDouble(GeoMean(values), 3));
  }
  table.AddRow(geo);
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig11_upper_bound"));
  std::cout << "paper: HybridTier is on average 14% / 9% / 6% slower than "
               "all-fast at 1:16 / 1:8 / 1:4\n";
  return 0;
}
