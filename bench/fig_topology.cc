/**
 * @file
 * Multi-endpoint topology figure (beyond the paper): the same
 * quota-pressured multi-tenant mix runs over three slow-tier device
 * layouts — symmetric direct-attached expanders, an asymmetric tree
 * with two far devices behind a saturable switch, and a degraded fabric
 * where one expander runs hot at 4 GB/s — each with the fair-share
 * stack endpoint-blind (legacy HybridTier behavior) and endpoint-aware
 * (victim selection and fill-to-quota weigh hotness against the home
 * endpoint's idle latency + queue backlog).
 *
 * Shape targets: awareness is free on the symmetric layout (every unit
 * costs the same, the rankings collapse to the blind ones) and pays on
 * the skewed ones — lower p50 op latency on the asymmetric and degraded
 * layouts, with the degraded cell steering demand traffic off the slow
 * endpoint (its share of slow-tier accesses drops vs blind).
 *
 * Outputs:
 *  - `fig_topology.csv`: virtual-time metrics only — byte-identical
 *    across `--jobs` values (the CI jobs-invariance gate byte-diffs it).
 *  - `BENCH_topology.json`: the same cells plus the gate verdicts.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulation.h"
#include "mem/topology.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 4000000;
constexpr uint64_t kWarmup = 500000;
constexpr uint64_t kSeed = 42;
constexpr double kRatio = 1.0 / 8;

// Three Zipf hot sets (one double-weighted): enough quota pressure
// that most of the footprint lives on the slow tier and the enforcer
// actually demotes every rebalance, which is where endpoint choice
// shows up.
const char kTenants[] = "zipf,zipf:2,zipf";

struct TopoPoint {
  const char* name;  //!< CSV/JSON label.
  const char* spec;  //!< mem/topology.h spec; "" = bench default.
};

/**
 * The three layouts under test. Endpoint 0 keeps the paper's emulated
 * CXL timings in all of them, so the blind policy's view of "the slow
 * tier" is always anchored at the same baseline device.
 */
const TopoPoint kTopologies[] = {
    // Three identical direct-attached expanders.
    {"sym", "cxl:(1,2,3)"},
    // One near device + two far ones behind a shared 8 GB/s switch
    // uplink (the tree shape CXL 2.0 switches introduce): a switch hop
    // roughly doubles idle latency and the shared uplink saturates
    // under demand + migration traffic.
    {"asym", "cxl:(1,(2,3)),lat=124:350:350,bw=34:8:8,link=8"},
    // One expander degraded to 4 GB/s with 420 ns idle latency — the
    // fabric-health case: traffic landing there queues hard.
    {"degraded", "cxl:(1,2,3),lat=124:124:420,bw=34:34:4"},
};

struct TopoCell {
  std::string topology;
  std::string mode;  // "blind" | "aware".
  SimulationResult result;
  std::vector<uint64_t> endpoint_accesses;
  uint64_t fast_capacity_units = 0;

  /** Fraction of slow-tier demand accesses served by `endpoint`. */
  double EndpointShare(size_t endpoint) const {
    uint64_t total = 0;
    for (const uint64_t n : endpoint_accesses) total += n;
    if (total == 0 || endpoint >= endpoint_accesses.size()) return 0.0;
    return static_cast<double>(endpoint_accesses[endpoint]) /
           static_cast<double>(total);
  }
};

TopoCell RunTopo(const std::string& topo_name, const std::string& spec,
                 bool aware) {
  TopoCell cell;
  cell.topology = topo_name;
  cell.mode = aware ? "aware" : "blind";

  auto mux = MakeMuxWorkload(ParseTenantList(kTenants), kSeed);
  FairShareConfig fair_config;
  fair_config.endpoint_aware = aware;
  auto policy = std::make_unique<FairSharePolicy>(
      MakePolicy("HybridTier"), mux->directory(), fair_config);

  SimulationConfig config;
  config.fast_tier_fraction = kRatio;
  config.max_accesses = kAccessBudget;
  config.warmup_accesses = kWarmup;
  config.seed = kSeed;
  config.topology = spec;

  Simulation simulation(config, mux.get(), policy.get());
  cell.result = simulation.Run();
  cell.fast_capacity_units = simulation.fast_capacity_units();
  const PerfModel& perf = simulation.perf_model();
  for (uint32_t e = 0; e < perf.EndpointCount(); ++e) {
    cell.endpoint_accesses.push_back(perf.EndpointAccesses(e));
  }
  return cell;
}

void WriteJson(const std::string& path, const std::vector<TopoCell>& cells,
               bool aware_wins_asym, bool aware_wins_degraded,
               bool steers_off_degraded) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig_topology\",\n"
      << "  \"access_budget\": " << kAccessBudget << ",\n"
      << "  \"tenants\": \"" << kTenants << "\",\n"
      << "  \"gates\": {\"aware_wins_asym\": "
      << (aware_wins_asym ? "true" : "false")
      << ", \"aware_wins_degraded\": "
      << (aware_wins_degraded ? "true" : "false")
      << ", \"steers_off_degraded\": "
      << (steers_off_degraded ? "true" : "false") << "},\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const TopoCell& cell = cells[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"topology\": \"%s\", \"mode\": \"%s\", "
        "\"p50_ns\": %.0f, \"p99_ns\": %.0f, \"mops\": %.3f, "
        "\"fast_fill\": %.4f, \"endpoint_shares\": [",
        cell.topology.c_str(), cell.mode.c_str(),
        cell.result.median_latency_ns, cell.result.p99_latency_ns,
        cell.result.throughput_mops, cell.result.FastAccessFraction());
    out << line;
    for (size_t e = 0; e < cell.endpoint_accesses.size(); ++e) {
      std::snprintf(line, sizeof(line), "%s%.4f", e == 0 ? "" : ", ",
                    cell.EndpointShare(e));
      out << line;
    }
    out << "]}" << (i + 1 == cells.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig_topology",
         "endpoint-aware vs endpoint-blind placement across slow-tier "
         "layouts");

  // --topology overrides the swept layouts with one custom spec; the
  // built-in gates only apply to the default three-layout sweep.
  std::vector<TopoPoint> topologies;
  if (options.topology.empty()) {
    topologies.assign(std::begin(kTopologies), std::end(kTopologies));
  } else {
    topologies.push_back({"custom", options.topology.c_str()});
  }

  std::vector<std::string> topo_names;
  for (const TopoPoint& topo : topologies) topo_names.push_back(topo.name);
  SweepGrid grid;
  grid.AddAxis("topology", topo_names);
  grid.AddAxis("mode", {"blind", "aware"});
  SweepRunner runner = MakeSweepRunner(options, "fig_topology");
  const std::vector<TopoCell> cells =
      runner.Run(grid, [&](const SweepCell& cell) {
        return RunTopo(cell.Get("topology"),
                       topologies[cell.ValueIndex("topology")].spec,
                       cell.Get("mode") == "aware");
      });

  TablePrinter table({"topology", "mode", "p50 ns", "p99 ns", "Mop/s",
                      "fast-fill %", "endpoint shares %"});
  table.SetTitle("per-layout results (FairShare(HybridTier), 1:8)");
  for (const TopoCell& cell : cells) {
    std::string shares;
    for (size_t e = 0; e < cell.endpoint_accesses.size(); ++e) {
      shares += (e == 0 ? "" : "/") +
                FormatDouble(cell.EndpointShare(e) * 100, 1);
    }
    table.AddRow({cell.topology, cell.mode,
                  FormatDouble(cell.result.median_latency_ns, 0),
                  FormatDouble(cell.result.p99_latency_ns, 0),
                  FormatDouble(cell.result.throughput_mops, 3),
                  FormatDouble(cell.result.FastAccessFraction() * 100, 1),
                  shares});
  }
  table.Print(std::cout);

  // CSV mirror (virtual-time only; byte-diffed across --jobs by CI).
  TablePrinter csv({"topology", "mode", "p50_ns", "p99_ns", "mops",
                    "fast_fill", "ep0_share", "ep1_share", "ep2_share"});
  csv.SetTitle("fig_topology");
  for (const TopoCell& cell : cells) {
    csv.AddRow({cell.topology, cell.mode,
                FormatDouble(cell.result.median_latency_ns, 0),
                FormatDouble(cell.result.p99_latency_ns, 0),
                FormatDouble(cell.result.throughput_mops, 3),
                FormatDouble(cell.result.FastAccessFraction(), 4),
                FormatDouble(cell.EndpointShare(0), 4),
                FormatDouble(cell.EndpointShare(1), 4),
                FormatDouble(cell.EndpointShare(2), 4)});
  }
  csv.WriteCsv(CsvPath("fig_topology"));

  if (!options.topology.empty()) {
    // Custom layout: report only — the built-in expectations describe
    // the default sweep's three layouts.
    WriteJson("BENCH_topology.json", cells, false, false, false);
    std::cout << "wrote BENCH_topology.json (custom layout, no gates)\n";
    return 0;
  }

  // Gates: blind vs aware per layout, paired by sweep order
  // (topology-major, blind before aware).
  const auto find = [&](const std::string& topo,
                        const std::string& mode) -> const TopoCell& {
    for (const TopoCell& cell : cells) {
      if (cell.topology == topo && cell.mode == mode) return cell;
    }
    HT_FATAL("missing cell ", topo, "/", mode);
  };
  const bool aware_wins_asym = find("asym", "aware").result.median_latency_ns <
                               find("asym", "blind").result.median_latency_ns;
  const bool aware_wins_degraded =
      find("degraded", "aware").result.median_latency_ns <
      find("degraded", "blind").result.median_latency_ns;
  // Endpoint 2 is the 420 ns / 4 GB/s device in the degraded layout.
  const bool steers_off_degraded =
      find("degraded", "aware").EndpointShare(2) <
      find("degraded", "blind").EndpointShare(2);

  WriteJson("BENCH_topology.json", cells, aware_wins_asym,
            aware_wins_degraded, steers_off_degraded);
  std::cout << "wrote BENCH_topology.json\n"
            << "aware beats blind p50 (asym):     "
            << (aware_wins_asym ? "yes" : "NO") << "\n"
            << "aware beats blind p50 (degraded): "
            << (aware_wins_degraded ? "yes" : "NO") << "\n"
            << "steers off degraded endpoint:     "
            << (steers_off_degraded ? "yes" : "NO") << "\n";

  const bool ok =
      aware_wins_asym && aware_wins_degraded && steers_off_degraded;
  if (!ok) std::cout << "TOPOLOGY GATE FAILURE: see table above\n";
  return ok ? 0 : 1;
}
