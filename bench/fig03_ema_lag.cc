/**
 * @file
 * Figure 3a — EMA scores are lagging indicators.
 *
 * A page is accessed 50 times per minute for 10 minutes and never
 * again; its EMA counter is cooled (halved) every 2 minutes. The paper
 * shows the score drops below 10 only ~9 minutes after the accesses
 * stop. This bench reproduces the trace exactly (it is analytic, so the
 * paper's absolute numbers should match).
 */

#include <iostream>

#include "common/bench_util.h"
#include "common/ema.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  // Analytic single-series bench: no sweep cells, but the shared flag
  // parser still wires --log-level and uniform flag rejection.
  ParseBenchArgs(argc, argv);
  Banner("fig03a", "EMA lag: access trace vs EMA score");

  EmaCounter ema(2 * kMinute);
  TablePrinter table({"minute", "accesses/min", "EMA score"});
  table.SetTitle("Figure 3a: EMA score lags the access rate");

  TimeNs first_below_10 = 0;
  for (int minute = 0; minute <= 25; ++minute) {
    const TimeNs now = static_cast<TimeNs>(minute) * kMinute;
    const uint64_t accesses = minute < 10 ? 50 : 0;
    if (accesses > 0) ema.Add(now, accesses);
    const uint64_t score = ema.Value(now);
    if (minute >= 10 && first_below_10 == 0 && score < 10) {
      first_below_10 = now;
    }
    table.AddRow({std::to_string(minute), std::to_string(accesses),
                  std::to_string(score)});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig03_ema_lag"));

  std::cout << "shape check: accesses stop at minute 10; EMA first below "
               "10 at minute "
            << first_below_10 / kMinute
            << " (paper: ~19, i.e. ~9 minutes of lag)\n";
  return 0;
}
