/**
 * @file
 * Figure 2 — data hotness distribution changes rapidly.
 *
 * For PageRank (graph analytics) and XGBoost (ML training), measure the
 * fraction of initially hot pages that remain hot as time advances. The
 * two decay series are independent sweep cells, so they run in parallel
 * under --jobs. The paper reports that in both workloads most pages are
 * no longer hot within ~5 minutes; our virtual timeline is compressed,
 * so the X axis is windows of the access stream (each window ~ a
 * "minutes analogue").
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "mem/page.h"

namespace hybridtier::bench {
namespace {

/** Pages with at least this many accesses in a window count as hot. */
constexpr uint64_t kHotThreshold = 16;
constexpr int kWindows = 8;
constexpr uint64_t kAccessesPerWindow = 2000000;

std::vector<double> DecaySeries(const std::string& workload_id) {
  auto workload = MakeWorkload(workload_id, DefaultScaleFor(workload_id),
                               /*seed=*/42);
  OpTrace op;
  std::set<PageId> initial_hot;
  std::vector<double> still_hot_fraction;

  for (int window = 0; window < kWindows; ++window) {
    std::map<PageId, uint64_t> counts;
    uint64_t accesses = 0;
    while (accesses < kAccessesPerWindow) {
      workload->NextOp(0, &op);
      for (const MemoryAccess& access : op.accesses) {
        ++counts[PageOfAddr(access.addr)];
        ++accesses;
      }
    }
    std::set<PageId> hot;
    for (const auto& [page, count] : counts) {
      if (count >= kHotThreshold) hot.insert(page);
    }
    if (window == 0) {
      initial_hot = hot;
      still_hot_fraction.push_back(1.0);
      continue;
    }
    size_t surviving = 0;
    for (const PageId page : initial_hot) surviving += hot.count(page);
    still_hot_fraction.push_back(
        initial_hot.empty()
            ? 0.0
            : static_cast<double>(surviving) /
                  static_cast<double>(initial_hot.size()));
  }
  return still_hot_fraction;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig02", "hotness decay of initially hot pages (PR, XGBoost)");

  SweepGrid grid;
  grid.AddAxis("workload", {"pr-k", "xgboost"});
  SweepRunner runner = MakeSweepRunner(options, "fig02");
  const std::vector<std::vector<double>> series =
      runner.Run(grid, [](const SweepCell& cell) {
        return DecaySeries(cell.Get("workload"));
      });
  const std::vector<double>& pr = series[0];
  const std::vector<double>& xgb = series[1];

  TablePrinter table({"window", "pr-kron % still hot", "xgboost % still hot"});
  table.SetTitle(
      "Figure 2: fraction of window-0 hot pages still hot per window");
  for (size_t w = 0; w < pr.size(); ++w) {
    table.AddRow({std::to_string(w), FormatDouble(pr[w] * 100, 1),
                  FormatDouble(xgb[w] * 100, 1)});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig02_hotness_decay"));

  const double pr_final = pr.back();
  const double xgb_final = xgb.back();
  std::cout << "shape check: PR hot-set survival decays to "
            << FormatDouble(pr_final * 100, 1) << "% ; XGBoost to "
            << FormatDouble(xgb_final * 100, 1)
            << "% (paper: most pages no longer hot after ~5 min)\n";
  return 0;
}
