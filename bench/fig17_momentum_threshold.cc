/**
 * @file
 * Figure 17 — momentum-threshold sensitivity: CacheLib CDN and
 * social-graph performance (p50 + throughput) at thresholds 1..6,
 * normalized to the default threshold 3, at 1:8.
 *
 * The (workload x threshold) matrix runs as one parallel sweep; cells
 * pin the shared bench seed, and the threshold-3 cell doubles as the
 * normalization baseline (runs are deterministic, so a separate
 * baseline run would return identical numbers).
 *
 * Shape target: thresholds below 3 hurt (cold pages promoted on a few
 * touches); 3..6 is flat; social-graph is more sensitive than CDN
 * (larger hot set, scarcer fast tier).
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 4000000;
constexpr uint64_t kWarmup = 1200000;
constexpr uint32_t kDefaultThreshold = 3;

SimulationResult RunThreshold(const std::string& workload_id,
                              uint32_t threshold) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = "HybridTier";
  spec.fast_fraction = 1.0 / 8;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  spec.policy_options.momentum_threshold = threshold;
  return RunCell(spec);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig17", "momentum-threshold sensitivity sweep (1..6, 1:8)");

  const std::vector<std::string> workloads = {"cdn", "social"};
  std::vector<std::string> thresholds;
  for (uint32_t threshold = 1; threshold <= 6; ++threshold) {
    thresholds.push_back(std::to_string(threshold));
  }
  SweepGrid grid;
  grid.AddAxis("workload", workloads);
  grid.AddAxis("threshold", thresholds);

  SweepRunner runner = MakeSweepRunner(options, "fig17");
  const std::vector<SimulationResult> results =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunThreshold(
            cell.Get("workload"),
            static_cast<uint32_t>(std::stoul(cell.Get("threshold"))));
      });

  TablePrinter table({"threshold", "CDN p50 (norm.)", "CDN op/s (norm.)",
                      "social p50 (norm.)", "social op/s (norm.)"});
  table.SetTitle(
      "Figure 17: performance normalized to momentum threshold 3 "
      "(p50 normalized as baseline/measured; >1 is better)");

  for (size_t t = 0; t < thresholds.size(); ++t) {
    std::vector<std::string> row = {thresholds[t]};
    for (size_t w = 0; w < workloads.size(); ++w) {
      const SimulationResult& result = results[grid.FlatIndex({w, t})];
      const SimulationResult& base =
          results[grid.FlatIndex({w, kDefaultThreshold - 1})];
      row.push_back(FormatDouble(
          base.median_latency_ns / result.median_latency_ns, 3));
      row.push_back(FormatDouble(
          result.throughput_mops / base.throughput_mops, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig17_momentum_threshold"));
  std::cout << "paper shape: performance dips below threshold 3; flat "
               "from 3 to 6; social-graph more sensitive than CDN\n";
  return 0;
}
