/**
 * @file
 * Figure 9 — CacheLib CDN and social-graph: median op latency and
 * throughput for all six tiering systems at 1:16 / 1:8 / 1:4.
 *
 * The (workload x policy x ratio) matrix runs as one parallel sweep;
 * every cell pins the shared bench seed so all systems see the same
 * access stream per (workload, ratio) point.
 *
 * Shape targets: HybridTier best or tied in nearly all cells; its 1:16
 * configuration competitive with other systems' 1:8.
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 5000000;
constexpr uint64_t kWarmup = 1500000;

SimulationResult RunPoint(const std::string& workload_id,
                          const std::string& policy_name,
                          double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  return RunCell(spec);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig09", "CacheLib CDN + social-graph across 6 systems");

  const std::vector<std::string> workloads = {"cdn", "social"};
  SweepGrid grid;
  grid.AddAxis("workload", workloads);
  grid.AddAxis("policy", StandardPolicyNames());
  grid.AddAxis("ratio", PaperRatioLabels());

  SweepRunner runner = MakeSweepRunner(options, "fig09");
  const std::vector<SimulationResult> results =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunPoint(cell.Get("workload"), cell.Get("policy"),
                        RatioFraction(cell.Get("ratio")));
      });

  for (size_t w = 0; w < workloads.size(); ++w) {
    const std::string& workload = workloads[w];
    TablePrinter table({"system", "1:16 p50(ns)", "1:16 Mop/s",
                        "1:8 p50(ns)", "1:8 Mop/s", "1:4 p50(ns)",
                        "1:4 Mop/s"});
    table.SetTitle(std::string("Figure 9: CacheLib ") + workload);
    std::map<std::string, std::vector<double>> p50s;
    for (size_t p = 0; p < StandardPolicyNames().size(); ++p) {
      const std::string& policy = StandardPolicyNames()[p];
      std::vector<std::string> row = {policy};
      for (size_t r = 0; r < PaperRatios().size(); ++r) {
        const SimulationResult& result = results[grid.FlatIndex({w, p, r})];
        row.push_back(FormatDouble(result.median_latency_ns, 0));
        row.push_back(FormatDouble(result.throughput_mops, 3));
        p50s[policy].push_back(result.median_latency_ns);
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    table.WriteCsv(CsvPath(std::string("fig09_cachelib_") + workload));

    // Shape summary: HybridTier's rank per ratio by median latency.
    for (size_t r = 0; r < PaperRatios().size(); ++r) {
      size_t rank = 1;
      for (const std::string& policy : StandardPolicyNames()) {
        if (policy != "HybridTier" &&
            p50s[policy][r] < p50s["HybridTier"][r]) {
          ++rank;
        }
      }
      std::cout << workload << " @ " << PaperRatios()[r].label
                << ": HybridTier p50 rank " << rank << " of 6\n";
    }
  }
  std::cout << "paper shape: HybridTier best in all but two cells; its "
               "1:16 outperforms others' 1:8 on CDN\n";
  return 0;
}
