/**
 * @file
 * Figure 15 — ablation: HybridTier vs HybridTier with only the
 * frequency tracker (no momentum), all workloads at 1:8.
 *
 * The (workload x variant) matrix runs as one parallel sweep; cells pin
 * the shared bench seed because each row compares the two variants on
 * the same access stream.
 *
 * Shape target: momentum helps most on CacheLib and XGBoost (paper:
 * +8.5% average on those); BFS/CC/PR are ~flat because their hot sets
 * fit in the fast tier.
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = 1.0 / 8;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  if (workload_id == "cdn" || workload_id == "social") {
    // Production CacheLib popularity churns continuously (paper §2.2);
    // the momentum tracker's value shows under that churn.
    for (int event = 1; event <= 6; ++event) {
      spec.churn.push_back({.time_ns = event * 120 * kMillisecond,
                            .hot_fraction = 0.35});
    }
  }
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig15", "frequency+momentum vs frequency-only (1:8)");

  SweepGrid grid;
  grid.AddAxis("workload", AllWorkloadIds());
  grid.AddAxis("variant", {"HybridTier-onlyFreq", "HybridTier"});

  SweepRunner runner = MakeSweepRunner(options, "fig15");
  const std::vector<uint64_t> durations =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunDuration(cell.Get("workload"), cell.Get("variant"));
      });

  TablePrinter table(
      {"workload", "onlyFreq runtime (ms)", "HybridTier runtime (ms)",
       "full/onlyFreq perf"});
  table.SetTitle(
      "Figure 15: performance of HybridTier vs HybridTier-onlyFreq "
      "(>1 = momentum tracker helps)");
  for (size_t w = 0; w < AllWorkloadIds().size(); ++w) {
    const uint64_t only_freq = durations[grid.FlatIndex({w, 0})];
    const uint64_t full = durations[grid.FlatIndex({w, 1})];
    const double relative =
        full == 0 ? 0.0
                  : static_cast<double>(only_freq) /
                        static_cast<double>(full);
    table.AddRow({AllWorkloadIds()[w],
                  FormatDouble(static_cast<double>(only_freq) / 1e6, 1),
                  FormatDouble(static_cast<double>(full) / 1e6, 1),
                  FormatDouble(relative, 3)});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig15_momentum_ablation"));
  std::cout << "paper shape: biggest gains on CacheLib + XGBoost (~8.5% "
               "avg); GAP kernels flat (hot sets fit in fast tier)\n";
  return 0;
}
