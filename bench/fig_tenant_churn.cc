/**
 * @file
 * Tenant-churn adaptation figure (beyond the paper, Table-3 style): three
 * tenants share a 1:8 fast tier under the fair-share quota enforcer. A
 * second Zipf hot set arrives mid-run and the CDN tenant departs later;
 * the bench measures how fast the quota split reconverges around each
 * event.
 *
 * Shape targets: the departed tenant's occupancy drops to zero within
 * one rebalance interval of its exit (reclaim is immediate, not
 * trickled); the survivors' occupancy rises as the freed capacity is
 * re-divided; and the weighted Jain fairness index recovers to >= 0.9 of
 * its pre-churn value shortly after each disturbance.
 */

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/percentile.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 5000000;
constexpr uint64_t kSeed = 42;
constexpr double kRatio = 1.0 / 8;
constexpr TimeNs kMaxTime = 300 * kMillisecond;
constexpr TimeNs kArrival = 80 * kMillisecond;    // zipf#1 joins.
constexpr TimeNs kDeparture = 180 * kMillisecond; // cdn exits.

// zipf and cdn:2 run from t=0; cdn departs; a second zipf arrives.
std::string TenantList() {
  return "zipf,cdn:2@0-" + std::to_string(kDeparture) + ",zipf@" +
         std::to_string(kArrival);
}

struct ChurnRun {
  SimulationResult result;
  uint64_t fast_capacity_units = 0;
  FairShareConfig fair_config;
};

ChurnRun Run() {
  auto mux = MakeMuxWorkload(ParseTenantList(TenantList()), kSeed);
  ChurnRun run;
  auto policy = std::make_unique<FairSharePolicy>(
      MakePolicy("HybridTier"), mux->directory(), run.fair_config);

  SimulationConfig config;
  config.fast_tier_fraction = kRatio;
  config.max_accesses = kAccessBudget;
  config.max_time_ns = kMaxTime;
  config.seed = kSeed;

  Simulation simulation(config, mux.get(), policy.get());
  run.result = simulation.Run();
  run.fast_capacity_units = simulation.fast_capacity_units();
  return run;
}

/** Series value at the last sample at or before `t` (0 if none). */
double ValueAt(const TimeSeries& series, TimeNs t) {
  double value = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] > t) break;
    value = series.values[i];
  }
  return value;
}

/** Mean of the series values inside [begin, end); 0 when empty. */
double WindowMean(const TimeSeries& series, TimeNs begin, TimeNs end) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] >= begin && series.times_ns[i] < end) {
      sum += series.values[i];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/**
 * First time at/after `from` the series reaches `target` and stays at
 * or above it for `sustain` consecutive points (a shorter run counts
 * only if it holds through the end of the series) — a one-sample spike
 * right after a churn event is not reconvergence.
 */
uint64_t RecoveryTimeNs(const TimeSeries& series, double target,
                        TimeNs from, size_t sustain = 3) {
  size_t run_start = 0;
  size_t run_length = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] < from || series.values[i] < target) {
      run_length = 0;
      continue;
    }
    if (run_length == 0) run_start = i;
    if (++run_length >= sustain) return series.times_ns[run_start];
  }
  return run_length > 0 ? series.times_ns[run_start] : UINT64_MAX;
}

std::string FormatRecovery(uint64_t event_ns, uint64_t recovered_ns) {
  if (recovered_ns == UINT64_MAX) return "never";
  return FormatDouble(
             static_cast<double>(recovered_ns - event_ns) / kMillisecond,
             1) +
         " ms";
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig_tenant_churn",
         "quota reconvergence around a mid-run arrival and departure");

  // One-cell sweep: the figure is a single timeline, but routing it
  // through SweepRunner keeps the --jobs flag and per-sweep wall-time
  // reporting uniform across the matrix drivers.
  SweepGrid grid;
  grid.AddAxis("cell", {"churn"});
  SweepRunner runner = MakeSweepRunner(options, "fig_tenant_churn");
  const ChurnRun run =
      runner.Run(grid, [](const SweepCell&) { return Run(); }).front();
  const SimulationResult& result = run.result;
  const TimeSeries& fairness = result.weighted_fairness_timeline;

  // Reference fairness levels just before each event.
  const TimeNs window = run.fair_config.rebalance_interval_ns;
  const double pre_arrival =
      WindowMean(fairness, kArrival > window ? kArrival - window : 0,
                 kArrival);
  const double pre_departure =
      WindowMean(fairness, kDeparture - window, kDeparture);

  const uint64_t arrival_recovered =
      RecoveryTimeNs(fairness, 0.9 * pre_arrival, kArrival);
  const uint64_t departure_recovered =
      RecoveryTimeNs(fairness, 0.9 * pre_departure, kDeparture);

  // Departed tenant (index 1, cdn): when its occupancy reaches zero.
  const TimeSeries& departed = result.tenants[1].occupancy_timeline;
  uint64_t drained_ns = UINT64_MAX;
  for (size_t i = 0; i < departed.size(); ++i) {
    if (departed.times_ns[i] >= kDeparture && departed.values[i] == 0.0) {
      drained_ns = departed.times_ns[i];
      break;
    }
  }

  // Survivor occupancy (share of the fast tier) before/after departure.
  double survivors_before = 0.0;
  double survivors_after = 0.0;
  for (const size_t t : {size_t{0}, size_t{2}}) {
    const TimeSeries& occ = result.tenants[t].occupancy_timeline;
    survivors_before += WindowMean(occ, kDeparture - window, kDeparture);
    survivors_after +=
        WindowMean(occ, result.duration_ns > window
                            ? result.duration_ns - window
                            : 0,
                   result.duration_ns + 1);
  }

  TablePrinter table({"event", "t", "pre fair", "fair recovered",
                      "note"});
  table.SetTitle("churn adaptation (weighted Jain fairness)");
  table.AddRow({"arrival zipf#1", FormatTime(kArrival),
                FormatDouble(pre_arrival, 3),
                FormatRecovery(kArrival, arrival_recovered),
                "new tenant starts from zero occupancy"});
  table.AddRow({"departure cdn", FormatTime(kDeparture),
                FormatDouble(pre_departure, 3),
                FormatRecovery(kDeparture, departure_recovered),
                drained_ns == UINT64_MAX
                    ? std::string("cdn never drained")
                    : "cdn drained in " +
                          FormatRecovery(kDeparture, drained_ns)});
  table.Print(std::cout);

  std::cout << "survivor fast-tier share: "
            << FormatDouble(survivors_before * 100, 1) << " % before -> "
            << FormatDouble(survivors_after * 100, 1)
            << " % after departure\n"
            << "end-of-run weighted Jain: "
            << FormatDouble(result.weighted_jain_fairness, 3) << "\n";

  // Timeline CSV: per-tenant occupancy share + weighted fairness.
  TablePrinter timeline({"t_ns", "zipf", "cdn", "zipf#1",
                         "weighted_jain"});
  timeline.SetTitle("timeline");
  for (size_t i = 0; i < fairness.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(fairness.times_ns[i]));
    for (size_t t = 0; t < result.tenants.size(); ++t) {
      // Per-tenant series are sparse (points only while the tenant is
      // present or draining); look up by the fairness timestamp.
      const TimeSeries& occ = result.tenants[t].occupancy_timeline;
      row.push_back(FormatDouble(ValueAt(occ, fairness.times_ns[i]), 4));
    }
    row.push_back(FormatDouble(fairness.values[i], 4));
    timeline.AddRow(row);
  }
  timeline.WriteCsv(CsvPath("fig_tenant_churn"));

  const bool converged =
      drained_ns != UINT64_MAX && departure_recovered != UINT64_MAX;
  if (!converged) {
    std::cout << "RECONVERGENCE FAILURE: see table above\n";
  }
  return converged ? 0 : 1;
}
