/**
 * @file
 * Microbenchmarks (google-benchmark) for the tracking data structures:
 * update/lookup throughput of the blocked CBF vs standard CBF vs exact
 * table, cooling passes, Zipf sampling, and the cache model. These back
 * the paper's data-structure-level claims (compactness and locality of
 * the blocked CBF) with direct operation costs.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_sim.h"
#include "common/rng.h"
#include "probstruct/blocked_cbf.h"
#include "probstruct/cbf.h"
#include "probstruct/exact_table.h"
#include "probstruct/sizing.h"
#include "workloads/zipf.h"

namespace hybridtier {
namespace {

constexpr size_t kFastPages = 1 << 20;  // 4 GiB fast tier.

void BM_BlockedCbfIncrement(benchmark::State& state) {
  BlockedCountingBloomFilter cbf(FrequencyCbfSizing(kFastPages), 1);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbf.Increment(rng.NextBounded(kFastPages)));
  }
}
BENCHMARK(BM_BlockedCbfIncrement);

void BM_StandardCbfIncrement(benchmark::State& state) {
  CountingBloomFilter cbf(FrequencyCbfSizing(kFastPages), 1);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbf.Increment(rng.NextBounded(kFastPages)));
  }
}
BENCHMARK(BM_StandardCbfIncrement);

void BM_ExactTableIncrement(benchmark::State& state) {
  ExactCounterTable table(kFastPages * 16);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Increment(rng.NextBounded(kFastPages * 16)));
  }
}
BENCHMARK(BM_ExactTableIncrement);

void BM_BlockedCbfGet(benchmark::State& state) {
  BlockedCountingBloomFilter cbf(FrequencyCbfSizing(kFastPages), 1);
  Rng rng(7);
  for (uint64_t i = 0; i < kFastPages / 4; ++i) {
    cbf.Increment(rng.NextBounded(kFastPages));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbf.Get(rng.NextBounded(kFastPages)));
  }
}
BENCHMARK(BM_BlockedCbfGet);

void BM_StandardCbfGet(benchmark::State& state) {
  CountingBloomFilter cbf(FrequencyCbfSizing(kFastPages), 1);
  Rng rng(7);
  for (uint64_t i = 0; i < kFastPages / 4; ++i) {
    cbf.Increment(rng.NextBounded(kFastPages));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbf.Get(rng.NextBounded(kFastPages)));
  }
}
BENCHMARK(BM_StandardCbfGet);

void BM_BlockedCbfCooling(benchmark::State& state) {
  BlockedCountingBloomFilter cbf(
      FrequencyCbfSizing(static_cast<size_t>(state.range(0))), 1);
  for (auto _ : state) {
    cbf.CoolByHalving();
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(cbf.memory_bytes()));
}
BENCHMARK(BM_BlockedCbfCooling)->Arg(1 << 16)->Arg(1 << 20);

void BM_ExactTableCooling(benchmark::State& state) {
  ExactCounterTable table(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    table.CoolByHalving();
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(table.memory_bytes()));
}
BENCHMARK(BM_ExactTableCooling)->Arg(1 << 16)->Arg(1 << 20);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(100000000, 0.99);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfNext);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  Cache cache(CacheConfig{.size_bytes = 1 << 20, .ways = 16,
                          .line_size = 64});
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.AccessLine(rng.NextBounded(1 << 22), AccessOwner::kApp));
  }
}
BENCHMARK(BM_CacheHierarchyAccess);

}  // namespace
}  // namespace hybridtier

BENCHMARK_MAIN();
