/**
 * @file
 * Figure 12 — huge-page (2 MiB) performance: HybridTier speedup over
 * Memtis for all 12 workloads at 1:16 / 1:8 / 1:4 with tracking and
 * migration at huge-page granularity.
 *
 * The (workload x ratio x system) matrix runs as one parallel sweep;
 * cells pin the shared bench seed because each speedup compares the two
 * systems on the same access stream.
 *
 * Shape target: HybridTier ~on par at 1:16 and ahead on average at
 * 1:8 / 1:4 (paper: +9% and +11%).
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name,
                     double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  spec.mode = PageMode::kHuge;
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig12", "huge-page HybridTier speedup over Memtis");

  SweepGrid grid;
  grid.AddAxis("workload", AllWorkloadIds());
  grid.AddAxis("ratio", PaperRatioLabels());
  grid.AddAxis("system", {"Memtis", "HybridTier"});

  SweepRunner runner = MakeSweepRunner(options, "fig12");
  const std::vector<uint64_t> durations =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunDuration(cell.Get("workload"), cell.Get("system"),
                           RatioFraction(cell.Get("ratio")));
      });

  TablePrinter table({"workload", "1:16", "1:8", "1:4"});
  table.SetTitle(
      "Figure 12: HybridTier huge-page performance relative to Memtis "
      "(>1 = HybridTier faster)");
  std::vector<std::vector<double>> per_ratio(PaperRatios().size());

  for (size_t w = 0; w < AllWorkloadIds().size(); ++w) {
    std::vector<std::string> row = {AllWorkloadIds()[w]};
    for (size_t r = 0; r < PaperRatios().size(); ++r) {
      const uint64_t memtis_ns = durations[grid.FlatIndex({w, r, 0})];
      const uint64_t hybrid_ns = durations[grid.FlatIndex({w, r, 1})];
      const double speedup =
          hybrid_ns == 0 ? 0.0
                         : static_cast<double>(memtis_ns) /
                               static_cast<double>(hybrid_ns);
      per_ratio[r].push_back(speedup);
      row.push_back(FormatDouble(speedup, 3));
    }
    table.AddRow(row);
  }
  std::vector<std::string> geo = {"geomean"};
  for (auto& values : per_ratio) {
    geo.push_back(FormatDouble(GeoMean(values), 3));
  }
  table.AddRow(geo);
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig12_hugepage"));
  std::cout << "paper: geomean ~1.00 / 1.09 / 1.11 at 1:16 / 1:8 / 1:4\n";
  return 0;
}
