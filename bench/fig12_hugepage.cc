/**
 * @file
 * Figure 12 — huge-page (2 MiB) performance: HybridTier speedup over
 * Memtis for all 12 workloads at 1:16 / 1:8 / 1:4 with tracking and
 * migration at huge-page granularity.
 *
 * Shape target: HybridTier ~on par at 1:16 and ahead on average at
 * 1:8 / 1:4 (paper: +9% and +11%).
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 3500000;
constexpr uint64_t kWarmup = 1000000;

uint64_t RunDuration(const std::string& workload_id,
                     const std::string& policy_name,
                     double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = kWarmup;
  spec.mode = PageMode::kHuge;
  return RunCell(spec).SteadyDurationNs();
}

}  // namespace
}  // namespace hybridtier::bench

int main() {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  Banner("fig12", "huge-page HybridTier speedup over Memtis");

  TablePrinter table({"workload", "1:16", "1:8", "1:4"});
  table.SetTitle(
      "Figure 12: HybridTier huge-page performance relative to Memtis "
      "(>1 = HybridTier faster)");
  std::vector<std::vector<double>> per_ratio(PaperRatios().size());

  for (const std::string& workload : AllWorkloadIds()) {
    std::vector<std::string> row = {workload};
    for (size_t r = 0; r < PaperRatios().size(); ++r) {
      const double fraction = PaperRatios()[r].fraction;
      const uint64_t memtis_ns = RunDuration(workload, "Memtis", fraction);
      const uint64_t hybrid_ns =
          RunDuration(workload, "HybridTier", fraction);
      const double speedup =
          hybrid_ns == 0 ? 0.0
                         : static_cast<double>(memtis_ns) /
                               static_cast<double>(hybrid_ns);
      per_ratio[r].push_back(speedup);
      row.push_back(FormatDouble(speedup, 3));
    }
    table.AddRow(row);
  }
  std::vector<std::string> geo = {"geomean"};
  for (auto& values : per_ratio) {
    geo.push_back(FormatDouble(GeoMean(values), 3));
  }
  table.AddRow(geo);
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig12_hugepage"));
  std::cout << "paper: geomean ~1.00 / 1.09 / 1.11 at 1:16 / 1:8 / 1:4\n";
  return 0;
}
