/**
 * @file
 * Figure 13 — cache misses due to HybridTier tiering activities as a
 * share of the system total, over time, for regular and huge pages,
 * CacheLib at 1:4 (the HybridTier counterpart of Fig 5). The
 * (page mode x system) matrix runs as one parallel sweep; the Memtis
 * cells feed the side-by-side reduction lines.
 *
 * Shape target: HybridTier's tiering share is a small fraction of
 * Memtis's (paper: ~5% regular / ~4% huge of total misses, vs 9-18%).
 */

#include <iostream>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 12000000;

SimulationResult RunMode(const std::string& policy, PageMode mode) {
  RunSpec spec;
  spec.workload_id = "cdn";
  spec.workload_scale = DefaultScaleFor("cdn");
  spec.policy_name = policy;
  spec.fast_fraction = 1.0 / 4;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = 0;
  spec.mode = mode;
  spec.base_config.stats_interval_ns = 20 * kMillisecond;
  return RunCell(spec);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig13", "HybridTier tiering cache-miss share over time (1:4)");

  const std::vector<std::string> modes = {"4KiB pages", "huge pages"};
  SweepGrid grid;
  grid.AddAxis("pages", modes);
  grid.AddAxis("system", {"HybridTier", "Memtis"});
  SweepRunner runner = MakeSweepRunner(options, "fig13");
  const std::vector<SimulationResult> results =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunMode(cell.Get("system"),
                       cell.Get("pages") == "4KiB pages"
                           ? PageMode::kRegular
                           : PageMode::kHuge);
      });

  const std::vector<const char*> csvs = {
      "fig13_hybridtier_cache_overhead_4k",
      "fig13_hybridtier_cache_overhead_huge"};
  for (size_t m = 0; m < modes.size(); ++m) {
    const std::string& label = modes[m];
    const SimulationResult& result = results[grid.FlatIndex({m, 0})];
    TablePrinter table({"t (ms)", "tiering L1 miss share",
                        "tiering LLC miss share"});
    table.SetTitle(std::string("Figure 13 (") + label +
                   "): HybridTier tiering share of total cache misses");
    const TimeSeries& l1 = result.tiering_l1_share_timeline;
    const TimeSeries& llc = result.tiering_llc_share_timeline;
    for (size_t i = 0; i < l1.size(); ++i) {
      table.AddRow({std::to_string(l1.times_ns[i] / kMillisecond),
                    FormatDouble(l1.values[i] * 100, 1) + "%",
                    FormatDouble(llc.values[i] * 100, 1) + "%"});
    }
    table.Print(std::cout);
    table.WriteCsv(CsvPath(csvs[m]));
    std::cout << label << " overall: tiering L1 share "
              << FormatDouble(result.TieringL1MissShare() * 100, 1)
              << "%, LLC share "
              << FormatDouble(result.TieringLlcMissShare() * 100, 1)
              << "% (paper: ~5% / ~4% of total)\n";

    // Side-by-side reduction vs Memtis (paper: 1.7-3.5x fewer misses).
    const SimulationResult& memtis = results[grid.FlatIndex({m, 1})];
    const double l1_reduction =
        memtis.l1_tiering_misses > 0 && result.l1_tiering_misses > 0
            ? static_cast<double>(memtis.l1_tiering_misses) /
                  static_cast<double>(result.l1_tiering_misses)
            : 0.0;
    const double llc_reduction =
        memtis.llc_tiering_misses > 0 && result.llc_tiering_misses > 0
            ? static_cast<double>(memtis.llc_tiering_misses) /
                  static_cast<double>(result.llc_tiering_misses)
            : 0.0;
    std::cout << label << ": tiering-miss reduction vs Memtis: L1 "
              << FormatSpeedup(l1_reduction) << ", LLC "
              << FormatSpeedup(llc_reduction)
              << " (paper: 1.7x/1.8x regular, 3.2x/3.5x huge)\n";
  }
  return 0;
}
