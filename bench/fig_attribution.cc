/**
 * @file
 * Oracle-gap diagnosis: where does the distance to the all-fast upper
 * bound come from, nanosecond by nanosecond?
 *
 * Runs a small matrix of representative cells — two single-workload
 * cells on the default device, one on an asymmetric multi-endpoint
 * topology (a direct expander plus two slower devices behind a thin
 * switch uplink), and one multi-tenant fleet cell under the fair-share
 * stack — each paired with the AllFast oracle over the same access
 * stream and seed. For every policy run the latency-attribution and
 * decision-audit sinks are attached, and the output table decomposes
 * the policy's ns/op into the exact components (Σ components == Σ op
 * latency, the identity gated in tests/test_obs.cc) next to the gap to
 * the oracle and the mis-tiering labels.
 *
 * Every printed/written number is a virtual-time quantity, so
 * `fig_attribution.csv` and `fig_attribution.json` are byte-identical
 * across `--jobs` values (the CI jobs-invariance gate diffs the CSV).
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "obs/attribution.h"
#include "obs/audit.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 2000000;
constexpr uint64_t kSeed = 42;
constexpr double kRatio = 1.0 / 8;

/** Asymmetric slow tier: endpoint 1 direct-attached at the paper's CXL
 *  timings, endpoints 2-3 slower expanders sharing a thin uplink. */
constexpr const char* kAsymTopology =
    "cxl:(1,(2,3)),lat=124:250:250,bw=34:8:8,link=10,gran=64";

/** 32-tenant fleet (Zipf weights/footprints, Poisson churn) shared
 *  through the marginal-utility fair-share stack. */
constexpr const char* kFleetSpec =
    "fleet:32,zipf=0.9,fp=1024,fpskew=0.3,churn=poisson,duty=0.5,"
    "period=1e8,horizon=1e9,seed=7";

const std::vector<std::string>& CellLabels() {
  static const std::vector<std::string> cells = {"cdn", "silo",
                                                 "cdn-asym", "fleet"};
  return cells;
}

struct CellOut {
  uint64_t ops = 0;
  uint64_t duration_ns = 0;
};

/** Runs one (cell, config) pair; diagnosis sinks attach to policy runs
 *  only (the oracle needs just its duration). */
CellOut RunOne(const std::string& cell, bool oracle,
               LatencyAttribution* attr, DecisionAudit* audit,
               const std::string& topology_override) {
  SimulationConfig base;
  base.max_accesses = kAccessBudget;
  base.seed = kSeed;
  base.telemetry.attribution = attr;
  base.telemetry.audit = audit;
  if (cell == "cdn-asym") {
    base.topology =
        topology_override.empty() ? kAsymTopology : topology_override;
  } else {
    base.topology = topology_override;
  }

  if (cell == "fleet") {
    auto mux = MakeMuxWorkload(ParseTenantList(kFleetSpec), kSeed);
    std::unique_ptr<TieringPolicy> policy;
    if (oracle) {
      base.fast_tier_fraction = 1.0;
      base.allocation = AllocationPolicyFor("AllFast");
      policy = MakePolicy("AllFast");
    } else {
      base.fast_tier_fraction = kRatio;
      base.allocation = AllocationPolicyFor("HybridTier");
      policy = std::make_unique<FairSharePolicy>(
          MakePolicy("HybridTier"), mux->directory(), FairShareConfig{});
    }
    const SimulationResult result =
        RunSimulation(base, mux.get(), policy.get());
    return CellOut{result.ops, result.duration_ns};
  }

  const std::string workload_id = cell == "cdn-asym" ? "cdn" : cell;
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = oracle ? "AllFast" : "HybridTier";
  spec.fast_fraction = oracle ? 1.0 : kRatio;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = 0;
  spec.seed = kSeed;
  spec.base_config = base;
  const SimulationResult result = RunCell(spec);
  return CellOut{result.ops, result.duration_ns};
}

double NsPerOp(uint64_t ns, uint64_t ops) {
  return ops == 0 ? 0.0
                  : static_cast<double>(ns) / static_cast<double>(ops);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig_attribution",
         "oracle-gap diagnosis: exact latency decomposition + decision "
         "audit");

  const std::vector<std::string>& cells = CellLabels();
  SweepGrid grid;
  grid.AddAxis("cell", cells);
  grid.AddAxis("config", {"oracle", "policy"});

  // One diagnosis sink pair per cell, preallocated and indexed by the
  // cell axis: each policy run writes only its own slot, so the sweep
  // is race-free and the output order is fixed regardless of --jobs.
  std::vector<std::unique_ptr<LatencyAttribution>> attrs;
  std::vector<std::unique_ptr<DecisionAudit>> audits;
  for (size_t c = 0; c < cells.size(); ++c) {
    attrs.push_back(std::make_unique<LatencyAttribution>());
    audits.push_back(std::make_unique<DecisionAudit>());
  }

  SweepRunner runner = MakeSweepRunner(options, "fig_attribution");
  const std::vector<CellOut> outs =
      runner.Run(grid, [&](const SweepCell& cell) {
        const size_t c = cell.ValueIndex("cell");
        const bool oracle = cell.Get("config") == "oracle";
        return RunOne(cell.Get("cell"), oracle,
                      oracle ? nullptr : attrs[c].get(),
                      oracle ? nullptr : audits[c].get(),
                      options.topology);
      });

  TablePrinter table(
      {"cell", "oracle ns/op", "policy ns/op", "gap ns/op", "gap %",
       "slow idle", "slow queue", "fast queue", "hint", "stall",
       "premature", "late"});
  table.SetTitle(
      "oracle-gap diagnosis (component columns: policy ns/op; identity "
      "Σ == total gated by tests)");
  for (size_t c = 0; c < cells.size(); ++c) {
    const CellOut& oracle = outs[grid.FlatIndex({c, 0})];
    const CellOut& policy = outs[grid.FlatIndex({c, 1})];
    const LatencyAttribution& attr = *attrs[c];
    const DecisionAudit& audit = *audits[c];
    const double oracle_ns = NsPerOp(oracle.duration_ns, oracle.ops);
    const double policy_ns = NsPerOp(policy.duration_ns, policy.ops);
    const double gap = policy_ns - oracle_ns;
    table.AddRow(
        {cells[c], FormatDouble(oracle_ns, 1), FormatDouble(policy_ns, 1),
         FormatDouble(gap, 1),
         FormatDouble(oracle_ns == 0.0 ? 0.0 : gap * 100.0 / oracle_ns,
                      1),
         FormatDouble(
             NsPerOp(attr.component_ns(LatencyComponent::kSlowIdle),
                     policy.ops),
             1),
         FormatDouble(
             NsPerOp(attr.component_ns(LatencyComponent::kSlowQueue),
                     policy.ops),
             1),
         FormatDouble(
             NsPerOp(attr.component_ns(LatencyComponent::kFastQueue),
                     policy.ops),
             1),
         FormatDouble(
             NsPerOp(attr.component_ns(LatencyComponent::kHintFault),
                     policy.ops),
             1),
         FormatDouble(
             NsPerOp(
                 attr.component_ns(LatencyComponent::kMigrationStall),
                 policy.ops),
             1),
         std::to_string(audit.premature_demotions()),
         std::to_string(audit.late_promotions())});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig_attribution"));

  // Full-precision companion: exact integer ns per component and the
  // complete audit counters, one object per cell. Virtual quantities
  // only — byte-identical across --jobs like the CSV.
  std::ofstream json("fig_attribution.json");
  json << "{\n";
  for (size_t c = 0; c < cells.size(); ++c) {
    const LatencyAttribution& attr = *attrs[c];
    const DecisionAudit& audit = *audits[c];
    json << (c == 0 ? "" : ",\n") << "\"" << cells[c] << "\": {\n";
    json << "  \"ops\": " << attr.ops() << ",\n";
    json << "  \"op_latency_ns\": " << attr.op_latency_ns() << ",\n";
    json << "  \"components\": {";
    for (uint32_t k = 0;
         k < static_cast<uint32_t>(LatencyComponent::kCount); ++k) {
      const LatencyComponent component = static_cast<LatencyComponent>(k);
      json << (k == 0 ? "" : ", ") << "\""
           << LatencyComponentName(component)
           << "\": " << attr.component_ns(component);
    }
    json << "},\n";
    json << "  \"endpoints\": [";
    for (uint32_t e = 0; e < attr.endpoint_count(); ++e) {
      json << (e == 0 ? "" : ", ") << "{\"slow_idle_ns\": "
           << attr.endpoint_slow_idle_ns(e)
           << ", \"slow_queue_ns\": " << attr.endpoint_slow_queue_ns(e)
           << "}";
    }
    json << "],\n";
    json << "  \"audit\": {\"premature_demotions\": "
         << audit.premature_demotions()
         << ", \"late_promotions\": " << audit.late_promotions()
         << ", \"quota_truncated_pages\": "
         << audit.quota_truncated_pages()
         << ", \"cooling_epochs\": " << audit.cooling_epochs()
         << ", \"endpoint_reorders\": " << audit.endpoint_reorders()
         << ", \"total_batches\": " << audit.total_batches() << "}\n";
    json << "}";
  }
  json << "\n}\n";

  // Per-cell narrative: the full component table and reason breakdown.
  for (size_t c = 0; c < cells.size(); ++c) {
    std::cout << "-- " << cells[c] << " --\n"
              << attrs[c]->Report() << audits[c]->Report();
  }
  std::cout << "wrote " << CsvPath("fig_attribution")
            << " and fig_attribution.json (jobs-invariant)\n";
  return 0;
}
