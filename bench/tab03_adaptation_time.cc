/**
 * @file
 * Table 3 — time to adapt to a new access distribution (reach within a
 * tolerance of the steady-state median latency), Memtis vs HybridTier,
 * for CacheLib CDN and social-graph at 1:16 / 1:8 / 1:4.
 *
 * Shape target: HybridTier adapts ~2-6x faster in every cell
 * (paper average: 3.2x).
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/percentile.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 40000000;
constexpr TimeNs kChurnTime = 1000 * kMillisecond;
constexpr uint64_t kMemtisCooling = 150000;

struct AdaptCell {
  TimeNs adapt_ns = UINT64_MAX;
  double steady_p50 = 0.0;
};

AdaptCell MeasureAdaptation(const std::string& workload_id,
                            const std::string& policy_name,
                            double fast_fraction) {
  RunSpec spec;
  spec.workload_id = workload_id;
  spec.workload_scale = DefaultScaleFor(workload_id);
  spec.policy_name = policy_name;
  spec.fast_fraction = fast_fraction;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = 0;
  spec.churn = {{.time_ns = kChurnTime, .hot_fraction = 2.0 / 3}};
  spec.base_config.stats_interval_ns = 10 * kMillisecond;
  spec.policy_options.memtis_cooling_samples = kMemtisCooling;

  const SimulationResult result = RunCell(spec);
  const TimeSeries& series = result.latency_timeline;
  WindowedPercentile tail(256);
  const size_t start = series.size() * 3 / 4;
  for (size_t i = start; i < series.size(); ++i) tail.Add(series.values[i]);
  AdaptCell cell;
  cell.steady_p50 = tail.Median();
  const uint64_t settle = FirstSustainedEntryNs(
      series, cell.steady_p50, 0.05, /*sustain_points=*/8, kChurnTime);
  if (settle != UINT64_MAX && settle > kChurnTime) {
    cell.adapt_ns = settle - kChurnTime;
  }
  return cell;
}

std::string FormatAdapt(TimeNs t) {
  return t == UINT64_MAX ? ">run" : FormatTime(t);
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("tab03", "time to adapt after the distribution change");

  SweepGrid grid;
  grid.AddAxis("workload", {"cdn", "social"});
  grid.AddAxis("ratio", PaperRatioLabels());
  grid.AddAxis("policy", {"Memtis", "HybridTier"});
  SweepRunner runner = MakeSweepRunner(options, "tab03");
  const std::vector<AdaptCell> cells =
      runner.Run(grid, [](const SweepCell& cell) {
        return MeasureAdaptation(cell.Get("workload"), cell.Get("policy"),
                                 RatioFraction(cell.Get("ratio")));
      });

  TablePrinter table({"workload", "ratio", "Memtis settle",
                      "HybridTier settle", "Memtis steady p50",
                      "HybridTier steady p50", "steady advantage"});
  table.SetTitle(
      "Table 3: post-churn settle time and steady-state median latency.\n"
      "Note: our reimplemented Memtis re-converges faster than the "
      "paper's kernel module (see EXPERIMENTS.md), so the reproducible "
      "signal at simulation scale is the steady-state gap.");
  std::vector<double> advantages;
  const std::vector<std::string> workloads = {"cdn", "social"};
  for (size_t w = 0; w < workloads.size(); ++w) {
    const std::string& workload = workloads[w];
    for (size_t r = 0; r < PaperRatios().size(); ++r) {
      const RatioPoint& ratio = PaperRatios()[r];
      const AdaptCell memtis = cells[grid.FlatIndex({w, r, 0})];
      const AdaptCell hybrid = cells[grid.FlatIndex({w, r, 1})];
      const double advantage =
          hybrid.steady_p50 > 0 ? memtis.steady_p50 / hybrid.steady_p50
                                : 0.0;
      if (advantage > 0) advantages.push_back(advantage);
      table.AddRow({workload, ratio.label, FormatAdapt(memtis.adapt_ns),
                    FormatAdapt(hybrid.adapt_ns),
                    FormatDouble(memtis.steady_p50, 0) + "ns",
                    FormatDouble(hybrid.steady_p50, 0) + "ns",
                    FormatSpeedup(advantage)});
    }
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("tab03_adaptation_time"));
  if (!advantages.empty()) {
    std::cout << "geomean post-churn steady-state advantage "
              << FormatSpeedup(GeoMean(advantages))
              << " (paper reports adaptation-time reductions of "
                 "1.7x-5.9x, avg 3.2x; see note above)\n";
  }
  return 0;
}
