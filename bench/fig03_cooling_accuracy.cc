/**
 * @file
 * Figure 3b — lower cooling periods capture hotness less accurately.
 *
 * Feed the same CacheLib access-sample stream into exact per-page
 * counters under different cooling periods C and classify pages as
 * hot / warm / cold by their final counter value. C = inf is the target
 * distribution; as C shrinks, hot and warm pages lose counts to
 * premature halving and the measured hot/warm share collapses.
 * Each C is an independent sweep cell (every cell regenerates the same
 * seeded stream), so the sweep parallelizes under --jobs.
 * (Paper sweeps C in {inf, 25M, 10M, 5M, 2M} samples; ours is the
 * time-compressed equivalent.)
 */

#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "common/table.h"
#include "mem/page.h"
#include "probstruct/exact_table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kSamples = 2000000;
constexpr uint32_t kHotCount = 13;
constexpr uint32_t kWarmCount = 4;

struct Shares {
  double hot = 0.0;
  double warm = 0.0;
  double cold = 0.0;
};

Shares MeasureShares(uint64_t cooling_period) {
  auto workload = MakeWorkload("cdn", DefaultScaleFor("cdn"), 42);
  ExactCounterTable counters(workload->footprint_pages(), /*max=*/15);
  OpTrace op;
  uint64_t samples = 0;
  uint64_t since_cooling = 0;
  // Sample every 8th access (denser than the runtime's 61 so the sweep
  // completes quickly while keeping the same distribution).
  uint64_t countdown = 8;
  while (samples < kSamples) {
    workload->NextOp(0, &op);
    for (const MemoryAccess& access : op.accesses) {
      if (--countdown > 0) continue;
      countdown = 8;
      counters.Increment(PageOfAddr(access.addr));
      ++samples;
      if (cooling_period != 0 && ++since_cooling >= cooling_period) {
        since_cooling = 0;
        counters.CoolByHalving();
      }
    }
  }

  Shares shares;
  uint64_t touched = 0;
  for (PageId page = 0; page < counters.size(); ++page) {
    const uint64_t count = counters.RawCount(page);
    if (count == 0) continue;
    ++touched;
    if (count >= kHotCount) {
      shares.hot += 1;
    } else if (count >= kWarmCount) {
      shares.warm += 1;
    } else {
      shares.cold += 1;
    }
  }
  if (touched > 0) {
    shares.hot /= static_cast<double>(touched);
    shares.warm /= static_cast<double>(touched);
    shares.cold /= static_cast<double>(touched);
  }
  return shares;
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig03b", "hot/warm/cold classification vs cooling period C");

  struct Point {
    const char* label;
    uint64_t period;
  };
  const std::vector<Point> sweep = {{"inf", 0},
                                    {"1M", 1000000},
                                    {"400k", 400000},
                                    {"200k", 200000},
                                    {"80k", 80000}};

  std::vector<std::string> labels;
  for (const Point& point : sweep) labels.push_back(point.label);
  SweepGrid grid;
  grid.AddAxis("C", labels);
  SweepRunner runner = MakeSweepRunner(options, "fig03b");
  const std::vector<Shares> measured =
      runner.Run(grid, [&sweep](const SweepCell& cell) {
        return MeasureShares(sweep[cell.ValueIndex("C")].period);
      });

  TablePrinter table({"C (samples)", "% hot", "% warm", "% cold"});
  table.SetTitle(
      "Figure 3b: hotness classification under different cooling periods");
  double hot_at_inf = 0.0, hot_at_min = 0.0;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const Shares& shares = measured[i];
    if (sweep[i].period == 0) hot_at_inf = shares.hot + shares.warm;
    hot_at_min = shares.hot + shares.warm;
    table.AddRow({sweep[i].label, FormatDouble(shares.hot * 100, 1),
                  FormatDouble(shares.warm * 100, 1),
                  FormatDouble(shares.cold * 100, 1)});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath("fig03_cooling_accuracy"));

  std::cout << "shape check: hot+warm share at C=inf "
            << FormatDouble(hot_at_inf * 100, 1) << "% vs at smallest C "
            << FormatDouble(hot_at_min * 100, 1)
            << "% (paper: smaller C underestimates hot/warm)\n";
  return 0;
}
