/**
 * @file
 * Figure 5 — cache misses due to Memtis tiering activities as a share
 * of the system total, over time, for regular (4 KiB) and huge (2 MiB)
 * pages, CacheLib at 1:4. The two page modes are independent sweep
 * cells.
 *
 * Shape target: tiering contributes a substantial share of both L1 and
 * LLC misses (paper: ~9%/18% for regular pages, 13%/18% for huge).
 */

#include <iostream>

#include "common/bench_util.h"
#include "common/table.h"

namespace hybridtier::bench {
namespace {

constexpr uint64_t kAccessBudget = 12000000;

SimulationResult RunMode(PageMode mode) {
  RunSpec spec;
  spec.workload_id = "cdn";
  spec.workload_scale = DefaultScaleFor("cdn");
  spec.policy_name = "Memtis";
  spec.fast_fraction = 1.0 / 4;
  spec.max_accesses = kAccessBudget;
  spec.warmup_accesses = 0;
  spec.mode = mode;
  spec.base_config.stats_interval_ns = 20 * kMillisecond;
  return RunCell(spec);
}

void PrintTimeline(const char* label, const SimulationResult& result,
                   const std::string& csv_name) {
  TablePrinter table({"t (ms)", "tiering L1 miss share",
                      "tiering LLC miss share"});
  table.SetTitle(std::string("Figure 5 (") + label +
                 "): Memtis tiering share of total cache misses");
  const TimeSeries& l1 = result.tiering_l1_share_timeline;
  const TimeSeries& llc = result.tiering_llc_share_timeline;
  for (size_t i = 0; i < l1.size(); ++i) {
    table.AddRow({std::to_string(l1.times_ns[i] / kMillisecond),
                  FormatDouble(l1.values[i] * 100, 1) + "%",
                  FormatDouble(llc.values[i] * 100, 1) + "%"});
  }
  table.Print(std::cout);
  table.WriteCsv(CsvPath(csv_name));
  std::cout << label << " overall: tiering L1 share "
            << FormatDouble(result.TieringL1MissShare() * 100, 1)
            << "%, LLC share "
            << FormatDouble(result.TieringLlcMissShare() * 100, 1)
            << "% (paper: ~9%/18% regular, ~13%/18% huge)\n";
}

}  // namespace
}  // namespace hybridtier::bench

int main(int argc, char** argv) {
  using namespace hybridtier;
  using namespace hybridtier::bench;
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("fig05", "Memtis tiering cache-miss share over time (1:4)");

  SweepGrid grid;
  grid.AddAxis("pages", {"4KiB", "huge"});
  SweepRunner runner = MakeSweepRunner(options, "fig05");
  const std::vector<SimulationResult> results =
      runner.Run(grid, [](const SweepCell& cell) {
        return RunMode(cell.Get("pages") == "4KiB" ? PageMode::kRegular
                                                   : PageMode::kHuge);
      });

  PrintTimeline("4KiB pages", results[0], "fig05_memtis_cache_overhead_4k");
  PrintTimeline("huge pages", results[1],
                "fig05_memtis_cache_overhead_huge");
  return 0;
}
