/**
 * @file
 * Tenant-churn walkthrough: a co-location timeline where the tenant mix
 * changes mid-run, showing the fair-share wrapper re-dividing the fast
 * tier as tenants come and go.
 *
 *   ./build/examples/tenant_churn [--tenants zipf,cdn:2@0-1.2e8,zipf@6e7]
 *       [--policy HybridTier] [--ratio 1:8] [--accesses 4000000]
 *       [--seed 42]
 *
 * The default scenario: a Zipf hot set and a double-weight CDN tenant
 * share the tier from t=0; a second Zipf tenant arrives at 60 ms and the
 * CDN departs at 120 ms, releasing its memory. The run prints the churn
 * events the workload surfaced, each tenant's occupancy at a few
 * timeline checkpoints, and how long the departed tenant's fast share
 * took to drain.
 */

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "common/table.h"
#include "common/units.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace {

using namespace hybridtier;

/** Series value at the last sample at or before `t` (0 if none). */
double ValueAt(const TimeSeries& series, TimeNs t) {
  double value = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] > t) break;
    value = series.values[i];
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tenants = "zipf,cdn:2@0-1.2e8,zipf@6e7";
  std::string policy_name = "HybridTier";
  double ratio = 1.0 / 8;
  uint64_t accesses = 4000000;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--tenants") {
      tenants = next();
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--ratio") {
      const std::string value = next();
      const size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--ratio must look like 1:8\n";
        return 1;
      }
      ratio = std::stod(value.substr(0, colon)) /
              std::stod(value.substr(colon + 1));
    } else if (arg == "--accesses") {
      accesses = std::stoull(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else {
      std::cerr << "usage: tenant_churn [--tenants list] [--policy name] "
                   "[--ratio 1:N] [--accesses n] [--seed n]\n";
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  auto mux = MakeMuxWorkload(ParseTenantList(tenants), seed);
  FairShareConfig fair_config;
  auto policy = std::make_unique<FairSharePolicy>(MakePolicy(policy_name),
                                                  mux->directory(),
                                                  fair_config);

  SimulationConfig config;
  config.fast_tier_fraction = FastFractionFor(policy_name, ratio);
  config.allocation = AllocationPolicyFor(policy_name);
  config.max_accesses = accesses;
  config.seed = seed;

  Simulation simulation(config, mux.get(), policy.get());
  const SimulationResult result = simulation.Run();

  std::cout << "workload: " << mux->name() << ", policy FairShare("
            << policy_name << "), " << simulation.fast_capacity_units()
            << " fast units, " << FormatTime(result.duration_ns)
            << " virtual\n\nchurn events:\n";
  for (const TenantChurnEvent& event : mux->churn_events()) {
    std::cout << "  " << FormatTime(event.time_ns) << "  "
              << (event.arrival ? "arrival   " : "departure ")
              << mux->tenant_name(event.tenant) << "\n";
  }

  // Occupancy checkpoints: just before/after each event and at the end.
  std::vector<std::pair<std::string, TimeNs>> checkpoints;
  for (const TenantChurnEvent& event : mux->churn_events()) {
    const std::string name = mux->tenant_name(event.tenant);
    const char* kind = event.arrival ? "arrival" : "departure";
    if (event.time_ns > 0) {
      checkpoints.emplace_back(std::string("before ") + kind + " " + name,
                               event.time_ns - 1);
    }
    checkpoints.emplace_back(
        std::string("after ") + kind + " " + name,
        event.time_ns + fair_config.rebalance_interval_ns);
  }
  checkpoints.emplace_back("end of run", result.duration_ns);

  std::vector<std::string> header = {"checkpoint", "t"};
  for (const TenantResult& tenant : result.tenants) {
    header.push_back(tenant.name + " share %");
  }
  header.push_back("weighted Jain");
  TablePrinter table(header);
  table.SetTitle("fast-tier occupancy timeline");
  for (const auto& [label, t] : checkpoints) {
    std::vector<std::string> row = {label, FormatTime(t)};
    for (const TenantResult& tenant : result.tenants) {
      row.push_back(
          FormatDouble(ValueAt(tenant.occupancy_timeline, t) * 100, 1));
    }
    row.push_back(FormatDouble(
        ValueAt(result.weighted_fairness_timeline, t), 3));
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "end-of-run weighted Jain fairness: "
            << FormatDouble(result.weighted_jain_fairness, 3) << "\n";
  return 0;
}
