/**
 * @file
 * Example: writing your own tiering policy against the public API.
 *
 * Implements a tiny "sampled-LRU" policy from scratch — promote every
 * sampled slow page, demote the least-recently-sampled fast page when
 * space runs out — and benchmarks it against HybridTier. The point is
 * to show the full extension surface: OnSample / Tick / the migration
 * engine / metadata traffic reporting.
 *
 *   ./build/examples/custom_policy
 */

#include <iostream>

#include "common/table.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "policies/lru_list.h"
#include "policies/policy.h"
#include "workloads/factory.h"

namespace {

using namespace hybridtier;

/** Promote-on-sample, demote-LRU policy (a deliberately naive design). */
class SampledLruPolicy : public TieringPolicy {
 public:
  void OnSample(const SampleRecord& sample) override {
    const PageId unit = sample.page;
    // Metadata: one LRU node touch per sample (reported so the cache
    // model can attribute our overhead, like the built-in policies).
    sink().Touch((1ULL << 44) + (unit / 8) * kCacheLineSize);

    if (lru_.Contains(unit)) {
      lru_.MoveToMru(unit);
      return;
    }
    // Make room, then admit.
    if (lru_.size() >= context().fast_capacity_units) {
      const PageId victim = lru_.PopLru();
      if (memory().IsResident(victim) &&
          memory().TierOf(victim) == Tier::kFast) {
        const PageId pages[] = {victim};
        migration().Demote(pages, sample.time_ns);
      }
    }
    lru_.PushMru(unit);
    if (memory().IsResident(unit) &&
        memory().TierOf(unit) == Tier::kSlow) {
      const PageId pages[] = {unit};
      migration().Promote(pages, sample.time_ns);
    }
  }

  size_t MetadataBytes() const override { return lru_.memory_bytes(); }
  const char* name() const override { return "SampledLRU"; }

 private:
  LruList lru_;
};

}  // namespace

int main() {
  TablePrinter table(
      {"system", "median latency (ns)", "fast-fill %", "migrations"});
  table.SetTitle("Custom policy vs HybridTier (CacheLib CDN, 1:8)");

  for (int which = 0; which < 2; ++which) {
    auto workload = MakeWorkload("cdn", /*scale=*/0.05, /*seed=*/3);
    std::unique_ptr<TieringPolicy> policy;
    if (which == 0) {
      policy = std::make_unique<SampledLruPolicy>();
    } else {
      policy = MakePolicy("HybridTier");
    }
    SimulationConfig config;
    config.max_accesses = 3000000;
    config.fast_tier_fraction = 1.0 / 8;
    config.allocation = AllocationPolicy::kSlowOnly;
    const SimulationResult result =
        RunSimulation(config, workload.get(), policy.get());
    table.AddRow(
        {policy->name(), FormatDouble(result.median_latency_ns, 0),
         FormatDouble(result.FastAccessFraction() * 100, 1),
         std::to_string(result.migration.promoted_pages +
                        result.migration.demoted_pages)});
  }
  table.Print(std::cout);
  std::cout << "A naive recency policy mispromotes cold pages "
               "(paper §2.3.2); HybridTier's two-metric policy does "
               "not.\n";
  return 0;
}
