/**
 * @file
 * Example: watching a tiering system adapt to popularity churn.
 *
 * Runs a CacheLib-style cache whose hot set is remapped mid-run (the
 * paper's Fig 4 scenario) under two policies, and prints the median
 * latency timeline side by side so the adaptation difference is visible.
 *
 *   ./build/examples/cachelib_churn
 */

#include <iostream>

#include "common/table.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "workloads/cachelib.h"
#include "workloads/factory.h"

int main() {
  using namespace hybridtier;

  constexpr TimeNs kChurnAt = 400 * kMillisecond;
  const std::vector<ChurnEvent> churn = {
      {.time_ns = kChurnAt, .hot_fraction = 2.0 / 3}};

  TablePrinter table({"t (ms)", "Memtis p50 (ns)", "HybridTier p50 (ns)"});
  table.SetTitle("Median latency while 2/3 of the hot set turns cold at t=" +
                 std::to_string(kChurnAt / kMillisecond) + "ms");

  std::vector<TimeSeries> series;
  for (const char* policy_name : {"Memtis", "HybridTier"}) {
    auto workload = MakeWorkload("cdn", /*scale=*/0.05, /*seed=*/7, churn);
    auto policy = MakePolicy(policy_name);
    SimulationConfig config;
    config.max_accesses = 12000000;
    config.fast_tier_fraction = 1.0 / 8;
    config.stats_interval_ns = 25 * kMillisecond;
    const SimulationResult result =
        RunSimulation(config, workload.get(), policy.get());
    series.push_back(result.latency_timeline);
    std::cout << policy_name << ": overall median "
              << result.median_latency_ns << " ns, "
              << result.migration.promoted_pages << " promotions, "
              << result.migration.demoted_pages << " demotions\n";
  }

  const size_t points = std::min(series[0].size(), series[1].size());
  for (size_t i = 0; i < points; ++i) {
    table.AddRow({std::to_string(series[0].times_ns[i] / kMillisecond),
                  FormatDouble(series[0].values[i], 0),
                  FormatDouble(series[1].values[i], 0)});
  }
  table.Print(std::cout);
  return 0;
}
