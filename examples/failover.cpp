/**
 * @file
 * Failover demo: lose one of three CXL endpoints mid-run and watch the
 * simulator degrade gracefully.
 *
 * A CDN-style cache runs over a 3-endpoint interleaved slow tier. At
 * t=10ms endpoint 2 goes down permanently: demand accesses that decode
 * to it pay the constant fault stall, and the fault runtime evacuates
 * its resident pages into the fast tier (spilling healthy-homed pages
 * to the surviving endpoints when fast is full). The latency
 * attribution sink shows the outage as an explicit `fault_stall`
 * component — the decomposition still sums exactly to total latency —
 * and the invariant watchdog recounts the books every stats interval.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/failover
 */

#include <iostream>

#include "core/hybridtier_policy.h"
#include "core/simulation.h"
#include "obs/attribution.h"
#include "workloads/cachelib.h"

int main() {
  using namespace hybridtier;

  CacheLibConfig workload_config = CacheLibWorkload::CdnConfig(
      /*num_objects=*/30000, /*seed=*/42);
  CacheLibWorkload workload(workload_config, "failover-cdn");
  HybridTierPolicy policy;

  SimulationConfig config;
  // A full drain needs the dead endpoint's homed footprint (~1/3 of
  // all pages under 3-way interleave) to fit in the fast tier — pages
  // homed on a dead device can live nowhere else (HDM decode pins
  // their slow home). 2:5 leaves room to spare.
  config.fast_tier_fraction = 0.4;
  config.max_accesses = 50000000;
  config.max_time_ns = 40 * kMillisecond;
  config.stats_interval_ns = 1 * kMillisecond;
  // Three interleaved endpoints; unit addresses decode round-robin.
  config.topology = "cxl:(1,2,3),lat=124:180:180,bw=34:17:17";
  // Endpoint 2 dies at 10 ms and never comes back. Any down/degrade
  // schedule requires the bounded queue model (auto-enabled with a
  // warning otherwise).
  config.perf.bounded_queue = true;
  config.faults = "faults:ep2@10ms=down";
  // Drain faster than the default pacing so the dead endpoint empties
  // well inside the run (4096 pages per 1 ms maintenance tick).
  config.fault_runtime.evac_batch = 4096;
  config.fault_runtime.spill_batch = 4096;
  config.watchdog = true;

  LatencyAttribution attribution;
  config.telemetry.attribution = &attribution;

  Simulation simulation(config, &workload, &policy);
  SimulationResult result = simulation.Run();

  std::cout << "workload:           " << workload.name() << "\n"
            << "virtual duration:   " << FormatTime(result.duration_ns)
            << "\n"
            << "median op latency:  " << result.median_latency_ns
            << " ns\n"
            << "p99 op latency:     " << result.p99_latency_ns << " ns\n";

  std::cout << "\nendpoint residency after the outage (slow units):\n";
  for (uint32_t e = 0; e < simulation.perf_model().EndpointCount(); ++e) {
    std::cout << "  endpoint " << e << ": "
              << simulation.memory().EndpointResident(e)
              << (e == 2 ? "   <- down at 10ms, drained by failover"
                         : "")
              << "\n";
  }

  std::cout << "\nfault layer: " << result.fault.transitions
            << " transitions, " << result.fault.stalled_accesses
            << " stalled accesses, " << result.fault.evacuated_pages
            << " pages evacuated, " << result.fault.spilled_pages
            << " spilled, " << result.fault.evac_retries
            << " backoff retries\n";

  // The outage shows up as an explicit fault_stall component; the
  // decomposition still sums exactly to the total op latency.
  std::cout << "\nlatency decomposition (" << attribution.ops()
            << " ops):\n"
            << attribution.Report();
  return 0;
}
