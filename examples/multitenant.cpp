/**
 * @file
 * Multi-tenant shared-tier demo: four tenants (a Zipf hot set, CacheLib
 * CDN, BFS, and Silo) co-located on one fast tier, run twice under the
 * same base policy — once unmanaged, once wrapped in the per-tenant
 * fair-share quota enforcer — and compared side by side.
 *
 *   ./build/examples/multitenant [--tenants cdn,bfs-k,silo,zipf]
 *       [--policy HybridTier] [--ratio 1:8] [--accesses 4000000]
 *       [--seed 42] [--no-rebalance]
 *
 * The unmanaged run shows the starvation problem: the hottest tenant
 * soaks up the fast tier. The fair run shows quotas holding every
 * tenant's occupancy at (or under) its share, at a small cost to the
 * hot tenant. The final lines check the quota guarantee explicitly.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"

namespace {

using namespace hybridtier;

struct RunOutput {
  SimulationResult result;
  uint64_t fast_capacity_units = 0;
  std::vector<uint64_t> quotas;  //!< Empty for the unmanaged run.
};

RunOutput RunOnce(const std::vector<TenantSpec>& specs,
                  const std::string& policy_name, double ratio,
                  uint64_t accesses, uint64_t seed, bool fair,
                  bool rebalance) {
  auto mux = MakeMuxWorkload(specs, seed);
  std::unique_ptr<TieringPolicy> policy = MakePolicy(policy_name);
  FairSharePolicy* fair_policy = nullptr;
  if (fair) {
    FairShareConfig config;
    config.rebalance = rebalance;
    auto wrapped = std::make_unique<FairSharePolicy>(
        std::move(policy), mux->directory(), config);
    fair_policy = wrapped.get();
    policy = std::move(wrapped);
  }

  SimulationConfig config;
  config.fast_tier_fraction = FastFractionFor(policy_name, ratio);
  config.allocation = AllocationPolicyFor(policy_name);
  config.max_accesses = accesses;
  config.seed = seed;

  Simulation simulation(config, mux.get(), policy.get());
  RunOutput output;
  output.result = simulation.Run();
  output.fast_capacity_units = simulation.fast_capacity_units();
  if (fair_policy != nullptr) {
    for (uint32_t t = 0; t < mux->tenant_count(); ++t) {
      output.quotas.push_back(fair_policy->quota_units(t));
    }
  }
  return output;
}

void PrintRun(const std::string& title, const RunOutput& run) {
  TablePrinter table({"tenant", "Mop/s", "p99 ns", "fast-fill %",
                      "tier share %", "quota share %"});
  table.SetTitle(title);
  for (size_t t = 0; t < run.result.tenants.size(); ++t) {
    const TenantResult& tenant = run.result.tenants[t];
    const double cap = static_cast<double>(run.fast_capacity_units);
    table.AddRow(
        {tenant.name, FormatDouble(tenant.throughput_mops, 3),
         FormatDouble(tenant.p99_latency_ns, 0),
         FormatDouble(tenant.FastAccessFraction() * 100, 1),
         FormatDouble(static_cast<double>(tenant.fast_resident_units) *
                          100.0 / cap,
                      1),
         run.quotas.empty()
             ? std::string("-")
             : FormatDouble(static_cast<double>(run.quotas[t]) * 100.0 /
                                cap,
                            1)});
  }
  table.Print(std::cout);
  std::cout << "Jain fairness (tier share): "
            << FormatDouble(run.result.jain_fairness, 3) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string tenants = "cdn,bfs-k,silo,zipf";
  std::string policy_name = "HybridTier";
  double ratio = 1.0 / 8;
  uint64_t accesses = 4000000;
  uint64_t seed = 42;
  bool rebalance = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--tenants") {
      tenants = next();
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--ratio") {
      const std::string value = next();
      const size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--ratio must look like 1:8\n";
        return 1;
      }
      ratio = std::stod(value.substr(0, colon)) /
              std::stod(value.substr(colon + 1));
    } else if (arg == "--accesses") {
      accesses = std::stoull(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--no-rebalance") {
      rebalance = false;
    } else {
      std::cerr << "usage: multitenant [--tenants list] [--policy name] "
                   "[--ratio 1:N] [--accesses n] [--seed n] "
                   "[--no-rebalance]\n";
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  const std::vector<TenantSpec> specs = ParseTenantList(tenants);
  std::cout << specs.size() << " tenants sharing one fast tier, policy "
            << policy_name << ":\n\n";

  const RunOutput unmanaged = RunOnce(specs, policy_name, ratio, accesses,
                                      seed, /*fair=*/false, rebalance);
  PrintRun("unmanaged (" + policy_name + ")", unmanaged);

  const RunOutput fair = RunOnce(specs, policy_name, ratio, accesses, seed,
                                 /*fair=*/true, rebalance);
  PrintRun("fair-share quotas (FairShare(" + policy_name + "))", fair);

  // Check the quota guarantee: every tenant's end-of-run occupancy is
  // within one enforcement batch of its quota.
  const FairShareConfig defaults;
  bool all_within = true;
  for (size_t t = 0; t < fair.result.tenants.size(); ++t) {
    const TenantResult& tenant = fair.result.tenants[t];
    if (tenant.fast_resident_units >
        fair.quotas[t] + defaults.max_enforce_batch) {
      all_within = false;
      std::cout << "QUOTA VIOLATION: " << tenant.name << " holds "
                << tenant.fast_resident_units << " fast units, quota "
                << fair.quotas[t] << "\n";
    }
  }
  if (all_within) {
    std::cout << "quota check: every tenant within its fast-tier quota "
                 "(+<= one batch)\n";
  }
  std::cout << "fairness: " << FormatDouble(unmanaged.result.jain_fairness, 3)
            << " unmanaged -> " << FormatDouble(fair.result.jain_fairness, 3)
            << " fair-share\n";
  return all_within ? 0 : 1;
}
