/**
 * @file
 * Example: tiered memory under a real graph-analytics kernel.
 *
 * Generates a Kronecker graph, runs the BFS kernel (whose hot set moves
 * with every new source vertex) through the simulator under all six
 * tiering systems at a 1:8 fast:slow ratio, and reports the runtime of
 * each — the paper's Fig 10 experiment for one workload.
 *
 *   ./build/examples/graph_analytics
 */

#include <iostream>
#include <memory>

#include "common/table.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "workloads/gap_kernels.h"
#include "workloads/graph.h"

int main() {
  using namespace hybridtier;

  // A 2^17-node, 1M-edge Kronecker graph (power-law degree skew).
  auto graph = std::make_shared<const Graph>(
      GenerateKronecker(/*scale=*/17, /*edge_factor=*/8, /*seed=*/5));
  std::cout << "graph: " << graph->num_nodes << " nodes, "
            << graph->num_edges() << " edges\n";

  TablePrinter table({"system", "runtime (ms)", "fast-fill %",
                      "pages promoted", "BFS trials done"});
  table.SetTitle("BFS on Kronecker, 1:8 fast:slow, equal access budget");

  for (const std::string& policy_name : StandardPolicyNames()) {
    GapConfig kernel_config;
    kernel_config.kernel = GapKernel::kBfs;
    GapWorkload workload(graph, kernel_config, "bfs-kron");
    auto policy = MakePolicy(policy_name);

    SimulationConfig config;
    config.max_accesses = 4000000;
    config.fast_tier_fraction =
        FastFractionFor(policy_name, 1.0 / 8);
    config.allocation = AllocationPolicyFor(policy_name);
    const SimulationResult result =
        RunSimulation(config, &workload, policy.get());

    table.AddRow({policy_name,
                  FormatDouble(static_cast<double>(result.duration_ns) /
                                   1e6,
                               1),
                  FormatDouble(result.FastAccessFraction() * 100, 1),
                  std::to_string(result.migration.promoted_pages),
                  std::to_string(workload.trials_completed())});
  }
  table.Print(std::cout);
  std::cout << "(lower runtime is better; the access budget is fixed)\n";
  return 0;
}
