/**
 * @file
 * Quickstart: run HybridTier against a CacheLib-style workload and print
 * the headline numbers.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/hybridtier_policy.h"
#include "core/simulation.h"
#include "workloads/cachelib.h"

int main() {
  using namespace hybridtier;

  // 1. Pick a workload: a CacheLib CDN-style cache with Zipf popularity.
  CacheLibConfig workload_config = CacheLibWorkload::CdnConfig(
      /*num_objects=*/30000, /*seed=*/42);
  CacheLibWorkload workload(workload_config, "quickstart-cdn");

  // 2. Pick a policy: HybridTier with paper defaults.
  HybridTierPolicy policy;

  // 3. Configure the tiered-memory simulation: 1:8 fast:slow ratio.
  SimulationConfig config;
  config.fast_tier_fraction = 1.0 / 8;
  config.max_accesses = 3000000;

  // 4. Run.
  SimulationResult result = RunSimulation(config, &workload, &policy);

  // 5. Report.
  std::cout << "workload:            " << workload.name() << "\n"
            << "footprint:           " << workload.footprint_pages()
            << " pages\n"
            << "ops executed:        " << result.ops << "\n"
            << "virtual duration:    " << FormatTime(result.duration_ns)
            << "\n"
            << "median op latency:   " << result.median_latency_ns
            << " ns\n"
            << "throughput:          " << result.throughput_mops
            << " Mop/s\n"
            << "fast-tier hit rate:  " << result.FastAccessFraction() * 100
            << " % of demand fills\n"
            << "pages promoted:      " << result.migration.promoted_pages
            << "\n"
            << "pages demoted:       " << result.migration.demoted_pages
            << "\n"
            << "metadata:            " << FormatBytes(result.metadata_bytes)
            << "\n"
            << "tiering LLC misses:  "
            << result.TieringLlcMissShare() * 100 << " % of total\n";
  return 0;
}
