/**
 * @file
 * Command-line runner: simulate any (workload, policy, ratio) cell from
 * the paper's evaluation matrix without writing code.
 *
 *   ./build/examples/ht_run --workload cdn --policy HybridTier \
 *       --ratio 1:8 --accesses 5000000 [--huge] [--scale 0.1] [--seed 42]
 *
 * Multi-tenant mode shares the fast tier among several workloads and
 * reports per-tenant results (see src/multitenant/):
 *
 *   ./build/examples/ht_run --tenants cdn,bfs-k:2,silo --policy \
 *       HybridTier [--fair]
 *
 * Prints the headline metrics of the run. Lists valid workloads and
 * policies with --help.
 */

#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "exec/sweep.h"
#include "fault/fault_spec.h"
#include "mem/topology.h"
#include "multitenant/fair_share_policy.h"
#include "multitenant/mux_workload.h"
#include "obs/attribution.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "workloads/factory.h"

namespace {

using namespace hybridtier;

void PrintUsage() {
  std::cout
      << "usage: ht_run [options]\n"
         "  --workload <id>   one of:";
  for (const std::string& id : AllWorkloadIds()) std::cout << ' ' << id;
  std::cout
      << "\n  --policy <name>   TPP | AutoNUMA | Memtis | ARC | TwoQ |\n"
         "                    HybridTier | HybridTier-onlyFreq |\n"
         "                    HybridTier-CBF | HybridTier-exact |\n"
         "                    AllFast | FirstTouch\n"
         "  --ratio 1:N[,1:M,...]  fast:slow capacity ratio (default\n"
         "                    1:8); a comma-separated list sweeps every\n"
         "                    ratio (single-workload mode only) and\n"
         "                    prints one summary row per cell\n"
         "  --jobs <n>        worker threads for a --ratio sweep\n"
         "                    (default: all hardware threads; results\n"
         "                    are identical for every value)\n"
         "  --accesses <n>    access budget (default 5000000)\n"
         "  --scale <f>       workload footprint scale (default: bench)\n"
         "  --seed <n>        RNG seed (default 42)\n"
         "  --huge            2 MiB tracking/migration granularity\n"
         "  --tenants <list>  multi-tenant mode: comma-separated\n"
         "                    workload ids with optional :weight and\n"
         "                    optional @arrival[-departure] residency\n"
         "                    window in virtual ns (e.g.\n"
         "                    cdn@0-3e8,bfs-k:2@1e8,silo); also accepts\n"
         "                    the synthetic \"zipf\" hot-set tenant, or\n"
         "                    a fleet generator spec\n"
         "                    (fleet:1000,zipf=0.9,churn=poisson,...)\n"
         "                    expanding to N tenants with Zipf weights/\n"
         "                    footprints under Poisson or diurnal churn\n"
         "  --fair [mode]     wrap the policy in the per-tenant\n"
         "                    fair-share quota enforcer; mode is the\n"
         "                    rebalance demand signal: marginal\n"
         "                    (ghost-MRC marginal utility, default) or\n"
         "                    density (sampled hit density)\n"
         "  --no-rebalance    fair-share: static weight quotas only\n"
         "  --sampler-budget  per-tenant sample-period scaling so a\n"
         "                    high-rate tenant cannot crowd the sample\n"
         "                    stream (multi-tenant runs only; the\n"
         "                    default since the Fig 4-style sweep\n"
         "                    showed adaptation time is unhurt)\n"
         "  --no-sampler-budget  revert to one global sample period\n"
         "                    shared by all tenants\n"
         "  --topology <spec> slow-tier device layout, e.g.\n"
         "                    'cxl:(1,(2,3)),lat=124:180:180,bw=\n"
         "                    34:17:17,link=20' (see src/mem/topology.h\n"
         "                    for the grammar; default: one endpoint\n"
         "                    with the paper's emulated-CXL timings)\n"
         "  --faults <spec>   deterministic fault schedule, e.g.\n"
         "                    'faults:ep2@5s=down,ep1@2s-8s=degrade3x'\n"
         "                    or a seeded chaos schedule\n"
         "                    'faults:chaos(seed=7,endpoints=3,\n"
         "                    horizon=20ms,events=4)' (see\n"
         "                    src/fault/fault_spec.h for the grammar;\n"
         "                    endpoints are 0-based decode indices).\n"
         "                    Down/degrade schedules force the bounded\n"
         "                    queue model\n"
         "  --watchdog        run the invariant watchdog every stats\n"
         "                    interval: recount residency/quota/\n"
         "                    attribution accounting and abort the run\n"
         "                    on any divergence (pure observation)\n"
         "  --endpoint-aware  fair-share: weigh hotness against each\n"
         "                    unit's home-endpoint cost (idle latency +\n"
         "                    queue backlog) in victim selection and\n"
         "                    fill-to-quota (needs --fair and a\n"
         "                    multi-endpoint --topology)\n"
         "  --trace-out <f>   write a Perfetto/chrome://tracing JSON\n"
         "                    trace of the run (virtual-time migration,\n"
         "                    rebalance, churn, cooling, and sampler\n"
         "                    events); byte-identical across --jobs\n"
         "                    values and engines\n"
         "  --metrics-out <f> write the metric registry's time series;\n"
         "                    a .csv suffix selects CSV (single runs),\n"
         "                    anything else JSON\n"
         "  --diagnose        attach the latency-attribution and\n"
         "                    decision-audit sinks and print the exact\n"
         "                    per-component latency decomposition plus\n"
         "                    the migration reason/mis-tiering audit\n"
         "                    after the run (see README \"Diagnosis\")\n"
         "  --profile-stages [wall|virtual]\n"
         "                    per-stage engine profile; wall samples\n"
         "                    the real clock (default, measurement),\n"
         "                    virtual buckets simulated ns for every op\n"
         "                    (deterministic, byte-identical)\n"
         "  --log-level <l>   debug | info | warn | error | silent\n"
         "                    (default info)\n";
}

/** Writes `metrics` to `path`; a ".csv" suffix selects CSV over JSON. */
void WriteMetricsFile(const MetricRegistry& metrics,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open metrics file '" << path << "'\n";
    std::exit(1);
  }
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    metrics.WriteCsv(out);
  } else {
    metrics.WriteJson(out);
  }
}

/** Writes one merged trace file for `emitters`, in the given order. */
void WriteTraceFile(const std::string& path,
                    std::span<const TraceEmitter* const> emitters) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open trace file '" << path << "'\n";
    std::exit(1);
  }
  WriteTraceJson(out, emitters);
}

/** Prints the post-run diagnosis blocks for the attached sinks. */
void PrintDiagnosis(bool diagnose, bool profile_stages,
                    bool profile_virtual,
                    const LatencyAttribution& attribution,
                    const DecisionAudit& audit,
                    const StageProfiler& stages) {
  if (diagnose) {
    std::cout << "latency decomposition (" << attribution.ops()
              << " ops):\n"
              << attribution.Report() << "decision audit:\n"
              << audit.Report();
  }
  if (profile_stages) {
    std::cout << "stage profile ("
              << (profile_virtual ? "virtual ns, deterministic"
                                  : "wall ns, measurement")
              << "):\n"
              << stages.Report();
  }
}

/** Prints the per-tenant table and fairness index of a tenants run. */
void PrintTenantResults(const SimulationResult& result,
                        uint64_t fast_capacity_units,
                        const FairSharePolicy* fair) {
  TablePrinter table({"tenant", "weight", "ops", "Mop/s", "p50 ns",
                      "p99 ns", "fast-fill %", "fast units",
                      "tier share %", "quota"});
  for (size_t t = 0; t < result.tenants.size(); ++t) {
    const TenantResult& tenant = result.tenants[t];
    table.AddRow(
        {tenant.name, FormatDouble(tenant.weight, 1),
         std::to_string(tenant.ops),
         FormatDouble(tenant.throughput_mops, 3),
         FormatDouble(tenant.median_latency_ns, 0),
         FormatDouble(tenant.p99_latency_ns, 0),
         FormatDouble(tenant.FastAccessFraction() * 100, 1),
         std::to_string(tenant.fast_resident_units),
         FormatDouble(static_cast<double>(tenant.fast_resident_units) *
                          100.0 /
                          static_cast<double>(fast_capacity_units),
                      1),
         fair == nullptr
             ? std::string("-")
             : std::to_string(fair->quota_units(
                   static_cast<uint32_t>(t)))});
  }
  table.SetTitle("per-tenant results");
  table.Print(std::cout);
  std::cout << "Jain fairness (tier share):     "
            << FormatDouble(result.jain_fairness, 3) << "\n"
            << "weighted Jain (share / weight): "
            << FormatDouble(result.weighted_jain_fairness, 3) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_id = "cdn";
  std::string policy_name = "HybridTier";
  std::string tenants;
  std::vector<std::string> ratio_labels = {"1:8"};
  std::vector<double> ratios = {1.0 / 8};
  double scale = -1.0;
  uint64_t accesses = 5000000;
  uint64_t seed = 42;
  unsigned jobs = 0;
  bool huge = false;
  bool fair = false;
  bool rebalance = true;
  bool sampler_budget = true;
  bool workload_set = false;
  QuotaMode quota_mode = FairShareConfig{}.quota_mode;
  std::string topology;
  std::string faults;
  bool watchdog = false;
  bool endpoint_aware = false;
  std::string trace_out;
  std::string metrics_out;
  bool diagnose = false;
  bool profile_stages = false;
  bool profile_virtual = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--workload") {
      workload_id = next();
      workload_set = true;
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--ratio") {
      const std::string value = next();
      ratio_labels.clear();
      ratios.clear();
      size_t start = 0;
      while (start <= value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        const std::string entry = value.substr(start, comma - start);
        start = comma + 1;
        const size_t colon = entry.find(':');
        double fast = 0.0;
        double slow = 0.0;
        size_t fast_len = 0;
        size_t slow_len = 0;
        bool parsed = colon != std::string::npos && !entry.empty();
        if (parsed) {
          try {
            fast = std::stod(entry.substr(0, colon), &fast_len);
            slow = std::stod(entry.substr(colon + 1), &slow_len);
          } catch (const std::exception&) {
            parsed = false;
          }
        }
        if (!parsed || fast_len != colon ||
            slow_len != entry.size() - colon - 1 || fast <= 0.0 ||
            slow <= 0.0) {
          std::cerr << "--ratio must be positive numbers like 1:8 (or a "
                       "comma-separated list like 1:16,1:8,1:4), got '"
                    << entry << "'\n";
          return 1;
        }
        ratio_labels.push_back(entry);
        ratios.push_back(fast / slow);
        if (comma == value.size()) break;
      }
    } else if (arg == "--jobs") {
      const std::string value = next();
      size_t parsed_len = 0;
      unsigned long parsed_jobs = 0;
      // stoul would accept "-2" by wrapping; require plain digits and a
      // sane range.
      const bool digits =
          !value.empty() &&
          std::isdigit(static_cast<unsigned char>(value[0]));
      try {
        if (digits) parsed_jobs = std::stoul(value, &parsed_len);
      } catch (const std::exception&) {
        parsed_len = 0;
      }
      if (parsed_len != value.size() || parsed_jobs == 0 ||
          parsed_jobs > 65536) {
        std::cerr << "--jobs wants a positive integer (max 65536), got '"
                  << value << "'\n";
        return 1;
      }
      jobs = static_cast<unsigned>(parsed_jobs);
    } else if (arg == "--accesses") {
      accesses = std::stoull(next());
    } else if (arg == "--scale") {
      scale = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--huge") {
      huge = true;
    } else if (arg == "--tenants") {
      tenants = next();
    } else if (arg == "--fair") {
      fair = true;
      // Optional mode operand: --fair marginal | --fair density.
      if (i + 1 < argc && (std::strcmp(argv[i + 1], "density") == 0 ||
                           std::strcmp(argv[i + 1], "marginal") == 0)) {
        quota_mode = ParseQuotaMode(argv[++i]);
      }
    } else if (arg == "--topology") {
      topology = next();
      // Validate eagerly so a typo fails before the run starts.
      (void)ParseTopologySpec(topology);
    } else if (arg == "--faults") {
      faults = next();
      // Validate eagerly so a typo fails before the run starts.
      (void)ParseFaultSpec(faults);
    } else if (arg == "--watchdog") {
      watchdog = true;
    } else if (arg == "--endpoint-aware") {
      endpoint_aware = true;
    } else if (arg == "--no-rebalance") {
      rebalance = false;
    } else if (arg == "--sampler-budget") {
      sampler_budget = true;
    } else if (arg == "--no-sampler-budget") {
      sampler_budget = false;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--diagnose") {
      diagnose = true;
    } else if (arg == "--profile-stages") {
      profile_stages = true;
      // Optional mode operand: --profile-stages wall | virtual.
      if (i + 1 < argc && std::strcmp(argv[i + 1], "virtual") == 0) {
        profile_virtual = true;
        ++i;
      } else if (i + 1 < argc && std::strcmp(argv[i + 1], "wall") == 0) {
        ++i;
      }
    } else if (arg == "--log-level") {
      SetLogLevel(ParseLogLevel(next()));
    } else {
      std::cerr << "unknown option " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  if (!IsPolicyName(policy_name)) {
    std::cerr << "unknown policy '" << policy_name << "'\n";
    PrintUsage();
    return 1;
  }

  if (tenants.empty() && fair) {
    std::cerr << "--fair requires --tenants\n";
    return 1;
  }
  if (!rebalance && !fair) {
    std::cerr << "--no-rebalance requires --fair\n";
    return 1;
  }
  if (endpoint_aware && !fair) {
    std::cerr << "--endpoint-aware requires --fair\n";
    return 1;
  }
  if (tenants.empty()) {
    // Single-tenant runs have no per-tenant budgets; the config flag is
    // ignored there, so just clear it for accurate banner output.
    sampler_budget = false;
  }
  if (ratios.size() > 1 && !tenants.empty()) {
    std::cerr << "--ratio lists are single-workload sweeps; pick one "
                 "ratio for --tenants runs\n";
    return 1;
  }
  if ((diagnose || profile_stages) && ratios.size() > 1) {
    std::cerr << "--diagnose/--profile-stages report one cell; pick a "
                 "single --ratio\n";
    return 1;
  }

  if (!tenants.empty()) {
    if (workload_set) {
      std::cerr << "--workload conflicts with --tenants; list every "
                   "tenant workload in --tenants instead\n";
      return 1;
    }
    // Multi-tenant mode: share the fast tier among several workloads.
    std::vector<TenantSpec> specs = ParseTenantList(tenants);
    if (scale >= 0) {
      for (TenantSpec& spec : specs) spec.scale = scale;
    }
    auto mux = MakeMuxWorkload(specs, seed);

    std::unique_ptr<TieringPolicy> policy = MakePolicy(policy_name);
    FairSharePolicy* fair_policy = nullptr;
    if (fair) {
      FairShareConfig fair_config;
      fair_config.rebalance = rebalance;
      fair_config.quota_mode = quota_mode;
      fair_config.endpoint_aware = endpoint_aware;
      auto wrapped = std::make_unique<FairSharePolicy>(
          std::move(policy), mux->directory(), fair_config);
      fair_policy = wrapped.get();
      policy = std::move(wrapped);
    }

    SimulationConfig config;
    config.fast_tier_fraction = FastFractionFor(policy_name, ratios[0]);
    config.allocation = AllocationPolicyFor(policy_name);
    config.max_accesses = accesses;
    config.mode = huge ? PageMode::kHuge : PageMode::kRegular;
    config.seed = seed;
    config.topology = topology;
    config.faults = faults;
    config.watchdog = watchdog;
    config.tenant_sample_budget = sampler_budget;

    MetricRegistry metrics;
    TraceEmitter trace(1, std::string("ht_run:") + mux->name());
    if (!metrics_out.empty()) config.telemetry.metrics = &metrics;
    if (!trace_out.empty()) config.telemetry.trace = &trace;
    LatencyAttribution attribution;
    DecisionAudit audit;
    StageProfiler stages(profile_virtual ? 1 : 64, profile_virtual);
    if (diagnose) {
      config.telemetry.attribution = &attribution;
      config.telemetry.audit = &audit;
    }
    if (profile_stages) config.telemetry.stages = &stages;

    Simulation simulation(config, mux.get(), policy.get());
    const SimulationResult result = simulation.Run();

    if (!trace_out.empty()) {
      // Tenant arrival/departure instants from the workload's churn
      // log, on a dedicated track — present even without --fair (the
      // fair-share policy additionally traces its own quota view).
      const TraceEmitter::TrackId churn_track = trace.Track("churn");
      for (const TenantChurnEvent& event : mux->churn_events()) {
        trace.Instant(
            churn_track, event.arrival ? "arrival" : "departure",
            event.time_ns,
            {{"tenant", static_cast<double>(event.tenant)}});
      }
      const TraceEmitter* emitters[] = {&trace};
      WriteTraceFile(trace_out, emitters);
    }
    if (!metrics_out.empty()) WriteMetricsFile(metrics, metrics_out);

    std::cout << "workload:          " << mux->name() << " ("
              << mux->footprint_pages() << " pages)\n"
              << "policy:            " << policy->name() << "\n";
    if (fair) {
      std::cout << "fair mode:         "
                << (rebalance ? QuotaModeName(quota_mode) : "static")
                << (sampler_budget ? " + sampler budget" : "") << "\n";
    }
    std::cout << "fast tier:         " << simulation.fast_capacity_units()
              << " / " << simulation.footprint_units() << " units\n"
              << "accesses:          " << result.accesses << " in "
              << FormatTime(result.duration_ns) << " virtual\n"
              << "throughput:        " << result.throughput_mops
              << " Mop/s\n";
    PrintTenantResults(result, simulation.fast_capacity_units(),
                       fair_policy);
    if (!mux->churn_events().empty()) {
      std::cout << "churn events:\n";
      for (const TenantChurnEvent& event : mux->churn_events()) {
        std::cout << "  " << FormatTime(event.time_ns) << "  "
                  << (event.arrival ? "arrival   " : "departure ")
                  << mux->tenant_name(event.tenant) << "\n";
      }
    }
    if (!faults.empty()) {
      std::cout << "fault layer:       " << result.fault.transitions
                << " transitions, " << result.fault.stalled_accesses
                << " stalled accesses, " << result.fault.evacuated_pages
                << " evacuated / " << result.fault.spilled_pages
                << " spilled pages\n";
    }
    PrintDiagnosis(diagnose, profile_stages, profile_virtual,
                   attribution, audit, stages);
    return 0;
  }

  if (!IsWorkloadId(workload_id)) {
    std::cerr << "unknown workload '" << workload_id << "'\n";
    PrintUsage();
    return 1;
  }
  if (scale < 0) scale = DefaultWorkloadScale(workload_id);

  if (ratios.size() > 1) {
    // Ratio sweep: one independent cell per ratio, executed through the
    // sweep runner (parallel under --jobs, output identical for any
    // thread count). Every cell rebuilds its own workload + policy.
    SweepOptions sweep_options;
    sweep_options.jobs = jobs;
    sweep_options.name = "ht_run";
    // Every cell pins --seed (not cell.seed()): the sweep compares the
    // same workload stream across ratios, like the paired bench drivers.
    SweepGrid grid;
    grid.AddAxis("ratio", ratio_labels);
    SweepRunner runner(sweep_options);
    // Per-cell telemetry is preallocated and indexed by flat cell
    // index: each cell writes only its own slot, and the merged files
    // are written in index order — so trace/metrics bytes are
    // jobs-invariant like the result table itself.
    std::vector<std::unique_ptr<TraceEmitter>> cell_traces(
        ratio_labels.size());
    std::vector<std::unique_ptr<MetricRegistry>> cell_metrics(
        ratio_labels.size());
    const std::vector<SimulationResult> results =
        runner.Run(grid, [&](const SweepCell& cell) {
          auto cell_workload = MakeWorkload(workload_id, scale, seed);
          auto cell_policy = MakePolicy(policy_name);
          SimulationConfig config;
          config.fast_tier_fraction = FastFractionFor(
              policy_name, ratios[cell.ValueIndex("ratio")]);
          config.allocation = AllocationPolicyFor(policy_name);
          config.max_accesses = accesses;
          config.mode = huge ? PageMode::kHuge : PageMode::kRegular;
          config.seed = seed;
          config.topology = topology;
          config.faults = faults;
          config.watchdog = watchdog;
          if (!trace_out.empty()) {
            cell_traces[cell.index()] = std::make_unique<TraceEmitter>(
                static_cast<uint32_t>(cell.index() + 1),
                "ratio=" + ratio_labels[cell.ValueIndex("ratio")]);
            config.telemetry.trace = cell_traces[cell.index()].get();
          }
          if (!metrics_out.empty()) {
            cell_metrics[cell.index()] =
                std::make_unique<MetricRegistry>();
            config.telemetry.metrics = cell_metrics[cell.index()].get();
          }
          return RunSimulation(config, cell_workload.get(),
                               cell_policy.get());
        });

    if (!trace_out.empty()) {
      std::vector<const TraceEmitter*> emitters;
      for (const auto& trace : cell_traces) emitters.push_back(trace.get());
      WriteTraceFile(trace_out, emitters);
    }
    if (!metrics_out.empty()) {
      // One JSON object per ratio cell, keyed by label (always JSON:
      // a multi-cell sweep has no single CSV shape).
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "cannot open metrics file '" << metrics_out << "'\n";
        return 1;
      }
      out << "{\n";
      for (size_t r = 0; r < cell_metrics.size(); ++r) {
        out << (r == 0 ? "" : ",\n") << "\"" << ratio_labels[r] << "\": ";
        cell_metrics[r]->WriteJsonObject(out);
      }
      out << "\n}\n";
    }

    std::cout << "workload:          " << workload_id << " (scale " << scale
              << ")\npolicy:            " << policy_name << "\n";
    TablePrinter table({"ratio", "p50 ns", "p99 ns", "Mop/s",
                        "fast-fill %", "promoted", "demoted"});
    table.SetTitle("per-ratio results");
    for (size_t r = 0; r < results.size(); ++r) {
      const SimulationResult& result = results[r];
      table.AddRow({ratio_labels[r],
                    FormatDouble(result.median_latency_ns, 0),
                    FormatDouble(result.p99_latency_ns, 0),
                    FormatDouble(result.throughput_mops, 3),
                    FormatDouble(result.FastAccessFraction() * 100, 1),
                    std::to_string(result.migration.promoted_pages),
                    std::to_string(result.migration.demoted_pages)});
    }
    table.Print(std::cout);
    return 0;
  }

  auto workload = MakeWorkload(workload_id, scale, seed);
  auto policy = MakePolicy(policy_name);

  SimulationConfig config;
  config.fast_tier_fraction = FastFractionFor(policy_name, ratios[0]);
  config.allocation = AllocationPolicyFor(policy_name);
  config.max_accesses = accesses;
  config.mode = huge ? PageMode::kHuge : PageMode::kRegular;
  config.seed = seed;
  config.topology = topology;
  config.faults = faults;
  config.watchdog = watchdog;

  MetricRegistry metrics;
  TraceEmitter trace(1, std::string("ht_run:") + workload->name());
  if (!metrics_out.empty()) config.telemetry.metrics = &metrics;
  if (!trace_out.empty()) config.telemetry.trace = &trace;
  LatencyAttribution attribution;
  DecisionAudit audit;
  StageProfiler stages(profile_virtual ? 1 : 64, profile_virtual);
  if (diagnose) {
    config.telemetry.attribution = &attribution;
    config.telemetry.audit = &audit;
  }
  if (profile_stages) config.telemetry.stages = &stages;

  Simulation simulation(config, workload.get(), policy.get());
  const SimulationResult result = simulation.Run();

  if (!trace_out.empty()) {
    const TraceEmitter* emitters[] = {&trace};
    WriteTraceFile(trace_out, emitters);
  }
  if (!metrics_out.empty()) WriteMetricsFile(metrics, metrics_out);

  std::cout << "workload:          " << workload->name() << " ("
            << workload->footprint_pages() << " pages, scale " << scale
            << ")\n"
            << "policy:            " << policy->name() << "\n"
            << "fast tier:         " << simulation.fast_capacity_units()
            << " / " << simulation.footprint_units() << " units\n"
            << "accesses:          " << result.accesses << " in "
            << FormatTime(result.duration_ns) << " virtual\n"
            << "median op latency: " << result.median_latency_ns << " ns\n"
            << "p99 op latency:    " << result.p99_latency_ns << " ns\n"
            << "throughput:        " << result.throughput_mops
            << " Mop/s\n"
            << "fast-fill rate:    "
            << FormatDouble(result.FastAccessFraction() * 100, 1) << " %\n"
            << "promoted/demoted:  " << result.migration.promoted_pages
            << " / " << result.migration.demoted_pages << " pages\n"
            << "metadata:          " << FormatBytes(result.metadata_bytes)
            << "\n"
            << "tiering LLC share: "
            << FormatDouble(result.TieringLlcMissShare() * 100, 1)
            << " % of misses\n";
  if (!faults.empty()) {
    std::cout << "fault layer:       " << result.fault.transitions
              << " transitions, " << result.fault.stalled_accesses
              << " stalled accesses, " << result.fault.evacuated_pages
              << " evacuated / " << result.fault.spilled_pages
              << " spilled pages (" << result.fault.evac_retries
              << " backoff retries)\n";
  }
  PrintDiagnosis(diagnose, profile_stages, profile_virtual, attribution,
                 audit, stages);
  return 0;
}
