/**
 * @file
 * Command-line runner: simulate any (workload, policy, ratio) cell from
 * the paper's evaluation matrix without writing code.
 *
 *   ./build/examples/ht_run --workload cdn --policy HybridTier \
 *       --ratio 1:8 --accesses 5000000 [--huge] [--scale 0.1] [--seed 42]
 *
 * Prints the headline metrics of the run. Lists valid workloads and
 * policies with --help.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "core/policy_factory.h"
#include "core/simulation.h"
#include "workloads/factory.h"

namespace {

using namespace hybridtier;

void PrintUsage() {
  std::cout
      << "usage: ht_run [options]\n"
         "  --workload <id>   one of:";
  for (const std::string& id : AllWorkloadIds()) std::cout << ' ' << id;
  std::cout
      << "\n  --policy <name>   TPP | AutoNUMA | Memtis | ARC | TwoQ |\n"
         "                    HybridTier | HybridTier-onlyFreq |\n"
         "                    HybridTier-CBF | HybridTier-exact |\n"
         "                    AllFast | FirstTouch\n"
         "  --ratio 1:N       fast:slow capacity ratio (default 1:8)\n"
         "  --accesses <n>    access budget (default 5000000)\n"
         "  --scale <f>       workload footprint scale (default: bench)\n"
         "  --seed <n>        RNG seed (default 42)\n"
         "  --huge            2 MiB tracking/migration granularity\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_id = "cdn";
  std::string policy_name = "HybridTier";
  double ratio = 1.0 / 8;
  double scale = -1.0;
  uint64_t accesses = 5000000;
  uint64_t seed = 42;
  bool huge = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--workload") {
      workload_id = next();
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--ratio") {
      const std::string value = next();
      const size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--ratio must look like 1:8\n";
        return 1;
      }
      ratio = std::stod(value.substr(0, colon)) /
              std::stod(value.substr(colon + 1));
    } else if (arg == "--accesses") {
      accesses = std::stoull(next());
    } else if (arg == "--scale") {
      scale = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--huge") {
      huge = true;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  if (!IsWorkloadId(workload_id)) {
    std::cerr << "unknown workload '" << workload_id << "'\n";
    PrintUsage();
    return 1;
  }
  if (!IsPolicyName(policy_name)) {
    std::cerr << "unknown policy '" << policy_name << "'\n";
    PrintUsage();
    return 1;
  }
  if (scale < 0) {
    // Match the bench defaults per workload family.
    scale = (workload_id == "cdn" || workload_id == "social") ? 0.1
            : (workload_id == "bwaves" || workload_id == "roms" ||
               workload_id == "silo")
                ? 0.25
            : workload_id == "xgboost" ? 0.5
                                       : 2.0;
  }

  auto workload = MakeWorkload(workload_id, scale, seed);
  auto policy = MakePolicy(policy_name);

  SimulationConfig config;
  config.fast_tier_fraction = FastFractionFor(policy_name, ratio);
  config.allocation = AllocationPolicyFor(policy_name);
  config.max_accesses = accesses;
  config.mode = huge ? PageMode::kHuge : PageMode::kRegular;
  config.seed = seed;

  Simulation simulation(config, workload.get(), policy.get());
  const SimulationResult result = simulation.Run();

  std::cout << "workload:          " << workload->name() << " ("
            << workload->footprint_pages() << " pages, scale " << scale
            << ")\n"
            << "policy:            " << policy->name() << "\n"
            << "fast tier:         " << simulation.fast_capacity_units()
            << " / " << simulation.footprint_units() << " units\n"
            << "accesses:          " << result.accesses << " in "
            << FormatTime(result.duration_ns) << " virtual\n"
            << "median op latency: " << result.median_latency_ns << " ns\n"
            << "p99 op latency:    " << result.p99_latency_ns << " ns\n"
            << "throughput:        " << result.throughput_mops
            << " Mop/s\n"
            << "fast-fill rate:    "
            << FormatDouble(result.FastAccessFraction() * 100, 1) << " %\n"
            << "promoted/demoted:  " << result.migration.promoted_pages
            << " / " << result.migration.demoted_pages << " pages\n"
            << "metadata:          " << FormatBytes(result.metadata_bytes)
            << "\n"
            << "tiering LLC share: "
            << FormatDouble(result.TieringLlcMissShare() * 100, 1)
            << " % of misses\n";
  return 0;
}
