#include "cache/hierarchy.h"

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1_app_(config.l1, "L1d-app"),
      l1_tiering_(config.l1, "L1d-tiering"),
      llc_(config.llc, "LLC") {}

uint64_t CacheHierarchy::L1Misses(AccessOwner owner) const {
  const size_t o = static_cast<size_t>(owner);
  return l1_app_.stats().misses[o] + l1_tiering_.stats().misses[o];
}

uint64_t CacheHierarchy::LlcMisses(AccessOwner owner) const {
  return llc_.stats().misses[static_cast<size_t>(owner)];
}

double CacheHierarchy::TieringL1MissShare() const {
  const uint64_t tiering = L1Misses(AccessOwner::kTiering);
  const uint64_t total = tiering + L1Misses(AccessOwner::kApp);
  return total == 0 ? 0.0
                    : static_cast<double>(tiering) /
                          static_cast<double>(total);
}

double CacheHierarchy::TieringLlcMissShare() const {
  return llc_.stats().MissShare(AccessOwner::kTiering);
}

void CacheHierarchy::ResetStats() {
  l1_app_.ResetStats();
  l1_tiering_.ResetStats();
  llc_.ResetStats();
}

void CacheHierarchy::Flush() {
  l1_app_.Flush();
  l1_tiering_.Flush();
  llc_.Flush();
}

}  // namespace hybridtier
