#ifndef HYBRIDTIER_CACHE_CACHE_SIM_H_
#define HYBRIDTIER_CACHE_CACHE_SIM_H_

/**
 * @file
 * Set-associative cache simulator.
 *
 * The paper quantifies tiering overhead partly as *cache misses caused by
 * tiering metadata updates* (Observation 3, Figs 5/13/14). To reproduce
 * those measurements without hardware counters, the simulator runs both
 * the application's memory accesses and the tiering runtime's metadata
 * accesses through a modeled two-level cache hierarchy and attributes
 * every hit/miss to its owner.
 *
 * The model is a classic write-allocate, LRU, set-associative cache with
 * 64-byte lines. Writebacks are not modeled (they do not affect miss
 * attribution, which is what the figures report).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace hybridtier {

/** Who issued a memory access — used for miss attribution. */
enum class AccessOwner : uint8_t {
  kApp = 0,      //!< The application workload.
  kTiering = 1,  //!< The tiering runtime (metadata + scans).
};

/** Number of distinct AccessOwner values. */
inline constexpr size_t kNumOwners = 2;

/** Geometry of one cache level. */
struct CacheConfig {
  uint64_t size_bytes = 512 * 1024;  //!< Total capacity.
  uint32_t ways = 8;                 //!< Associativity.
  uint32_t line_size = 64;           //!< Line size in bytes.
};

/** Hit/miss counters, split by access owner. */
struct CacheStats {
  uint64_t hits[kNumOwners] = {0, 0};
  uint64_t misses[kNumOwners] = {0, 0};

  /** Total hits across owners. */
  uint64_t total_hits() const { return hits[0] + hits[1]; }
  /** Total misses across owners. */
  uint64_t total_misses() const { return misses[0] + misses[1]; }

  /** Fraction of all misses attributed to `owner` (0 if no misses). */
  double MissShare(AccessOwner owner) const {
    const uint64_t total = total_misses();
    if (total == 0) return 0.0;
    return static_cast<double>(misses[static_cast<size_t>(owner)]) /
           static_cast<double>(total);
  }

  /** Resets all counters. */
  void Reset() { *this = CacheStats{}; }
};

/** One set-associative cache level with true-LRU replacement. */
class Cache {
 public:
  /** Builds a cache with the given geometry; sizes are validated. */
  explicit Cache(const CacheConfig& config, std::string name = "cache");

  /**
   * Accesses the line containing `line_addr` (already line-granular — the
   * caller divides byte addresses by the line size). Returns true on hit.
   * On miss the line is allocated, evicting the LRU way.
   */
  bool AccessLine(uint64_t line_addr, AccessOwner owner);

  /** Invalidates all lines and clears LRU state (stats are kept). */
  void Flush();

  /** Accumulated statistics. */
  const CacheStats& stats() const { return stats_; }

  /** Resets statistics only. */
  void ResetStats() { stats_.Reset(); }

  /** Number of sets. */
  uint64_t num_sets() const { return num_sets_; }

  /** Geometry used to build this cache. */
  const CacheConfig& config() const { return config_; }

  /** Human-readable level name (e.g. "L1d-app", "LLC"). */
  const std::string& name() const { return name_; }

 private:
  struct Way {
    uint64_t tag = UINT64_MAX;  //!< Line tag; UINT64_MAX = invalid.
    uint64_t last_used = 0;     //!< LRU timestamp.
  };

  CacheConfig config_;
  std::string name_;
  uint64_t num_sets_;
  uint64_t tick_ = 0;
  std::vector<Way> ways_;  //!< num_sets_ * config_.ways entries.
  CacheStats stats_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_CACHE_CACHE_SIM_H_
