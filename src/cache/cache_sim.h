#ifndef HYBRIDTIER_CACHE_CACHE_SIM_H_
#define HYBRIDTIER_CACHE_CACHE_SIM_H_

/**
 * @file
 * Set-associative cache simulator.
 *
 * The paper quantifies tiering overhead partly as *cache misses caused by
 * tiering metadata updates* (Observation 3, Figs 5/13/14). To reproduce
 * those measurements without hardware counters, the simulator runs both
 * the application's memory accesses and the tiering runtime's metadata
 * accesses through a modeled two-level cache hierarchy and attributes
 * every hit/miss to its owner.
 *
 * The model is a classic write-allocate, LRU, set-associative cache with
 * 64-byte lines. Writebacks are not modeled (they do not affect miss
 * attribution, which is what the figures report).
 *
 * This is the innermost structure of the whole simulator (two probes per
 * application access plus one per metadata line), so the implementation
 * is layout-tuned: tags and LRU stamps live in separate flat arrays
 * (struct-of-arrays, so a tag probe reads one or two cache lines instead
 * of walking tag/stamp pairs), recency is a per-set 32-bit tick instead
 * of a global 64-bit timestamp (half the LRU state, same eviction
 * decisions — only the relative order of accesses *within* a set
 * matters), the probe is inlined into callers, and the tag scan uses
 * AVX2 compares when the host supports them. All of this is
 * behavior-invariant: hit/miss outcomes and eviction choices are
 * identical to the reference implementation.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace hybridtier {

/** Who issued a memory access — used for miss attribution. */
enum class AccessOwner : uint8_t {
  kApp = 0,      //!< The application workload.
  kTiering = 1,  //!< The tiering runtime (metadata + scans).
};

/** Number of distinct AccessOwner values. */
inline constexpr size_t kNumOwners = 2;

/** Geometry of one cache level. */
struct CacheConfig {
  uint64_t size_bytes = 512 * 1024;  //!< Total capacity.
  uint32_t ways = 8;                 //!< Associativity.
  uint32_t line_size = 64;           //!< Line size in bytes.
};

/** Hit/miss counters, split by access owner. */
struct CacheStats {
  uint64_t hits[kNumOwners] = {0, 0};
  uint64_t misses[kNumOwners] = {0, 0};

  /** Total hits across owners. */
  uint64_t total_hits() const { return hits[0] + hits[1]; }
  /** Total misses across owners. */
  uint64_t total_misses() const { return misses[0] + misses[1]; }

  /** Fraction of all misses attributed to `owner` (0 if no misses). */
  double MissShare(AccessOwner owner) const {
    const uint64_t total = total_misses();
    if (total == 0) return 0.0;
    return static_cast<double>(misses[static_cast<size_t>(owner)]) /
           static_cast<double>(total);
  }

  /** Resets all counters. */
  void Reset() { *this = CacheStats{}; }
};

namespace detail {

/** Host AVX2 support, resolved once at load time. */
inline const bool kHaveAvx2 = [] {
#if defined(__x86_64__) || defined(__i386__)
  return static_cast<bool>(__builtin_cpu_supports("avx2"));
#else
  return false;
#endif
}();

/**
 * The whole per-set access: probe `tags[0..ways)` for `tag`; on hit
 * refresh the way's stamp, on miss evict the LRU way (lowest stamp,
 * lowest index on ties) and install the tag. Returns true on hit.
 * `ways` must be a positive multiple of 4 for the AVX2 kernel, which is
 * defined out of line so it can carry the target attribute without
 * infecting callers' codegen; one call covers all the SIMD-able work.
 */
bool AccessWaysAvx2(uint64_t* tags, uint32_t* stamps, uint32_t ways,
                    uint64_t tag, uint32_t tick);

/** Scalar equivalent (any associativity). */
inline bool AccessWaysScalar(uint64_t* tags, uint32_t* stamps,
                             uint32_t ways, uint64_t tag, uint32_t tick) {
  for (uint32_t w = 0; w < ways; ++w) {
    if (tags[w] == tag) {
      stamps[w] = tick;
      return true;
    }
  }
  uint32_t victim = 0;
  uint32_t best = stamps[0];
  for (uint32_t w = 1; w < ways; ++w) {
    if (stamps[w] < best) {
      best = stamps[w];
      victim = w;
    }
  }
  tags[victim] = tag;
  stamps[victim] = tick;
  return false;
}

}  // namespace detail

/** One set-associative cache level with true-LRU replacement. */
class Cache {
 public:
  /** Builds a cache with the given geometry; sizes are validated. */
  explicit Cache(const CacheConfig& config, std::string name = "cache");

  /**
   * Accesses the line containing `line_addr` (already line-granular — the
   * caller divides byte addresses by the line size). Returns true on hit.
   * On miss the line is allocated, evicting the LRU way.
   */
  bool AccessLine(uint64_t line_addr, AccessOwner owner) {
    const uint64_t set = line_addr & (num_sets_ - 1);
    const uint64_t tag = line_addr >> set_shift_;
    uint64_t* tags = &tags_[set * ways_];
    uint32_t* stamps = &stamps_[set * ways_];
    uint32_t tick = ++set_ticks_[set];
    if (tick == 0) [[unlikely]] {
      tick = RenormalizeSet(set);
    }
    // Eviction on miss takes the LRU way: lowest stamp, lowest index on
    // the only possible tie (the untouched stamp==0 initial state) —
    // matching the reference implementation's strict-< scan.
    const bool hit =
        (detail::kHaveAvx2 && (ways_ & 3u) == 0)
            ? detail::AccessWaysAvx2(tags, stamps, ways_, tag, tick)
            : detail::AccessWaysScalar(tags, stamps, ways_, tag, tick);
    uint64_t* counters = hit ? stats_.hits : stats_.misses;
    ++counters[static_cast<size_t>(owner)];
    return hit;
  }

  /**
   * Hints the hardware to pull the set metadata for `line_addr` into
   * the host caches ahead of a future AccessLine — the hierarchy issues
   * this for the shared LLC while the (mostly-missing) L1 probe runs.
   */
  void PrefetchLine(uint64_t line_addr) const {
    const uint64_t set = line_addr & (num_sets_ - 1);
    const uint64_t* tags = &tags_[set * ways_];
    __builtin_prefetch(tags, 1);
    if (ways_ > 8) __builtin_prefetch(tags + 8, 1);
    __builtin_prefetch(&stamps_[set * ways_], 1);
  }

  /** Invalidates all lines and clears LRU state (stats are kept). */
  void Flush();

  /** Accumulated statistics. */
  const CacheStats& stats() const { return stats_; }

  /** Resets statistics only. */
  void ResetStats() { stats_.Reset(); }

  /** Number of sets. */
  uint64_t num_sets() const { return num_sets_; }

  /** Geometry used to build this cache. */
  const CacheConfig& config() const { return config_; }

  /** Human-readable level name (e.g. "L1d-app", "LLC"). */
  const std::string& name() const { return name_; }

 private:
  /** Invalid-tag marker; real tags never reach it (addresses < 2^58). */
  static constexpr uint64_t kInvalidTag = UINT64_MAX;

  /**
   * Handles per-set tick wraparound (2^32 accesses to one set):
   * rank-compresses the set's stamps so relative recency is preserved,
   * restarts the set clock above them, and returns the fresh tick.
   */
  uint32_t RenormalizeSet(uint64_t set);

  CacheConfig config_;
  std::string name_;
  uint64_t num_sets_;
  uint32_t set_shift_;
  uint32_t ways_;
  std::vector<uint64_t> tags_;       //!< num_sets_ * ways_, SoA.
  std::vector<uint32_t> stamps_;     //!< Per-way recency, per-set clock.
  std::vector<uint32_t> set_ticks_;  //!< Per-set access counter.
  CacheStats stats_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_CACHE_CACHE_SIM_H_
