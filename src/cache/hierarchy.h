#ifndef HYBRIDTIER_CACHE_HIERARCHY_H_
#define HYBRIDTIER_CACHE_HIERARCHY_H_

/**
 * @file
 * Two-level cache hierarchy: private L1s for the application core and the
 * tiering core, plus a shared LLC.
 *
 * This mirrors the paper's measurement setup (§6.3.3): the application
 * runs on its own cores while the single tiering runtime thread runs on
 * another, so they have private L1s but contend in the shared LLC — which
 * is exactly how tiering metadata traffic interferes with the app.
 */

#include <cstdint>

#include "cache/cache_sim.h"
#include "common/units.h"

namespace hybridtier {

/** The level at which an access was served. */
enum class HitLevel : uint8_t {
  kL1 = 0,      //!< Private L1 hit.
  kLlc = 1,     //!< Shared LLC hit.
  kMemory = 2,  //!< Missed all caches; served from a memory tier.
};

/**
 * Geometry for the full hierarchy.
 *
 * Defaults are scaled down ~50-100x from the evaluation machine (Xeon
 * 4314: 48 KiB L1d, 24 MiB LLC) to match the simulator's ~1000x-scaled
 * workload footprints, preserving the paper's key size relations:
 * application footprint >> LLC, exact per-page tiering metadata > LLC,
 * HybridTier's CBF < LLC.
 */
struct HierarchyConfig {
  CacheConfig l1{.size_bytes = 16 * 1024, .ways = 8, .line_size = 64};
  CacheConfig llc{.size_bytes = 256 * 1024, .ways = 16, .line_size = 64};
};

/** Two private L1 caches over a shared LLC, with per-owner attribution. */
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config = HierarchyConfig{});

  /**
   * Accesses the 64-byte line containing byte address `addr` on behalf of
   * `owner` and returns the level that served it.
   */
  HitLevel Access(uint64_t addr, AccessOwner owner) {
    return AccessLine(addr / kCacheLineSize, owner);
  }

  /** Same as Access but takes an already line-granular address. */
  HitLevel AccessLine(uint64_t line_addr, AccessOwner owner) {
    Cache& l1 = owner == AccessOwner::kApp ? l1_app_ : l1_tiering_;
    // Pull the LLC set state toward the host core while the L1 probe
    // runs: the L1 mostly misses (footprints dwarf it), so the LLC probe
    // is on the critical path nearly every access.
    llc_.PrefetchLine(line_addr);
    if (l1.AccessLine(line_addr, owner)) return HitLevel::kL1;
    if (llc_.AccessLine(line_addr, owner)) return HitLevel::kLlc;
    return HitLevel::kMemory;
  }


  /** Statistics of the application-core L1. */
  const CacheStats& l1_app_stats() const { return l1_app_.stats(); }
  /** Statistics of the tiering-core L1. */
  const CacheStats& l1_tiering_stats() const { return l1_tiering_.stats(); }
  /** Statistics of the shared LLC. */
  const CacheStats& llc_stats() const { return llc_.stats(); }

  /**
   * Combined L1 miss count for `owner` — the paper's "L1 misses" metric
   * sums the private L1s.
   */
  uint64_t L1Misses(AccessOwner owner) const;

  /** LLC miss count attributed to `owner`. */
  uint64_t LlcMisses(AccessOwner owner) const;

  /** Fraction of L1 misses attributed to tiering (Fig 5/13 Y-axis). */
  double TieringL1MissShare() const;

  /** Fraction of LLC misses attributed to tiering (Fig 5/13 Y-axis). */
  double TieringLlcMissShare() const;

  /** Clears statistics on every level (contents are kept). */
  void ResetStats();

  /** Invalidates every level. */
  void Flush();

  /** Geometry in use. */
  const HierarchyConfig& config() const { return config_; }

 private:
  HierarchyConfig config_;
  Cache l1_app_;
  Cache l1_tiering_;
  Cache llc_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_CACHE_HIERARCHY_H_
