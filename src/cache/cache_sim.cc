#include "cache/cache_sim.h"

#include <bit>

#include "common/logging.h"

namespace hybridtier {

Cache::Cache(const CacheConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  HT_ASSERT(config.line_size > 0 && std::has_single_bit(config.line_size),
            "line size must be a power of two");
  HT_ASSERT(config.ways > 0, "cache must have at least one way");
  const uint64_t lines = config.size_bytes / config.line_size;
  HT_ASSERT(lines >= config.ways, "cache too small for its associativity");
  num_sets_ = lines / config.ways;
  HT_ASSERT(num_sets_ > 0 && std::has_single_bit(num_sets_),
            "cache geometry must yield a power-of-two set count, got ",
            num_sets_, " sets");
  ways_.assign(num_sets_ * config.ways, Way{});
}

bool Cache::AccessLine(uint64_t line_addr, AccessOwner owner) {
  const uint64_t set = line_addr & (num_sets_ - 1);
  const uint64_t tag = line_addr >> std::countr_zero(num_sets_);
  Way* base = &ways_[set * config_.ways];
  ++tick_;

  Way* lru = base;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.tag == tag) {
      way.last_used = tick_;
      ++stats_.hits[static_cast<size_t>(owner)];
      return true;
    }
    if (way.last_used < lru->last_used) lru = &base[w];
  }

  // Miss: allocate into the LRU way.
  lru->tag = tag;
  lru->last_used = tick_;
  ++stats_.misses[static_cast<size_t>(owner)];
  return false;
}

void Cache::Flush() {
  for (auto& way : ways_) way = Way{};
  tick_ = 0;
}

}  // namespace hybridtier
