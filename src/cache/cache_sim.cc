#include "cache/cache_sim.h"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/logging.h"

namespace hybridtier {

namespace detail {

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) bool AccessWaysAvx2(uint64_t* tags,
                                                    uint32_t* stamps,
                                                    uint32_t ways,
                                                    uint64_t tag,
                                                    uint32_t tick) {
  const __m256i vtag = _mm256_set1_epi64x(static_cast<long long>(tag));
  // 64-bit mask: `ways` may legally be up to 64, so the per-block shift
  // can reach 60.
  uint64_t mask = 0;
  for (uint32_t w = 0; w < ways; w += 4) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w));
    const __m256i eq = _mm256_cmpeq_epi64(t, vtag);
    mask |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq))))
            << w;
  }
  if (mask != 0) {
    stamps[std::countr_zero(mask)] = tick;
    return true;
  }
  // Miss: SIMD argmin over the stamps. The horizontal minimum is
  // broadcast and compared back; the first set lane (lowest index) is
  // the victim, preserving the scalar scan's lowest-index tie-break.
  uint32_t victim;
  if (ways == 8 || ways == 16) {
    __m256i lo = _mm256_loadu_si256(reinterpret_cast<__m256i*>(stamps));
    __m256i min8 = lo;
    if (ways == 16) {
      const __m256i hi =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(stamps + 8));
      min8 = _mm256_min_epu32(lo, hi);
    }
    // Reduce 8 lanes to the scalar minimum.
    __m256i m = _mm256_min_epu32(
        min8, _mm256_permute2x128_si256(min8, min8, 0x01));
    m = _mm256_min_epu32(m, _mm256_shuffle_epi32(m, 0x4e));
    m = _mm256_min_epu32(m, _mm256_shuffle_epi32(m, 0xb1));
    const __m256i vmin = m;  // Minimum broadcast to every lane.
    uint32_t eq_mask = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, vmin))));
    if (ways == 16) {
      const __m256i hi =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(stamps + 8));
      eq_mask |= static_cast<uint32_t>(_mm256_movemask_ps(
                     _mm256_castsi256_ps(_mm256_cmpeq_epi32(hi, vmin))))
                 << 8;
    }
    victim = static_cast<uint32_t>(std::countr_zero(eq_mask));
  } else {
    victim = 0;
    uint32_t best = stamps[0];
    for (uint32_t w = 1; w < ways; ++w) {
      if (stamps[w] < best) {
        best = stamps[w];
        victim = w;
      }
    }
  }
  tags[victim] = tag;
  stamps[victim] = tick;
  return false;
}
#else
bool AccessWaysAvx2(uint64_t* tags, uint32_t* stamps, uint32_t ways,
                    uint64_t tag, uint32_t tick) {
  return AccessWaysScalar(tags, stamps, ways, tag, tick);
}
#endif

}  // namespace detail

Cache::Cache(const CacheConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  HT_ASSERT(config.line_size > 0 && std::has_single_bit(config.line_size),
            "line size must be a power of two");
  HT_ASSERT(config.ways > 0, "cache must have at least one way");
  HT_ASSERT(config.ways <= 64, "associativity above 64 is unsupported");
  const uint64_t lines = config.size_bytes / config.line_size;
  HT_ASSERT(lines >= config.ways, "cache too small for its associativity");
  num_sets_ = lines / config.ways;
  HT_ASSERT(num_sets_ > 0 && std::has_single_bit(num_sets_),
            "cache geometry must yield a power-of-two set count, got ",
            num_sets_, " sets");
  set_shift_ = static_cast<uint32_t>(std::countr_zero(num_sets_));
  ways_ = config.ways;
  tags_.assign(num_sets_ * ways_, kInvalidTag);
  stamps_.assign(num_sets_ * ways_, 0);
  set_ticks_.assign(num_sets_, 0);
}

uint32_t Cache::RenormalizeSet(uint64_t set) {
  uint32_t* stamps = &stamps_[set * ways_];
  std::array<uint32_t, 64> order;
  std::iota(order.begin(), order.begin() + ways_, 0u);
  // Order by (stamp, way index) — the same tie-break the eviction scan
  // uses — then reassign dense ranks starting at 1.
  std::sort(order.begin(), order.begin() + ways_,
            [&](uint32_t a, uint32_t b) {
              return stamps[a] != stamps[b] ? stamps[a] < stamps[b] : a < b;
            });
  for (uint32_t rank = 0; rank < ways_; ++rank) {
    stamps[order[rank]] = rank + 1;
  }
  set_ticks_[set] = ways_ + 1;
  return ways_ + 1;
}

void Cache::Flush() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(stamps_.begin(), stamps_.end(), 0u);
  std::fill(set_ticks_.begin(), set_ticks_.end(), 0u);
}

}  // namespace hybridtier
