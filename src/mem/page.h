#ifndef HYBRIDTIER_MEM_PAGE_H_
#define HYBRIDTIER_MEM_PAGE_H_

/**
 * @file
 * Page identifiers and address arithmetic.
 *
 * The simulated application address space is a flat range of 4 KiB pages
 * numbered 0..footprint-1. Workload generators emit byte addresses inside
 * that space; the memory system operates on `PageId`s. Huge-page mode
 * groups 512 consecutive base pages into one 2 MiB migration/tracking
 * unit.
 */

#include <cstdint>

#include "common/units.h"

namespace hybridtier {

/** Index of a 4 KiB page within the simulated address space. */
using PageId = uint64_t;

/** Sentinel for "no page". */
inline constexpr PageId kInvalidPage = UINT64_MAX;

/** Page containing byte address `addr`. */
inline PageId PageOfAddr(uint64_t addr) { return addr / kPageSize; }

/** First byte address of page `page`. */
inline uint64_t AddrOfPage(PageId page) { return page * kPageSize; }

/** 2 MiB huge page containing base page `page`. */
inline PageId HugePageOf(PageId page) { return page / kPagesPerHugePage; }

/** First base page of huge page `huge`. */
inline PageId FirstPageOfHuge(PageId huge) {
  return huge * kPagesPerHugePage;
}

/** Cache line (64 B granule) containing byte address `addr`. */
inline uint64_t LineOfAddr(uint64_t addr) { return addr / kCacheLineSize; }

/** Page granularity selector for the tracking/migration unit. */
enum class PageMode : uint8_t {
  kRegular = 0,  //!< 4 KiB pages.
  kHuge = 1,     //!< 2 MiB transparent huge pages.
};

/** Bytes per page under `mode`. */
inline uint64_t PageBytes(PageMode mode) {
  return mode == PageMode::kRegular ? kPageSize : kHugePageSize;
}

/** Converts a byte address to the tracking unit id under `mode`. */
inline PageId TrackingUnitOfAddr(uint64_t addr, PageMode mode) {
  return addr / PageBytes(mode);
}

/** Half-open range of pages [begin, end). */
struct PageRange {
  PageId begin = 0;
  PageId end = 0;

  /** Number of pages in the range. */
  uint64_t size() const { return end - begin; }
  /** True if the range contains `page`. */
  bool Contains(PageId page) const { return page >= begin && page < end; }
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_PAGE_H_
