#ifndef HYBRIDTIER_MEM_TIER_H_
#define HYBRIDTIER_MEM_TIER_H_

/**
 * @file
 * Memory tier identifiers and per-tier configuration.
 *
 * Latency/bandwidth defaults follow the paper's emulation setup (§5.1):
 * local DDR4 DRAM as the fast tier and a remote-NUMA-emulated CXL device
 * with 124 ns idle latency and 34 GB/s bandwidth as the slow tier.
 */

#include <cstdint>

#include "common/units.h"

namespace hybridtier {

/** Which memory tier a page lives in. */
enum class Tier : uint8_t {
  kFast = 0,  //!< CPU-attached local DRAM.
  kSlow = 1,  //!< CXL-attached memory.
};

/** Number of tiers. */
inline constexpr size_t kNumTiers = 2;

/** Short display name of a tier. */
inline const char* TierName(Tier tier) {
  return tier == Tier::kFast ? "fast" : "slow";
}

/** Static properties of one tier. */
struct TierConfig {
  uint64_t capacity_pages = 0;   //!< Capacity in 4 KiB pages.
  TimeNs idle_latency_ns = 0;    //!< Unloaded access latency.
  double bandwidth_gbps = 0.0;   //!< Peak bandwidth in GB/s (1e9 B/s).
};

/** Paper-default fast tier (local DDR4): ~80 ns idle, ~100 GB/s. */
inline TierConfig DefaultFastTier(uint64_t capacity_pages) {
  return TierConfig{.capacity_pages = capacity_pages,
                    .idle_latency_ns = 80,
                    .bandwidth_gbps = 100.0};
}

/** Paper-default slow tier (emulated CXL): 124 ns idle, 34 GB/s (§5.1). */
inline TierConfig DefaultSlowTier(uint64_t capacity_pages) {
  return TierConfig{.capacity_pages = capacity_pages,
                    .idle_latency_ns = 124,
                    .bandwidth_gbps = 34.0};
}

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_TIER_H_
