#include "mem/tiered_memory.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

TieredMemory::TieredMemory(uint64_t total_pages, uint64_t fast_capacity,
                           uint64_t slow_capacity,
                           AllocationPolicy allocation_policy,
                           uint32_t endpoint_count,
                           uint64_t interleave_units)
    : flags_(total_pages, 0),
      protect_time_(total_pages, 0),
      capacity_{fast_capacity, slow_capacity},
      allocation_policy_(allocation_policy),
      endpoint_count_(endpoint_count),
      interleave_units_(interleave_units),
      endpoint_resident_(endpoint_count, 0),
      endpoint_fast_resident_(endpoint_count, 0) {
  HT_ASSERT(total_pages > 0, "address space must not be empty");
  HT_ASSERT(fast_capacity + slow_capacity >= total_pages,
            "tiers too small for the footprint: ", fast_capacity, "+",
            slow_capacity, " < ", total_pages);
  HT_ASSERT(endpoint_count >= 1 && interleave_units >= 1,
            "endpoint layout needs >= 1 endpoint and a positive "
            "interleave granularity");
}

TouchResult TieredMemory::TouchSlowPath(PageId page, TimeNs now) {
  uint8_t& f = flags_[page];
  TouchResult result;

  if (!(f & kResident)) {
    // First touch: allocate per policy.
    Tier tier = Tier::kSlow;
    if (allocation_policy_ == AllocationPolicy::kFastFirst &&
        FreePages(Tier::kFast) > 0) {
      tier = Tier::kFast;
    }
    HT_ASSERT(FreePages(tier) > 0, "both tiers full allocating page ", page);
    f |= kResident;
    if (tier == Tier::kSlow) {
      f |= kTierSlow;
      AccountEndpoint(page, +1);
      result.endpoint = EndpointOf(page);
    } else {
      f &= static_cast<uint8_t>(~kTierSlow);
      AccountEndpointFast(page, +1);
    }
    ++used_[static_cast<size_t>(tier)];
    AccountRegion(page, tier, +1);
    result.first_touch = true;
    result.tier = tier;
    return result;
  }

  if (f & kTierSlow) {
    result.tier = Tier::kSlow;
    result.endpoint = EndpointOf(page);
  } else {
    result.tier = Tier::kFast;
  }
  if (f & kProtected) {
    // NUMA hint fault: the access re-maps the page and reports how long
    // the page sat unmapped (AutoNUMA's "hint fault latency").
    f &= static_cast<uint8_t>(~kProtected);
    result.hint_fault = true;
    result.fault_latency_ns =
        now >= protect_time_[page] ? now - protect_time_[page] : 0;
  }
  return result;
}

Tier TieredMemory::TierOf(PageId page) const {
  HT_ASSERT(page < flags_.size(), "page ", page, " outside address space");
  HT_ASSERT(flags_[page] & kResident, "page ", page, " not resident");
  return (flags_[page] & kTierSlow) ? Tier::kSlow : Tier::kFast;
}

bool TieredMemory::IsResident(PageId page) const {
  HT_ASSERT(page < flags_.size(), "page ", page, " outside address space");
  return flags_[page] & kResident;
}

bool TieredMemory::IsProtected(PageId page) const {
  HT_ASSERT(page < flags_.size(), "page ", page, " outside address space");
  return flags_[page] & kProtected;
}

uint64_t TieredMemory::Protect(PageRange range, TimeNs now) {
  HT_ASSERT(range.end <= flags_.size(), "range end outside address space");
  uint64_t protected_count = 0;
  for (PageId page = range.begin; page < range.end; ++page) {
    uint8_t& f = flags_[page];
    if ((f & kResident) && !(f & kProtected)) {
      f |= kProtected;
      protect_time_[page] = now;
      ++protected_count;
    }
  }
  return protected_count;
}

bool TieredMemory::Migrate(PageId page, Tier dst) {
  HT_ASSERT(page < flags_.size(), "page ", page, " outside address space");
  uint8_t& f = flags_[page];
  if (!(f & kResident)) return false;
  const Tier src = (f & kTierSlow) ? Tier::kSlow : Tier::kFast;
  if (src == dst) return false;
  if (FreePages(dst) == 0) return false;
  if (dst == Tier::kSlow) {
    f |= kTierSlow;
    AccountEndpoint(page, +1);
    AccountEndpointFast(page, -1);
  } else {
    f &= static_cast<uint8_t>(~kTierSlow);
    AccountEndpoint(page, -1);
    AccountEndpointFast(page, +1);
  }
  --used_[static_cast<size_t>(src)];
  ++used_[static_cast<size_t>(dst)];
  AccountRegion(page, src, -1);
  AccountRegion(page, dst, +1);
  return true;
}

uint64_t TieredMemory::Release(PageRange range) {
  HT_ASSERT(range.end <= flags_.size(), "range end outside address space");
  uint64_t released = 0;
  for (PageId page = range.begin; page < range.end; ++page) {
    uint8_t& f = flags_[page];
    if (!(f & kResident)) continue;
    const Tier tier = (f & kTierSlow) ? Tier::kSlow : Tier::kFast;
    --used_[static_cast<size_t>(tier)];
    AccountRegion(page, tier, -1);
    if (tier == Tier::kSlow) {
      AccountEndpoint(page, -1);
    } else {
      AccountEndpointFast(page, -1);
    }
    f = 0;
    ++released;
  }
  return released;
}

void TieredMemory::DefineRegions(const std::vector<PageRange>& regions) {
  region_of_.assign(flags_.size(), kNoRegion);
  for (size_t tier = 0; tier < kNumTiers; ++tier) {
    region_resident_[tier].assign(regions.size(), 0);
  }
  for (size_t r = 0; r < regions.size(); ++r) {
    const PageRange& range = regions[r];
    HT_ASSERT(range.end <= flags_.size(),
              "region end outside address space");
    for (PageId page = range.begin; page < range.end; ++page) {
      HT_ASSERT(region_of_[page] == kNoRegion,
                "accounting regions overlap at page ", page);
      region_of_[page] = static_cast<uint32_t>(r);
      const uint8_t f = flags_[page];
      if (!(f & kResident)) continue;
      const Tier tier = (f & kTierSlow) ? Tier::kSlow : Tier::kFast;
      ++region_resident_[static_cast<size_t>(tier)][r];
    }
  }
}

uint64_t TieredMemory::RegionResident(uint32_t region, Tier tier) const {
  const auto& counts = region_resident_[static_cast<size_t>(tier)];
  HT_ASSERT(region < counts.size(), "region ", region,
            " outside the accounting layout");
  return counts[region];
}

}  // namespace hybridtier
