#include "mem/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/spec_error.h"

namespace hybridtier {

namespace {

constexpr char kPrefix[] = "cxl:";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;

/**
 * Parses a double like "0.9" or "1e8"; fatal quoting the token and its
 * byte offset (`offset` = where `text` starts inside `spec`).
 */
double ParseNumber(const std::string& text, const std::string& key,
                   const std::string& spec, size_t offset) {
  size_t parsed = 0;
  double value = -1.0;
  try {
    value = std::stod(text, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (parsed != text.size() || std::isnan(value)) {
    SpecFatal(spec, offset, text,
              "not a number for topology key '" + key + "'");
  }
  return value;
}

/** Formats a double with enough digits to round-trip typical knobs. */
std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

/** Splits a ':'-separated list (starting at `offset` in `spec`) into
 *  per-element doubles; each element fails at its own offset. */
std::vector<double> ParseList(const std::string& text,
                              const std::string& key,
                              const std::string& spec, size_t offset) {
  std::vector<double> values;
  size_t start = 0;
  while (start <= text.size()) {
    size_t colon = text.find(':', start);
    if (colon == std::string::npos) colon = text.size();
    values.push_back(ParseNumber(text.substr(start, colon - start), key,
                                 spec, offset + start));
    if (colon == text.size()) break;
    start = colon + 1;
  }
  return values;
}

/**
 * Parses the device tree `(child,child,...)` where a child is an
 * endpoint id or a one-level switch `(id,id,...)`. Fills endpoint
 * slots (indexed by id-1) and the switch list in order of appearance.
 */
void ParseTree(const std::string& tree, const std::string& spec,
               size_t tree_offset, Topology* out) {
  if (tree.size() < 3 || tree.front() != '(' || tree.back() != ')') {
    SpecFatal(spec, tree_offset, tree,
              "device tree must be a parenthesized child list");
  }
  std::vector<bool> seen;
  // `token_offset` is the token's start within `spec` (body positions
  // translate as tree_offset + 1 + pos: prefix, then the opening '(').
  const auto add_endpoint = [&](const std::string& token,
                                size_t token_offset,
                                int32_t switch_id) -> uint32_t {
    const double value = ParseNumber(token, "tree", spec, token_offset);
    if (!(value >= 1.0 && value <= kMaxTopologyEndpoints) ||
        value != std::floor(value)) {
      SpecFatal(spec, token_offset, token,
                detail::StrCat("endpoint id must be an integer in [1, ",
                               kMaxTopologyEndpoints, "]"));
    }
    const uint32_t id = static_cast<uint32_t>(value);
    if (seen.size() < id) seen.resize(id, false);
    if (seen[id - 1]) {
      SpecFatal(spec, token_offset, token, "endpoint id repeats");
    }
    seen[id - 1] = true;
    if (out->endpoints.size() < id) out->endpoints.resize(id);
    out->endpoints[id - 1].switch_id = switch_id;
    return id - 1;
  };

  const std::string body = tree.substr(1, tree.size() - 2);
  const size_t body_offset = tree_offset + 1;
  size_t pos = 0;
  while (pos <= body.size()) {
    if (pos == body.size()) {
      SpecFatal(spec, body_offset + pos, "",
                "empty child in the device tree");
    }
    if (body[pos] == '(') {
      // A switch: a flat id list (nested switches are not modeled).
      const size_t close = body.find(')', pos);
      const size_t inner_open = body.find('(', pos + 1);
      if (close == std::string::npos) {
        SpecFatal(spec, body_offset + pos, "(",
                  "unbalanced '(' in the device tree");
      }
      if (inner_open != std::string::npos && inner_open < close) {
        SpecFatal(spec, body_offset + inner_open, "(",
                  "a switch nests inside a switch; only one switch "
                  "level is modeled");
      }
      const int32_t switch_id =
          static_cast<int32_t>(out->switches.size());
      out->switches.emplace_back();
      std::string member = body.substr(pos + 1, close - pos - 1);
      size_t mstart = 0;
      while (mstart <= member.size()) {
        size_t mcomma = member.find(',', mstart);
        if (mcomma == std::string::npos) mcomma = member.size();
        const std::string token =
            member.substr(mstart, mcomma - mstart);
        const size_t token_offset = body_offset + pos + 1 + mstart;
        if (token.empty()) {
          SpecFatal(spec, token_offset, "", "empty member in a switch");
        }
        out->switches.back().members.push_back(
            add_endpoint(token, token_offset, switch_id));
        if (mcomma == member.size()) break;
        mstart = mcomma + 1;
      }
      pos = close + 1;
    } else {
      size_t comma = body.find(',', pos);
      if (comma == std::string::npos) comma = body.size();
      add_endpoint(body.substr(pos, comma - pos), body_offset + pos,
                   /*switch_id=*/-1);
      pos = comma;
    }
    if (pos == body.size()) break;
    if (body[pos] != ',') {
      SpecFatal(spec, body_offset + pos, std::string(1, body[pos]),
                "expected ',' after a device-tree child");
    }
    ++pos;
  }
  for (size_t i = 0; i < out->endpoints.size(); ++i) {
    if (i >= seen.size() || !seen[i]) {
      SpecFatal(spec, tree_offset, tree,
                detail::StrCat("names ", out->endpoints.size(),
                               " endpoints but is missing id ", i + 1,
                               " (ids must be exactly 1..N)"));
    }
  }
}

void Validate(const Topology& topology, const std::string& text) {
  if (topology.endpoints.empty()) {
    HT_FATAL("topology spec '", text, "' has no endpoints");
  }
  if (topology.endpoints.size() > kMaxTopologyEndpoints) {
    HT_FATAL("topology spec '", text, "' exceeds ",
             kMaxTopologyEndpoints, " endpoints");
  }
  for (const TopologyEndpoint& endpoint : topology.endpoints) {
    if (endpoint.bandwidth_gbps <= 0.0) {
      HT_FATAL("endpoint bandwidth must be positive in topology spec '",
               text, "'");
    }
    if (endpoint.switch_id >= 0 &&
        static_cast<size_t>(endpoint.switch_id) >=
            topology.switches.size()) {
      HT_FATAL("endpoint references missing switch in topology spec '",
               text, "'");
    }
  }
  for (const TopologySwitch& sw : topology.switches) {
    if (sw.link_gbps <= 0.0) {
      HT_FATAL("switch link bandwidth must be positive in topology "
               "spec '", text, "'");
    }
    if (sw.members.empty()) {
      HT_FATAL("switch with no members in topology spec '", text, "'");
    }
  }
  if (topology.interleave_units == 0) {
    HT_FATAL("topology interleave granularity must be positive in "
             "spec '", text, "'");
  }
}

}  // namespace

Topology DefaultTopology() {
  Topology topology;
  topology.endpoints.emplace_back();
  return topology;
}

bool IsTopologySpec(const std::string& text) {
  return text.rfind(kPrefix, 0) == 0;
}

Topology ParseTopologySpec(const std::string& text) {
  HT_ASSERT(IsTopologySpec(text), "not a topology spec: '", text, "'");
  Topology topology;
  const std::string body = text.substr(kPrefixLen);
  if (body.empty() || body.front() != '(') {
    SpecFatal(text, kPrefixLen,
              body.empty() ? "" : std::string(1, body.front()),
              "spec must start with a device tree '(...)'");
  }
  // The tree is the prefix up to its matching close paren; everything
  // after is the comma-separated key=value list.
  size_t depth = 0;
  size_t tree_end = std::string::npos;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '(') ++depth;
    if (body[i] == ')' && --depth == 0) {
      tree_end = i;
      break;
    }
  }
  if (tree_end == std::string::npos) {
    SpecFatal(text, kPrefixLen, body, "unbalanced parentheses");
  }
  ParseTree(body.substr(0, tree_end + 1), text, kPrefixLen, &topology);

  std::vector<double> link_list;
  bool have_links = false;
  std::string rest = body.substr(tree_end + 1);
  const size_t rest_offset = kPrefixLen + tree_end + 1;
  if (!rest.empty() && rest.front() != ',') {
    SpecFatal(text, rest_offset, std::string(1, rest.front()),
              "expected ',' after the device tree");
  }
  size_t start = 1;
  while (!rest.empty() && start <= rest.size()) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) comma = rest.size();
    const std::string token = rest.substr(start, comma - start);
    const size_t token_offset = rest_offset + start;
    start = comma + 1;
    if (token.empty()) {
      SpecFatal(text, token_offset, "", "empty key=value token");
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      SpecFatal(text, token_offset, token, "expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const size_t value_offset = token_offset + eq + 1;
    if (key == "lat") {
      const std::vector<double> lat =
          ParseList(value, key, text, value_offset);
      if (lat.size() != topology.endpoints.size()) {
        SpecFatal(text, value_offset, value,
                  detail::StrCat("lists ", lat.size(), " latencies for ",
                                 topology.endpoints.size(),
                                 " endpoints"));
      }
      for (size_t i = 0; i < lat.size(); ++i) {
        if (lat[i] < 0.0) {
          SpecFatal(text, value_offset, value,
                    "endpoint latency must be >= 0");
        }
        topology.endpoints[i].idle_latency_ns =
            static_cast<TimeNs>(lat[i]);
      }
    } else if (key == "bw") {
      const std::vector<double> bw =
          ParseList(value, key, text, value_offset);
      if (bw.size() != topology.endpoints.size()) {
        SpecFatal(text, value_offset, value,
                  detail::StrCat("lists ", bw.size(), " bandwidths for ",
                                 topology.endpoints.size(),
                                 " endpoints"));
      }
      for (size_t i = 0; i < bw.size(); ++i) {
        topology.endpoints[i].bandwidth_gbps = bw[i];
      }
    } else if (key == "link") {
      link_list = ParseList(value, key, text, value_offset);
      have_links = true;
    } else if (key == "gran") {
      const double gran = ParseNumber(value, key, text, value_offset);
      if (!(gran >= 1.0) || gran != std::floor(gran)) {
        SpecFatal(text, value_offset, value,
                  "gran must be a positive integer");
      }
      topology.interleave_units = static_cast<uint64_t>(gran);
    } else {
      SpecFatal(text, token_offset, key, "unknown topology key");
    }
    if (comma == rest.size()) break;
  }

  if (have_links && link_list.size() != topology.switches.size()) {
    HT_FATAL("topology spec '", text, "' lists ", link_list.size(),
             " switch links for ", topology.switches.size(),
             " switches");
  }
  for (size_t s = 0; s < topology.switches.size(); ++s) {
    if (have_links) {
      topology.switches[s].link_gbps = link_list[s];
    } else {
      // Default: a non-saturating uplink — the sum of the member
      // ports, so the switch never queues unless configured to.
      double sum = 0.0;
      for (const uint32_t member : topology.switches[s].members) {
        sum += topology.endpoints[member].bandwidth_gbps;
      }
      topology.switches[s].link_gbps = sum;
    }
  }
  Validate(topology, text);
  return topology;
}

std::string FormatTopologySpec(const Topology& topology) {
  Validate(topology, "<unformatted topology>");
  // Canonical tree: children in endpoint-id order, each switch emitted
  // once at its smallest member id's position, members in stored order.
  std::string tree = "(";
  bool first_child = true;
  for (size_t i = 0; i < topology.endpoints.size(); ++i) {
    const int32_t sw = topology.endpoints[i].switch_id;
    std::string child;
    if (sw < 0) {
      child = std::to_string(i + 1);
    } else {
      const TopologySwitch& s =
          topology.switches[static_cast<size_t>(sw)];
      const uint32_t smallest =
          *std::min_element(s.members.begin(), s.members.end());
      if (smallest != i) continue;  // Emitted at the smallest member.
      child = "(";
      for (size_t m = 0; m < s.members.size(); ++m) {
        if (m != 0) child += ",";
        child += std::to_string(s.members[m] + 1);
      }
      child += ")";
    }
    if (!first_child) tree += ",";
    tree += child;
    first_child = false;
  }
  tree += ")";

  std::string out = kPrefix + tree;
  out += ",lat=";
  for (size_t i = 0; i < topology.endpoints.size(); ++i) {
    if (i != 0) out += ":";
    out += std::to_string(topology.endpoints[i].idle_latency_ns);
  }
  out += ",bw=";
  for (size_t i = 0; i < topology.endpoints.size(); ++i) {
    if (i != 0) out += ":";
    out += FormatNumber(topology.endpoints[i].bandwidth_gbps);
  }
  if (!topology.switches.empty()) {
    out += ",link=";
    for (size_t s = 0; s < topology.switches.size(); ++s) {
      if (s != 0) out += ":";
      out += FormatNumber(topology.switches[s].link_gbps);
    }
  }
  out += ",gran=" + std::to_string(topology.interleave_units);
  return out;
}

}  // namespace hybridtier
