#ifndef HYBRIDTIER_MEM_TOPOLOGY_H_
#define HYBRIDTIER_MEM_TOPOLOGY_H_

/**
 * @file
 * CXL device topology: N slow-tier endpoints behind optional switches.
 *
 * The paper's emulation models one monolithic CXL device, but real
 * deployments hang several expanders off switches, each with its own
 * idle latency, bandwidth, and congestion state, with an HDM decoder
 * interleaving host physical addresses across them (CXLMemSim-style
 * topology strings). A `Topology` describes that device tree:
 *
 *   cxl:(1,(2,3,4)),lat=124:180:180:180,bw=34:17:17:17,link=40,gran=64
 *
 * Grammar: `cxl:(TREE)` followed by optional comma-separated
 * `key=value` pairs. The tree lists children of the host root port:
 * an integer is a direct-attached endpoint, a parenthesized integer
 * list is a switch whose members share one uplink. Endpoint ids must
 * be exactly 1..N (each once, any order); at most one switch level is
 * modeled — a switch may not contain another switch.
 *
 *   lat=a:b:...   per-endpoint idle latency in ns, in id order
 *                 (default 124 each — the paper's emulated CXL device)
 *   bw=a:b:...    per-endpoint bandwidth in GB/s, in id order
 *                 (default 34 each)
 *   link=a:b:...  per-switch uplink bandwidth in GB/s, in order of
 *                 appearance in the tree (default: the sum of the
 *                 member endpoints' bandwidth — a non-saturating link)
 *   gran=n        HDM interleave granularity in tracking units: unit u
 *                 lives on endpoint (u / n) % N (default 1)
 *
 * `cxl:(1)` with the default knobs is exactly today's single slow
 * device; the simulator's default (no topology configured) bypasses
 * this module entirely and is gated bit-identical by the determinism
 * suite.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "mem/page.h"

namespace hybridtier {

/** One CXL endpoint (memory expander) hanging off the device tree. */
struct TopologyEndpoint {
  TimeNs idle_latency_ns = 124;  //!< Unloaded access latency.
  double bandwidth_gbps = 34.0;  //!< Device-port bandwidth.
  /** Switch this endpoint sits behind, or kDirectAttached. */
  int32_t switch_id = -1;

  bool operator==(const TopologyEndpoint& other) const = default;
};

/** A switch whose member endpoints share one uplink to the host. */
struct TopologySwitch {
  double link_gbps = 0.0;         //!< Shared uplink bandwidth.
  std::vector<uint32_t> members;  //!< Endpoint indices (0-based).

  bool operator==(const TopologySwitch& other) const = default;
};

/** The slow-tier device tree plus the HDM interleave granularity. */
struct Topology {
  std::vector<TopologyEndpoint> endpoints;
  std::vector<TopologySwitch> switches;
  /** Tracking units mapped to one endpoint before moving to the next. */
  uint64_t interleave_units = 1;

  bool operator==(const Topology& other) const = default;

  /** Number of endpoints (>= 1 for any valid topology). */
  uint32_t endpoint_count() const {
    return static_cast<uint32_t>(endpoints.size());
  }

  /** HDM decode: the home endpoint of tracking unit `unit`. */
  uint32_t EndpointOf(PageId unit) const {
    if (endpoints.size() <= 1) return 0;
    return static_cast<uint32_t>((unit / interleave_units) %
                                 endpoints.size());
  }
};

/** Endpoint id cap: HDM decoders interleave across small device sets. */
inline constexpr uint32_t kMaxTopologyEndpoints = 64;

/** Today's device: one endpoint, paper-default latency and bandwidth. */
Topology DefaultTopology();

/** True iff `text` is a topology spec (starts with "cxl:"). */
bool IsTopologySpec(const std::string& text);

/** Parses a topology spec string; fatal on malformed input. */
Topology ParseTopologySpec(const std::string& text);

/**
 * Formats `topology` back into the grammar above with every knob
 * explicit (lat/bw lists, per-switch links, granularity); switch
 * members are listed in member order and each switch appears at its
 * smallest member id's position in the id-ordered child list.
 * `ParseTopologySpec(FormatTopologySpec(t)) == t` for any valid
 * topology.
 */
std::string FormatTopologySpec(const Topology& topology);

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_TOPOLOGY_H_
