#ifndef HYBRIDTIER_MEM_TIERED_MEMORY_H_
#define HYBRIDTIER_MEM_TIERED_MEMORY_H_

/**
 * @file
 * The tiered physical memory substrate.
 *
 * Tracks, for every page of the simulated application address space,
 * whether it is resident, which tier it lives in, and whether it is
 * "protected" (unmapped for NUMA-hint-fault sampling, as AutoNUMA and TPP
 * do). Pages here are *tracking units*: 4 KiB in regular mode, 2 MiB in
 * huge-page mode — the granularity at which placement and migration
 * happen.
 *
 * Placement policy on first touch follows Linux: allocate in the fast
 * tier while it has free capacity, then overflow to the slow tier.
 * ARC/TwoQ baselines instead allocate new pages directly in the slow tier
 * (paper §5.2), selectable via AllocationPolicy.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "mem/page.h"
#include "mem/tier.h"

namespace hybridtier {

/** Where newly touched pages are allocated. */
enum class AllocationPolicy : uint8_t {
  kFastFirst = 0,  //!< Linux default: fast tier until full, then slow.
  kSlowOnly = 1,   //!< Always slow tier (ARC/TwoQ baselines).
};

/** Outcome of touching (accessing) a page. */
struct TouchResult {
  Tier tier = Tier::kSlow;     //!< Tier that served the access.
  /** Slow-tier endpoint that served (or would serve) the access — the
   *  page's static HDM-decoded home device. 0 when tier == kFast or
   *  with a single-endpoint layout. */
  uint32_t endpoint = 0;
  bool first_touch = false;    //!< Page was allocated by this access.
  bool hint_fault = false;     //!< Access hit a protected page (NUMA hint).
  TimeNs fault_latency_ns = 0; //!< now - protect time, when hint_fault.
};

/** Placement, residency, and protection state for a tiered address space. */
class TieredMemory {
 public:
  /**
   * @param total_pages       tracking units in the application footprint.
   * @param fast_capacity     fast-tier capacity in tracking units.
   * @param slow_capacity     slow-tier capacity in tracking units.
   * @param allocation_policy first-touch placement rule.
   */
  /**
   * @param endpoint_count    slow-tier CXL endpoints (HDM interleave
   *                          targets); 1 = the historical single device.
   * @param interleave_units  tracking units per interleave stripe.
   */
  TieredMemory(uint64_t total_pages, uint64_t fast_capacity,
               uint64_t slow_capacity,
               AllocationPolicy allocation_policy =
                   AllocationPolicy::kFastFirst,
               uint32_t endpoint_count = 1,
               uint64_t interleave_units = 1);

  /**
   * Records a demand access to `page` at time `now`. Allocates the page
   * on first touch and clears + reports protection faults.
   *
   * The steady-state case — resident, unprotected — is a single flag
   * load inlined into the caller's loop; allocation and hint-fault
   * handling live out of line.
   */
  TouchResult Touch(PageId page, TimeNs now) {
    HT_ASSERT(page < flags_.size(), "page ", page,
              " outside address space");
    const uint8_t f = flags_[page];
    if ((f & (kResident | kProtected)) == kResident) [[likely]] {
      TouchResult result;
      if (f & kTierSlow) {
        result.tier = Tier::kSlow;
        result.endpoint = EndpointOf(page);
      } else {
        result.tier = Tier::kFast;
      }
      return result;
    }
    return TouchSlowPath(page, now);
  }

  /**
   * HDM decode: the slow-tier endpoint backing `page`. A page's home
   * endpoint is static — interleaving is by address, as a hardware HDM
   * decoder does — so it is the device a slow-resident page is served
   * from and the device a demotion would copy into.
   */
  uint32_t EndpointOf(PageId page) const {
    if (endpoint_count_ == 1) return 0;
    return static_cast<uint32_t>((page / interleave_units_) %
                                 endpoint_count_);
  }

  /** Number of slow-tier endpoints in the layout. */
  uint32_t endpoint_count() const { return endpoint_count_; }

  /** Tracking units resident on slow endpoint `endpoint` right now. */
  uint64_t EndpointResident(uint32_t endpoint) const {
    HT_ASSERT(endpoint < endpoint_count_, "endpoint ", endpoint,
              " outside the layout");
    return endpoint_resident_[endpoint];
  }

  /**
   * Fast-resident tracking units whose HDM home is `endpoint` — pages a
   * demotion would copy back onto that device. When an endpoint dies,
   * these units can no longer be demoted, so the fault-aware fair-share
   * water-filler subtracts them from the fast capacity it divides
   * (fault/fault_runtime.h, multitenant/fair_share_policy.h).
   */
  uint64_t EndpointHomedFastResident(uint32_t endpoint) const {
    HT_ASSERT(endpoint < endpoint_count_, "endpoint ", endpoint,
              " outside the layout");
    return endpoint_fast_resident_[endpoint];
  }

  /** Tracking units per HDM interleave stripe. */
  uint64_t interleave_units() const { return interleave_units_; }


  /** Tier of a resident page (asserts residency). */
  Tier TierOf(PageId page) const;

  /** True if the page has been touched at least once. */
  bool IsResident(PageId page) const;

  /** True if the page is currently protected (hint-fault armed). */
  bool IsProtected(PageId page) const;

  /**
   * Arms hint faults on all resident pages in [range.begin, range.end):
   * the AutoNUMA "unmap 256MB of pages" scan step. Returns the number of
   * pages protected.
   */
  uint64_t Protect(PageRange range, TimeNs now);

  /**
   * Moves a resident page to `dst`. Returns false (and does nothing) if
   * the page is already there or `dst` is full.
   */
  bool Migrate(PageId page, Tier dst);

  /**
   * Frees every resident page in [range.begin, range.end) — the reclaim
   * a process exit performs: residency, tier, and protection state are
   * cleared and the capacity returns to the free pools. A later touch
   * re-allocates per the first-touch policy. Returns pages released.
   */
  uint64_t Release(PageRange range);

  /** Pages currently resident in `tier`. */
  uint64_t UsedPages(Tier tier) const {
    return used_[static_cast<size_t>(tier)];
  }

  /** Capacity of `tier` in tracking units. */
  uint64_t Capacity(Tier tier) const {
    return capacity_[static_cast<size_t>(tier)];
  }

  /** Free tracking units in `tier`. */
  uint64_t FreePages(Tier tier) const {
    return Capacity(tier) - UsedPages(tier);
  }

  /** Total tracking units in the address space. */
  uint64_t total_pages() const { return flags_.size(); }

  /**
   * Linear address-space scan (the /proc/PID/pagemap walk used for
   * demotion candidate discovery): invokes `fn(page)` for every resident
   * page in `tier` within [start, start+count), returns pages visited.
   * Templated on the callback so the per-unit call inlines instead of
   * going through a std::function thunk.
   */
  template <typename Fn>
  uint64_t ScanResident(PageId start, uint64_t count, Tier tier,
                        Fn&& fn) const {
    const PageId end = std::min<PageId>(start + count, flags_.size());
    uint64_t visited = 0;
    const uint8_t tier_flag =
        tier == Tier::kSlow ? kTierSlow : static_cast<uint8_t>(0);
    for (PageId page = start; page < end; ++page) {
      ++visited;
      const uint8_t f = flags_[page];
      if ((f & kResident) && (f & kTierSlow) == tier_flag) fn(page);
    }
    return visited;
  }

  /**
   * Registers disjoint accounting regions (one per tenant) and seeds
   * their per-tier resident counters from the current page state. From
   * then on Touch/Migrate/Release maintain the counters incrementally,
   * so `RegionResident` reads are O(1) instead of an O(region) rescan —
   * the difference between an O(tenants) and an O(footprint) stats
   * interval. Pages outside every region stay unaccounted. Calling
   * again replaces the layout.
   */
  void DefineRegions(const std::vector<PageRange>& regions);

  /** True once DefineRegions has installed an accounting layout. */
  bool has_regions() const { return !region_resident_[0].empty(); }

  /** Resident pages of `region` in `tier` (needs DefineRegions). */
  uint64_t RegionResident(uint32_t region, Tier tier) const;

  /** First-touch allocation policy in use. */
  AllocationPolicy allocation_policy() const { return allocation_policy_; }

 private:
  static constexpr uint32_t kNoRegion = UINT32_MAX;

  /** First-touch allocation and hint-fault clearing (cold path). */
  TouchResult TouchSlowPath(PageId page, TimeNs now);

  /** Adjusts `page`'s region counter in `tier` by +/-1. */
  void AccountRegion(PageId page, Tier tier, int64_t delta) {
    if (region_of_.empty()) return;
    const uint32_t region = region_of_[page];
    if (region == kNoRegion) return;
    region_resident_[static_cast<size_t>(tier)][region] +=
        static_cast<uint64_t>(delta);
  }

  // Per-page state flags.
  static constexpr uint8_t kResident = 1u << 0;
  static constexpr uint8_t kTierSlow = 1u << 1;  // Set => slow tier.
  static constexpr uint8_t kProtected = 1u << 2;

  /** Adjusts the per-endpoint slow-residency counter for `page`. */
  void AccountEndpoint(PageId page, int64_t delta) {
    endpoint_resident_[EndpointOf(page)] +=
        static_cast<uint64_t>(delta);
  }

  /** Adjusts the fast-resident-by-home-endpoint counter for `page`. */
  void AccountEndpointFast(PageId page, int64_t delta) {
    endpoint_fast_resident_[EndpointOf(page)] +=
        static_cast<uint64_t>(delta);
  }

  std::vector<uint8_t> flags_;
  std::vector<TimeNs> protect_time_;  //!< Valid while kProtected is set.
  uint64_t capacity_[kNumTiers];
  uint64_t used_[kNumTiers] = {0, 0};
  AllocationPolicy allocation_policy_;
  uint32_t endpoint_count_ = 1;
  uint64_t interleave_units_ = 1;
  std::vector<uint64_t> endpoint_resident_;  //!< Slow units per endpoint.
  /** Fast-resident units by HDM home endpoint. */
  std::vector<uint64_t> endpoint_fast_resident_;

  // Per-region residency accounting (empty until DefineRegions).
  std::vector<uint32_t> region_of_;  //!< Region id per page, or kNoRegion.
  std::vector<uint64_t> region_resident_[kNumTiers];

  // The watchdog test peer injects accounting corruption to prove the
  // invariant checks catch it; nothing else may touch private state.
  friend class TieredMemoryTestPeer;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_TIERED_MEMORY_H_
