#include "mem/migration.h"

#include "common/logging.h"

namespace hybridtier {

MigrationEngine::MigrationEngine(TieredMemory* memory, PerfModel* perf_model,
                                 PageMode mode)
    : memory_(memory), perf_model_(perf_model), mode_(mode) {
  HT_ASSERT(memory != nullptr && perf_model != nullptr,
            "migration engine needs memory and perf model");
}

TimeNs MigrationEngine::ExecuteBatch(std::span<const PageId> pages, Tier dst,
                                     TimeNs now, MigrationReason reason) {
  if (pages.empty()) return 0;
  // With several endpoints, each moved page's copy leg runs on its
  // static home device (HDM decode), so the batch is costed per
  // endpoint; the single-endpoint path stays on the legacy call.
  const bool split = memory_->endpoint_count() > 1;
  if (split) {
    endpoint_pages_.assign(memory_->endpoint_count(), 0);
  }
  uint64_t moved = 0;
  for (const PageId page : pages) {
    if (any_down_ && dst == Tier::kSlow) [[unlikely]] {
      // Can't demote onto a dead device: the page's HDM home is fixed.
      const uint32_t home = memory_->EndpointOf(page);
      if (home < endpoint_down_.size() && endpoint_down_[home]) {
        ++stats_.failed_demotions;
        continue;
      }
    }
    const bool ok = memory_->IsResident(page) && memory_->Migrate(page, dst);
    if (ok) {
      ++moved;
      if (split) ++endpoint_pages_[memory_->EndpointOf(page)];
      if (audit_ != nullptr) [[unlikely]] {
        if (dst == Tier::kFast) {
          audit_->OnPromoted(page, now);
        } else {
          audit_->OnDemoted(page, now);
        }
      }
    } else if (dst == Tier::kFast) {
      ++stats_.failed_promotions;
    } else {
      ++stats_.failed_demotions;
    }
  }

  if (dst == Tier::kFast) {
    stats_.promoted_pages += moved;
    ++stats_.promotion_batches;
  } else {
    stats_.demoted_pages += moved;
    ++stats_.demotion_batches;
  }

  const TimeNs cost =
      split ? perf_model_->MigrationCostSplit(endpoint_pages_,
                                              PageBytes(mode_), now)
            : perf_model_->MigrationCost(moved, PageBytes(mode_), now);
  stats_.migration_time_ns += cost;
  if (audit_ != nullptr) [[unlikely]] {
    audit_->RecordBatch(dst == Tier::kFast, reason, now,
                        static_cast<uint32_t>(moved),
                        static_cast<uint32_t>(pages.size()));
  }
  if (trace_ != nullptr) [[unlikely]] {
    trace_->Span(trace_track_,
                 dst == Tier::kFast ? "promote_batch" : "demote_batch",
                 now, now + cost,
                 {{"pages", static_cast<double>(moved)},
                  {"requested", static_cast<double>(pages.size())},
                  {"reason", static_cast<double>(reason)}});
  }
  return cost;
}

TimeNs MigrationEngine::Promote(std::span<const PageId> pages, TimeNs now,
                                MigrationReason reason) {
  return ExecuteBatch(pages, Tier::kFast, now, reason);
}

TimeNs MigrationEngine::Demote(std::span<const PageId> pages, TimeNs now,
                               MigrationReason reason) {
  return ExecuteBatch(pages, Tier::kSlow, now, reason);
}

}  // namespace hybridtier
