#ifndef HYBRIDTIER_MEM_MIGRATION_H_
#define HYBRIDTIER_MEM_MIGRATION_H_

/**
 * @file
 * Batched page-migration engine.
 *
 * All tiering policies execute their promotion/demotion decisions through
 * this engine so that every policy pays identical migration prices: a
 * per-batch syscall overhead plus per-page kernel work, with the copy
 * traffic occupying both tiers' memory channels (see PerfModel). This
 * mirrors HybridTier's use of batched move_pages-style syscalls
 * (paper §4.3: 100,000 samples per promotion batch, one syscall).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "mem/page.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "obs/audit.h"
#include "obs/trace.h"

namespace hybridtier {

/** Cumulative migration counters. */
struct MigrationStats {
  uint64_t promoted_pages = 0;    //!< Pages moved slow -> fast.
  uint64_t demoted_pages = 0;     //!< Pages moved fast -> slow.
  uint64_t promotion_batches = 0; //!< Promotion syscalls issued.
  uint64_t demotion_batches = 0;  //!< Demotion syscalls issued.
  uint64_t failed_promotions = 0; //!< Skipped: fast tier full / not slow.
  uint64_t failed_demotions = 0;  //!< Skipped: slow tier full / not fast.
  TimeNs migration_time_ns = 0;   //!< Total modeled migration time.
};

/** Executes batched migrations against the tiered memory + timing model. */
class MigrationEngine {
 public:
  /**
   * @param memory     placement substrate (not owned).
   * @param perf_model timing model charged for copies (not owned).
   * @param mode       tracking-unit granularity (4 KiB or 2 MiB).
   */
  MigrationEngine(TieredMemory* memory, PerfModel* perf_model,
                  PageMode mode = PageMode::kRegular);

  virtual ~MigrationEngine() = default;

  /**
   * Promotes `pages` (slow -> fast) as one batch at time `now`,
   * stamped with the policy's `reason` code. Pages that are not in the
   * slow tier or do not fit are skipped and counted as failed. Returns
   * the modeled batch duration.
   *
   * Virtual so decorators (e.g. the multi-tenant fair-share gate) can
   * filter or veto a policy's decisions before they execute; decorators
   * must forward the reason so the audit sees the originating cause.
   */
  virtual TimeNs Promote(std::span<const PageId> pages, TimeNs now,
                         MigrationReason reason);

  /** Demotes `pages` (fast -> slow) as one batch at time `now`. */
  virtual TimeNs Demote(std::span<const PageId> pages, TimeNs now,
                        MigrationReason reason);

  /** Legacy unstamped call sites record kUnspecified. */
  TimeNs Promote(std::span<const PageId> pages, TimeNs now) {
    return Promote(pages, now, MigrationReason::kUnspecified);
  }
  TimeNs Demote(std::span<const PageId> pages, TimeNs now) {
    return Demote(pages, now, MigrationReason::kUnspecified);
  }

  /** Cumulative statistics. */
  const MigrationStats& stats() const { return stats_; }

  /** Tracking-unit granularity. */
  PageMode mode() const { return mode_; }

  /** Placement substrate this engine operates on (not owned). */
  TieredMemory* memory() const { return memory_; }

  /** Timing model charged for copies (not owned). */
  PerfModel* perf_model() const { return perf_model_; }

  /**
   * Attaches a trace sink: every executed batch emits a span on
   * `track` covering its modeled duration. Hooked on the *real* engine
   * (the one the simulation owns), so batches filtered through a
   * decorator such as the fair-share quota gate are still traced when
   * they reach execution.
   */
  void SetTrace(TraceEmitter* trace, TraceEmitter::TrackId track) {
    trace_ = trace;
    trace_track_ = track;
  }

  /**
   * Attaches the decision audit. Like SetTrace, hooked on the *real*
   * engine so every executed batch is recorded regardless of which
   * decorator routed it here.
   */
  void SetAudit(DecisionAudit* audit) { audit_ = audit; }

  /**
   * The attached audit, if any. Virtual so decorators can forward to
   * the engine they wrap — policies reach the audit uniformly via
   * `migration().audit()` whether or not a gate sits in between.
   */
  virtual DecisionAudit* audit() const { return audit_; }

  /**
   * Marks `endpoint` down/up for demotion filtering (fault injection).
   * A demotion of a page whose HDM home is a down endpoint is skipped
   * and counted as failed: the kernel cannot copy into a device that no
   * longer answers. Promotions off the endpoint still work — evacuation
   * reads the dying device. Hooked on the *real* engine, like the trace
   * and audit sinks.
   */
  void SetEndpointDown(uint32_t endpoint, bool down) {
    if (endpoint >= endpoint_down_.size()) {
      endpoint_down_.resize(endpoint + 1, false);
    }
    endpoint_down_[endpoint] = down;
    any_down_ = false;
    for (const bool d : endpoint_down_) any_down_ = any_down_ || d;
  }

 private:
  TimeNs ExecuteBatch(std::span<const PageId> pages, Tier dst, TimeNs now,
                      MigrationReason reason);

  TieredMemory* memory_;
  PerfModel* perf_model_;
  PageMode mode_;
  MigrationStats stats_;
  std::vector<uint64_t> endpoint_pages_;  //!< Per-endpoint batch scratch.
  std::vector<bool> endpoint_down_;       //!< Demotion-blocked endpoints.
  bool any_down_ = false;                 //!< Fast skip when healthy.
  TraceEmitter* trace_ = nullptr;
  TraceEmitter::TrackId trace_track_ = 0;
  DecisionAudit* audit_ = nullptr;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_MIGRATION_H_
