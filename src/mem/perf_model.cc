#include "mem/perf_model.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

PerfModel::PerfModel(const PerfModelConfig& config, const TierConfig& fast,
                     const TierConfig& slow)
    : PerfModel(config, fast, slow, [&slow] {
        // The historical two-tier model: one endpoint with the slow
        // tier's latency and bandwidth, no switch.
        Topology topology;
        TopologyEndpoint endpoint;
        endpoint.idle_latency_ns = slow.idle_latency_ns;
        endpoint.bandwidth_gbps = slow.bandwidth_gbps;
        topology.endpoints.push_back(endpoint);
        return topology;
      }()) {}

PerfModel::PerfModel(const PerfModelConfig& config, const TierConfig& fast,
                     const TierConfig& slow, const Topology& topology)
    : config_(config), topology_(topology) {
  (void)slow;  // Slow-tier capacity lives in TieredMemory.
  HT_ASSERT(fast.bandwidth_gbps > 0, "tier bandwidth must be positive");
  HT_ASSERT(config.threads >= 1, "threads must be >= 1");
  HT_ASSERT(!topology.endpoints.empty(), "topology needs endpoints");
  // A demand line fill occupies the channel for one line per
  // thread-share: 16 threads issuing concurrently are folded into one
  // modeled stream, so each modeled access stands for `threads` line
  // transfers of pressure. All operands are run constants, so each
  // channel's occupancy is computed once here instead of per access.
  access_bytes_ = kCacheLineSize * config.threads;
  max_queue_delay_ns_ = static_cast<TimeNs>(config.max_queue_delay_ns);
  bounded_queue_ = config.bounded_queue;

  fast_idle_latency_ns_ = fast.idle_latency_ns;
  fast_bandwidth_gbps_ = fast.bandwidth_gbps;
  fast_.access_service = TransferTime(fast.bandwidth_gbps, access_bytes_);

  endpoints_.reserve(topology.endpoints.size());
  for (const TopologyEndpoint& spec : topology.endpoints) {
    HT_ASSERT(spec.bandwidth_gbps > 0,
              "endpoint bandwidth must be positive");
    Endpoint endpoint;
    endpoint.idle_latency_ns = spec.idle_latency_ns;
    endpoint.bandwidth_gbps = spec.bandwidth_gbps;
    endpoint.link = spec.switch_id;
    endpoint.access_service =
        TransferTime(spec.bandwidth_gbps, access_bytes_);
    endpoint.base_idle_latency_ns = endpoint.idle_latency_ns;
    endpoint.base_bandwidth_gbps = endpoint.bandwidth_gbps;
    endpoints_.push_back(endpoint);
  }
  links_.reserve(topology.switches.size());
  for (const TopologySwitch& spec : topology.switches) {
    HT_ASSERT(spec.link_gbps > 0, "switch link must be positive");
    Channel link;
    link.access_service = TransferTime(spec.link_gbps, access_bytes_);
    links_.push_back(link);
  }
}

void PerfModel::SetEndpointDegrade(uint32_t endpoint, double factor) {
  HT_ASSERT(factor >= 1.0, "degrade factor must be >= 1");
  Endpoint& e = endpoints_[endpoint];
  // Always derived from the healthy baseline so successive factors
  // replace each other instead of compounding.
  e.idle_latency_ns =
      static_cast<TimeNs>(static_cast<double>(e.base_idle_latency_ns) *
                          factor);
  e.bandwidth_gbps = e.base_bandwidth_gbps / factor;
  e.access_service = TransferTime(e.bandwidth_gbps, access_bytes_);
}

TimeNs PerfModel::TransferTime(double gbps, uint64_t bytes) {
  // bytes / (GB/s) = bytes / (bytes/ns * 1e0): 1 GB/s == 1 byte/ns.
  const double ns = static_cast<double>(bytes) / gbps;
  return std::max<TimeNs>(static_cast<TimeNs>(ns), 1);
}

TimeNs PerfModel::OccupyChannel(Tier tier, uint64_t bytes, TimeNs now) {
  if (tier == Tier::kSlow) return OccupyEndpoint(0, bytes, now);
  const TimeNs duration = TransferTime(fast_bandwidth_gbps_, bytes);
  Advance(&fast_.busy_until, duration, now);
  fast_.bytes += bytes;
  return duration;
}

TimeNs PerfModel::OccupyEndpoint(uint32_t endpoint, uint64_t bytes,
                                 TimeNs now) {
  Endpoint& e = endpoints_[endpoint];
  const TimeNs duration = TransferTime(e.bandwidth_gbps, bytes);
  Advance(&e.busy_until, duration, now);
  e.bytes += bytes;
  if (e.link >= 0) {
    Channel& link = links_[static_cast<size_t>(e.link)];
    // The uplink carries the same bytes at its own rate.
    Advance(&link.busy_until,
            TransferTime(topology_.switches[static_cast<size_t>(e.link)]
                             .link_gbps,
                         bytes),
            now);
    link.bytes += bytes;
  }
  return duration;
}

TimeNs PerfModel::MigrationCost(uint64_t num_pages, uint64_t page_bytes,
                                TimeNs now) {
  if (num_pages == 0) return 0;
  const uint64_t bytes = num_pages * page_bytes;
  // The copy reads one tier and writes the other; both channels are busy.
  const TimeNs copy_fast = OccupyChannel(Tier::kFast, bytes, now);
  const TimeNs copy_slow = OccupyEndpoint(0, bytes, now);
  const TimeNs kernel_cost =
      config_.migration_syscall_ns +
      num_pages * config_.migration_page_ns * (page_bytes / kPageSize);
  return kernel_cost + std::max(copy_fast, copy_slow);
}

TimeNs PerfModel::MigrationCostSplit(
    std::span<const uint64_t> pages_per_endpoint, uint64_t page_bytes,
    TimeNs now) {
  HT_ASSERT(pages_per_endpoint.size() == endpoints_.size(),
            "per-endpoint page counts must cover every endpoint");
  uint64_t num_pages = 0;
  for (const uint64_t count : pages_per_endpoint) num_pages += count;
  if (num_pages == 0) return 0;
  // The fast channel carries the whole batch; each endpoint port (and
  // its uplink) carries only its own pages. The copy phase ends when
  // the slowest leg finishes — the batch syscall returns once every
  // page has moved.
  const TimeNs copy_fast =
      OccupyChannel(Tier::kFast, num_pages * page_bytes, now);
  TimeNs copy_slow = 0;
  for (uint32_t e = 0; e < pages_per_endpoint.size(); ++e) {
    if (pages_per_endpoint[e] == 0) continue;
    copy_slow = std::max(
        copy_slow,
        OccupyEndpoint(e, pages_per_endpoint[e] * page_bytes, now));
  }
  const TimeNs kernel_cost =
      config_.migration_syscall_ns +
      num_pages * config_.migration_page_ns * (page_bytes / kPageSize);
  return kernel_cost + std::max(copy_fast, copy_slow);
}

}  // namespace hybridtier
