#include "mem/perf_model.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

PerfModel::PerfModel(const PerfModelConfig& config, const TierConfig& fast,
                     const TierConfig& slow)
    : config_(config), tiers_{fast, slow} {
  HT_ASSERT(fast.bandwidth_gbps > 0 && slow.bandwidth_gbps > 0,
            "tier bandwidth must be positive");
  HT_ASSERT(config.threads >= 1, "threads must be >= 1");
  // A demand line fill occupies the channel for one line per
  // thread-share: 16 threads issuing concurrently are folded into one
  // modeled stream, so each modeled access stands for `threads` line
  // transfers of pressure. Both operands are run constants, so the
  // occupancy is computed once here instead of per access.
  access_bytes_ = kCacheLineSize * config.threads;
  access_service_[static_cast<size_t>(Tier::kFast)] =
      TransferTime(Tier::kFast, access_bytes_);
  access_service_[static_cast<size_t>(Tier::kSlow)] =
      TransferTime(Tier::kSlow, access_bytes_);
  max_queue_delay_ns_ = static_cast<TimeNs>(config.max_queue_delay_ns);
}

TimeNs PerfModel::TransferTime(Tier tier, uint64_t bytes) const {
  const double gbps = tiers_[static_cast<size_t>(tier)].bandwidth_gbps;
  // bytes / (GB/s) = bytes / (bytes/ns * 1e0): 1 GB/s == 1 byte/ns.
  const double ns = static_cast<double>(bytes) / gbps;
  return std::max<TimeNs>(static_cast<TimeNs>(ns), 1);
}

TimeNs PerfModel::OccupyChannel(Tier tier, uint64_t bytes, TimeNs now) {
  const size_t t = static_cast<size_t>(tier);
  const TimeNs duration = TransferTime(tier, bytes);
  busy_until_[t] = std::max(busy_until_[t], now) + duration;
  bytes_transferred_[t] += bytes;
  return duration;
}

TimeNs PerfModel::MigrationCost(uint64_t num_pages, uint64_t page_bytes,
                                TimeNs now) {
  if (num_pages == 0) return 0;
  const uint64_t bytes = num_pages * page_bytes;
  // The copy reads one tier and writes the other; both channels are busy.
  const TimeNs copy_fast = OccupyChannel(Tier::kFast, bytes, now);
  const TimeNs copy_slow = OccupyChannel(Tier::kSlow, bytes, now);
  const TimeNs kernel_cost =
      config_.migration_syscall_ns +
      num_pages * config_.migration_page_ns * (page_bytes / kPageSize);
  return kernel_cost + std::max(copy_fast, copy_slow);
}

}  // namespace hybridtier
