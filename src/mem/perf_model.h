#ifndef HYBRIDTIER_MEM_PERF_MODEL_H_
#define HYBRIDTIER_MEM_PERF_MODEL_H_

/**
 * @file
 * Memory-system timing model.
 *
 * The fast tier is a single channel server; the slow tier is a set of
 * CXL endpoints, each its own channel server, optionally behind
 * switches whose uplinks are shared channels (see mem/topology.h). An
 * access or migration transfer occupies its channel(s) for
 * `bytes / bandwidth` of virtual time, and an access arriving while a
 * channel is busy queues behind it. This reproduces the first-order
 * effects the paper's results depend on:
 *  - slow-tier accesses cost ~50-100 ns more than fast-tier accesses,
 *  - migrations consume bandwidth that delays demand accesses, and
 *  - with several endpoints, congestion is per-device: traffic to one
 *    expander does not delay accesses served by another unless they
 *    share a saturated switch uplink.
 *
 * The configured `threads` factor inflates per-access channel occupancy
 * to approximate the paper's 16 application threads sharing the channel
 * while the simulator models a single serialized access stream.
 *
 * The legacy three-argument constructor builds a single-endpoint
 * topology from the slow `TierConfig`; every arithmetic step on that
 * path is identical to the historical two-tier model, which the golden
 * determinism tests gate bit-exactly.
 *
 * **Decomposition contract** (relied on by `obs/attribution.h` and the
 * per-endpoint queue-delay histograms): every demand-access latency
 * this model returns is exactly `idle latency + queue delay`, both
 * integer ns, so observers recover the queue component with the
 * subtraction `latency - IdleLatency(tier)` (fast) or
 * `latency - EndpointIdleLatency(endpoint)` (slow) with no remainder.
 * Any new latency term added here must either fold into one of those
 * two parts or get its own `LatencyComponent`, or the accounting
 * identity test (`Σ components == Σ op latency`, EXPECT_EQ) fails.
 */

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "mem/tier.h"
#include "mem/topology.h"

namespace hybridtier {

/** Tunable latency constants for the timing model. */
struct PerfModelConfig {
  TimeNs l1_latency_ns = 1;            //!< L1 hit service time.
  TimeNs llc_latency_ns = 12;          //!< LLC hit service time.
  TimeNs hint_fault_ns = 1500;         //!< Minor/hint page fault cost.
  TimeNs migration_page_ns = 1200;     //!< Per-4KiB-page migration CPU cost.
  TimeNs migration_syscall_ns = 4000;  //!< Per-move_pages-batch overhead.
  /** Application-visible stall per migration batch: unmapping pages for
   *  migration sends TLB-shootdown IPIs to every core running the
   *  process, so each move_pages call stalls the app briefly. This is
   *  what makes per-page migrators (ARC/TwoQ, fault-time promotion) pay
   *  for their lenient policies while batched systems amortize it. */
  TimeNs tlb_batch_stall_ns = 2000;
  /** Additional app-visible stall per migrated page (shootdown + minor
   *  fault on next touch). */
  TimeNs tlb_page_stall_ns = 150;
  uint32_t threads = 16;               //!< Modeled application threads.
  double max_queue_delay_ns = 2000.0;  //!< Cap on queueing delay per access.
  /**
   * Clamp channel backlog (`busy_until`) at `max_queue_delay_ns` too,
   * not just the reported delay. Historically the cap truncated only
   * what an access *pays* while the channel's busy horizon kept growing
   * unboundedly under saturation — so a channel could owe minutes of
   * backlog that no access would ever observe beyond the cap, and the
   * backlog never drained. With the knob on, backlog beyond the cap is
   * shed (a bounded queue: the excess models requests the real fabric
   * would have back-pressured at issue). Default off: the unclamped
   * accounting is pinned bit-exactly by the golden determinism suite,
   * so the fix is opt-in until the goldens are re-baselined.
   */
  bool bounded_queue = false;
  /**
   * Latency charged to a demand access aimed at a **down** endpoint
   * (fault injection, see fault/fault_runtime.h): the time for the
   * fabric to report the poisoned read and the kernel to field it. A
   * run constant (no queueing term) so the attribution identity stays
   * exact — the whole stall lands on `LatencyComponent::kFaultStall`.
   */
  TimeNs fault_stall_ns = 2500;
};

/** Channel-occupancy timing model over the fast tier + CXL endpoints. */
class PerfModel {
 public:
  /** Single-endpoint model from the slow tier's latency/bandwidth —
   *  bit-identical to the historical two-tier model. */
  PerfModel(const PerfModelConfig& config, const TierConfig& fast,
            const TierConfig& slow);

  /** Multi-endpoint model: the slow tier is `topology`'s device tree
   *  (the slow TierConfig contributes only capacity accounting). */
  PerfModel(const PerfModelConfig& config, const TierConfig& fast,
            const TierConfig& slow, const Topology& topology);

  /** Legacy entry point: slow-tier accesses hit endpoint 0. */
  TimeNs MemoryAccess(Tier tier, TimeNs now) {
    return MemoryAccess(tier, 0, now);
  }

  /**
   * Returns the latency of a demand access of one cache line served by
   * `tier` (endpoint `endpoint` when slow) at virtual time `now`,
   * including any queueing delay, and occupies the channel(s)
   * accordingly. An access through a switch occupies both the endpoint
   * port and the shared uplink, and queues behind whichever is more
   * backlogged.
   *
   * Inlined with the per-access channel occupancy precomputed at
   * construction (its operands — line size, thread factor, channel
   * bandwidth — are run constants), so the hot loop pays no floating
   * division.
   */
  TimeNs MemoryAccess(Tier tier, uint32_t endpoint, TimeNs now) {
    if (tier == Tier::kFast) {
      TimeNs queue_delay = 0;
      if (fast_.busy_until > now) {
        queue_delay = std::min<TimeNs>(fast_.busy_until - now,
                                       max_queue_delay_ns_);
      }
      Advance(&fast_.busy_until, fast_.access_service, now);
      fast_.bytes += access_bytes_;
      ++fast_.accesses;
      return fast_idle_latency_ns_ + queue_delay;
    }
    Endpoint& e = endpoints_[endpoint];
    if (e.down) [[unlikely]] {
      // The device is gone: the access faults instead of being served.
      // No channel occupancy, no queueing — a constant so attribution
      // can charge the whole latency to kFaultStall exactly. Dead
      // branch without fault injection, so healthy runs are untouched.
      ++e.stalled_accesses;
      return config_.fault_stall_ns;
    }
    TimeNs backlog = e.busy_until > now ? e.busy_until - now : 0;
    if (e.link >= 0) [[unlikely]] {
      Channel& link = links_[static_cast<size_t>(e.link)];
      if (link.busy_until > now) {
        backlog = std::max(backlog, link.busy_until - now);
      }
      Advance(&link.busy_until, link.access_service, now);
    }
    const TimeNs queue_delay =
        std::min<TimeNs>(backlog, max_queue_delay_ns_);
    Advance(&e.busy_until, e.access_service, now);
    e.bytes += access_bytes_;
    ++e.accesses;
    return e.idle_latency_ns + queue_delay;
  }

  /**
   * Accounts a bulk transfer of `bytes` on `tier`'s channel starting at
   * `now` (used for page migrations: the source is read and the
   * destination written). Slow-tier transfers hit endpoint 0; see
   * OccupyEndpoint for explicit endpoint routing. Returns the transfer
   * duration.
   */
  TimeNs OccupyChannel(Tier tier, uint64_t bytes, TimeNs now);

  /** Bulk transfer on one slow endpoint's port (and its switch link). */
  TimeNs OccupyEndpoint(uint32_t endpoint, uint64_t bytes, TimeNs now);

  /**
   * Full cost of migrating `num_pages` pages of `page_bytes` each in one
   * batch at time `now`: syscall overhead + per-page kernel cost, with
   * the fast channel and slow endpoint 0 occupied by the copy traffic.
   */
  TimeNs MigrationCost(uint64_t num_pages, uint64_t page_bytes, TimeNs now);

  /**
   * Multi-endpoint migration cost: `pages_per_endpoint[i]` pages move
   * between the fast tier and endpoint `i` in one batch. The fast
   * channel carries the total; each endpoint carries its own share; the
   * batch's copy phase ends when the slowest leg finishes. With a
   * single endpoint this is exactly MigrationCost.
   */
  TimeNs MigrationCostSplit(std::span<const uint64_t> pages_per_endpoint,
                            uint64_t page_bytes, TimeNs now);

  /** Service latency of an L1 hit. */
  TimeNs L1Latency() const { return config_.l1_latency_ns; }

  /** Service latency of an LLC hit. */
  TimeNs LlcLatency() const { return config_.llc_latency_ns; }

  /** Cost of taking a hint fault (AutoNUMA/TPP promotion path). */
  TimeNs HintFaultLatency() const { return config_.hint_fault_ns; }

  /** Idle (unloaded) latency of `tier` (slow = endpoint 0). */
  TimeNs IdleLatency(Tier tier) const {
    return tier == Tier::kFast ? fast_idle_latency_ns_
                               : endpoints_[0].idle_latency_ns;
  }

  /** Cumulative bytes transferred on `tier` (slow = all endpoints). */
  uint64_t BytesTransferred(Tier tier) const {
    if (tier == Tier::kFast) return fast_.bytes;
    uint64_t total = 0;
    for (const Endpoint& e : endpoints_) total += e.bytes;
    return total;
  }

  /** Number of slow-tier endpoints. */
  uint32_t EndpointCount() const {
    return static_cast<uint32_t>(endpoints_.size());
  }

  /** Idle latency of slow endpoint `endpoint`. */
  TimeNs EndpointIdleLatency(uint32_t endpoint) const {
    return endpoints_[endpoint].idle_latency_ns;
  }

  /** Cumulative bytes transferred through endpoint `endpoint`. */
  uint64_t EndpointBytes(uint32_t endpoint) const {
    return endpoints_[endpoint].bytes;
  }

  /** Demand accesses served by endpoint `endpoint`. */
  uint64_t EndpointAccesses(uint32_t endpoint) const {
    return endpoints_[endpoint].accesses;
  }

  /**
   * Backlog an access to `endpoint` would queue behind at `now`, capped
   * at the configured queue-delay cap: the max of the endpoint port's
   * and its switch uplink's busy horizon. Read-only — placement
   * policies use `EndpointIdleLatency + EndpointBacklog` as the current
   * cost of landing traffic on the endpoint.
   */
  TimeNs EndpointBacklog(uint32_t endpoint, TimeNs now) const {
    const Endpoint& e = endpoints_[endpoint];
    TimeNs backlog = e.busy_until > now ? e.busy_until - now : 0;
    if (e.link >= 0) {
      const Channel& link = links_[static_cast<size_t>(e.link)];
      if (link.busy_until > now) {
        backlog = std::max(backlog, link.busy_until - now);
      }
    }
    return std::min<TimeNs>(backlog, max_queue_delay_ns_);
  }

  // --- Fault injection (fault/fault_runtime.h drives these) -----------

  /**
   * Marks `endpoint` down/up. While down, demand accesses return the
   * configured `fault_stall_ns` without touching any channel, and
   * OccupyEndpoint still works (evacuation reads the dying device).
   */
  void SetEndpointDown(uint32_t endpoint, bool down) {
    endpoints_[endpoint].down = down;
  }

  /**
   * Applies degrade `factor` to `endpoint`: idle latency is multiplied
   * and bandwidth divided by it, relative to the endpoint's healthy
   * baseline (so factors replace, not compound — pass 1.0 to restore).
   * The per-access occupancy is recomputed from the new bandwidth.
   */
  void SetEndpointDegrade(uint32_t endpoint, double factor);

  /** True while `endpoint` is marked down. */
  bool EndpointDown(uint32_t endpoint) const {
    return endpoints_[endpoint].down;
  }

  /** Demand accesses rejected by `endpoint` while it was down. */
  uint64_t EndpointStalledAccesses(uint32_t endpoint) const {
    return endpoints_[endpoint].stalled_accesses;
  }

  /** Configuration in use. */
  const PerfModelConfig& config() const { return config_; }

  /** The slow-tier device tree in use. */
  const Topology& topology() const { return topology_; }

 private:
  /** One shared channel (the fast tier or a switch uplink). */
  struct Channel {
    TimeNs busy_until = 0;
    TimeNs access_service = 0;  //!< Occupancy of one demand access.
    uint64_t bytes = 0;
    uint64_t accesses = 0;
  };

  /** One CXL endpoint's port channel + static properties. */
  struct Endpoint {
    TimeNs busy_until = 0;
    TimeNs access_service = 0;
    TimeNs idle_latency_ns = 0;
    double bandwidth_gbps = 0.0;
    int32_t link = -1;  //!< Index into links_, or -1 (direct).
    uint64_t bytes = 0;
    uint64_t accesses = 0;
    // Fault-injection state: healthy baselines + current health flags.
    // `down`/degrade are only ever set by a fault runtime; without one
    // the extra fields are dead weight off the hot path.
    TimeNs base_idle_latency_ns = 0;
    double base_bandwidth_gbps = 0.0;
    bool down = false;
    uint64_t stalled_accesses = 0;
  };

  /**
   * Advances a channel's busy horizon by `duration` of occupancy
   * starting at `now`. With `bounded_queue`, backlog beyond the
   * queue-delay cap is shed first, so the horizon can never run away
   * from the clock by more than cap + the new transfer.
   */
  void Advance(TimeNs* busy_until, TimeNs duration, TimeNs now) {
    TimeNs base = std::max(*busy_until, now);
    if (bounded_queue_ && base > now + max_queue_delay_ns_) {
      base = now + max_queue_delay_ns_;
    }
    *busy_until = base + duration;
  }

  /** ns a channel of `gbps` is busy transferring `bytes`. */
  static TimeNs TransferTime(double gbps, uint64_t bytes);

  PerfModelConfig config_;
  Topology topology_;
  TimeNs fast_idle_latency_ns_ = 0;
  double fast_bandwidth_gbps_ = 0.0;
  Channel fast_;
  std::vector<Endpoint> endpoints_;
  std::vector<Channel> links_;  //!< One per topology switch.
  // Hot-path constants derived from the config at construction.
  uint64_t access_bytes_ = 0;  //!< Line * thread factor.
  TimeNs max_queue_delay_ns_ = 0;
  bool bounded_queue_ = false;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_PERF_MODEL_H_
