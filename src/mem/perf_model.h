#ifndef HYBRIDTIER_MEM_PERF_MODEL_H_
#define HYBRIDTIER_MEM_PERF_MODEL_H_

/**
 * @file
 * Memory-system timing model.
 *
 * Each tier is modeled as a single channel server: an access or migration
 * transfer occupies the channel for `bytes / bandwidth` of virtual time,
 * and an access arriving while the channel is busy queues behind it. This
 * reproduces the two first-order effects the paper's results depend on:
 *  - slow-tier accesses cost ~50-100 ns more than fast-tier accesses, and
 *  - migrations consume bandwidth that delays demand accesses.
 *
 * The configured `threads` factor inflates per-access channel occupancy
 * to approximate the paper's 16 application threads sharing the channel
 * while the simulator models a single serialized access stream.
 */

#include <algorithm>
#include <cstdint>

#include "common/units.h"
#include "mem/tier.h"

namespace hybridtier {

/** Tunable latency constants for the timing model. */
struct PerfModelConfig {
  TimeNs l1_latency_ns = 1;            //!< L1 hit service time.
  TimeNs llc_latency_ns = 12;          //!< LLC hit service time.
  TimeNs hint_fault_ns = 1500;         //!< Minor/hint page fault cost.
  TimeNs migration_page_ns = 1200;     //!< Per-4KiB-page migration CPU cost.
  TimeNs migration_syscall_ns = 4000;  //!< Per-move_pages-batch overhead.
  /** Application-visible stall per migration batch: unmapping pages for
   *  migration sends TLB-shootdown IPIs to every core running the
   *  process, so each move_pages call stalls the app briefly. This is
   *  what makes per-page migrators (ARC/TwoQ, fault-time promotion) pay
   *  for their lenient policies while batched systems amortize it. */
  TimeNs tlb_batch_stall_ns = 2000;
  /** Additional app-visible stall per migrated page (shootdown + minor
   *  fault on next touch). */
  TimeNs tlb_page_stall_ns = 150;
  uint32_t threads = 16;               //!< Modeled application threads.
  double max_queue_delay_ns = 2000.0;  //!< Cap on queueing delay per access.
};

/** Channel-occupancy timing model over the two tiers. */
class PerfModel {
 public:
  PerfModel(const PerfModelConfig& config, const TierConfig& fast,
            const TierConfig& slow);

  /**
   * Returns the latency of a demand access of one cache line served by
   * `tier` at virtual time `now`, including any queueing delay, and
   * occupies the channel accordingly.
   *
   * Inlined with the per-access channel occupancy precomputed at
   * construction (its operands — line size, thread factor, tier
   * bandwidth — are run constants), so the hot loop pays no floating
   * division.
   */
  TimeNs MemoryAccess(Tier tier, TimeNs now) {
    const size_t t = static_cast<size_t>(tier);
    TimeNs queue_delay = 0;
    if (busy_until_[t] > now) {
      queue_delay = std::min<TimeNs>(busy_until_[t] - now,
                                     max_queue_delay_ns_);
    }
    busy_until_[t] = std::max(busy_until_[t], now) + access_service_[t];
    bytes_transferred_[t] += access_bytes_;
    return tiers_[t].idle_latency_ns + queue_delay;
  }

  /**
   * Accounts a bulk transfer of `bytes` on `tier`'s channel starting at
   * `now` (used for page migrations: the source is read and the
   * destination written). Returns the transfer duration.
   */
  TimeNs OccupyChannel(Tier tier, uint64_t bytes, TimeNs now);

  /**
   * Full cost of migrating `num_pages` pages of `page_bytes` each in one
   * batch at time `now`: syscall overhead + per-page kernel cost, with
   * both tiers' channels occupied by the copy traffic.
   */
  TimeNs MigrationCost(uint64_t num_pages, uint64_t page_bytes, TimeNs now);

  /** Service latency of an L1 hit. */
  TimeNs L1Latency() const { return config_.l1_latency_ns; }

  /** Service latency of an LLC hit. */
  TimeNs LlcLatency() const { return config_.llc_latency_ns; }

  /** Cost of taking a hint fault (AutoNUMA/TPP promotion path). */
  TimeNs HintFaultLatency() const { return config_.hint_fault_ns; }

  /** Idle (unloaded) latency of `tier`. */
  TimeNs IdleLatency(Tier tier) const {
    return tiers_[static_cast<size_t>(tier)].idle_latency_ns;
  }

  /** Cumulative bytes transferred on `tier`. */
  uint64_t BytesTransferred(Tier tier) const {
    return bytes_transferred_[static_cast<size_t>(tier)];
  }

  /** Configuration in use. */
  const PerfModelConfig& config() const { return config_; }

 private:
  /** ns the channel is busy transferring `bytes` on `tier`. */
  TimeNs TransferTime(Tier tier, uint64_t bytes) const;

  PerfModelConfig config_;
  TierConfig tiers_[kNumTiers];
  TimeNs busy_until_[kNumTiers] = {0, 0};
  uint64_t bytes_transferred_[kNumTiers] = {0, 0};
  // Hot-path constants derived from the config at construction.
  uint64_t access_bytes_ = 0;                    //!< Line * thread factor.
  TimeNs access_service_[kNumTiers] = {0, 0};    //!< Channel occupancy.
  TimeNs max_queue_delay_ns_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MEM_PERF_MODEL_H_
