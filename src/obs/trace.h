#ifndef HYBRIDTIER_OBS_TRACE_H_
#define HYBRIDTIER_OBS_TRACE_H_

/**
 * @file
 * Chrome/Perfetto trace-event emission keyed to simulated time.
 *
 * A `TraceEmitter` buffers timeline events — instants and duration
 * spans — and serializes them as Trace Event Format JSON, the format
 * `chrome://tracing` and https://ui.perfetto.dev open directly. One
 * emitter is one *process* in the viewer (a simulation cell); its
 * *tracks* are threads (one per tenant or subsystem), so a
 * multi-tenant run reads as a process with one swimlane per tenant.
 *
 * Two properties make this usable from the simulator's hot paths:
 *
 *  - **Deterministic**: timestamps are virtual nanoseconds, event
 *    order is emission order, and serialization is plain snprintf —
 *    so a run's trace bytes are a pure function of the simulated
 *    events. The determinism suite gates trace bytes across engines
 *    (batched vs legacy dispatch, live vs replay) and `--jobs` values
 *    the same way it gates results. (`SweepRunner`'s sweep-level
 *    traces are the deliberate exception: they record *wall-clock*
 *    spans and are documented as measurements.)
 *
 *  - **Allocation-free steady state**: event names and argument keys
 *    are `const char*` (string literals or strings interned up front),
 *    arguments are fixed-capacity numeric pairs, and the event buffer
 *    is `Reserve`d once — so emission after setup is an inlined
 *    bounds-checked append, and a disabled emitter is just a null
 *    pointer at the call site.
 *
 * Events past `max_events` are dropped (counted, deterministic), so a
 * promotion-storm run cannot OOM the host through its own telemetry.
 */

#include <cstdint>
#include <deque>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace hybridtier {

/** Buffers one cell's trace events; serializes Trace Event JSON. */
class TraceEmitter {
 public:
  /** Identifies a registered track (a viewer thread/swimlane). */
  using TrackId = uint32_t;

  /** One numeric event argument. `key` must outlive the emitter
   *  (string literal, or a pointer returned by Intern). */
  struct Arg {
    const char* key;
    double value;
  };

  /** Max numeric args one event can carry. */
  static constexpr size_t kMaxArgs = 3;

  /**
   * @param pid          process id in the viewer (the cell index).
   * @param process_name viewer label of this process ("" = none).
   */
  explicit TraceEmitter(uint32_t pid = 1, std::string process_name = "");

  /**
   * Registers (or looks up) the named track and returns its id.
   * Registration order fixes the viewer's `tid` numbering, so call
   * sites must register tracks in a deterministic order.
   */
  TrackId Track(const std::string& name);

  /** Grows the event buffer once, to keep emission allocation-free. */
  void Reserve(size_t events) { events_.reserve(events); }

  /**
   * Copies `text` into emitter-owned storage and returns a pointer
   * stable for the emitter's lifetime — for event names that are not
   * string literals (e.g. per-tenant labels built at setup time).
   */
  const char* Intern(const std::string& text);

  /** Emits an instantaneous event at virtual time `ts_ns`. */
  void Instant(TrackId track, const char* name, TimeNs ts_ns,
               std::initializer_list<Arg> args = {}) {
    Append('I', track, name, ts_ns, 0, args);
  }

  /** Emits a duration span covering [start_ns, end_ns]. */
  void Span(TrackId track, const char* name, TimeNs start_ns,
            TimeNs end_ns, std::initializer_list<Arg> args = {}) {
    Append('X', track, name, start_ns,
           end_ns >= start_ns ? end_ns - start_ns : 0, args);
  }

  /** Events currently buffered (excludes dropped ones). */
  size_t event_count() const { return events_.size(); }

  /** Events dropped at the max_events cap. */
  uint64_t dropped_events() const { return dropped_; }

  /** Caps the event buffer; further events are dropped and counted. */
  void set_max_events(size_t cap) { max_events_ = cap; }

  /** Viewer process id of this emitter. */
  uint32_t pid() const { return pid_; }

  /** Viewer process name of this emitter. */
  const std::string& process_name() const { return process_name_; }

  /**
   * Writes a complete standalone trace file:
   * `{"traceEvents": [...], "displayTimeUnit": "ns"}`.
   */
  void WriteJson(std::ostream& out) const;

  /**
   * Appends this emitter's events (including its process/track
   * metadata records) to an open `traceEvents` array. `*first` tracks
   * whether a comma is owed; shared across emitters when merging.
   */
  void AppendEventsJson(std::ostream& out, bool* first) const;

 private:
  struct Event {
    const char* name;
    TimeNs ts_ns;
    TimeNs dur_ns;
    TrackId track;
    char phase;  //!< 'X' duration span, 'I' instant.
    uint8_t arg_count;
    Arg args[kMaxArgs];
  };

  void Append(char phase, TrackId track, const char* name, TimeNs ts_ns,
              TimeNs dur_ns, std::initializer_list<Arg> args);

  uint32_t pid_;
  std::string process_name_;
  std::vector<std::string> tracks_;   //!< tid = index + 1.
  std::vector<Event> events_;
  std::deque<std::string> interned_;  //!< Stable storage for Intern.
  size_t max_events_ = 1u << 20;
  uint64_t dropped_ = 0;
};

/**
 * Writes one standalone trace file merging several emitters — one
 * viewer process per emitter, in the given order (callers pass cells
 * in flat sweep order so merged bytes are jobs-invariant).
 */
void WriteTraceJson(std::ostream& out,
                    std::span<const TraceEmitter* const> emitters);

}  // namespace hybridtier

#endif  // HYBRIDTIER_OBS_TRACE_H_
