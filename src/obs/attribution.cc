#include "obs/attribution.h"

#include <cstdio>

namespace hybridtier {

const char* LatencyComponentName(LatencyComponent component) {
  switch (component) {
    case LatencyComponent::kOpOverhead:
      return "op_overhead";
    case LatencyComponent::kL1Hit:
      return "l1_hit";
    case LatencyComponent::kLlcHit:
      return "llc_hit";
    case LatencyComponent::kFastIdle:
      return "fast_idle";
    case LatencyComponent::kFastQueue:
      return "fast_queue";
    case LatencyComponent::kSlowIdle:
      return "slow_idle";
    case LatencyComponent::kSlowQueue:
      return "slow_queue";
    case LatencyComponent::kHintFault:
      return "hint_fault";
    case LatencyComponent::kMigrationStall:
      return "migration_stall";
    case LatencyComponent::kFaultStall:
      return "fault_stall";
    case LatencyComponent::kCount:
      break;
  }
  return "?";
}

void LatencyAttribution::Configure(uint32_t endpoint_count,
                                   uint32_t tenant_count) {
  if (endpoint_count == 0) endpoint_count = 1;
  if (tenant_count == 0) tenant_count = 1;
  for (size_t c = 0; c < kComponents; ++c) total_ns_[c] = 0;
  tenant_ns_.assign(static_cast<size_t>(tenant_count) * kComponents, 0);
  endpoint_idle_ns_.assign(endpoint_count, 0);
  endpoint_queue_ns_.assign(endpoint_count, 0);
  tenant_op_latency_ns_.assign(tenant_count, 0);
  op_latency_ns_ = 0;
  ops_ = 0;
}

uint64_t LatencyAttribution::ComponentSumNs() const {
  uint64_t sum = 0;
  for (size_t c = 0; c < kComponents; ++c) sum += total_ns_[c];
  return sum;
}

uint64_t LatencyAttribution::TenantComponentSumNs(uint32_t tenant) const {
  uint64_t sum = 0;
  const size_t base = static_cast<size_t>(tenant) * kComponents;
  for (size_t c = 0; c < kComponents; ++c) sum += tenant_ns_[base + c];
  return sum;
}

std::string LatencyAttribution::Report() const {
  std::string report;
  char line[160];
  const uint64_t total = op_latency_ns();
  std::snprintf(line, sizeof(line), "  %-16s %16s %8s %10s\n", "component",
                "ns", "share", "ns/op");
  report += line;
  for (size_t c = 0; c < kComponents; ++c) {
    const uint64_t ns = total_ns_[c];
    const double share = total > 0 ? 100.0 * static_cast<double>(ns) /
                                         static_cast<double>(total)
                                   : 0.0;
    const double per_op =
        ops_ > 0 ? static_cast<double>(ns) / static_cast<double>(ops_) : 0.0;
    std::snprintf(line, sizeof(line), "  %-16s %16llu %7.2f%% %10.1f\n",
                  LatencyComponentName(static_cast<LatencyComponent>(c)),
                  static_cast<unsigned long long>(ns), share, per_op);
    report += line;
  }
  std::snprintf(line, sizeof(line),
                "  %-16s %16llu %7s%% %10.1f  (%llu ops)\n", "total",
                static_cast<unsigned long long>(total), "100.00",
                ops_ > 0 ? static_cast<double>(total) /
                               static_cast<double>(ops_)
                         : 0.0,
                static_cast<unsigned long long>(ops_));
  report += line;
  for (size_t e = 0; e < endpoint_idle_ns_.size(); ++e) {
    if (endpoint_idle_ns_[e] == 0 && endpoint_queue_ns_[e] == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  endpoint%zu: slow idle %llu ns, slow queue %llu ns\n",
                  e, static_cast<unsigned long long>(endpoint_idle_ns_[e]),
                  static_cast<unsigned long long>(endpoint_queue_ns_[e]));
    report += line;
  }
  return report;
}

}  // namespace hybridtier
