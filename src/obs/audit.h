#ifndef HYBRIDTIER_OBS_AUDIT_H_
#define HYBRIDTIER_OBS_AUDIT_H_

/**
 * @file
 * Tiering decision audit: machine-readable reason codes on every
 * migration batch, a bounded deterministic flight recorder, and an
 * online mis-tiering labeler.
 *
 * Every promotion/demotion batch a policy issues carries a
 * `MigrationReason` through `MigrationEngine` (the fair-share quota
 * gate forwards the base policy's reason, and tags its own controller
 * traffic with quota reasons). When a `DecisionAudit` is attached to
 * the engine, each executed batch is appended to a bounded ring of
 * `AuditRecord`s — oldest records are overwritten and counted, so a
 * promotion-storm run cannot grow the audit without bound — and
 * per-reason page/batch counters accumulate for the whole run.
 *
 * The labeler classifies outcomes online, from the same event stream
 * the simulation already produces:
 *  - **premature demotion**: a demoted unit takes a slow demand fill
 *    within `premature_window_ns` of its demotion (the page was still
 *    hot; demoting it bought a slow access, not free space);
 *  - **late promotion**: a slow-resident unit takes at least
 *    `hot_touch_min` slow fills in each of `late_promotion_intervals`
 *    consecutive stats intervals without being promoted (the policy is
 *    sitting on a page hot enough to deserve fast-tier placement).
 * Each unit is counted once per offense episode: a premature demotion
 * clears its stamp, a late promotion latches until the unit is finally
 * promoted. All bookkeeping is epoch-stamped and O(touched units) per
 * interval, so fleet-scale cells pay for their traffic, not their
 * footprint.
 *
 * Like the rest of `src/obs/`, everything here is observation only:
 * the audit never feeds back into timing or placement, a null audit
 * pointer is the disabled state, and every output is a pure function
 * of the simulated event stream (byte-identical across engines and
 * `--jobs` values).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "mem/page.h"

namespace hybridtier {

/** Why a migration batch was issued (one reason per batch). */
enum class MigrationReason : uint8_t {
  kUnspecified = 0,  //!< Legacy call site (no reason threaded).
  kHotnessRank,      //!< Sampled hotness crossed the promotion threshold.
  kCapacityDemand,   //!< Demand demotion making room for a promotion batch.
  kWatermark,        //!< Background free-watermark demotion scan.
  kQuotaEnforce,     //!< Fair-share over-quota enforcement demotion.
  kQuotaFill,        //!< Fair-share fill-to-quota promotion.
  kQuotaRotation,    //!< Fair-share rotation of a visibly bad resident mix.
  kChurnDrain,       //!< Departed-tenant paced region reclaim.
  kFaultEvacuation,  //!< Residents pulled off a down endpoint.
  kFaultSpill,       //!< Fast-tier pages demoted to make evacuation room.
  kCount,
};

/** Stable short name ("hotness_rank", "quota_fill", ...). */
const char* MigrationReasonName(MigrationReason reason);

/** One executed migration batch in the flight recorder. */
struct AuditRecord {
  TimeNs time_ns = 0;
  MigrationReason reason = MigrationReason::kUnspecified;
  bool promotion = false;       //!< Promotion batch (else demotion).
  uint32_t pages_moved = 0;     //!< Pages the engine actually moved.
  uint32_t pages_requested = 0; //!< Batch size the policy requested.
  uint64_t cooling_epoch = 0;   //!< Tracker coolings seen so far.
};

/** Tunables for the audit ring and the mis-tiering labeler. */
struct DecisionAuditConfig {
  /** Flight-recorder capacity in batch records; older records are
   *  overwritten (and counted) once the ring is full. */
  size_t ring_capacity = 4096;
  /** A demoted unit re-filled from the slow tier within this window is
   *  a premature demotion. */
  TimeNs premature_window_ns = 10 * kMillisecond;
  /** Consecutive hot stats intervals a slow unit must stay unpromoted
   *  to count as a late promotion. */
  uint32_t late_promotion_intervals = 3;
  /** Slow demand fills per interval for a unit to count as hot. */
  uint32_t hot_touch_min = 4;
};

/** Bounded migration flight recorder + mis-tiering labeler. */
class DecisionAudit {
 public:
  explicit DecisionAudit(const DecisionAuditConfig& config = {});

  /** Sizes the labeler's per-unit tables; called by the simulation
   *  once the footprint is known. Resets all state. */
  void Configure(uint64_t footprint_units);

  // --- Flight recorder (fed by MigrationEngine) -----------------------

  /** Appends one executed batch to the ring. */
  void RecordBatch(bool promotion, MigrationReason reason, TimeNs now,
                   uint32_t pages_moved, uint32_t pages_requested);

  /** Counts promotion candidates a quota gate refused admission. */
  void RecordQuotaTruncation(uint64_t pages) {
    quota_truncated_pages_ += pages;
  }

  /** Advances the cooling epoch stamped onto subsequent records. */
  void RecordCooling() { ++cooling_epochs_; }

  /** Counts promotion batches reordered by endpoint cost before the
   *  quota gate decided admissions. */
  void RecordEndpointReorder() { ++endpoint_reorders_; }

  // --- Labeler feeds (fed by the engine and the hot loop) -------------

  /** A unit landed in the fast tier via a promotion batch. */
  void OnPromoted(PageId unit, TimeNs now);

  /** A unit was demoted to the slow tier. */
  void OnDemoted(PageId unit, TimeNs now);

  /** A demand fill was served from the slow tier for `unit`. */
  void OnSlowFill(PageId unit, TimeNs now);

  /** Closes one stats interval: updates hot-streak state for the units
   *  touched since the previous call. O(touched units). */
  void AdvanceInterval(TimeNs now);

  // --- Views ----------------------------------------------------------

  /** Ring contents, oldest first. */
  std::vector<AuditRecord> RingSnapshot() const;

  /** Batch records overwritten at the ring capacity. */
  uint64_t dropped_records() const { return dropped_records_; }

  uint64_t premature_demotions() const { return premature_demotions_; }
  uint64_t late_promotions() const { return late_promotions_; }
  uint64_t quota_truncated_pages() const { return quota_truncated_pages_; }
  uint64_t cooling_epochs() const { return cooling_epochs_; }
  uint64_t endpoint_reorders() const { return endpoint_reorders_; }

  /** Pages moved by promotion batches carrying `reason`. */
  uint64_t promoted_pages(MigrationReason reason) const {
    return promoted_pages_[static_cast<size_t>(reason)];
  }

  /** Pages moved by demotion batches carrying `reason`. */
  uint64_t demoted_pages(MigrationReason reason) const {
    return demoted_pages_[static_cast<size_t>(reason)];
  }

  /** Batches recorded with `reason` (promotions + demotions). */
  uint64_t batches(MigrationReason reason) const {
    return batches_[static_cast<size_t>(reason)];
  }

  /** Total batches recorded (including ring-dropped ones). */
  uint64_t total_batches() const { return total_batches_; }

  /** Multi-line per-reason + mis-tiering table for CLI output. */
  std::string Report() const;

 private:
  static constexpr size_t kReasons =
      static_cast<size_t>(MigrationReason::kCount);

  DecisionAuditConfig config_;

  // Flight recorder.
  std::vector<AuditRecord> ring_;
  size_t ring_next_ = 0;       //!< Next slot to write (wraps).
  size_t ring_size_ = 0;       //!< Valid records in the ring.
  uint64_t dropped_records_ = 0;
  uint64_t total_batches_ = 0;
  uint64_t batches_[kReasons] = {};
  uint64_t promoted_pages_[kReasons] = {};
  uint64_t demoted_pages_[kReasons] = {};
  uint64_t quota_truncated_pages_ = 0;
  uint64_t cooling_epochs_ = 0;
  uint64_t endpoint_reorders_ = 0;

  // Labeler state (dense per-unit tables, epoch-stamped).
  uint64_t footprint_units_ = 0;
  uint32_t epoch_ = 1;  //!< Current stats interval (starts at 1).
  std::vector<TimeNs> demote_stamp_;      //!< time+1 of last demotion; 0=none.
  std::vector<uint32_t> touch_epoch_;     //!< Epoch of interval_touches_.
  std::vector<uint32_t> interval_touches_;
  std::vector<uint32_t> last_hot_epoch_;  //!< Last epoch the unit was hot.
  std::vector<uint16_t> hot_streak_;      //!< Consecutive hot intervals.
  std::vector<uint8_t> late_counted_;     //!< Latched until promoted.
  std::vector<PageId> touched_units_;     //!< Units seen this interval.
  uint64_t premature_demotions_ = 0;
  uint64_t late_promotions_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_OBS_AUDIT_H_
