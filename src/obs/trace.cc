#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace hybridtier {
namespace {

/**
 * Appends `text` JSON-escaped (no surrounding quotes). Names are ASCII
 * identifiers in practice, but sweep cell labels embed axis values, so
 * escape defensively.
 */
void AppendEscaped(std::ostream& out, const char* text) {
  for (const char* p = text; *p; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
}

/**
 * Formats a metric value with the shortest round-trippable plain
 * notation — integers without a fraction, fractions with up to six
 * significant decimals, trailing zeros trimmed. One fixed formatter for
 * every writer keeps output bytes identical across platforms.
 */
void AppendNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "0";
    return;
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    out << buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  // Trim trailing zeros but keep one digit after the point.
  size_t len = std::strlen(buf);
  while (len > 1 && buf[len - 1] == '0' && buf[len - 2] != '.') {
    buf[--len] = '\0';
  }
  out << buf;
}

/** Emits one metadata record (process_name / thread_name). */
void AppendMetadata(std::ostream& out, bool* first, const char* kind,
                    uint32_t pid, uint32_t tid, const std::string& name) {
  if (!*first) out << ",\n";
  *first = false;
  out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"name\":\"" << kind << "\",\"args\":{\"name\":\"";
  AppendEscaped(out, name.c_str());
  out << "\"}}";
}

/** Formats virtual ns as the viewer's microsecond timestamp field. */
void AppendMicros(std::ostream& out, TimeNs ns) {
  // Split instead of dividing doubles so 64-bit timestamps stay exact.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out << buf;
}

}  // namespace

TraceEmitter::TraceEmitter(uint32_t pid, std::string process_name)
    : pid_(pid), process_name_(std::move(process_name)) {}

TraceEmitter::TrackId TraceEmitter::Track(const std::string& name) {
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<TrackId>(i + 1);
  }
  tracks_.push_back(name);
  return static_cast<TrackId>(tracks_.size());
}

const char* TraceEmitter::Intern(const std::string& text) {
  for (const std::string& existing : interned_) {
    if (existing == text) return existing.c_str();
  }
  interned_.push_back(text);
  return interned_.back().c_str();
}

void TraceEmitter::Append(char phase, TrackId track, const char* name,
                          TimeNs ts_ns, TimeNs dur_ns,
                          std::initializer_list<Arg> args) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  Event event;
  event.name = name;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.track = track;
  event.phase = phase;
  event.arg_count = 0;
  for (const Arg& arg : args) {
    if (event.arg_count == kMaxArgs) break;
    event.args[event.arg_count++] = arg;
  }
  events_.push_back(event);
}

void TraceEmitter::AppendEventsJson(std::ostream& out, bool* first) const {
  if (!process_name_.empty()) {
    AppendMetadata(out, first, "process_name", pid_, 0, process_name_);
  }
  for (size_t i = 0; i < tracks_.size(); ++i) {
    AppendMetadata(out, first, "thread_name", pid_,
                   static_cast<uint32_t>(i + 1), tracks_[i]);
  }
  for (const Event& event : events_) {
    if (!*first) out << ",\n";
    *first = false;
    out << "{\"ph\":\"" << event.phase << "\",\"pid\":" << pid_
        << ",\"tid\":" << event.track << ",\"ts\":";
    AppendMicros(out, event.ts_ns);
    if (event.phase == 'X') {
      out << ",\"dur\":";
      AppendMicros(out, event.dur_ns);
    } else if (event.phase == 'I') {
      out << ",\"s\":\"t\"";
    }
    out << ",\"name\":\"";
    AppendEscaped(out, event.name);
    out << "\"";
    if (event.arg_count > 0) {
      out << ",\"args\":{";
      for (uint8_t a = 0; a < event.arg_count; ++a) {
        if (a > 0) out << ",";
        out << "\"";
        AppendEscaped(out, event.args[a].key);
        out << "\":";
        AppendNumber(out, event.args[a].value);
      }
      out << "}";
    }
    out << "}";
  }
}

void TraceEmitter::WriteJson(std::ostream& out) const {
  const TraceEmitter* self = this;
  WriteTraceJson(out, std::span<const TraceEmitter* const>(&self, 1));
}

void WriteTraceJson(std::ostream& out,
                    std::span<const TraceEmitter* const> emitters) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEmitter* emitter : emitters) {
    if (emitter != nullptr) emitter->AppendEventsJson(out, &first);
  }
  out << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace hybridtier
