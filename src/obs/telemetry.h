#ifndef HYBRIDTIER_OBS_TELEMETRY_H_
#define HYBRIDTIER_OBS_TELEMETRY_H_

/**
 * @file
 * The telemetry bundle a simulation is configured with.
 *
 * `Telemetry` is five optional pointers — metrics, trace, stage
 * profiler, latency attribution, decision audit — carried by value in
 * `SimulationConfig`. The simulation
 * does not own any of them: the driver (ht_run, a bench, a test)
 * creates whichever sinks it wants, points the config at them, runs,
 * and serializes afterwards. All-null (the default) is the disabled
 * state, and every instrumentation site guards on its pointer, so a
 * run without telemetry executes the exact pre-observability code
 * path.
 */

#include "obs/attribution.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"

namespace hybridtier {

/** Optional telemetry sinks for one simulation. Non-owning. */
struct Telemetry {
  MetricRegistry* metrics = nullptr;
  TraceEmitter* trace = nullptr;
  StageProfiler* stages = nullptr;
  LatencyAttribution* attribution = nullptr;
  DecisionAudit* audit = nullptr;

  /** True when any sink is attached. */
  bool enabled() const {
    return metrics != nullptr || trace != nullptr || stages != nullptr ||
           attribution != nullptr || audit != nullptr;
  }
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_OBS_TELEMETRY_H_
