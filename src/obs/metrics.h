#ifndef HYBRIDTIER_OBS_METRICS_H_
#define HYBRIDTIER_OBS_METRICS_H_

/**
 * @file
 * Named metric registry with cheap hot-path handles.
 *
 * A `MetricRegistry` owns named counters, gauges, histograms, and
 * pull-probes. Call sites resolve a metric *once* at setup time and
 * keep the returned handle pointer — incrementing a counter is then a
 * single relaxed add through the pointer, with no string lookup or map
 * walk per event. Handle addresses are stable for the registry's
 * lifetime (entries live behind unique_ptr).
 *
 * The registry is snapshotted at the simulator's stats interval:
 * `Snapshot(now)` appends one point per metric in registration order,
 * building per-metric time series in virtual time. Because both the
 * sample times and the values are pure functions of the simulated
 * event stream, serialized output is byte-identical across engines and
 * `--jobs` values — the determinism suite gates exactly that.
 *
 * Two metric flavors cover the simulator's needs:
 *  - **owned** (Counter/Gauge/Histogram): the call site pushes values
 *    through the handle as events happen.
 *  - **probe**: the registry pulls a `std::function<double()>` at each
 *    snapshot — for values another object already maintains (e.g.
 *    `TieredMemory::fast_used_units`), avoiding double bookkeeping.
 *    Probes capture references into the simulation; they are evaluated
 *    only during Snapshot, never at serialization time, so writing the
 *    registry after the simulation is destroyed is safe.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace hybridtier {

/** Monotonic event count. */
class Counter {
 public:
  void Inc(uint64_t by = 1) { value_ += by; }
  void Set(uint64_t value) { value_ = value; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/** Point-in-time level (can move both ways). */
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/**
 * Power-of-two-bucketed distribution: bucket i counts observations in
 * [2^(i-1), 2^i), bucket 0 counts zeros and ones. Fixed 64 buckets, so
 * Observe is branch-light and allocation-free.
 */
class HistogramMetric {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t value) {
    ++buckets_[BucketOf(value)];
    ++count_;
    sum_ += value;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  /** Index of the highest non-empty bucket, or 0 if empty. */
  size_t MaxBucket() const;

  static size_t BucketOf(uint64_t value) {
    if (value <= 1) return 0;
    return static_cast<size_t>(64 - __builtin_clzll(value - 1));
  }

  /** Lower bound of bucket `i` (inclusive). */
  static uint64_t BucketFloor(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << (i - 1)) + 1;
  }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/** Owns named metrics; snapshots them into virtual-time series. */
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /** Registers a counter; the returned handle is registry-lifetime
   *  stable. Re-registering a name returns the existing handle. */
  Counter* AddCounter(const std::string& name);

  /** Registers a gauge (same handle rules as AddCounter). */
  Gauge* AddGauge(const std::string& name);

  /** Registers a histogram. Histograms are serialized as bucket
   *  tables, not time series — they summarize the whole run. */
  HistogramMetric* AddHistogram(const std::string& name);

  /** Registers a pull-probe evaluated at each Snapshot. */
  void AddProbe(const std::string& name, std::function<double()> probe);

  /**
   * Appends one sample per scalar metric (counters, gauges, probes) at
   * virtual time `now`, in registration order. A repeated timestamp is
   * ignored so end-of-run snapshots don't duplicate the last interval.
   */
  void Snapshot(TimeNs now);

  /** Number of snapshots taken. */
  size_t snapshot_count() const { return times_ns_.size(); }

  /** Scalar metrics registered (series columns). */
  size_t series_count() const { return scalars_.size(); }

  /** Snapshot timestamps, one per Snapshot call. */
  const std::vector<TimeNs>& times() const { return times_ns_; }

  /** Time series of a scalar metric, or nullptr if `name` is not
   *  registered. One value per snapshot, same order as times(). */
  const std::vector<double>* Series(const std::string& name) const;

  /** Registered histogram, or nullptr. */
  const HistogramMetric* FindHistogram(const std::string& name) const;

  /** Names of all scalar metrics, in registration order. */
  std::vector<std::string> ScalarNames() const;

  /**
   * Writes the registry as a standalone JSON document:
   * `{"times_ns": [...], "series": {name: [...]}, "final": {...},
   *   "histograms": {name: {...}}}`.
   */
  void WriteJson(std::ostream& out) const;

  /** As WriteJson but bare (no surrounding document) — for embedding
   *  one object per sweep cell in a merged file. */
  void WriteJsonObject(std::ostream& out) const;

  /** Writes `time_ns,<name>,...` header plus one row per snapshot. */
  void WriteCsv(std::ostream& out) const;

 private:
  /** One scalar column: exactly one of the handle pointers is set. */
  struct Scalar {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::function<double()> probe;
    std::vector<double> series;  //!< One value per snapshot.

    double Current() const;
  };

  struct Histogram {
    std::string name;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Scalar* FindScalar(const std::string& name);

  std::vector<Scalar> scalars_;
  std::vector<Histogram> histograms_;
  std::vector<TimeNs> times_ns_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_OBS_METRICS_H_
