#ifndef HYBRIDTIER_OBS_STAGE_PROFILER_H_
#define HYBRIDTIER_OBS_STAGE_PROFILER_H_

/**
 * @file
 * Sampled wall-clock attribution of the simulation engine's stages.
 *
 * The ROADMAP's "raw speed, round two" analysis names a ~49 ns/access
 * floor and attributes it (cache traffic ~25 ns, policy ~6 ns,
 * loop+replay ~10 ns, Zipf draw ~30 ns live) — but those numbers were
 * prose, measured once by hand. `StageProfiler` makes the breakdown a
 * measured artifact: the engine times one op in every `sample_every`
 * (default 64) with per-stage `clock_gettime(CLOCK_MONOTONIC)` reads
 * and records where the wall time went.
 *
 * Sampling keeps the observer effect bounded: an unsampled op runs the
 * exact unprofiled code path (the engine instantiates its op loop as a
 * template on a compile-time `kProfiled` flag, so the common
 * instantiation contains no timing code at all), and a null profiler
 * pointer disables even the sampling countdown.
 *
 * Unlike everything else in `src/obs/`, stage times are *wall-clock*
 * measurements by default — they vary run to run and are reported as
 * such (a bench table, never part of the determinism-gated outputs).
 *
 * **Virtual-time mode** (`StageProfiler(sample_every, true)`) removes
 * that exemption: the engine fills the same per-stage buckets with
 * *simulated* nanoseconds (think time -> generation, access latencies
 * -> cache, TLB stalls -> migration, op overhead -> accounting) and
 * never reads the clock. Every bucket is then a pure function of the
 * simulated event stream, so profiled runs are bit-identical across
 * `--jobs` values and engines and can join the byte-diff gates. With
 * `sample_every == 1` and no idle gaps, `sampled_op_wall_ns()` equals
 * the run's modeled duration exactly.
 */

#include <cstdint>
#include <ctime>
#include <string>

namespace hybridtier {

/** Engine stages attributed by the profiler. */
enum class Stage : uint8_t {
  kGeneration = 0,  //!< Workload NextOp (generation or trace replay).
  kCache,           //!< Cache-hierarchy probes + perf-model latency.
  kPolicy,          //!< Policy dispatch (inline, batch, and OnSample).
  kSampler,         //!< Sampler OnAccess + drain.
  kMigration,       //!< Migration-stall accounting + tick maintenance.
  kAccounting,      //!< Latency windows, reservoir, tenant bookkeeping.
  kCount,
};

/** Human-readable stage name ("generation", "cache", ...). */
const char* StageName(Stage stage);

/** Accumulates sampled per-stage wall time for one simulation. */
class StageProfiler {
 public:
  /** One stage's accumulated sample totals. */
  struct StageTotals {
    uint64_t wall_ns = 0;  //!< Wall time across sampled ops.
    uint64_t events = 0;   //!< Sampled ops that touched this stage.
  };

  explicit StageProfiler(uint32_t sample_every = 64,
                         bool virtual_time = false)
      : sample_every_(sample_every == 0 ? 1 : sample_every),
        countdown_(1),  // Profile the first op, then every Nth.
        virtual_time_(virtual_time) {}

  /** True when buckets hold simulated ns (deterministic), not wall
   *  clock. The engine checks this to pick its recording path. */
  bool virtual_time() const { return virtual_time_; }

  /** Monotonic wall-clock read (ns). */
  static uint64_t NowNs() {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }

  /** Returns true when the op starting now should be profiled. */
  bool BeginOp() {
    if (--countdown_ > 0) return false;
    countdown_ = sample_every_;
    return true;
  }

  /** Adds one sampled measurement of `stage`. */
  void Record(Stage stage, uint64_t wall_ns) {
    StageTotals& totals = stages_[static_cast<size_t>(stage)];
    totals.wall_ns += wall_ns;
    ++totals.events;
  }

  /** Closes one sampled op: its total wall time and access count. */
  void RecordOp(uint64_t wall_ns, uint64_t accesses) {
    op_wall_ns_ += wall_ns;
    op_accesses_ += accesses;
    ++ops_;
  }

  /** Folds `other`'s samples into this profiler (cross-rep/cell). */
  void Merge(const StageProfiler& other);

  const StageTotals& totals(Stage stage) const {
    return stages_[static_cast<size_t>(stage)];
  }

  uint64_t sampled_ops() const { return ops_; }
  uint64_t sampled_accesses() const { return op_accesses_; }
  uint64_t sampled_op_wall_ns() const { return op_wall_ns_; }

  /** Mean ns per sampled access spent in `stage`. */
  double NsPerAccess(Stage stage) const {
    return op_accesses_ == 0
               ? 0.0
               : static_cast<double>(totals(stage).wall_ns) /
                     static_cast<double>(op_accesses_);
  }

  /** Op wall time not attributed to any stage (loop overhead). */
  uint64_t OtherNs() const;

  /** Multi-line per-stage table (ns/access), for bench output. */
  std::string Report() const;

 private:
  StageTotals stages_[static_cast<size_t>(Stage::kCount)];
  uint64_t op_wall_ns_ = 0;
  uint64_t op_accesses_ = 0;
  uint64_t ops_ = 0;
  uint32_t sample_every_;
  uint32_t countdown_;
  bool virtual_time_ = false;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_OBS_STAGE_PROFILER_H_
