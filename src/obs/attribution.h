#ifndef HYBRIDTIER_OBS_ATTRIBUTION_H_
#define HYBRIDTIER_OBS_ATTRIBUTION_H_

/**
 * @file
 * Exact latency decomposition of every modeled nanosecond.
 *
 * A `LatencyAttribution` attached to a simulation splits each op's
 * modeled latency into named components at the moment the engine
 * computes it — no re-derivation, no sampling, no rounding. The
 * components partition op latency exactly:
 *
 *   op_latency = op_overhead
 *              + Σ per-access (L1 hit | LLC hit
 *                              | fast idle + fast queue
 *                              | slow idle + slow queue   [per endpoint]
 *                              ) + hint faults
 *              + migration TLB stalls
 *
 * so the accounting identity
 *
 *   Σ components == Σ op latency       (to the nanosecond, EXPECT_EQ)
 *
 * holds globally, per tenant, and at every metric snapshot (interval
 * sums are differences of cumulative sums, so the cumulative identity
 * at each snapshot implies the per-interval one). The queue components
 * are recovered exactly as `modeled latency - idle latency`, the same
 * integer subtraction the per-endpoint queue-delay histograms already
 * use. Metadata (tiering) traffic is deliberately NOT a component: it
 * is modeled as cache pollution, never added to op latency, and is
 * reported alongside the decomposition instead (see README
 * "Diagnosis").
 *
 * Observation only: a null pointer is the disabled state, nothing here
 * feeds back into timing, and all counters are pure functions of the
 * simulated event stream (byte-identical across engines and `--jobs`).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hybridtier {

/** Named slices of modeled op latency. Together they partition it. */
enum class LatencyComponent : uint8_t {
  kOpOverhead = 0,     //!< Fixed non-memory software work per op.
  kL1Hit,              //!< Accesses served by the L1.
  kLlcHit,             //!< Accesses served by the LLC.
  kFastIdle,           //!< Fast-tier fills: unloaded device latency.
  kFastQueue,          //!< Fast-tier fills: channel queueing delay.
  kSlowIdle,           //!< Slow-tier fills: per-endpoint idle latency.
  kSlowQueue,          //!< Slow-tier fills: port/uplink queue delay.
  kHintFault,          //!< Hint/minor page-fault charges.
  kMigrationStall,     //!< TLB-shootdown stalls from migration batches.
  kFaultStall,         //!< Demand accesses rejected by a down endpoint.
  kCount,
};

/** Stable short name ("fast_idle", "slow_queue", ...). */
const char* LatencyComponentName(LatencyComponent component);

/** Exact per-component / per-endpoint / per-tenant ns accounting. */
class LatencyAttribution {
 public:
  LatencyAttribution() = default;

  /** Sizes the per-endpoint and per-tenant tables; called by the
   *  simulation at construction. Resets all state. Single-tenant runs
   *  pass `tenant_count == 1` (everything lands on tenant 0). */
  void Configure(uint32_t endpoint_count, uint32_t tenant_count);

  // --- Hot-path feeds (call only when attached) -----------------------

  void AddOpOverhead(uint32_t tenant, TimeNs ns) {
    Add(tenant, LatencyComponent::kOpOverhead, ns);
  }

  void AddL1Hit(uint32_t tenant, TimeNs ns) {
    Add(tenant, LatencyComponent::kL1Hit, ns);
  }

  void AddLlcHit(uint32_t tenant, TimeNs ns) {
    Add(tenant, LatencyComponent::kLlcHit, ns);
  }

  void AddFastFill(uint32_t tenant, TimeNs idle_ns, TimeNs queue_ns) {
    Add(tenant, LatencyComponent::kFastIdle, idle_ns);
    Add(tenant, LatencyComponent::kFastQueue, queue_ns);
  }

  void AddSlowFill(uint32_t tenant, uint32_t endpoint, TimeNs idle_ns,
                   TimeNs queue_ns) {
    Add(tenant, LatencyComponent::kSlowIdle, idle_ns);
    Add(tenant, LatencyComponent::kSlowQueue, queue_ns);
    endpoint_idle_ns_[endpoint] += idle_ns;
    endpoint_queue_ns_[endpoint] += queue_ns;
  }

  void AddHintFault(uint32_t tenant, TimeNs ns) {
    Add(tenant, LatencyComponent::kHintFault, ns);
  }

  void AddMigrationStall(uint32_t tenant, TimeNs ns) {
    Add(tenant, LatencyComponent::kMigrationStall, ns);
  }

  void AddFaultStall(uint32_t tenant, TimeNs ns) {
    Add(tenant, LatencyComponent::kFaultStall, ns);
  }

  /** Closes one op: accumulates the identity's right-hand side. */
  void CloseOp(uint32_t tenant, TimeNs op_latency_ns) {
    op_latency_ns_ += op_latency_ns;
    tenant_op_latency_ns_[tenant] += op_latency_ns;
    ++ops_;
  }

  // --- Views ----------------------------------------------------------

  uint64_t component_ns(LatencyComponent component) const {
    return total_ns_[static_cast<size_t>(component)];
  }

  uint64_t tenant_component_ns(uint32_t tenant,
                               LatencyComponent component) const {
    return tenant_ns_[tenant * kComponents +
                      static_cast<size_t>(component)];
  }

  uint64_t endpoint_slow_idle_ns(uint32_t endpoint) const {
    return endpoint_idle_ns_[endpoint];
  }

  uint64_t endpoint_slow_queue_ns(uint32_t endpoint) const {
    return endpoint_queue_ns_[endpoint];
  }

  /** Σ op latency (the identity's right-hand side). */
  uint64_t op_latency_ns() const { return op_latency_ns_; }

  uint64_t tenant_op_latency_ns(uint32_t tenant) const {
    return tenant_op_latency_ns_[tenant];
  }

  /** Σ components, globally (the identity's left-hand side). */
  uint64_t ComponentSumNs() const;

  /** Σ components for one tenant. */
  uint64_t TenantComponentSumNs(uint32_t tenant) const;

  uint64_t ops() const { return ops_; }
  uint32_t endpoint_count() const {
    return static_cast<uint32_t>(endpoint_idle_ns_.size());
  }
  uint32_t tenant_count() const {
    return static_cast<uint32_t>(tenant_op_latency_ns_.size());
  }

  /** Multi-line component table (ns and share of total), for CLI. */
  std::string Report() const;

 private:
  static constexpr size_t kComponents =
      static_cast<size_t>(LatencyComponent::kCount);

  void Add(uint32_t tenant, LatencyComponent component, TimeNs ns) {
    const size_t c = static_cast<size_t>(component);
    total_ns_[c] += ns;
    tenant_ns_[tenant * kComponents + c] += ns;
  }

  uint64_t total_ns_[kComponents] = {};
  std::vector<uint64_t> tenant_ns_;  //!< tenant-major [tenant][component].
  std::vector<uint64_t> endpoint_idle_ns_;
  std::vector<uint64_t> endpoint_queue_ns_;
  std::vector<uint64_t> tenant_op_latency_ns_;
  uint64_t op_latency_ns_ = 0;
  uint64_t ops_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_OBS_ATTRIBUTION_H_
