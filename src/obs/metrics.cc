#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace hybridtier {
namespace {

/** Same deterministic number formatting as the trace writer. */
void AppendNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "0";
    return;
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    out << buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  size_t len = std::strlen(buf);
  while (len > 1 && buf[len - 1] == '0' && buf[len - 2] != '.') {
    buf[--len] = '\0';
  }
  out << buf;
}

void AppendQuoted(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

double MetricRegistry::Scalar::Current() const {
  if (counter) return static_cast<double>(counter->value());
  if (gauge) return gauge->value();
  if (probe) return probe();
  return 0.0;
}

MetricRegistry::Scalar* MetricRegistry::FindScalar(const std::string& name) {
  for (Scalar& scalar : scalars_) {
    if (scalar.name == name) return &scalar;
  }
  return nullptr;
}

const std::vector<double>* MetricRegistry::Series(
    const std::string& name) const {
  for (const Scalar& scalar : scalars_) {
    if (scalar.name == name) return &scalar.series;
  }
  return nullptr;
}

const HistogramMetric* MetricRegistry::FindHistogram(
    const std::string& name) const {
  for (const Histogram& histogram : histograms_) {
    if (histogram.name == name) return histogram.histogram.get();
  }
  return nullptr;
}

std::vector<std::string> MetricRegistry::ScalarNames() const {
  std::vector<std::string> names;
  names.reserve(scalars_.size());
  for (const Scalar& scalar : scalars_) names.push_back(scalar.name);
  return names;
}

Counter* MetricRegistry::AddCounter(const std::string& name) {
  if (Scalar* existing = FindScalar(name)) {
    HT_ASSERT(existing->counter != nullptr,
              "metric re-registered with a different type: ", name);
    return existing->counter.get();
  }
  Scalar scalar;
  scalar.name = name;
  scalar.counter = std::make_unique<Counter>();
  Counter* handle = scalar.counter.get();
  scalars_.push_back(std::move(scalar));
  return handle;
}

Gauge* MetricRegistry::AddGauge(const std::string& name) {
  if (Scalar* existing = FindScalar(name)) {
    HT_ASSERT(existing->gauge != nullptr,
              "metric re-registered with a different type: ", name);
    return existing->gauge.get();
  }
  Scalar scalar;
  scalar.name = name;
  scalar.gauge = std::make_unique<Gauge>();
  Gauge* handle = scalar.gauge.get();
  scalars_.push_back(std::move(scalar));
  return handle;
}

HistogramMetric* MetricRegistry::AddHistogram(const std::string& name) {
  for (Histogram& histogram : histograms_) {
    if (histogram.name == name) return histogram.histogram.get();
  }
  Histogram histogram;
  histogram.name = name;
  histogram.histogram = std::make_unique<HistogramMetric>();
  HistogramMetric* handle = histogram.histogram.get();
  histograms_.push_back(std::move(histogram));
  return handle;
}

void MetricRegistry::AddProbe(const std::string& name,
                              std::function<double()> probe) {
  if (Scalar* existing = FindScalar(name)) {
    existing->probe = std::move(probe);
    return;
  }
  Scalar scalar;
  scalar.name = name;
  scalar.probe = std::move(probe);
  scalars_.push_back(std::move(scalar));
}

void MetricRegistry::Snapshot(TimeNs now) {
  if (!times_ns_.empty() && times_ns_.back() == now) return;
  times_ns_.push_back(now);
  for (Scalar& scalar : scalars_) {
    scalar.series.push_back(scalar.Current());
  }
}

size_t HistogramMetric::MaxBucket() const {
  size_t max_bucket = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] > 0) max_bucket = i;
  }
  return max_bucket;
}

void MetricRegistry::WriteJsonObject(std::ostream& out) const {
  out << "{\n  \"times_ns\": [";
  for (size_t i = 0; i < times_ns_.size(); ++i) {
    if (i > 0) out << ",";
    out << times_ns_[i];
  }
  out << "],\n  \"series\": {";
  bool first = true;
  for (const Scalar& scalar : scalars_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    AppendQuoted(out, scalar.name);
    out << ": [";
    for (size_t i = 0; i < scalar.series.size(); ++i) {
      if (i > 0) out << ",";
      AppendNumber(out, scalar.series[i]);
    }
    out << "]";
  }
  out << "\n  },\n  \"final\": {";
  first = true;
  for (const Scalar& scalar : scalars_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    AppendQuoted(out, scalar.name);
    out << ": ";
    // Use the last snapshot, not a live read: probes may capture
    // objects already destroyed by serialization time.
    AppendNumber(out, scalar.series.empty() ? 0.0 : scalar.series.back());
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const Histogram& histogram : histograms_) {
    if (!first) out << ",";
    first = false;
    const HistogramMetric& h = *histogram.histogram;
    out << "\n    ";
    AppendQuoted(out, histogram.name);
    out << ": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
        << ", \"buckets\": [";
    const size_t top = h.count() > 0 ? h.MaxBucket() : 0;
    for (size_t i = 0; i <= top; ++i) {
      if (i > 0) out << ",";
      out << h.bucket(i);
    }
    out << "]}";
  }
  out << "\n  }\n}";
}

void MetricRegistry::WriteJson(std::ostream& out) const {
  WriteJsonObject(out);
  out << "\n";
}

void MetricRegistry::WriteCsv(std::ostream& out) const {
  out << "time_ns";
  for (const Scalar& scalar : scalars_) {
    out << "," << scalar.name;
  }
  out << "\n";
  for (size_t row = 0; row < times_ns_.size(); ++row) {
    out << times_ns_[row];
    for (const Scalar& scalar : scalars_) {
      out << ",";
      AppendNumber(out, row < scalar.series.size() ? scalar.series[row]
                                                   : 0.0);
    }
    out << "\n";
  }
}

}  // namespace hybridtier
