#include "obs/stage_profiler.h"

#include <cstdio>

namespace hybridtier {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kGeneration:
      return "generation";
    case Stage::kCache:
      return "cache";
    case Stage::kPolicy:
      return "policy";
    case Stage::kSampler:
      return "sampler";
    case Stage::kMigration:
      return "migration";
    case Stage::kAccounting:
      return "accounting";
    case Stage::kCount:
      break;
  }
  return "?";
}

void StageProfiler::Merge(const StageProfiler& other) {
  for (size_t i = 0; i < static_cast<size_t>(Stage::kCount); ++i) {
    stages_[i].wall_ns += other.stages_[i].wall_ns;
    stages_[i].events += other.stages_[i].events;
  }
  op_wall_ns_ += other.op_wall_ns_;
  op_accesses_ += other.op_accesses_;
  ops_ += other.ops_;
}

uint64_t StageProfiler::OtherNs() const {
  uint64_t attributed = 0;
  for (size_t i = 0; i < static_cast<size_t>(Stage::kCount); ++i) {
    attributed += stages_[i].wall_ns;
  }
  return op_wall_ns_ > attributed ? op_wall_ns_ - attributed : 0;
}

std::string StageProfiler::Report() const {
  std::string report;
  char line[160];
  if (op_accesses_ == 0) return "  (no sampled ops)\n";
  const double per_access =
      static_cast<double>(op_wall_ns_) / static_cast<double>(op_accesses_);
  std::snprintf(line, sizeof(line),
                "  sampled ops %llu, accesses %llu, %.1f ns/access total\n",
                static_cast<unsigned long long>(ops_),
                static_cast<unsigned long long>(op_accesses_), per_access);
  report += line;
  for (size_t i = 0; i < static_cast<size_t>(Stage::kCount); ++i) {
    const Stage stage = static_cast<Stage>(i);
    const StageTotals& totals = stages_[i];
    if (totals.events == 0) continue;
    const double ns = NsPerAccess(stage);
    std::snprintf(line, sizeof(line), "  %-11s %7.1f ns/access  (%4.1f%%)\n",
                  StageName(stage), ns,
                  per_access > 0.0 ? 100.0 * ns / per_access : 0.0);
    report += line;
  }
  const double other =
      static_cast<double>(OtherNs()) / static_cast<double>(op_accesses_);
  std::snprintf(line, sizeof(line), "  %-11s %7.1f ns/access  (%4.1f%%)\n",
                "other", other,
                per_access > 0.0 ? 100.0 * other / per_access : 0.0);
  report += line;
  return report;
}

}  // namespace hybridtier
