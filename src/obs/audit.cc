#include "obs/audit.h"

#include <algorithm>
#include <cstdio>

namespace hybridtier {

const char* MigrationReasonName(MigrationReason reason) {
  switch (reason) {
    case MigrationReason::kUnspecified:
      return "unspecified";
    case MigrationReason::kHotnessRank:
      return "hotness_rank";
    case MigrationReason::kCapacityDemand:
      return "capacity_demand";
    case MigrationReason::kWatermark:
      return "watermark";
    case MigrationReason::kQuotaEnforce:
      return "quota_enforce";
    case MigrationReason::kQuotaFill:
      return "quota_fill";
    case MigrationReason::kQuotaRotation:
      return "quota_rotation";
    case MigrationReason::kChurnDrain:
      return "churn_drain";
    case MigrationReason::kFaultEvacuation:
      return "fault_evacuation";
    case MigrationReason::kFaultSpill:
      return "fault_spill";
    case MigrationReason::kCount:
      break;
  }
  return "?";
}

DecisionAudit::DecisionAudit(const DecisionAuditConfig& config)
    : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.resize(config_.ring_capacity);
}

void DecisionAudit::Configure(uint64_t footprint_units) {
  footprint_units_ = footprint_units;
  epoch_ = 1;
  demote_stamp_.assign(footprint_units, 0);
  touch_epoch_.assign(footprint_units, 0);
  interval_touches_.assign(footprint_units, 0);
  last_hot_epoch_.assign(footprint_units, 0);
  hot_streak_.assign(footprint_units, 0);
  late_counted_.assign(footprint_units, 0);
  touched_units_.clear();
}

void DecisionAudit::RecordBatch(bool promotion, MigrationReason reason,
                                TimeNs now, uint32_t pages_moved,
                                uint32_t pages_requested) {
  ++total_batches_;
  const size_t r = static_cast<size_t>(reason);
  ++batches_[r];
  if (promotion) {
    promoted_pages_[r] += pages_moved;
  } else {
    demoted_pages_[r] += pages_moved;
  }
  if (ring_size_ == ring_.size()) ++dropped_records_;
  AuditRecord& record = ring_[ring_next_];
  record.time_ns = now;
  record.reason = reason;
  record.promotion = promotion;
  record.pages_moved = pages_moved;
  record.pages_requested = pages_requested;
  record.cooling_epoch = cooling_epochs_;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_size_ < ring_.size()) ++ring_size_;
}

void DecisionAudit::OnPromoted(PageId unit, TimeNs now) {
  (void)now;
  if (unit >= footprint_units_) return;
  demote_stamp_[unit] = 0;
  hot_streak_[unit] = 0;
  last_hot_epoch_[unit] = 0;
  late_counted_[unit] = 0;
}

void DecisionAudit::OnDemoted(PageId unit, TimeNs now) {
  if (unit >= footprint_units_) return;
  demote_stamp_[unit] = now + 1;  // Shifted so 0 stays "no stamp".
}

void DecisionAudit::OnSlowFill(PageId unit, TimeNs now) {
  if (unit >= footprint_units_) return;
  const TimeNs stamp = demote_stamp_[unit];
  if (stamp != 0) {
    if (now < (stamp - 1) + config_.premature_window_ns) {
      ++premature_demotions_;
    }
    // Inside the window the offense is counted; past it the stamp is
    // stale either way. One demotion yields at most one label.
    demote_stamp_[unit] = 0;
  }
  if (touch_epoch_[unit] != epoch_) {
    touch_epoch_[unit] = epoch_;
    interval_touches_[unit] = 0;
    touched_units_.push_back(unit);
  }
  ++interval_touches_[unit];
}

void DecisionAudit::AdvanceInterval(TimeNs now) {
  (void)now;
  for (const PageId unit : touched_units_) {
    if (interval_touches_[unit] < config_.hot_touch_min) continue;
    // A streak only continues across back-to-back intervals; a cold or
    // untouched interval in between resets it (the epoch check covers
    // both without visiting untouched units).
    hot_streak_[unit] = last_hot_epoch_[unit] == epoch_ - 1
                            ? static_cast<uint16_t>(hot_streak_[unit] + 1)
                            : 1;
    last_hot_epoch_[unit] = epoch_;
    if (hot_streak_[unit] >= config_.late_promotion_intervals &&
        !late_counted_[unit]) {
      ++late_promotions_;
      late_counted_[unit] = 1;  // Latched until the unit is promoted.
    }
  }
  touched_units_.clear();
  ++epoch_;
}

std::vector<AuditRecord> DecisionAudit::RingSnapshot() const {
  std::vector<AuditRecord> out;
  out.reserve(ring_size_);
  const size_t start =
      ring_size_ == ring_.size() ? ring_next_ : 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string DecisionAudit::Report() const {
  std::string report;
  char line[160];
  std::snprintf(line, sizeof(line),
                "  %-16s %10s %12s %12s\n", "reason", "batches",
                "promoted", "demoted");
  report += line;
  for (size_t r = 0; r < kReasons; ++r) {
    if (batches_[r] == 0) continue;
    std::snprintf(
        line, sizeof(line), "  %-16s %10llu %12llu %12llu\n",
        MigrationReasonName(static_cast<MigrationReason>(r)),
        static_cast<unsigned long long>(batches_[r]),
        static_cast<unsigned long long>(promoted_pages_[r]),
        static_cast<unsigned long long>(demoted_pages_[r]));
    report += line;
  }
  std::snprintf(
      line, sizeof(line),
      "  premature demotions %llu, late promotions %llu\n",
      static_cast<unsigned long long>(premature_demotions_),
      static_cast<unsigned long long>(late_promotions_));
  report += line;
  std::snprintf(
      line, sizeof(line),
      "  quota-truncated pages %llu, cooling epochs %llu, "
      "endpoint reorders %llu\n",
      static_cast<unsigned long long>(quota_truncated_pages_),
      static_cast<unsigned long long>(cooling_epochs_),
      static_cast<unsigned long long>(endpoint_reorders_));
  report += line;
  std::snprintf(
      line, sizeof(line),
      "  audit ring: %llu batches recorded, %llu overwritten\n",
      static_cast<unsigned long long>(total_batches_),
      static_cast<unsigned long long>(dropped_records_));
  report += line;
  return report;
}

}  // namespace hybridtier
