#include "multitenant/mux_workload.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/factory.h"

namespace hybridtier {

MuxWorkload::MuxWorkload(std::vector<Tenant> tenants)
    : tenants_(std::move(tenants)) {
  HT_ASSERT(!tenants_.empty(), "mux workload needs at least one tenant");

  // Lay tenants out back to back, each span rounded up to a 2 MiB
  // boundary so huge-page tracking units never straddle two tenants.
  // Fleet-sized muxes get an abridged display name; the per-tenant
  // region names stay exact (metrics and results key on those).
  const bool abridge_name = tenants_.size() > 8;
  std::map<std::string, uint32_t> name_uses;
  uint64_t base = 0;
  name_ = "mux(";
  for (uint32_t i = 0; i < tenants_.size(); ++i) {
    const Workload& workload = *tenants_[i].workload;
    TenantRegion region;
    region.name = workload.name();
    const uint32_t use = name_uses[region.name]++;
    if (use > 0) region.name += "#" + std::to_string(use);
    region.weight = tenants_[i].weight;
    region.base_page = base;
    region.footprint_pages = workload.footprint_pages();
    region.span_pages = (region.footprint_pages + kPagesPerHugePage - 1) /
                        kPagesPerHugePage * kPagesPerHugePage;
    region.windows = tenants_[i].windows;
    for (size_t w = 0; w < region.windows.size(); ++w) {
      const ResidencyWindow& window = region.windows[w];
      if (window.departure_ns != 0) {
        HT_ASSERT(window.departure_ns > window.arrival_ns, "tenant ",
                  region.name, " departs before it arrives");
      } else {
        HT_ASSERT(w + 1 == region.windows.size(), "tenant ", region.name,
                  ": only the last residency window may be open-ended");
      }
      if (w > 0) {
        HT_ASSERT(window.arrival_ns > region.windows[w - 1].departure_ns,
                  "tenant ", region.name,
                  " has overlapping or unordered residency windows");
      }
    }
    base += region.span_pages;
    if (!abridge_name || i < 4) {
      if (i > 0) name_ += "+";
      name_ += region.name;
    }
    // Tenants whose first window opens at t=0 (or who have no windows)
    // start in the rotation; the rest join when the clock reaches their
    // next window's arrival. Every remaining window edge goes into the
    // chronological schedule so the hot path compares the clock against
    // one cursor, never a per-tenant window scan.
    window_.push_back(0);
    if (region.windows.empty() || region.windows[0].arrival_ns == 0) {
      status_.push_back(Status::kActive);
      rotation_.push_back(i);
    } else {
      status_.push_back(Status::kPending);
    }
    for (size_t w = 0; w < region.windows.size(); ++w) {
      if (!(w == 0 && region.windows[w].arrival_ns == 0)) {
        window_edges_.push_back(
            WindowEdge{region.windows[w].arrival_ns, i, /*arrival=*/true});
      }
      if (region.windows[w].departure_ns != 0) {
        window_edges_.push_back(WindowEdge{region.windows[w].departure_ns,
                                           i, /*arrival=*/false});
      }
    }
    directory_.regions.push_back(std::move(region));
  }
  if (abridge_name) {
    name_ += "+...x" + std::to_string(tenants_.size());
  }
  name_ += ")";
  total_span_pages_ = base;
  std::sort(window_edges_.begin(), window_edges_.end(),
            [](const WindowEdge& a, const WindowEdge& b) {
              return std::tie(a.at, a.tenant, a.arrival) <
                     std::tie(b.at, b.tenant, b.arrival);
            });
}

void MuxWorkload::RemoveFromRotation(uint32_t tenant) {
  const auto it = std::find(rotation_.begin(), rotation_.end(), tenant);
  if (it == rotation_.end()) return;
  const size_t slot = static_cast<size_t>(it - rotation_.begin());
  rotation_.erase(it);
  if (rr_next_ > slot) --rr_next_;
}

void MuxWorkload::AdvanceTenant(uint32_t tenant, TimeNs now) {
  const std::vector<ResidencyWindow>& windows =
      directory_.regions[tenant].windows;
  // One pass may cross several edges of the same tenant (a clock jump
  // over a whole window): walk its window list until the next edge is
  // still ahead of `now`.
  while (status_[tenant] != Status::kDeparted && !windows.empty()) {
    const ResidencyWindow& window = windows[window_[tenant]];
    if (status_[tenant] == Status::kPending) {
      if (now < window.arrival_ns) break;
      // Re-arrivals resume the suspended op stream; a stream that
      // already ran dry is dropped again on its first NextOp.
      status_[tenant] = Status::kActive;
      rotation_.push_back(tenant);
      churn_events_.push_back(
          TenantChurnEvent{window.arrival_ns, tenant, /*arrival=*/true});
    }
    // A departure ends the window whether the tenant is mid-stream
    // (process killed) or already finished (its pages lingered).
    if (window.departure_ns == 0 || now < window.departure_ns) break;
    if (status_[tenant] == Status::kActive) RemoveFromRotation(tenant);
    churn_events_.push_back(
        TenantChurnEvent{window.departure_ns, tenant, /*arrival=*/false});
    ++window_[tenant];
    status_[tenant] = window_[tenant] < windows.size() ? Status::kPending
                                                       : Status::kDeparted;
  }
}

void MuxWorkload::UpdateActivation(TimeNs now) {
  // Keep the multiplexer's hottest path down to one comparison when no
  // edge is due (always, for windowless runs and after the last edge).
  if (edge_cursor_ >= window_edges_.size() ||
      now < window_edges_[edge_cursor_].at) {
    return;
  }
  const size_t first_new = churn_events_.size();
  while (edge_cursor_ < window_edges_.size() &&
         window_edges_[edge_cursor_].at <= now) {
    // A tenant whose later edges were already applied by an earlier pop
    // of this batch advances past them; its stale edges no-op here.
    AdvanceTenant(window_edges_[edge_cursor_].tenant, now);
    ++edge_cursor_;
  }
  // One batch can apply several edges of one tenant ahead of another
  // tenant's earlier edge; keep the log chronological.
  std::sort(churn_events_.begin() +
                static_cast<ptrdiff_t>(first_new),
            churn_events_.end(),
            [](const TenantChurnEvent& a, const TenantChurnEvent& b) {
              return std::tie(a.time_ns, a.tenant, a.arrival) <
                     std::tie(b.time_ns, b.tenant, b.arrival);
            });
}

bool MuxWorkload::NextOp(TimeNs now, OpTrace* op) {
  UpdateActivation(now);
  while (!rotation_.empty()) {
    if (rr_next_ >= rotation_.size()) rr_next_ = 0;
    const uint32_t tenant = rotation_[rr_next_];
    if (!tenants_[tenant].workload->NextOp(now, op)) {
      // Tenant ran to completion; drop it from the rotation (its pages
      // stay resident, as a terminated process's would until reclaim —
      // or until a departure window releases them).
      status_[tenant] = Status::kFinished;
      rotation_.erase(rotation_.begin() + static_cast<ptrdiff_t>(rr_next_));
      continue;
    }
    op->think_time_ns = 0;
    const TenantRegion& region = directory_.regions[tenant];
    const uint64_t base_addr = region.base_page * kPageSize;
    const uint64_t span_bytes = region.span_pages * kPageSize;
    for (MemoryAccess& access : op->accesses) {
      HT_ASSERT(access.addr < span_bytes, "tenant ", region.name,
                " emitted address ", access.addr,
                " outside its footprint");
      access.addr += base_addr;
    }
    last_tenant_ = tenant;
    ++rr_next_;
    return true;
  }

  // Nobody is runnable. If an arrival is still ahead, emit a pure idle
  // gap that carries the clock to it; otherwise the mux is done. Every
  // pending tenant's next arrival is an unconsumed edge, and edges are
  // chronological, so the first pending arrival at/after the cursor is
  // the earliest one — no fleet-wide scan.
  TimeNs next_arrival = 0;
  bool have_pending = false;
  for (size_t e = edge_cursor_; e < window_edges_.size(); ++e) {
    const WindowEdge& edge = window_edges_[e];
    if (edge.arrival && status_[edge.tenant] == Status::kPending) {
      next_arrival = edge.at;
      have_pending = true;
      break;
    }
  }
  if (!have_pending) return false;
  op->Clear();
  op->think_time_ns = next_arrival > now ? next_arrival - now : 1;
  return true;
}

double DefaultTenantScale(const std::string& id) {
  // Single-run defaults, capped at 1.0 so a handful of co-located
  // tenants still fits a quick run (only the graph kernels exceed it).
  return std::min(1.0, DefaultWorkloadScale(id));
}

std::unique_ptr<MuxWorkload> MakeMuxWorkload(
    const std::vector<TenantSpec>& specs, uint64_t seed) {
  HT_ASSERT(!specs.empty(), "tenant list is empty");
  std::vector<MuxWorkload::Tenant> tenants;
  tenants.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const TenantSpec& spec = specs[i];
    uint64_t tenant_seed = spec.seed;
    if (tenant_seed == 0) {
      uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      tenant_seed = SplitMix64Next(state);
    }
    const double scale =
        spec.scale >= 0 ? spec.scale : DefaultTenantScale(spec.workload_id);
    MuxWorkload::Tenant tenant;
    tenant.workload = MakeWorkload(spec.workload_id, scale, tenant_seed);
    tenant.weight = spec.weight;
    tenant.windows = spec.windows;
    tenants.push_back(std::move(tenant));
  }
  return std::make_unique<MuxWorkload>(std::move(tenants));
}

}  // namespace hybridtier
