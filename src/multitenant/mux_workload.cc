#include "multitenant/mux_workload.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/factory.h"

namespace hybridtier {

MuxWorkload::MuxWorkload(std::vector<Tenant> tenants)
    : tenants_(std::move(tenants)) {
  HT_ASSERT(!tenants_.empty(), "mux workload needs at least one tenant");

  // Lay tenants out back to back, each span rounded up to a 2 MiB
  // boundary so huge-page tracking units never straddle two tenants.
  std::map<std::string, uint32_t> name_uses;
  uint64_t base = 0;
  name_ = "mux(";
  for (uint32_t i = 0; i < tenants_.size(); ++i) {
    const Workload& workload = *tenants_[i].workload;
    TenantRegion region;
    region.name = workload.name();
    const uint32_t use = name_uses[region.name]++;
    if (use > 0) region.name += "#" + std::to_string(use);
    region.weight = tenants_[i].weight;
    region.base_page = base;
    region.footprint_pages = workload.footprint_pages();
    region.span_pages = (region.footprint_pages + kPagesPerHugePage - 1) /
                        kPagesPerHugePage * kPagesPerHugePage;
    base += region.span_pages;
    if (i > 0) name_ += "+";
    name_ += region.name;
    directory_.regions.push_back(std::move(region));
    active_.push_back(i);
  }
  name_ += ")";
  total_span_pages_ = base;
}

bool MuxWorkload::NextOp(TimeNs now, OpTrace* op) {
  while (!active_.empty()) {
    if (rr_next_ >= active_.size()) rr_next_ = 0;
    const uint32_t tenant = active_[rr_next_];
    if (!tenants_[tenant].workload->NextOp(now, op)) {
      // Tenant ran to completion; drop it from the rotation (its pages
      // stay resident, as a terminated process's would until reclaim).
      active_.erase(active_.begin() + rr_next_);
      continue;
    }
    const TenantRegion& region = directory_.regions[tenant];
    const uint64_t base_addr = region.base_page * kPageSize;
    const uint64_t span_bytes = region.span_pages * kPageSize;
    for (MemoryAccess& access : op->accesses) {
      HT_ASSERT(access.addr < span_bytes, "tenant ", region.name,
                " emitted address ", access.addr,
                " outside its footprint");
      access.addr += base_addr;
    }
    last_tenant_ = tenant;
    ++rr_next_;
    return true;
  }
  return false;
}

double DefaultTenantScale(const std::string& id) {
  // Single-run defaults, capped at 1.0 so a handful of co-located
  // tenants still fits a quick run (only the graph kernels exceed it).
  return std::min(1.0, DefaultWorkloadScale(id));
}

std::unique_ptr<MuxWorkload> MakeMuxWorkload(
    const std::vector<TenantSpec>& specs, uint64_t seed) {
  HT_ASSERT(!specs.empty(), "tenant list is empty");
  std::vector<MuxWorkload::Tenant> tenants;
  tenants.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const TenantSpec& spec = specs[i];
    uint64_t tenant_seed = spec.seed;
    if (tenant_seed == 0) {
      uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      tenant_seed = SplitMix64Next(state);
    }
    const double scale =
        spec.scale >= 0 ? spec.scale : DefaultTenantScale(spec.workload_id);
    MuxWorkload::Tenant tenant;
    tenant.workload = MakeWorkload(spec.workload_id, scale, tenant_seed);
    tenant.weight = spec.weight;
    tenants.push_back(std::move(tenant));
  }
  return std::make_unique<MuxWorkload>(std::move(tenants));
}

}  // namespace hybridtier
