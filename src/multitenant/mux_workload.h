#ifndef HYBRIDTIER_MULTITENANT_MUX_WORKLOAD_H_
#define HYBRIDTIER_MULTITENANT_MUX_WORKLOAD_H_

/**
 * @file
 * Multi-tenant workload multiplexer.
 *
 * `MuxWorkload` composes N tenant workloads into one interleaved access
 * stream, the shared-tier analogue of N applications running on one
 * host. Each tenant is remapped into a disjoint, 2 MiB-aligned region of
 * the shared address space (so tracking units never straddle tenants in
 * either page mode), and every operation is tagged with the tenant that
 * generated it via `TenantTagSource`. Interleaving is deterministic
 * round-robin in op space — the multi-programmed schedule an OS would
 * produce with one runnable thread per tenant — so same specs + seed
 * replay bit-identically.
 *
 * Tenants carry residency windows (`TenantSpec::windows`): a tenant
 * enters the rotation when the virtual clock reaches a window's arrival
 * and is removed (mid-op-stream, like a process being killed) at its
 * departure. A tenant with several windows *recurs* — after a departure
 * it waits for its next window and re-enters the rotation there,
 * resuming its op stream where it was suspended (the diurnal
 * co-location pattern; `TieredMemory::Release` makes its region
 * reusable in between). Transitions are surfaced as `TenantChurnEvent`s
 * so harnesses can mark them on timelines, and `tenant_active_at`
 * exposes the windows to the simulation (prefault and fairness
 * scoping). When no tenant is runnable but one arrives later, NextOp
 * emits a pure idle gap (`OpTrace::think_time_ns`) that advances the
 * clock to the next arrival.
 */

#include <memory>
#include <string>
#include <vector>

#include "multitenant/tenant.h"
#include "workloads/tenant_tag.h"
#include "workloads/workload.h"

namespace hybridtier {

/** One tenant arrival or departure observed by the multiplexer. */
struct TenantChurnEvent {
  TimeNs time_ns = 0;    //!< Scheduled window edge (arrival/departure).
  uint32_t tenant = 0;   //!< Tenant index in admission order.
  bool arrival = false;  //!< True for arrivals, false for departures.
};

/** N tenant workloads multiplexed into one tagged access stream. */
class MuxWorkload : public Workload, public TenantTagSource {
 public:
  /** One admitted tenant: its generator, weight, and residency windows. */
  struct Tenant {
    std::unique_ptr<Workload> workload;
    double weight = 1.0;
    /** Residency windows (see TenantSpec::windows); empty = whole run. */
    std::vector<ResidencyWindow> windows;
  };

  /** Lays out `tenants` in admission order; needs at least one. */
  explicit MuxWorkload(std::vector<Tenant> tenants);

  // Workload:
  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override { return total_span_pages_; }
  const char* name() const override { return name_.c_str(); }

  // TenantTagSource:
  uint32_t tenant_count() const override { return directory_.size(); }
  uint32_t last_tenant() const override { return last_tenant_; }
  const std::string& tenant_name(uint32_t tenant) const override {
    return directory_.regions[tenant].name;
  }
  PageRange tenant_units(uint32_t tenant, PageMode mode) const override {
    return directory_.regions[tenant].UnitRange(mode);
  }
  bool tenant_active_at(uint32_t tenant, TimeNs now) const override {
    return directory_.regions[tenant].ActiveAt(now);
  }
  double tenant_weight(uint32_t tenant) const override {
    return directory_.regions[tenant].weight;
  }
  std::vector<std::pair<TimeNs, TimeNs>> tenant_windows(
      uint32_t tenant) const override {
    std::vector<std::pair<TimeNs, TimeNs>> windows;
    windows.reserve(directory_.regions[tenant].windows.size());
    for (const ResidencyWindow& window : directory_.regions[tenant].windows) {
      windows.emplace_back(window.arrival_ns, window.departure_ns);
    }
    return windows;
  }

  /** The shared-tier layout (regions in admission order). */
  const TenantDirectory& directory() const { return directory_; }

  /** Arrivals/departures observed so far, in detection order. */
  const std::vector<TenantChurnEvent>& churn_events() const {
    return churn_events_;
  }

 private:
  /** Rotation membership of one tenant over its lifetime. */
  enum class Status : uint8_t {
    kPending,   //!< Next window not yet reached.
    kActive,    //!< In the round-robin rotation.
    kFinished,  //!< Workload ran to completion (pages stay resident).
    kDeparted,  //!< Every window closed; removed for good.
  };

  /**
   * One scheduled window edge. The constructor sorts every tenant's
   * remaining edges into one chronological schedule so the hot path
   * compares the clock against a single cursor instead of scanning all
   * tenants' window lists — O(1) when nothing is due, O(edges crossed)
   * when something is, regardless of fleet size.
   */
  struct WindowEdge {
    TimeNs at = 0;
    uint32_t tenant = 0;
    bool arrival = false;
  };

  /** Applies window edges the clock has crossed by `now`. */
  void UpdateActivation(TimeNs now);

  /** Walks `tenant`'s window list up to `now` (arrivals + departures). */
  void AdvanceTenant(uint32_t tenant, TimeNs now);

  /** Drops `tenant` from the rotation, fixing up the rotation cursor. */
  void RemoveFromRotation(uint32_t tenant);

  std::vector<Tenant> tenants_;
  TenantDirectory directory_;
  std::vector<Status> status_;
  std::vector<size_t> window_;      //!< Current/next window per tenant.
  std::vector<uint32_t> rotation_;  //!< Runnable tenants, rotation order.
  std::vector<TenantChurnEvent> churn_events_;
  std::vector<WindowEdge> window_edges_;  //!< All edges, chronological.
  size_t edge_cursor_ = 0;          //!< First edge still ahead.
  size_t rr_next_ = 0;              //!< Next rotation slot to serve.
  uint32_t last_tenant_ = 0;
  uint64_t total_span_pages_ = 0;
  std::string name_;
};

/**
 * Default footprint scale for workload `id` when admitted as a tenant.
 * Smaller than the single-run bench defaults since N tenants share one
 * simulated machine.
 */
double DefaultTenantScale(const std::string& id);

/**
 * Builds a MuxWorkload from parsed specs. Per-tenant seeds derive from
 * `seed` + the tenant index (unless the spec pins one), so co-located
 * instances of the same workload id still generate distinct streams.
 */
std::unique_ptr<MuxWorkload> MakeMuxWorkload(
    const std::vector<TenantSpec>& specs, uint64_t seed);

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_MUX_WORKLOAD_H_
