#ifndef HYBRIDTIER_MULTITENANT_MUX_WORKLOAD_H_
#define HYBRIDTIER_MULTITENANT_MUX_WORKLOAD_H_

/**
 * @file
 * Multi-tenant workload multiplexer.
 *
 * `MuxWorkload` composes N tenant workloads into one interleaved access
 * stream, the shared-tier analogue of N applications running on one
 * host. Each tenant is remapped into a disjoint, 2 MiB-aligned region of
 * the shared address space (so tracking units never straddle tenants in
 * either page mode), and every operation is tagged with the tenant that
 * generated it via `TenantTagSource`. Interleaving is deterministic
 * round-robin in op space — the multi-programmed schedule an OS would
 * produce with one runnable thread per tenant — so same specs + seed
 * replay bit-identically.
 */

#include <memory>
#include <string>
#include <vector>

#include "multitenant/tenant.h"
#include "workloads/tenant_tag.h"
#include "workloads/workload.h"

namespace hybridtier {

/** N tenant workloads multiplexed into one tagged access stream. */
class MuxWorkload : public Workload, public TenantTagSource {
 public:
  /** One admitted tenant: its generator and fair-share weight. */
  struct Tenant {
    std::unique_ptr<Workload> workload;
    double weight = 1.0;
  };

  /** Lays out `tenants` in admission order; needs at least one. */
  explicit MuxWorkload(std::vector<Tenant> tenants);

  // Workload:
  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override { return total_span_pages_; }
  const char* name() const override { return name_.c_str(); }

  // TenantTagSource:
  uint32_t tenant_count() const override { return directory_.size(); }
  uint32_t last_tenant() const override { return last_tenant_; }
  const std::string& tenant_name(uint32_t tenant) const override {
    return directory_.regions[tenant].name;
  }
  PageRange tenant_units(uint32_t tenant, PageMode mode) const override {
    return directory_.regions[tenant].UnitRange(mode);
  }

  /** The shared-tier layout (regions in admission order). */
  const TenantDirectory& directory() const { return directory_; }

 private:
  std::vector<Tenant> tenants_;
  TenantDirectory directory_;
  std::vector<uint32_t> active_;  //!< Unfinished tenants, rotation order.
  size_t rr_next_ = 0;            //!< Next rotation slot to serve.
  uint32_t last_tenant_ = 0;
  uint64_t total_span_pages_ = 0;
  std::string name_;
};

/**
 * Default footprint scale for workload `id` when admitted as a tenant.
 * Smaller than the single-run bench defaults since N tenants share one
 * simulated machine.
 */
double DefaultTenantScale(const std::string& id);

/**
 * Builds a MuxWorkload from parsed specs. Per-tenant seeds derive from
 * `seed` + the tenant index (unless the spec pins one), so co-located
 * instances of the same workload id still generate distinct streams.
 */
std::unique_ptr<MuxWorkload> MakeMuxWorkload(
    const std::vector<TenantSpec>& specs, uint64_t seed);

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_MUX_WORKLOAD_H_
