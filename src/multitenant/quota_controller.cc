#include "multitenant/quota_controller.h"

#include <algorithm>
#include <cmath>

namespace hybridtier {

std::vector<uint64_t> DivideProportional(const std::vector<double>& weights,
                                         const std::vector<uint64_t>& caps,
                                         uint64_t total) {
  const size_t n = weights.size();
  std::vector<uint64_t> quotas(n, 0);
  std::vector<bool> pinned(n, false);
  uint64_t remaining = total;

  for (;;) {
    double sum_weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (!pinned[i]) sum_weight += weights[i];
    }
    if (remaining == 0 || sum_weight <= 0.0) return quotas;

    // Pin every tenant whose proportional share overflows its cap.
    bool repinned = false;
    for (size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      const double ideal =
          static_cast<double>(remaining) * weights[i] / sum_weight;
      if (ideal >= static_cast<double>(caps[i])) {
        quotas[i] = caps[i];
        remaining -= std::min(remaining, caps[i]);
        pinned[i] = true;
        repinned = true;
      }
    }
    if (repinned) continue;

    // No overflow left: floor-allocate and hand the leftover units out
    // one by one in index order.
    uint64_t allocated = 0;
    for (size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      quotas[i] = static_cast<uint64_t>(
          std::floor(static_cast<double>(remaining) * weights[i] /
                     sum_weight));
      allocated += quotas[i];
    }
    uint64_t leftover = remaining - allocated;
    for (size_t i = 0; i < n && leftover > 0; ++i) {
      if (pinned[i] || quotas[i] >= caps[i]) continue;
      ++quotas[i];
      --leftover;
    }
    return quotas;
  }
}

namespace {

/** One chunk of a tenant's demand curve past its floor. */
struct DemandEvent {
  double utility = 0.0;   //!< weight * sampled hits per window per unit.
  uint32_t tenant = 0;
  uint32_t value = 0;     //!< Unweighted step value (tie-break).
  uint64_t units = 0;
};

}  // namespace

std::vector<uint64_t> MarginalUtilityQuotas(
    const std::vector<std::vector<GhostDemandStep>>& curves,
    const std::vector<double>& weights,
    const std::vector<uint64_t>& floors,
    const std::vector<uint64_t>& caps, uint64_t total) {
  const size_t n = weights.size();
  std::vector<uint64_t> quotas(n, 0);
  uint64_t remaining = total;

  // Guaranteed floors first, in index order (a tenant with weight 0 is
  // absent: no floor, no demand, no leftover share).
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0.0) continue;
    const uint64_t floor_units =
        std::min(std::min(floors[i], caps[i]), remaining);
    quotas[i] = floor_units;
    remaining -= floor_units;
  }
  if (remaining == 0) return quotas;

  // Demand past the floor, as (weighted marginal utility, chunk) events.
  // The floor already buys each tenant the top of its own curve, so the
  // first quota[i] curve units are skipped — the floor is not free extra
  // demand.
  std::vector<DemandEvent> events;
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0.0) continue;
    uint64_t covered = quotas[i];
    for (const GhostDemandStep& step : curves[i]) {
      uint64_t units = step.units;
      if (covered >= units) {
        covered -= units;
        continue;
      }
      units -= covered;
      covered = 0;
      events.push_back(DemandEvent{
          .utility = weights[i] * static_cast<double>(step.value),
          .tenant = static_cast<uint32_t>(i),
          .value = step.value,
          .units = units});
    }
  }

  // Water-filling: highest weighted utility first. The order is a pure
  // function of the curves, so growing `total` only extends the greedy
  // prefix — quotas are monotone in capacity.
  std::sort(events.begin(), events.end(),
            [](const DemandEvent& a, const DemandEvent& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.value > b.value;
            });
  for (const DemandEvent& event : events) {
    if (remaining == 0) break;
    const uint64_t headroom = caps[event.tenant] - quotas[event.tenant];
    const uint64_t take = std::min({event.units, headroom, remaining});
    quotas[event.tenant] += take;
    remaining -= take;
  }

  if (remaining > 0) {
    // Capacity beyond everyone's sampled demand: divide it by weight so
    // the tier is never left stranded (first-touch allocation will land
    // there regardless of what the curves predicted).
    std::vector<uint64_t> headroom(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (weights[i] > 0.0) headroom[i] = caps[i] - quotas[i];
    }
    const std::vector<uint64_t> extra =
        DivideProportional(weights, headroom, remaining);
    for (size_t i = 0; i < n; ++i) quotas[i] += extra[i];
  }
  return quotas;
}

}  // namespace hybridtier
