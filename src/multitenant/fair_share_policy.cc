#include "multitenant/fair_share_policy.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "multitenant/quota_controller.h"

namespace hybridtier {

namespace {

// Synthetic metadata line addresses (one region per structure, same
// convention as the baseline policies; 1<<50+ keeps clear of their maps).
constexpr uint64_t kQuotaTableBase = 1ULL << 50;   // Per-tenant quota rows.
constexpr uint64_t kSharePagemapBase = 1ULL << 51; // Enforcement scans.
constexpr uint64_t kGhostTableBase = 1ULL << 52;   // Shadow MRC counters.
// Per-tenant stride of the ghost table's synthetic line addresses.
constexpr uint64_t kGhostTenantStride = 1ULL << 32;

}  // namespace

QuotaMode ParseQuotaMode(const std::string& name) {
  if (name == "density") return QuotaMode::kDensity;
  if (name == "marginal") return QuotaMode::kMarginal;
  HT_FATAL("unknown quota mode '", name, "' (want density | marginal)");
}

const char* QuotaModeName(QuotaMode mode) {
  return mode == QuotaMode::kDensity ? "density" : "marginal";
}

/**
 * The migration gate handed to the base policy: promotions are filtered
 * by per-tenant quota headroom, demotions pass through with occupancy
 * tracking. All real work (and all stats) happens in the wrapped run's
 * engine; this object's own counters stay empty.
 */
class FairSharePolicy::QuotaGate : public MigrationEngine {
 public:
  QuotaGate(MigrationEngine* inner, FairSharePolicy* owner)
      : MigrationEngine(inner->memory(), inner->perf_model(), inner->mode()),
        inner_(inner),
        owner_(owner) {}

  TimeNs Promote(std::span<const PageId> pages, TimeNs now,
                 MigrationReason reason) override {
    return owner_->GatedPromote(pages, now, reason);
  }

  TimeNs Demote(std::span<const PageId> pages, TimeNs now,
                MigrationReason reason) override {
    return owner_->TrackedDemote(pages, now, reason);
  }

  /** The audit lives on the real engine; the base policy reaches it
   *  through the gate (e.g. for cooling-epoch stamps). */
  DecisionAudit* audit() const override { return inner_->audit(); }

 private:
  MigrationEngine* inner_;
  FairSharePolicy* owner_;
};

FairSharePolicy::FairSharePolicy(std::unique_ptr<TieringPolicy> base,
                                 TenantDirectory directory,
                                 FairShareConfig config)
    : base_(std::move(base)),
      directory_(std::move(directory)),
      config_(config) {
  HT_ASSERT(base_ != nullptr, "fair-share wrapper needs a base policy");
  HT_ASSERT(!directory_.regions.empty(),
            "fair-share wrapper needs at least one tenant");
  name_ = std::string("FairShare(") + base_->name() + ")";
}

FairSharePolicy::~FairSharePolicy() = default;

void FairSharePolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);

  // The directory must tile the whole run footprint — anything else
  // means the policy was paired with the wrong workload.
  const PageRange first =
      directory_.regions.front().UnitRange(context.mode);
  const PageRange last = directory_.regions.back().UnitRange(context.mode);
  HT_ASSERT(first.begin == 0 && last.end == context.footprint_units,
            "tenant directory covers units [", first.begin, ", ", last.end,
            ") but the run footprint is ", context.footprint_units);

  const uint32_t n = directory_.size();
  quota_.assign(n, 0);
  static_quota_.assign(n, 0);
  fast_units_.assign(n, 0);
  window_fast_samples_.assign(n, 0);
  window_slow_samples_.assign(n, 0);
  demand_ema_.assign(n, 0.0);
  gated_promotions_.assign(n, 0);
  enforced_demotions_.assign(n, 0);
  fill_promotions_.assign(n, 0);
  released_units_.assign(n, 0);
  batch_admits_.assign(n, 0);
  candidates_.assign(n, {});
  pending_pages_.assign(n, {});
  shadow_samples_.assign(n, 0);
  marginal_utility_.assign(n, 0.0);
  grace_until_ns_.assign(n, 0);
  occupancy_ready_ = false;
  endpoint_down_.assign(context.memory->endpoint_count(), 0);
  any_endpoint_down_ = false;
  // Endpoint awareness needs a timing model to read and more than one
  // endpoint to distinguish; otherwise every unit costs the same and
  // the cost-scaled rankings would just be the blind ones.
  endpoint_aware_active_ = config_.endpoint_aware &&
                           context.perf != nullptr &&
                           context.memory->endpoint_count() > 1;
  next_rebalance_ns_ = config_.rebalance_interval_ns;

  // Trace tracks: one controller track for rebalance decisions, one
  // track per tenant for churn edges and quota awards. Registration
  // order is the fixed tenant order, so tids are deterministic.
  trace_ = context.trace;
  tenant_track_.assign(n, 0);
  drain_start_ns_.assign(n, 0);
  if (trace_ != nullptr) {
    controller_track_ = trace_->Track("quota/controller");
    for (uint32_t t = 0; t < n; ++t) {
      tenant_track_[t] =
          trace_->Track("quota/" + directory_.regions[t].name);
    }
  }

  // The shadow MRC estimate exists only when the marginal controller
  // can use it: density runs keep their metadata footprint unchanged.
  // Tenants whose span exceeds the sample budget get SHARDS spatial
  // sampling at the smallest rate that fits, so a fleet of million-unit
  // tenants carries kilobytes of ghost state each, not megabytes.
  ghost_.clear();
  if (config_.rebalance && config_.quota_mode == QuotaMode::kMarginal) {
    ghost_.reserve(n);
    for (uint32_t t = 0; t < n; ++t) {
      const uint64_t span =
          directory_.regions[t].UnitRange(context.mode).size();
      ghost_.emplace_back(
          span, GhostMrc::SampleShiftFor(span, config_.ghost_sample_budget));
    }
  }

  // Residency-window state at t=0; later edges apply at the tick that
  // crosses them (ApplyChurn). The full edge schedule is precomputed
  // here — sorted by time, consumed by a cursor — so churn bookkeeping
  // never rescans the fleet.
  churn_state_.assign(n, kChurnPending);
  window_index_.assign(n, 0);
  drain_cursor_.assign(n, 0);
  active_.clear();
  active_index_.assign(n, kNoSlot);
  draining_.clear();
  draining_index_.assign(n, kNoSlot);
  churn_edges_.clear();
  churn_cursor_ = 0;
  churn_edge_visits_ = 0;
  rebalance_tenant_visits_ = 0;
  enforce_tenant_visits_ = 0;
  fill_tenant_visits_ = 0;
  for (uint32_t t = 0; t < n; ++t) {
    if (directory_.regions[t].ActiveAt(0)) {
      churn_state_[t] = kChurnActive;
      AddActive(t);
    }
    for (const ResidencyWindow& window : directory_.regions[t].windows) {
      if (window.arrival_ns > 0) {
        churn_edges_.push_back(ChurnEdge{window.arrival_ns, t});
      }
      if (window.departure_ns > 0) {
        churn_edges_.push_back(ChurnEdge{window.departure_ns, t});
      }
    }
  }
  std::sort(churn_edges_.begin(), churn_edges_.end(),
            [](const ChurnEdge& a, const ChurnEdge& b) {
              return a.at != b.at ? a.at < b.at : a.tenant < b.tenant;
            });

  ComputeStaticQuotas();
  quota_ = static_quota_;

  // The base policy sees the same context, with migrations rerouted
  // through the quota gate.
  gate_ = std::make_unique<QuotaGate>(context.migration, this);
  PolicyContext gated = context;
  gated.migration = gate_.get();
  base_->Bind(gated);
}

bool FairSharePolicy::EnsureOccupancy() {
  if (occupancy_ready_) return false;
  for (uint32_t t = 0; t < directory_.size(); ++t) {
    const PageRange range = directory_.regions[t].UnitRange(context().mode);
    uint64_t count = 0;
    memory().ScanResident(range.begin, range.size(), Tier::kFast,
                          [&count](PageId) { ++count; });
    fast_units_[t] = count;
  }
  occupancy_ready_ = true;
  return true;
}

void FairSharePolicy::AddActive(uint32_t tenant) {
  if (active_index_[tenant] != kNoSlot) return;
  active_index_[tenant] = static_cast<uint32_t>(active_.size());
  active_.push_back(tenant);
}

void FairSharePolicy::RemoveActive(uint32_t tenant) {
  const uint32_t slot = active_index_[tenant];
  if (slot == kNoSlot) return;
  const uint32_t moved = active_.back();
  active_[slot] = moved;
  active_index_[moved] = slot;
  active_.pop_back();
  active_index_[tenant] = kNoSlot;
}

void FairSharePolicy::AddDraining(uint32_t tenant) {
  if (draining_index_[tenant] != kNoSlot) return;
  draining_index_[tenant] = static_cast<uint32_t>(draining_.size());
  draining_.push_back(tenant);
}

void FairSharePolicy::RemoveDraining(uint32_t tenant) {
  const uint32_t slot = draining_index_[tenant];
  if (slot == kNoSlot) return;
  const uint32_t moved = draining_.back();
  draining_[slot] = moved;
  draining_index_[moved] = slot;
  draining_.pop_back();
  draining_index_[tenant] = kNoSlot;
}

void FairSharePolicy::ComputeStaticQuotas() {
  // Pending and departed tenants hold no capacity: their weight drops
  // out of the division, so the active tenants absorb the whole tier.
  // Their static_quota_ entries were zeroed at the state transition, so
  // the division runs over the compact active set only.
  const size_t m = active_.size();
  scratch_demand_.assign(m, 0.0);
  scratch_caps_.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t t = active_[i];
    scratch_demand_[i] = directory_.regions[t].weight;
    scratch_caps_[i] = directory_.regions[t].UnitRange(context().mode).size();
  }
  const std::vector<uint64_t> shares = DivideProportional(
      scratch_demand_, scratch_caps_, EffectiveFastCapacity());
  for (size_t i = 0; i < m; ++i) static_quota_[active_[i]] = shares[i];
}

uint64_t FairSharePolicy::EffectiveFastCapacity() const {
  const uint64_t cap = context().fast_capacity_units;
  if (!any_endpoint_down_) [[likely]] return cap;
  uint64_t stranded = 0;
  for (uint32_t e = 0; e < endpoint_down_.size(); ++e) {
    if (endpoint_down_[e]) stranded += memory().EndpointHomedFastResident(e);
  }
  return cap - std::min(cap, stranded);
}

void FairSharePolicy::OnEndpointHealth(uint32_t endpoint,
                                       EndpointHealth state, TimeNs now) {
  if (endpoint < endpoint_down_.size()) {
    endpoint_down_[endpoint] = state == EndpointHealth::kDown ? 1 : 0;
  }
  any_endpoint_down_ = false;
  for (const uint8_t down : endpoint_down_) {
    if (down) any_endpoint_down_ = true;
  }
  // Re-plan immediately over the effective capacity: the static quotas
  // shrink/grow with the stranded share, and a full re-division at the
  // transition instant replaces a thrashing sequence of enforcement
  // batches spread over the following rebalance window.
  EnsureOccupancy();
  ComputeStaticQuotas();
  if (config_.rebalance) Rebalance(now);
  else quota_ = static_quota_;
  if (trace_ != nullptr) {
    trace_->Instant(controller_track_, "endpoint_health", now,
                    {{"endpoint", static_cast<double>(endpoint)},
                     {"state", static_cast<double>(state)},
                     {"effective_capacity",
                      static_cast<double>(EffectiveFastCapacity())}});
  }
  base_->OnEndpointHealth(endpoint, state, now);
}

void FairSharePolicy::OnExternalMigration(TimeNs now) {
  occupancy_ready_ = false;
  base_->OnExternalMigration(now);
}

bool FairSharePolicy::CheckInvariants(std::string* error) const {
  // Quotas must never promise more than the (effective) tier, and a
  // tenant can never be awarded more than its own region span.
  uint64_t quota_total = 0;
  for (const uint32_t t : active_) {
    const uint64_t span =
        directory_.regions[t].UnitRange(context().mode).size();
    if (quota_[t] > span) {
      *error = detail::StrCat("tenant ", t, " quota ", quota_[t],
                              " exceeds its region span ", span);
      return false;
    }
    quota_total += quota_[t];
  }
  if (quota_total > context().fast_capacity_units) {
    *error = detail::StrCat("active quotas sum to ", quota_total,
                            " units > fast capacity ",
                            context().fast_capacity_units);
    return false;
  }
  // The incremental occupancy mirror must match a fresh region recount
  // whenever it claims to be in sync (external migrations invalidate
  // it; the next EnsureOccupancy rescan re-seeds it).
  if (occupancy_ready_) {
    for (const uint32_t t : active_) {
      const PageRange range =
          directory_.regions[t].UnitRange(context().mode);
      uint64_t count = 0;
      memory().ScanResident(range.begin, range.size(), Tier::kFast,
                            [&count](PageId) { ++count; });
      if (count != fast_units_[t]) {
        *error = detail::StrCat("tenant ", t, " occupancy mirror ",
                                fast_units_[t], " diverges from recount ",
                                count);
        return false;
      }
    }
  }
  return true;
}

bool FairSharePolicy::AdvanceTenantWindows(uint32_t t, TimeNs now) {
  const std::vector<ResidencyWindow>& windows = directory_.regions[t].windows;
  if (windows.empty()) return false;  // Resident for the whole run.
  bool changed = false;
  // A clock jump can cross several of a tenant's window edges at once;
  // walk its window list until the next edge is still ahead. A draining
  // tenant normally blocks here — its next window cannot open until the
  // paced reclaim has released the region (DrainDeparting advances it).
  while (churn_state_[t] != kChurnDeparted) {
    if (churn_state_[t] == kChurnDraining) {
      // The pace yields when it must: if the tenant's next window has
      // already opened, flush the remainder now (the legacy one-shot
      // teardown) so re-admission never runs against a half-released
      // region the drain is still demoting.
      const size_t next = window_index_[t] + 1;
      if (next >= windows.size() || now < windows[next].arrival_ns) {
        break;
      }
      ForceFinishDrain(t, now);
      changed = true;
      continue;  // Now kChurnPending at the next window.
    }
    const ResidencyWindow& window = windows[window_index_[t]];
    if (churn_state_[t] == kChurnPending) {
      if (now < window.arrival_ns) break;
      churn_state_[t] = kChurnActive;
      AddActive(t);
      changed = true;
      if (trace_ != nullptr) {
        trace_->Instant(tenant_track_[t], "arrival", now,
                        {{"window", static_cast<double>(window_index_[t])}});
      }
      if (config_.arrival_grace > 0.0) {
        // Warm-up grace: the newcomer has no demand history, so the
        // first rebalance would drop it to the min_share floor (the
        // post-arrival fairness dip fig_tenant_churn measures). Raise
        // its floor for one window and seed its demand EMA from the
        // incumbents' weighted average, so it bids as an average
        // tenant until its own samples arrive. Re-arrivals get the
        // same grace: their demand state was reset at release.
        grace_until_ns_[t] = now + config_.rebalance_interval_ns;
        double sum_weight = 0.0;
        double sum_weighted_ema = 0.0;
        for (const uint32_t s : active_) {
          if (s == t) continue;
          const double w = directory_.regions[s].weight;
          sum_weight += w;
          sum_weighted_ema += w * demand_ema_[s];
        }
        if (sum_weight > 0.0) {
          demand_ema_[t] = sum_weighted_ema / sum_weight;
        }
      }
    }
    if (window.departure_ns == 0 || now < window.departure_ns) break;
    // Departure: the tenant stops holding quota immediately (the
    // survivors absorb its capacity this tick) and enters the paced
    // reclaim drain; the region is released when the drain finishes.
    churn_state_[t] = kChurnDraining;
    RemoveActive(t);
    AddDraining(t);
    quota_[t] = 0;
    static_quota_[t] = 0;
    marginal_utility_[t] = 0.0;
    window_fast_samples_[t] = 0;
    window_slow_samples_[t] = 0;
    drain_cursor_[t] = directory_.regions[t].UnitRange(context().mode).begin;
    drain_start_ns_[t] = now;
    changed = true;
    if (trace_ != nullptr) {
      trace_->Instant(tenant_track_[t], "departure", now,
                      {{"fast_units", static_cast<double>(fast_units_[t])}});
    }
  }
  return changed;
}

void FairSharePolicy::ApplyChurn(TimeNs now) {
  // O(1) when no edge is due: the schedule is sorted and the cursor
  // only moves forward.
  if (churn_cursor_ >= churn_edges_.size() ||
      now < churn_edges_[churn_cursor_].at) {
    return;
  }
  bool changed = false;
  while (churn_cursor_ < churn_edges_.size() &&
         churn_edges_[churn_cursor_].at <= now) {
    const uint32_t t = churn_edges_[churn_cursor_].tenant;
    ++churn_cursor_;
    ++churn_edge_visits_;
    // A tenant whose earlier edge already advanced it past this one
    // makes this pop a no-op (AdvanceTenantWindows walks every crossed
    // edge at once after a clock jump).
    changed = AdvanceTenantWindows(t, now) || changed;
  }
  if (changed) {
    // Re-divide the tier over the tenants now present. Jumping straight
    // to the new static split hands a departure's capacity to the
    // survivors this tick; the scheduled rebalance then re-applies the
    // surviving tenants' demand EMAs on top.
    ComputeStaticQuotas();
    for (const uint32_t t : active_) quota_[t] = static_quota_[t];
  }
}

void FairSharePolicy::DrainDeparting(TimeNs now) {
  // Walk the dense draining list; FinishRelease removes the tenant by
  // swapping the back into its slot, so the index only advances when
  // the slot's occupant survived the visit.
  for (size_t i = 0; i < draining_.size();) {
    const uint32_t t = draining_[i];
    if (fast_units_[t] > 0) {
      // Reclaim writeback, paced: demote up to release_batch fast
      // units per tick (0 = the legacy whole-share flush), in address
      // order — hotness ranking is pointless for a dead tenant's
      // pages, sequential reclaim is what an exit path does. The scan
      // resumes at the drain cursor, so each pagemap byte is walked
      // once per drain instead of once per tick. Nothing can land new
      // fast units behind the cursor: the tenant is out of the mux
      // rotation and its zero quota gates every promotion path.
      const PageRange range =
          directory_.regions[t].UnitRange(context().mode);
      const uint64_t batch = config_.release_batch == 0
                                 ? range.size()
                                 : config_.release_batch;
      victims_.clear();
      PageId unit = drain_cursor_[t];
      for (; unit < range.end && victims_.size() < batch; ++unit) {
        sink().Touch(kSharePagemapBase + (unit / 8) * kCacheLineSize);
        if (memory().IsResident(unit) &&
            memory().TierOf(unit) == Tier::kFast) {
          victims_.push_back(unit);
        }
      }
      drain_cursor_[t] = unit;
      HT_ASSERT(!victims_.empty() || fast_units_[t] == 0 ||
                    unit < range.end,
                "drain cursor passed tenant ", t, "'s region with ",
                fast_units_[t], " fast units unaccounted");
      if (!victims_.empty()) {
        TrackedDemote(victims_, now, MigrationReason::kChurnDrain);
      }
    }
    if (fast_units_[t] == 0) {
      FinishRelease(t, now);  // Removes t from draining_.
    } else {
      ++i;
    }
  }
}

void FairSharePolicy::ForceFinishDrain(uint32_t tenant, TimeNs now) {
  const PageRange range =
      directory_.regions[tenant].UnitRange(context().mode);
  victims_.clear();
  memory().ScanResident(range.begin, range.size(), Tier::kFast,
                        [this](PageId unit) {
                          sink().Touch(kSharePagemapBase +
                                       (unit / 8) * kCacheLineSize);
                          victims_.push_back(unit);
                        });
  if (!victims_.empty()) {
    TrackedDemote(victims_, now, MigrationReason::kChurnDrain);
  }
  FinishRelease(tenant, now);
}

void FairSharePolicy::FinishRelease(uint32_t tenant, TimeNs now) {
  HT_ASSERT(fast_units_[tenant] == 0, "tenant ", tenant, " still holds ",
            fast_units_[tenant], " fast units at release");
  // The region returns to the free pools, as exit reclaim would free a
  // dead process's memory; a later residency window re-allocates it
  // from scratch via first touches.
  const PageRange range =
      directory_.regions[tenant].UnitRange(context().mode);
  const uint64_t released = memory().Release(range);
  released_units_[tenant] += released;
  if (trace_ != nullptr) {
    // The reclaim-drain window: departure edge to region release.
    trace_->Span(tenant_track_[tenant], "drain", drain_start_ns_[tenant],
                 now, {{"released", static_cast<double>(released)}});
  }
  window_fast_samples_[tenant] = 0;
  window_slow_samples_[tenant] = 0;
  demand_ema_[tenant] = 0.0;
  candidates_[tenant].clear();
  pending_pages_[tenant].clear();
  marginal_utility_[tenant] = 0.0;
  grace_until_ns_[tenant] = 0;
  if (!ghost_.empty()) {
    ghost_[tenant].Reset();
    shadow_samples_[tenant] = 0;
  }
  // Advance to the tenant's next residency window, if it has one. No
  // quota re-division here: the tenant already lost its quota at the
  // departure tick, and finishing the drain changes nothing for the
  // survivors.
  RemoveDraining(tenant);
  ++window_index_[tenant];
  churn_state_[tenant] =
      window_index_[tenant] < directory_.regions[tenant].windows.size()
          ? kChurnPending
          : kChurnDeparted;
}

uint64_t FairSharePolicy::RebalanceFloor(uint32_t tenant,
                                         TimeNs now) const {
  double fraction = config_.min_share;
  // Post-arrival grace: guarantee (a fraction of) the static share for
  // the first window while the demand estimate warms up.
  if (now < grace_until_ns_[tenant]) {
    fraction = std::max(fraction, config_.arrival_grace);
  }
  return static_cast<uint64_t>(
      static_cast<double>(static_quota_[tenant]) * std::min(fraction, 1.0));
}

void FairSharePolicy::RebalanceDensity(TimeNs now) {
  // Hit density: sampled fast-tier hits per resident unit, smoothed by
  // a halving EMA over rebalance windows (the cooling idiom the paper's
  // trackers use: responsive to shifts, stable against one noisy
  // window). Density is value-per-unit of capacity, so capacity flows
  // to tenants that actually reuse it — raw access volume would let a
  // streaming tenant with no reuse out-bid every hot set. (Density is
  // still blind to *marginal* value: a streamer's few resident pages
  // can look dense while extra capacity would gain it nothing — the
  // case the marginal mode handles.)
  const size_t m = active_.size();
  double total_demand = 0.0;
  for (const uint32_t t : active_) {
    const double density =
        static_cast<double>(window_fast_samples_[t]) /
        static_cast<double>(std::max<uint64_t>(1, fast_units_[t]));
    demand_ema_[t] = demand_ema_[t] * 0.5 + density;
    total_demand += demand_ema_[t];
    sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
  }
  if (total_demand <= 0.0) return;

  // Guaranteed floor first, then the rest in proportion to
  // weight-scaled hit density. Inactive tenants' quotas were zeroed at
  // their departure transition; the division is over the active set.
  scratch_demand_.assign(m, 0.0);
  scratch_caps_.assign(m, 0);
  uint64_t floor_total = 0;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t t = active_[i];
    const uint64_t span =
        directory_.regions[t].UnitRange(context().mode).size();
    const uint64_t floor_units = std::min(span, RebalanceFloor(t, now));
    quota_[t] = floor_units;
    floor_total += floor_units;
    scratch_caps_[i] = span - floor_units;
    scratch_demand_[i] = directory_.regions[t].weight * demand_ema_[t];
  }
  const uint64_t fast_cap = EffectiveFastCapacity();
  const std::vector<uint64_t> extra = DivideProportional(
      scratch_demand_, scratch_caps_,
      fast_cap - std::min(fast_cap, floor_total));
  for (size_t i = 0; i < m; ++i) quota_[active_[i]] += extra[i];
}

void FairSharePolicy::RebalanceMarginal(TimeNs now) {
  // Water-filling on the ghost estimates: each tenant bids its shadow
  // demand curve ("my q-th hottest unit would contribute v sampled hits
  // per window") and capacity flows to the highest weighted marginal
  // utility above the guaranteed floors. Unlike hit density, the bid of
  // a streaming tenant collapses past its tiny reuse set — its curve is
  // flat at 1 — so it cannot out-bid a hot set for capacity it would
  // waste, however many accesses it issues. The division runs over the
  // compact active set: inactive tenants' quotas are already zero.
  const size_t m = active_.size();
  std::vector<std::vector<GhostDemandStep>> curves(m);
  scratch_demand_.assign(m, 0.0);
  scratch_floors_.assign(m, 0);
  scratch_caps_.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t t = active_[i];
    const uint64_t span =
        directory_.regions[t].UnitRange(context().mode).size();
    scratch_demand_[i] = directory_.regions[t].weight;
    scratch_caps_[i] = span;
    scratch_floors_[i] = std::min(span, RebalanceFloor(t, now));
    ghost_[t].AppendDemandSteps(&curves[i]);
    sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
  }
  const std::vector<uint64_t> shares =
      MarginalUtilityQuotas(curves, scratch_demand_, scratch_floors_,
                            scratch_caps_, EffectiveFastCapacity());
  for (size_t i = 0; i < m; ++i) {
    const uint32_t t = active_[i];
    quota_[t] = shares[i];
    // The water level this tenant bid at: hits/window of its next unit
    // past the awarded quota. Then cool — the ghost is a halving EMA
    // over rebalance windows, like the density EMA it replaces.
    marginal_utility_[t] =
        static_cast<double>(ghost_[t].RankValue(quota_[t]));
    ghost_[t].CoolByHalving();
  }
}

void FairSharePolicy::Rebalance(TimeNs now) {
  // Every loop below walks the dense active set — one rebalance costs
  // O(active tenants), whatever the fleet size.
  const size_t m = active_.size();
  rebalance_tenant_visits_ += m;
  // Sampled fast-tier fraction this window, for rotation (both modes);
  // indexed by active-set position.
  scratch_fraction_.assign(m, 1.0);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t t = active_[i];
    const uint64_t window_total =
        window_fast_samples_[t] + window_slow_samples_[t];
    if (window_total > 0) {
      scratch_fraction_[i] = static_cast<double>(window_fast_samples_[t]) /
                             static_cast<double>(window_total);
    }
  }

  if (config_.quota_mode == QuotaMode::kMarginal) {
    RebalanceMarginal(now);
  } else {
    RebalanceDensity(now);
  }
  // Windows are per-rebalance; absent tenants' were zeroed at their
  // departure transition, so a t=0-departed slot never skews a later
  // division.
  for (const uint32_t t : active_) {
    window_fast_samples_[t] = 0;
    window_slow_samples_[t] = 0;
  }

  if (trace_ != nullptr) {
    // The re-division decision: one controller instant, plus each
    // active tenant's awarded quota (and its water-filling bid in
    // marginal mode) on its own track.
    trace_->Instant(controller_track_, "rebalance", now,
                    {{"fast_capacity",
                      static_cast<double>(EffectiveFastCapacity())}});
    for (const uint32_t t : active_) {
      trace_->Instant(tenant_track_[t], "quota", now,
                      {{"quota_units", static_cast<double>(quota_[t])},
                       {"fast_units", static_cast<double>(fast_units_[t])},
                       {"marginal_utility", marginal_utility_[t]}});
    }
  }

  // Rotate tenants whose placement is visibly bad: most of their
  // sampled accesses missed the fast tier even though they sit at (or
  // above) their fill limit, so the resident mix — not the quota — is
  // the problem. Demoting to the fill limit gives the filler room to
  // swap the sampled-hot pages in; a tenant with a good mix is left
  // alone (no churn).
  for (size_t i = 0; i < m; ++i) {
    const uint32_t t = active_[i];
    if (scratch_fraction_[i] < config_.rotate_below) {
      if (trace_ != nullptr) {
        trace_->Instant(tenant_track_[t], "rotate", now,
                        {{"fast_fraction", scratch_fraction_[i]}});
      }
      DemoteToTarget(t, FillLimit(t), now, MigrationReason::kQuotaRotation);
    }
  }
}

uint64_t FairSharePolicy::FillLimit(uint32_t tenant) const {
  const uint64_t margin = static_cast<uint64_t>(
      static_cast<double>(quota_[tenant]) * config_.fill_margin);
  return quota_[tenant] - std::min(quota_[tenant], margin);
}

uint64_t FairSharePolicy::EndpointCostOf(PageId unit, TimeNs now) const {
  if (!endpoint_aware_active_) return 1;
  const uint32_t endpoint = memory().EndpointOf(unit);
  return static_cast<uint64_t>(context().perf->EndpointIdleLatency(endpoint)) +
         static_cast<uint64_t>(context().perf->EndpointBacklog(endpoint, now));
}

void FairSharePolicy::DemoteToTarget(uint32_t t, uint64_t target,
                                     TimeNs now, MigrationReason reason) {
  if (fast_units_[t] <= target) return;
  const uint64_t excess =
      std::min(fast_units_[t] - target, config_.max_enforce_batch);

  // Find the tenant's fast-resident units (the pagemap walk every
  // watermark demoter performs); the filler and the base policy bring
  // the hot subset back within quota.
  const PageRange range = directory_.regions[t].UnitRange(context().mode);
  victims_.clear();
  memory().ScanResident(range.begin, range.size(), Tier::kFast,
                        [this](PageId unit) {
                          sink().Touch(kSharePagemapBase +
                                       (unit / 8) * kCacheLineSize);
                          victims_.push_back(unit);
                        });
  const uint64_t take = std::min<uint64_t>(excess, victims_.size());
  if (take == 0) return;
  if (take < victims_.size()) {
    // Coldest first, by the base policy's own hotness estimate (ties in
    // address order, so the choice is deterministic). Demoting in plain
    // address order would evict the hot pages whenever they sit at the
    // scanned end — the base policy promotes them right back, and the
    // swap repeats every enforcement pass (rotation churn).
    victim_rank_.clear();
    victim_rank_.reserve(victims_.size());
    for (const PageId unit : victims_) {
      const uint64_t hotness = base_->HotnessOf(unit);
      // Endpoint-aware: hotness stays the primary key (demoting a
      // strictly hotter unit to spare a colder one always loses more
      // hits than any endpoint gap saves), with the cost of the
      // endpoint the unit would land on (idle latency + backlog) as
      // the tie-breaker — among equally-hot units, the one bound for a
      // cheap device leaves first and the one bound for a congested or
      // distant one is the last out of the fast tier. Hotness is
      // bucketed coarsely, so ties are the common case and the
      // steering bite is real. Blind mode keeps the exact legacy
      // hotness key.
      victim_rank_.emplace_back(
          endpoint_aware_active_
              ? (hotness << 16) +
                    std::min<uint64_t>(EndpointCostOf(unit, now), 0xffff)
              : hotness,
          unit);
    }
    // Only the coldest `take` need ordering; the rest stay resident.
    std::partial_sort(victim_rank_.begin(), victim_rank_.begin() + take,
                      victim_rank_.end());
    victims_.clear();
    for (uint64_t i = 0; i < take; ++i) {
      victims_.push_back(victim_rank_[i].second);
    }
  }
  const uint64_t before = fast_units_[t];
  TrackedDemote(std::span<const PageId>(victims_).first(take), now, reason);
  enforced_demotions_[t] += before - fast_units_[t];
}

void FairSharePolicy::EnforceQuotas(TimeNs now) {
  // Only active tenants can sit over quota: pending/departed tenants
  // hold no fast units (their drain released everything), and draining
  // tenants are reclaimed by DrainDeparting at the paced release_batch
  // rate, not by enforcement-sized bites.
  enforce_tenant_visits_ += active_.size();
  for (const uint32_t t : active_) {
    DemoteToTarget(t, quota_[t], now, MigrationReason::kQuotaEnforce);
  }
}

TimeNs FairSharePolicy::GatedPromote(std::span<const PageId> pages,
                                     TimeNs now, MigrationReason reason) {
  EnsureOccupancy();
  admitted_.clear();
  batch_marks_.clear();
  batch_seen_.clear();
  std::fill(batch_admits_.begin(), batch_admits_.end(), 0);

  // Endpoint-aware: when the quota truncates this batch, which pages
  // get admitted is decided by batch order — so order the batch by
  // home-endpoint cost, most expensive device first. Every page in a
  // promotion batch already cleared the base policy's hotness bar, so
  // within the batch the endpoint gap is the dominant term; the sort
  // is stable, keeping the base policy's (hotness-descending) order
  // within each cost class. Blind mode admits in batch order exactly
  // as before.
  std::span<const PageId> ordered = pages;
  if (endpoint_aware_active_ && !pages.empty()) {
    if (DecisionAudit* audit = migration().audit()) {
      audit->RecordEndpointReorder();
    }
  }
  if (endpoint_aware_active_) {
    admit_order_.clear();
    admit_order_.reserve(pages.size());
    for (const PageId page : pages) {
      admit_order_.emplace_back(EndpointCostOf(page, now), page);
    }
    std::stable_sort(admit_order_.begin(), admit_order_.end(),
                     [](const std::pair<uint64_t, PageId>& a,
                        const std::pair<uint64_t, PageId>& b) {
                       return a.first > b.first;
                     });
    admit_pages_.clear();
    admit_pages_.reserve(admit_order_.size());
    for (const auto& [cost, page] : admit_order_) {
      admit_pages_.push_back(page);
    }
    ordered = admit_pages_;
  }

  // Per-page admission states within one batch.
  constexpr uint8_t kWasSlow = 0;      //!< Slow-resident; engine moves it.
  constexpr uint8_t kNonResident = 1;  //!< First touch will allocate it.

  uint64_t batch_gated = 0;
  for (const PageId page : ordered) {
    // Dedup within the batch: a repeated page would be a no-op for the
    // engine but would double-count in the occupancy accounting below.
    if (!batch_seen_.insert(page).second) continue;
    // A page already fast-resident needs no promotion: drop it before
    // the headroom check, so a base policy re-promoting its (correctly
    // placed) hot set is neither charged nor miscounted as gated.
    const bool resident = memory().IsResident(page);
    if (resident && memory().TierOf(page) == Tier::kFast) continue;
    const uint32_t t = directory_.TenantOfUnit(page, context().mode);
    // A non-resident page already carrying a durable charge is staged:
    // re-admitting it would double-charge one future landing.
    if (!resident && pending_pages_[t].count(page) > 0) continue;
    sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
    if (fast_units_[t] + pending_pages_[t].size() + batch_admits_[t] >=
        quota_[t]) {
      ++gated_promotions_[t];
      ++batch_gated;
      continue;
    }
    // Charge every admitted page — each could end up fast-resident:
    // slow-resident pages the engine will move, and non-resident pages
    // whose first touch lands in the fast tier right after admission
    // (tenant arrivals). Charging only the slow ones would let a mixed
    // batch reserve no headroom for the rest and push the tenant past
    // quota.
    admitted_.push_back(page);
    batch_marks_.push_back(resident ? kWasSlow : kNonResident);
    ++batch_admits_[t];
  }
  if (batch_gated > 0) {
    if (DecisionAudit* audit = migration().audit()) {
      audit->RecordQuotaTruncation(batch_gated);
    }
  }
  // An entirely gated batch issues no syscall at all.
  if (admitted_.empty()) return 0;

  const TimeNs cost = migration().Promote(admitted_, now, reason);
  for (size_t i = 0; i < admitted_.size(); ++i) {
    const PageId page = admitted_[i];
    const uint32_t t = directory_.TenantOfUnit(page, context().mode);
    if (memory().IsResident(page)) {
      if (memory().TierOf(page) == Tier::kFast &&
          batch_marks_[i] == kWasSlow) {
        ++fast_units_[t];
      }
    } else if (batch_marks_[i] == kNonResident) {
      // The engine cannot move a page that does not exist yet; the
      // admission still staged a future fast first-touch landing.
      // Charge it durably — the page holds headroom until OnAccess
      // sees its first touch — so a base policy re-promoting the same
      // untouched region across batches cannot stage more landings
      // than one batch of headroom.
      pending_pages_[t].insert(page);
    }
  }
  return cost;
}

TimeNs FairSharePolicy::TrackedDemote(std::span<const PageId> pages,
                                      TimeNs now, MigrationReason reason) {
  EnsureOccupancy();
  batch_marks_.clear();  // Reused as "was fast" marks here.
  batch_seen_.clear();
  for (const PageId page : pages) {
    // Only the first occurrence of a page can move it; later duplicates
    // must not decrement the occupancy counter a second time.
    const bool counted = memory().IsResident(page) &&
                         memory().TierOf(page) == Tier::kFast &&
                         batch_seen_.insert(page).second;
    batch_marks_.push_back(counted ? 1 : 0);
  }
  const TimeNs cost = migration().Demote(pages, now, reason);
  for (size_t i = 0; i < pages.size(); ++i) {
    if (!batch_marks_[i]) continue;
    const PageId page = pages[i];
    if (memory().TierOf(page) == Tier::kSlow) {
      --fast_units_[directory_.TenantOfUnit(page, context().mode)];
    }
  }
  return cost;
}

void FairSharePolicy::FillQuotas(TimeNs now) {
  if (!config_.fill_to_quota) return;
  uint64_t free_fast = memory().FreePages(Tier::kFast);
  // Only active tenants accumulate candidates (OnSample feeds them from
  // the access stream); a departed tenant's leftovers are cleared at
  // release, so the fill pass never scans the fleet.
  fill_tenant_visits_ += active_.size();
  for (const uint32_t t : active_) {
    std::vector<PageId>& candidates = candidates_[t];
    if (candidates.empty()) continue;
    // The filler stops short of the quota: the reserved margin belongs
    // to the base policy, whose frequency threshold picks better pages
    // than a one-window sample count.
    const uint64_t fill_limit = FillLimit(t);
    const uint64_t headroom =
        fast_units_[t] < fill_limit ? fill_limit - fast_units_[t] : 0;
    if (headroom == 0) {
      // At or over the fill limit: candidates are unusable, drop them.
      candidates.clear();
      continue;
    }
    if (free_fast == 0) continue;  // Keep candidates for the next tick.

    // Rank this window's candidates by how often they were sampled (the
    // within-window frequency signal), hottest first; ties break on the
    // lower page id so the order is deterministic.
    std::sort(candidates.begin(), candidates.end());
    std::vector<std::pair<uint64_t, PageId>> ranked;
    for (size_t i = 0; i < candidates.size();) {
      size_t j = i;
      while (j < candidates.size() && candidates[j] == candidates[i]) ++j;
      if (memory().IsResident(candidates[i]) &&
          memory().TierOf(candidates[i]) == Tier::kSlow) {
        // Endpoint-aware: sample count stays the primary key, with the
        // cost of the endpoint the unit currently lives on as the
        // tie-breaker, so equally-sampled units are promoted off the
        // expensive device first (that is where each avoided slow
        // access buys the most latency). Blind mode ranks by raw count
        // exactly as before.
        const uint64_t count = j - i;
        ranked.emplace_back(
            endpoint_aware_active_
                ? (count << 16) + std::min<uint64_t>(
                                      EndpointCostOf(candidates[i], now),
                                      0xffff)
                : count,
            candidates[i]);
      }
      i = j;
    }
    candidates.clear();
    std::sort(ranked.begin(), ranked.end(),
              [](const std::pair<uint64_t, PageId>& a,
                 const std::pair<uint64_t, PageId>& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    const uint64_t take =
        std::min<uint64_t>({headroom, free_fast, ranked.size()});
    if (take == 0) continue;
    victims_.clear();  // Reused as the promotion batch here.
    for (uint64_t i = 0; i < take; ++i) victims_.push_back(ranked[i].second);

    const uint64_t before = fast_units_[t];
    GatedPromote(victims_, now, MigrationReason::kQuotaFill);
    fill_promotions_[t] += fast_units_[t] - before;
    free_fast -= std::min(free_fast, fast_units_[t] - before);
  }
}

void FairSharePolicy::OnAccess(PageId unit, const TouchResult& touch,
                               TimeNs now) {
  const bool fresh = EnsureOccupancy();
  if (touch.first_touch) {
    const uint32_t t = directory_.TenantOfUnit(unit, context().mode);
    if (!fresh && touch.tier == Tier::kFast) ++fast_units_[t];
    // If this unit carried a durable gate charge, the landing it
    // reserved headroom for has happened (or, when the touch landed
    // slow, will never consume fast headroom): release it. First
    // touches of uncharged units leave the staged charges alone.
    if (!pending_pages_[t].empty()) pending_pages_[t].erase(unit);
  }
  base_->OnAccess(unit, touch, now);
}

void FairSharePolicy::OnSample(const SampleRecord& sample) {
  EnsureOccupancy();
  const uint32_t t = directory_.TenantOfUnit(sample.page, context().mode);
  if (sample.tier == Tier::kFast) {
    ++window_fast_samples_[t];
  } else {
    ++window_slow_samples_[t];
  }
  sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
  if (!ghost_.empty() && churn_state_[t] == kChurnActive) {
    // Shadow-sample the access into the tenant's ghost MRC estimate.
    // Under SHARDS sampling most units are rejected by the spatial hash
    // before touching any counter — those updates cost no metadata
    // traffic, which is the point of sampling.
    const PageRange range =
        directory_.regions[t].UnitRange(context().mode);
    const uint64_t local = sample.page - range.begin;
    const int64_t slot = ghost_[t].Increment(local);
    ++shadow_samples_[t];
    if (slot >= 0) {
      sink().Touch(kGhostTableBase + t * kGhostTenantStride +
                   ghost_[t].CacheLineOfSlot(static_cast<uint64_t>(slot)) *
                       kCacheLineSize);
    }
  }
  if (sample.tier == Tier::kSlow &&
      candidates_[t].size() < config_.candidate_buffer) {
    candidates_[t].push_back(sample.page);
    sink().Touch(kQuotaTableBase +
                 (64 + t * config_.candidate_buffer / 8 +
                  (candidates_[t].size() - 1) / 8) *
                     kCacheLineSize);
  }
  base_->OnSample(sample);
}

void FairSharePolicy::Tick(TimeNs now) {
  EnsureOccupancy();
  ApplyChurn(now);
  DrainDeparting(now);
  if (config_.rebalance) {
    while (now >= next_rebalance_ns_) {
      Rebalance(next_rebalance_ns_);
      next_rebalance_ns_ += config_.rebalance_interval_ns;
      // Ticks normally arrive well inside one rebalance interval; a
      // clock jump across many intervals (an idle churn gap) resyncs
      // the grid instead of replaying one rebalance per missed window
      // (every window in the jump was empty anyway).
      if (now >= next_rebalance_ns_ + config_.rebalance_interval_ns) {
        const TimeNs missed =
            (now - next_rebalance_ns_) / config_.rebalance_interval_ns;
        next_rebalance_ns_ += missed * config_.rebalance_interval_ns;
      }
    }
  }
  EnforceQuotas(now);
  FillQuotas(now);
  base_->Tick(now);
}

size_t FairSharePolicy::MetadataBytes() const {
  // Quota table (ten 8 B fields + churn state per tenant), the
  // per-tenant fill candidate buffers, the in-flight durable gate
  // charges, and — in marginal mode — the ghost MRC counter arrays.
  size_t ghost_bytes = 0;
  for (const GhostMrc& ghost : ghost_) ghost_bytes += ghost.memory_bytes();
  size_t pending_bytes = 0;
  for (const auto& pending : pending_pages_) {
    pending_bytes += pending.size() * sizeof(PageId);
  }
  return base_->MetadataBytes() +
         directory_.regions.size() * (10 + config_.candidate_buffer) * 8 +
         pending_bytes + ghost_bytes;
}

bool FairSharePolicy::GetTenantQuotaStats(uint32_t tenant,
                                          TenantQuotaStats* out) const {
  if (tenant >= quota_.size()) return false;
  out->quota_units = quota_[tenant];
  out->shadow_samples = shadow_samples_[tenant];
  out->marginal_utility = marginal_utility_[tenant];
  out->pending_first_touch = pending_pages_[tenant].size();
  return true;
}

}  // namespace hybridtier
