#include "multitenant/fair_share_policy.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace hybridtier {

namespace {

// Synthetic metadata line addresses (one region per structure, same
// convention as the baseline policies; 1<<50+ keeps clear of their maps).
constexpr uint64_t kQuotaTableBase = 1ULL << 50;   // Per-tenant quota rows.
constexpr uint64_t kSharePagemapBase = 1ULL << 51; // Enforcement scans.

/**
 * Divides `total` units among tenants in proportion to `weights`, never
 * exceeding `caps`, with integer water-filling: capped tenants are
 * pinned and the surplus re-divided among the rest. Flooring leftovers
 * go to tenants in index order, so the split is deterministic and sums
 * to min(total, sum(caps)).
 */
std::vector<uint64_t> DivideProportional(const std::vector<double>& weights,
                                         const std::vector<uint64_t>& caps,
                                         uint64_t total) {
  const size_t n = weights.size();
  std::vector<uint64_t> quotas(n, 0);
  std::vector<bool> pinned(n, false);
  uint64_t remaining = total;

  for (;;) {
    double sum_weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (!pinned[i]) sum_weight += weights[i];
    }
    if (remaining == 0 || sum_weight <= 0.0) return quotas;

    // Pin every tenant whose proportional share overflows its cap.
    bool repinned = false;
    for (size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      const double ideal =
          static_cast<double>(remaining) * weights[i] / sum_weight;
      if (ideal >= static_cast<double>(caps[i])) {
        quotas[i] = caps[i];
        remaining -= std::min(remaining, caps[i]);
        pinned[i] = true;
        repinned = true;
      }
    }
    if (repinned) continue;

    // No overflow left: floor-allocate and hand the leftover units out
    // one by one in index order.
    uint64_t allocated = 0;
    for (size_t i = 0; i < n; ++i) {
      if (pinned[i]) continue;
      quotas[i] = static_cast<uint64_t>(
          std::floor(static_cast<double>(remaining) * weights[i] /
                     sum_weight));
      allocated += quotas[i];
    }
    uint64_t leftover = remaining - allocated;
    for (size_t i = 0; i < n && leftover > 0; ++i) {
      if (pinned[i] || quotas[i] >= caps[i]) continue;
      ++quotas[i];
      --leftover;
    }
    return quotas;
  }
}

}  // namespace

/**
 * The migration gate handed to the base policy: promotions are filtered
 * by per-tenant quota headroom, demotions pass through with occupancy
 * tracking. All real work (and all stats) happens in the wrapped run's
 * engine; this object's own counters stay empty.
 */
class FairSharePolicy::QuotaGate : public MigrationEngine {
 public:
  QuotaGate(MigrationEngine* inner, FairSharePolicy* owner)
      : MigrationEngine(inner->memory(), inner->perf_model(), inner->mode()),
        owner_(owner) {}

  TimeNs Promote(std::span<const PageId> pages, TimeNs now) override {
    return owner_->GatedPromote(pages, now);
  }

  TimeNs Demote(std::span<const PageId> pages, TimeNs now) override {
    return owner_->TrackedDemote(pages, now);
  }

 private:
  FairSharePolicy* owner_;
};

FairSharePolicy::FairSharePolicy(std::unique_ptr<TieringPolicy> base,
                                 TenantDirectory directory,
                                 FairShareConfig config)
    : base_(std::move(base)),
      directory_(std::move(directory)),
      config_(config) {
  HT_ASSERT(base_ != nullptr, "fair-share wrapper needs a base policy");
  HT_ASSERT(!directory_.regions.empty(),
            "fair-share wrapper needs at least one tenant");
  name_ = std::string("FairShare(") + base_->name() + ")";
}

FairSharePolicy::~FairSharePolicy() = default;

void FairSharePolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);

  // The directory must tile the whole run footprint — anything else
  // means the policy was paired with the wrong workload.
  const PageRange first =
      directory_.regions.front().UnitRange(context.mode);
  const PageRange last = directory_.regions.back().UnitRange(context.mode);
  HT_ASSERT(first.begin == 0 && last.end == context.footprint_units,
            "tenant directory covers units [", first.begin, ", ", last.end,
            ") but the run footprint is ", context.footprint_units);

  const uint32_t n = directory_.size();
  quota_.assign(n, 0);
  static_quota_.assign(n, 0);
  fast_units_.assign(n, 0);
  window_fast_samples_.assign(n, 0);
  window_slow_samples_.assign(n, 0);
  demand_ema_.assign(n, 0.0);
  gated_promotions_.assign(n, 0);
  enforced_demotions_.assign(n, 0);
  fill_promotions_.assign(n, 0);
  released_units_.assign(n, 0);
  batch_admits_.assign(n, 0);
  candidates_.assign(n, {});
  occupancy_ready_ = false;
  next_rebalance_ns_ = config_.rebalance_interval_ns;

  // Residency-window state at t=0; later edges apply at the tick that
  // crosses them (ApplyChurn).
  churn_state_.assign(n, kChurnPending);
  for (uint32_t t = 0; t < n; ++t) {
    if (directory_.regions[t].ActiveAt(0)) churn_state_[t] = kChurnActive;
  }

  ComputeStaticQuotas();
  quota_ = static_quota_;

  // The base policy sees the same context, with migrations rerouted
  // through the quota gate.
  gate_ = std::make_unique<QuotaGate>(context.migration, this);
  PolicyContext gated = context;
  gated.migration = gate_.get();
  base_->Bind(gated);
}

bool FairSharePolicy::EnsureOccupancy() {
  if (occupancy_ready_) return false;
  for (uint32_t t = 0; t < directory_.size(); ++t) {
    const PageRange range = directory_.regions[t].UnitRange(context().mode);
    uint64_t count = 0;
    memory().ScanResident(range.begin, range.size(), Tier::kFast,
                          [&count](PageId) { ++count; });
    fast_units_[t] = count;
  }
  occupancy_ready_ = true;
  return true;
}

void FairSharePolicy::ComputeStaticQuotas() {
  const uint32_t n = directory_.size();
  std::vector<double> weights(n);
  std::vector<uint64_t> caps(n);
  for (uint32_t t = 0; t < n; ++t) {
    // Pending and departed tenants hold no capacity: their weight drops
    // out of the division, so the active tenants absorb the whole tier.
    weights[t] = churn_state_[t] == kChurnActive
                     ? directory_.regions[t].weight
                     : 0.0;
    caps[t] = churn_state_[t] == kChurnActive
                  ? directory_.regions[t].UnitRange(context().mode).size()
                  : 0;
  }
  static_quota_ =
      DivideProportional(weights, caps, context().fast_capacity_units);
}

void FairSharePolicy::ApplyChurn(TimeNs now) {
  bool changed = false;
  for (uint32_t t = 0; t < directory_.size(); ++t) {
    const TenantRegion& region = directory_.regions[t];
    if (churn_state_[t] == kChurnPending && now >= region.arrival_ns) {
      churn_state_[t] = kChurnActive;
      changed = true;
    }
    if (churn_state_[t] == kChurnActive && region.departure_ns != 0 &&
        now >= region.departure_ns) {
      churn_state_[t] = kChurnDeparted;
      ReleaseTenant(t, now);
      changed = true;
    }
  }
  if (changed) {
    // Re-divide the tier over the tenants now present. Jumping straight
    // to the new static split hands a departure's capacity to the
    // survivors this tick; the scheduled rebalance then re-applies the
    // surviving tenants' demand EMAs on top.
    ComputeStaticQuotas();
    quota_ = static_quota_;
  }
}

void FairSharePolicy::ReleaseTenant(uint32_t tenant, TimeNs now) {
  const PageRange range =
      directory_.regions[tenant].UnitRange(context().mode);
  // Reclaim writeback: every fast-resident page is demoted in one batch
  // (the dirty-page flush a teardown performs), uncapped — a departure
  // must fully drain the tenant's fast share, not trickle it out in
  // enforcement-sized bites.
  victims_.clear();
  memory().ScanResident(range.begin, range.size(), Tier::kFast,
                        [this](PageId unit) {
                          sink().Touch(kSharePagemapBase +
                                       (unit / 8) * kCacheLineSize);
                          victims_.push_back(unit);
                        });
  if (!victims_.empty()) TrackedDemote(victims_, now);
  HT_ASSERT(fast_units_[tenant] == 0, "tenant ", tenant, " still holds ",
            fast_units_[tenant], " fast units after departure demotion");
  // Then the region itself returns to the free pools, as exit reclaim
  // would free a dead process's memory.
  released_units_[tenant] += memory().Release(range);
  window_fast_samples_[tenant] = 0;
  window_slow_samples_[tenant] = 0;
  demand_ema_[tenant] = 0.0;
  candidates_[tenant].clear();
}

void FairSharePolicy::Rebalance(TimeNs now) {
  const uint32_t n = directory_.size();
  // Hit density: sampled fast-tier hits per resident unit, smoothed by
  // a halving EMA over rebalance windows (the cooling idiom the paper's
  // trackers use: responsive to shifts, stable against one noisy
  // window). Density is value-per-unit of capacity, so capacity flows
  // to tenants that actually reuse it — raw access volume would let a
  // streaming tenant with no reuse out-bid every hot set.
  double total_demand = 0.0;
  std::vector<double> fast_fraction(n, 1.0);
  for (uint32_t t = 0; t < n; ++t) {
    if (churn_state_[t] != kChurnActive) {
      // Absent tenants produce no samples and hold no quota; keep their
      // windows clean so a t=0-departed slot never skews the division.
      window_fast_samples_[t] = 0;
      window_slow_samples_[t] = 0;
      continue;
    }
    const double density =
        static_cast<double>(window_fast_samples_[t]) /
        static_cast<double>(std::max<uint64_t>(1, fast_units_[t]));
    const uint64_t window_total =
        window_fast_samples_[t] + window_slow_samples_[t];
    if (window_total > 0) {
      fast_fraction[t] = static_cast<double>(window_fast_samples_[t]) /
                         static_cast<double>(window_total);
    }
    window_fast_samples_[t] = 0;
    window_slow_samples_[t] = 0;
    demand_ema_[t] = demand_ema_[t] * 0.5 + density;
    total_demand += demand_ema_[t];
    sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
  }

  if (total_demand > 0.0) {
    // Guaranteed floor first, then the rest in proportion to
    // weight-scaled hit density.
    std::vector<double> demand(n);
    std::vector<uint64_t> caps(n);
    uint64_t floor_total = 0;
    for (uint32_t t = 0; t < n; ++t) {
      if (churn_state_[t] != kChurnActive) {
        quota_[t] = 0;
        caps[t] = 0;
        demand[t] = 0.0;
        continue;
      }
      const uint64_t span =
          directory_.regions[t].UnitRange(context().mode).size();
      const uint64_t floor_units =
          std::min(span, static_cast<uint64_t>(
                             static_cast<double>(static_quota_[t]) *
                             config_.min_share));
      quota_[t] = floor_units;
      floor_total += floor_units;
      caps[t] = span - floor_units;
      demand[t] = directory_.regions[t].weight * demand_ema_[t];
    }
    const uint64_t fast_cap = context().fast_capacity_units;
    const std::vector<uint64_t> extra = DivideProportional(
        demand, caps, fast_cap - std::min(fast_cap, floor_total));
    for (uint32_t t = 0; t < n; ++t) quota_[t] += extra[t];
  }

  // Rotate tenants whose placement is visibly bad: most of their
  // sampled accesses missed the fast tier even though they sit at (or
  // above) their fill limit, so the resident mix — not the quota — is
  // the problem. Demoting to the fill limit gives the filler room to
  // swap the sampled-hot pages in; a tenant with a good mix is left
  // alone (no churn).
  for (uint32_t t = 0; t < n; ++t) {
    if (churn_state_[t] != kChurnActive) continue;
    if (fast_fraction[t] < config_.rotate_below) {
      DemoteToTarget(t, FillLimit(t), now);
    }
  }
}

uint64_t FairSharePolicy::FillLimit(uint32_t tenant) const {
  const uint64_t margin = static_cast<uint64_t>(
      static_cast<double>(quota_[tenant]) * config_.fill_margin);
  return quota_[tenant] - std::min(quota_[tenant], margin);
}

void FairSharePolicy::DemoteToTarget(uint32_t t, uint64_t target,
                                     TimeNs now) {
  if (fast_units_[t] <= target) return;
  const uint64_t excess =
      std::min(fast_units_[t] - target, config_.max_enforce_batch);

  // Find the tenant's fast-resident units (the pagemap walk every
  // watermark demoter performs) and demote from the top of the region;
  // the filler and the base policy bring the hot subset back within
  // quota.
  const PageRange range = directory_.regions[t].UnitRange(context().mode);
  victims_.clear();
  memory().ScanResident(range.begin, range.size(), Tier::kFast,
                        [this](PageId unit) {
                          sink().Touch(kSharePagemapBase +
                                       (unit / 8) * kCacheLineSize);
                          victims_.push_back(unit);
                        });
  const uint64_t take = std::min<uint64_t>(excess, victims_.size());
  if (take == 0) return;
  const uint64_t before = fast_units_[t];
  TrackedDemote(std::span<const PageId>(victims_).last(take), now);
  enforced_demotions_[t] += before - fast_units_[t];
}

void FairSharePolicy::EnforceQuotas(TimeNs now) {
  for (uint32_t t = 0; t < directory_.size(); ++t) {
    DemoteToTarget(t, quota_[t], now);
  }
}

TimeNs FairSharePolicy::GatedPromote(std::span<const PageId> pages,
                                     TimeNs now) {
  EnsureOccupancy();
  admitted_.clear();
  batch_marks_.clear();
  batch_seen_.clear();
  std::fill(batch_admits_.begin(), batch_admits_.end(), 0);

  for (const PageId page : pages) {
    // Dedup within the batch: a repeated page would be a no-op for the
    // engine but would double-count in the occupancy accounting below.
    if (!batch_seen_.insert(page).second) continue;
    const uint32_t t = directory_.TenantOfUnit(page, context().mode);
    sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
    if (fast_units_[t] + batch_admits_[t] >= quota_[t]) {
      ++gated_promotions_[t];
      continue;
    }
    // Charge every page that could end up fast-resident — slow-resident
    // pages the engine will move, and non-resident pages whose first
    // touch lands in the fast tier right after admission (tenant
    // arrivals). Charging only the slow ones would let a mixed batch
    // reserve no headroom for the rest and push the tenant past quota.
    // The charge is per-batch: first touches that land after a later
    // batch are bounded by quota enforcement at the next tick.
    const bool was_fast =
        memory().IsResident(page) && memory().TierOf(page) == Tier::kFast;
    admitted_.push_back(page);
    batch_marks_.push_back(was_fast ? 0 : 1);
    if (!was_fast) ++batch_admits_[t];
  }
  // An entirely gated batch issues no syscall at all.
  if (admitted_.empty()) return 0;

  const TimeNs cost = migration().Promote(admitted_, now);
  for (size_t i = 0; i < admitted_.size(); ++i) {
    if (!batch_marks_[i]) continue;  // Already fast before the batch.
    const PageId page = admitted_[i];
    if (memory().IsResident(page) &&
        memory().TierOf(page) == Tier::kFast) {
      ++fast_units_[directory_.TenantOfUnit(page, context().mode)];
    }
  }
  return cost;
}

TimeNs FairSharePolicy::TrackedDemote(std::span<const PageId> pages,
                                      TimeNs now) {
  EnsureOccupancy();
  batch_marks_.clear();  // Reused as "was fast" marks here.
  batch_seen_.clear();
  for (const PageId page : pages) {
    // Only the first occurrence of a page can move it; later duplicates
    // must not decrement the occupancy counter a second time.
    const bool counted = memory().IsResident(page) &&
                         memory().TierOf(page) == Tier::kFast &&
                         batch_seen_.insert(page).second;
    batch_marks_.push_back(counted ? 1 : 0);
  }
  const TimeNs cost = migration().Demote(pages, now);
  for (size_t i = 0; i < pages.size(); ++i) {
    if (!batch_marks_[i]) continue;
    const PageId page = pages[i];
    if (memory().TierOf(page) == Tier::kSlow) {
      --fast_units_[directory_.TenantOfUnit(page, context().mode)];
    }
  }
  return cost;
}

void FairSharePolicy::FillQuotas(TimeNs now) {
  if (!config_.fill_to_quota) return;
  uint64_t free_fast = memory().FreePages(Tier::kFast);
  for (uint32_t t = 0; t < directory_.size(); ++t) {
    std::vector<PageId>& candidates = candidates_[t];
    if (candidates.empty()) continue;
    // The filler stops short of the quota: the reserved margin belongs
    // to the base policy, whose frequency threshold picks better pages
    // than a one-window sample count.
    const uint64_t fill_limit = FillLimit(t);
    const uint64_t headroom =
        fast_units_[t] < fill_limit ? fill_limit - fast_units_[t] : 0;
    if (headroom == 0) {
      // At or over the fill limit: candidates are unusable, drop them.
      candidates.clear();
      continue;
    }
    if (free_fast == 0) continue;  // Keep candidates for the next tick.

    // Rank this window's candidates by how often they were sampled (the
    // within-window frequency signal), hottest first; ties break on the
    // lower page id so the order is deterministic.
    std::sort(candidates.begin(), candidates.end());
    std::vector<std::pair<uint64_t, PageId>> ranked;
    for (size_t i = 0; i < candidates.size();) {
      size_t j = i;
      while (j < candidates.size() && candidates[j] == candidates[i]) ++j;
      if (memory().IsResident(candidates[i]) &&
          memory().TierOf(candidates[i]) == Tier::kSlow) {
        ranked.emplace_back(j - i, candidates[i]);
      }
      i = j;
    }
    candidates.clear();
    std::sort(ranked.begin(), ranked.end(),
              [](const std::pair<uint64_t, PageId>& a,
                 const std::pair<uint64_t, PageId>& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    const uint64_t take =
        std::min<uint64_t>({headroom, free_fast, ranked.size()});
    if (take == 0) continue;
    victims_.clear();  // Reused as the promotion batch here.
    for (uint64_t i = 0; i < take; ++i) victims_.push_back(ranked[i].second);

    const uint64_t before = fast_units_[t];
    GatedPromote(victims_, now);
    fill_promotions_[t] += fast_units_[t] - before;
    free_fast -= std::min(free_fast, fast_units_[t] - before);
  }
}

void FairSharePolicy::OnAccess(PageId unit, const TouchResult& touch,
                               TimeNs now) {
  const bool fresh = EnsureOccupancy();
  if (!fresh && touch.first_touch && touch.tier == Tier::kFast) {
    ++fast_units_[directory_.TenantOfUnit(unit, context().mode)];
  }
  base_->OnAccess(unit, touch, now);
}

void FairSharePolicy::OnSample(const SampleRecord& sample) {
  EnsureOccupancy();
  const uint32_t t = directory_.TenantOfUnit(sample.page, context().mode);
  if (sample.tier == Tier::kFast) {
    ++window_fast_samples_[t];
  } else {
    ++window_slow_samples_[t];
  }
  sink().Touch(kQuotaTableBase + (t / 2) * kCacheLineSize);
  if (sample.tier == Tier::kSlow &&
      candidates_[t].size() < config_.candidate_buffer) {
    candidates_[t].push_back(sample.page);
    sink().Touch(kQuotaTableBase +
                 (64 + t * config_.candidate_buffer / 8 +
                  (candidates_[t].size() - 1) / 8) *
                     kCacheLineSize);
  }
  base_->OnSample(sample);
}

void FairSharePolicy::Tick(TimeNs now) {
  EnsureOccupancy();
  ApplyChurn(now);
  if (config_.rebalance) {
    while (now >= next_rebalance_ns_) {
      Rebalance(next_rebalance_ns_);
      next_rebalance_ns_ += config_.rebalance_interval_ns;
      // Ticks normally arrive well inside one rebalance interval; a
      // clock jump across many intervals (an idle churn gap) resyncs
      // the grid instead of replaying one rebalance per missed window
      // (every window in the jump was empty anyway).
      if (now >= next_rebalance_ns_ + config_.rebalance_interval_ns) {
        const TimeNs missed =
            (now - next_rebalance_ns_) / config_.rebalance_interval_ns;
        next_rebalance_ns_ += missed * config_.rebalance_interval_ns;
      }
    }
  }
  EnforceQuotas(now);
  FillQuotas(now);
  base_->Tick(now);
}

size_t FairSharePolicy::MetadataBytes() const {
  // Quota table (six 8 B fields + churn state per tenant) plus the
  // per-tenant fill candidate buffers.
  return base_->MetadataBytes() +
         directory_.regions.size() * (6 + config_.candidate_buffer) * 8;
}

}  // namespace hybridtier
