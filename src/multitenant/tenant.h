#ifndef HYBRIDTIER_MULTITENANT_TENANT_H_
#define HYBRIDTIER_MULTITENANT_TENANT_H_

/**
 * @file
 * Tenant descriptions for the multi-tenant tiering subsystem.
 *
 * Real CXL deployments co-locate many applications on one fast tier; an
 * unmanaged policy lets one hot tenant starve the rest. The types here
 * describe who shares the tier: a `TenantSpec` names a workload and its
 * fair-share weight, and a `TenantDirectory` records where each admitted
 * tenant landed in the shared simulated address space. The directory is
 * the contract between the `MuxWorkload` that lays tenants out, the
 * `FairSharePolicy` that enforces quotas, and the simulation harness
 * that attributes results.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "mem/page.h"

namespace hybridtier {

/**
 * One residency interval [arrival, departure) in virtual time. A zero
 * departure means the tenant stays until the run ends.
 */
struct ResidencyWindow {
  TimeNs arrival_ns = 0;
  TimeNs departure_ns = 0;  //!< 0 = open-ended (never departs).

  /** True if `now` falls inside this window. */
  bool Contains(TimeNs now) const {
    return now >= arrival_ns && (departure_ns == 0 || now < departure_ns);
  }
};

/** One tenant to admit: which workload it runs and its share weight. */
struct TenantSpec {
  std::string workload_id;  //!< Workload-factory id (e.g. "cdn", "zipf").
  double weight = 1.0;      //!< Fair-share weight (fast-tier quota).
  double scale = -1.0;      //!< Footprint scale; < 0 = per-family default.
  uint64_t seed = 0;        //!< 0 = derive from the run seed + index.
  /**
   * Residency windows, strictly increasing and non-overlapping; every
   * window but the last is closed. Empty = resident for the whole run.
   * Several windows model diurnal co-location: the tenant departs (its
   * memory is released) and re-arrives when the next window opens.
   */
  std::vector<ResidencyWindow> windows;
};

/**
 * Parses a tenant list of the form "cdn,bfs-k:2,silo:0.5@1e8-5e8". Each
 * entry is a workload id with an optional ":weight" suffix (weight > 0,
 * default 1) and an optional "@arrival[-departure]" residency window in
 * virtual nanoseconds (scientific notation accepted): the tenant arrives
 * mid-run at `arrival` and, when a departure is given, exits at
 * `departure`, releasing its memory. Several '+'-joined windows —
 * "zipf@1e8-2e8+5e8-6e8" — give the tenant recurring residency (it
 * re-arrives at each later window); every window but the last must then
 * be closed, and windows must be disjoint and in increasing order.
 * Fatal on malformed entries or unknown workload ids.
 */
std::vector<TenantSpec> ParseTenantList(const std::string& list);

/** Where one admitted tenant lives in the shared address space. */
struct TenantRegion {
  std::string name;           //!< Display name (unique within the run).
  double weight = 1.0;        //!< Fair-share weight from the spec.
  uint64_t base_page = 0;     //!< First 4 KiB page of the region.
  uint64_t footprint_pages = 0;  //!< Pages the tenant actually uses.
  uint64_t span_pages = 0;    //!< Reserved span (2 MiB-aligned).
  /** Residency windows (see TenantSpec::windows); empty = whole run. */
  std::vector<ResidencyWindow> windows;

  /** Tracking units [begin, end) under `mode`; exact in both modes. */
  PageRange UnitRange(PageMode mode) const {
    const uint64_t per_unit =
        mode == PageMode::kHuge ? kPagesPerHugePage : 1;
    return PageRange{base_page / per_unit,
                     (base_page + span_pages) / per_unit};
  }

  /** True if the tenant is resident for the whole run (no windows). */
  bool AlwaysResident() const { return windows.empty(); }

  /** True if any residency window contains virtual time `now`. */
  bool ActiveAt(TimeNs now) const {
    if (windows.empty()) return true;
    for (const ResidencyWindow& window : windows) {
      if (window.Contains(now)) return true;
    }
    return false;
  }
};

/** The shared-tier layout: one region per admitted tenant. */
struct TenantDirectory {
  std::vector<TenantRegion> regions;

  /** Number of tenants. */
  uint32_t size() const { return static_cast<uint32_t>(regions.size()); }

  /** Sum of all tenant weights. */
  double TotalWeight() const;

  /**
   * Tenant owning tracking unit `unit` under `mode`; fatal if the unit
   * belongs to no region (the layout covers the whole footprint, so this
   * only fires on out-of-range units).
   */
  uint32_t TenantOfUnit(PageId unit, PageMode mode) const;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_TENANT_H_
