#include "multitenant/fleet.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/factory.h"
#include "workloads/workload.h"

namespace hybridtier {

namespace {

constexpr char kPrefix[] = "fleet:";

/** Parses a positive double like "0.9" or "1e8"; fatal with context. */
double ParseNumber(const std::string& text, const std::string& key,
                   const std::string& spec) {
  size_t parsed = 0;
  double value = -1.0;
  try {
    value = std::stod(text, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  if (parsed != text.size() || std::isnan(value)) {
    HT_FATAL("bad value '", text, "' for fleet key '", key,
             "' in spec '", spec, "'");
  }
  return value;
}

/** Formats a double with enough digits to round-trip typical knobs. */
std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void Validate(const FleetSpec& spec, const std::string& text) {
  if (spec.tenants == 0) {
    HT_FATAL("fleet spec '", text, "' needs a positive tenant count");
  }
  if (!IsWorkloadId(spec.workload_id)) {
    HT_FATAL("unknown workload id '", spec.workload_id,
             "' in fleet spec '", text, "'");
  }
  if (spec.weight_skew < 0.0 || spec.footprint_skew < 0.0) {
    HT_FATAL("fleet skews must be >= 0 in spec '", text, "'");
  }
  if (spec.footprint_pages == 0) {
    HT_FATAL("fleet footprint must be positive in spec '", text, "'");
  }
  if (spec.churn != "none" && spec.churn != "poisson" &&
      spec.churn != "diurnal") {
    HT_FATAL("fleet churn must be none|poisson|diurnal, got '",
             spec.churn, "' in spec '", text, "'");
  }
  if (!(spec.duty > 0.0 && spec.duty < 1.0)) {
    HT_FATAL("fleet duty must be in (0,1) in spec '", text, "'");
  }
  if (spec.period_ns == 0 || spec.horizon_ns < spec.period_ns) {
    HT_FATAL("fleet needs period > 0 and horizon >= period in spec '",
             text, "'");
  }
}

/**
 * Memoryless on/off residency: exponential dwell times with means
 * duty*period (on) and (1-duty)*period (off). The tenant starts
 * resident with probability `duty`, so the expected present fraction
 * is `duty` from t=0, not only in steady state.
 */
std::vector<ResidencyWindow> PoissonWindows(const FleetSpec& spec,
                                            uint32_t rank, Rng* rng) {
  (void)rank;
  const double on_mean =
      spec.duty * static_cast<double>(spec.period_ns);
  const double off_mean =
      (1.0 - spec.duty) * static_cast<double>(spec.period_ns);
  std::vector<ResidencyWindow> windows;
  TimeNs t = 0;
  if (!rng->Bernoulli(spec.duty)) {
    t = std::max<TimeNs>(1, static_cast<TimeNs>(rng->Exponential(off_mean)));
  }
  while (t < spec.horizon_ns) {
    const TimeNs arrival = t;
    const TimeNs on =
        std::max<TimeNs>(1, static_cast<TimeNs>(rng->Exponential(on_mean)));
    const TimeNs departure = arrival + on;
    if (departure >= spec.horizon_ns) {
      windows.push_back(ResidencyWindow{arrival, 0});
      break;
    }
    windows.push_back(ResidencyWindow{arrival, departure});
    const TimeNs off =
        std::max<TimeNs>(1, static_cast<TimeNs>(rng->Exponential(off_mean)));
    t = departure + off;
  }
  // Every draw landed past the horizon: the tenant sits out the
  // observed run but still needs a window (none = always resident).
  if (windows.empty()) windows.push_back(ResidencyWindow{t, 0});
  return windows;
}

/**
 * Recurring residency: on for duty*period out of every period, phases
 * spread evenly across the fleet so arrivals and departures tile the
 * cycle instead of stampeding together.
 */
std::vector<ResidencyWindow> DiurnalWindows(const FleetSpec& spec,
                                            uint32_t rank) {
  const TimeNs phase =
      (spec.period_ns * static_cast<TimeNs>(rank - 1)) / spec.tenants;
  const TimeNs on = std::max<TimeNs>(
      1, static_cast<TimeNs>(spec.duty *
                             static_cast<double>(spec.period_ns)));
  std::vector<ResidencyWindow> windows;
  for (TimeNs start = phase; start < spec.horizon_ns;
       start += spec.period_ns) {
    const TimeNs departure = start + on;
    if (departure >= spec.horizon_ns) {
      windows.push_back(ResidencyWindow{start, 0});
      break;
    }
    windows.push_back(ResidencyWindow{start, departure});
  }
  return windows;
}

}  // namespace

bool IsFleetSpec(const std::string& text) {
  return text.rfind(kPrefix, 0) == 0;
}

FleetSpec ParseFleetSpec(const std::string& text) {
  HT_ASSERT(IsFleetSpec(text), "not a fleet spec: '", text, "'");
  FleetSpec spec;
  std::string body = text.substr(sizeof(kPrefix) - 1);
  bool first = true;
  size_t start = 0;
  while (start <= body.size()) {
    size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    const std::string token = body.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) HT_FATAL("empty token in fleet spec '", text, "'");
    if (first) {
      const double count = ParseNumber(token, "tenants", text);
      if (!(count >= 1.0 && count <= 1e6) ||
          count != std::floor(count)) {
        HT_FATAL("fleet tenant count '", token,
                 "' must be an integer in [1, 1e6]");
      }
      spec.tenants = static_cast<uint32_t>(count);
      first = false;
    } else {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        HT_FATAL("fleet token '", token, "' in spec '", text,
                 "' is not key=value");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "wl") {
        spec.workload_id = value;
      } else if (key == "zipf") {
        spec.weight_skew = ParseNumber(value, key, text);
      } else if (key == "fp") {
        spec.footprint_pages =
            static_cast<uint64_t>(ParseNumber(value, key, text));
      } else if (key == "fpskew") {
        spec.footprint_skew = ParseNumber(value, key, text);
      } else if (key == "churn") {
        spec.churn = value;
      } else if (key == "duty") {
        spec.duty = ParseNumber(value, key, text);
      } else if (key == "period") {
        spec.period_ns =
            static_cast<TimeNs>(ParseNumber(value, key, text));
      } else if (key == "horizon") {
        spec.horizon_ns =
            static_cast<TimeNs>(ParseNumber(value, key, text));
      } else if (key == "seed") {
        spec.seed = static_cast<uint64_t>(ParseNumber(value, key, text));
      } else {
        HT_FATAL("unknown fleet key '", key, "' in spec '", text, "'");
      }
    }
    if (comma == body.size()) break;
  }
  Validate(spec, text);
  return spec;
}

std::string FormatFleetSpec(const FleetSpec& spec) {
  std::string out = kPrefix + std::to_string(spec.tenants);
  out += ",wl=" + spec.workload_id;
  out += ",zipf=" + FormatNumber(spec.weight_skew);
  out += ",fp=" + std::to_string(spec.footprint_pages);
  out += ",fpskew=" + FormatNumber(spec.footprint_skew);
  out += ",churn=" + spec.churn;
  out += ",duty=" + FormatNumber(spec.duty);
  out += ",period=" + std::to_string(spec.period_ns);
  out += ",horizon=" + std::to_string(spec.horizon_ns);
  out += ",seed=" + std::to_string(spec.seed);
  return out;
}

std::vector<TenantSpec> MakeFleetSpecs(const FleetSpec& spec) {
  Validate(spec, FormatFleetSpec(spec));
  // Footprint scales are relative to the workload family's base
  // footprint, probed once at scale 1.0 (cheap for the synthetic
  // generators a fleet multiplexes).
  const double base_pages = static_cast<double>(
      MakeWorkload(spec.workload_id, 1.0, 1)->footprint_pages());
  std::vector<TenantSpec> specs;
  specs.reserve(spec.tenants);
  for (uint32_t rank = 1; rank <= spec.tenants; ++rank) {
    TenantSpec tenant;
    tenant.workload_id = spec.workload_id;
    tenant.weight =
        spec.weight_skew == 0.0
            ? 1.0
            : std::pow(static_cast<double>(rank), -spec.weight_skew);
    const double pages = std::max(
        64.0, static_cast<double>(spec.footprint_pages) *
                  (spec.footprint_skew == 0.0
                       ? 1.0
                       : std::pow(static_cast<double>(rank),
                                  -spec.footprint_skew)));
    tenant.scale = pages / base_pages;
    // seed stays 0: MakeMuxWorkload derives per-tenant access-stream
    // seeds from the run seed; only the churn schedule is pinned to the
    // fleet seed (same fleet, different runs => same windows).
    if (spec.churn == "poisson") {
      uint64_t state = spec.seed ^ (0x9e3779b97f4a7c15ULL * rank);
      Rng rng(SplitMix64Next(state));
      tenant.windows = PoissonWindows(spec, rank, &rng);
    } else if (spec.churn == "diurnal") {
      tenant.windows = DiurnalWindows(spec, rank);
    }
    specs.push_back(std::move(tenant));
  }
  return specs;
}

}  // namespace hybridtier
