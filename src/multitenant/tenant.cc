#include "multitenant/tenant.h"

#include <algorithm>

#include "common/logging.h"
#include "workloads/factory.h"

namespace hybridtier {

std::vector<TenantSpec> ParseTenantList(const std::string& list) {
  std::vector<TenantSpec> specs;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) {
      HT_FATAL("empty tenant entry in list '", list, "'");
    }

    TenantSpec spec;
    const size_t colon = entry.find(':');
    spec.workload_id = entry.substr(0, colon);
    if (colon != std::string::npos) {
      const std::string weight = entry.substr(colon + 1);
      size_t parsed = 0;
      try {
        spec.weight = std::stod(weight, &parsed);
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed != weight.size() || spec.weight <= 0.0) {
        HT_FATAL("bad tenant weight '", weight, "' in entry '", entry,
                 "' (must be a positive number)");
      }
    }
    if (!IsWorkloadId(spec.workload_id)) {
      HT_FATAL("unknown workload id '", spec.workload_id,
               "' in tenant list '", list, "'");
    }
    specs.push_back(std::move(spec));
    if (comma == list.size()) break;
  }
  return specs;
}

double TenantDirectory::TotalWeight() const {
  double total = 0.0;
  for (const TenantRegion& region : regions) total += region.weight;
  return total;
}

uint32_t TenantDirectory::TenantOfUnit(PageId unit, PageMode mode) const {
  // Regions are laid out contiguously in allocation order, so the owner
  // is the last region whose range begins at or before `unit`.
  const auto it = std::upper_bound(
      regions.begin(), regions.end(), unit,
      [mode](PageId u, const TenantRegion& region) {
        return u < region.UnitRange(mode).begin;
      });
  HT_ASSERT(it != regions.begin(), "unit ", unit, " precedes all tenants");
  const uint32_t tenant =
      static_cast<uint32_t>(std::distance(regions.begin(), it)) - 1;
  HT_ASSERT(regions[tenant].UnitRange(mode).Contains(unit), "unit ", unit,
            " beyond the last tenant region");
  return tenant;
}

}  // namespace hybridtier
