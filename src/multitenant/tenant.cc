#include "multitenant/tenant.h"

#include <algorithm>

#include "common/logging.h"
#include "multitenant/fleet.h"
#include "workloads/factory.h"

namespace hybridtier {

namespace {

/** Parses a non-negative virtual time like "0", "5e8" or "2.5e9". */
TimeNs ParseTimeNs(const std::string& text, const std::string& entry) {
  size_t parsed = 0;
  double value = -1.0;
  try {
    value = std::stod(text, &parsed);
  } catch (const std::exception&) {
    parsed = 0;
  }
  // The upper bound keeps the double-to-uint64 cast defined (and
  // rejects NaN, which fails every comparison).
  constexpr double kMaxTime = 1.8e19;  // < 2^64 ns (~584 years).
  if (parsed != text.size() || !(value >= 0.0 && value < kMaxTime)) {
    HT_FATAL("bad time '", text, "' in tenant entry '", entry,
             "' (must be a non-negative ns count below 1.8e19, e.g. 5e8)");
  }
  return static_cast<TimeNs>(value);
}

}  // namespace

std::vector<TenantSpec> ParseTenantList(const std::string& list) {
  // A generator spec ("fleet:1000,zipf=0.9,...") expands to the whole
  // tenant population; it is never mixed with explicit entries.
  if (IsFleetSpec(list)) return MakeFleetSpecs(ParseFleetSpec(list));
  std::vector<TenantSpec> specs;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) {
      HT_FATAL("empty tenant entry in list '", list, "'");
    }

    TenantSpec spec;
    // Split off the optional "@window[+window...]" residency windows
    // first; what precedes them is the familiar "id[:weight]".
    const size_t at = entry.find('@');
    const std::string head = entry.substr(0, at);
    if (at != std::string::npos) {
      // Windows are '+'-separated (a '+' after 'e'/'E' is a
      // scientific-notation exponent sign, "1e+8", not a separator).
      const std::string window_list = entry.substr(at + 1);
      std::vector<std::string> window_texts;
      size_t window_start = 0;
      for (size_t i = 1; i <= window_list.size(); ++i) {
        const bool split =
            i == window_list.size() ||
            (window_list[i] == '+' && window_list[i - 1] != 'e' &&
             window_list[i - 1] != 'E');
        if (!split) continue;
        window_texts.push_back(
            window_list.substr(window_start, i - window_start));
        window_start = i + 1;
      }
      if (window_texts.empty()) {
        HT_FATAL("empty residency window in tenant entry '", entry, "'");
      }
      for (size_t w = 0; w < window_texts.size(); ++w) {
        const std::string& window = window_texts[w];
        // A '-' splits arrival from departure unless it is the sign of
        // a scientific-notation exponent ("1e-3").
        size_t dash = std::string::npos;
        for (size_t i = 1; i < window.size(); ++i) {
          if (window[i] == '-' && window[i - 1] != 'e' &&
              window[i - 1] != 'E') {
            dash = i;
            break;
          }
        }
        ResidencyWindow parsed;
        parsed.arrival_ns = ParseTimeNs(window.substr(0, dash), entry);
        if (dash != std::string::npos) {
          parsed.departure_ns = ParseTimeNs(window.substr(dash + 1), entry);
          if (parsed.departure_ns <= parsed.arrival_ns) {
            HT_FATAL("tenant window '", window, "' in entry '", entry,
                     "' must depart after it arrives");
          }
        } else if (w + 1 < window_texts.size()) {
          HT_FATAL("tenant window '", window, "' in entry '", entry,
                   "' needs a departure: only the last of several "
                   "windows may be open-ended");
        }
        if (!spec.windows.empty() &&
            parsed.arrival_ns <= spec.windows.back().departure_ns) {
          HT_FATAL("tenant windows in entry '", entry,
                   "' must be disjoint and in increasing order");
        }
        spec.windows.push_back(parsed);
      }
    }

    const size_t colon = head.find(':');
    spec.workload_id = head.substr(0, colon);
    if (colon != std::string::npos) {
      const std::string weight = head.substr(colon + 1);
      size_t parsed = 0;
      try {
        spec.weight = std::stod(weight, &parsed);
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed != weight.size() || spec.weight <= 0.0) {
        HT_FATAL("bad tenant weight '", weight, "' in entry '", entry,
                 "' (must be a positive number)");
      }
    }
    if (!IsWorkloadId(spec.workload_id)) {
      HT_FATAL("unknown workload id '", spec.workload_id,
               "' in tenant list '", list, "'");
    }
    specs.push_back(std::move(spec));
    if (comma == list.size()) break;
  }
  return specs;
}

double TenantDirectory::TotalWeight() const {
  double total = 0.0;
  for (const TenantRegion& region : regions) total += region.weight;
  return total;
}

uint32_t TenantDirectory::TenantOfUnit(PageId unit, PageMode mode) const {
  // Regions are laid out contiguously in allocation order, so the owner
  // is the last region whose range begins at or before `unit`.
  const auto it = std::upper_bound(
      regions.begin(), regions.end(), unit,
      [mode](PageId u, const TenantRegion& region) {
        return u < region.UnitRange(mode).begin;
      });
  HT_ASSERT(it != regions.begin(), "unit ", unit, " precedes all tenants");
  const uint32_t tenant =
      static_cast<uint32_t>(std::distance(regions.begin(), it)) - 1;
  HT_ASSERT(regions[tenant].UnitRange(mode).Contains(unit), "unit ", unit,
            " beyond the last tenant region");
  return tenant;
}

}  // namespace hybridtier
