#ifndef HYBRIDTIER_MULTITENANT_FAIR_SHARE_POLICY_H_
#define HYBRIDTIER_MULTITENANT_FAIR_SHARE_POLICY_H_

/**
 * @file
 * Fair-share quota wrapper around any tiering policy.
 *
 * On a shared fast tier, an unmanaged policy promotes whichever pages
 * look hottest globally — so one hot tenant crowds everyone else out.
 * `FairSharePolicy` decorates a base policy with per-tenant fast-tier
 * quotas:
 *
 *  - The base policy runs unmodified, but its migrations execute through
 *    a gate (a `MigrationEngine` decorator) that drops promotions for
 *    tenants already at quota. Batching, syscall costs, and stats of
 *    surviving pages are unchanged.
 *  - A maintenance tick demotes pages of tenants that sit over quota
 *    (first-touch allocation and quota shrinks put them there), in
 *    address order from the top of the tenant's region — the base policy
 *    re-promotes the hot subset within quota.
 *  - The same tick *fills* under-quota tenants: their recently sampled
 *    slow pages are promoted into the guaranteed headroom, hottest
 *    (most-sampled this window) first. This is what makes a quota a
 *    guarantee rather than just a cap — a base policy tuned for one
 *    global hot set would otherwise leave the freed capacity stranded
 *    while the gated tenant's pages keep crowding the top of its
 *    histogram.
 *  - Rebalance also *rotates* tenants whose placement is visibly bad
 *    (sampled fast fraction under `rotate_below`): they are demoted to
 *    the fill limit so the filler and the base policy can swap better
 *    pages in. Without rotation a tenant pinned at quota with junk
 *    pages (e.g. leftover first-touch placement) could never improve
 *    its mix, and its measured hit density would starve it for good.
 *  - Quotas start weight-proportional ("static weights"). When rebalance
 *    is on, a periodic tick re-divides the tier by one of two demand
 *    signals (`FairShareConfig::quota_mode`):
 *      - *marginal* (default): each tenant keeps a shadow-sampled
 *        miss-ratio-curve estimate (`GhostMrc`, fed from the sample
 *        stream) answering "how many sampled hits per window would my
 *        q-th hottest unit contribute?"; the rebalancer water-fills
 *        capacity to whichever tenant has the highest weight-scaled
 *        marginal utility, above guaranteed `min_share` floors. A
 *        streaming tenant whose pages are touched once flattens its own
 *        curve immediately, so it cannot out-bid a hot set — the
 *        failure mode of per-unit densities.
 *      - *density*: the previous heuristic — sampled fast-tier hits per
 *        resident unit, EMA-smoothed and weight-scaled. Kept as the
 *        comparison baseline (`bench/fig_marginal_utility`).
 *  - A tenant arriving mid-run has no demand history; for the first
 *    rebalance window after its arrival its floor is raised to
 *    `arrival_grace` of its static share (and its demand EMA is seeded
 *    from the incumbents), so the post-arrival fairness dip lasts one
 *    window instead of a full EMA warm-up.
 *  - Tenants can *churn*: directory regions carry residency windows
 *    (possibly several — diurnal co-location), and the maintenance tick
 *    applies every window edge the clock has crossed. A departure
 *    starts a *paced* reclaim drain: up to `release_batch` of the
 *    tenant's fast-resident units are demoted per tick (the
 *    asynchronous reclaim writeback a real kernel performs — an exit
 *    never flushes gigabytes in one stop-the-world batch), and once the
 *    share is drained the whole region is released back to the free
 *    pools. The departing tenant loses its quota the moment it departs,
 *    so the drain pace bounds migration stall cost without delaying the
 *    survivors' re-division; benches can therefore separate release
 *    latency from stall cost. A tenant with more residency windows then
 *    waits for the next one and re-arrives (with the same arrival
 *    grace as a first arrival) into its freshly released region.
 *
 * Everything is deterministic: quotas are integer units computed in a
 * fixed tenant order, so same config + seed replays bit-identically.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fault/watchdog.h"
#include "multitenant/tenant.h"
#include "multitenant/tenant_stats.h"
#include "policies/policy.h"
#include "probstruct/ghost_mrc.h"

namespace hybridtier {

/** Demand signal the rebalance tick divides the tier by. */
enum class QuotaMode : uint8_t {
  kDensity = 0,   //!< Sampled fast-tier hits per resident unit (EMA).
  kMarginal = 1,  //!< Ghost-MRC marginal utility, water-filled.
};

/** Parses "density" / "marginal"; fatal on anything else. */
QuotaMode ParseQuotaMode(const std::string& name);

/** Display name of a quota mode. */
const char* QuotaModeName(QuotaMode mode);

/** Knobs of the fair-share wrapper. */
struct FairShareConfig {
  /** Re-divide quotas by recent hit rate; false = static weights only. */
  bool rebalance = true;
  /** Demand signal for the re-division. */
  QuotaMode quota_mode = QuotaMode::kMarginal;
  /**
   * Virtual-time period of the rebalance tick. Sized to the simulator's
   * compressed timescales (policy tick 1 ms, stats 20 ms).
   */
  TimeNs rebalance_interval_ns = 25 * kMillisecond;
  /**
   * Fraction of a tenant's static (weight-proportional) quota that is
   * always guaranteed, regardless of demand.
   */
  double min_share = 0.25;
  /** Cap on one quota-enforcement demotion batch, in tracking units. */
  uint64_t max_enforce_batch = 4096;
  /** Promote under-quota tenants' sampled slow pages into their share. */
  bool fill_to_quota = true;
  /** Per-tenant cap on buffered fill candidates between ticks. */
  size_t candidate_buffer = 1024;
  /**
   * Fraction of each quota the filler leaves empty for the base
   * policy's own (frequency-thresholded) promotions, so filling never
   * crowds out the wrapped policy's better-informed picks.
   */
  double fill_margin = 0.125;
  /**
   * Rotate (demote to the fill limit at rebalance) tenants whose
   * sampled fast-access fraction is below this, so a bad resident mix
   * gets swapped out instead of pinning the tenant's hit density — and
   * therefore its quota — at the floor forever.
   */
  double rotate_below = 0.5;
  /**
   * Fraction of a newly arrived tenant's static share guaranteed as its
   * floor for the first rebalance window after arrival, while its
   * demand estimate warms up. 0 disables the grace (the tenant starts
   * from the min_share floor and earns quota only as samples arrive).
   */
  double arrival_grace = 1.0;
  /**
   * Cap on the fast units demoted per tick while draining a departed
   * tenant's share (paced reclaim writeback); the region is released
   * once the drain finishes. 0 = legacy behavior: the whole share is
   * demoted in one uncapped batch at the departure tick.
   */
  uint64_t release_batch = 4096;
  /**
   * Endpoint-aware placement: weigh hotness against the cost of the
   * slow-tier endpoint a unit is homed on (idle latency + current
   * capped backlog, read from the bound PerfModel). Victim selection
   * breaks hotness ties by demoting units bound for cheap endpoints
   * first — a hot unit homed on a distant or congested device is the
   * *last* to leave the fast tier — fill-to-quota promotes
   * equally-sampled units off expensive endpoints first, and
   * quota-truncated promotion batches admit the expensive-endpoint
   * pages first. No effect on single-endpoint layouts (every unit
   * costs the same), so the default two-tier behavior is unchanged.
   */
  bool endpoint_aware = false;
  /**
   * Target sampled-unit count of each tenant's ghost MRC estimate
   * (marginal mode). A tenant whose region span exceeds the budget gets
   * SHARDS spatial sampling at the smallest power-of-two rate that fits
   * (`GhostMrc::SampleShiftFor`), shrinking its counter memory by the
   * same factor; smaller tenants stay exact. 0 disables sampling (every
   * tenant exact, the pre-fleet behavior).
   */
  uint64_t ghost_sample_budget = 1024;
};

/** Per-tenant quota enforcement as a `TieringPolicy` decorator. */
class FairSharePolicy : public TieringPolicy,
                        public TenantQuotaStatsSource,
                        public InvariantSource {
 public:
  /**
   * @param base      wrapped policy (owned); decides *which* pages move.
   * @param directory tenant layout; must cover the run's address space.
   * @param config    wrapper knobs.
   */
  FairSharePolicy(std::unique_ptr<TieringPolicy> base,
                  TenantDirectory directory,
                  FairShareConfig config = FairShareConfig{});
  ~FairSharePolicy() override;

  void Bind(const PolicyContext& context) override;
  void OnAccess(PageId unit, const TouchResult& touch, TimeNs now) override;
  void OnSample(const SampleRecord& sample) override;
  void Tick(TimeNs now) override;
  size_t MetadataBytes() const override;
  const char* name() const override { return name_.c_str(); }

  /**
   * Fault transition (fault/fault_runtime.h): a down endpoint strands
   * its fast-resident homed units — they cannot be demoted back, so the
   * capacity the water-filler divides shrinks to the *effective* fast
   * capacity (total minus stranded units). Quotas are re-divided
   * immediately over that effective capacity, so tenants degrade
   * together instead of the next enforcement pass thrashing whoever
   * happens to sit over a suddenly-shrunk tier. Recovery restores the
   * capacity and the regular fill machinery re-admits the endpoint.
   */
  void OnEndpointHealth(uint32_t endpoint, EndpointHealth state,
                        TimeNs now) override;

  /** Fault evacuation/spill moved pages under us: the incremental
   *  occupancy mirror is stale, so fall back to the lazy rescan. */
  void OnExternalMigration(TimeNs now) override;

  // InvariantSource: quota/occupancy consistency for the watchdog.
  bool CheckInvariants(std::string* error) const override;

  /**
   * Inline: OnAccess keeps gate charges and occupancy in sync with the
   * memory state at the instant of each access (EnsureOccupancy rescans
   * read live residency), and the wrapped policy may itself require
   * inline delivery — deferring either to end of op would let the rescan
   * observe later first-touches it then double-counts.
   */
  AccessInterest access_interest() const override {
    return AccessInterest::kInline;
  }

  /** The wrapped policy's estimate (victim ordering sees through us). */
  uint32_t HotnessOf(PageId unit) const override {
    return base_->HotnessOf(unit);
  }

  // TenantQuotaStatsSource:
  bool GetTenantQuotaStats(uint32_t tenant,
                           TenantQuotaStats* out) const override;

  /** Current fast-tier quota of `tenant`, in tracking units. */
  uint64_t quota_units(uint32_t tenant) const { return quota_[tenant]; }

  /** Tracked fast-tier occupancy of `tenant`, in tracking units. */
  uint64_t fast_units(uint32_t tenant) const { return fast_units_[tenant]; }

  /** Promotions dropped at the gate because `tenant` was at quota. */
  uint64_t gated_promotions(uint32_t tenant) const {
    return gated_promotions_[tenant];
  }

  /** Demotions issued by quota enforcement for `tenant`. */
  uint64_t enforced_demotions(uint32_t tenant) const {
    return enforced_demotions_[tenant];
  }

  /** Fill-to-quota promotions issued for `tenant`. */
  uint64_t fill_promotions(uint32_t tenant) const {
    return fill_promotions_[tenant];
  }

  /** Pages released back to the free pools when `tenant` departed. */
  uint64_t released_units(uint32_t tenant) const {
    return released_units_[tenant];
  }

  /** Gate charges for admitted-but-not-yet-touched units of `tenant`. */
  uint64_t pending_first_touch(uint32_t tenant) const {
    return pending_pages_[tenant].size();
  }

  /**
   * Marginal utility (sampled hits/window of the next fast unit past the
   * current quota) computed for `tenant` at the last rebalance; 0 in
   * density mode.
   */
  double marginal_utility(uint32_t tenant) const {
    return marginal_utility_[tenant];
  }

  /** Samples fed to `tenant`'s ghost estimate since its last reset. */
  uint64_t shadow_samples(uint32_t tenant) const {
    return shadow_samples_[tenant];
  }

  /** SHARDS sampling shift of `tenant`'s ghost estimate (0 = exact). */
  uint32_t ghost_sample_shift(uint32_t tenant) const {
    return ghost_.empty() ? 0 : ghost_[tenant].sample_shift();
  }

  /** Tenants currently inside a residency window. */
  uint32_t active_tenants() const {
    return static_cast<uint32_t>(active_.size());
  }

  // O(active) work counters, for complexity guard tests: each counts
  // tenant visits (not wall time), so a test can assert the maintenance
  // paths scale with the *active* tenant count, not the fleet size.
  /** Residency-window edges popped off the churn schedule. */
  uint64_t churn_edge_visits() const { return churn_edge_visits_; }
  /** Tenants visited across all rebalance passes. */
  uint64_t rebalance_tenant_visits() const {
    return rebalance_tenant_visits_;
  }
  /** Tenants visited across all quota-enforcement passes. */
  uint64_t enforce_tenant_visits() const { return enforce_tenant_visits_; }
  /** Tenants visited across all fill-to-quota passes. */
  uint64_t fill_tenant_visits() const { return fill_tenant_visits_; }

  /** True if `tenant`'s residency window was open at the last tick. */
  bool tenant_active(uint32_t tenant) const {
    return churn_state_[tenant] == kChurnActive;
  }

  /** True if `tenant` departed but its paced reclaim drain still runs. */
  bool tenant_draining(uint32_t tenant) const {
    return churn_state_[tenant] == kChurnDraining;
  }

  /** The wrapped policy. */
  const TieringPolicy& base() const { return *base_; }

 private:
  class QuotaGate;

  /** Where a tenant sits in its residency windows. */
  enum ChurnState : uint8_t {
    kChurnPending = 0,  //!< Next window's arrival not yet reached.
    kChurnActive = 1,   //!< Present: holds quota, counted in rebalance.
    kChurnDeparted = 2, //!< Every window closed: region released.
    kChurnDraining = 3, //!< Departed; paced reclaim still demoting.
  };

  /** One precomputed residency-window edge of the churn schedule. */
  struct ChurnEdge {
    TimeNs at;        //!< Arrival or departure instant.
    uint32_t tenant;  //!< Whose window list to advance.
  };

  /**
   * Applies arrival/departure window edges crossed by `now` and, when
   * any tenant changed state, re-divides quotas over the tenants now
   * active. Edges come off a schedule precomputed at Bind and sorted by
   * time, so a tick inside a quiet stretch costs O(1) and a tick that
   * crosses edges costs O(edges crossed) — never O(fleet).
   */
  void ApplyChurn(TimeNs now);

  /**
   * Walks `tenant`'s residency windows forward to `now` (the per-edge
   * body of ApplyChurn): arrivals activate, departures start the paced
   * drain, and a drain overtaken by the next window is force-finished.
   * Returns true when the tenant's churn state changed.
   */
  bool AdvanceTenantWindows(uint32_t tenant, TimeNs now);

  // Dense active/draining sets: `active_` lists the tenant ids inside a
  // residency window, `active_index_[t]` is t's slot in it (kNoSlot when
  // absent); removal swaps with the back. Every maintenance pass
  // (rebalance, enforcement, fill, drain) walks these lists, so steady-
  // state work is O(active tenants), not O(fleet).
  void AddActive(uint32_t tenant);
  void RemoveActive(uint32_t tenant);
  void AddDraining(uint32_t tenant);
  void RemoveDraining(uint32_t tenant);

  /**
   * Paced departure reclaim: demotes up to `release_batch` fast units
   * of each draining tenant, and releases the region once drained. The
   * address-order scan resumes at a per-tenant cursor, so each pagemap
   * byte is visited once per drain, not once per tick.
   */
  void DrainDeparting(TimeNs now);

  /**
   * Flushes a draining tenant's remaining fast share in one batch and
   * releases the region now — used when the tenant's next residency
   * window opens before the paced drain finished, so a re-admission
   * never overlaps a half-released region.
   */
  void ForceFinishDrain(uint32_t tenant, TimeNs now);

  /**
   * Frees a fully drained tenant's region, resets its demand state, and
   * advances it to its next residency window (or retires it for good).
   * `now` stamps the end of the drain-window trace span.
   */
  void FinishRelease(uint32_t tenant, TimeNs now);

  /**
   * Counts fast-resident units per tenant once, lazily, at the first
   * event after the run's prefault. Returns true when this call did the
   * initialization (callers then skip incremental updates that the scan
   * already covered).
   */
  bool EnsureOccupancy();

  /** Weight-proportional quotas summing exactly to the fast capacity. */
  void ComputeStaticQuotas();

  /**
   * Fast capacity the quota divisions run over: the configured size
   * minus units stranded by down endpoints (fast-resident units homed
   * on a dead device cannot be demoted off the tier, so they are not
   * divisible). Equals `context().fast_capacity_units` whenever no
   * endpoint is down — the healthy path computes the identical quotas
   * it always did.
   */
  uint64_t EffectiveFastCapacity() const;

  /** Demand-driven re-division (density EMA or marginal utility). */
  void Rebalance(TimeNs now);

  /**
   * The guaranteed floor for `tenant` at a rebalance at `now`: the
   * min_share fraction of its static quota, raised to the arrival-grace
   * share while the tenant is inside its post-arrival grace window.
   */
  uint64_t RebalanceFloor(uint32_t tenant, TimeNs now) const;

  /** Density-EMA re-division (the original heuristic). */
  void RebalanceDensity(TimeNs now);

  /** Ghost-MRC marginal-utility water-filling re-division. */
  void RebalanceMarginal(TimeNs now);

  /** Fill-limit for `tenant`: its quota minus the reserved margin. */
  uint64_t FillLimit(uint32_t tenant) const;

  /**
   * Cost of landing slow-tier traffic on `unit`'s home endpoint right
   * now: idle latency + capped backlog. 1 when endpoint awareness is
   * inactive (single endpoint, knob off, or no bound perf model), so
   * cost-scaled rankings reduce to their endpoint-blind forms. A
   * simulator-internal read (like HotnessOf): no metadata traffic.
   */
  uint64_t EndpointCostOf(PageId unit, TimeNs now) const;

  /** Demotes tenant `t` down to `target` fast units (one batch),
   *  stamped with `reason` (enforcement vs. rotation). */
  void DemoteToTarget(uint32_t t, uint64_t target, TimeNs now,
                      MigrationReason reason);

  /** Demotes over-quota tenants' pages down to their quotas. */
  void EnforceQuotas(TimeNs now);

  /** Promotes under-quota tenants' sampled slow pages into headroom. */
  void FillQuotas(TimeNs now);

  /** Gate path: promotion batch filtered by per-tenant headroom. The
   *  base policy's reason passes through to the executed batch. */
  TimeNs GatedPromote(std::span<const PageId> pages, TimeNs now,
                      MigrationReason reason);

  /** Gate path: demotion batch with occupancy tracking. */
  TimeNs TrackedDemote(std::span<const PageId> pages, TimeNs now,
                       MigrationReason reason);

  std::unique_ptr<TieringPolicy> base_;
  TenantDirectory directory_;
  FairShareConfig config_;
  std::string name_;

  std::unique_ptr<QuotaGate> gate_;
  bool occupancy_ready_ = false;
  std::vector<uint8_t> endpoint_down_;  //!< Down mask (sized at Bind).
  bool any_endpoint_down_ = false;      //!< Fast path: no fault active.
  /** endpoint_aware resolved against the bound context (see
   *  EndpointCostOf); false whenever awareness could change nothing. */
  bool endpoint_aware_active_ = false;
  TimeNs next_rebalance_ns_ = 0;

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  // Churn schedule (Bind-time, sorted by time then tenant) + cursor.
  std::vector<ChurnEdge> churn_edges_;
  size_t churn_cursor_ = 0;

  // Dense membership sets (see AddActive above).
  std::vector<uint32_t> active_;
  std::vector<uint32_t> active_index_;
  std::vector<uint32_t> draining_;
  std::vector<uint32_t> draining_index_;

  // O(active) work counters (see the public accessors).
  uint64_t churn_edge_visits_ = 0;
  uint64_t rebalance_tenant_visits_ = 0;
  uint64_t enforce_tenant_visits_ = 0;
  uint64_t fill_tenant_visits_ = 0;

  // Compact per-active-tenant scratch for the re-division calls
  // (avoids per-rebalance fleet-sized allocations).
  std::vector<double> scratch_demand_;
  std::vector<uint64_t> scratch_caps_;
  std::vector<uint64_t> scratch_floors_;
  std::vector<double> scratch_fraction_;

  // Per-tenant state, all indexed by tenant id.
  std::vector<uint64_t> quota_;         //!< Fast-tier quota, units.
  std::vector<uint64_t> static_quota_;  //!< Weight-proportional quota.
  std::vector<uint64_t> fast_units_;    //!< Tracked fast occupancy.
  std::vector<uint64_t> window_fast_samples_;  //!< Fast-tier samples.
  std::vector<uint64_t> window_slow_samples_;  //!< Slow-tier samples.
  std::vector<double> demand_ema_;  //!< Halving-EMA of hit density.
  std::vector<uint64_t> gated_promotions_;
  std::vector<uint64_t> enforced_demotions_;
  std::vector<uint64_t> fill_promotions_;
  std::vector<uint64_t> released_units_;  //!< Freed at departure.
  std::vector<uint8_t> churn_state_;      //!< ChurnState per tenant.
  std::vector<size_t> window_index_;      //!< Current residency window.
  std::vector<PageId> drain_cursor_;      //!< Paced-drain scan resume.
  std::vector<std::vector<PageId>> candidates_;  //!< Sampled slow pages.
  /** Durable gate charges: the admitted non-resident units whose first
   *  touch has not happened yet. Tracking the units themselves (not a
   *  bare counter) keeps the charge exact: only the charged unit's own
   *  first touch releases it, and re-admitting a still-untouched unit
   *  cannot double-charge. */
  std::vector<std::unordered_set<PageId>> pending_pages_;
  std::vector<GhostMrc> ghost_;  //!< Shadow MRC estimate (marginal mode).
  std::vector<uint64_t> shadow_samples_;   //!< Samples fed to ghost_.
  std::vector<double> marginal_utility_;   //!< At last rebalance.
  std::vector<TimeNs> grace_until_ns_;     //!< Arrival-grace deadline.

  // Trace emission (all inert when the bound context has no trace):
  // quota decisions land on a controller track, churn and per-tenant
  // quota awards on one track per tenant.
  TraceEmitter* trace_ = nullptr;
  TraceEmitter::TrackId controller_track_ = 0;
  std::vector<TraceEmitter::TrackId> tenant_track_;
  std::vector<TimeNs> drain_start_ns_;  //!< Departure time, per tenant.

  // Scratch (avoids per-batch allocation).
  std::vector<PageId> admitted_;
  /** Per-page marks within one batch: "charged against headroom" in
   *  GatedPromote, "was fast-resident" in TrackedDemote. */
  std::vector<uint8_t> batch_marks_;
  std::vector<uint64_t> batch_admits_;
  std::vector<PageId> victims_;
  /** (score, unit) pairs for cheapest-first victim ordering: the score
   *  is the hotness estimate, with the home-endpoint cost packed into
   *  the low bits as a tie-breaker in endpoint-aware mode. */
  std::vector<std::pair<uint64_t, PageId>> victim_rank_;
  /** (cost, page) scratch for endpoint-aware admission ordering. */
  std::vector<std::pair<uint64_t, PageId>> admit_order_;
  /** Reordered promotion batch fed to the admission loop. */
  std::vector<PageId> admit_pages_;
  std::unordered_set<PageId> batch_seen_;  //!< In-batch dedup.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_FAIR_SHARE_POLICY_H_
