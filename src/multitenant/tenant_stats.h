#ifndef HYBRIDTIER_MULTITENANT_TENANT_STATS_H_
#define HYBRIDTIER_MULTITENANT_TENANT_STATS_H_

/**
 * @file
 * Per-tenant quota/estimator stats interface.
 *
 * The simulation harness attributes results per tenant when the workload
 * is a `TenantTagSource`; symmetrically, a policy that manages per-tenant
 * quotas implements this interface so the harness can surface the
 * controller's view (quota, shadow-sample volume, marginal utility at
 * the allocation edge) in each `TenantResult`. The harness detects it
 * with a `dynamic_cast`, mirroring the workload side — policies without
 * per-tenant state need no changes.
 */

#include <cstdint>

namespace hybridtier {

/** One tenant's quota-controller state, as reported to the harness. */
struct TenantQuotaStats {
  uint64_t quota_units = 0;       //!< Current fast-tier quota.
  uint64_t shadow_samples = 0;    //!< Samples fed to the ghost estimate.
  /**
   * Sampled hits per rebalance window the tenant's next fast unit past
   * its current quota would contribute (the water level it bid at).
   */
  double marginal_utility = 0.0;
  uint64_t pending_first_touch = 0;  //!< Durable gate charges in flight.
};

/** Implemented by policies that manage per-tenant quotas. */
class TenantQuotaStatsSource {
 public:
  virtual ~TenantQuotaStatsSource() = default;

  /**
   * Fills `out` with tenant `tenant`'s controller state; returns false
   * when the policy tracks no such tenant.
   */
  virtual bool GetTenantQuotaStats(uint32_t tenant,
                                   TenantQuotaStats* out) const = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_TENANT_STATS_H_
