#ifndef HYBRIDTIER_MULTITENANT_FLEET_H_
#define HYBRIDTIER_MULTITENANT_FLEET_H_

/**
 * @file
 * Fleet workload generator: thousands of tenants from one spec string.
 *
 * Hand-written tenant lists ("zipf,cdn:2@0-1e8,...") stop scaling at a
 * dozen entries; the fleet regime the ROADMAP targets — a shared CXL
 * pool multiplexing O(10^3) tenants under diurnal or Poisson churn —
 * needs a generator. A `FleetSpec` describes the population
 * statistically and expands deterministically into ordinary
 * `TenantSpec`s that feed the existing `MuxWorkload` machinery:
 *
 *   fleet:1000,zipf=0.9,fp=2048,churn=poisson,duty=0.1,period=1e8
 *
 * Grammar: `fleet:<N>` followed by optional comma-separated `key=value`
 * pairs (a `--tenants` value starting with "fleet:" is one fleet spec,
 * never mixed with explicit tenant entries):
 *
 *   wl=<id>       workload id every tenant runs (default "zipf")
 *   zipf=<t>      Zipf skew of tenant weights: rank r gets r^-t
 *                 (default 0.9; 0 = equal weights)
 *   fp=<pages>    rank-1 footprint in 4 KiB pages (default 2048)
 *   fpskew=<t>    Zipf skew of footprints: rank r gets fp * r^-t,
 *                 floored at 64 pages (default 0 = uniform)
 *   churn=<kind>  none | poisson | diurnal (default none)
 *   duty=<f>      expected fraction of time a tenant is resident,
 *                 in (0,1) (default 0.5)
 *   period=<ns>   mean on+off cycle (poisson) or exact recurrence
 *                 period (diurnal), virtual ns (default 1e8)
 *   horizon=<ns>  stop generating windows here; a window still open at
 *                 the horizon becomes open-ended (default 1e9)
 *   seed=<n>      fleet RNG seed for the Poisson schedules; windows are
 *                 a pure function of (spec, seed), independent of the
 *                 run seed (default 1)
 *
 * Churn kinds:
 *  - `poisson`: each tenant alternates exponential on/off residency
 *    (means duty*period and (1-duty)*period), the memoryless
 *    arrival/departure process; ~duty of the fleet is present at any
 *    instant.
 *  - `diurnal`: each tenant is resident for duty*period out of every
 *    `period`, phase-spread evenly across the fleet — the recurring
 *    co-location pattern (tenant r's windows all start at
 *    r/N * period + k*period).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "multitenant/tenant.h"

namespace hybridtier {

/** Statistical description of a tenant fleet (see file comment). */
struct FleetSpec {
  uint32_t tenants = 0;            //!< Population size (required, > 0).
  std::string workload_id = "zipf";
  double weight_skew = 0.9;        //!< zipf= (0 = equal weights).
  uint64_t footprint_pages = 2048; //!< fp= rank-1 footprint.
  double footprint_skew = 0.0;     //!< fpskew= (0 = uniform).
  std::string churn = "none";      //!< none | poisson | diurnal.
  double duty = 0.5;               //!< Expected resident fraction.
  TimeNs period_ns = 100000000;    //!< Cycle length (1e8 = 100 ms).
  TimeNs horizon_ns = 1000000000;  //!< Window generation horizon.
  uint64_t seed = 1;               //!< Fleet RNG seed (poisson).

  bool operator==(const FleetSpec& other) const = default;
};

/** True iff `text` is a fleet spec (starts with "fleet:"). */
bool IsFleetSpec(const std::string& text);

/** Parses a fleet spec string; fatal on malformed input. */
FleetSpec ParseFleetSpec(const std::string& text);

/**
 * Formats `spec` back into the grammar above with every knob explicit;
 * `ParseFleetSpec(FormatFleetSpec(s)) == s` for any valid spec.
 */
std::string FormatFleetSpec(const FleetSpec& spec);

/**
 * Expands the spec into per-tenant `TenantSpec`s (weights, footprint
 * scales, residency windows). Deterministic: the same spec always
 * yields the same fleet. Per-tenant workload seeds are left at 0 so
 * `MakeMuxWorkload` derives them from the run seed as usual.
 */
std::vector<TenantSpec> MakeFleetSpecs(const FleetSpec& spec);

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_FLEET_H_
