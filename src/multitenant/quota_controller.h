#ifndef HYBRIDTIER_MULTITENANT_QUOTA_CONTROLLER_H_
#define HYBRIDTIER_MULTITENANT_QUOTA_CONTROLLER_H_

/**
 * @file
 * Quota division primitives for the fair-share wrapper.
 *
 * Two allocators turn per-tenant demand signals into an integer split of
 * the fast tier:
 *
 *  - `DivideProportional`: classic capped proportional division (used
 *    for static weight quotas, the density heuristic, and for spreading
 *    capacity no tenant has a use for).
 *  - `MarginalUtilityQuotas`: Equilibria-style water-filling on marginal
 *    utility. Each tenant submits a descending demand curve ("my q-th
 *    hottest unit would contribute v sampled hits per window", from its
 *    `GhostMrc` shadow estimate); capacity flows unit-chunk by
 *    unit-chunk to whichever tenant currently has the highest
 *    weight-scaled marginal utility, after `floors` are guaranteed.
 *    Capacity left after all positive-utility demand is satisfied is
 *    divided weight-proportionally so nothing is stranded.
 *
 * Both are deterministic: ties break on tenant index, then on the higher
 * utility step, so the same inputs always produce the same split — and
 * both are monotone in `total` (more capacity never shrinks any
 * tenant's quota), which the unit tests assert.
 */

#include <cstdint>
#include <vector>

#include "probstruct/ghost_mrc.h"

namespace hybridtier {

/**
 * Divides `total` units among tenants in proportion to `weights`, never
 * exceeding `caps`, with integer water-filling: capped tenants are
 * pinned and the surplus re-divided among the rest. Flooring leftovers
 * go to tenants in index order, so the split is deterministic and sums
 * to min(total, sum(caps)).
 */
std::vector<uint64_t> DivideProportional(const std::vector<double>& weights,
                                         const std::vector<uint64_t>& caps,
                                         uint64_t total);

/**
 * Water-fills `total` fast units over per-tenant marginal-utility
 * curves.
 *
 * @param curves  per-tenant descending demand steps (from
 *                `GhostMrc::AppendDemandSteps`); the first `floors[i]`
 *                units of tenant i's curve are considered covered by its
 *                floor.
 * @param weights per-tenant fair-share weights (> 0 for live tenants; a
 *                weight of 0 marks an absent tenant, which receives 0).
 * @param floors  guaranteed minimum quotas (each <= caps[i]).
 * @param caps    per-tenant maximum quotas (the region span).
 * @param total   fast-tier capacity to divide.
 * @returns       quotas with floors[i] <= q[i] <= caps[i] for live
 *                tenants, summing to min(total, sum(caps)) whenever
 *                total >= sum(floors).
 */
std::vector<uint64_t> MarginalUtilityQuotas(
    const std::vector<std::vector<GhostDemandStep>>& curves,
    const std::vector<double>& weights,
    const std::vector<uint64_t>& floors,
    const std::vector<uint64_t>& caps, uint64_t total);

}  // namespace hybridtier

#endif  // HYBRIDTIER_MULTITENANT_QUOTA_CONTROLLER_H_
