#ifndef HYBRIDTIER_SAMPLING_BUDGETED_SAMPLER_H_
#define HYBRIDTIER_SAMPLING_BUDGETED_SAMPLER_H_

/**
 * @file
 * Per-tenant sampler budgets over the PEBS-analogue event stream.
 *
 * One global sampling period makes the sample stream proportional to
 * access *volume*: a tenant issuing 10x the accesses owns 10x the
 * samples, crowding out the signal every per-tenant estimator (hit
 * density, ghost MRC) needs about its smaller neighbours. NeoMem-style
 * per-source budgets fix this by scaling each tenant's sample period to
 * its access rate: every adaptation window the sampler re-divides the
 * global sample budget (window / base_period) equally among the tenants
 * active in that window and sets each tenant's period to deliver its
 * share. A high-rate tenant ends up with a long period, a small tenant
 * with a period floored at 1 — proportional signal for everyone, same
 * total sample-processing cost.
 *
 * Periods are jittered per tenant (deterministically, like
 * `AccessSampler`) so strided tenants do not alias, and all state is a
 * pure function of the access sequence: same stream, same samples.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/page.h"
#include "mem/tier.h"
#include "sampling/ring_buffer.h"
#include "sampling/sample.h"

namespace hybridtier {

/** Knobs of the per-tenant budgeted sampler. */
struct BudgetedSamplerConfig {
  uint64_t base_period = 61;     //!< Global mean accesses per sample.
  size_t buffer_capacity = 8192; //!< Shared sample buffer depth.
  /** Total accesses between period re-adaptations. */
  uint64_t adapt_window_accesses = 65536;
  /** Per-tenant period ceiling, as a multiple of base_period. */
  uint64_t max_period_scale = 64;
  uint64_t seed = 7;             //!< Jitter RNG seed.
};

/** Samples each tenant's stream at its own budget-scaled period. */
class BudgetedSampler {
 public:
  BudgetedSampler(const BudgetedSamplerConfig& config, uint32_t tenants);

  /**
   * Observes one access by `tenant`; if its countdown expires, enqueues
   * a sample. Returns true if this access was sampled.
   */
  bool OnAccess(uint32_t tenant, PageId page, Tier tier, TimeNs now);

  /** Drains up to `max_records` pending samples into `out` (appending). */
  size_t Drain(std::vector<SampleRecord>* out, size_t max_records);

  /** Current sampling period of `tenant`. */
  uint64_t period(uint32_t tenant) const { return period_[tenant]; }

  /** Samples taken for `tenant` so far (including dropped ones). */
  uint64_t tenant_samples(uint32_t tenant) const {
    return tenant_samples_[tenant];
  }

  /** Accesses observed for `tenant` so far. */
  uint64_t tenant_accesses(uint32_t tenant) const {
    return tenant_accesses_[tenant];
  }

  /** Samples taken so far across all tenants (including dropped). */
  uint64_t samples_taken() const { return samples_taken_; }

  /** Samples dropped due to a full buffer. */
  uint64_t samples_dropped() const { return buffer_.dropped(); }

  /** Accesses observed so far across all tenants. */
  uint64_t accesses_seen() const { return accesses_seen_; }

  /** Pending samples in the buffer. */
  size_t pending() const { return buffer_.size(); }

  /** Period re-adaptations performed so far. */
  uint64_t adaptations() const { return adaptations_; }

 private:
  /** Draws tenant `t`'s next jittered countdown (period +/- 25%). */
  uint64_t NextCountdown(uint32_t t);

  /** Re-divides the sample budget over the tenants seen this window. */
  void Adapt();

  BudgetedSamplerConfig config_;
  RingBuffer<SampleRecord> buffer_;
  std::vector<Rng> rng_;                  //!< Per-tenant jitter streams.
  std::vector<uint64_t> period_;          //!< Current per-tenant period.
  std::vector<uint64_t> countdown_;
  std::vector<uint64_t> window_accesses_; //!< This adaptation window.
  std::vector<uint64_t> tenant_accesses_;
  std::vector<uint64_t> tenant_samples_;
  uint64_t window_seen_ = 0;
  uint64_t samples_taken_ = 0;
  uint64_t accesses_seen_ = 0;
  uint64_t adaptations_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_SAMPLING_BUDGETED_SAMPLER_H_
