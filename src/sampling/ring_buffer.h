#ifndef HYBRIDTIER_SAMPLING_RING_BUFFER_H_
#define HYBRIDTIER_SAMPLING_RING_BUFFER_H_

/**
 * @file
 * Fixed-capacity ring buffer with drop-on-full semantics.
 *
 * Models the hardware PEBS buffer: if the tiering runtime does not drain
 * samples fast enough, new samples are dropped (and counted), never
 * blocking the producer — exactly the failure mode a real sampling
 * pipeline has.
 */

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace hybridtier {

/** Bounded FIFO ring buffer of trivially copyable records. */
template <typename T>
class RingBuffer {
 public:
  /** Creates a buffer holding at most `capacity` records. */
  explicit RingBuffer(size_t capacity) : buffer_(capacity) {
    HT_ASSERT(capacity > 0, "ring buffer capacity must be positive");
  }

  /** Enqueues `record`; returns false (and counts a drop) when full. */
  bool Push(const T& record) {
    if (size_ == buffer_.size()) {
      ++dropped_;
      return false;
    }
    buffer_[(head_ + size_) % buffer_.size()] = record;
    ++size_;
    return true;
  }

  /** Dequeues into `record`; returns false when empty. */
  bool Pop(T* record) {
    if (size_ == 0) return false;
    *record = buffer_[head_];
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    return true;
  }

  /**
   * Dequeues up to `max_records` into `out` (appending); returns the
   * number dequeued. This is the batch drain used by the runtime.
   */
  size_t Drain(std::vector<T>* out, size_t max_records) {
    size_t drained = 0;
    T record;
    while (drained < max_records && Pop(&record)) {
      out->push_back(record);
      ++drained;
    }
    return drained;
  }

  /** Records currently queued. */
  size_t size() const { return size_; }
  /** Maximum queue depth. */
  size_t capacity() const { return buffer_.size(); }
  /** True when no records are queued. */
  bool empty() const { return size_ == 0; }
  /** Records dropped because the buffer was full. */
  uint64_t dropped() const { return dropped_; }

 private:
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_SAMPLING_RING_BUFFER_H_
