#ifndef HYBRIDTIER_SAMPLING_SAMPLER_H_
#define HYBRIDTIER_SAMPLING_SAMPLER_H_

/**
 * @file
 * Hardware-event-sampling analogue (Intel PEBS / AMD IBS).
 *
 * Emits every Nth memory access into a bounded sample buffer. The period
 * is jittered deterministically (a small pseudo-random offset re-drawn
 * after every sample) to avoid aliasing with strided access patterns, as
 * real sampling drivers do.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/page.h"
#include "mem/tier.h"
#include "sampling/ring_buffer.h"
#include "sampling/sample.h"

namespace hybridtier {

/** Samples one in `period` accesses into a drop-on-full ring buffer. */
class AccessSampler {
 public:
  /**
   * @param period          mean number of accesses between samples (>=1).
   * @param buffer_capacity sample buffer depth.
   * @param seed            jitter RNG seed.
   */
  AccessSampler(uint64_t period, size_t buffer_capacity, uint64_t seed = 7);

  /**
   * Observes one access; if the countdown expires, enqueues a sample.
   * Returns true if this access was sampled (regardless of buffer drops).
   * Inlined: the common case is one decrement and a predictable branch.
   */
  bool OnAccess(PageId page, Tier tier, TimeNs now) {
    ++accesses_seen_;
    if (--countdown_ > 0) [[likely]] {
      return false;
    }
    TakeSample(page, tier, now);
    return true;
  }

  /** Drains up to `max_records` pending samples into `out` (appending). */
  size_t Drain(std::vector<SampleRecord>* out, size_t max_records);

  /** Number of samples taken so far (including dropped ones). */
  uint64_t samples_taken() const { return samples_taken_; }

  /** Samples dropped due to a full buffer. */
  uint64_t samples_dropped() const { return buffer_.dropped(); }

  /** Accesses observed so far. */
  uint64_t accesses_seen() const { return accesses_seen_; }

  /** Pending samples in the buffer. */
  size_t pending() const { return buffer_.size(); }

  /** Mean sampling period. */
  uint64_t period() const { return period_; }

 private:
  /** Draws the next jittered countdown (period +/- 25%). */
  uint64_t NextCountdown();

  /** Emits one sample and re-arms the countdown (cold path). */
  void TakeSample(PageId page, Tier tier, TimeNs now);

  uint64_t period_;
  RingBuffer<SampleRecord> buffer_;
  Rng rng_;
  uint64_t countdown_;
  uint64_t samples_taken_ = 0;
  uint64_t accesses_seen_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_SAMPLING_SAMPLER_H_
