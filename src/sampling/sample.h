#ifndef HYBRIDTIER_SAMPLING_SAMPLE_H_
#define HYBRIDTIER_SAMPLING_SAMPLE_H_

/**
 * @file
 * Access-sample record, the unit of the PEBS/IBS-analogue event stream.
 *
 * Real PEBS delivers the exact virtual address of a sampled load plus the
 * data source (local DRAM vs. CXL). Our sampler delivers the same
 * information about the simulated access stream (paper §4.1 step 2).
 */

#include <cstdint>

#include "common/units.h"
#include "mem/page.h"
#include "mem/tier.h"

namespace hybridtier {

/** One sampled memory access. */
struct SampleRecord {
  PageId page = kInvalidPage;  //!< Tracking unit that was accessed.
  Tier tier = Tier::kSlow;     //!< Tier that served the access.
  TimeNs time_ns = 0;          //!< Virtual time of the access.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_SAMPLING_SAMPLE_H_
