#include "sampling/sampler.h"

#include "common/logging.h"

namespace hybridtier {

AccessSampler::AccessSampler(uint64_t period, size_t buffer_capacity,
                             uint64_t seed)
    : period_(period), buffer_(buffer_capacity), rng_(seed) {
  HT_ASSERT(period >= 1, "sampling period must be >= 1");
  countdown_ = NextCountdown();
}

uint64_t AccessSampler::NextCountdown() {
  if (period_ == 1) return 1;
  // Jitter the period by +/-25% to break aliasing with strided loops.
  const uint64_t spread = period_ / 2;
  if (spread == 0) return period_;
  return period_ - spread / 2 + rng_.NextBounded(spread + 1);
}

void AccessSampler::TakeSample(PageId page, Tier tier, TimeNs now) {
  countdown_ = NextCountdown();
  ++samples_taken_;
  buffer_.Push(SampleRecord{.page = page, .tier = tier, .time_ns = now});
}

size_t AccessSampler::Drain(std::vector<SampleRecord>* out,
                            size_t max_records) {
  return buffer_.Drain(out, max_records);
}

}  // namespace hybridtier
