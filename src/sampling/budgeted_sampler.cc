#include "sampling/budgeted_sampler.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

BudgetedSampler::BudgetedSampler(const BudgetedSamplerConfig& config,
                                 uint32_t tenants)
    : config_(config), buffer_(config.buffer_capacity) {
  HT_ASSERT(config.base_period >= 1, "sampling period must be >= 1");
  HT_ASSERT(config.adapt_window_accesses >= 1,
            "adaptation window must be >= 1");
  HT_ASSERT(tenants > 0, "budgeted sampler needs at least one tenant");
  rng_.reserve(tenants);
  for (uint32_t t = 0; t < tenants; ++t) {
    uint64_t state = config.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1));
    rng_.emplace_back(SplitMix64Next(state));
  }
  period_.assign(tenants, config.base_period);
  countdown_.assign(tenants, 0);
  window_accesses_.assign(tenants, 0);
  tenant_accesses_.assign(tenants, 0);
  tenant_samples_.assign(tenants, 0);
  for (uint32_t t = 0; t < tenants; ++t) countdown_[t] = NextCountdown(t);
}

uint64_t BudgetedSampler::NextCountdown(uint32_t t) {
  const uint64_t period = period_[t];
  if (period == 1) return 1;
  // Jitter the period by +/-25% to break aliasing with strided loops,
  // matching AccessSampler's schedule.
  const uint64_t spread = period / 2;
  if (spread == 0) return period;
  return period - spread / 2 + rng_[t].NextBounded(spread + 1);
}

void BudgetedSampler::Adapt() {
  // The window's global sample budget, divided equally among the
  // tenants that actually ran in it: per-tenant period = window
  // accesses / per-tenant share, clamped so an idle-then-bursty tenant
  // can neither sample every access forever nor starve to silence.
  const uint64_t budget =
      std::max<uint64_t>(1, config_.adapt_window_accesses /
                                config_.base_period);
  uint32_t active = 0;
  for (const uint64_t accesses : window_accesses_) {
    if (accesses > 0) ++active;
  }
  if (active == 0) return;
  const uint64_t share = std::max<uint64_t>(1, budget / active);
  const uint64_t max_period =
      config_.base_period * std::max<uint64_t>(1, config_.max_period_scale);
  for (size_t t = 0; t < period_.size(); ++t) {
    if (window_accesses_[t] == 0) continue;  // Keep the last period.
    const uint64_t period = window_accesses_[t] / share;
    period_[t] = std::clamp<uint64_t>(period, 1, max_period);
    // Re-arm with the new period so the change takes effect this
    // window, not one full old-period later.
    countdown_[t] = NextCountdown(static_cast<uint32_t>(t));
    window_accesses_[t] = 0;
  }
  ++adaptations_;
}

bool BudgetedSampler::OnAccess(uint32_t tenant, PageId page, Tier tier,
                               TimeNs now) {
  HT_ASSERT(tenant < period_.size(), "tenant ", tenant,
            " outside sampler budget table");
  ++accesses_seen_;
  ++tenant_accesses_[tenant];
  ++window_accesses_[tenant];
  if (++window_seen_ >= config_.adapt_window_accesses) {
    window_seen_ = 0;
    Adapt();
  }
  if (--countdown_[tenant] > 0) return false;
  countdown_[tenant] = NextCountdown(tenant);
  ++samples_taken_;
  ++tenant_samples_[tenant];
  buffer_.Push(SampleRecord{.page = page, .tier = tier, .time_ns = now});
  return true;
}

size_t BudgetedSampler::Drain(std::vector<SampleRecord>* out,
                              size_t max_records) {
  return buffer_.Drain(out, max_records);
}

}  // namespace hybridtier
