#include "workloads/xgboost.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

XgboostWorkload::XgboostWorkload(const XgboostConfig& config,
                                 const char* name)
    : config_(config), name_(name), rng_(config.seed) {
  HT_ASSERT(config.num_features >= 4, "need at least 4 features");
  HT_ASSERT(config.colsample > 0.0 && config.colsample <= 1.0,
            "colsample must be in (0,1]");
  // Column-major layout: column f occupies rows [f*num_rows, ...).
  features_ = space_.Allocate(
      4, static_cast<uint64_t>(config.num_features) * config.num_rows,
      "feature_matrix");
  gradients_ = space_.Allocate(8, config.num_rows, "gradients");
  StartRound();
}

void XgboostWorkload::StartRound() {
  const uint32_t selected = std::max<uint32_t>(
      1, static_cast<uint32_t>(config_.colsample *
                               static_cast<double>(config_.num_features)));
  // Draw a fresh random column subset: the new hot set for this round.
  // The permutation scratch is a reused member so starting a round
  // allocates nothing in steady state.
  column_scratch_.resize(config_.num_features);
  for (uint32_t f = 0; f < config_.num_features; ++f) {
    column_scratch_[f] = f;
  }
  rng_.Shuffle(column_scratch_.data(), column_scratch_.size());
  round_columns_.assign(column_scratch_.begin(),
                        column_scratch_.begin() + selected);
  column_cursor_ = 0;
  row_cursor_ = 0;
  // Row subsampling as a strided scan with a random phase.
  row_stride_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(1.0 / config_.rowsample));
  row_cursor_ = rng_.NextBounded(row_stride_);
}

bool XgboostWorkload::NextOp(TimeNs now, OpTrace* op) {
  (void)now;
  op->Clear();
  op->Reserve(2 * config_.rows_per_op);

  if (column_cursor_ >= round_columns_.size()) {
    ++rounds_;
    StartRound();
  }

  const uint32_t column = round_columns_[column_cursor_];
  const uint64_t column_base =
      static_cast<uint64_t>(column) * config_.num_rows;
  uint64_t emitted = 0;
  uint64_t last_feature_line = UINT64_MAX;
  uint64_t last_gradient_line = UINT64_MAX;

  while (emitted < config_.rows_per_op &&
         row_cursor_ < config_.num_rows) {
    const uint64_t feature_addr =
        features_.AddrOf(column_base + row_cursor_);
    const uint64_t feature_line = feature_addr / kCacheLineSize;
    if (feature_line != last_feature_line) {
      op->Read(feature_addr);
      last_feature_line = feature_line;
    }
    const uint64_t gradient_addr = gradients_.AddrOf(row_cursor_);
    const uint64_t gradient_line = gradient_addr / kCacheLineSize;
    if (gradient_line != last_gradient_line) {
      op->Read(gradient_addr);
      last_gradient_line = gradient_line;
    }
    row_cursor_ += row_stride_;
    ++emitted;
  }

  if (row_cursor_ >= config_.num_rows) {
    // Column finished: move to the next selected column.
    ++column_cursor_;
    row_cursor_ = rng_.NextBounded(row_stride_);
  }
  return true;
}

}  // namespace hybridtier
