#include "workloads/graph.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace hybridtier {

void Graph::Validate() const {
  HT_ASSERT(row_offsets.size() == num_nodes + 1,
            "row_offsets size mismatch");
  HT_ASSERT(row_offsets.front() == 0, "row_offsets must start at 0");
  HT_ASSERT(row_offsets.back() == cols.size(),
            "row_offsets must end at num_edges");
  for (uint64_t u = 0; u < num_nodes; ++u) {
    HT_ASSERT(row_offsets[u] <= row_offsets[u + 1],
              "row_offsets must be non-decreasing at node ", u);
  }
  for (const uint32_t v : cols) {
    HT_ASSERT(v < num_nodes, "edge endpoint ", v, " out of range");
  }
}

namespace {

/** Builds a CSR graph from an edge list via counting sort. */
Graph BuildCsr(uint64_t num_nodes,
               const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  Graph graph;
  graph.num_nodes = num_nodes;
  graph.row_offsets.assign(num_nodes + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++graph.row_offsets[src + 1];
  }
  std::partial_sum(graph.row_offsets.begin(), graph.row_offsets.end(),
                   graph.row_offsets.begin());
  graph.cols.resize(edges.size());
  std::vector<uint64_t> cursor(graph.row_offsets.begin(),
                               graph.row_offsets.end() - 1);
  for (const auto& [src, dst] : edges) {
    graph.cols[cursor[src]++] = dst;
  }
  return graph;
}

}  // namespace

Graph GenerateKronecker(uint32_t scale, uint32_t edge_factor,
                        uint64_t seed) {
  HT_ASSERT(scale >= 4 && scale <= 30, "kronecker scale out of range");
  const uint64_t num_nodes = 1ULL << scale;
  const uint64_t num_edges = static_cast<uint64_t>(edge_factor) * num_nodes;
  Rng rng(seed);

  // Graph500 R-MAT partition probabilities.
  constexpr double kA = 0.57;
  constexpr double kB = 0.19;
  constexpr double kC = 0.19;

  // Random vertex relabeling, as in the GAP generator.
  std::vector<uint32_t> relabel(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    relabel[i] = static_cast<uint32_t>(i);
  }
  rng.Shuffle(relabel.data(), relabel.size());

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint64_t src = 0;
    uint64_t dst = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < kA) {
        // Top-left quadrant: neither bit set.
      } else if (r < kA + kB) {
        dst |= 1;
      } else if (r < kA + kB + kC) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.emplace_back(relabel[src], relabel[dst]);
  }
  return BuildCsr(num_nodes, edges);
}

Graph GenerateUniformRandom(uint32_t scale, uint32_t edge_factor,
                            uint64_t seed) {
  HT_ASSERT(scale >= 4 && scale <= 30, "uniform scale out of range");
  const uint64_t num_nodes = 1ULL << scale;
  const uint64_t num_edges = static_cast<uint64_t>(edge_factor) * num_nodes;
  Rng rng(seed);

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<uint32_t>(rng.NextBounded(num_nodes)),
                       static_cast<uint32_t>(rng.NextBounded(num_nodes)));
  }
  return BuildCsr(num_nodes, edges);
}

}  // namespace hybridtier
