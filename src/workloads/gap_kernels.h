#ifndef HYBRIDTIER_WORKLOADS_GAP_KERNELS_H_
#define HYBRIDTIER_WORKLOADS_GAP_KERNELS_H_

/**
 * @file
 * GAP graph-kernel workloads: BFS, Connected Components, PageRank.
 *
 * These are real kernel implementations over a CSR graph whose loads and
 * stores are emitted as page-trace operations. The three kernels exhibit
 * the behaviours the paper leans on (§6.1):
 *  - BFS is "single-source": each trial starts from a fresh random
 *    source, so the set of hot vertex-state pages shifts between trials —
 *    the adaptability stress case where HybridTier wins the most.
 *  - CC and PR are "whole-graph": every trial touches the graph the same
 *    way, so the hot set is stable.
 * Each operation processes a bounded chunk of work (node adjacency or
 * array sweep), emitting accesses to the CSR offsets/columns arrays and
 * the per-vertex state arrays.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "workloads/address_space.h"
#include "workloads/graph.h"
#include "workloads/workload.h"

namespace hybridtier {

/** Which GAP kernel to run. */
enum class GapKernel : uint8_t {
  kBfs = 0,  //!< Breadth-first search, new random source per trial.
  kCc = 1,   //!< Connected components via label propagation.
  kPr = 2,   //!< PageRank, pull direction, fixed iteration count.
};

/** Display name of a kernel. */
const char* GapKernelName(GapKernel kernel);

/** Configuration for a GAP workload. */
struct GapConfig {
  GapKernel kernel = GapKernel::kPr;
  uint32_t pr_iterations = 10;     //!< PR iterations per trial.
  uint32_t max_edges_per_op = 256; //!< Chunk bound for huge-degree hubs.
  uint32_t init_chunk = 512;       //!< Elements per initialization op.
  uint64_t seed = 7;
};

/** GAP kernel workload over a prebuilt graph. */
class GapWorkload : public Workload {
 public:
  /**
   * @param graph  CSR graph (shared; generation is expensive, so multiple
   *               simulation runs can reuse one graph).
   * @param config kernel selection and chunking parameters.
   * @param name   reported workload name (e.g. "bfs-kron").
   */
  GapWorkload(std::shared_ptr<const Graph> graph, const GapConfig& config,
              const char* name);

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override {
    return space_.total_pages();
  }
  const char* name() const override { return name_; }
  bool time_invariant() const override { return true; }

  /** Completed kernel trials (BFS runs / CC convergences / PR trials). */
  uint64_t trials_completed() const { return trials_; }

 private:
  // -- Trial lifecycle -----------------------------------------------
  void StartTrial();
  bool EmitInitChunk(OpTrace* op);

  // -- Kernel steppers: emit one op of work, advance state -----------
  void StepBfs(OpTrace* op);
  void StepCc(OpTrace* op);
  void StepPr(OpTrace* op);

  /** Emits reads of the cols[] lines covering [begin, end). */
  void EmitColsReads(uint64_t begin, uint64_t end, OpTrace* op);

  std::shared_ptr<const Graph> graph_;
  GapConfig config_;
  const char* name_;
  Rng rng_;

  AddressSpace space_;
  VirtualArray offsets_array_;  //!< 8 B per node + 1.
  VirtualArray cols_array_;     //!< 4 B per edge.
  VirtualArray state_array_;    //!< 4 B per node (BFS parent / CC label).
  VirtualArray scores_array_;   //!< 8 B per node (PR old scores).
  VirtualArray scores2_array_;  //!< 8 B per node (PR new scores).

  // Kernel state (actual algorithm data).
  std::vector<uint32_t> state_;      //!< BFS parent / CC label.
  std::vector<double> scores_;       //!< PR scores (current).
  std::vector<double> scores_next_;  //!< PR scores (next).
  std::vector<uint32_t> frontier_;
  std::vector<uint32_t> next_frontier_;

  // Cursors.
  bool initializing_ = true;
  uint64_t init_pos_ = 0;
  uint64_t node_cursor_ = 0;      //!< CC/PR: current node in the pass.
  uint64_t edge_cursor_ = 0;      //!< Edge index within current node.
  size_t frontier_pos_ = 0;       //!< BFS: index into frontier_.
  uint32_t pr_iteration_ = 0;
  bool cc_changed_ = false;
  uint64_t trials_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_GAP_KERNELS_H_
