#ifndef HYBRIDTIER_WORKLOADS_FACTORY_H_
#define HYBRIDTIER_WORKLOADS_FACTORY_H_

/**
 * @file
 * Workload factory: builds any of the paper's 12 workload/input pairs by
 * id. Benches and examples use this to sweep the full evaluation matrix.
 *
 * Ids: "cdn", "social", "bfs-k", "bfs-u", "cc-k", "cc-u", "pr-k",
 * "pr-u", "bwaves", "roms", "silo", "xgboost", plus the synthetic
 * "zipf" hot-set generator (valid everywhere but excluded from
 * `AllWorkloadIds`, which stays in paper sweep order).
 *
 * The `scale` parameter shrinks or grows footprints relative to the
 * bench defaults (tests use ~0.1, benches 0.5-1.0). Generated GAP graphs
 * are cached per (kind, scale) within the process since multiple policy
 * runs sweep the same workload.
 */

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "workloads/cachelib.h"
#include "workloads/workload.h"

namespace hybridtier {

/** All workload ids in paper order (Fig 10/16 order). */
const std::vector<std::string>& AllWorkloadIds();

/** True if `id` names a known workload. */
bool IsWorkloadId(const std::string& id);

/**
 * Default single-run footprint scale for `id` (the per-family defaults
 * `ht_run` uses): CacheLib 0.1, SPEC/Silo 0.25, XGBoost 0.5, graphs
 * 2.0, zipf 1.0.
 */
double DefaultWorkloadScale(const std::string& id);

/**
 * Builds the workload `id` at the given footprint scale. For CacheLib
 * workloads, `churn` schedules popularity-churn events (ignored by other
 * workloads). Fatal on unknown id.
 */
std::unique_ptr<Workload> MakeWorkload(
    const std::string& id, double scale = 1.0, uint64_t seed = 42,
    const std::vector<ChurnEvent>& churn = {});

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_FACTORY_H_
