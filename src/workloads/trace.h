#ifndef HYBRIDTIER_WORKLOADS_TRACE_H_
#define HYBRIDTIER_WORKLOADS_TRACE_H_

/**
 * @file
 * Trace-driven execution: record a workload's op stream once, replay it
 * many times.
 *
 * Execution-driven generation is a real cost on the simulator's hot
 * path (a Zipf draw is two libm calls; graph kernels chase real pointer
 * chains). For time-invariant workloads — those whose `NextOp` ignores
 * virtual time — the op stream is a pure function of the generator seed,
 * so it can be materialized once into a flat buffer and streamed back at
 * memcpy speed. Replay preserves op boundaries, think times, and access
 * order exactly, so a replayed run produces bit-identical
 * `SimulationResult`s to a live-generated run (asserted by the
 * determinism suite). `bench_throughput` uses this to (a) time the
 * simulation engine without the generator in the loop and (b) share one
 * recorded stream across every policy cell of a sweep instead of
 * re-generating it per cell.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace hybridtier {

/** An immutable recorded op stream (see RecordTrace). */
class RecordedTrace {
 public:
  /** One op: a slice of the flat access buffer plus its think time. */
  struct Op {
    uint64_t first = 0;        //!< Index of the op's first access.
    uint32_t count = 0;        //!< Accesses in the op (0 = idle gap).
    TimeNs think_time_ns = 0;  //!< Idle time preceding the accesses.
  };

  const std::vector<MemoryAccess>& accesses() const { return accesses_; }
  const std::vector<Op>& ops() const { return ops_; }
  uint64_t footprint_pages() const { return footprint_pages_; }
  const std::string& workload_name() const { return workload_name_; }

  /** Total recorded accesses. */
  uint64_t total_accesses() const { return accesses_.size(); }

 private:
  friend RecordedTrace RecordTrace(Workload& inner, uint64_t min_accesses,
                                   uint64_t max_ops);

  std::vector<MemoryAccess> accesses_;  //!< Flat, in op order.
  std::vector<Op> ops_;
  uint64_t footprint_pages_ = 0;
  std::string workload_name_;
};

/**
 * Consumes ops from `inner` (which must be time-invariant) until at
 * least `min_accesses` accesses were recorded, `max_ops` ops were taken
 * (0 = unlimited), or the workload ran to natural completion. Size the
 * recording to the simulation's access budget: a replayed run stops
 * early (NextOp returns false) once the trace is exhausted.
 */
RecordedTrace RecordTrace(Workload& inner, uint64_t min_accesses,
                          uint64_t max_ops = 0);

/**
 * Replays a RecordedTrace as a Workload. The trace is shared and not
 * owned: many replay instances (one per policy cell of a sweep) can
 * stream the same recording concurrently, since replay never mutates
 * it.
 */
class ReplayWorkload : public Workload {
 public:
  explicit ReplayWorkload(std::shared_ptr<const RecordedTrace> trace);

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override {
    return trace_->footprint_pages();
  }
  const char* name() const override { return name_.c_str(); }
  bool time_invariant() const override { return true; }

  /** Restarts replay from the first op. */
  void Rewind() { next_op_ = 0; }

  /** The shared recording. */
  const RecordedTrace& trace() const { return *trace_; }

 private:
  std::shared_ptr<const RecordedTrace> trace_;
  std::string name_;
  size_t next_op_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_TRACE_H_
