#include "workloads/cachelib.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "mem/page.h"

namespace hybridtier {

CacheLibConfig CacheLibWorkload::CdnConfig(uint64_t num_objects,
                                           uint64_t seed) {
  CacheLibConfig config;
  config.num_objects = num_objects;
  config.zipf_theta = 0.9;
  config.get_ratio = 0.97;
  config.size_log_mean = 9.5;  // ~13 KiB median payload.
  config.size_log_sigma = 0.8;
  config.min_object_bytes = 1024;
  config.max_object_bytes = 128 * 1024;
  config.seed = seed;
  return config;
}

CacheLibConfig CacheLibWorkload::SocialGraphConfig(uint64_t num_objects,
                                                   uint64_t seed) {
  CacheLibConfig config;
  config.num_objects = num_objects;
  config.zipf_theta = 0.85;
  config.get_ratio = 0.9;
  config.size_log_mean = 6.2;  // ~490 B median payload.
  config.size_log_sigma = 0.6;
  config.min_object_bytes = 64;
  config.max_object_bytes = 8 * 1024;
  config.seed = seed;
  return config;
}

CacheLibWorkload::CacheLibWorkload(const CacheLibConfig& config,
                                   const char* name)
    : config_(config),
      name_(name),
      rng_(config.seed),
      zipf_(config.num_objects, config.zipf_theta) {
  HT_ASSERT(config.num_objects > 0, "need at least one object");
  HT_ASSERT(config.hot_rank_fraction > 0.0 &&
                config.hot_rank_fraction <= 0.5,
            "hot rank fraction must be in (0, 0.5]");

  // Draw payload sizes and lay objects out back to back, as a slab
  // allocator would.
  object_size_.resize(config.num_objects);
  uint64_t payload_bytes = 0;
  for (auto& size : object_size_) {
    const double drawn =
        rng_.LogNormal(config.size_log_mean, config.size_log_sigma);
    const uint64_t clamped =
        std::clamp<uint64_t>(static_cast<uint64_t>(drawn),
                             config.min_object_bytes,
                             config.max_object_bytes);
    size = static_cast<uint32_t>(clamped);
    payload_bytes += clamped;
  }

  index_ = space_.Allocate(64, config.num_objects, "index");
  const VirtualArray payload = space_.Allocate(1, payload_bytes, "payload");

  object_base_.resize(config.num_objects);
  uint64_t offset = 0;
  for (uint64_t obj = 0; obj < config.num_objects; ++obj) {
    object_base_[obj] = payload.base() + offset;
    offset += object_size_[obj];
  }

  // Popularity rank -> object mapping: a random permutation, so hot
  // objects are scattered over the payload region like a real cache.
  rank_to_object_.resize(config.num_objects);
  for (uint64_t i = 0; i < config.num_objects; ++i) rank_to_object_[i] = i;
  rng_.Shuffle(rank_to_object_.data(), rank_to_object_.size());
}

uint64_t CacheLibWorkload::ObjectPages(uint64_t obj) const {
  const uint64_t first = object_base_[obj] / kPageSize;
  const uint64_t last =
      (object_base_[obj] + object_size_[obj] - 1) / kPageSize;
  return last - first + 1;
}

void CacheLibWorkload::MaybeChurn(TimeNs now) {
  while (next_churn_ < config_.churn.size() &&
         config_.churn[next_churn_].time_ns <= now) {
    const ChurnEvent& event = config_.churn[next_churn_];
    const uint64_t hot_ranks = std::max<uint64_t>(
        1, static_cast<uint64_t>(config_.hot_rank_fraction *
                                 static_cast<double>(config_.num_objects)));
    const uint64_t to_remap =
        static_cast<uint64_t>(event.hot_fraction *
                              static_cast<double>(hot_ranks));
    // Swap each selected hot rank's object with a random cold-rank object:
    // the old hot object keeps only cold-rank traffic while a previously
    // cold object inherits the hot rank.
    const uint64_t cold_start = config_.num_objects / 2;
    for (uint64_t i = 0; i < to_remap; ++i) {
      const uint64_t hot_rank = rng_.NextBounded(hot_ranks);
      const uint64_t cold_rank =
          cold_start + rng_.NextBounded(config_.num_objects - cold_start);
      std::swap(rank_to_object_[hot_rank], rank_to_object_[cold_rank]);
    }
    ++next_churn_;
    HT_INFORM(name_, ": churn event at t=", FormatTime(now), " remapped ",
              to_remap, " hot ranks");
  }
}

void CacheLibWorkload::EmitObjectOp(uint64_t obj, bool is_write,
                                    OpTrace* op) {
  // Index lookup first (hash-table entry for the key).
  op->Read(index_.AddrOf(obj));
  // Then the payload: one access per page the object spans, at a
  // deterministic in-page offset (a streaming read of the value).
  const uint64_t base = object_base_[obj];
  const uint64_t size = object_size_[obj];
  const uint64_t first_page = base / kPageSize;
  const uint64_t last_page = (base + size - 1) / kPageSize;
  for (uint64_t page = first_page; page <= last_page; ++page) {
    const uint64_t addr = std::max(page * kPageSize, base);
    if (is_write) {
      op->Write(addr);
    } else {
      op->Read(addr);
    }
  }
}

bool CacheLibWorkload::NextOp(TimeNs now, OpTrace* op) {
  op->Clear();
  // Index read + one access per page of the largest object class.
  op->Reserve(2 + config_.max_object_bytes / kPageSize);
  MaybeChurn(now);
  const uint64_t rank = zipf_.Next(rng_);
  const uint64_t obj = rank_to_object_[rank];
  const bool is_write = !rng_.Bernoulli(config_.get_ratio);
  EmitObjectOp(obj, is_write, op);
  return true;
}

}  // namespace hybridtier
