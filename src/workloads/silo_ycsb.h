#ifndef HYBRIDTIER_WORKLOADS_SILO_YCSB_H_
#define HYBRIDTIER_WORKLOADS_SILO_YCSB_H_

/**
 * @file
 * Silo in-memory database driven by YCSB-C (paper Table 2, §5.3, §6.1).
 *
 * YCSB-C is 100% point lookups with a *static* Zipf key distribution:
 * every key keeps the same popularity for the whole run. The paper notes
 * this is the friendliest case for a pure frequency histogram (Memtis
 * places second on Silo) — reproducing that ordering is part of the
 * evaluation.
 *
 * The model executes a B+-tree-style index walk (root, inner levels,
 * leaf) followed by a record read. Index levels shrink geometrically, so
 * upper levels are intensely hot while record pages follow the key
 * popularity distribution.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workloads/address_space.h"
#include "workloads/workload.h"
#include "workloads/zipf.h"

namespace hybridtier {

/** Configuration for the Silo/YCSB workload. */
struct SiloConfig {
  uint64_t num_records = 1u << 20;  //!< Table size.
  uint32_t record_bytes = 1024;     //!< YCSB default record size.
  uint32_t index_fanout = 16;       //!< B+-tree fanout.
  uint32_t index_node_bytes = 256;  //!< Index node size.
  double zipf_theta = 0.99;         //!< YCSB default skew.
  double read_ratio = 1.0;          //!< YCSB-C: 100% reads.
  uint64_t seed = 11;
};

/** Silo/YCSB-C workload. */
class SiloWorkload : public Workload {
 public:
  explicit SiloWorkload(const SiloConfig& config, const char* name = "silo");

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override {
    return space_.total_pages();
  }
  const char* name() const override { return name_; }
  bool time_invariant() const override { return true; }

  /** Number of index levels in the modeled tree (including the root). */
  size_t index_levels() const { return index_levels_.size(); }

 private:
  SiloConfig config_;
  const char* name_;
  Rng rng_;
  ZipfGenerator zipf_;
  AddressSpace space_;
  std::vector<VirtualArray> index_levels_;  //!< Root first.
  VirtualArray records_;
  std::vector<uint64_t> key_to_record_;     //!< Popularity permutation.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_SILO_YCSB_H_
