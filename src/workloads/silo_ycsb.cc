#include "workloads/silo_ycsb.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

SiloWorkload::SiloWorkload(const SiloConfig& config, const char* name)
    : config_(config),
      name_(name),
      rng_(config.seed),
      zipf_(config.num_records, config.zipf_theta) {
  HT_ASSERT(config.index_fanout >= 2, "index fanout must be >= 2");

  // Build index levels bottom-up: leaves hold `fanout` keys each, and
  // each inner level shrinks by the fanout until one root node remains.
  std::vector<uint64_t> level_nodes;
  uint64_t nodes =
      (config.num_records + config.index_fanout - 1) / config.index_fanout;
  while (nodes > 1) {
    level_nodes.push_back(nodes);
    nodes = (nodes + config.index_fanout - 1) / config.index_fanout;
  }
  level_nodes.push_back(1);  // Root.
  std::reverse(level_nodes.begin(), level_nodes.end());

  for (size_t level = 0; level < level_nodes.size(); ++level) {
    index_levels_.push_back(space_.Allocate(
        config.index_node_bytes, level_nodes[level], "index"));
  }
  records_ =
      space_.Allocate(config.record_bytes, config.num_records, "records");

  key_to_record_.resize(config.num_records);
  for (uint64_t i = 0; i < config.num_records; ++i) key_to_record_[i] = i;
  rng_.Shuffle(key_to_record_.data(), key_to_record_.size());
}

bool SiloWorkload::NextOp(TimeNs now, OpTrace* op) {
  (void)now;
  op->Clear();
  op->Reserve(index_levels_.size() + 2);
  const uint64_t rank = zipf_.Next(rng_);
  const uint64_t record = key_to_record_[rank];
  const bool is_write = !rng_.Bernoulli(config_.read_ratio);

  // Index walk from the root: the node visited at each level is the
  // ancestor of the leaf that owns this record.
  uint64_t leaf_index = record / config_.index_fanout;
  for (size_t level = 0; level < index_levels_.size(); ++level) {
    const size_t depth_below = index_levels_.size() - 1 - level;
    uint64_t node = leaf_index;
    for (size_t d = 0; d < depth_below; ++d) node /= config_.index_fanout;
    node = std::min(node, index_levels_[level].count() - 1);
    op->Read(index_levels_[level].AddrOf(node));
  }

  // Record access: read (or update) the first two cache lines.
  const uint64_t record_addr = records_.AddrOf(record);
  if (is_write) {
    op->Write(record_addr);
    op->Write(record_addr + kCacheLineSize);
  } else {
    op->Read(record_addr);
    op->Read(record_addr + kCacheLineSize);
  }
  return true;
}

}  // namespace hybridtier
