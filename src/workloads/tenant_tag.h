#ifndef HYBRIDTIER_WORKLOADS_TENANT_TAG_H_
#define HYBRIDTIER_WORKLOADS_TENANT_TAG_H_

/**
 * @file
 * Tenant attribution interface for composite (multi-tenant) workloads.
 *
 * A workload that multiplexes several tenants into one access stream
 * implements this alongside `Workload`; the simulation harness detects it
 * with a `dynamic_cast` and, when present, attributes every operation to
 * the tenant that generated it (per-tenant ops, latency percentiles,
 * fast-tier occupancy, Jain fairness index). Single-tenant workloads need
 * no changes — the harness simply finds no tag source and skips the
 * per-tenant bookkeeping.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "mem/page.h"

namespace hybridtier {

/** Per-op tenant attribution provided by multiplexing workloads. */
class TenantTagSource {
 public:
  virtual ~TenantTagSource() = default;

  /** Number of tenants multiplexed into the stream. */
  virtual uint32_t tenant_count() const = 0;

  /** Tenant that generated the most recent successful NextOp. */
  virtual uint32_t last_tenant() const = 0;

  /** Display name of tenant `tenant` (e.g. "cdn", "bfs-k#1"). */
  virtual const std::string& tenant_name(uint32_t tenant) const = 0;

  /**
   * Tracking-unit range [begin, end) owned by tenant `tenant` under
   * `mode`. Ranges are pairwise disjoint and exact in both page modes
   * (regions are 2 MiB aligned).
   */
  virtual PageRange tenant_units(uint32_t tenant, PageMode mode) const = 0;

  /**
   * True if tenant `tenant`'s residency window contains virtual time
   * `now`. Workloads without churn keep the default (always active);
   * the harness uses this to scope prefaulting and fairness reporting
   * to tenants actually present.
   */
  virtual bool tenant_active_at(uint32_t tenant, TimeNs now) const {
    (void)tenant;
    (void)now;
    return true;
  }

  /** Fair-share weight of tenant `tenant` (1.0 when unweighted). */
  virtual double tenant_weight(uint32_t tenant) const {
    (void)tenant;
    return 1.0;
  }

  /**
   * Residency windows of tenant `tenant` as (arrival_ns, departure_ns)
   * pairs in ascending order; departure 0 = open-ended, an empty list =
   * present for the whole run. Must agree with `tenant_active_at`:
   * `tenant_active_at(t, now)` iff some window contains `now`. The
   * harness precomputes a churn-edge schedule from the windows so its
   * per-interval accounting walks only the tenants actually present,
   * never the whole fleet. Called once at construction (not hot).
   */
  virtual std::vector<std::pair<TimeNs, TimeNs>> tenant_windows(
      uint32_t tenant) const {
    (void)tenant;
    return {};
  }
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_TENANT_TAG_H_
