#include "workloads/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace hybridtier {

namespace {

/**
 * H(x) = integral of x^-theta: ((1+ (x-1))^(1-theta) - 1)/(1-theta) in the
 * shifted form used by Hörmann; computed stably including theta == 1
 * (where it degenerates to log(x)).
 */
double HIntegralImpl(double x, double theta) {
  const double log_x = std::log(x);
  if (std::abs(1.0 - theta) < 1e-12) return log_x;
  return std::expm1((1.0 - theta) * log_x) / (1.0 - theta);
}

/** h(x) = x^-theta. */
double HImpl(double x, double theta) {
  return std::exp(-theta * std::log(x));
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  HT_ASSERT(n >= 1, "zipf domain must be non-empty");
  HT_ASSERT(theta > 0.0, "zipf exponent must be positive");
  h_integral_x1_ = HIntegralImpl(1.5, theta_) - 1.0;
  h_integral_n_ = HIntegralImpl(static_cast<double>(n_) + 0.5, theta_);
  s_ = 2.0 - HInverse(HIntegralImpl(2.5, theta_) - HImpl(2.0, theta_));
}

double ZipfGenerator::H(double x) const { return HIntegralImpl(x, theta_); }

double ZipfGenerator::HInverse(double x) const {
  if (std::abs(1.0 - theta_) < 1e-12) return std::exp(x);
  return std::exp(std::log1p(x * (1.0 - theta_)) / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (n_ == 1) return 0;
  // Hörmann's rejection-inversion: invert the integral of the hat
  // function h(x) = x^-theta, then accept/reject against the true pmf.
  while (true) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HInverse(u);
    double k = std::round(x);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= H(k + 0.5) - HImpl(k, theta_)) {
      return static_cast<uint64_t>(k) - 1;  // 0-based rank.
    }
  }
}

}  // namespace hybridtier
