#ifndef HYBRIDTIER_WORKLOADS_WORKLOAD_H_
#define HYBRIDTIER_WORKLOADS_WORKLOAD_H_

/**
 * @file
 * Workload interface: applications as memory-access generators.
 *
 * A workload models one of the paper's applications (Table 2) as a
 * generator of *operations*, each of which is a short, ordered burst of
 * byte-addressed memory accesses inside the workload's flat virtual
 * address space. The simulator executes each access through the cache
 * and tiered-memory models; the time an operation takes is the sum of
 * its access latencies, which is exactly the metric the paper reports
 * (op latency for CacheLib/Silo, total runtime for the rest).
 */

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "mem/page.h"

namespace hybridtier {

/** One memory access within an operation. */
struct MemoryAccess {
  uint64_t addr = 0;      //!< Byte address in the workload address space.
  bool is_write = false;  //!< Write access (affects nothing today beyond
                          //!< stats; kept for extension and realism).
};

/** One application operation: an ordered burst of accesses. */
struct OpTrace {
  std::vector<MemoryAccess> accesses;

  /**
   * Idle virtual time preceding the accesses: the CPU is stalled but no
   * memory traffic is generated. Composite workloads use this to skip
   * ahead over gaps where no tenant is runnable (e.g. before the first
   * arrival of a late tenant); an op with no accesses and a think time is
   * a pure idle gap that advances the clock without counting as work.
   */
  TimeNs think_time_ns = 0;

  /**
   * Clears the trace for reuse. Never releases capacity: the simulator
   * reuses one OpTrace for the whole run, so once the buffer has grown
   * to the largest op seen, steady-state generation is allocation-free.
   */
  void Clear() {
    accesses.clear();
    think_time_ns = 0;
  }

  /** Grows the access buffer to at least `n` slots (never shrinks). */
  void Reserve(size_t n) {
    if (accesses.capacity() < n) accesses.reserve(n);
  }

  /** Appends a read access. */
  void Read(uint64_t addr) { accesses.push_back({addr, false}); }

  /** Appends a write access. */
  void Write(uint64_t addr) { accesses.push_back({addr, true}); }

  /** Number of accesses in this operation. */
  size_t size() const { return accesses.size(); }
};

/** Abstract application workload. */
class Workload {
 public:
  virtual ~Workload() = default;

  /**
   * Produces the next operation at virtual time `now`. Returns false if
   * the workload has run to natural completion (endless workloads always
   * return true). `op` is cleared and refilled.
   */
  virtual bool NextOp(TimeNs now, OpTrace* op) = 0;

  /** Total footprint of the workload's address space, in 4 KiB pages. */
  virtual uint64_t footprint_pages() const = 0;

  /** Short workload name (e.g. "cachelib-cdn"). */
  virtual const char* name() const = 0;

  /**
   * True when NextOp ignores the `now` argument, i.e. the op stream is
   * a pure function of the generator's own state and seed. Such a
   * stream can be recorded once and replayed (see workloads/trace.h)
   * with bit-identical simulation results. Workloads that schedule
   * events in virtual time (tenant churn, CacheLib hot-set churn) must
   * return false.
   */
  virtual bool time_invariant() const { return false; }
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_WORKLOAD_H_
