#ifndef HYBRIDTIER_WORKLOADS_CACHELIB_H_
#define HYBRIDTIER_WORKLOADS_CACHELIB_H_

/**
 * @file
 * CacheLib-style in-memory cache workload (paper Table 2, §5.3).
 *
 * Models Meta's CacheLib benchmark: a population of cached objects whose
 * popularity follows a Zipf distribution, with GET operations reading the
 * object's index entry and payload pages. Two production-derived variants
 * are provided:
 *  - CDN: fewer, larger objects (tens of KiB payloads);
 *  - social-graph: many small objects (hundreds of bytes), so multiple
 *    objects share each page and the *page-level* hot set is much larger
 *    (this is why social-graph has the largest >=15-count page fraction
 *    in paper Fig 16).
 *
 * Popularity *churn* reproduces the dynamic-hotness behaviour Meta
 * reports (§2.2): at configured virtual times, a fraction of the hottest
 * popularity ranks is remapped onto previously cold objects, so most of
 * the old hot set goes cold at once (the Fig 4 experiment performs one
 * such event with fraction 2/3).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "workloads/address_space.h"
#include "workloads/workload.h"
#include "workloads/zipf.h"

namespace hybridtier {

/** One scheduled popularity-churn event. */
struct ChurnEvent {
  TimeNs time_ns = 0;        //!< Virtual time at which the event fires.
  double hot_fraction = 0.0; //!< Fraction of the hot ranks remapped.
};

/** Configuration for a CacheLib-style workload instance. */
struct CacheLibConfig {
  uint64_t num_objects = 200000;  //!< Cached object population.
  double zipf_theta = 0.9;        //!< Popularity skew.
  double get_ratio = 0.95;        //!< GETs; the rest are SETs (writes).
  // Object payload sizes: lognormal(log_mean, log_sigma), clamped.
  double size_log_mean = 9.5;     //!< exp(9.5) ~ 13 KiB.
  double size_log_sigma = 0.8;
  uint64_t min_object_bytes = 256;
  uint64_t max_object_bytes = 128 * 1024;
  /** Top fraction of ranks considered "hot" for churn remapping. */
  double hot_rank_fraction = 0.1;
  std::vector<ChurnEvent> churn;  //!< Must be sorted by time.
  uint64_t seed = 42;
};

/** CacheLib-style cache workload. */
class CacheLibWorkload : public Workload {
 public:
  explicit CacheLibWorkload(const CacheLibConfig& config,
                            const char* name = "cachelib");

  /** Paper CDN variant: larger objects, strong skew. */
  static CacheLibConfig CdnConfig(uint64_t num_objects = 120000,
                                  uint64_t seed = 42);

  /** Paper social-graph variant: small objects, many per page. */
  static CacheLibConfig SocialGraphConfig(uint64_t num_objects = 600000,
                                          uint64_t seed = 43);

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override {
    return space_.total_pages();
  }
  const char* name() const override { return name_; }

  /** Object currently mapped to popularity rank `rank`. */
  uint64_t ObjectOfRank(uint64_t rank) const { return rank_to_object_[rank]; }

  /** Number of churn events already applied. */
  size_t churn_events_applied() const { return next_churn_; }

  /** Pages spanned by object `obj`'s payload. */
  uint64_t ObjectPages(uint64_t obj) const;

 private:
  /** Applies all churn events scheduled at or before `now`. */
  void MaybeChurn(TimeNs now);

  /** Emits the access burst for one GET/SET of `obj`. */
  void EmitObjectOp(uint64_t obj, bool is_write, OpTrace* op);

  CacheLibConfig config_;
  const char* name_;
  Rng rng_;
  ZipfGenerator zipf_;
  AddressSpace space_;
  VirtualArray index_;                  //!< 64 B index entry per object.
  std::vector<uint64_t> object_base_;   //!< Payload base address per object.
  std::vector<uint32_t> object_size_;   //!< Payload bytes per object.
  std::vector<uint64_t> rank_to_object_;
  size_t next_churn_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_CACHELIB_H_
