#include "workloads/factory.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "workloads/gap_kernels.h"
#include "workloads/graph.h"
#include "workloads/silo_ycsb.h"
#include "workloads/spec_stream.h"
#include "workloads/synthetic.h"
#include "workloads/xgboost.h"

namespace hybridtier {

namespace {

/** Base GAP graph scale at factory scale 1.0 (2^18 nodes, 8 edges/node). */
constexpr uint32_t kBaseGraphScale = 18;
constexpr uint32_t kEdgeFactor = 8;

/**
 * Per-process cache of generated graphs, keyed by (kind, scale). The
 * mutex makes concurrent workload construction safe (parallel sweep
 * cells build their GAP workloads from worker threads); generation is
 * serialized under it, which only ever costs the first cell per key.
 */
std::shared_ptr<const Graph> CachedGraph(bool kronecker,
                                         uint32_t graph_scale,
                                         uint64_t seed) {
  static std::mutex mutex;
  static std::map<std::tuple<bool, uint32_t, uint64_t>,
                  std::shared_ptr<const Graph>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_tuple(kronecker, graph_scale, seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto graph = std::make_shared<Graph>(
      kronecker ? GenerateKronecker(graph_scale, kEdgeFactor, seed)
                : GenerateUniformRandom(graph_scale, kEdgeFactor, seed));
  cache.emplace(key, graph);
  return graph;
}

/** Converts the factory scale to a graph scale exponent. */
uint32_t GraphScaleFor(double scale) {
  const double exponent =
      static_cast<double>(kBaseGraphScale) + std::log2(std::max(scale, 1e-3));
  return static_cast<uint32_t>(
      std::clamp(std::lround(exponent), 10L, 26L));
}

std::unique_ptr<Workload> MakeGap(GapKernel kernel, bool kronecker,
                                  double scale, uint64_t seed,
                                  const char* name) {
  GapConfig config;
  config.kernel = kernel;
  config.seed = seed;
  return std::make_unique<GapWorkload>(
      CachedGraph(kronecker, GraphScaleFor(scale), seed ^ 0x9e3779b9u),
      config, name);
}

uint64_t Scaled(uint64_t base, double scale, uint64_t min_value) {
  return std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(base) * scale), min_value);
}

}  // namespace

const std::vector<std::string>& AllWorkloadIds() {
  static const std::vector<std::string> ids = {
      "cdn",  "social", "bfs-k", "bfs-u",  "cc-k", "cc-u",
      "pr-k", "pr-u",   "bwaves", "roms",  "silo", "xgboost"};
  return ids;
}

bool IsWorkloadId(const std::string& id) {
  if (id == "zipf") return true;  // Synthetic extra, not in paper order.
  const auto& ids = AllWorkloadIds();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

double DefaultWorkloadScale(const std::string& id) {
  if (id == "cdn" || id == "social") return 0.1;
  if (id == "bwaves" || id == "roms" || id == "silo") return 0.25;
  if (id == "xgboost") return 0.5;
  if (id == "zipf") return 1.0;
  return 2.0;  // GAP graph kernels.
}

std::unique_ptr<Workload> MakeWorkload(const std::string& id, double scale,
                                       uint64_t seed,
                                       const std::vector<ChurnEvent>& churn) {
  if (id == "cdn") {
    CacheLibConfig config =
        CacheLibWorkload::CdnConfig(Scaled(120000, scale, 2000), seed);
    config.churn = churn;
    return std::make_unique<CacheLibWorkload>(config, "cachelib-cdn");
  }
  if (id == "social") {
    CacheLibConfig config = CacheLibWorkload::SocialGraphConfig(
        Scaled(600000, scale, 5000), seed);
    config.churn = churn;
    return std::make_unique<CacheLibWorkload>(config, "cachelib-social");
  }
  if (id == "bfs-k") {
    return MakeGap(GapKernel::kBfs, true, scale, seed, "bfs-kron");
  }
  if (id == "bfs-u") {
    return MakeGap(GapKernel::kBfs, false, scale, seed, "bfs-urand");
  }
  if (id == "cc-k") {
    return MakeGap(GapKernel::kCc, true, scale, seed, "cc-kron");
  }
  if (id == "cc-u") {
    return MakeGap(GapKernel::kCc, false, scale, seed, "cc-urand");
  }
  if (id == "pr-k") {
    return MakeGap(GapKernel::kPr, true, scale, seed, "pr-kron");
  }
  if (id == "pr-u") {
    return MakeGap(GapKernel::kPr, false, scale, seed, "pr-urand");
  }
  if (id == "bwaves") {
    return std::make_unique<StreamWorkload>(
        StreamWorkload::BwavesConfig(Scaled(4u << 20, scale, 1u << 14)),
        "spec-bwaves");
  }
  if (id == "roms") {
    return std::make_unique<StreamWorkload>(
        StreamWorkload::RomsConfig(Scaled(4u << 20, scale, 1u << 14)),
        "spec-roms");
  }
  if (id == "silo") {
    SiloConfig config;
    config.num_records = Scaled(1u << 20, scale, 1u << 12);
    config.seed = seed;
    return std::make_unique<SiloWorkload>(config, "silo-ycsbc");
  }
  if (id == "xgboost") {
    XgboostConfig config;
    config.num_rows = Scaled(200000, scale, 4000);
    config.seed = seed;
    return std::make_unique<XgboostWorkload>(config, "xgboost");
  }
  if (id == "zipf") {
    SyntheticZipfConfig config;
    config.num_pages = Scaled(49152, scale, 1024);
    config.seed = seed;
    return std::make_unique<SyntheticZipfWorkload>(config);
  }
  HT_FATAL("unknown workload id '", id, "'");
}

}  // namespace hybridtier
