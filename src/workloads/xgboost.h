#ifndef HYBRIDTIER_WORKLOADS_XGBOOST_H_
#define HYBRIDTIER_WORKLOADS_XGBOOST_H_

/**
 * @file
 * XGBoost gradient-boosting training analogue (paper Table 2, §5.3).
 *
 * Models CPU training over a column-major feature matrix (Criteo-style):
 * each boosting round samples a subset of feature columns (colsample)
 * and a subset of rows, then scans the selected columns to build split
 * histograms while reading the per-row gradient array. The selected
 * columns are the round's hot set, and they *change every round* — the
 * behaviour behind the paper's Fig 2b hotness-decay measurement and the
 * Fig 15 momentum-ablation gains on XGBoost.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workloads/address_space.h"
#include "workloads/workload.h"

namespace hybridtier {

/** Configuration for the XGBoost workload. */
struct XgboostConfig {
  uint32_t num_features = 256;   //!< Feature columns.
  uint64_t num_rows = 200000;    //!< Training rows.
  double colsample = 0.25;       //!< Fraction of columns used per round.
  double rowsample = 0.5;        //!< Fraction of rows scanned per column.
  uint32_t rows_per_op = 256;    //!< Chunk size per operation.
  uint64_t seed = 17;
};

/** XGBoost training workload. */
class XgboostWorkload : public Workload {
 public:
  explicit XgboostWorkload(const XgboostConfig& config,
                           const char* name = "xgboost");

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override {
    return space_.total_pages();
  }
  const char* name() const override { return name_; }
  bool time_invariant() const override { return true; }

  /** Boosting rounds completed so far. */
  uint64_t rounds_completed() const { return rounds_; }

  /** Columns selected for the current round (for test inspection). */
  const std::vector<uint32_t>& current_columns() const {
    return round_columns_;
  }

 private:
  /** Draws the column subset and row stride for a new round. */
  void StartRound();

  XgboostConfig config_;
  const char* name_;
  Rng rng_;
  AddressSpace space_;
  VirtualArray features_;   //!< 4 B * rows * features, column-major.
  VirtualArray gradients_;  //!< 8 B per row, rewritten every round.
  std::vector<uint32_t> round_columns_;
  std::vector<uint32_t> column_scratch_;  //!< Reused permutation buffer.
  size_t column_cursor_ = 0;
  uint64_t row_cursor_ = 0;
  uint64_t row_stride_ = 2;
  uint64_t rounds_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_XGBOOST_H_
