#ifndef HYBRIDTIER_WORKLOADS_ADDRESS_SPACE_H_
#define HYBRIDTIER_WORKLOADS_ADDRESS_SPACE_H_

/**
 * @file
 * Flat virtual address-space layout helper for workloads.
 *
 * Workloads are real algorithms operating on arrays; to turn their loads
 * and stores into page-level traces, each array is registered in a flat
 * simulated address space and element accesses are converted to byte
 * addresses. This mirrors how the real applications' heap allocations
 * map onto the pages the tiering systems manage.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

/** A contiguous array of fixed-size elements in the simulated VA space. */
class VirtualArray {
 public:
  VirtualArray() = default;

  /**
   * @param base_addr    first byte address of the array.
   * @param element_size bytes per element.
   * @param count        number of elements.
   */
  VirtualArray(uint64_t base_addr, uint64_t element_size, uint64_t count)
      : base_(base_addr), element_size_(element_size), count_(count) {}

  /** Byte address of element `index`. */
  uint64_t AddrOf(uint64_t index) const {
    HT_ASSERT(index < count_, "array index ", index, " out of range ",
              count_);
    return base_ + index * element_size_;
  }

  /** First byte address. */
  uint64_t base() const { return base_; }
  /** Bytes per element. */
  uint64_t element_size() const { return element_size_; }
  /** Number of elements. */
  uint64_t count() const { return count_; }
  /** Total bytes spanned. */
  uint64_t bytes() const { return element_size_ * count_; }

 private:
  uint64_t base_ = 0;
  uint64_t element_size_ = 0;
  uint64_t count_ = 0;
};

/** Sequential page-aligned region allocator for a workload. */
class AddressSpace {
 public:
  /** Reserves a page-aligned array of `count` elements. */
  VirtualArray Allocate(uint64_t element_size, uint64_t count,
                        const std::string& label) {
    const uint64_t bytes = element_size * count;
    const VirtualArray array(next_, element_size, count);
    regions_.push_back({label, next_, bytes});
    // Round the next base up to a page boundary so arrays never share
    // pages (matching distinct heap allocations).
    next_ += (bytes + kPageSize - 1) / kPageSize * kPageSize;
    return array;
  }

  /** Total reserved bytes (page aligned). */
  uint64_t total_bytes() const { return next_; }

  /** Total reserved pages. */
  uint64_t total_pages() const { return next_ / kPageSize; }

  /** One labeled reservation, for diagnostics. */
  struct Region {
    std::string label;
    uint64_t base;
    uint64_t bytes;
  };

  /** All reservations in allocation order. */
  const std::vector<Region>& regions() const { return regions_; }

 private:
  uint64_t next_ = 0;
  std::vector<Region> regions_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_ADDRESS_SPACE_H_
