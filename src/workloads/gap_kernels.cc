#include "workloads/gap_kernels.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "mem/page.h"

namespace hybridtier {

namespace {
constexpr uint32_t kNoParent = UINT32_MAX;
}  // namespace

const char* GapKernelName(GapKernel kernel) {
  switch (kernel) {
    case GapKernel::kBfs:
      return "bfs";
    case GapKernel::kCc:
      return "cc";
    case GapKernel::kPr:
      return "pr";
  }
  return "unknown";
}

GapWorkload::GapWorkload(std::shared_ptr<const Graph> graph,
                         const GapConfig& config, const char* name)
    : graph_(std::move(graph)),
      config_(config),
      name_(name),
      rng_(config.seed) {
  HT_ASSERT(graph_ != nullptr, "GapWorkload needs a graph");
  const uint64_t n = graph_->num_nodes;

  offsets_array_ = space_.Allocate(8, n + 1, "row_offsets");
  cols_array_ = space_.Allocate(4, std::max<uint64_t>(graph_->num_edges(), 1),
                                "cols");
  state_array_ = space_.Allocate(4, n, "vertex_state");
  if (config_.kernel == GapKernel::kPr) {
    scores_array_ = space_.Allocate(8, n, "pr_scores");
    scores2_array_ = space_.Allocate(8, n, "pr_scores_next");
    scores_.assign(n, 1.0 / static_cast<double>(n));
    scores_next_.assign(n, 0.0);
  }
  state_.assign(n, kNoParent);
  StartTrial();
}

void GapWorkload::StartTrial() {
  initializing_ = true;
  init_pos_ = 0;
  node_cursor_ = 0;
  edge_cursor_ = 0;
  pr_iteration_ = 0;
  cc_changed_ = false;

  switch (config_.kernel) {
    case GapKernel::kBfs: {
      // Pick a random source with outgoing edges (GAP does the same).
      uint32_t source = 0;
      for (int attempt = 0; attempt < 64; ++attempt) {
        source =
            static_cast<uint32_t>(rng_.NextBounded(graph_->num_nodes));
        if (graph_->Degree(source) > 0) break;
      }
      std::fill(state_.begin(), state_.end(), kNoParent);
      state_[source] = source;
      frontier_.assign(1, source);
      next_frontier_.clear();
      frontier_pos_ = 0;
      break;
    }
    case GapKernel::kCc: {
      for (uint64_t v = 0; v < graph_->num_nodes; ++v) {
        state_[v] = static_cast<uint32_t>(v);
      }
      break;
    }
    case GapKernel::kPr: {
      std::fill(scores_.begin(), scores_.end(),
                1.0 / static_cast<double>(graph_->num_nodes));
      std::fill(scores_next_.begin(), scores_next_.end(), 0.0);
      break;
    }
  }
}

bool GapWorkload::EmitInitChunk(OpTrace* op) {
  // The per-trial (re)initialization sweep: a sequential memset-style
  // write pass over the vertex-state array, chunked into operations.
  const uint64_t n = graph_->num_nodes;
  if (init_pos_ >= n) {
    initializing_ = false;
    return false;
  }
  const uint64_t end = std::min(n, init_pos_ + config_.init_chunk);
  const VirtualArray& target = config_.kernel == GapKernel::kPr
                                   ? scores_array_
                                   : state_array_;
  // One write per cache line covered by the chunk.
  uint64_t last_line = UINT64_MAX;
  for (uint64_t i = init_pos_; i < end; ++i) {
    const uint64_t line = target.AddrOf(i) / kCacheLineSize;
    if (line != last_line) {
      op->Write(target.AddrOf(i));
      last_line = line;
    }
  }
  init_pos_ = end;
  if (init_pos_ >= n) initializing_ = false;
  return true;
}

void GapWorkload::EmitColsReads(uint64_t begin, uint64_t end, OpTrace* op) {
  // Sequential read of the adjacency list: one access per cache line.
  uint64_t last_line = UINT64_MAX;
  for (uint64_t e = begin; e < end; ++e) {
    const uint64_t addr = cols_array_.AddrOf(e);
    const uint64_t line = addr / kCacheLineSize;
    if (line != last_line) {
      op->Read(addr);
      last_line = line;
    }
  }
}

void GapWorkload::StepBfs(OpTrace* op) {
  // Advance past exhausted frontiers.
  while (frontier_pos_ >= frontier_.size()) {
    if (next_frontier_.empty()) {
      // Trial complete.
      ++trials_;
      StartTrial();
      return;
    }
    frontier_.swap(next_frontier_);
    next_frontier_.clear();
    frontier_pos_ = 0;
  }

  const uint32_t u = frontier_[frontier_pos_];
  const uint64_t row_begin = graph_->row_offsets[u];
  const uint64_t row_end = graph_->row_offsets[u + 1];
  const uint64_t chunk_begin = row_begin + edge_cursor_;
  const uint64_t chunk_end =
      std::min(row_end, chunk_begin + config_.max_edges_per_op);

  // Read the offsets entry (only on the first chunk of this node).
  if (edge_cursor_ == 0) op->Read(offsets_array_.AddrOf(u));
  EmitColsReads(chunk_begin, chunk_end, op);

  for (uint64_t e = chunk_begin; e < chunk_end; ++e) {
    const uint32_t v = graph_->cols[e];
    op->Read(state_array_.AddrOf(v));
    if (state_[v] == kNoParent) {
      state_[v] = u;
      op->Write(state_array_.AddrOf(v));
      next_frontier_.push_back(v);
    }
  }

  if (chunk_end >= row_end) {
    ++frontier_pos_;
    edge_cursor_ = 0;
  } else {
    edge_cursor_ = chunk_end - row_begin;
  }
}

void GapWorkload::StepCc(OpTrace* op) {
  const uint64_t n = graph_->num_nodes;
  if (node_cursor_ >= n) {
    // Pass finished.
    if (cc_changed_) {
      node_cursor_ = 0;
      edge_cursor_ = 0;
      cc_changed_ = false;
    } else {
      ++trials_;
      StartTrial();
    }
    return;
  }

  const uint32_t u = static_cast<uint32_t>(node_cursor_);
  const uint64_t row_begin = graph_->row_offsets[u];
  const uint64_t row_end = graph_->row_offsets[u + 1];
  const uint64_t chunk_begin = row_begin + edge_cursor_;
  const uint64_t chunk_end =
      std::min(row_end, chunk_begin + config_.max_edges_per_op);

  if (edge_cursor_ == 0) {
    op->Read(offsets_array_.AddrOf(u));
    op->Read(state_array_.AddrOf(u));
  }
  EmitColsReads(chunk_begin, chunk_end, op);

  uint32_t label = state_[u];
  for (uint64_t e = chunk_begin; e < chunk_end; ++e) {
    const uint32_t v = graph_->cols[e];
    op->Read(state_array_.AddrOf(v));
    if (state_[v] < label) label = state_[v];
  }
  if (label != state_[u]) {
    state_[u] = label;
    op->Write(state_array_.AddrOf(u));
    cc_changed_ = true;
  }

  if (chunk_end >= row_end) {
    ++node_cursor_;
    edge_cursor_ = 0;
  } else {
    edge_cursor_ = chunk_end - row_begin;
  }
}

void GapWorkload::StepPr(OpTrace* op) {
  const uint64_t n = graph_->num_nodes;
  constexpr double kDamping = 0.85;

  if (node_cursor_ >= n) {
    // Iteration finished: swap score arrays.
    scores_.swap(scores_next_);
    std::fill(scores_next_.begin(), scores_next_.end(), 0.0);
    node_cursor_ = 0;
    edge_cursor_ = 0;
    ++pr_iteration_;
    if (pr_iteration_ >= config_.pr_iterations) {
      ++trials_;
      StartTrial();
    }
    return;
  }

  const uint32_t u = static_cast<uint32_t>(node_cursor_);
  const uint64_t row_begin = graph_->row_offsets[u];
  const uint64_t row_end = graph_->row_offsets[u + 1];
  const uint64_t chunk_begin = row_begin + edge_cursor_;
  const uint64_t chunk_end =
      std::min(row_end, chunk_begin + config_.max_edges_per_op);

  if (edge_cursor_ == 0) {
    op->Read(offsets_array_.AddrOf(u));
    scores_next_[u] = (1.0 - kDamping) / static_cast<double>(n);
  }
  EmitColsReads(chunk_begin, chunk_end, op);

  double sum = 0.0;
  for (uint64_t e = chunk_begin; e < chunk_end; ++e) {
    const uint32_t v = graph_->cols[e];
    // Pull: read the neighbor's current score — the random-access
    // traffic that makes PR memory bound.
    op->Read(scores_array_.AddrOf(v));
    const uint64_t deg = graph_->Degree(v);
    sum += scores_[v] / static_cast<double>(deg == 0 ? 1 : deg);
  }
  // Accumulate (partial sums when a hub's adjacency spans several ops).
  scores_next_[u] += kDamping * sum;

  if (chunk_end >= row_end) {
    op->Write(scores2_array_.AddrOf(u));
    ++node_cursor_;
    edge_cursor_ = 0;
  } else {
    edge_cursor_ = chunk_end - row_begin;
  }
}

bool GapWorkload::NextOp(TimeNs now, OpTrace* op) {
  (void)now;
  op->Clear();
  // Worst-case op shape: offsets read + state reads/writes + one access
  // per adjacency line for a full chunk (or an init chunk's line span).
  op->Reserve(3 * config_.max_edges_per_op + 8);
  // Loop until we actually emitted accesses: trial/pass boundaries may
  // consume a step without producing work.
  for (int guard = 0; guard < 8 && op->accesses.empty(); ++guard) {
    if (initializing_) {
      EmitInitChunk(op);
      continue;
    }
    switch (config_.kernel) {
      case GapKernel::kBfs:
        StepBfs(op);
        break;
      case GapKernel::kCc:
        StepCc(op);
        break;
      case GapKernel::kPr:
        StepPr(op);
        break;
    }
  }
  return true;
}

}  // namespace hybridtier
