#ifndef HYBRIDTIER_WORKLOADS_SYNTHETIC_H_
#define HYBRIDTIER_WORKLOADS_SYNTHETIC_H_

/**
 * @file
 * Synthetic Zipf workload: a tunable hot-set generator.
 *
 * Not one of the paper's twelve applications — a controllable tenant for
 * multi-tenant experiments. Pages are accessed with Zipfian popularity
 * (rank 0 hottest), and a fixed random permutation scatters ranks across
 * the address space so hot pages are not address-clustered (first-touch
 * allocation would otherwise trivially place them in the fast tier).
 * Skew, footprint, and op shape are all knobs, which makes it the
 * archetypal "hot tenant" when co-located with real workloads.
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workloads/address_space.h"
#include "workloads/workload.h"
#include "workloads/zipf.h"

namespace hybridtier {

/** Knobs of the synthetic Zipf workload. */
struct SyntheticZipfConfig {
  uint64_t num_pages = 49152;    //!< Footprint in 4 KiB pages (~192 MiB).
  double theta = 0.99;           //!< Zipf skew (YCSB default).
  uint32_t accesses_per_op = 4;  //!< Accesses per operation.
  double write_fraction = 0.1;   //!< Fraction of accesses that are writes.
  uint64_t seed = 42;
};

/** Endless Zipf-over-pages access generator. */
class SyntheticZipfWorkload : public Workload {
 public:
  explicit SyntheticZipfWorkload(const SyntheticZipfConfig& config);

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override { return space_.total_pages(); }
  const char* name() const override { return "zipf"; }
  bool time_invariant() const override { return true; }

 private:
  SyntheticZipfConfig config_;
  AddressSpace space_;
  VirtualArray heap_;
  ZipfGenerator zipf_;
  Rng rng_;
  std::vector<uint32_t> page_of_rank_;  //!< Popularity-rank scatter.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_SYNTHETIC_H_
