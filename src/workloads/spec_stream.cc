#include "workloads/spec_stream.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

StreamConfig StreamWorkload::BwavesConfig(uint64_t elements_per_array) {
  StreamConfig config;
  config.kind = StreamKind::kSequential;
  config.elements_per_array = elements_per_array;
  config.num_arrays = 5;
  return config;
}

StreamConfig StreamWorkload::RomsConfig(uint64_t elements_per_array) {
  StreamConfig config;
  config.kind = StreamKind::kStencil;
  config.elements_per_array = elements_per_array;
  config.num_arrays = 3;
  config.stencil_stride = 512;
  return config;
}

StreamWorkload::StreamWorkload(const StreamConfig& config, const char* name)
    : config_(config), name_(name) {
  HT_ASSERT(config.num_arrays >= 1, "need at least one array");
  HT_ASSERT(config.elements_per_array > config.stencil_stride,
            "array too small for the stencil stride");
  for (uint32_t a = 0; a < config.num_arrays; ++a) {
    arrays_.push_back(
        space_.Allocate(8, config.elements_per_array, "field"));
  }
}

bool StreamWorkload::NextOp(TimeNs now, OpTrace* op) {
  (void)now;
  op->Clear();
  op->Reserve(2 * config_.elements_per_op);
  const uint64_t n = config_.elements_per_array;
  const uint64_t end = std::min(n, position_ + config_.elements_per_op);

  uint64_t last_line = UINT64_MAX;
  auto emit = [&](const VirtualArray& array, uint64_t index, bool write) {
    const uint64_t addr = array.AddrOf(index);
    const uint64_t line = addr / kCacheLineSize;
    if (line == last_line) return;
    last_line = line;
    if (write) {
      op->Write(addr);
    } else {
      op->Read(addr);
    }
  };

  for (uint64_t i = position_; i < end; ++i) {
    if (config_.kind == StreamKind::kSequential) {
      // bwaves: read all input arrays, write the last one.
      for (uint32_t a = 0; a + 1 < config_.num_arrays; ++a) {
        emit(arrays_[a], i, /*write=*/false);
        last_line = UINT64_MAX;  // Arrays are distinct regions.
      }
      emit(arrays_.back(), i, /*write=*/true);
      last_line = UINT64_MAX;
    } else {
      // roms: 1-D stencil over rows of width stencil_stride.
      const uint64_t stride = config_.stencil_stride;
      const uint64_t up = i >= stride ? i - stride : i;
      const uint64_t down = i + stride < n ? i + stride : i;
      emit(arrays_[0], up, false);
      last_line = UINT64_MAX;
      emit(arrays_[0], i, false);
      last_line = UINT64_MAX;
      emit(arrays_[0], down, false);
      last_line = UINT64_MAX;
      emit(arrays_[1], i, false);
      last_line = UINT64_MAX;
      emit(arrays_[2], i, true);
      last_line = UINT64_MAX;
    }
  }

  position_ = end;
  if (position_ >= n) {
    position_ = 0;
    ++sweeps_;
  }
  return true;
}

}  // namespace hybridtier
