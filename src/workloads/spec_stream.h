#ifndef HYBRIDTIER_WORKLOADS_SPEC_STREAM_H_
#define HYBRIDTIER_WORKLOADS_SPEC_STREAM_H_

/**
 * @file
 * SPEC CPU 2017 analogue workloads: 603.bwaves and 654.roms.
 *
 * Both are scientific Fortran codes whose memory behaviour is dominated
 * by repeated sweeps over multi-hundred-GB arrays:
 *  - bwaves (blast-wave solver) performs near-sequential passes over
 *    several large state arrays;
 *  - roms (ocean model) performs strided stencil updates (neighbouring
 *    grid rows) over its field arrays.
 * Neither has a compact hot set, so tiering systems mostly tie on them
 * (paper Fig 10g/h shows only ~3% spread) — reproducing that *absence*
 * of benefit is part of the evaluation.
 */

#include <cstdint>
#include <vector>

#include "workloads/address_space.h"
#include "workloads/workload.h"

namespace hybridtier {

/** Access pattern flavour. */
enum class StreamKind : uint8_t {
  kSequential = 0,  //!< bwaves-like sequential sweeps.
  kStencil = 1,     //!< roms-like strided stencil updates.
};

/** Configuration for a stream workload. */
struct StreamConfig {
  StreamKind kind = StreamKind::kSequential;
  uint64_t elements_per_array = 4u << 20;  //!< 8 B elements per array.
  uint32_t num_arrays = 4;                 //!< Distinct state arrays.
  uint32_t elements_per_op = 64;           //!< Chunk size per operation.
  uint64_t stencil_stride = 512;           //!< Row width for kStencil.
};

/** bwaves/roms-style array-sweep workload. */
class StreamWorkload : public Workload {
 public:
  StreamWorkload(const StreamConfig& config, const char* name);

  /** Paper 603.bwaves analogue. */
  static StreamConfig BwavesConfig(uint64_t elements_per_array = 4u << 20);

  /** Paper 654.roms analogue. */
  static StreamConfig RomsConfig(uint64_t elements_per_array = 4u << 20);

  bool NextOp(TimeNs now, OpTrace* op) override;
  uint64_t footprint_pages() const override {
    return space_.total_pages();
  }
  const char* name() const override { return name_; }
  bool time_invariant() const override { return true; }

  /** Completed full sweeps over the arrays. */
  uint64_t sweeps_completed() const { return sweeps_; }

 private:
  StreamConfig config_;
  const char* name_;
  AddressSpace space_;
  std::vector<VirtualArray> arrays_;
  uint64_t position_ = 0;
  uint64_t sweeps_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_SPEC_STREAM_H_
