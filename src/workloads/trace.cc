#include "workloads/trace.h"

#include "common/logging.h"

namespace hybridtier {

RecordedTrace RecordTrace(Workload& inner, uint64_t min_accesses,
                          uint64_t max_ops) {
  HT_ASSERT(inner.time_invariant(),
            "RecordTrace requires a time-invariant workload; '",
            inner.name(), "' schedules events in virtual time");
  RecordedTrace trace;
  trace.footprint_pages_ = inner.footprint_pages();
  trace.workload_name_ = inner.name();
  trace.accesses_.reserve(min_accesses);

  OpTrace op;
  while (trace.accesses_.size() < min_accesses &&
         (max_ops == 0 || trace.ops_.size() < max_ops)) {
    // `now` = 0 is safe by the time-invariance contract asserted above.
    if (!inner.NextOp(0, &op)) break;
    RecordedTrace::Op recorded;
    recorded.first = trace.accesses_.size();
    recorded.count = static_cast<uint32_t>(op.accesses.size());
    recorded.think_time_ns = op.think_time_ns;
    trace.accesses_.insert(trace.accesses_.end(), op.accesses.begin(),
                           op.accesses.end());
    trace.ops_.push_back(recorded);
  }
  return trace;
}

ReplayWorkload::ReplayWorkload(std::shared_ptr<const RecordedTrace> trace)
    : trace_(std::move(trace)) {
  HT_ASSERT(trace_ != nullptr, "ReplayWorkload needs a trace");
  name_ = trace_->workload_name() + "+replay";
}

bool ReplayWorkload::NextOp(TimeNs now, OpTrace* op) {
  (void)now;
  if (next_op_ >= trace_->ops().size()) return false;
  const RecordedTrace::Op& recorded = trace_->ops()[next_op_++];
  const MemoryAccess* first = trace_->accesses().data() + recorded.first;
  op->accesses.assign(first, first + recorded.count);
  op->think_time_ns = recorded.think_time_ns;
  return true;
}

}  // namespace hybridtier
