#ifndef HYBRIDTIER_WORKLOADS_ZIPF_H_
#define HYBRIDTIER_WORKLOADS_ZIPF_H_

/**
 * @file
 * Zipf-distributed integer sampling.
 *
 * In-memory caching workloads follow Zipfian popularity with high skew
 * (paper §2.2: ~80% of accesses hit the top 10% of items at Meta). This
 * sampler implements Hörmann's rejection-inversion method, which is O(1)
 * per sample and exact for arbitrarily large domains — the same approach
 * used by YCSB-style generators.
 */

#include <cstdint>

#include "common/rng.h"

namespace hybridtier {

/**
 * Samples ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^theta.
 * Rank 0 is the most popular item.
 */
class ZipfGenerator {
 public:
  /**
   * @param n     domain size.
   * @param theta skew exponent (0 = uniform-ish, 0.99 = YCSB default).
   */
  ZipfGenerator(uint64_t n, double theta);

  /** Draws one rank using entropy from `rng`. */
  uint64_t Next(Rng& rng);

  /** Domain size. */
  uint64_t n() const { return n_; }

  /** Skew exponent. */
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_ZIPF_H_
