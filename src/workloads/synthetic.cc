#include "workloads/synthetic.h"

#include <numeric>

#include "common/logging.h"

namespace hybridtier {

SyntheticZipfWorkload::SyntheticZipfWorkload(
    const SyntheticZipfConfig& config)
    : config_(config),
      heap_(space_.Allocate(kPageSize, config.num_pages, "heap")),
      zipf_(config.num_pages, config.theta),
      rng_(config.seed),
      page_of_rank_(config.num_pages) {
  HT_ASSERT(config.num_pages > 0, "zipf workload needs a footprint");
  HT_ASSERT(config.accesses_per_op > 0,
            "zipf workload needs accesses per op");
  HT_ASSERT(config.num_pages <= UINT32_MAX, "zipf footprint too large");
  std::iota(page_of_rank_.begin(), page_of_rank_.end(), 0u);
  rng_.Shuffle(page_of_rank_.data(), page_of_rank_.size());
}

bool SyntheticZipfWorkload::NextOp(TimeNs now, OpTrace* op) {
  (void)now;
  op->Clear();
  op->Reserve(config_.accesses_per_op);
  for (uint32_t i = 0; i < config_.accesses_per_op; ++i) {
    const uint64_t rank = zipf_.Next(rng_);
    const uint64_t page = page_of_rank_[rank];
    // A line-aligned offset inside the page: accesses within one page
    // still vary which cache lines they touch.
    const uint64_t offset =
        rng_.NextBounded(kPageSize / kCacheLineSize) * kCacheLineSize;
    const uint64_t addr = heap_.AddrOf(page) + offset;
    if (rng_.Bernoulli(config_.write_fraction)) {
      op->Write(addr);
    } else {
      op->Read(addr);
    }
  }
  return true;
}

}  // namespace hybridtier
