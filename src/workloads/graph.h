#ifndef HYBRIDTIER_WORKLOADS_GRAPH_H_
#define HYBRIDTIER_WORKLOADS_GRAPH_H_

/**
 * @file
 * Synthetic graph generation (GAP benchmark suite substrate, §5.3).
 *
 * The paper evaluates GAP kernels on two generated graphs:
 *  - a Kronecker (R-MAT) graph with the Graph500 parameters, whose
 *    power-law degree distribution yields a small, stable set of hot hub
 *    vertices; and
 *  - a uniform random (Erdős–Rényi-style) graph, "the worst case in
 *    terms of locality", whose flat degree distribution produces large,
 *    diffuse hot sets.
 * Graphs are stored in CSR form, the layout whose page-access behaviour
 * the kernels trace.
 */

#include <cstdint>
#include <vector>

namespace hybridtier {

/** Compressed-sparse-row directed graph. */
struct Graph {
  uint64_t num_nodes = 0;
  std::vector<uint64_t> row_offsets;  //!< Size num_nodes + 1.
  std::vector<uint32_t> cols;         //!< Neighbor lists, concatenated.

  /** Total directed edges. */
  uint64_t num_edges() const { return cols.size(); }

  /** Out-degree of node `u`. */
  uint64_t Degree(uint64_t u) const {
    return row_offsets[u + 1] - row_offsets[u];
  }

  /** Checks CSR structural invariants; panics on violation. */
  void Validate() const;
};

/**
 * Generates a Kronecker/R-MAT graph with 2^scale nodes and
 * edge_factor * 2^scale directed edges, using the Graph500 partition
 * probabilities (A=0.57, B=0.19, C=0.19). Vertex labels are randomly
 * permuted, as the GAP generator does, so generator locality does not
 * leak into the page-access pattern.
 */
Graph GenerateKronecker(uint32_t scale, uint32_t edge_factor, uint64_t seed);

/**
 * Generates a uniform random graph with 2^scale nodes and
 * edge_factor * 2^scale directed edges; every endpoint is chosen
 * uniformly, so every vertex is equally likely to be any vertex's
 * neighbor.
 */
Graph GenerateUniformRandom(uint32_t scale, uint32_t edge_factor,
                            uint64_t seed);

}  // namespace hybridtier

#endif  // HYBRIDTIER_WORKLOADS_GRAPH_H_
