#ifndef HYBRIDTIER_COMMON_UNITS_H_
#define HYBRIDTIER_COMMON_UNITS_H_

/**
 * @file
 * Byte-size and time-unit constants plus human-readable formatting.
 *
 * All simulator time is an unsigned count of *nanoseconds of virtual
 * time* (`TimeNs`). All sizes are bytes unless a name says otherwise.
 */

#include <cstdint>
#include <string>

namespace hybridtier {

/** Virtual-time type: nanoseconds since simulation start. */
using TimeNs = uint64_t;

// Byte sizes.
inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/** Base (small) page size used throughout the simulator. */
inline constexpr uint64_t kPageSize = 4 * kKiB;

/** Huge page size (Linux THP default). */
inline constexpr uint64_t kHugePageSize = 2 * kMiB;

/** Number of base pages per huge page. */
inline constexpr uint64_t kPagesPerHugePage = kHugePageSize / kPageSize;

/** CPU cache line size assumed by the cache model and blocked CBF. */
inline constexpr uint64_t kCacheLineSize = 64;

// Time units, expressed in nanoseconds.
inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1000 * kNanosecond;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;
inline constexpr TimeNs kMinute = 60 * kSecond;

/** Formats a byte count as e.g. "3.9GiB", "128MiB", "512B". */
std::string FormatBytes(uint64_t bytes);

/** Formats a nanosecond count as e.g. "124ns", "1.5us", "2.3s". */
std::string FormatTime(TimeNs ns);

/** Formats a double with the given precision (helper for table output). */
std::string FormatDouble(double value, int precision = 2);

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_UNITS_H_
