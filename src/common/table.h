#ifndef HYBRIDTIER_COMMON_TABLE_H_
#define HYBRIDTIER_COMMON_TABLE_H_

/**
 * @file
 * ASCII table and CSV output used by the benchmark harness to print the
 * rows/series corresponding to each paper table and figure.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hybridtier {

/** Column-aligned ASCII table with an optional title. */
class TablePrinter {
 public:
  /** Creates a table with the given column headers. */
  explicit TablePrinter(std::vector<std::string> headers);

  /** Sets a title printed above the table. */
  void SetTitle(std::string title) { title_ = std::move(title); }

  /** Appends a row; must have exactly as many cells as there are headers. */
  void AddRow(std::vector<std::string> cells);

  /** Renders the table to `os`. */
  void Print(std::ostream& os) const;

  /** Writes the table as CSV to the file at `path` (overwrites). */
  void WriteCsv(const std::string& path) const;

  /** Number of data rows added so far. */
  size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/** Quotes a cell for CSV output if needed. */
std::string CsvEscape(const std::string& cell);

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_TABLE_H_
