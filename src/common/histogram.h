#ifndef HYBRIDTIER_COMMON_HISTOGRAM_H_
#define HYBRIDTIER_COMMON_HISTOGRAM_H_

/**
 * @file
 * Histogram utilities used by hotness tracking and result reporting.
 *
 * `Histogram` is a dense fixed-range histogram over integer values; it
 * backs the Memtis-style hotness histogram from which the dynamic
 * frequency threshold is derived (paper §2.3.1 / §3.1).
 */

#include <cstdint>
#include <vector>

namespace hybridtier {

/**
 * Dense histogram over the closed integer range [0, max_value].
 *
 * Values above max_value are clamped into the last bucket, matching the
 * saturating counters used by the trackers (a 4-bit counter caps at 15).
 */
class Histogram {
 public:
  /** Creates a histogram with buckets for values 0..max_value. */
  explicit Histogram(uint32_t max_value);

  /** Adds `weight` observations of `value` (clamped to max_value). */
  void Add(uint32_t value, uint64_t weight = 1);

  /** Removes `weight` observations of `value`; saturates at zero. */
  void Remove(uint32_t value, uint64_t weight = 1);

  /** Returns the count in the bucket for `value`. */
  uint64_t Count(uint32_t value) const;

  /** Returns the total number of observations. */
  uint64_t total() const { return total_; }

  /** Largest representable value (== number of buckets - 1). */
  uint32_t max_value() const {
    return static_cast<uint32_t>(buckets_.size() - 1);
  }

  /**
   * Returns the smallest threshold T such that the number of observations
   * with value >= T is at most `budget`. This is exactly how a
   * frequency-based tiering system converts "fast tier holds B pages" into
   * a hotness threshold: pages with count >= T fill at most B slots.
   * Returns max_value()+1 if even the top bucket exceeds the budget.
   */
  uint32_t ThresholdForBudget(uint64_t budget) const;

  /** Returns the number of observations with value >= threshold. */
  uint64_t CountAtOrAbove(uint32_t threshold) const;

  /** Halves every value: observation of v is re-counted as v/2 (cooling). */
  void CoolByHalving();

  /** Clears all buckets. */
  void Reset();

  /** Read-only view of the raw bucket array. */
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

/**
 * Accumulates a running mean / min / max / variance without storing
 * samples (Welford's algorithm).
 */
class RunningStats {
 public:
  /** Adds one observation. */
  void Add(double x);

  /** Number of observations so far. */
  uint64_t count() const { return count_; }
  /** Mean of observations; 0 if empty. */
  double mean() const { return count_ ? mean_ : 0.0; }
  /** Population variance; 0 if fewer than 2 observations. */
  double variance() const { return count_ > 1 ? m2_ / count_ : 0.0; }
  /** Smallest observation; 0 if empty. */
  double min() const { return count_ ? min_ : 0.0; }
  /** Largest observation; 0 if empty. */
  double max() const { return count_ ? max_ : 0.0; }
  /** Sum of all observations. */
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_HISTOGRAM_H_
