#include "common/percentile.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace hybridtier {

WindowedPercentile::WindowedPercentile(size_t capacity)
    : capacity_(capacity) {
  HT_ASSERT(capacity > 0, "window capacity must be positive");
  ring_.reserve(capacity);
}

void WindowedPercentile::Add(double value) {
  if (ring_.size() < capacity_) {
    ring_.push_back(value);
  } else {
    ring_[next_] = value;
  }
  next_ = (next_ + 1) % capacity_;
  ++count_;
}

double WindowedPercentile::Quantile(double q) const {
  if (ring_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(ring_);
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

void WindowedPercentile::Reset() {
  ring_.clear();
  next_ = 0;
  count_ = 0;
}

ReservoirSampler::ReservoirSampler(size_t capacity, uint64_t seed)
    : capacity_(capacity), seed_(seed), rng_state_(seed) {
  HT_ASSERT(capacity > 0, "reservoir capacity must be positive");
  reservoir_.reserve(capacity);
}

void ReservoirSampler::Add(double value) {
  ++total_;
  sum_ += value;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    return;
  }
  // Algorithm R: replace a random slot with probability capacity/total.
  // SplitMix64 gives a cheap, deterministic stream.
  uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const uint64_t slot = z % total_;
  if (slot < capacity_) reservoir_[slot] = value;
}

double ReservoirSampler::Quantile(double q) const {
  if (reservoir_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(reservoir_);
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

void ReservoirSampler::Reset() {
  reservoir_.clear();
  total_ = 0;
  sum_ = 0.0;
  rng_state_ = seed_;
}

uint64_t FirstSustainedEntryNs(const TimeSeries& series, double target,
                               double tolerance, size_t sustain_points,
                               uint64_t not_before_ns) {
  const double band = std::abs(target) * tolerance;
  size_t run_start = SIZE_MAX;
  size_t run_length = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    const bool eligible = series.times_ns[i] >= not_before_ns;
    const bool inside = std::abs(series.values[i] - target) <= band;
    if (eligible && inside) {
      if (run_length == 0) run_start = i;
      ++run_length;
      if (run_length >= sustain_points) {
        return series.times_ns[run_start];
      }
    } else {
      run_length = 0;
    }
  }
  return UINT64_MAX;
}

double JainFairnessIndex(const std::vector<double>& values) {
  double sum = 0.0;
  double sum_squares = 0.0;
  for (const double value : values) {
    sum += value;
    sum_squares += value * value;
  }
  if (values.empty() || sum_squares == 0.0) return 1.0;
  return sum * sum /
         (static_cast<double>(values.size()) * sum_squares);
}

double WeightedJainFairnessIndex(const std::vector<double>& values,
                                 const std::vector<double>& weights) {
  HT_ASSERT(values.size() == weights.size(),
            "weighted fairness needs one weight per value: ",
            values.size(), " vs ", weights.size());
  std::vector<double> normalized;
  normalized.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    HT_ASSERT(weights[i] > 0.0, "fairness weight must be positive, got ",
              weights[i]);
    normalized.push_back(values[i] / weights[i]);
  }
  return JainFairnessIndex(normalized);
}

uint64_t SettleTimeNs(const TimeSeries& series, double target,
                      double tolerance, uint64_t not_before_ns) {
  const double band = std::abs(target) * tolerance;
  // Find the last point outside the band; the settle time is the next one.
  ptrdiff_t last_outside = -1;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series.times_ns[i] < not_before_ns) {
      last_outside = static_cast<ptrdiff_t>(i);
      continue;
    }
    if (std::abs(series.values[i] - target) > band) {
      last_outside = static_cast<ptrdiff_t>(i);
    }
  }
  const size_t first_settled = static_cast<size_t>(last_outside + 1);
  if (first_settled >= series.size()) return UINT64_MAX;
  return series.times_ns[first_settled];
}

}  // namespace hybridtier
