#include "common/units.h"

#include <array>
#include <cstdio>

namespace hybridtier {

namespace {

std::string FormatScaled(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0 || value == static_cast<uint64_t>(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, unit);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kGiB) return FormatScaled(static_cast<double>(bytes) / kGiB, "GiB");
  if (bytes >= kMiB) return FormatScaled(static_cast<double>(bytes) / kMiB, "MiB");
  if (bytes >= kKiB) return FormatScaled(static_cast<double>(bytes) / kKiB, "KiB");
  return FormatScaled(static_cast<double>(bytes), "B");
}

std::string FormatTime(TimeNs ns) {
  if (ns >= kMinute) {
    return FormatScaled(static_cast<double>(ns) / kMinute, "min");
  }
  if (ns >= kSecond) return FormatScaled(static_cast<double>(ns) / kSecond, "s");
  if (ns >= kMillisecond) {
    return FormatScaled(static_cast<double>(ns) / kMillisecond, "ms");
  }
  if (ns >= kMicrosecond) {
    return FormatScaled(static_cast<double>(ns) / kMicrosecond, "us");
  }
  return FormatScaled(static_cast<double>(ns), "ns");
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace hybridtier
