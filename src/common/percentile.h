#ifndef HYBRIDTIER_COMMON_PERCENTILE_H_
#define HYBRIDTIER_COMMON_PERCENTILE_H_

/**
 * @file
 * Latency percentile tracking.
 *
 * `WindowedPercentile` keeps the most recent N observations in a ring and
 * answers quantile queries over that window — this is how the paper's
 * "median latency over time" series (Fig 4) are produced.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hybridtier {

/** Ring buffer of recent observations with quantile queries. */
class WindowedPercentile {
 public:
  /** Creates a window holding the last `capacity` observations. */
  explicit WindowedPercentile(size_t capacity = 4096);

  /** Records one observation. */
  void Add(double value);

  /**
   * Returns the q-quantile (q in [0,1]) of the current window using the
   * nearest-rank method. Returns 0 when empty.
   */
  double Quantile(double q) const;

  /** Convenience: the median of the current window. */
  double Median() const { return Quantile(0.5); }

  /** Number of observations currently in the window. */
  size_t size() const { return count_ < capacity_ ? count_ : capacity_; }

  /** Total observations ever recorded. */
  uint64_t total_added() const { return count_; }

  /** Drops all recorded observations. */
  void Reset();

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  size_t next_ = 0;
  std::vector<double> ring_;
};

/**
 * Uniform reservoir sampler for whole-run quantiles: keeps a fixed-size
 * uniform random sample of everything ever added (Vitter's Algorithm R),
 * so end-of-run quantiles reflect the entire run, not just its tail.
 */
class ReservoirSampler {
 public:
  /** @param capacity reservoir size; @param seed replacement RNG seed. */
  explicit ReservoirSampler(size_t capacity = 65536, uint64_t seed = 99);

  /** Records one observation. */
  void Add(double value);

  /** Returns the q-quantile of the sampled distribution; 0 when empty. */
  double Quantile(double q) const;

  /** Mean of all observations ever added (exact, not sampled). */
  double Mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /** Observations ever added. */
  uint64_t total_added() const { return total_; }

  /** Drops all state. */
  void Reset();

 private:
  size_t capacity_;
  uint64_t seed_;
  uint64_t rng_state_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
  std::vector<double> reservoir_;
};

/**
 * A (time, value) series recorder: used for latency-over-time plots.
 * Samples are appended by the simulator at fixed virtual-time intervals.
 */
struct TimeSeries {
  /** Appends one point. */
  void Add(uint64_t time_ns, double value) {
    times_ns.push_back(time_ns);
    values.push_back(value);
  }

  /** Number of points recorded. */
  size_t size() const { return values.size(); }

  std::vector<uint64_t> times_ns;  //!< X coordinates, virtual ns.
  std::vector<double> values;      //!< Y coordinates.
};

/**
 * Returns the earliest time at which `series` enters and *stays* within
 * `tolerance` (relative) of `target`. Used to measure adaptation time
 * (paper Table 3: "reach within 1% of steady-state median latency").
 * Returns UINT64_MAX if the series never settles.
 */
uint64_t SettleTimeNs(const TimeSeries& series, double target,
                      double tolerance, uint64_t not_before_ns = 0);

/**
 * Jain's fairness index over `values`: (sum x)^2 / (n * sum x^2).
 * 1.0 = perfectly even, 1/n = one value holds everything. Returns 1.0
 * for empty or all-zero inputs (nothing to be unfair about).
 */
double JainFairnessIndex(const std::vector<double>& values);

/**
 * Weight-normalized Jain fairness: the plain index over values[i] /
 * weights[i], so a split that tracks the weights ("a:4,b:1" holding a
 * 4:1 occupancy ratio) scores 1.0. `weights` must be positive and the
 * same length as `values`; with all weights equal this reduces to
 * JainFairnessIndex.
 */
double WeightedJainFairnessIndex(const std::vector<double>& values,
                                 const std::vector<double>& weights);

/**
 * Noise-tolerant settle detector: returns the time of the first point at
 * or after `not_before_ns` from which at least `sustain_points`
 * consecutive points all lie within `tolerance` (relative) of `target`.
 * Returns UINT64_MAX if no such window exists.
 */
uint64_t FirstSustainedEntryNs(const TimeSeries& series, double target,
                               double tolerance, size_t sustain_points,
                               uint64_t not_before_ns = 0);

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_PERCENTILE_H_
