#include "common/histogram.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

Histogram::Histogram(uint32_t max_value) : buckets_(max_value + 1, 0) {}

void Histogram::Add(uint32_t value, uint64_t weight) {
  value = std::min(value, max_value());
  buckets_[value] += weight;
  total_ += weight;
}

void Histogram::Remove(uint32_t value, uint64_t weight) {
  value = std::min(value, max_value());
  const uint64_t removed = std::min(buckets_[value], weight);
  buckets_[value] -= removed;
  total_ -= removed;
}

uint64_t Histogram::Count(uint32_t value) const {
  return buckets_[std::min(value, max_value())];
}

uint32_t Histogram::ThresholdForBudget(uint64_t budget) const {
  uint64_t above = 0;
  // Walk down from the hottest bucket; stop before the budget is exceeded.
  for (uint32_t v = max_value();; --v) {
    if (above + buckets_[v] > budget) return v + 1;
    above += buckets_[v];
    if (v == 0) break;
  }
  return 0;
}

uint64_t Histogram::CountAtOrAbove(uint32_t threshold) const {
  if (threshold > max_value()) return 0;
  uint64_t above = 0;
  for (uint32_t v = threshold; v <= max_value(); ++v) above += buckets_[v];
  return above;
}

void Histogram::CoolByHalving() {
  for (uint32_t v = 1; v <= max_value(); ++v) {
    const uint64_t n = buckets_[v];
    if (n == 0) continue;
    buckets_[v] = 0;
    buckets_[v / 2] += n;
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
}

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

}  // namespace hybridtier
