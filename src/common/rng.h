#ifndef HYBRIDTIER_COMMON_RNG_H_
#define HYBRIDTIER_COMMON_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator flows through these generators
 * so that every experiment is reproducible bit-for-bit from its seed.
 * SplitMix64 is used for seeding and hashing-style mixing; xoshiro256**
 * is the main generator (fast, 256-bit state, passes BigCrush).
 */

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace hybridtier {

/** One SplitMix64 step: advances `state` and returns the next value. */
inline uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with distribution helpers.
 *
 * The helpers intentionally avoid std::uniform_int_distribution et al.,
 * whose outputs differ across standard library implementations.
 */
class Rng {
 public:
  /** Seeds the 256-bit state from a single 64-bit seed via SplitMix64. */
  explicit Rng(uint64_t seed = 0x185fb8271cull) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
  }

  /** Returns the next raw 64-bit value. */
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /** Returns a double uniformly distributed in [0, 1). */
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /** Returns an integer uniformly distributed in [0, bound). */
  uint64_t NextBounded(uint64_t bound) {
    HT_ASSERT(bound > 0, "NextBounded requires bound > 0");
    // Lemire's multiply-shift rejection method: unbiased and fast.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /** Returns an integer uniformly distributed in [lo, hi] inclusive. */
  int64_t UniformInt(int64_t lo, int64_t hi) {
    HT_ASSERT(lo <= hi, "UniformInt requires lo <= hi");
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /** Returns true with probability `p`. */
  bool Bernoulli(double p) { return NextDouble() < p; }

  /** Samples an exponential distribution with the given mean. */
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /** Samples a standard normal via Box-Muller (uses one pair per call). */
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
  }

  /** Samples a lognormal distribution parameterized by log-space mu/sigma. */
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /**
   * Fisher-Yates shuffles `data[0..n)` in place.
   * @tparam T element type of the array being permuted.
   */
  template <typename T>
  void Shuffle(T* data, size_t n) {
    for (size_t i = n; i > 1; --i) {
      const size_t j = NextBounded(i);
      std::swap(data[i - 1], data[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_RNG_H_
