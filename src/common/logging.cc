#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hybridtier {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInform};
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }

LogLevel GetLogLevel() { return g_log_level.load(); }

namespace detail {

void Emit(LogLevel level, const char* tag, const char* file, int line,
          const std::string& message) {
  if (level < g_log_level.load()) return;
  std::fprintf(stderr, "[%s] %s:%d: %s\n", tag, file, line, message.c_str());
}

void PanicImpl(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, message.c_str());
  std::abort();
}

void FatalImpl(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[fatal] %s:%d: %s\n", file, line, message.c_str());
  std::exit(1);
}

}  // namespace detail
}  // namespace hybridtier
