#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hybridtier {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInform};
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }

LogLevel GetLogLevel() { return g_log_level.load(); }

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info" || name == "inform") return LogLevel::kInform;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "silent" || name == "none") return LogLevel::kSilent;
  HT_FATAL("unknown log level '", name,
           "' (expected debug|info|warn|error|silent)");
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInform:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kSilent:
      return "silent";
  }
  return "info";
}

namespace detail {

void Emit(LogLevel level, const char* tag, const char* file, int line,
          const std::string& message) {
  if (level < g_log_level.load()) return;
  std::fprintf(stderr, "[%s] %s:%d: %s\n", tag, file, line, message.c_str());
}

void PanicImpl(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, message.c_str());
  std::abort();
}

void FatalImpl(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[fatal] %s:%d: %s\n", file, line, message.c_str());
  std::exit(1);
}

}  // namespace detail
}  // namespace hybridtier
