#include "common/table.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"

namespace hybridtier {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HT_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HT_ASSERT(cells.size() == headers_.size(), "row has ", cells.size(),
            " cells but table has ", headers_.size(), " columns");
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  auto print_rule = [&] {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    HT_WARN("could not open ", path, " for CSV output");
    return;
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace hybridtier
