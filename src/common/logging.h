#ifndef HYBRIDTIER_COMMON_LOGGING_H_
#define HYBRIDTIER_COMMON_LOGGING_H_

/**
 * @file
 * Logging and error-handling primitives.
 *
 * Follows the gem5 convention:
 *  - HT_PANIC:  a bug in HybridTier itself; never the user's fault. Aborts.
 *  - HT_FATAL:  the simulation cannot continue due to a user error (bad
 *               configuration, impossible parameters). Exits with code 1.
 *  - HT_WARN:   something is suspicious but the run can continue.
 *  - HT_INFORM: status messages with no negative connotation.
 *  - HT_ASSERT: invariant check that panics with a message on violation.
 */

#include <sstream>
#include <string>

namespace hybridtier {

/** Severity levels for runtime log filtering. */
enum class LogLevel {
  kDebug = 0,
  kInform = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/** Sets the global minimum level that will be printed to stderr. */
void SetLogLevel(LogLevel level);

/** Returns the current global log level. */
LogLevel GetLogLevel();

/**
 * Parses a `--log-level` value: debug|info|warn|error|silent.
 * Unknown names are a user error (HT_FATAL).
 */
LogLevel ParseLogLevel(const std::string& name);

/** Canonical name of `level` (the ParseLogLevel spelling). */
const char* LogLevelName(LogLevel level);

namespace detail {

/** Concatenates a pack of streamable values into one string. */
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/** Emits one log record to stderr if `level` passes the global filter. */
void Emit(LogLevel level, const char* tag, const char* file, int line,
          const std::string& message);

/** Prints the message and calls std::abort (simulator bug path). */
[[noreturn]] void PanicImpl(const char* file, int line,
                            const std::string& message);

/** Prints the message and calls std::exit(1) (user error path). */
[[noreturn]] void FatalImpl(const char* file, int line,
                            const std::string& message);

}  // namespace detail
}  // namespace hybridtier

/** Unrecoverable internal error: prints and aborts. */
#define HT_PANIC(...)                                      \
  ::hybridtier::detail::PanicImpl(__FILE__, __LINE__,      \
                                  ::hybridtier::detail::StrCat(__VA_ARGS__))

/** Unrecoverable user/configuration error: prints and exits. */
#define HT_FATAL(...)                                      \
  ::hybridtier::detail::FatalImpl(__FILE__, __LINE__,      \
                                  ::hybridtier::detail::StrCat(__VA_ARGS__))

/**
 * Level-filtered log statement. The level check happens *before* the
 * argument pack is evaluated, so a filtered-out message costs one load
 * and a branch — not an ostringstream build (HT_DEBUG in hot loops was
 * paying full formatting cost even at the default kInform level).
 */
#define HT_LOG_AT(level_, tag_, ...)                                      \
  do {                                                                    \
    if ((level_) >= ::hybridtier::GetLogLevel()) {                        \
      ::hybridtier::detail::Emit(                                         \
          (level_), (tag_), __FILE__, __LINE__,                           \
          ::hybridtier::detail::StrCat(__VA_ARGS__));                     \
    }                                                                     \
  } while (false)

/** Continuable warning. */
#define HT_WARN(...) \
  HT_LOG_AT(::hybridtier::LogLevel::kWarn, "warn", __VA_ARGS__)

/** Informational status message. */
#define HT_INFORM(...) \
  HT_LOG_AT(::hybridtier::LogLevel::kInform, "info", __VA_ARGS__)

/** Debug-level trace message. */
#define HT_DEBUG(...) \
  HT_LOG_AT(::hybridtier::LogLevel::kDebug, "debug", __VA_ARGS__)

/** Invariant check; violations are HybridTier bugs and panic. */
#define HT_ASSERT(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hybridtier::detail::PanicImpl(                                    \
          __FILE__, __LINE__,                                             \
          ::hybridtier::detail::StrCat("assertion failed: " #cond " — ",  \
                                       ##__VA_ARGS__));                   \
    }                                                                     \
  } while (false)

#endif  // HYBRIDTIER_COMMON_LOGGING_H_
