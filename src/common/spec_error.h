#ifndef HYBRIDTIER_COMMON_SPEC_ERROR_H_
#define HYBRIDTIER_COMMON_SPEC_ERROR_H_

/**
 * @file
 * Uniform fatal-error reporting for config-spec parsers.
 *
 * Every spec parser (`ParseTopologySpec`, `ParseFaultSpec`, ...) fails
 * the same way: the offending token is quoted together with its byte
 * offset inside the spec, so a user staring at a 120-character topology
 * string knows exactly which character to fix instead of getting a
 * generic "malformed spec". Death tests gate the message shape.
 */

#include <string>

#include "common/logging.h"

namespace hybridtier {

/**
 * User-error exit for a malformed spec: quotes the bad token and its
 * byte offset within `spec`. `offset` is where `token` starts (byte 0 =
 * the first character of the full spec string, prefix included).
 */
[[noreturn]] inline void SpecFatal(const std::string& spec, size_t offset,
                                   const std::string& token,
                                   const std::string& message) {
  HT_FATAL("bad token '", token, "' at byte ", offset, " of spec '", spec,
           "': ", message);
}

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_SPEC_ERROR_H_
