#ifndef HYBRIDTIER_COMMON_EMA_H_
#define HYBRIDTIER_COMMON_EMA_H_

/**
 * @file
 * Exponential-moving-average counter with periodic halving ("cooling").
 *
 * This is the scalar form of the mechanism every frequency-based tiering
 * system in the paper uses: counters accumulate accesses and are divided
 * by two every cooling period C (decay factor 2, implementable with a bit
 * shift — paper §2.3.2). `EmaCounter` exists both as a reference model
 * for tests and to reproduce the Fig 3a lag demonstration.
 */

#include <cstdint>

#include "common/units.h"

namespace hybridtier {

/** Scalar EMA counter cooled by halving on a fixed virtual-time period. */
class EmaCounter {
 public:
  /**
   * @param cooling_period_ns halve the counter every this many ns of
   *        virtual time; 0 disables cooling (C = infinity).
   */
  explicit EmaCounter(TimeNs cooling_period_ns)
      : cooling_period_ns_(cooling_period_ns) {}

  /** Records `n` accesses at virtual time `now`. */
  void Add(TimeNs now, uint64_t n = 1) {
    Advance(now);
    value_ += n;
  }

  /** Returns the decayed value as of virtual time `now`. */
  uint64_t Value(TimeNs now) {
    Advance(now);
    return value_;
  }

  /** Returns the value without advancing the cooling clock. */
  uint64_t RawValue() const { return value_; }

  /** Number of halvings applied so far. */
  uint64_t coolings() const { return coolings_; }

 private:
  /** Applies all halvings that elapsed up to `now`. */
  void Advance(TimeNs now) {
    if (cooling_period_ns_ == 0) return;
    while (now >= next_cool_ns_) {
      value_ >>= 1;
      next_cool_ns_ += cooling_period_ns_;
      ++coolings_;
      if (value_ == 0 && now >= next_cool_ns_) {
        // Fast-forward: further halvings cannot change zero.
        const TimeNs remaining = now - next_cool_ns_;
        const uint64_t skips = remaining / cooling_period_ns_ + 1;
        next_cool_ns_ += skips * cooling_period_ns_;
        coolings_ += skips;
      }
    }
  }

  TimeNs cooling_period_ns_;
  TimeNs next_cool_ns_ = cooling_period_ns_ == 0 ? 0 : cooling_period_ns_;
  uint64_t value_ = 0;
  uint64_t coolings_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_COMMON_EMA_H_
