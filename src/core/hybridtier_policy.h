#ifndef HYBRIDTIER_CORE_HYBRIDTIER_POLICY_H_
#define HYBRIDTIER_CORE_HYBRIDTIER_POLICY_H_

/**
 * @file
 * The HybridTier tiering policy — the paper's core contribution.
 *
 * Two probabilistic trackers estimate each page's long-term *frequency*
 * (high cooling period) and short-term *momentum* (low cooling period,
 * 128x smaller filter). The migration matrix (paper Table 1):
 *
 *                       high momentum     low momentum
 *   high frequency      promote/none      promote/none
 *   low  frequency      promote/none      none/demote
 *
 * Promotion: a sampled slow-tier page is promoted when its frequency is
 * at or above the histogram-derived threshold (auto-adjusted to fill
 * the fast tier, as in Memtis) OR its momentum is at or above the fixed
 * momentum threshold (default 3, §6.4.3). Promotions are batched into a
 * single syscall (paper: 100k samples per batch).
 *
 * Demotion: when fast-tier free space falls under the watermark, a
 * linear VA scan classifies fast-tier pages: low/low pages are demoted
 * immediately; high-frequency/low-momentum pages are *marked* with
 * their current frequency and demoted at a later revisit only if the
 * frequency did not advance (the second-chance policy, §4.3).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "core/trackers.h"
#include "policies/policy.h"

namespace hybridtier {

/** Tunables for HybridTier (paper defaults, time-scaled). */
struct HybridTierConfig {
  /** Estimator implementation (ablations: standard CBF, exact table). */
  EstimatorKind estimator = EstimatorKind::kBlockedCbf;
  /** Track momentum at all (false = "HybridTier-onlyFreq", Fig 15). */
  bool use_momentum = true;
  /** Momentum hotness threshold (paper default 3, Fig 17 sweep). */
  uint32_t momentum_threshold = 3;
  /** Frequency tracker cooling period, in samples (high C). */
  uint64_t freq_cooling_samples = 600000;
  /** Momentum tracker cooling period, in samples (low C). */
  uint64_t momentum_cooling_samples = 8000;
  /** Promotion batch: flush after this many samples (paper: 100k). */
  uint64_t promo_batch_samples = 2048;
  /** CBF tracking-error probability p (paper: 0.001). */
  double cbf_error_rate = kDefaultErrorRate;
  /** CBF hash count k (paper: 4). */
  uint32_t cbf_hashes = kDefaultNumHashes;
  /** Momentum CBF is provisioned for fast_pages / this (paper: 128). */
  uint64_t momentum_size_divisor = kMomentumSizeDivisor;
  /** Optional override of the frequency-CBF counter count (Table 5). */
  size_t cbf_counters_override = 0;
  /**
   * Demotion hysteresis: a fast-tier page counts as "low frequency" only
   * below freq_threshold / this divisor. Pages between the two levels
   * stay put, preventing zero-gain swaps of equally-warm pages across
   * the admission threshold after every cooling pass.
   */
  uint32_t demote_hysteresis_divisor = 2;
  /** Demote when fast free fraction falls below this (PROMO_WMARK). */
  double demote_trigger_frac = 0.02;
  /** Demote until fast free fraction reaches this (DEMOTE_WMARK). */
  double demote_target_frac = 0.04;
  /** VA-scan units examined per maintenance tick. */
  uint64_t scan_units_per_tick = 8192;
  /** Second-chance revisit delay (paper: 1 minute, time-scaled). */
  TimeNs second_chance_revisit_ns = 300 * kMillisecond;
  uint64_t seed = 3;
};

/** The HybridTier policy. */
class HybridTierPolicy : public TieringPolicy {
 public:
  explicit HybridTierPolicy(
      const HybridTierConfig& config = HybridTierConfig{});

  void Bind(const PolicyContext& context) override;
  void OnSample(const SampleRecord& sample) override;
  void Tick(TimeNs now) override;
  size_t MetadataBytes() const override;
  const char* name() const override;

  /**
   * HybridTier is sample-driven: it never observes the demand-access
   * stream (OnAccess stays the inherited no-op), so the simulator skips
   * per-access policy dispatch entirely.
   */
  AccessInterest access_interest() const override {
    return AccessInterest::kNone;
  }

  /** Long-term frequency estimate (the demotion-ordering signal). */
  uint32_t HotnessOf(PageId unit) const override {
    return freq_->Get(unit);
  }

  /** Current histogram-derived frequency threshold. */
  uint32_t freq_threshold() const { return freq_threshold_; }

  /** Frequency tracker (for tests/accuracy studies). */
  const AccessTracker& frequency_tracker() const { return *freq_; }

  /** Momentum tracker; null when momentum is disabled. */
  const AccessTracker* momentum_tracker() const { return momentum_.get(); }

  /** Pages currently marked for a second chance. */
  size_t second_chance_pending() const { return second_chance_pending_; }

  /** Promotions triggered by momentum (not frequency). */
  uint64_t momentum_promotions() const { return momentum_promotions_; }

  /** Pages demoted after failing their second chance. */
  uint64_t second_chance_demotions() const {
    return second_chance_demotions_;
  }

  /** Demotion VA-scan cursor, in tracking units (observability/tests). */
  PageId scan_cursor() const { return scan_cursor_; }

 private:
  /** No-mark sentinel: counter estimates never reach UINT32_MAX. */
  static constexpr uint32_t kNoMark = UINT32_MAX;

  struct SecondChanceMark {
    uint32_t freq_at_mark = kNoMark;  //!< kNoMark = unit not marked.
    TimeNs mark_time_ns = 0;
  };

  /** Clears `unit`'s second-chance mark if present. */
  void ClearMark(PageId unit) {
    SecondChanceMark& mark = second_chance_[unit];
    if (mark.freq_at_mark != kNoMark) {
      mark.freq_at_mark = kNoMark;
      --second_chance_pending_;
    }
  }

  void UpdateThreshold();
  void FlushPromotions(TimeNs now);
  void WatermarkDemotion(TimeNs now);

  /**
   * Scans the fast tier applying the Table-1 demotion rules until
   * `needed` victims were demoted or the scan budget is exhausted.
   * The demotion batch carries `reason` (watermark scan vs. demand
   * demotion for a promotion batch). Returns the number of pages
   * demoted.
   */
  uint64_t DemoteColdPages(uint64_t needed, TimeNs now,
                           MigrationReason reason);

  HybridTierConfig config_;
  std::unique_ptr<AccessTracker> freq_;
  std::unique_ptr<AccessTracker> momentum_;
  std::unique_ptr<Histogram> histogram_;
  std::vector<PageId> pending_promotions_;
  /**
   * Second-chance marks, dense by PageId (sized at Bind, when the
   * footprint is known). The legacy unordered_map cost a hash probe per
   * sample and per demotion-scan unit on the hottest policy paths; the
   * flat array is one indexed load. `second_chance_pending_` tracks the
   * marked-unit count the map's size() used to provide.
   */
  std::vector<SecondChanceMark> second_chance_;
  size_t second_chance_pending_ = 0;
  uint64_t samples_seen_ = 0;
  uint64_t samples_at_last_flush_ = 0;
  uint32_t freq_threshold_ = 1;
  uint64_t momentum_promotions_ = 0;
  uint64_t second_chance_demotions_ = 0;
  PageId scan_cursor_ = 0;
  TraceEmitter::TrackId cooling_track_ = 0;  //!< Cooling-event track.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_CORE_HYBRIDTIER_POLICY_H_
